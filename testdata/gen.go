//go:build ignore

// Generates the sample inputs in testdata/ from the buck reference design.
package main

import (
	"os"

	"repro/internal/buck"
	"repro/internal/layout"
)

func main() {
	p := buck.Project()
	if _, err := buck.DeriveAllRules(p, 0.01, 3, 0.01); err != nil {
		panic(err)
	}
	f, err := os.Create("testdata/buck_design.txt")
	if err != nil {
		panic(err)
	}
	if err := layout.Write(f, p.Design); err != nil {
		panic(err)
	}
	f.Close()
	if err := os.WriteFile("testdata/buck.cir", []byte(p.Circuit.String()), 0o644); err != nil {
		panic(err)
	}
}
