// Command emiscale runs the scaling workload end-to-end: it generates a
// parametric EMI-filter board with the requested PEEC segment count,
// extracts every pairwise coupling (hierarchically when -theta > 0),
// predicts the conducted spectrum with the selected MNA backend and
// prints the phase timings. The CI scale-smoke job and
// scripts/scalebench.sh drive it; -json emits one machine-readable
// record per run for the crossover curves.
//
// Usage:
//
//	emiscale -segments 10000 -theta 0.3 [-solver auto|dense|sparse]
//	         [-pairs-dist 0.05] [-max 5e6] [-json out.json]
//	         [-timeout 10m] [-stats]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload/board"
)

type report struct {
	Segments   int     `json:"segments"`
	Stages     int     `json:"stages"`
	Theta      float64 `json:"theta"`
	Solver     string  `json:"solver"`
	Pairs      int     `json:"pairs"`
	Harmonics  int     `json:"harmonics"`
	ExtractSec float64 `json:"extract_s"`
	PredictSec float64 `json:"predict_s"`
	TotalSec   float64 `json:"total_s"`
	WorstDB    float64 `json:"worst_margin_db"`
}

func main() {
	segments := flag.Int("segments", 10000, "target PEEC segment count of the generated board")
	theta := flag.Float64("theta", 0.3, "multipole acceptance for coupling extraction; 0 = exact all-pairs")
	pairsDist := flag.Float64("pairs-dist", 0.05, "insert K elements only for pairs within this distance in m; 0 = all")
	maxFreq := flag.Float64("max", 5e6, "highest prediction frequency in Hz")
	jsonOut := flag.String("json", "", "append the run record as one JSON line to this file")
	dumpStats := cli.Stats()
	mkCtx := cli.Timeout()
	applySolver := cli.Solver()
	flag.Parse()
	defer dumpStats()
	if err := applySolver(); err != nil {
		fatal(err)
	}

	ctx, cancel := mkCtx()
	defer cancel()

	start := time.Now()
	p := board.Project(*segments)
	p.CouplingTheta = *theta
	rep := report{
		Segments: board.Segments(p),
		Stages:   board.Stages(*segments),
		Theta:    *theta,
		Solver:   engine.SolverLabel(),
	}
	fmt.Printf("board: %d stages, %d segments, %d mapped components\n",
		rep.Stages, rep.Segments, len(p.InductorOf))

	t0 := time.Now()
	ks, err := p.ExtractCouplingsCtx(ctx, p.AllPairs())
	if err != nil {
		fatal(err)
	}
	rep.ExtractSec = time.Since(t0).Seconds()
	kMax := 0.0
	for _, k := range ks {
		if a := math.Abs(k); a > kMax {
			kMax = a
		}
	}
	fmt.Printf("extract: %d pairs in %.3fs (|k|max %.3g)\n",
		len(ks), rep.ExtractSec, kMax)

	t0 = time.Now()
	spec, err := p.PredictCtx(ctx, core.PredictOptions{
		WithCouplings: true,
		Pairs:         board.NeighborPairs(p, *pairsDist),
		MaxFreq:       *maxFreq,
	})
	if err != nil {
		fatal(err)
	}
	rep.PredictSec = time.Since(t0).Seconds()
	rep.Pairs = len(ks)
	rep.Harmonics = len(spec.Freqs)
	rep.TotalSec = time.Since(start).Seconds()
	rep.WorstDB = spec.WorstMargin()
	for i, db := range spec.DB {
		if math.IsNaN(db) || math.IsInf(db, 0) {
			fatal(fmt.Errorf("harmonic %d: non-finite level %g", i, db))
		}
	}
	fmt.Printf("predict: %d harmonics in %.3fs, worst margin %.1f dB\n",
		rep.Harmonics, rep.PredictSec, rep.WorstDB)
	fmt.Printf("total: %.3fs\n", rep.TotalSec)

	if *jsonOut != "" {
		f, err := os.OpenFile(*jsonOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		if err := enc.Encode(&rep); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "appended record to", *jsonOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emiscale:", err)
	os.Exit(1)
}
