package main

import (
	"math"
	"testing"

	"repro/internal/components"
)

func TestParseSpecCatalog(t *testing.T) {
	cases := []struct {
		spec string
		kind string
	}{
		{"x2cap:1.5u", "*components.Capacitor"},
		{"tantalum:100u", "*components.Capacitor"},
		{"mlcc:1u", "*components.Capacitor"},
		{"bobbin:10:4", "*components.BobbinChoke"},
		{"cmchoke2", "*components.CMChoke"},
		{"cmchoke3", "*components.CMChoke"},
	}
	for _, c := range cases {
		m, err := parseSpec(c.spec)
		if err != nil {
			t.Errorf("parseSpec(%q): %v", c.spec, err)
			continue
		}
		w, l, h := m.Size()
		if w <= 0 || l <= 0 || h <= 0 {
			t.Errorf("parseSpec(%q): degenerate body", c.spec)
		}
	}
	// Value propagation.
	m, err := parseSpec("x2cap:1.5u")
	if err != nil {
		t.Fatal(err)
	}
	if cap, ok := m.(*components.Capacitor); !ok || math.Abs(cap.C-1.5e-6) > 1e-12 {
		t.Errorf("capacitance = %+v", m)
	}
	b, err := parseSpec("bobbin:12:5")
	if err != nil {
		t.Fatal(err)
	}
	if ch, ok := b.(*components.BobbinChoke); !ok || ch.Turns != 12 || math.Abs(ch.CoilR-5e-3) > 1e-12 {
		t.Errorf("bobbin = %+v", b)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"", "nope", "x2cap", "x2cap:abc", "x2cap:-1u",
		"bobbin:10", "bobbin:x:4", "bobbin:10:x", "bobbin:0:4", "bobbin:10:-4",
	} {
		if _, err := parseSpec(bad); err == nil {
			t.Errorf("parseSpec(%q) should fail", bad)
		}
	}
}
