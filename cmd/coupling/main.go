// Command coupling computes PEEC magnetic coupling factors between two
// catalog components over distance and rotation — the raw data behind the
// paper's Figures 5–8 and the PEMD rule derivation.
//
// Component specs:
//
//	x2cap:<farad>        film X capacitor, e.g. x2cap:1.5u
//	tantalum:<farad>     SMD tantalum, e.g. tantalum:100u
//	mlcc:<farad>         ceramic capacitor
//	bobbin:<turns>:<radius_mm>  drum-core choke, e.g. bobbin:10:4
//	cmchoke2 | cmchoke3  common-mode chokes
//
// Usage:
//
//	coupling -a x2cap:1.5u -b x2cap:1.5u -from 16 -to 60 -step 4
//	coupling -a x2cap:1.5u -b x2cap:1.5u -dist 25 -rotsweep
//	coupling -a x2cap:1.5u -b bobbin:10:4 -dist 30 -pemd 0.01
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/components"
	"repro/internal/geom"
	"repro/internal/peec"
	"repro/internal/rules"
)

func main() {
	specA := flag.String("a", "", "first component spec")
	specB := flag.String("b", "", "second component spec")
	from := flag.Float64("from", 16, "sweep start distance in mm")
	to := flag.Float64("to", 60, "sweep end distance in mm")
	step := flag.Float64("step", 4, "sweep step in mm")
	dist := flag.Float64("dist", 0, "single distance in mm (overrides sweep)")
	rotsweep := flag.Bool("rotsweep", false, "sweep rotation of b at fixed -dist")
	pemd := flag.Float64("pemd", 0, "derive the PEMD rule for the given k_max")
	flag.Parse()

	a, err := parseSpec(*specA)
	if err != nil {
		fatal(err)
	}
	b, err := parseSpec(*specB)
	if err != nil {
		fatal(err)
	}

	if *pemd > 0 {
		d, err := rules.DerivePEMD(a, b, rules.DeriveOptions{KMax: *pemd})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("PEMD(%s, %s, k_max=%g) = %.1f mm\n", a.Name(), b.Name(), *pemd, d*1e3)
		return
	}

	ia := &components.Instance{Ref: "A", Model: a}
	if *rotsweep {
		if *dist <= 0 {
			fatal(fmt.Errorf("-rotsweep needs -dist"))
		}
		fmt.Println("rot_deg\tcoupling_factor")
		for deg := 0; deg <= 90; deg += 10 {
			ib := &components.Instance{
				Ref: "B", Model: b,
				Center: geom.V2(0, *dist*1e-3),
				Rot:    geom.Rad(float64(deg)),
			}
			k := components.CouplingFactor(ia, ib, peec.DefaultOrder)
			fmt.Printf("%d\t%.6f\n", deg, math.Abs(k))
		}
		return
	}
	if *dist > 0 {
		*from, *to, *step = *dist, *dist, 1
	}
	fmt.Println("distance_mm\tcoupling_factor")
	for mm := *from; mm <= *to+1e-9; mm += *step {
		ib := &components.Instance{Ref: "B", Model: b, Center: geom.V2(0, mm*1e-3)}
		k := components.CouplingFactor(ia, ib, peec.DefaultOrder)
		fmt.Printf("%.1f\t%.6f\n", mm, math.Abs(k))
	}
}

// parseSpec builds a component model from its textual spec (the shared
// catalog vocabulary lives in components.ParseSpec).
func parseSpec(s string) (components.Model, error) {
	return components.ParseSpec(s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coupling:", err)
	os.Exit(1)
}
