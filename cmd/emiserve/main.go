// Command emiserve is the EMI design service: a long-running HTTP/JSON
// daemon exposing the paper's flow — interference prediction, automatic
// placement and coupling extraction — as asynchronous jobs over a bounded
// queue with request deduplication, per-job deadlines, cancellation and
// Prometheus metrics. See DESIGN.md §"Serving layer" and the README
// quickstart for the endpoint reference.
//
// Usage:
//
//	emiserve [-addr :8080] [-workers 2] [-queue 64] [-job-timeout 2m]
//	         [-result-ttl 10m] [-result-cap 256] [-drain-timeout 30s]
//	         [-session-ttl 30m] [-session-cap 64] [-stats]
//	         [-data-dir DIR] [-fsync off|always] [-compact-every 256]
//	         [-log] [-slow-op 10s] [-debug-addr 127.0.0.1:8081]
//
// SIGTERM or SIGINT starts a graceful drain: intake stops (/readyz
// turns 503 so routers stop sending work, /healthz stays 200), late
// requests get clean 503 + Retry-After answers while in-flight jobs
// finish or are cancelled at -drain-timeout, then the process exits.
//
// The listener opens before recovery replay: while a -data-dir server
// rebuilds its jobs and sessions, /healthz answers 200 and /readyz 503
// ("recovering"), so cluster routers see the replica as alive but not
// yet routable instead of down.
//
// With -data-dir the service is restart-safe: jobs and design sessions
// are written ahead to WAL files under the directory and recovered on the
// next start — acknowledged work survives even a SIGKILL. See DESIGN.md
// §"Durability" for the format and guarantees.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker goroutines (0 = default 2)")
	queue := flag.Int("queue", 0, "bounded job queue depth (0 = default 64)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job deadline (0 = default 2m)")
	resultTTL := flag.Duration("result-ttl", 0, "completed-result reuse window (0 = default 10m)")
	resultCap := flag.Int("result-cap", 0, "result store capacity (0 = default 256)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
	sessionTTL := flag.Duration("session-ttl", 0, "design-session idle eviction (0 = default 30m)")
	sessionCap := flag.Int("session-cap", 0, "max live design sessions (0 = default 64)")
	dataDir := flag.String("data-dir", "", "durable state directory (empty = in-memory only)")
	fsync := flag.String("fsync", "off", "WAL fsync policy: off (survive process kills) or always (survive power loss)")
	compactEvery := flag.Int("compact-every", 0, "session WAL records between snapshot rewrites (0 = default 256)")
	logOn := flag.Bool("log", false, "structured request and job logs on stderr")
	slowOp := flag.Duration("slow-op", 0, "log traced spans slower than this with their ancestor path (0 = default 10s)")
	dumpStats := cli.Stats()
	startDebug := cli.DebugAddr()
	flag.Parse()
	defer dumpStats()
	startDebug()

	cfg := serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		JobTimeout: *jobTimeout,
		ResultTTL:  *resultTTL,
		ResultCap:  *resultCap,
		SessionTTL: *sessionTTL,
		SessionCap: *sessionCap,
		SlowOp:     *slowOp,
	}
	if *logOn {
		cfg.Logger = obs.NewLogger(os.Stderr, slog.LevelInfo)
	}
	if *dataDir != "" {
		policy, err := store.ParseSyncPolicy(*fsync)
		if err != nil {
			fatal(err)
		}
		st, err := store.OpenFile(*dataDir, policy)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		cfg.Store = st
		cfg.CompactEvery = *compactEvery
	}
	// Open the listener before recovery replay, behind a bootstrap
	// handler: alive (healthz 200) but not ready (readyz 503), every
	// other route 503 + Retry-After. Recovery of a big WAL can take a
	// while; a cluster router must be able to tell "restarting" from
	// "dead" during it.
	var handler atomic.Pointer[http.Handler]
	boot := bootstrapHandler()
	handler.Store(&boot)
	hs := &http.Server{
		Addr: *addr,
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*handler.Load()).ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintln(os.Stderr, "emiserve: listening on", *addr)

	srv := serve.New(cfg) // runs recovery replay synchronously
	if cfg.Store != nil {
		rec := srv.RecoveryReport()
		fmt.Fprintf(os.Stderr, "emiserve: recovered from %s: %d jobs requeued, %d results restored, %d sessions replayed",
			*dataDir, rec.Requeued, rec.Restored, rec.Sessions)
		if rec.LostJobs > 0 || rec.BadReplay > 0 {
			fmt.Fprintf(os.Stderr, " (%d jobs lost, %d sessions unreplayable)", rec.LostJobs, rec.BadReplay)
		}
		fmt.Fprintln(os.Stderr)
	}
	ready := srv.Handler()
	handler.Store(&ready)

	select {
	case err := <-errc:
		// Listener died before any signal: nothing to drain.
		fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	fmt.Fprintln(os.Stderr, "emiserve: draining (grace", *drainTimeout, ")")

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain to completion BEFORE closing the listener: a request racing
	// the shutdown lands on a still-accepting socket and gets a clean
	// 503 + Retry-After from the draining handlers, instead of a
	// connection refused or reset from a closed listener.
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "emiserve: forced drain:", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "emiserve: http shutdown:", err)
	}
	<-errc // ListenAndServe returns ErrServerClosed after Shutdown
}

// bootstrapHandler serves the pre-recovery window: the process is alive
// and owns its port, but has not finished rebuilding state.
func bootstrapHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"starting"}`)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"recovering"}`)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"recovering, try again shortly"}`)
	})
	return mux
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emiserve:", err)
	os.Exit(1)
}
