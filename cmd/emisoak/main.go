// Command emisoak is the crash-recovery soak harness: it runs a real
// emiserve against a durable data directory, throws mixed load at it
// (prediction bursts, placement jobs, chatty design sessions with SSE
// streams), SIGKILLs the server mid-load, restarts it, and verifies that
// nothing the server acknowledged was lost — every acked job still
// resolves, every acked session edit is present, and each recovered
// session snapshot is byte-identical to the client-side reference.
//
// Usage:
//
//	emisoak -emiserve ./emiserve [-data-dir DIR] [-cycles 3]
//	        [-soak 10s] [-verify-timeout 60s] [-sessions 2] [-job-workers 2]
//	        [-fsync off] [-seed 1]
//
// Exit status 0 means every cycle verified clean; 1 means acknowledged
// state was lost or corrupted (details on stderr). CI runs this as the
// crash-recovery smoke job.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/soak"
)

func main() {
	bin := flag.String("emiserve", "", "path to the emiserve binary (required)")
	dataDir := flag.String("data-dir", "", "durable data directory (empty = temp dir)")
	cycles := flag.Int("cycles", 3, "kill/restart cycles")
	soakDur := flag.Duration("soak", 10*time.Second, "load duration per cycle before the kill")
	verifyTimeout := flag.Duration("verify-timeout", 60*time.Second, "budget for post-restart verification")
	sessions := flag.Int("sessions", 2, "chatty session workers")
	jobWorkers := flag.Int("job-workers", 2, "job submission workers")
	fsync := flag.String("fsync", "off", "WAL fsync policy passed to emiserve")
	seed := flag.Int64("seed", 1, "deterministic load seed")
	flag.Parse()

	if *bin == "" {
		fatal(fmt.Errorf("-emiserve is required"))
	}
	dir := *dataDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "emisoak-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
	}

	h := &soak.Harness{
		Bin: *bin, DataDir: dir,
		Args: []string{"-fsync", *fsync},
	}
	if err := h.Start(); err != nil {
		fatal(err)
	}
	defer h.Kill()

	soaker := soak.NewSoak(soak.SoakOptions{
		BaseURL:    h.BaseURL(),
		Seed:       *seed,
		Sessions:   *sessions,
		JobWorkers: *jobWorkers,
	})

	failed := false
	for cycle := 1; cycle <= *cycles; cycle++ {
		fmt.Fprintf(os.Stderr, "emisoak: cycle %d/%d: %v of load, then SIGKILL\n",
			cycle, *cycles, *soakDur)
		loadCtx, stopLoad := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			soaker.Run(loadCtx)
			close(done)
		}()
		time.Sleep(*soakDur)

		h.Kill() // mid-load: in-flight requests die on the wire
		stopLoad()
		<-done

		if err := h.Start(); err != nil {
			fatal(err)
		}
		vctx, cancel := context.WithTimeout(context.Background(), *verifyTimeout)
		rep := soaker.Verify(vctx)
		cancel()
		fmt.Fprintf(os.Stderr, "emisoak: cycle %d verdict: %s\n", cycle, rep)
		for _, e := range rep.Errors {
			fmt.Fprintln(os.Stderr, "emisoak:   ", e)
		}
		if !rep.OK() {
			failed = true
		}
	}
	fmt.Fprintf(os.Stderr, "emisoak: totals: %d jobs acked, %d session ops acked, %d SSE deltas\n",
		soaker.AckedJobs(), soaker.AckedOps(), soaker.SSEDeltas())
	if failed {
		fmt.Fprintln(os.Stderr, "emisoak: FAIL: acknowledged state was lost")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "emisoak: PASS")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emisoak:", err)
	os.Exit(1)
}
