// Command emisoak is the crash-recovery soak harness: it runs a real
// emiserve against a durable data directory, throws mixed load at it
// (prediction bursts, placement jobs, chatty design sessions with SSE
// streams), SIGKILLs the server mid-load, restarts it, and verifies that
// nothing the server acknowledged was lost — every acked job still
// resolves, every acked session edit is present, and each recovered
// session snapshot is byte-identical to the client-side reference.
//
// With -cluster N it becomes the cluster soak instead: N replicas
// behind an in-process consistent-hash router, rolling SIGKILLs of
// replicas mid-load (two per cycle, each restarted before the next
// kill), and the same ledger verification — run through the router, so
// routing, takeover and admission control are on the hook for every
// acknowledged byte too.
//
// Usage:
//
//	emisoak -emiserve ./emiserve [-data-dir DIR] [-cycles 3]
//	        [-soak 10s] [-verify-timeout 60s] [-sessions 2] [-job-workers 2]
//	        [-fsync off] [-seed 1] [-cluster 0] [-probe-interval 200ms]
//
// Exit status 0 means every cycle verified clean; 1 means acknowledged
// state was lost or corrupted (details on stderr). CI runs this as the
// crash-recovery and cluster smoke jobs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/soak"
)

func main() {
	bin := flag.String("emiserve", "", "path to the emiserve binary (required)")
	dataDir := flag.String("data-dir", "", "durable data directory (empty = temp dir)")
	cycles := flag.Int("cycles", 3, "kill/restart cycles")
	soakDur := flag.Duration("soak", 10*time.Second, "load duration per cycle before the kill")
	verifyTimeout := flag.Duration("verify-timeout", 60*time.Second, "budget for post-restart verification")
	sessions := flag.Int("sessions", 2, "chatty session workers")
	jobWorkers := flag.Int("job-workers", 2, "job submission workers")
	fsync := flag.String("fsync", "off", "WAL fsync policy passed to emiserve")
	seed := flag.Int64("seed", 1, "deterministic load seed")
	clusterN := flag.Int("cluster", 0, "run N replicas behind an in-process router (0 = single server)")
	probeEvery := flag.Duration("probe-interval", 200*time.Millisecond, "router health-probe period in cluster mode")
	flag.Parse()

	if *bin == "" {
		fatal(fmt.Errorf("-emiserve is required"))
	}
	dir := *dataDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "emisoak-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
	}

	opts := soak.SoakOptions{
		Seed:       *seed,
		Sessions:   *sessions,
		JobWorkers: *jobWorkers,
	}
	var failed bool
	if *clusterN > 0 {
		failed = runCluster(*bin, dir, *clusterN, *fsync, *cycles, *soakDur,
			*verifyTimeout, *probeEvery, opts)
	} else {
		failed = runSingle(*bin, dir, *fsync, *cycles, *soakDur, *verifyTimeout, opts)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "emisoak: FAIL: acknowledged state was lost")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "emisoak: PASS")
}

// runSingle is the original single-server soak: load, SIGKILL, restart,
// verify, per cycle.
func runSingle(bin, dir, fsync string, cycles int, soakDur, verifyTimeout time.Duration,
	opts soak.SoakOptions) bool {
	h := &soak.Harness{
		Bin: bin, DataDir: dir,
		Args: []string{"-fsync", fsync},
	}
	if err := h.Start(); err != nil {
		fatal(err)
	}
	defer h.Kill()

	opts.BaseURL = h.BaseURL()
	soaker := soak.NewSoak(opts)

	failed := false
	for cycle := 1; cycle <= cycles; cycle++ {
		fmt.Fprintf(os.Stderr, "emisoak: cycle %d/%d: %v of load, then SIGKILL\n",
			cycle, cycles, soakDur)
		loadCtx, stopLoad := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			soaker.Run(loadCtx)
			close(done)
		}()
		time.Sleep(soakDur)

		h.Kill() // mid-load: in-flight requests die on the wire
		stopLoad()
		<-done

		if err := h.Start(); err != nil {
			fatal(err)
		}
		vctx, cancel := context.WithTimeout(context.Background(), verifyTimeout)
		rep := soaker.Verify(vctx)
		cancel()
		fmt.Fprintf(os.Stderr, "emisoak: cycle %d verdict: %s\n", cycle, rep)
		for _, e := range rep.Errors {
			fmt.Fprintln(os.Stderr, "emisoak:   ", e)
		}
		if !rep.OK() {
			failed = true
		}
	}
	fmt.Fprintf(os.Stderr, "emisoak: totals: %d jobs acked, %d session ops acked, %d SSE deltas\n",
		soaker.AckedJobs(), soaker.AckedOps(), soaker.SSEDeltas())
	return failed
}

// runCluster is the cluster soak: n replicas behind the router, two
// rolling SIGKILLs per cycle (kill, wait a third of the soak, restart,
// kill the next), then verification through the router. The replicas
// die hard mid-load; the router never does — like production, its
// routing tables outlive every replica.
func runCluster(bin, dir string, n int, fsync string, cycles int,
	soakDur, verifyTimeout, probeEvery time.Duration, opts soak.SoakOptions) bool {
	// Retention must outlast the soak: a replica that is never killed
	// prunes finished jobs past -result-cap while load still flows, and
	// the verifier would misread that designed eviction as durability
	// loss. (The single-server soak never trips this: its verify always
	// follows a restart, and recovery resurrects the whole WAL.)
	args := []string{"-fsync", fsync, "-result-cap", "65536"}
	ch, err := soak.NewClusterHarness(bin, dir, n, args)
	if err != nil {
		fatal(err)
	}
	if err := ch.Start(probeEvery); err != nil {
		fatal(err)
	}
	defer ch.Close()
	fmt.Fprintf(os.Stderr, "emisoak: cluster of %d replicas behind %s\n", n, ch.BaseURL())

	opts.BaseURL = ch.BaseURL()
	soaker := soak.NewSoak(opts)

	phase := soakDur / 3
	if phase <= 0 {
		phase = time.Second
	}
	failed := false
	for cycle := 1; cycle <= cycles; cycle++ {
		v1 := (cycle - 1) % n
		v2 := cycle % n
		fmt.Fprintf(os.Stderr, "emisoak: cycle %d/%d: load with rolling SIGKILL of replica %d then %d\n",
			cycle, cycles, v1, v2)
		loadCtx, stopLoad := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			soaker.Run(loadCtx)
			close(done)
		}()

		time.Sleep(phase)
		ch.KillReplica(v1)
		fmt.Fprintf(os.Stderr, "emisoak:   killed replica %d\n", v1)
		time.Sleep(phase)
		if err := ch.RestartReplica(v1); err != nil {
			fatal(err)
		}
		ch.KillReplica(v2)
		fmt.Fprintf(os.Stderr, "emisoak:   restarted replica %d, killed replica %d\n", v1, v2)
		time.Sleep(phase)
		if err := ch.RestartReplica(v2); err != nil {
			fatal(err)
		}

		stopLoad()
		<-done

		vctx, cancel := context.WithTimeout(context.Background(), verifyTimeout)
		if !ch.AwaitAllReady(vctx) {
			cancel()
			fatal(fmt.Errorf("cluster never became fully ready before verify"))
		}
		rep := soaker.Verify(vctx)
		cancel()
		fmt.Fprintf(os.Stderr, "emisoak: cycle %d verdict: %s\n", cycle, rep)
		for _, e := range rep.Errors {
			fmt.Fprintln(os.Stderr, "emisoak:   ", e)
		}
		if !rep.OK() {
			failed = true
		}
	}
	fmt.Fprintf(os.Stderr, "emisoak: totals: %d jobs acked, %d session ops acked, %d SSE deltas\n",
		soaker.AckedJobs(), soaker.AckedOps(), soaker.SSEDeltas())
	return failed
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emisoak:", err)
	os.Exit(1)
}
