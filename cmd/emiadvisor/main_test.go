package main

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/rules"
)

func testDesign() *layout.Design {
	d := &layout.Design{
		Name:      "advisor test",
		Boards:    1,
		Clearance: 0.5e-3,
		Areas: []layout.Area{
			{Name: "b", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, 0.08, 0.05))},
		},
		Rules: rules.NewSet(nil),
	}
	for i, ref := range []string{"C1", "C2"} {
		d.Comps = append(d.Comps, &layout.Component{
			Ref: ref, W: 0.018, L: 0.008, H: 0.014, Axis: geom.V3(0, 1, 0),
			Placed: true, Center: geom.V2(0.02+float64(i)*0.04, 0.025),
		})
	}
	d.Rules.Add(rules.Rule{RefA: "C1", RefB: "C2", PEMD: 0.024})
	return d
}

func TestREPLSession(t *testing.T) {
	d := testDesign()
	script := strings.Join([]string{
		"help",
		"pairs",
		"try C2 32 25 0",   // too close at parallel axes → RED
		"move C2 36 25 90", // rotated and clear of C1's body → GREEN
		"move C2 32 25 0",  // back into violation
		"legalize",
		"bbox",
		"undo",
		"report",
		"auto",
		"compact",
		"bogus",
		"quit",
	}, "\n")
	var out strings.Builder
	if err := repl(d, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"commands:",
		"GREEN C1-C2", // initial pairs listing is green
		"RED\n",       // the try
		"GREEN\n",     // the rotated move
		"undone",
		"re-placed",
		"placed 2 components",
		"moves, area",
		"unknown command",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("session output missing %q:\n%s", want, got)
		}
	}
	// The undo restored the pre-move rotation.
	if d.Find("C2").Rot != 0 && d.Find("C2").Placed {
		// auto re-placed everything afterwards, so only check it's legal.
		t.Log("layout re-placed by 'auto'")
	}
}

func TestREPLArgumentErrors(t *testing.T) {
	d := testDesign()
	script := "move C2 a b c\nmove C2 1\ntry zz 1 1 0\nsave\nquit\n"
	var out strings.Builder
	if err := repl(d, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"bad coordinates", "usage: move", "error:", "usage: save"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
