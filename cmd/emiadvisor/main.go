// Command emiadvisor is the interactive placement adviser in terminal
// form: it loads a design from the ASCII file interface and accepts
// editing commands on stdin, running the online design-rule check after
// every change — the paper's "online design rule checks visualize design
// rule violations immediately".
//
// Usage:
//
//	emiadvisor -in design.txt [-out placed.txt]
//
// Commands:
//
//	move <ref> <x_mm> <y_mm> <rot_deg>   apply a move (undoable)
//	try <ref> <x_mm> <y_mm> <rot_deg>    evaluate without applying
//	undo                                  revert the last move
//	report                                full DRC report
//	pairs                                 EMD pair status (red/green circles)
//	bbox                                  bounding box of the placed parts
//	auto                                  run the automatic placement method
//	legalize                              rip-up and re-place rule offenders
//	compact                               volume-minimisation pass
//	save <file>                           write the design
//	quit                                  exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/place"
)

func main() {
	in := flag.String("in", "", "input design file")
	out := flag.String("out", "", "design file written on quit")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "emiadvisor: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	d, err := layout.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if err := repl(d, os.Stdin, os.Stdout); err != nil {
		fatal(err)
	}
	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := layout.Write(g, d); err != nil {
			fatal(err)
		}
		if err := g.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *out)
	}
}

// repl runs the command loop; split out for testing.
func repl(d *layout.Design, in io.Reader, out io.Writer) error {
	adv := place.NewAdviser(d)
	sc := bufio.NewScanner(in)
	fmt.Fprintf(out, "loaded %q: %d components, %d rules. Type 'help'.\n",
		d.Name, len(d.Comps), d.RuleCount())
	prompt := func() { fmt.Fprint(out, "> ") }
	prompt()
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			prompt()
			continue
		}
		switch strings.ToLower(fields[0]) {
		case "quit", "exit":
			return nil
		case "help":
			fmt.Fprintln(out, "commands: move try undo report pairs bbox auto legalize compact save quit")
		case "move", "try":
			if len(fields) != 5 {
				fmt.Fprintln(out, "usage: move|try <ref> <x_mm> <y_mm> <rot_deg>")
				break
			}
			x, errX := strconv.ParseFloat(fields[2], 64)
			y, errY := strconv.ParseFloat(fields[3], 64)
			deg, errR := strconv.ParseFloat(fields[4], 64)
			if errX != nil || errY != nil || errR != nil {
				fmt.Fprintln(out, "bad coordinates")
				break
			}
			pos := geom.V2(x*1e-3, y*1e-3)
			rot := geom.Rad(deg)
			var err error
			var rep interface{ Green() bool }
			if strings.EqualFold(fields[0], "move") {
				rep, err = adv.Move(fields[1], pos, rot)
			} else {
				rep, err = adv.Try(fields[1], pos, rot)
			}
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			if rep.Green() {
				fmt.Fprintln(out, "GREEN")
			} else {
				fmt.Fprintln(out, "RED")
			}
		case "undo":
			if adv.Undo() {
				fmt.Fprintln(out, "undone")
			} else {
				fmt.Fprintln(out, "nothing to undo")
			}
		case "report":
			fmt.Fprint(out, adv.Report())
		case "pairs":
			for _, p := range adv.Report().Pairs {
				mark := "GREEN"
				if !p.OK {
					mark = "RED"
				}
				fmt.Fprintf(out, "%-5s %s-%s need %.1f mm have %.1f mm\n",
					mark, p.RefA, p.RefB, p.Required*1e3, p.Actual*1e3)
			}
		case "bbox":
			bb := adv.BoundingBox(0)
			fmt.Fprintf(out, "%.1f × %.1f mm\n", bb.W()*1e3, bb.H()*1e3)
		case "auto":
			res, err := place.AutoPlace(d, place.Options{})
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			fmt.Fprintf(out, "placed %d components in %v\n", res.Placed, res.Elapsed)
		case "legalize":
			moved, err := place.Legalize(d, place.Options{})
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			fmt.Fprintf(out, "re-placed %d component(s): %v\n", len(moved), moved)
		case "compact":
			res, err := place.Compact(d, 0, 0)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			fmt.Fprintf(out, "%d moves, area %.1f → %.1f cm²\n",
				res.Moves, res.AreaBefore*1e4, res.AreaAfter*1e4)
		case "save":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: save <file>")
				break
			}
			g, err := os.Create(fields[1])
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			if err := layout.Write(g, d); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
			g.Close()
			fmt.Fprintln(out, "saved", fields[1])
		default:
			fmt.Fprintf(out, "unknown command %q (try 'help')\n", fields[0])
		}
		prompt()
	}
	return sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emiadvisor:", err)
	os.Exit(1)
}
