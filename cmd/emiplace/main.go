// Command emiplace is the placement tool: it reads a design in the ASCII
// file interface (board areas, keepouts, components, nets, PEMD rules),
// runs the three-step automatic placement method, reports the design-rule
// check with red/green pair status, and writes the placed design back (and
// optionally an SVG rendering).
//
// Usage:
//
//	emiplace -in design.txt -out placed.txt [-svg layout.svg]
//	         [-baseline] [-skip-rotation] [-partition] [-grid mm] [-timeout 2m]
//	         [-seed n] [-jitter x] [-anneal iters] [-trace trace.json]
//
// With -jitter and/or -anneal the placement consumes randomness, all of
// which flows from the single -seed source — the same seed reproduces the
// placement byte for byte.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/drc"
	"repro/internal/layout"
	"repro/internal/place"
	"repro/internal/render"
	"repro/internal/route"
)

func main() {
	in := flag.String("in", "", "input design file (ASCII interface)")
	out := flag.String("out", "", "output design file with placements")
	svg := flag.String("svg", "", "optional SVG rendering of board 0")
	baseline := flag.Bool("baseline", false, "ignore EMD rules (wirelength-only baseline)")
	skipRot := flag.Bool("skip-rotation", false, "skip the optimal-rotation step")
	part := flag.Bool("partition", false, "partition a two-board design")
	grid := flag.Float64("grid", 0, "candidate raster in mm (0 = auto)")
	seed := flag.Int64("seed", 0, "seed for all randomized placement steps")
	jitter := flag.Float64("jitter", 0, "priority order jitter 0..1 (0 = deterministic order)")
	annealIters := flag.Int("anneal", 0, "seeded annealing refinement proposals per board (0 = off)")
	compact := flag.Bool("compact", false, "compact the legal layout (volume minimisation)")
	routes := flag.Bool("routes", false, "print Manhattan star routes with trace inductances")
	jsonOut := flag.Bool("json", false, "print the DRC report as JSON (for CI pipelines)")
	dumpStats := cli.Stats()
	mkCtx := cli.Timeout()
	mkTrace := cli.Trace()
	applySolver := cli.Solver()
	flag.Parse()
	if err := applySolver(); err != nil {
		fatal(err)
	}

	if *in == "" {
		fmt.Fprintln(os.Stderr, "emiplace: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	d, err := layout.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	ctx, cancel := mkCtx()
	defer cancel()
	ctx, finishTrace := mkTrace(ctx)
	res, err := place.AutoPlaceCtx(ctx, d, place.Options{
		IgnoreEMD:    *baseline,
		SkipRotation: *skipRot,
		Partition:    *part,
		GridStep:     *grid * 1e-3,
		Seed:         *seed,
		OrderJitter:  *jitter,
		AnnealIters:  *annealIters,
	})
	if res != nil {
		fmt.Printf("placed %d components in %v", res.Placed, res.Elapsed)
		if res.RotationPasses > 0 {
			fmt.Printf(" (rotation: Σ EMD %.0f mm → %.0f mm in %d passes)",
				res.EMDSumBefore*1e3, res.EMDSumAfter*1e3, res.RotationPasses)
		}
		if res.AnnealProposals > 0 {
			fmt.Printf(" (anneal: %d/%d proposals accepted)",
				res.AnnealAccepted, res.AnnealProposals)
		}
		fmt.Println()
	}
	if err != nil {
		fatal(err)
	}

	if *compact && !*baseline {
		for b := 0; b < d.Boards; b++ {
			cres, err := place.Compact(d, b, 0)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("compacted board %d: %d moves, bounding area %.1f → %.1f cm²\n",
				b, cres.Moves, cres.AreaBefore*1e4, cres.AreaAfter*1e4)
		}
	}

	rep := drc.CheckCtx(ctx, d)
	finishTrace()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Green      bool
			Checks     int
			Violations []drc.Violation
			Pairs      []drc.PairStatus
		}{rep.Green(), rep.Checks, rep.Violations, rep.Pairs}); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(rep)
	}

	if *routes {
		rts, err := route.Nets(d, route.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Print(route.Report(rts))
	}

	if *out != "" {
		g, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := layout.Write(g, d); err != nil {
			fatal(err)
		}
		if err := g.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *out)
	}
	if *svg != "" {
		g, err := os.Create(*svg)
		if err != nil {
			fatal(err)
		}
		if err := render.SVG(g, d, rep, render.Options{ShowRules: true, ShowAxes: true}); err != nil {
			fatal(err)
		}
		if err := g.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *svg)
	}
	// Called explicitly: the non-green exit below bypasses defers.
	dumpStats()
	if !rep.Green() && !*baseline {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emiplace:", err)
	os.Exit(1)
}
