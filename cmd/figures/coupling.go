package main

import (
	"context"
	"fmt"
	"math"

	"repro/internal/components"
	"repro/internal/geom"
	"repro/internal/peec"
	"repro/internal/rules"
)

// fig5 reproduces the distance dependency of the magnetic coupling factor
// of two 1.5 µF X-capacitors with parallel magnetic axes.
func fig5(ctx context.Context, _ string) error {
	m := components.NewX2Cap("X2-1u5", 1.5e-6)
	a := &components.Instance{Ref: "C1", Model: m}
	fmt.Println("distance_mm\tcoupling_factor")
	for mm := 16.0; mm <= 60.0; mm += 4 {
		b := &components.Instance{Ref: "C2", Model: m, Center: geom.V2(0, mm*1e-3)}
		k := math.Abs(components.CouplingFactor(a, b, peec.DefaultOrder))
		fmt.Printf("%.0f\t%.5f\n", mm, k)
	}
	return nil
}

// fig6 reproduces the capacitor pair placement rule: parallel axes need the
// full minimum distance, rotating one part by 90° removes the requirement.
func fig6(ctx context.Context, _ string) error {
	m := components.NewX2Cap("X2-1u5", 1.5e-6)
	const kmax = 0.01
	pemd, err := rules.DerivePEMD(m, m, rules.DeriveOptions{KMax: kmax})
	if err != nil {
		return err
	}
	fmt.Printf("# k_max = %.3g  →  PEMD (parallel axes) = %.1f mm\n", kmax, pemd*1e3)
	fmt.Println("rotation_deg\tk_at_PEMD_distance\trequired_distance_mm")
	a := &components.Instance{Ref: "C1", Model: m}
	for deg := 0; deg <= 90; deg += 15 {
		rot := geom.Rad(float64(deg))
		b := &components.Instance{Ref: "C2", Model: m, Center: geom.V2(0, pemd), Rot: rot}
		k := math.Abs(components.CouplingFactor(a, b, peec.DefaultOrder))
		emd := rules.EMD(pemd, rot)
		fmt.Printf("%d\t%.5f\t%.1f\n", deg, k, emd*1e3)
	}
	return nil
}

// fig7 reproduces the coupling of two bobbin coils of different size vs
// center-to-center distance.
func fig7(ctx context.Context, _ string) error {
	small := components.NewBobbinChoke("DR-small", 10, 3e-3)
	big := components.NewBobbinChoke("DR-big", 10, 5e-3)
	a := &components.Instance{Ref: "L1", Model: small}
	fmt.Println("distance_mm\tk_small_small\tk_small_big")
	for mm := 14.0; mm <= 60.0; mm += 4 {
		bs := &components.Instance{Ref: "L2", Model: small, Center: geom.V2(mm*1e-3, 0)}
		bb := &components.Instance{Ref: "L3", Model: big, Center: geom.V2(mm*1e-3, 0)}
		ks := math.Abs(components.CouplingFactor(a, bs, peec.DefaultOrder))
		kb := math.Abs(components.CouplingFactor(a, bb, peec.DefaultOrder))
		fmt.Printf("%.0f\t%.5f\t%.5f\n", mm, ks, kb)
	}
	return nil
}

// fig8 scans a filter capacitor around a 2-winding and a 3-winding
// common-mode choke: the 2-winding design offers decoupled positions, the
// 3-winding design's rotating stray field does not.
func fig8(ctx context.Context, _ string) error {
	victim := components.NewX2Cap("X2", 1e-6)
	cm2 := components.NewCMChoke2("CM2")
	cm3 := components.NewCMChoke3("CM3")
	const d = 0.035
	fmt.Println("angle_deg\tk_eff_2winding\tk_eff_3winding")
	min2, max2 := math.Inf(1), 0.0
	min3, max3 := math.Inf(1), 0.0
	for deg := 0; deg < 360; deg += 15 {
		phi := geom.Rad(float64(deg))
		pos := geom.V2(d*math.Cos(phi), d*math.Sin(phi))
		cond := victim.Conductor(phi + math.Pi/2).Translate(pos.Lift(0))
		k2 := cm2.EffectiveCouplingTo(cond, 0, peec.DefaultOrder)
		k3 := cm3.EffectiveCouplingTo(cond, 0, peec.DefaultOrder)
		fmt.Printf("%d\t%.6f\t%.6f\n", deg, k2, k3)
		min2, max2 = math.Min(min2, k2), math.Max(max2, k2)
		min3, max3 = math.Min(min3, k3), math.Max(max3, k3)
	}
	fmt.Printf("# 2-winding min/max = %.4f (decoupled positions exist)\n", min2/max2)
	fmt.Printf("# 3-winding min/max = %.4f (no decoupled position)\n", min3/max3)
	return nil
}

// fig4 prints the stray-field magnitude map of two coupled bobbin
// inductors, the PEEC stand-in for the paper's FEM flux picture.
func fig4(ctx context.Context, _ string) error {
	l1 := components.NewBobbinChoke("DR", 10, 4e-3)
	a := l1.Conductor(0).Translate(geom.V3(-0.012, 0, 0))
	b := l1.Conductor(0).Translate(geom.V3(0.012, 0, 0))
	grid := peec.FieldMap([]*peec.Conductor{a, b}, geom.R(-0.03, -0.02, 0.03, 0.02), 0.005, 25, 13)
	fmt.Println("# |B| in dB re 1 µT at 1 A, 5 mm above board, 60×40 mm window")
	for iy := len(grid) - 1; iy >= 0; iy-- {
		for ix := range grid[iy] {
			db := 20 * math.Log10(math.Max(grid[iy][ix], 1e-12)/1e-6)
			fmt.Printf("%5.0f", db)
		}
		fmt.Println()
	}
	return nil
}

// fig10 tabulates the EMD cosine rule between two chokes.
func fig10(ctx context.Context, _ string) error {
	const pemdMM = 25.0
	fmt.Printf("# PEMD = %.0f mm (parallel magnetic axes)\n", pemdMM)
	fmt.Println("alpha_deg\tEMD_mm")
	for deg := 0; deg <= 90; deg += 10 {
		emd := rules.EMD(pemdMM*1e-3, geom.Rad(float64(deg)))
		fmt.Printf("%d\t%.1f\n", deg, emd*1e3)
	}
	return nil
}
