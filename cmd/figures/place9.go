package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/place"
	"repro/internal/render"
	"repro/internal/workload"
)

// fig9 reproduces the complex-board experiment: 29 devices, 100 minimum
// distances and 3 functional groups placed automatically "in seconds".
func fig9(ctx context.Context, svgdir string) error {
	d := workload.Complex29()
	res, err := place.AutoPlaceCtx(ctx, d, place.Options{})
	if err != nil {
		return err
	}
	rep := place.Verify(d)
	fmt.Printf("devices placed:        %d / %d\n", res.Placed, len(d.Comps))
	fmt.Printf("minimum distances:     %d\n", d.RuleCount())
	fmt.Printf("functional groups:     %d\n", len(d.GroupNames()))
	fmt.Printf("rotation passes:       %d (Σ EMD %.0f mm → %.0f mm)\n",
		res.RotationPasses, res.EMDSumBefore*1e3, res.EMDSumAfter*1e3)
	fmt.Printf("computation time:      %v\n", res.Elapsed)
	fmt.Printf("legal arrangement:     %v (%d checks)\n", rep.Green(), rep.Checks)
	if !rep.Green() {
		fmt.Print(rep)
	}
	if svgdir != "" {
		f, err := os.Create(filepath.Join(svgdir, "fig09_complex29.svg"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := render.SVG(f, d, rep, render.Options{ShowRules: true}); err != nil {
			return err
		}
		fmt.Printf("# SVG written to %s\n", filepath.Join(svgdir, "fig09_complex29.svg"))
	}
	return nil
}
