package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected and returns the output.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	if errRun != nil {
		t.Fatal(errRun)
	}
	return out
}

// TestGoldenFigures pins the exact numeric series of the deterministic
// headline figures (the coupling-vs-distance curve of Figure 5 and the
// EMD cosine table of Figure 10). Any numerics change that shifts these
// lines shows up here; regenerate with -update after a deliberate change.
func TestGoldenFigures(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") == "1"
	for _, tc := range []struct {
		name string
		fn   figureFunc
	}{
		{"fig05", fig5},
		{"fig10", fig10},
	} {
		got := captureStdout(t, func() error { return tc.fn(context.Background(), "") })
		golden := filepath.Join("..", "..", "testdata", tc.name+".golden")
		if update {
			if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (run with UPDATE_GOLDEN=1): %v", err)
		}
		if got != string(want) {
			t.Errorf("%s output drifted from golden:\n--- got ---\n%s--- want ---\n%s",
				tc.name, got, want)
		}
	}
}
