package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestFastFiguresRun exercises the cheap figure generators end to end (the
// buck-flow figures are covered by internal/buck's integration tests and
// would dominate the test time here).
func TestFastFiguresRun(t *testing.T) {
	// Silence stdout while running the generators.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()

	for _, n := range []int{4, 5, 6, 10, 11} {
		if err := figures[n].fn(context.Background(), ""); err != nil {
			t.Errorf("figure %d: %v", n, err)
		}
	}
}

// TestBuckFlowFigures exercises the figure generators that share the
// cached buck flow (the flow runs once, then every figure renders from
// it), plus the placement figure, against a temp SVG directory.
func TestBuckFlowFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("full buck flow")
	}
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()

	dir := t.TempDir()
	for _, n := range []int{1, 2, 12, 13, 14, 15, 16, 17, 18, 9} {
		if err := figures[n].fn(context.Background(), dir); err != nil {
			t.Errorf("figure %d: %v", n, err)
		}
	}
	// The layout figures wrote their SVGs.
	for _, name := range []string{
		"fig15_unfavorable.svg", "fig16_optimized.svg",
		"fig17_rules_met.svg", "fig18_groups.svg", "fig09_complex29.svg",
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

func TestFigureRegistryComplete(t *testing.T) {
	// Every evaluation figure of the paper (1–18 except the photographs
	// 3 and the GUI-only sub-figures) must be registered.
	for _, n := range []int{1, 2, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18} {
		f, ok := figures[n]
		if !ok {
			t.Errorf("figure %d missing from the registry", n)
			continue
		}
		if f.title == "" || f.fn == nil {
			t.Errorf("figure %d incomplete", n)
		}
	}
}
