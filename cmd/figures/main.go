// Command figures regenerates every figure of the paper's evaluation as
// printed data series (and optionally SVG renderings of the layout
// figures). See DESIGN.md §4 for the experiment index.
//
// Usage:
//
//	figures -fig 5            # one figure
//	figures -all              # all figures
//	figures -all -svgdir out  # also write layout SVGs
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cli"
)

// figureFunc renders one figure's data to stdout; svgdir may be empty.
// ctx carries cancellation and the optional -trace span collection; it
// never changes the computed data.
type figureFunc func(ctx context.Context, svgdir string) error

var figures = map[int]struct {
	title string
	fn    figureFunc
}{
	1:  {"Conducted noise of the buck converter, unfavourable placement", fig1},
	2:  {"Optimized placement reduces emissions (same components)", fig2},
	4:  {"Magnetic stray-field map of two coupled bobbin inductors", fig4},
	5:  {"Coupling factor vs distance, two 1.5 µF X-capacitors", fig5},
	6:  {"Placement rules for two capacitors: rotation shrinks the distance", fig6},
	7:  {"Coupling factor of two bobbin coils of different size", fig7},
	8:  {"Capacitor positions around 2- and 3-winding CM chokes", fig8},
	9:  {"Automatic placement: 29 devices, 100 min distances, 3 groups", fig9},
	10: {"Effective minimum distance EMD = PEMD·cos(alpha)", fig10},
	11: {"Buck converter PEEC model inventory", fig11},
	12: {"Measured conducted noise (virtual measurement)", fig12},
	13: {"Simulated interference neglecting magnetic coupling", fig13},
	14: {"Prediction including magnetic couplings", fig14},
	15: {"Magnetic coupling violations of the original layout (red circles)", fig15},
	16: {"Result of the automatic placement function (buck board)", fig16},
	17: {"All distance rules met after automatic placement (green circles)", fig17},
	18: {"Functional groups placed in coherent areas", fig18},
	// Extensions beyond the paper's figures.
	19: {"EXTENSION: capacitive body coupling vs frequency band", fig19},
	20: {"EXTENSION: shielding-plane dependency of the PEMD rules", fig20},
	21: {"EXTENSION: time-domain vs harmonic-domain cross-validation", fig21},
	22: {"EXTENSION: common-mode path, CM choke and Y-cap placement", fig22},
	23: {"EXTENSION: three-phase inverter CM with 3-winding choke", fig23},
	24: {"EXTENSION: virtual near-field scan of the buck board", fig24},
}

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate")
	all := flag.Bool("all", false, "regenerate every figure")
	svgdir := flag.String("svgdir", "", "directory for SVG renderings of layout figures")
	dumpStats := cli.Stats()
	mkCtx := cli.Timeout()
	mkTrace := cli.Trace()
	applySolver := cli.Solver()
	flag.Parse()
	if err := applySolver(); err != nil {
		fatal(err)
	}
	defer dumpStats()

	if *svgdir != "" {
		if err := os.MkdirAll(*svgdir, 0o755); err != nil {
			fatal(err)
		}
	}
	var nums []int
	if *all {
		for n := range figures {
			nums = append(nums, n)
		}
		sort.Ints(nums)
	} else if f, ok := figures[*fig]; ok {
		_ = f
		nums = []int{*fig}
	} else {
		fmt.Fprintln(os.Stderr, "usage: figures -fig N | -all   (figures:",
			func() []int {
				var ks []int
				for k := range figures {
					ks = append(ks, k)
				}
				sort.Ints(ks)
				return ks
			}(), ")")
		os.Exit(2)
	}

	ctx, cancel := mkCtx()
	defer cancel()
	ctx, finishTrace := mkTrace(ctx)
	for _, n := range nums {
		f := figures[n]
		fmt.Printf("== Figure %d: %s ==\n", n, f.title)
		if err := f.fn(ctx, *svgdir); err != nil {
			fatal(fmt.Errorf("figure %d: %w", n, err))
		}
		fmt.Println()
	}
	finishTrace()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
