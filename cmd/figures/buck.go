package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/buck"
	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/emi"
	"repro/internal/render"
)

// buckState caches the expensive buck flow across figures in one run.
type buckState struct {
	unfav    *core.Project
	opt      *core.Project
	sUnfav   *emi.Spectrum // unfavourable, with couplings
	sOpt     *emi.Spectrum // optimised, with couplings
	sNoCoup  *emi.Spectrum // unfavourable, couplings neglected
	measured *emi.Spectrum
	pairs    [][2]string
}

var buckCache *buckState

// buckFlow runs the whole paper flow once and caches the artifacts.
func buckFlow(ctx context.Context) (*buckState, error) {
	if buckCache != nil {
		return buckCache, nil
	}
	st := &buckState{}

	// Unfavourable project: EMI-blind baseline placement, then rules
	// derived so the DRC can show the red circles of Figure 15.
	st.unfav = buck.Project()
	if err := buck.Unfavorable(st.unfav); err != nil {
		return nil, err
	}
	pairs, err := buck.DeriveAllRules(st.unfav, 0.01, 3, 0.01)
	if err != nil {
		return nil, err
	}
	st.pairs = pairs
	if st.sUnfav, err = st.unfav.PredictCtx(ctx, core.PredictOptions{WithCouplings: true}); err != nil {
		return nil, err
	}
	if st.sNoCoup, err = st.unfav.PredictCtx(ctx, core.PredictOptions{WithCouplings: false}); err != nil {
		return nil, err
	}
	if st.measured, err = st.unfav.VirtualMeasurement(emi.BandStop, 2, 2008); err != nil {
		return nil, err
	}

	// Optimised project: same rules, automatic placement.
	st.opt = buck.Project()
	st.opt.Design.Rules = st.unfav.Design.Rules
	if _, err := buck.Optimize(st.opt); err != nil {
		return nil, err
	}
	if st.sOpt, err = st.opt.PredictCtx(ctx, core.PredictOptions{WithCouplings: true}); err != nil {
		return nil, err
	}
	buckCache = st
	return st, nil
}

// printSpectrum emits a spectrum with the applicable CISPR 25 limits.
func printSpectrum(s *emi.Spectrum, every int) {
	fmt.Println("freq_kHz\tlevel_dBuV\tlimit_dBuV\tin_service_band")
	for i, f := range s.Freqs {
		if i%every != 0 {
			continue
		}
		limit, inBand := emi.Limit(f)
		fmt.Printf("%.0f\t%.1f\t%.1f\t%v\n", f/1e3, s.DB[i], limit, inBand)
	}
}

// writeSpectrumSVG plots spectra into svgdir if set.
func writeSpectrumSVG(svgdir, name, title string, series []render.SpectrumSeries) error {
	if svgdir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(svgdir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := render.SpectrumSVG(f, series, title); err != nil {
		return err
	}
	fmt.Printf("# SVG written to %s\n", filepath.Join(svgdir, name))
	return nil
}

func fig1(ctx context.Context, svgdir string) error {
	st, err := buckFlow(ctx)
	if err != nil {
		return err
	}
	printSpectrum(st.sUnfav, 20)
	v := st.sUnfav.Violations()
	fmt.Printf("# CISPR 25 class 5 violations: %d, worst margin %.1f dB\n",
		len(v), st.sUnfav.WorstMargin())
	return writeSpectrumSVG(svgdir, "fig01_unfavorable_spectrum.svg",
		"Conducted noise, unfavourable placement (CISPR 25 limits dashed)",
		[]render.SpectrumSeries{{Name: "unfavourable", Spectrum: st.sUnfav}})
}

func fig2(ctx context.Context, svgdir string) error {
	st, err := buckFlow(ctx)
	if err != nil {
		return err
	}
	printSpectrum(st.sOpt, 20)
	maxRed := 0.0
	for i := range st.sUnfav.DB {
		if d := st.sUnfav.DB[i] - st.sOpt.DB[i]; d > maxRed {
			maxRed = d
		}
	}
	fmt.Printf("# violations: %d, worst margin %.1f dB, reduction up to %.1f dB vs Figure 1\n",
		len(st.sOpt.Violations()), st.sOpt.WorstMargin(), maxRed)
	return writeSpectrumSVG(svgdir, "fig02_optimized_spectrum.svg",
		"Optimized placement reduces emissions — same components",
		[]render.SpectrumSeries{
			{Name: "unfavourable", Spectrum: st.sUnfav},
			{Name: "optimized", Spectrum: st.sOpt},
		})
}

func fig11(ctx context.Context, _ string) error {
	p := buck.Project()
	fmt.Println("ref\tmodel\tbody_mm\tsegments\tself_L")
	for _, ref := range []string{"CIN1", "CIN2", "CB1", "LF1", "L1", "CO1", "LF2", "CX1", "Q1", "D1", "U1"} {
		m := p.Models[ref]
		w, l, h := m.Size()
		cond := m.Conductor(0)
		selfL := "-"
		if len(cond.Segments) > 0 {
			selfL = fmt.Sprintf("%.1f nH", cond.SelfInductance()*1e9)
		}
		fmt.Printf("%s\t%s\t%.1f×%.1f×%.1f\t%d\t%s\n",
			ref, m.Name(), w*1e3, l*1e3, h*1e3, len(cond.Segments), selfL)
	}
	fmt.Printf("# circuit: %d elements, %d nodes, sources %v, measured at %s\n",
		len(p.Circuit.Elements), len(p.Circuit.Nodes()), p.Sources, p.MeasureNode)
	return nil
}

func fig12(ctx context.Context, _ string) error {
	st, err := buckFlow(ctx)
	if err != nil {
		return err
	}
	printSpectrum(st.measured, 20)
	fmt.Println("# virtual CISPR 25 measurement of the unfavourable layout (full coupled model + receiver ripple)")
	return nil
}

func fig13(ctx context.Context, _ string) error {
	st, err := buckFlow(ctx)
	if err != nil {
		return err
	}
	printSpectrum(st.sNoCoup, 20)
	c := emi.Compare(st.measured, st.sNoCoup)
	fmt.Printf("# vs measurement: levels off by up to %.1f dB (mean %.1f dB) — prediction unusable without couplings\n",
		c.MaxAbsDelta, c.MeanAbsDelta)
	return nil
}

func fig14(ctx context.Context, _ string) error {
	st, err := buckFlow(ctx)
	if err != nil {
		return err
	}
	printSpectrum(st.sUnfav, 20)
	c := emi.Compare(st.measured, st.sUnfav)
	fmt.Printf("# vs measurement: within %.1f dB everywhere (mean %.1f dB, correlation %.3f) — good coincidence\n",
		c.MaxAbsDelta, c.MeanAbsDelta, c.Correlation)
	return nil
}

// writeLayoutSVG renders a project layout if svgdir is set.
func writeLayoutSVG(svgdir, name string, p *core.Project, rep *drc.Report) error {
	if svgdir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(svgdir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := render.SVG(f, p.Design, rep, render.Options{ShowRules: true, ShowAxes: true}); err != nil {
		return err
	}
	fmt.Printf("# SVG written to %s\n", filepath.Join(svgdir, name))
	return nil
}

func fig15(ctx context.Context, svgdir string) error {
	st, err := buckFlow(ctx)
	if err != nil {
		return err
	}
	rep := st.unfav.Verify()
	fmt.Print(rep)
	fmt.Printf("# red EMD circles: %d of %d rules violated in the original layout\n",
		len(rep.ByKind(drc.KindEMD)), st.unfav.Design.RuleCount())
	return writeLayoutSVG(svgdir, "fig15_unfavorable.svg", st.unfav, rep)
}

func fig16(ctx context.Context, svgdir string) error {
	st, err := buckFlow(ctx)
	if err != nil {
		return err
	}
	fmt.Println("ref\tx_mm\ty_mm\trot_deg\tgroup")
	for _, c := range st.opt.Design.Comps {
		fmt.Printf("%s\t%.1f\t%.1f\t%.0f\t%s\n",
			c.Ref, c.Center.X*1e3, c.Center.Y*1e3, c.Rot*180/3.141592653589793, c.Group)
	}
	return writeLayoutSVG(svgdir, "fig16_optimized.svg", st.opt, st.opt.Verify())
}

func fig17(ctx context.Context, svgdir string) error {
	st, err := buckFlow(ctx)
	if err != nil {
		return err
	}
	rep := st.opt.Verify()
	fmt.Print(rep)
	green := 0
	for _, p := range rep.Pairs {
		if p.OK {
			green++
		}
	}
	fmt.Printf("# %d of %d EMD circles green, violations: %d\n",
		green, len(rep.Pairs), len(rep.Violations))
	return writeLayoutSVG(svgdir, "fig17_rules_met.svg", st.opt, rep)
}

func fig18(ctx context.Context, svgdir string) error {
	st, err := buckFlow(ctx)
	if err != nil {
		return err
	}
	d := st.opt.Design
	for _, g := range d.GroupNames() {
		fmt.Printf("group %s:", g)
		for _, c := range d.Groups()[g] {
			fmt.Printf(" %s(%.0f,%.0f)", c.Ref, c.Center.X*1e3, c.Center.Y*1e3)
		}
		fmt.Println()
	}
	rep := st.opt.Verify()
	fmt.Printf("# group-coherence violations: %d\n", len(rep.ByKind(drc.KindGroup)))
	return writeLayoutSVG(svgdir, "fig18_groups.svg", st.opt, rep)
}
