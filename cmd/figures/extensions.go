package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/buck"
	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/emi"
	"repro/internal/inverter"
	"repro/internal/rules"
)

// fig19 (extension, not in the paper) quantifies the capacitive body
// coupling the paper defers to future work: spectrum deltas per band when
// the panel-method body capacitances are added to the coupled prediction.
func fig19(ctx context.Context, _ string) error {
	p := buck.Project()
	if err := buck.Unfavorable(p); err != nil {
		return err
	}
	cs, err := p.ExtractBodyCapacitances(p.CapPairs())
	if err != nil {
		return err
	}
	maxPair, maxC := [2]string{}, 0.0
	for pair, c := range cs {
		if c > maxC {
			maxPair, maxC = pair, c
		}
	}
	fmt.Printf("# %d body capacitances extracted; largest %s-%s = %.2f pF\n",
		len(cs), maxPair[0], maxPair[1], maxC*1e12)
	sInd, err := p.PredictCtx(ctx, core.PredictOptions{WithCouplings: true})
	if err != nil {
		return err
	}
	sCap, err := p.PredictCtx(ctx, core.PredictOptions{WithCouplings: true, WithCapacitive: true})
	if err != nil {
		return err
	}
	fmt.Println("band_MHz\tinductive_only_dBuV\tplus_capacitive_dBuV\tdelta_dB")
	for _, band := range [][2]float64{{0.15, 1}, {1, 10}, {10, 50}, {50, 108}} {
		_, a := sInd.InBand(band[0]*1e6, band[1]*1e6).Max()
		_, b := sCap.InBand(band[0]*1e6, band[1]*1e6).Max()
		fmt.Printf("%.2f–%.0f\t%.1f\t%.1f\t%+.1f\n", band[0], band[1], a, b, b-a)
	}
	fmt.Println("# capacitive coupling gains influence at higher frequencies (paper §1)")
	return nil
}

// fig21 (extension) cross-validates the two independent prediction paths
// on the buck converter: harmonic-domain MNA with analytic trapezoid
// Fourier coefficients vs time-domain trapezoidal integration measured by
// the CISPR-16-style receiver (peak detector), at the switching
// fundamental where periodic steady state is reached.
func fig21(ctx context.Context, _ string) error {
	p := buck.Project()
	if err := buck.Unfavorable(p); err != nil {
		return err
	}
	opt := core.PredictOptions{WithCouplings: false}
	sFreq, err := p.PredictCtx(ctx, opt)
	if err != nil {
		return err
	}
	sTime, err := p.PredictTransient(opt, 150, 2.5e-9, emi.Peak, 1)
	if err != nil {
		return err
	}
	fmt.Println("path\tf_kHz\tlevel_dBuV")
	fmt.Printf("harmonic-domain (MNA)\t%.0f\t%.1f\n", sFreq.Freqs[0]/1e3, sFreq.DB[0])
	fmt.Printf("time-domain + receiver\t%.0f\t%.1f\n", sTime.Freqs[0]/1e3, sTime.DB[0])
	fmt.Printf("# delta %.1f dB; full 8-harmonic agreement is unit-tested on a damped circuit\n",
		sTime.DB[0]-sFreq.DB[0])
	return nil
}

// fig22 (extension) runs the common-mode variant of the case study: two
// LISNs, CM choke, Y-capacitors and the switch-node dv/dt pumping the
// heatsink capacitance. The Y-capacitor's position relative to the choke
// (Figure 8) enters as a coupling factor and decides the HF filtering.
func fig22(ctx context.Context, _ string) error {
	fmt.Printf("# heatsink (tab-to-chassis) capacitance: %.1f pF\n", buck.HeatsinkCapacitance()*1e12)
	variant := func(name string, yCapK float64, mutate func(*core.Project)) error {
		p, err := buck.CMProject(yCapK)
		if err != nil {
			return err
		}
		if mutate != nil {
			mutate(p)
		}
		s, err := (&emi.Predictor{
			Circuit: p.Circuit, Sources: p.Sources, MeasureNode: p.MeasureNode,
		}).SpectrumCtx(ctx)
		if err != nil {
			return err
		}
		_, lf := s.InBand(150e3, 5e6).Max()
		_, mf := s.InBand(5e6, 30e6).Max()
		_, hf := s.InBand(30e6, 108e6).Max()
		fmt.Printf("%-28s %7.1f %7.1f %7.1f\n", name, lf, mf, hf)
		return nil
	}
	fmt.Printf("%-28s %7s %7s %7s  [dBµV]\n", "variant", "LF", "MF", "HF")
	if err := variant("Y-cap decoupled (k=0)", 0, nil); err != nil {
		return err
	}
	if err := variant("Y-cap in stray field (k=.03)", 0.03, nil); err != nil {
		return err
	}
	if err := variant("no CM choke", 0, func(p *core.Project) {
		p.Circuit.Find("Lcma").Value = 1e-9
		p.Circuit.Find("Lcmb").Value = 1e-9
	}); err != nil {
		return err
	}
	fmt.Println("# the 2-winding choke's decoupled positions (Figure 8) are worth ~10-20 dB at HF")
	return nil
}

// fig23 (extension) runs the second case study: common-mode emissions of
// a three-phase motor-drive inverter with its three-winding CM choke —
// the component class of the paper's Figure 8 right-hand side.
func fig23(ctx context.Context, _ string) error {
	inter, err := inverter.Predict(inverter.Options{Interleaved: true, WithChoke: true}, 2e6)
	if err != nil {
		return err
	}
	sync, err := inverter.Predict(inverter.Options{Interleaved: false, WithChoke: true}, 2e6)
	if err != nil {
		return err
	}
	noChoke, err := inverter.Predict(inverter.Options{Interleaved: true, WithChoke: false}, 2e6)
	if err != nil {
		return err
	}
	fmt.Println("harmonic\tf_kHz\tinterleaved\tsynchronized\tno_choke  [dBµV]")
	for _, k := range []int{1, 2, 3, 5, 6, 7, 9} {
		li, _ := inverter.HarmonicLevel(inter, k)
		ls, _ := inverter.HarmonicLevel(sync, k)
		ln, _ := inverter.HarmonicLevel(noChoke, k)
		fmt.Printf("h%d\t%.0f\t%.1f\t%.1f\t%.1f\n",
			k, inter.Freqs[k-1]/1e3, li, ls, ln)
	}
	fmt.Println("# 120° interleave cancels non-triplen harmonics exactly (balanced legs);")
	fmt.Println("# the 3-winding CM choke buys the broadband attenuation")
	return nil
}

// fig24 (extension) runs a virtual near-field scan over the placed buck
// board: the board-level generalisation of Figure 4, and the simulation
// twin of the near-field scanners used to locate EMI hot spots.
func fig24(ctx context.Context, svgdir string) error {
	p := buck.Project()
	if err := buck.Unfavorable(p); err != nil {
		return err
	}
	scan, err := p.ScanFields(0, 5e-3, 33, 27)
	if err != nil {
		return err
	}
	pos, peak := scan.MaxAt()
	fmt.Printf("probe height 5 mm, grid %dx%d over %s\n",
		len(scan.Grid[0]), len(scan.Grid), scan.Window)
	fmt.Printf("hot spot at (%.0f, %.0f) mm, |B| = %.1f µT/A\n",
		pos.X*1e3, pos.Y*1e3, peak*1e6)
	// Identify the nearest component.
	bestRef, bestD := "", 1.0
	for _, c := range p.Design.Comps {
		if d := pos.Dist(c.Center); d < bestD {
			bestRef, bestD = c.Ref, d
		}
	}
	fmt.Printf("nearest component: %s (%.1f mm away)\n", bestRef, bestD*1e3)
	if svgdir != "" {
		path := filepath.Join(svgdir, "fig24_nearfield.svg")
		if err := os.WriteFile(path, []byte(scan.HeatmapSVG()), 0o644); err != nil {
			return err
		}
		fmt.Println("# SVG written to", path)
	}
	return nil
}

// fig20 (extension) shows the shielding-plane dependency of the minimum
// distance rules the paper mentions: PEMD with and without an ideal ground
// plane under the components.
func fig20(ctx context.Context, _ string) error {
	m := components.NewX2Cap("X2-1u5", 1.5e-6)
	free, err := rules.DerivePEMD(m, m, rules.DeriveOptions{KMax: 0.01})
	if err != nil {
		return err
	}
	fmt.Println("plane_depth_mm\tPEMD_mm")
	fmt.Printf("none\t%.1f\n", free*1e3)
	for _, mm := range []float64{1, 3, 10} {
		z := -mm * 1e-3
		d, err := rules.DerivePEMD(m, m, rules.DeriveOptions{KMax: 0.01, ShieldPlane: &z})
		if err != nil {
			return err
		}
		fmt.Printf("%.0f\t%.1f\n", mm, d*1e3)
	}
	fmt.Println("# the k-based rule for standing capacitor loops shifts with the plane:")
	fmt.Println("# image currents cut the loops' self-inductance faster than their mutual")
	return nil
}
