package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExploreMode(t *testing.T) {
	if testing.Short() {
		t.Skip("placement tournament in -short mode")
	}
	var out strings.Builder
	err := run([]string{
		"-mode", "explore", "-project", "buck",
		"-objectives", "area,net", "-pop", "4", "-gens", "1", "-seed", "3",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"gen", "area", "net", "front"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunYieldModeJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("EMI solves in -short mode")
	}
	outFile := filepath.Join(t.TempDir(), "yield.json")
	var out strings.Builder
	err := run([]string{
		"-mode", "yield", "-project", "buck",
		"-samples", "4", "-batch", "2", "-seed", "9", "-maxfreq", "2e6",
		"-json", "-out", outFile,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), `"yield"`) {
		t.Errorf("JSON output missing yield field:\n%s", out.String())
	}
	b, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"samples"`) {
		t.Errorf("-out file missing samples field:\n%s", b)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "nope"}, &out); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"-mode", "explore", "-objectives", "speed"}, &out); err == nil {
		t.Error("unknown objective accepted")
	}
	if err := run([]string{"-mode", "explore", "-sweep", "CCIN1:bad"}, &out); err == nil {
		t.Error("malformed sweep accepted")
	}
}
