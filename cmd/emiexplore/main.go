// Command emiexplore explores the EMI design space of a project: a
// multi-objective Pareto search over placement tournaments and component
// value sweeps (-mode explore), or a Monte Carlo tolerance analysis
// estimating the EMI yield — the fraction of production builds meeting
// the CISPR limit mask (-mode yield). Both runs are bit-reproducible for
// a fixed -seed.
//
// Usage:
//
//	emiexplore -mode explore [-project buck] [-objectives margin,area,net]
//	           [-pop 24] [-gens 10] [-seed 1] [-maxfreq hz] [-grid mm]
//	           [-anneal iters] [-sweep ELEM:lo:hi,...] [-json] [-out front.json]
//	emiexplore -mode yield   [-project buck] [-samples 200] [-batch 32]
//	           [-seed 1] [-tol 0.1] [-ktol 0.2] [-place-seed 0] [-json]
//	emiexplore ... -design d.txt -netlist n.cir -sources V1,I1 -measure lisn
//	           [-stats] [-timeout 2m] [-trace trace.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/buck"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/place"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "emiexplore:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("emiexplore", flag.ContinueOnError)
	mode := fs.String("mode", "explore", `"explore" (Pareto search) or "yield" (Monte Carlo tolerance analysis)`)
	project := fs.String("project", "buck", `builtin example project ("buck")`)
	designPath := fs.String("design", "", "ASCII design file (with -netlist/-sources/-measure, overrides -project)")
	netlistPath := fs.String("netlist", "", "SPICE-style netlist file")
	sources := fs.String("sources", "", "comma-separated switching source elements")
	measure := fs.String("measure", "", "measurement node (LISN receiver)")
	maxFreq := fs.Float64("maxfreq", 0, "EMI band limit in Hz (0 = CISPR band stop)")
	seed := fs.Int64("seed", 1, "RNG seed; the run is bit-reproducible in it")
	jsonOut := fs.Bool("json", false, "print the final result as JSON")
	outPath := fs.String("out", "", "also write the final result JSON to this file")

	// explore mode
	objectives := fs.String("objectives", "", "comma-separated objective subset (margin,area,net,violations; empty = all)")
	pop := fs.Int("pop", 0, "population size (0 = 24)")
	gens := fs.Int("gens", 0, "offspring generations (0 = 10)")
	grid := fs.Float64("grid", 0, "placement candidate raster in mm (0 = auto)")
	annealIters := fs.Int("anneal", 0, "per-candidate annealing refinement proposals (0 = off)")
	sweep := fs.String("sweep", "", "component value sweeps, ELEM:lo:hi multipliers, comma-separated")

	// yield mode
	samples := fs.Int("samples", 0, "Monte Carlo builds (0 = 200)")
	batch := fs.Int("batch", 0, "builds per parallel wave (0 = 32)")
	tol := fs.Float64("tol", 0, "default relative R/L/C tolerance (0 = 0.10)")
	ktol := fs.Float64("ktol", 0, "relative tolerance of extracted couplings (0 = 0.20)")
	placeSeed := fs.Int64("place-seed", 0, "seed of the autoplacement an unplaced design gets")

	dumpStats := cli.StatsOn(fs)
	mkCtx := cli.TimeoutOn(fs)
	mkTrace := cli.TraceOn(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	defer dumpStats()

	proj, err := loadProject(*project, *designPath, *netlistPath, *sources, *measure)
	if err != nil {
		return err
	}
	ctx, cancel := mkCtx()
	defer cancel()
	ctx, finishTrace := mkTrace(ctx)
	defer finishTrace()

	switch *mode {
	case "explore":
		sw, err := parseSweeps(*sweep)
		if err != nil {
			return err
		}
		return runExplore(ctx, out, proj, exploreArgs{
			objectives: splitList(*objectives),
			sweep:      sw,
			pop:        *pop, gens: *gens, seed: *seed,
			maxFreq: *maxFreq, grid: *grid * 1e-3, anneal: *annealIters,
			jsonOut: *jsonOut, outPath: *outPath,
		})
	case "yield":
		return runYield(ctx, out, proj, yieldArgs{
			samples: *samples, batch: *batch, seed: *seed,
			maxFreq: *maxFreq, tol: *tol, ktol: *ktol, placeSeed: *placeSeed,
			jsonOut: *jsonOut, outPath: *outPath,
		})
	default:
		return fmt.Errorf("unknown -mode %q (want explore or yield)", *mode)
	}
}

// loadProject builds the project under exploration: a builtin example, or
// an explicit design + netlist (without component models — couplings are
// then absent, but placement and spectrum objectives still work).
func loadProject(builtin, designPath, netlistPath, sources, measure string) (*core.Project, error) {
	if designPath == "" && netlistPath == "" {
		if builtin != "buck" {
			return nil, fmt.Errorf("unknown -project %q (only \"buck\" is builtin)", builtin)
		}
		return buck.Project(), nil
	}
	if designPath == "" || netlistPath == "" || measure == "" || sources == "" {
		return nil, fmt.Errorf("-design, -netlist, -sources and -measure are all required together")
	}
	df, err := os.Open(designPath)
	if err != nil {
		return nil, err
	}
	d, err := layout.Read(df)
	df.Close()
	if err != nil {
		return nil, err
	}
	nf, err := os.Open(netlistPath)
	if err != nil {
		return nil, err
	}
	ckt, err := netlist.Parse(nf)
	nf.Close()
	if err != nil {
		return nil, err
	}
	return &core.Project{
		Design: d, Circuit: ckt,
		Sources: splitList(sources), MeasureNode: measure,
	}, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseSweeps parses "ELEM:lo:hi,ELEM:lo:hi" multiplier axes.
func parseSweeps(s string) ([]explore.SweepParam, error) {
	var out []explore.SweepParam
	for _, item := range splitList(s) {
		parts := strings.Split(item, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad -sweep entry %q (want ELEM:lo:hi)", item)
		}
		lo, err1 := strconv.ParseFloat(parts[1], 64)
		hi, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad -sweep bounds in %q", item)
		}
		out = append(out, explore.SweepParam{Element: parts[0], Lo: lo, Hi: hi})
	}
	return out, nil
}

type exploreArgs struct {
	objectives []string
	sweep      []explore.SweepParam
	pop, gens  int
	seed       int64
	maxFreq    float64
	grid       float64
	anneal     int
	jsonOut    bool
	outPath    string
}

func runExplore(ctx context.Context, out io.Writer, proj *core.Project, a exploreArgs) error {
	prob := &explore.DesignProblem{
		Project:    proj,
		Objectives: a.objectives,
		Sweep:      a.sweep,
		MaxFreq:    a.maxFreq, GridStep: a.grid, AnnealIters: a.anneal,
	}
	if err := prob.Validate(); err != nil {
		return err
	}
	names := prob.ObjectiveNames()
	res, err := explore.Run(ctx, prob, explore.Config{
		Pop: a.pop, Generations: a.gens, Seed: a.seed,
	}, func(g explore.Generation) {
		if !a.jsonOut {
			fmt.Fprintf(out, "gen %2d: %4d evaluations, front %2d, best %s\n",
				g.Gen, g.Evaluations, len(g.Front), frontBest(names, g.Front))
		}
	})
	if err != nil {
		return err
	}
	final := struct {
		Objectives  []string             `json:"objectives"`
		Front       []explore.Individual `json:"front"`
		Generations int                  `json:"generations"`
		Evaluations int                  `json:"evaluations"`
		ElapsedMS   float64              `json:"elapsed_ms"`
	}{names, res.Front, res.Generations, res.Evaluations, float64(res.Elapsed.Milliseconds())}
	if a.outPath != "" {
		if err := writeJSONFile(a.outPath, final); err != nil {
			return err
		}
	}
	if a.jsonOut {
		return printJSON(out, final)
	}
	fmt.Fprintf(out, "\nPareto front (%d members, %d evaluations in %v):\n",
		len(res.Front), res.Evaluations, res.Elapsed.Round(1e6))
	fmt.Fprintf(out, "%-4s", "#")
	for _, n := range names {
		fmt.Fprintf(out, "\t%s", n)
	}
	fmt.Fprintln(out)
	for i, ind := range res.Front {
		fmt.Fprintf(out, "%-4d", i)
		for _, v := range ind.Objectives {
			fmt.Fprintf(out, "\t%.4g", v)
		}
		fmt.Fprintln(out)
	}
	return nil
}

// frontBest summarizes a front's best value per objective for the
// per-generation progress line.
func frontBest(names []string, front []explore.Individual) string {
	var sb strings.Builder
	for k, n := range names {
		best := 0.0
		for i, ind := range front {
			if i == 0 || ind.Objectives[k] < best {
				best = ind.Objectives[k]
			}
		}
		if k > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%.4g", n, best)
	}
	return sb.String()
}

type yieldArgs struct {
	samples, batch int
	seed           int64
	maxFreq        float64
	tol, ktol      float64
	placeSeed      int64
	jsonOut        bool
	outPath        string
}

func runYield(ctx context.Context, out io.Writer, proj *core.Project, a yieldArgs) error {
	if unplaced(proj.Design) {
		d := proj.Design.Clone()
		if _, err := place.AutoPlaceCtx(ctx, d, place.Options{Seed: a.placeSeed}); err != nil {
			return fmt.Errorf("autoplace: %w", err)
		}
		p := *proj
		p.Design = d
		proj = &p
	}
	curve, err := explore.Yield(ctx, proj, explore.YieldOptions{
		Samples: a.samples, Batch: a.batch, Seed: a.seed,
		MaxFreq: a.maxFreq, DefaultTol: a.tol, CouplingTol: a.ktol,
	}, func(e explore.YieldEstimate) {
		if !a.jsonOut {
			fmt.Fprintf(out, "%4d/%d builds: yield %.3f [%.3f, %.3f]\n",
				e.Done, e.Total, e.Yield, e.CILo, e.CIHi)
		}
	})
	if err != nil {
		return err
	}
	final := struct {
		Samples     int       `json:"samples"`
		Pass        int       `json:"pass"`
		Yield       float64   `json:"yield"`
		CILo        float64   `json:"ci_lo"`
		CIHi        float64   `json:"ci_hi"`
		Perturbed   int       `json:"perturbed"`
		Batches     int       `json:"batches"`
		FreqsHz     []float64 `json:"freqs_hz"`
		InBand      []bool    `json:"in_band"`
		BinPass     []float64 `json:"bin_pass"`
		BinLo       []float64 `json:"bin_lo"`
		BinHi       []float64 `json:"bin_hi"`
		MarginP05DB float64   `json:"margin_p05_db"`
		MarginP50DB float64   `json:"margin_p50_db"`
		MarginP95DB float64   `json:"margin_p95_db"`
		ElapsedMS   float64   `json:"elapsed_ms"`
	}{
		Samples: curve.Samples, Pass: curve.Pass,
		Yield: curve.Yield, CILo: curve.CILo, CIHi: curve.CIHi,
		Perturbed: curve.Perturbed, Batches: curve.Batches,
		FreqsHz: curve.Freqs, InBand: curve.InBand,
		BinPass: curve.BinPass, BinLo: curve.BinLo, BinHi: curve.BinHi,
		MarginP05DB: curve.Percentile(0.05),
		MarginP50DB: curve.Percentile(0.50),
		MarginP95DB: curve.Percentile(0.95),
		ElapsedMS:   float64(curve.Elapsed.Milliseconds()),
	}
	if a.outPath != "" {
		if err := writeJSONFile(a.outPath, final); err != nil {
			return err
		}
	}
	if a.jsonOut {
		return printJSON(out, final)
	}
	fmt.Fprintf(out, "\nEMI yield: %.3f [%.3f, %.3f] (%d/%d builds pass, %d elements perturbed)\n",
		curve.Yield, curve.CILo, curve.CIHi, curve.Pass, curve.Samples, curve.Perturbed)
	fmt.Fprintf(out, "worst margin: p05 %.2f dB, p50 %.2f dB, p95 %.2f dB\n",
		curve.Percentile(0.05), curve.Percentile(0.50), curve.Percentile(0.95))
	fmt.Fprintf(out, "%-12s\t%-7s\t%s\n", "freq_hz", "in_band", "bin_yield [95% CI]")
	for i, f := range curve.Freqs {
		if !curve.InBand[i] {
			continue
		}
		fmt.Fprintf(out, "%-12.4g\t%-7v\t%.3f [%.3f, %.3f]\n",
			f, curve.InBand[i], curve.BinPass[i], curve.BinLo[i], curve.BinHi[i])
	}
	return nil
}

func unplaced(d *layout.Design) bool {
	for _, c := range d.Comps {
		if !c.Preplaced && !c.Placed {
			return true
		}
	}
	return false
}

func printJSON(out io.Writer, v any) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := printJSON(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
