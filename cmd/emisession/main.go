// Command emisession replays an edit script against an interactive design
// session and prints the per-edit delta log — the offline twin of the
// server's /v1/sessions surface, useful for scripting incremental DRC
// experiments and for verifying that the incremental engine agrees with a
// from-scratch check at every step.
//
// Script grammar (one command per line, '#' comments, mm and degrees):
//
//	move REF x_mm y_mm [rot_deg]   place or move a component
//	rotate REF deg                 rotate a placed component
//	swap REF board                 move a placed component to a board
//	rule A B pemd_mm               add or replace a PEMD rule
//	param clearance mm             change the global clearance
//	param edge_clearance mm        change the board-edge clearance
//	undo                           revert the latest edit
//	redo                           re-apply the latest undone edit
//
// Usage:
//
//	emisession -layout design.txt -script edits.txt
//	emisession -synthetic 29,100,3 -autoplace -script - < edits.txt
//	emisession -layout design.txt -script edits.txt -verify -json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/place"
	"repro/internal/session"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "emisession:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("emisession", flag.ContinueOnError)
	layoutPath := fs.String("layout", "", "design file to open the session on")
	synth := fs.String("synthetic", "", "synthetic workload spec n,rules,groups[,w_mm,h_mm] instead of -layout")
	script := fs.String("script", "", "edit script file ('-' = stdin)")
	autoplace := fs.Bool("autoplace", false, "run the automatic placer before the session starts")
	verify := fs.Bool("verify", false, "cross-check the incremental report against a full drc.Check after every edit")
	asJSON := fs.Bool("json", false, "print deltas as JSON lines instead of text")
	snapshot := fs.String("snapshot", "", "write the final design to this file ('-' = stdout)")
	dumpStats := cli.StatsOn(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	defer dumpStats()

	d, err := openDesign(*layoutPath, *synth)
	if err != nil {
		return err
	}
	if *autoplace {
		if _, err := place.AutoPlace(d, place.Options{}); err != nil {
			return fmt.Errorf("autoplace: %w", err)
		}
	}
	sess := session.New("local", d)
	defer sess.Close()

	st := sess.State()
	if !*asJSON {
		fmt.Fprintf(out, "session open: %d checks, %d violations, green=%v\n",
			st.Checks, st.Violations, st.Green)
	}

	var src io.Reader
	switch *script {
	case "":
		return fmt.Errorf("-script is required")
	case "-":
		src = os.Stdin
	default:
		f, err := os.Open(*script)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}

	sc := bufio.NewScanner(src)
	lineNo := 0
	evals, full := 0, 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		delta, err := step(sess, line)
		if err != nil {
			return fmt.Errorf("script line %d: %w", lineNo, err)
		}
		evals += delta.ChecksEvaluated
		full += delta.ChecksFull
		if err := printDelta(out, *asJSON, line, delta); err != nil {
			return err
		}
		if *verify {
			if err := verifyStep(sess); err != nil {
				return fmt.Errorf("script line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	st = sess.State()
	if !*asJSON {
		ratio := 0.0
		if full > 0 {
			ratio = float64(evals) / float64(full)
		}
		fmt.Fprintf(out, "final: %d violations, green=%v; incremental evaluated %d of %d checks (%.1f%%)\n",
			st.Violations, st.Green, evals, full, 100*ratio)
	}

	if *snapshot != "" {
		snap, err := sess.Snapshot()
		if err != nil {
			return err
		}
		if *snapshot == "-" {
			_, err = out.Write(snap)
			return err
		}
		return os.WriteFile(*snapshot, snap, 0o644)
	}
	return nil
}

// openDesign loads the session's starting design from a file or builds a
// synthetic workload from its spec.
func openDesign(path, synth string) (*layout.Design, error) {
	switch {
	case path != "" && synth != "":
		return nil, fmt.Errorf("give either -layout or -synthetic, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return layout.Read(f)
	case synth != "":
		parts := strings.Split(synth, ",")
		if len(parts) != 3 && len(parts) != 5 {
			return nil, fmt.Errorf("-synthetic wants n,rules,groups[,w_mm,h_mm]")
		}
		nums := make([]float64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("-synthetic: %w", err)
			}
			nums[i] = v
		}
		w, h := 0.16, 0.12
		if len(nums) == 5 {
			w, h = nums[3]*1e-3, nums[4]*1e-3
		}
		return workload.Synthetic(int(nums[0]), int(nums[1]), int(nums[2]), w, h), nil
	default:
		return nil, fmt.Errorf("-layout or -synthetic is required")
	}
}

// step parses one script line and applies it to the session.
func step(sess *session.Session, line string) (*session.Delta, error) {
	f := strings.Fields(line)
	switch f[0] {
	case "undo":
		return sess.Undo()
	case "redo":
		return sess.Redo()
	case "move":
		if len(f) != 4 && len(f) != 5 {
			return nil, fmt.Errorf("move wants REF x_mm y_mm [rot_deg]")
		}
		x, err1 := strconv.ParseFloat(f[2], 64)
		y, err2 := strconv.ParseFloat(f[3], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("move: bad coordinates %q %q", f[2], f[3])
		}
		e := session.Edit{Op: session.OpMove, Ref: f[1], Center: geom.V2(x*1e-3, y*1e-3)}
		if len(f) == 5 {
			deg, err := strconv.ParseFloat(f[4], 64)
			if err != nil {
				return nil, fmt.Errorf("move: bad rotation %q", f[4])
			}
			e.Rot = geom.Rad(deg)
		} else if c, ok := sess.Component(f[1]); ok {
			e.Rot = c.Rot
		}
		return sess.Apply(e)
	case "rotate":
		if len(f) != 3 {
			return nil, fmt.Errorf("rotate wants REF deg")
		}
		deg, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return nil, fmt.Errorf("rotate: bad angle %q", f[2])
		}
		return sess.Apply(session.Edit{Op: session.OpRotate, Ref: f[1], Rot: geom.Rad(deg)})
	case "swap":
		if len(f) != 3 {
			return nil, fmt.Errorf("swap wants REF board")
		}
		b, err := strconv.Atoi(f[2])
		if err != nil {
			return nil, fmt.Errorf("swap: bad board %q", f[2])
		}
		return sess.Apply(session.Edit{Op: session.OpSwapBoard, Ref: f[1], Board: b})
	case "rule":
		if len(f) != 4 {
			return nil, fmt.Errorf("rule wants A B pemd_mm")
		}
		mm, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return nil, fmt.Errorf("rule: bad distance %q", f[3])
		}
		return sess.Apply(session.Edit{Op: session.OpAddRule, Ref: f[1], RefB: f[2], PEMD: mm * 1e-3})
	case "param":
		if len(f) != 3 {
			return nil, fmt.Errorf("param wants clearance|edge_clearance mm")
		}
		mm, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return nil, fmt.Errorf("param: bad value %q", f[2])
		}
		return sess.Apply(session.Edit{Op: session.OpParam, Param: f[1], Value: mm * 1e-3})
	default:
		return nil, fmt.Errorf("unknown command %q", f[0])
	}
}

// printDelta writes one delta as a text line pair or a JSON line.
func printDelta(out io.Writer, asJSON bool, line string, d *session.Delta) error {
	if asJSON {
		return json.NewEncoder(out).Encode(d)
	}
	fmt.Fprintf(out, "#%d %-28s +%d -%d ~%d viol=%d green=%v evals=%d/%d\n",
		d.Seq, line, len(d.Added), len(d.Resolved), len(d.Updated),
		d.Violations, d.Green, d.ChecksEvaluated, d.ChecksFull)
	for _, v := range d.Added {
		fmt.Fprintf(out, "    + %s %s: %s\n", v.Kind, strings.Join(v.Refs, ","), v.Detail)
	}
	for _, v := range d.Resolved {
		fmt.Fprintf(out, "    - %s %s\n", v.Kind, strings.Join(v.Refs, ","))
	}
	return nil
}

// verifyStep cross-checks the incremental report against a from-scratch
// drc.Check on a snapshot of the current design.
func verifyStep(sess *session.Session) error {
	inc := sess.Report()
	want := drc.Check(sess.DesignSnapshot())
	if !reflect.DeepEqual(inc, want) {
		return fmt.Errorf("verify: incremental report diverged from full check\nincremental:\n%s\nfull:\n%s",
			inc.String(), want.String())
	}
	return nil
}
