package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReportGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("full flow run")
	}
	out := filepath.Join(t.TempDir(), "report.html")
	if err := run(out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	htmlStr := string(data)
	for _, want := range []string{
		"<!DOCTYPE html",
		"Conducted emissions",
		"Sensitivity analysis",
		"minimum-distance rules",
		"Routed nets",
		"Verdict",
		"<svg",
		"GREEN — all rules met",
		"passes CISPR 25",
	} {
		if !strings.Contains(htmlStr, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The unfavourable layout must show red rule circles.
	if !strings.Contains(htmlStr, "RED") {
		t.Error("report should show the unfavourable layout's violations")
	}
}
