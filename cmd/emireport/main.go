// Command emireport runs the complete EMI design flow on the reference
// automotive buck converter and writes a self-contained HTML report:
// conducted-emission spectra against the CISPR 25 limits, the sensitivity
// ranking, the derived minimum-distance rules, both layouts with their
// red/green rule circles, routed nets, and the final verdict.
//
// Usage:
//
//	emireport -out report.html
package main

import (
	"flag"
	"fmt"
	"html"
	"os"
	"strings"

	"repro/internal/buck"
	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/render"
	"repro/internal/route"
)

func main() {
	out := flag.String("out", "emireport.html", "output HTML file")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "emireport:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}

func run(outPath string) error {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8">
<title>EMI design report — automotive buck converter</title>
<style>
body { font-family: sans-serif; max-width: 880px; margin: 2em auto; color: #222; }
h1 { border-bottom: 2px solid #444; padding-bottom: 6px; }
h2 { margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.6em 0; }
td, th { border: 1px solid #bbb; padding: 4px 10px; font-size: 14px; }
th { background: #eee; }
.green { color: #182; font-weight: bold; }
.red { color: #c22; font-weight: bold; }
figure { margin: 1em 0; }
figcaption { font-size: 13px; color: #555; }
</style></head><body>
<h1>EMI design report — automotive buck converter</h1>
<p>Methodical EMI design flow after Stube, Schroeder, Hoene &amp; Lissner
(DATE 2008): coupled field/circuit prediction, sensitivity analysis,
minimum-distance rule derivation and rule-honouring automatic placement.</p>
`)

	// ---- Flow: unfavourable baseline ----
	unfav := buck.Project()
	if err := buck.Unfavorable(unfav); err != nil {
		return err
	}
	pairs, err := buck.DeriveAllRules(unfav, 0.01, 3, 0.01)
	if err != nil {
		return err
	}
	sUnfav, err := unfav.Predict(core.PredictOptions{WithCouplings: true})
	if err != nil {
		return err
	}
	rank, err := unfav.RankCouplings(0.01, 30e6)
	if err != nil {
		return err
	}

	// ---- Flow: optimised ----
	opt := buck.Project()
	opt.Design.Rules = unfav.Design.Rules
	res, err := buck.Optimize(opt)
	if err != nil {
		return err
	}
	sOpt, err := opt.Predict(core.PredictOptions{WithCouplings: true})
	if err != nil {
		return err
	}

	// ---- Spectra ----
	b.WriteString("<h2>Conducted emissions (CISPR 25 Class 5, dashed limits)</h2>\n<figure>")
	if err := render.SpectrumSVG(&b, []render.SpectrumSeries{
		{Name: "unfavourable placement", Spectrum: sUnfav},
		{Name: "optimized placement", Spectrum: sOpt},
	}, "Same components, same topology — only the placement differs"); err != nil {
		return err
	}
	maxRed := 0.0
	for i := range sUnfav.DB {
		if d := sUnfav.DB[i] - sOpt.DB[i]; d > maxRed {
			maxRed = d
		}
	}
	fmt.Fprintf(&b, `<figcaption>Unfavourable: %d violations, worst margin %.1f dB.
Optimized: %d violations, worst margin %+.1f dB. Reduction up to %.1f dB.</figcaption></figure>`,
		len(sUnfav.Violations()), sUnfav.WorstMargin(),
		len(sOpt.Violations()), sOpt.WorstMargin(), maxRed)

	// ---- Sensitivity ranking ----
	b.WriteString("<h2>Sensitivity analysis</h2>\n<table><tr><th>rank</th><th>pair</th><th>worst-case influence</th></tr>\n")
	for i, pr := range rank {
		if i >= 8 {
			break
		}
		fmt.Fprintf(&b, "<tr><td>%d</td><td>%s / %s</td><td>%+.1f dB</td></tr>\n",
			i+1, html.EscapeString(pr.LA), html.EscapeString(pr.LB), pr.DeltaDB)
	}
	fmt.Fprintf(&b, "</table><p>%d of %d pairs were relevant (&ge; 3 dB) and received a field extraction and a placement rule.</p>\n",
		len(pairs), len(unfav.AllPairs()))

	// ---- Rules ----
	b.WriteString("<h2>Derived minimum-distance rules</h2>\n<table><tr><th>pair</th><th>PEMD (parallel axes)</th></tr>\n")
	for _, r := range unfav.Design.Rules.Rules {
		fmt.Fprintf(&b, "<tr><td>%s / %s</td><td>%.1f mm</td></tr>\n",
			html.EscapeString(r.RefA), html.EscapeString(r.RefB), r.PEMD*1e3)
	}
	b.WriteString("</table>\n<p>Effective distance shrinks with rotation: EMD = PEMD·|cos&nbsp;&alpha;|.</p>\n")

	// ---- Layouts ----
	writeLayout := func(title string, p *core.Project, rep *drc.Report) error {
		fmt.Fprintf(&b, "<h2>%s</h2>\n<figure>", html.EscapeString(title))
		if err := render.SVG(&b, p.Design, rep, render.Options{ShowRules: true, ShowAxes: true, PixPerMM: 6}); err != nil {
			return err
		}
		verdict := `<span class="green">GREEN — all rules met</span>`
		if !rep.Green() {
			verdict = fmt.Sprintf(`<span class="red">RED — %d violations</span>`, len(rep.Violations))
		}
		fmt.Fprintf(&b, "<figcaption>%s (%d checks)</figcaption></figure>\n", verdict, rep.Checks)
		return nil
	}
	if err := writeLayout("Unfavourable layout (red circles: violated EMD rules)", unfav, unfav.Verify()); err != nil {
		return err
	}
	if err := writeLayout(fmt.Sprintf("Optimized layout (automatic placement, %v)", res.Elapsed.Round(1000000)), opt, opt.Verify()); err != nil {
		return err
	}

	// ---- Routes ----
	routes, err := route.Nets(opt.Design, route.Options{})
	if err != nil {
		return err
	}
	b.WriteString("<h2>Routed nets (Manhattan star estimate)</h2>\n<table><tr><th>net</th><th>length</th><th>trace inductance</th></tr>\n")
	for i := range routes {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%.1f mm</td><td>%.1f nH</td></tr>\n",
			html.EscapeString(routes[i].Net), routes[i].Length()*1e3, routes[i].Inductance()*1e9)
	}
	b.WriteString("</table>\n")

	// ---- Verdict ----
	b.WriteString("<h2>Verdict</h2>\n")
	if len(sOpt.Violations()) == 0 && opt.Verify().Green() {
		fmt.Fprintf(&b, `<p class="green">The optimized placement passes CISPR 25 Class 5 with %.1f dB margin using the identical bill of materials.</p>`,
			sOpt.WorstMargin())
	} else {
		b.WriteString(`<p class="red">The design does not pass; see the violations above.</p>`)
	}
	b.WriteString("\n</body></html>\n")

	return os.WriteFile(outPath, []byte(b.String()), 0o644)
}
