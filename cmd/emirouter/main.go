// Command emirouter fronts N emiserve replicas as one logical service:
// consistent-hash routing of jobs and design sessions, health probing
// with distinct liveness and readiness, session takeover via WAL
// replay when a replica dies, and admission control that sheds load
// with 429 + Retry-After when every replica's queue is full. See
// DESIGN.md §"Cluster" and the README cluster quickstart.
//
// Usage:
//
//	emirouter -members a=http://127.0.0.1:7001,b=http://127.0.0.1:7002 \
//	          [-addr :8090] [-probe-interval 500ms] [-vnodes 64]
//	          [-retries 3] [-retry-delay 25ms] [-log]
//	          [-trace router.json] [-debug-addr 127.0.0.1:8091]
//
// Members are name=url pairs; the name is the member's stable ring
// identity (keep it fixed across restarts — the URL may move, the name
// must not, or every session and job key rehashes).
//
// SIGTERM or SIGINT shuts the router down. The router keeps no durable
// state: its routing tables rebuild from the replicas (job and session
// location queries) after a restart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	members := flag.String("members", "", "comma-separated name=url replica list (required)")
	probeEvery := flag.Duration("probe-interval", 500*time.Millisecond, "health probe period (also the advertised Retry-After)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per member on the hash ring (0 = default 64)")
	retries := flag.Int("retries", 0, "max forward attempts per job submission (0 = default 3)")
	retryDelay := flag.Duration("retry-delay", 0, "backoff base between submit attempts, jittered (0 = default 25ms)")
	logOn := flag.Bool("log", false, "structured request and takeover logs on stderr")
	wrapTrace := cli.Trace()
	startDebug := cli.DebugAddr()
	flag.Parse()
	startDebug()

	ms, err := parseMembers(*members)
	if err != nil {
		fatal(err)
	}
	// -trace captures one summary span per handled request into a
	// run-long Chrome trace, written on shutdown.
	tctx, finishTrace := wrapTrace(context.Background())
	defer finishTrace()
	cfg := cluster.Config{
		Members:       ms,
		Vnodes:        *vnodes,
		ProbeInterval: *probeEvery,
		Retries:       *retries,
		RetryDelay:    *retryDelay,
		RunTrace:      obs.TraceOf(tctx),
	}
	if *logOn {
		cfg.Logger = obs.NewLogger(os.Stderr, slog.LevelInfo)
	}
	rt, err := cluster.New(cfg)
	if err != nil {
		fatal(err)
	}
	rt.Start()
	defer rt.Close()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "emirouter: listening on %s, %d members\n", *addr, len(ms))

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "emirouter: http shutdown:", err)
	}
	<-errc
}

// parseMembers parses "a=http://host:port,b=..." (bare URLs get
// positional names m0, m1, ...).
func parseMembers(s string) ([]cluster.Member, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("emirouter: -members is required")
	}
	var out []cluster.Member
	for i, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok {
			name, url = fmt.Sprintf("m%d", i), part
		}
		out = append(out, cluster.Member{
			Name: strings.TrimSpace(name),
			URL:  strings.TrimRight(strings.TrimSpace(url), "/"),
		})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emirouter:", err)
	os.Exit(1)
}
