// Command emipredict computes the conducted-emission spectrum of a
// converter netlist: the paper's interference prediction. The netlist must
// contain the switching equivalent sources as V/I elements with PULSE
// waveforms and (typically) a LISN whose receiver node is measured. K
// elements carry the magnetic couplings; -no-couplings strips them to show
// the prediction the paper's Figure 13 warns about.
//
// Usage:
//
//	emipredict -circuit buck.cir -measure lisn_meas -sources IQ1,VD1
//	           [-max 108e6] [-no-couplings] [-every 10] [-timeout 30s]
//	           [-trace trace.json] [-solver auto|dense|sparse]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/emi"
	"repro/internal/netlist"
)

func main() {
	circuit := flag.String("circuit", "", "netlist file")
	measure := flag.String("measure", "", "measurement node (e.g. the LISN receiver)")
	sources := flag.String("sources", "", "comma-separated switching source names")
	maxFreq := flag.Float64("max", emi.BandStop, "highest frequency in Hz")
	noCoup := flag.Bool("no-couplings", false, "strip K elements before predicting")
	every := flag.Int("every", 1, "print every n-th harmonic")
	tsv := flag.String("tsv", "", "also write the full spectrum as TSV to this file")
	dumpStats := cli.Stats()
	mkCtx := cli.Timeout()
	mkTrace := cli.Trace()
	applySolver := cli.Solver()
	flag.Parse()
	defer dumpStats()
	if err := applySolver(); err != nil {
		fatal(err)
	}

	if *circuit == "" || *measure == "" || *sources == "" {
		fmt.Fprintln(os.Stderr, "emipredict: -circuit, -measure and -sources are required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*circuit)
	if err != nil {
		fatal(err)
	}
	ckt, err := netlist.Parse(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if *noCoup {
		ckt.RemoveCouplings()
	}
	p := &emi.Predictor{
		Circuit:     ckt,
		Sources:     strings.Split(*sources, ","),
		MeasureNode: *measure,
		MaxFreq:     *maxFreq,
	}
	ctx, cancel := mkCtx()
	defer cancel()
	ctx, finishTrace := mkTrace(ctx)
	s, err := p.SpectrumCtx(ctx)
	finishTrace()
	if err != nil {
		fatal(err)
	}
	if *tsv != "" {
		f, err := os.Create(*tsv)
		if err != nil {
			fatal(err)
		}
		if err := s.WriteTSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wrote", *tsv)
	}
	fmt.Println("freq_Hz\tlevel_dBuV\tlimit_dBuV\tin_service_band")
	n := *every
	if n < 1 {
		n = 1
	}
	for i, fr := range s.Freqs {
		if i%n != 0 {
			continue
		}
		limit, inBand := emi.Limit(fr)
		fmt.Printf("%.0f\t%.1f\t%.1f\t%v\n", fr, s.DB[i], limit, inBand)
	}
	fmt.Printf("# worst margin vs CISPR 25 class 5: %.1f dB, violations: %d\n",
		s.WorstMargin(), len(s.Violations()))
	for _, v := range s.Violations() {
		fmt.Printf("# VIOLATION %.3f MHz: %.1f dBuV > limit %.1f dBuV\n",
			v.Freq/1e6, v.Level, v.LimitDB)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emipredict:", err)
	os.Exit(1)
}
