// Benchmarks regenerating the paper's figures (one per figure, see
// DESIGN.md §4) plus the ablations of §5. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"math"
	"strconv"
	"testing"

	"repro/internal/buck"
	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/emi"
	"repro/internal/engine"
	"repro/internal/explore"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/linalg"
	"repro/internal/mna"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/peec"
	"repro/internal/place"
	"repro/internal/rules"
	"repro/internal/sensitivity"
	"repro/internal/session"
	"repro/internal/store"
	"repro/internal/transient"
	"repro/internal/workload"
	"repro/internal/workload/board"
)

// --- Figure benchmarks -------------------------------------------------

// BenchmarkFig05CapCoupling measures one coupling-factor evaluation of the
// Figure 5 sweep (two X2 capacitors, parallel axes).
func BenchmarkFig05CapCoupling(b *testing.B) {
	m := components.NewX2Cap("X2", 1.5e-6)
	ia := &components.Instance{Ref: "C1", Model: m}
	ib := &components.Instance{Ref: "C2", Model: m, Center: geom.V2(0, 0.03)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		components.CouplingFactor(ia, ib, peec.DefaultOrder)
	}
}

// BenchmarkFig06RotationRule measures the PEMD derivation of Figure 6.
func BenchmarkFig06RotationRule(b *testing.B) {
	m := components.NewX2Cap("X2", 1.5e-6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rules.DerivePEMD(m, m, rules.DeriveOptions{KMax: 0.01}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig07ChokeCoupling measures a bobbin-choke pair coupling of
// Figure 7 (full winding discretisation).
func BenchmarkFig07ChokeCoupling(b *testing.B) {
	small := components.NewBobbinChoke("s", 10, 3e-3)
	big := components.NewBobbinChoke("b", 10, 5e-3)
	ia := &components.Instance{Ref: "L1", Model: small}
	ib := &components.Instance{Ref: "L2", Model: big, Center: geom.V2(0.03, 0)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		components.CouplingFactor(ia, ib, peec.DefaultOrder)
	}
}

// BenchmarkFig08CMChokeMap measures one effective-coupling evaluation of
// the Figure 8 position scan (phasor-weighted winding mutuals).
func BenchmarkFig08CMChokeMap(b *testing.B) {
	cm := components.NewCMChoke3("CM3")
	victim := components.NewX2Cap("X2", 1e-6).Conductor(0).Translate(geom.V3(0.035, 0, 0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cm.EffectiveCouplingTo(victim, 0, peec.DefaultOrder)
	}
}

// BenchmarkFig09AutoPlace29 measures the paper's headline placement
// experiment: 29 devices, 100 minimum distances, 3 functional groups.
func BenchmarkFig09AutoPlace29(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := workload.Complex29()
		if _, err := place.AutoPlace(d, place.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13NoCoupling measures the full-band emission prediction of
// the buck converter with couplings neglected (Figure 13).
func BenchmarkFig13NoCoupling(b *testing.B) {
	p := buck.Project()
	if err := buck.Unfavorable(p); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Predict(core.PredictOptions{WithCouplings: false}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14WithCoupling measures the coupled prediction of Figure 14
// including the PEEC extraction of all 28 pair couplings.
func BenchmarkFig14WithCoupling(b *testing.B) {
	p := buck.Project()
	if err := buck.Unfavorable(p); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Predict(core.PredictOptions{WithCouplings: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig02OptimizedEmission measures the rule-honouring placement +
// emission check that produces Figure 2.
func BenchmarkFig02OptimizedEmission(b *testing.B) {
	ref := buck.Project()
	if err := buck.Unfavorable(ref); err != nil {
		b.Fatal(err)
	}
	if _, err := buck.DeriveAllRules(ref, 0.01, 3, 0.01); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := buck.Project()
		p.Design.Rules = ref.Design.Rules
		if _, err := buck.Optimize(p); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Predict(core.PredictOptions{WithCouplings: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16BuckAutoPlace isolates the automatic placement of the buck
// board (the paper reports < 1 s).
func BenchmarkFig16BuckAutoPlace(b *testing.B) {
	ref := buck.Project()
	if err := buck.Unfavorable(ref); err != nil {
		b.Fatal(err)
	}
	if _, err := buck.DeriveAllRules(ref, 0.01, 3, 0.01); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := buck.Project()
		p.Design.Rules = ref.Design.Rules
		if _, err := buck.Optimize(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §5) --------------------------------

// Neumann quadrature order: accuracy/speed trade of the mutual-inductance
// integral between two choke windings.
func benchmarkNeumannOrder(b *testing.B, order int) {
	l1 := components.NewBobbinChoke("a", 10, 4e-3).Conductor(0)
	l2 := components.NewBobbinChoke("b", 10, 4e-3).Conductor(0).Translate(geom.V3(0.025, 0, 0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		peec.Mutual(l1, l2, order)
	}
}

func BenchmarkAblationNeumannOrder2(b *testing.B)  { benchmarkNeumannOrder(b, 2) }
func BenchmarkAblationNeumannOrder8(b *testing.B)  { benchmarkNeumannOrder(b, 8) }
func BenchmarkAblationNeumannOrder16(b *testing.B) { benchmarkNeumannOrder(b, 16) }

// Rotation step on/off: feasibility and speed of the 29-device placement.
func BenchmarkAblationRotationOff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := workload.Complex29()
		// Without step 1 the full parallel-axis EMD sum may not fit; the
		// error is part of the measured behaviour.
		_, _ = place.AutoPlace(d, place.Options{SkipRotation: true})
	}
}

// Candidate raster density: runtime vs grid step.
func benchmarkGrid(b *testing.B, stepMM float64) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := workload.Complex29()
		if _, err := place.AutoPlace(d, place.Options{GridStep: stepMM * 1e-3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGrid2mm(b *testing.B) { benchmarkGrid(b, 2) }
func BenchmarkAblationGrid4mm(b *testing.B) { benchmarkGrid(b, 4) }

// Sequential placement alone vs with simulated-annealing refinement: the
// quality/runtime trade of the global heuristic (wirelength+compactness
// cost is reported per op via custom metrics).
func BenchmarkAblationSequentialOnly(b *testing.B) {
	b.ReportAllocs()
	cost := 0.0
	for i := 0; i < b.N; i++ {
		d := workload.Complex29()
		if _, err := place.AutoPlace(d, place.Options{}); err != nil {
			b.Fatal(err)
		}
		for _, n := range d.Nets {
			cost += d.NetLength(n)
		}
	}
	b.ReportMetric(cost/float64(b.N)*1e3, "mm-wirelength/op")
}

func BenchmarkAblationSequentialPlusAnneal(b *testing.B) {
	b.ReportAllocs()
	cost := 0.0
	for i := 0; i < b.N; i++ {
		d := workload.Complex29()
		if _, err := place.AutoPlace(d, place.Options{}); err != nil {
			b.Fatal(err)
		}
		if _, err := place.Anneal(d, 0, place.AnnealOptions{Seed: 42, Iterations: 4000}); err != nil {
			b.Fatal(err)
		}
		for _, n := range d.Nets {
			cost += d.NetLength(n)
		}
	}
	b.ReportMetric(cost/float64(b.N)*1e3, "mm-wirelength/op")
}

// Sensitivity pruning on/off: number of field extractions needed.
func BenchmarkAblationSensitivityPruning(b *testing.B) {
	p := buck.Project()
	if err := buck.Unfavorable(p); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rank, err := p.RankCouplings(0.01, 30e6)
		if err != nil {
			b.Fatal(err)
		}
		pairs := rank.Relevant(3).Pairs()
		if _, err := p.ExtractCouplings(pairs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNoPruning(b *testing.B) {
	p := buck.Project()
	if err := buck.Unfavorable(p); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.ExtractCouplings(p.AllPairs()); err != nil {
			b.Fatal(err)
		}
	}
}

// Placement runtime scaling with device count (fixed rule/group density).
func benchmarkPlaceScaling(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := workload.Synthetic(n, 3*n, 3, 0.2, 0.16)
		if _, err := place.AutoPlace(d, place.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlaceScaling10(b *testing.B) { benchmarkPlaceScaling(b, 10) }
func BenchmarkPlaceScaling20(b *testing.B) { benchmarkPlaceScaling(b, 20) }
func BenchmarkPlaceScaling40(b *testing.B) { benchmarkPlaceScaling(b, 40) }

// --- Engine benchmarks -------------------------------------------------

// BenchmarkSensitivityRank measures the full pairwise sensitivity ranking
// of the buck converter's inductances — one band prediction per pair,
// fanned out over the engine pool.
func BenchmarkSensitivityRank(b *testing.B) {
	p := buck.Project()
	if err := buck.Unfavorable(p); err != nil {
		b.Fatal(err)
	}
	ckt := p.Circuit.Clone()
	ckt.RemoveCouplings()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sensitivity.Rank(ckt, p.Sources[0], p.MeasureNode,
			sensitivity.Options{MaxFreq: 30e6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCouplingCacheHit measures a coupling-factor evaluation served
// from the engine's memo cache (contrast with BenchmarkFig05CapCoupling's
// first-evaluation cost when the cache is cold per geometry).
func BenchmarkCouplingCacheHit(b *testing.B) {
	m := components.NewX2Cap("X2", 1.5e-6)
	ia := &components.Instance{Ref: "C1", Model: m}
	ib := &components.Instance{Ref: "C2", Model: m, Center: geom.V2(0, 0.03)}
	engine.ResetCache()
	components.CouplingFactor(ia, ib, peec.DefaultOrder) // warm the cache
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		components.CouplingFactor(ia, ib, peec.DefaultOrder)
	}
}

// --- Substrate benchmarks ----------------------------------------------

// BenchmarkMNASolve measures one AC solve of the buck EMI circuit.
func BenchmarkMNASolve(b *testing.B) {
	p := buck.Project()
	an, err := mna.NewAnalyzer(p.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := an.Solve(1e6); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkMNALadder measures repeated AC solves of a 450-stage filter
// ladder (n ≈ 1350 unknowns) under a forced factorization backend — the
// system shape where the sparse LU's near-linear fill pays off.
func benchmarkMNALadder(b *testing.B, mode linalg.SolverMode) {
	c := &netlist.Circuit{}
	c.AddV("Vin", "n0", "0", netlist.Source{ACMag: 1})
	prev := "n0"
	for s := 0; s < 450; s++ {
		node := "n" + strconv.Itoa(s+1)
		c.AddL("L"+strconv.Itoa(s), prev, node, 1e-6)
		c.AddC("C"+strconv.Itoa(s), node, "0", 1e-7)
		c.AddR("R"+strconv.Itoa(s), node, "0", 1e3)
		prev = node
	}
	c.AddR("RL", prev, "0", 4)
	an, err := mna.NewAnalyzer(c)
	if err != nil {
		b.Fatal(err)
	}
	an.SetSolver(mode)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := an.Solve(1e5 * float64(i%20+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMNASolveDense(b *testing.B)  { benchmarkMNALadder(b, linalg.ModeDense) }
func BenchmarkMNASolveSparse(b *testing.B) { benchmarkMNALadder(b, linalg.ModeSparse) }

// benchmarkExtractCouplings measures full mutual-coupling extraction on a
// ~500-segment parametric board, exact all-pairs versus the hierarchical
// tree evaluator. The engine memo cache is reset every iteration so each
// run pays the real extraction cost.
func benchmarkExtractCouplings(b *testing.B, theta float64) {
	p := board.Project(500)
	p.CouplingTheta = theta
	pairs := p.AllPairs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		engine.ResetCache()
		if _, err := p.ExtractCouplings(pairs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractCouplingsExact(b *testing.B) { benchmarkExtractCouplings(b, 0) }
func BenchmarkExtractCouplingsHier(b *testing.B)  { benchmarkExtractCouplings(b, 0.3) }

// BenchmarkTransientBuckPeriod measures simulating one switching period of
// a discrete buck power stage in the time domain.
func BenchmarkTransientBuckPeriod(b *testing.B) {
	c := &netlist.Circuit{}
	c.AddV("Vin", "in", "0", netlist.Source{DC: 12})
	c.AddSwitch("S1", "in", "sw", 0.01, 1e7, netlist.Schedule{Period: 5e-6, OnTime: 2e-6})
	c.AddDiode("D1", "0", "sw", 0.01, 1e7)
	c.AddL("L1", "sw", "out", 47e-6)
	c.AddC("C1", "out", "0", 47e-6)
	c.AddR("RL", "out", "0", 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := transient.Simulate(c, transient.Options{Step: 25e-9, End: 5e-6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBodyCapacitance measures one panel-method coupling capacitance
// (extension figure 19).
func BenchmarkBodyCapacitance(b *testing.B) {
	m := components.NewX2Cap("X2", 1.5e-6)
	ia := &components.Instance{Ref: "C1", Model: m}
	ib := &components.Instance{Ref: "C2", Model: m, Center: geom.V2(0.025, 0)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := components.BodyCapacitance(ia, ib, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpectrumDBuV measures the dBµV conversion hot path.
func BenchmarkSpectrumDBuV(b *testing.B) {
	b.ReportAllocs()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += emi.DBuV(math.Abs(math.Sin(float64(i))) * 1e-3)
	}
	_ = sink
}

// --- Incremental session benchmarks (PR 4) -----------------------------

// sessionFixture builds an auto-placed Complex29 session for the
// incremental-edit benchmarks and the component it toggles.
func sessionFixture(b *testing.B) (*session.Session, layout.Component) {
	b.Helper()
	d := workload.Complex29()
	if _, err := place.AutoPlace(d, place.Options{}); err != nil {
		b.Fatal(err)
	}
	s := session.New("bench", d)
	c, ok := s.Component("U05")
	if !ok {
		b.Fatal("U05 missing from Complex29")
	}
	return s, c
}

// BenchmarkSessionEditIncremental measures one single-component move
// through the session's dependency-indexed incremental recheck on the
// Figure 9 Complex29 workload.
func BenchmarkSessionEditIncremental(b *testing.B) {
	s, c := sessionFixture(b)
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dx := 2e-3
		if i%2 == 1 {
			dx = -2e-3
		}
		if _, err := s.Apply(session.Edit{
			Op: session.OpMove, Ref: c.Ref,
			Center: geom.V2(c.Center.X+dx, c.Center.Y), Rot: c.Rot,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionEditFull is the baseline: the same move followed by a
// from-scratch drc.Check of the whole design.
func BenchmarkSessionEditFull(b *testing.B) {
	d := workload.Complex29()
	if _, err := place.AutoPlace(d, place.Options{}); err != nil {
		b.Fatal(err)
	}
	c := d.Find("U05")
	if c == nil {
		b.Fatal("U05 missing from Complex29")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dx := 2e-3
		if i%2 == 1 {
			dx = -2e-3
		}
		c.Center = geom.V2(c.Center.X+dx, c.Center.Y)
		if rep := drc.Check(d); rep.Checks == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkSessionEditJournaled is the durability overhead benchmark
// (PR 6): the same incremental move with every edit written ahead to a
// FileStore WAL (fsync off — the SIGKILL-survival configuration the soak
// harness runs). The acceptance criterion is ≤2× of
// BenchmarkSessionEditIncremental.
func BenchmarkSessionEditJournaled(b *testing.B) {
	st, err := store.OpenFile(b.TempDir(), store.SyncOff)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	s, c := sessionFixture(b)
	defer s.Close()
	snap, seq, err := s.Checkpoint()
	if err != nil {
		b.Fatal(err)
	}
	if err := st.CreateSession(s.ID, seq, snap); err != nil {
		b.Fatal(err)
	}
	s.SetJournal(func(rec session.JournalRecord) error {
		_, err := st.AppendEdit(s.ID, rec)
		return err
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dx := 2e-3
		if i%2 == 1 {
			dx = -2e-3
		}
		if _, err := s.Apply(session.Edit{
			Op: session.OpMove, Ref: c.Ref,
			Center: geom.V2(c.Center.X+dx, c.Center.Y), Rot: c.Rot,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSessionEditEvalRatio pins the acceptance criterion of the session
// subsystem: a single-component move on Complex29 must re-evaluate fewer
// than 25% of the rule units a full drc.Check covers.
func TestSessionEditEvalRatio(t *testing.T) {
	d := workload.Complex29()
	if _, err := place.AutoPlace(d, place.Options{}); err != nil {
		t.Fatal(err)
	}
	s := session.New("t", d)
	defer s.Close()
	c, ok := s.Component("U05")
	if !ok {
		t.Fatal("U05 missing from Complex29")
	}
	delta, err := s.Apply(session.Edit{
		Op: session.OpMove, Ref: c.Ref,
		Center: geom.V2(c.Center.X+2e-3, c.Center.Y), Rot: c.Rot,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(delta.ChecksEvaluated) / float64(delta.ChecksFull)
	t.Logf("incremental move evaluated %d of %d checks (%.1f%%)",
		delta.ChecksEvaluated, delta.ChecksFull, 100*ratio)
	if ratio >= 0.25 {
		t.Fatalf("incremental edit evaluated %.1f%% of the full check, want < 25%%", 100*ratio)
	}
}

// --- Tracing overhead benchmarks (PR 5) --------------------------------

// BenchmarkSensitivityRankTraced is BenchmarkSensitivityRank with a span
// collection attached to the context — the enabled-tracing counterpart
// whose delta against the untraced run pins the observability overhead
// (scripts/bench.sh records both into BENCH_pr5.json).
func BenchmarkSensitivityRankTraced(b *testing.B) {
	p := buck.Project()
	if err := buck.Unfavorable(p); err != nil {
		b.Fatal(err)
	}
	ckt := p.Circuit.Clone()
	ckt.RemoveCouplings()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := obs.NewTrace("bench")
		ctx := obs.WithTrace(context.Background(), tr)
		if _, err := sensitivity.RankCtx(ctx, ckt, p.Sources[0], p.MeasureNode,
			sensitivity.Options{MaxFreq: 30e6}); err != nil {
			b.Fatal(err)
		}
		tr.Finish()
	}
}

// BenchmarkSessionEditIncrementalTraced is BenchmarkSessionEditIncremental
// with per-edit tracing enabled (session.edit, drc.recheck and
// peec.recouple spans recorded per iteration).
func BenchmarkSessionEditIncrementalTraced(b *testing.B) {
	s, c := sessionFixture(b)
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := obs.NewTrace("bench")
		ctx := obs.WithTrace(context.Background(), tr)
		dx := 2e-3
		if i%2 == 1 {
			dx = -2e-3
		}
		if _, err := s.ApplyCtx(ctx, session.Edit{
			Op: session.OpMove, Ref: c.Ref,
			Center: geom.V2(c.Center.X+dx, c.Center.Y), Rot: c.Rot,
		}); err != nil {
			b.Fatal(err)
		}
		tr.Finish()
	}
}

// --- PR 7: design-space exploration ------------------------------------

// BenchmarkExploreGeneration measures one NSGA-II generation of placement
// tournaments on the buck converter with the geometric objectives (area,
// net length, DRC violations) — the per-generation unit of work behind
// POST /v1/explore.
func BenchmarkExploreGeneration(b *testing.B) {
	prob := &explore.DesignProblem{
		Project:    buck.Project(),
		Objectives: []string{explore.ObjArea, explore.ObjNet, explore.ObjViolations},
	}
	if err := prob.Validate(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := explore.Run(context.Background(), prob, explore.Config{
			Pop: 8, Generations: 1, Seed: int64(i),
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Front) == 0 {
			b.Fatal("empty front")
		}
	}
	b.ReportMetric(float64(b.N*16)/b.Elapsed().Seconds(), "evals/s")
}

// BenchmarkYieldBatch measures one Monte-Carlo batch of EMI yield
// evaluation (8 perturbed builds, band-limited spectrum each) — the unit
// of work behind POST /v1/yield.
func BenchmarkYieldBatch(b *testing.B) {
	proj := buck.Project()
	if _, err := place.AutoPlace(proj.Design, place.Options{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve, err := explore.Yield(context.Background(), proj, explore.YieldOptions{
			Samples: 8, Batch: 8, Seed: int64(i), MaxFreq: 2e6,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if curve.Batches != 1 {
			b.Fatalf("batches = %d", curve.Batches)
		}
	}
	b.ReportMetric(float64(b.N*8)/b.Elapsed().Seconds(), "builds/s")
}
