package place

import (
	"context"
	"sort"

	"repro/internal/drc"
	"repro/internal/layout"
)

// Legalize repairs a layout with design-rule violations by rip-up and
// re-place: the movable components involved in violations are removed and
// re-inserted by the prioritised sequential search, which only yields
// legal positions. It is the batch companion of the interactive adviser —
// e.g. for turning an imported (EMI-blind) layout into a legal one while
// disturbing as few components as possible.
//
// Returns the references that were re-placed. If even re-placement cannot
// find room, a PlaceError lists the remainder.
func Legalize(d *layout.Design, opt Options) ([]string, error) {
	return LegalizeCtx(context.Background(), d, opt)
}

// LegalizeCtx is Legalize with cancellation (see AutoPlaceCtx).
func LegalizeCtx(ctx context.Context, d *layout.Design, opt Options) ([]string, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	var ripped []string
	// Violations can cascade: repairing one pair may be impossible until
	// another offender moved, so iterate rip-up rounds.
	for round := 0; round < 4; round++ {
		rep := drc.Check(d)
		if rep.Green() {
			break
		}
		offenders := map[string]bool{}
		for _, v := range rep.Violations {
			for _, ref := range v.Refs {
				c := d.Find(ref)
				if c != nil && !c.Preplaced && c.Placed {
					offenders[ref] = true
				}
			}
		}
		if len(offenders) == 0 {
			break // only preplaced parts involved: nothing we may move
		}
		for ref := range offenders {
			d.Find(ref).Placed = false
		}
		for ref := range offenders {
			ripped = append(ripped, ref)
		}
		if _, err := placeUnplaced(ctx, d, opt, opt.rng()); err != nil {
			return dedupSorted(ripped), err
		}
	}
	rep := drc.Check(d)
	if !rep.Green() {
		var refs []string
		for _, v := range rep.Violations {
			refs = append(refs, v.Refs...)
		}
		return dedupSorted(ripped), &PlaceError{Refs: dedupSorted(refs)}
	}
	return dedupSorted(ripped), nil
}

func dedupSorted(in []string) []string {
	set := map[string]bool{}
	for _, s := range in {
		set[s] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
