package place

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/rules"
)

// smallDesign: four magnetic caps with mutual 15 mm PEMD rules on a 60×50
// mm board, plus a mechanical part and nets.
func smallDesign() *layout.Design {
	d := &layout.Design{
		Name:      "small",
		Boards:    1,
		Clearance: 0.5e-3,
		Areas: []layout.Area{
			{Name: "main", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, 0.06, 0.05))},
		},
		Rules: rules.NewSet(nil),
	}
	for _, ref := range []string{"C1", "C2", "C3", "C4"} {
		d.Comps = append(d.Comps, &layout.Component{
			Ref: ref, W: 0.012, L: 0.006, H: 0.012, Axis: geom.V3(0, 1, 0),
		})
	}
	d.Comps = append(d.Comps, &layout.Component{Ref: "Q1", W: 0.01, L: 0.01, H: 0.004})
	for _, pair := range [][2]string{{"C1", "C2"}, {"C2", "C3"}, {"C3", "C4"}, {"C1", "C3"}} {
		d.Rules.Add(rules.Rule{RefA: pair[0], RefB: pair[1], PEMD: 0.015})
	}
	d.Nets = append(d.Nets,
		layout.Net{Name: "n1", Refs: []string{"C1", "C2", "Q1"}},
		layout.Net{Name: "n2", Refs: []string{"C3", "C4"}},
	)
	return d
}

func TestAutoPlaceProducesLegalLayout(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	res, err := AutoPlace(d, Options{})
	if err != nil {
		t.Fatalf("AutoPlace: %v", err)
	}
	if res.Placed != 5 {
		t.Errorf("placed = %d, want 5", res.Placed)
	}
	rep := Verify(d)
	if !rep.Green() {
		t.Fatalf("layout not legal:\n%s", rep)
	}
	// Every EMD pair is green.
	for _, p := range rep.Pairs {
		if !p.OK {
			t.Errorf("pair %s/%s red", p.RefA, p.RefB)
		}
	}
}

func TestRotationStepReducesEMDSum(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	res, err := AutoPlace(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EMDSumAfter > res.EMDSumBefore {
		t.Errorf("rotation step increased Σ EMD: %v → %v", res.EMDSumBefore, res.EMDSumAfter)
	}
	// With 90°-rotatable parallel-axis parts the optimum decouples some
	// pairs entirely.
	if res.EMDSumAfter >= res.EMDSumBefore && res.EMDSumBefore > 0 {
		t.Errorf("expected strict improvement: %v → %v", res.EMDSumBefore, res.EMDSumAfter)
	}
}

func TestSkipRotationAblation(t *testing.T) {
	t.Parallel()
	d1 := smallDesign()
	if _, err := AutoPlace(d1, Options{}); err != nil {
		t.Fatal(err)
	}
	d2 := smallDesign()
	res2, err := AutoPlace(d2, Options{SkipRotation: true})
	if err != nil {
		// Without rotation optimisation the full parallel-axis EMD may
		// simply not fit — that IS the ablation result.
		t.Logf("skip-rotation failed to place (acceptable): %v", err)
		return
	}
	if res2.RotationPasses != 0 || res2.EMDSumAfter != 0 {
		t.Errorf("ablation ran rotation step: %+v", res2)
	}
	// Layout must still satisfy rules if it placed everything.
	if rep := Verify(d2); !rep.Green() {
		t.Errorf("skip-rotation layout illegal:\n%s", rep)
	}
}

func TestBaselineIgnoresEMD(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	if _, err := AutoPlace(d, Options{IgnoreEMD: true}); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	rep := Verify(d)
	// The wirelength-driven baseline packs the caps close together with
	// parallel axes — exactly the paper's "unfavourable placement". It
	// must break at least one EMD rule (otherwise the rules were trivial).
	if len(rep.ByKind(drc.KindEMD)) == 0 {
		t.Errorf("baseline unexpectedly satisfied all EMD rules:\n%s", rep)
	}
	// But it must respect the plain geometric rules.
	if len(rep.ByKind(drc.KindClearance)) != 0 || len(rep.ByKind(drc.KindContainment)) != 0 {
		t.Errorf("baseline broke geometric rules:\n%s", rep)
	}
}

func TestPreplacedStaysPut(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	q := d.Find("Q1")
	q.Preplaced = true
	q.Placed = true
	q.Center = geom.V2(0.05, 0.04)
	if _, err := AutoPlace(d, Options{}); err != nil {
		t.Fatal(err)
	}
	if q.Center != geom.V2(0.05, 0.04) {
		t.Errorf("preplaced moved to %v", q.Center)
	}
	if rep := Verify(d); !rep.Green() {
		t.Errorf("layout with preplacement illegal:\n%s", rep)
	}
}

func TestKeepoutRespected(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	// Tall keepout over the left half: everything must land on the right.
	d.Keepouts = append(d.Keepouts, layout.Keepout{
		Name: "housing", Board: 0,
		Box: geom.CuboidOf(geom.R(0, 0, 0.03, 0.05), 0, 0.05),
	})
	if _, err := AutoPlace(d, Options{}); err != nil {
		t.Fatalf("AutoPlace: %v", err)
	}
	for _, c := range d.Comps {
		if c.Footprint().Min.X < 0.03-1e-9 {
			t.Errorf("%s at %v under the keepout", c.Ref, c.Center)
		}
	}
}

func TestEdgeClearanceRespected(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	d.EdgeClearance = 3e-3
	if _, err := AutoPlace(d, Options{}); err != nil {
		t.Fatalf("AutoPlace: %v", err)
	}
	board := d.Areas[0].Poly.BBox()
	for _, c := range d.Comps {
		fp := c.Footprint()
		if fp.Min.X < board.Min.X+3e-3-1e-9 || fp.Max.X > board.Max.X-3e-3+1e-9 ||
			fp.Min.Y < board.Min.Y+3e-3-1e-9 || fp.Max.Y > board.Max.Y-3e-3+1e-9 {
			t.Errorf("%s at %v violates the edge clearance", c.Ref, fp)
		}
	}
	if rep := Verify(d); !rep.Green() {
		t.Errorf("layout with edge clearance illegal:\n%s", rep)
	}
}

func TestUnplaceableReportsError(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	// Shrink the board so the EMD rules cannot fit.
	d.Areas[0].Poly = geom.RectPolygon(geom.R(0, 0, 0.02, 0.015))
	_, err := AutoPlace(d, Options{})
	if err == nil {
		t.Fatal("expected placement failure")
	}
	var pe *PlaceError
	if !errors.As(err, &pe) || len(pe.Refs) == 0 {
		t.Errorf("error = %v, want PlaceError with refs", err)
	}
}

func TestGroupsPlacedCoherently(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	d.Find("C1").Group = "in"
	d.Find("C2").Group = "in"
	d.Find("C3").Group = "out"
	d.Find("C4").Group = "out"
	if _, err := AutoPlace(d, Options{}); err != nil {
		t.Fatal(err)
	}
	rep := Verify(d)
	if len(rep.ByKind(drc.KindGroup)) != 0 {
		t.Errorf("group coherence violated:\n%s", rep)
	}
}

func TestTwoBoardPartition(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	d.Boards = 2
	d.Areas = append(d.Areas, layout.Area{
		Name: "second", Board: 1, Poly: geom.RectPolygon(geom.R(0, 0, 0.06, 0.05)),
	})
	res, err := AutoPlace(d, Options{Partition: true})
	if err != nil {
		t.Fatal(err)
	}
	boards := map[int]int{}
	for _, c := range d.Comps {
		boards[c.Board]++
	}
	if boards[0] == 0 || boards[1] == 0 {
		t.Errorf("partition left a board empty: %v (cut %d)", boards, res.CutNets)
	}
	if rep := Verify(d); !rep.Green() {
		t.Errorf("two-board layout illegal:\n%s", rep)
	}
	// Tightly connected pairs should stay together: the cut is at most
	// the total net count.
	if res.CutNets > len(d.Nets) {
		t.Errorf("cut = %d", res.CutNets)
	}
}

func TestPartitionKeepsGroupsTogether(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	d.Boards = 2
	d.Areas = append(d.Areas, layout.Area{
		Name: "second", Board: 1, Poly: geom.RectPolygon(geom.R(0, 0, 0.06, 0.05)),
	})
	d.Find("C1").Group = "in"
	d.Find("C2").Group = "in"
	if _, err := AutoPlace(d, Options{Partition: true}); err != nil {
		t.Fatal(err)
	}
	if d.Find("C1").Board != d.Find("C2").Board {
		t.Error("group split across boards")
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	d1, d2 := smallDesign(), smallDesign()
	if _, err := AutoPlace(d1, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := AutoPlace(d2, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := range d1.Comps {
		a, b := d1.Comps[i], d2.Comps[i]
		if a.Center != b.Center || a.Rot != b.Rot {
			t.Errorf("%s placed differently: %v/%v vs %v/%v", a.Ref, a.Center, a.Rot, b.Center, b.Rot)
		}
	}
}

func TestAdviserFlow(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	if _, err := AutoPlace(d, Options{}); err != nil {
		t.Fatal(err)
	}
	a := NewAdviser(d)
	if !a.Report().Green() {
		t.Fatal("start state should be green")
	}
	c2 := d.Find("C2")
	origin := c2.Center

	// Try is side-effect free.
	bad := d.Find("C1").Center.Add(geom.V2(0.002, 0))
	rep, err := a.Try("C2", bad, d.Find("C1").Rot)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Green() {
		t.Error("moving onto C1 should be red")
	}
	if c2.Center != origin {
		t.Error("Try moved the component")
	}

	// Move applies and reports red; Undo restores green.
	rep, err = a.Move("C2", bad, d.Find("C1").Rot)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Green() {
		t.Error("applied bad move should be red")
	}
	if !a.Undo() {
		t.Fatal("undo failed")
	}
	if c2.Center != origin {
		t.Error("undo did not restore position")
	}
	if !a.Report().Green() {
		t.Error("state after undo should be green")
	}
	if a.Undo() {
		t.Error("empty history should not undo")
	}

	// Preplaced refuses to move.
	d.Find("Q1").Preplaced = true
	if _, err := a.Move("Q1", geom.V2(0, 0), 0); err == nil {
		t.Error("preplaced move should error")
	}
	if _, err := a.Move("zz", geom.V2(0, 0), 0); err == nil {
		t.Error("unknown ref should error")
	}
	// Bounding box covers all parts.
	bb := a.BoundingBox(0)
	for _, c := range d.Comps {
		if c.Placed && !bb.ContainsRect(c.Footprint()) {
			t.Errorf("bbox misses %s", c.Ref)
		}
	}
}

func TestPlacementOrderPriorities(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	refs := SortRefs(d)
	if len(refs) != 5 {
		t.Fatalf("order = %v", refs)
	}
	// Rule-laden C3 (3 rules) and C1/C2 come before the unconstrained Q1.
	if refs[len(refs)-1] != "Q1" {
		t.Errorf("Q1 should be placed last: %v", refs)
	}
}

func TestAutoPlaceRandomizedAlwaysLegalOrError(t *testing.T) {
	t.Parallel()
	// Robustness sweep: across a range of synthetic problem shapes the
	// placer must either produce a fully legal layout or report a
	// PlaceError — never a silent illegal result.
	for seed := 0; seed < 10; seed++ {
		n := 6 + 3*seed
		ruleCount := 2 * n
		groups := seed % 4
		d := workloadSynthetic(t, n, ruleCount, groups)
		_, err := AutoPlace(d, Options{})
		if err != nil {
			var pe *PlaceError
			if !errors.As(err, &pe) {
				t.Errorf("seed %d: unexpected error type %v", seed, err)
			}
			continue
		}
		if rep := Verify(d); !rep.Green() {
			t.Errorf("seed %d: placer reported success but layout is illegal:\n%s", seed, rep)
		}
	}
}

// workloadSynthetic mirrors workload.Synthetic without importing it (which
// would create an import cycle in tests is fine — but keep place
// self-contained): deterministic mixed component set.
func workloadSynthetic(t *testing.T, n, ruleCount, groupCount int) *layout.Design {
	t.Helper()
	d := &layout.Design{
		Name:      "synthetic",
		Boards:    1,
		Clearance: 0.5e-3,
		Areas: []layout.Area{
			{Name: "board", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, 0.14, 0.11))},
		},
		Rules: rules.NewSet(nil),
	}
	sizes := [][3]float64{
		{18e-3, 8e-3, 14e-3}, {9e-3, 13e-3, 9e-3}, {7e-3, 4e-3, 3e-3}, {10e-3, 15e-3, 4.5e-3},
	}
	var magnetic []string
	for i := 0; i < n; i++ {
		s := sizes[i%len(sizes)]
		ref := fmt.Sprintf("U%02d", i)
		c := &layout.Component{Ref: ref, W: s[0], L: s[1], H: s[2]}
		if groupCount > 0 {
			c.Group = fmt.Sprintf("g%d", i%groupCount)
		}
		if i%len(sizes) != 3 {
			c.Axis = geom.V3(0, 1, 0)
			magnetic = append(magnetic, ref)
		}
		d.Comps = append(d.Comps, c)
	}
	added := 0
	for gap := 1; gap < len(magnetic) && added < ruleCount; gap++ {
		for i := 0; i+gap < len(magnetic) && added < ruleCount; i++ {
			pemd := 8e-3 + 9e-3*math.Abs(math.Sin(float64(added)*2.3))
			d.Rules.Add(rules.Rule{RefA: magnetic[i], RefB: magnetic[i+gap], PEMD: pemd})
			added++
		}
	}
	return d
}

func TestEMDSumMatchesManual(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	// All at rot 0: parallel axes, Σ EMD = Σ PEMD = 4 × 15 mm.
	got := emdSum(d)
	if math.Abs(got-0.06) > 1e-12 {
		t.Errorf("emdSum = %v, want 0.06", got)
	}
	// Rotating C2 by 90° removes C1-C2 and C2-C3 (2 × 15 mm).
	d.Find("C2").Rot = math.Pi / 2
	got = emdSum(d)
	if math.Abs(got-0.03) > 1e-9 {
		t.Errorf("emdSum after rot = %v, want 0.03", got)
	}
}
