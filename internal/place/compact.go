package place

import (
	"math"
	"sort"

	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
)

// CompactResult reports what the compaction pass achieved.
type CompactResult struct {
	Moves      int     // accepted component moves
	AreaBefore float64 // bounding-box area before, m²
	AreaAfter  float64 // bounding-box area after, m²
}

// Compact shrinks a legal layout towards a smaller system volume — the
// paper's motivation for the interactive adviser ("a minimization of the
// system volume is possible since relevant constraints are controlled
// simultaneously"), automated: components are pulled stepwise towards the
// occupied-area centroid, accepting only moves that keep the full design
// rule set green. The design must be legal on entry; the result stays
// legal. Preplaced parts do not move.
func Compact(d *layout.Design, board int, maxPasses int) (*CompactResult, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if maxPasses <= 0 {
		maxPasses = 6
	}
	res := &CompactResult{
		AreaBefore: boundingArea(d, board),
	}
	if rep := drc.Check(d); !rep.Green() {
		res.AreaAfter = res.AreaBefore
		return res, &PlaceError{Refs: []string{"(design not legal before compaction)"}}
	}

	// Movable components, outermost first (they gain the most). A single
	// dependency index serves every probe across all passes.
	idx := drc.NewIndex(d)
	for pass := 0; pass < maxPasses; pass++ {
		target := occupiedCentroid(d, board)
		order := movableByDistance(d, board, target)
		improved := false
		for _, c := range order {
			dir := target.Sub(c.Center)
			dist := dir.Norm()
			if dist < 1e-4 {
				continue
			}
			dir = dir.Scale(1 / dist)
			// Try progressively smaller steps towards the centroid.
			for _, frac := range []float64{0.5, 0.25, 0.1} {
				step := dist * frac
				if step < 2e-4 {
					break
				}
				cand := c.Center.Add(dir.Scale(step))
				rep, err := idx.CheckMove(c.Ref, cand, c.Rot)
				if err != nil {
					return res, err
				}
				if rep.Green() {
					c.Center = cand
					idx.Update(c.Ref)
					res.Moves++
					improved = true
					break
				}
			}
		}
		if !improved {
			break
		}
	}
	res.AreaAfter = boundingArea(d, board)
	return res, nil
}

// boundingArea returns the area of the bounding box of the placed
// footprints on a board.
func boundingArea(d *layout.Design, board int) float64 {
	var bb geom.Rect
	first := true
	for _, c := range d.Comps {
		if !c.Placed || c.Board != board {
			continue
		}
		if first {
			bb = c.Footprint()
			first = false
		} else {
			bb = bb.Union(c.Footprint())
		}
	}
	if first {
		return 0
	}
	return bb.Area()
}

// occupiedCentroid returns the area-weighted centroid of the placed parts.
func occupiedCentroid(d *layout.Design, board int) geom.Vec2 {
	var sum geom.Vec2
	total := 0.0
	for _, c := range d.Comps {
		if !c.Placed || c.Board != board {
			continue
		}
		a := c.W * c.L
		sum = sum.Add(c.Center.Scale(a))
		total += a
	}
	if total == 0 {
		return geom.Vec2{}
	}
	return sum.Scale(1 / total)
}

// movableByDistance lists non-preplaced placed components of the board,
// farthest from the target first.
func movableByDistance(d *layout.Design, board int, target geom.Vec2) []*layout.Component {
	var out []*layout.Component
	for _, c := range d.Comps {
		if c.Placed && !c.Preplaced && c.Board == board {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		di := out[i].Center.Dist(target)
		dj := out[j].Center.Dist(target)
		if math.Abs(di-dj) > 1e-12 {
			return di > dj
		}
		return out[i].Ref < out[j].Ref
	})
	return out
}
