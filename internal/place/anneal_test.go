package place

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
)

// placementSnapshot captures positions and rotations for comparison.
func placementSnapshot(d *layout.Design) map[string][3]float64 {
	out := map[string][3]float64{}
	for _, c := range d.Comps {
		out[c.Ref] = [3]float64{c.Center.X, c.Center.Y, c.Rot}
	}
	return out
}

func snapshotsEqual(a, b map[string][3]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestAnnealImprovesCostAndStaysLegal(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	if _, err := AutoPlace(d, Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := Anneal(d, 0, AnnealOptions{Seed: 1, Iterations: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proposals == 0 || res.Accepted == 0 {
		t.Fatalf("annealer did nothing: %+v", res)
	}
	if res.CostAfter > res.CostBefore {
		t.Errorf("cost worsened: %.4f → %.4f", res.CostBefore, res.CostAfter)
	}
	if rep := Verify(d); !rep.Green() {
		t.Fatalf("annealed layout not legal:\n%s", rep)
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	t.Parallel()
	mk := func(seed int64) map[string][3]float64 {
		d := smallDesign()
		if _, err := AutoPlace(d, Options{}); err != nil {
			t.Fatal(err)
		}
		if _, err := Anneal(d, 0, AnnealOptions{Seed: seed, Iterations: 1000}); err != nil {
			t.Fatal(err)
		}
		return placementSnapshot(d)
	}
	a, b := mk(7), mk(7)
	if !snapshotsEqual(a, b) {
		t.Error("same seed produced different layouts")
	}
	c := mk(8)
	if snapshotsEqual(a, c) {
		t.Error("different seeds should explore differently")
	}
}

func TestAnnealRejectsIllegalStart(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	if _, err := AutoPlace(d, Options{IgnoreEMD: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := Anneal(d, 0, AnnealOptions{Seed: 1, Iterations: 100}); err == nil {
		t.Error("annealing an illegal layout should error")
	}
}

func TestAnnealRespectsPreplaced(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	q := d.Find("Q1")
	q.Preplaced = true
	q.Placed = true
	q.Center = geom.V2(0.05, 0.04)
	if _, err := AutoPlace(d, Options{}); err != nil {
		t.Fatal(err)
	}
	before := q.Center
	if _, err := Anneal(d, 0, AnnealOptions{Seed: 3, Iterations: 1500}); err != nil {
		t.Fatal(err)
	}
	if q.Center != before {
		t.Error("annealer moved a preplaced part")
	}
}

func TestAnnealEmptyBoardNoop(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	d.Boards = 2
	d.Areas = append(d.Areas, layout.Area{
		Name: "b1", Board: 1, Poly: geom.RectPolygon(geom.R(0, 0, 0.06, 0.05)),
	})
	if _, err := AutoPlace(d, Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := Anneal(d, 1, AnnealOptions{Seed: 1, Iterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proposals != 0 {
		t.Errorf("empty board should be a no-op: %+v", res)
	}
}
