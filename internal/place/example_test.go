package place_test

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/place"
	"repro/internal/rules"
)

// The automatic method chooses rotations that dissolve minimum-distance
// requirements (orthogonal axes decouple), then places every part legally.
func ExampleAutoPlace() {
	d := &layout.Design{
		Name:      "example",
		Boards:    1,
		Clearance: 0.5e-3,
		Areas: []layout.Area{
			{Name: "board", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, 0.05, 0.04))},
		},
		Rules: rules.NewSet(nil),
	}
	for _, ref := range []string{"C1", "C2"} {
		d.Comps = append(d.Comps, &layout.Component{
			Ref: ref, W: 0.012, L: 0.006, H: 0.012, Axis: geom.V3(0, 1, 0),
		})
	}
	d.Rules.Add(rules.Rule{RefA: "C1", RefB: "C2", PEMD: 0.030})

	res, err := place.AutoPlace(d, place.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("placed:", res.Placed)
	fmt.Printf("Σ EMD %.0f mm → %.0f mm\n", res.EMDSumBefore*1e3, res.EMDSumAfter*1e3)
	fmt.Println("legal:", place.Verify(d).Green())
	// Output:
	// placed: 2
	// Σ EMD 30 mm → 0 mm
	// legal: true
}
