package place

import (
	"math"
	"math/rand"

	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
)

// AnnealOptions tunes the simulated-annealing refinement.
type AnnealOptions struct {
	Seed       int64      // RNG seed (deterministic for a given seed)
	Rand       *rand.Rand // pre-seeded source shared with the caller; overrides Seed
	Iterations int        // proposal count; 0 = 400 per movable component
	StartTemp  float64    // initial temperature in cost units; 0 = auto
	EndTemp    float64    // final temperature; 0 = StartTemp/1000

	// Weights of the cost terms (defaults as in Options).
	WirelengthWeight float64
	CompactWeight    float64
}

// AnnealResult reports the refinement outcome.
type AnnealResult struct {
	Accepted              int
	Proposals             int
	CostBefore, CostAfter float64
}

// Anneal refines a legal layout by simulated annealing: random move and
// rotate proposals are accepted by the Metropolis criterion on a
// wirelength + compactness cost, but only if the full design-rule set
// stays green — the annealer explores strictly inside the legal space, so
// the layout never regresses below legality. The paper classifies layout
// as NP-hard and reaches for heuristics; this is the classic global
// heuristic, provided as the quality benchmark for the fast sequential
// method (see the ablation benchmarks).
func Anneal(d *layout.Design, board int, opt AnnealOptions) (*AnnealResult, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if rep := drc.Check(d); !rep.Green() {
		return nil, &PlaceError{Refs: []string{"(design not legal before annealing)"}}
	}
	var movable []*layout.Component
	for _, c := range d.Comps {
		if c.Placed && !c.Preplaced && c.Board == board {
			movable = append(movable, c)
		}
	}
	res := &AnnealResult{}
	if len(movable) == 0 {
		return res, nil
	}
	iters := opt.Iterations
	if iters == 0 {
		iters = 400 * len(movable)
	}
	wWire := opt.WirelengthWeight
	if wWire == 0 {
		wWire = 1
	}
	wCompact := opt.CompactWeight
	if wCompact == 0 {
		wCompact = 0.25
	}

	cost := func() float64 {
		sum := 0.0
		for _, n := range d.Nets {
			sum += wWire * d.NetLength(n)
		}
		sum += wCompact * math.Sqrt(boundingArea(d, board))
		return sum
	}

	rng := opt.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(opt.Seed))
	}
	cur := cost()
	res.CostBefore = cur

	t0 := opt.StartTemp
	if t0 == 0 {
		t0 = cur * 0.05
		if t0 == 0 {
			t0 = 1e-3
		}
	}
	t1 := opt.EndTemp
	if t1 == 0 {
		t1 = t0 / 1000
	}
	bb := d.AreasOf(board, "")[0].Poly.BBox()
	for _, a := range d.AreasOf(board, "") {
		bb = bb.Union(a.Poly.BBox())
	}

	// One dependency index serves every probe; accepted moves re-bucket
	// the component in its spatial grid.
	idx := drc.NewIndex(d)
	for it := 0; it < iters; it++ {
		temp := t0 * math.Pow(t1/t0, float64(it)/float64(iters))
		c := movable[rng.Intn(len(movable))]
		oldCenter, oldRot := c.Center, c.Rot

		// Proposal: local jitter (shrinking with temperature), a jump, or
		// a rotation change.
		var newCenter geom.Vec2
		newRot := oldRot
		switch rng.Intn(4) {
		case 0: // rotation
			rots := c.Rotations()
			newRot = rots[rng.Intn(len(rots))]
			newCenter = oldCenter
		case 1: // global jump
			newCenter = geom.V2(
				bb.Min.X+rng.Float64()*bb.W(),
				bb.Min.Y+rng.Float64()*bb.H(),
			)
		default: // local move, radius ∝ temperature
			r := 0.002 + 0.05*temp/t0
			newCenter = oldCenter.Add(geom.V2(
				(rng.Float64()*2-1)*r,
				(rng.Float64()*2-1)*r,
			))
		}

		res.Proposals++
		rep, err := idx.CheckMove(c.Ref, newCenter, newRot)
		if err != nil {
			return res, err
		}
		if !rep.Green() {
			continue
		}
		c.Center, c.Rot = newCenter, newRot
		nc := cost()
		delta := nc - cur
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			cur = nc
			res.Accepted++
			idx.Update(c.Ref)
		} else {
			c.Center, c.Rot = oldCenter, oldRot
		}
	}
	res.CostAfter = cur
	return res, nil
}
