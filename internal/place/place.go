// Package place implements the paper's dedicated placement tool for power
// electronics: an automatic method in three steps —
//
//  1. optimal rotation: component angles are chosen to minimise the total
//     sum of effective minimum distances EMD = PEMD·|cos α|,
//  2. optional partitioning of the circuit onto two boards,
//  3. prioritised sequential placement on the continuous plane, with all
//     placement-relevant objects approximated rectilinearly,
//
// plus a wirelength-only baseline placer (the trial-and-error stand-in the
// paper's "unfavourable" layouts represent) and an interactive placement
// adviser with online design-rule checks.
package place

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/drc"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/obs"
)

// Options tunes the automatic placement method.
type Options struct {
	// GridStep is the candidate raster for the continuous-plane search;
	// 0 chooses max(1 mm, smallest body dimension / 2). The raster only
	// seeds candidates — positions are continuous values, not grid cells.
	GridStep float64

	// SkipRotation disables step 1 (ablation).
	SkipRotation bool

	// Partition enables step 2 when the design has two boards.
	Partition bool

	// IgnoreEMD makes the placer blind to the minimum-distance rules —
	// the baseline behaviour of conventional wirelength-driven tools.
	IgnoreEMD bool

	// Scoring weights; zero values take the defaults 1.0 / 0.5 / 0.25.
	WirelengthWeight float64
	GroupWeight      float64
	CompactWeight    float64

	// MaxRefine bounds how often the raster is halved when a component
	// finds no legal position; 0 = 2.
	MaxRefine int

	// Seed seeds the run's single rand.Source; every random choice of the
	// placement (order jitter, annealing proposals) flows from it, so a
	// fixed seed makes the whole placement byte-reproducible. With
	// OrderJitter and AnnealIters both zero no randomness is consumed and
	// the placement is the classic deterministic one regardless of Seed.
	Seed int64

	// OrderJitter perturbs the sequential-placement priorities
	// multiplicatively by ±OrderJitter — the knob that turns the single
	// deterministic placement into a reproducible tournament of
	// placements (one entry per seed). 0 keeps the exact priority order.
	OrderJitter float64

	// AnnealIters runs the seeded simulated-annealing refinement for this
	// many proposals per board after sequential placement succeeds
	// (skipped for EMD-blind baselines and layouts that are not green).
	// 0 disables the refinement.
	AnnealIters int
}

func (o Options) wWire() float64 {
	if o.WirelengthWeight == 0 {
		return 1
	}
	return o.WirelengthWeight
}

func (o Options) wGroup() float64 {
	if o.GroupWeight == 0 {
		return 0.5
	}
	return o.GroupWeight
}

func (o Options) wCompact() float64 {
	if o.CompactWeight == 0 {
		return 0.25
	}
	return o.CompactWeight
}

func (o Options) maxRefine() int {
	if o.MaxRefine == 0 {
		return 2
	}
	return o.MaxRefine
}

// Result reports what the automatic method did.
type Result struct {
	Placed         int     // components placed by the run
	RotationPasses int     // passes of the rotation optimiser
	EMDSumBefore   float64 // Σ EMD over rule pairs before step 1
	EMDSumAfter    float64 // Σ EMD after step 1
	CutNets        int     // nets crossing boards after step 2

	// Annealing refinement (AnnealIters > 0).
	AnnealAccepted  int
	AnnealProposals int

	Elapsed time.Duration
}

// AutoPlace runs the automatic placement method on the design, mutating the
// component placements. Preplaced components are never moved. On success
// the resulting layout passes the full DRC (unless IgnoreEMD baselines it).
func AutoPlace(d *layout.Design, opt Options) (*Result, error) {
	return AutoPlaceCtx(context.Background(), d, opt)
}

// AutoPlaceCtx is AutoPlace with cancellation: the placement stops between
// components (and between raster rows of a candidate scan) once ctx is
// done, returning the context's error. The design is left with whatever
// placements completed — callers that need all-or-nothing must snapshot.
func AutoPlaceCtx(ctx context.Context, d *layout.Design, opt Options) (*Result, error) {
	start := time.Now()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	ctx, sp := obs.Start(ctx, "place.autoplace")
	sp.Int("comps", int64(len(d.Comps)))
	res := &Result{}
	defer func() {
		sp.Int("placed", int64(res.Placed))
		sp.Int("rotation_passes", int64(res.RotationPasses))
		sp.Int("anneal_accepted", int64(res.AnnealAccepted))
		sp.End()
	}()

	// Step 1: optimal rotation.
	if !opt.SkipRotation && !opt.IgnoreEMD {
		done := engine.Phase("place.rotate")
		res.EMDSumBefore = emdSum(d)
		res.RotationPasses = optimizeRotations(d)
		res.EMDSumAfter = emdSum(d)
		done()
	}

	// Step 2: partitioning.
	if opt.Partition && d.Boards == 2 {
		res.CutNets = partition(d)
	}

	// Step 3: prioritised sequential placement. One seeded source drives
	// every random decision of the run (order jitter here, annealing
	// proposals below) so a fixed Seed reproduces the placement exactly.
	rng := opt.rng()
	done := engine.Phase("place.sequential")
	placed, err := sequentialPlace(ctx, d, opt, rng)
	done()
	res.Placed = placed
	if err != nil {
		res.Elapsed = time.Since(start)
		return res, err
	}

	// Optional step 4: seeded annealing refinement inside the legal space.
	// EMD-blind baselines are skipped (their layouts are not green, which
	// the annealer requires), as are layouts a preplaced violation keeps
	// from legality — the sequential result stands in both cases.
	if opt.AnnealIters > 0 && !opt.IgnoreEMD {
		done := engine.Phase("place.anneal")
		aerr := annealBoards(ctx, d, opt, rng, res)
		done()
		if aerr != nil {
			res.Elapsed = time.Since(start)
			return res, aerr
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// rng builds the run's random source. It is only consumed when a random
// feature (OrderJitter, AnnealIters) is enabled; otherwise the placement
// never draws from it.
func (o Options) rng() *rand.Rand {
	return rand.New(rand.NewSource(o.Seed))
}

// annealBoards runs the annealing refinement once per board on the shared
// rng. A board whose layout is not legal (the annealer's precondition) is
// left as sequential placement produced it.
func annealBoards(ctx context.Context, d *layout.Design, opt Options, rng *rand.Rand, res *Result) error {
	for b := 0; b < d.Boards; b++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		ares, err := Anneal(d, b, AnnealOptions{
			Rand:             rng,
			Iterations:       opt.AnnealIters,
			WirelengthWeight: opt.WirelengthWeight,
			CompactWeight:    opt.CompactWeight,
		})
		if err != nil {
			var perr *PlaceError
			if errors.As(err, &perr) {
				return nil
			}
			return err
		}
		res.AnnealAccepted += ares.Accepted
		res.AnnealProposals += ares.Proposals
	}
	return nil
}

// emdSum is the rotation objective: Σ EMD over all rule pairs at the
// components' current rotations (unplaced components use their Rot field,
// which step 1 optimises before placement).
func emdSum(d *layout.Design) float64 {
	if d.Rules == nil {
		return 0
	}
	sum := 0.0
	for _, r := range d.Rules.Rules {
		a, b := d.Find(r.RefA), d.Find(r.RefB)
		if a == nil || b == nil {
			continue
		}
		sum += d.EMDBetween(a, b, a.Rot, b.Rot)
	}
	return sum
}

// priority orders the components for sequential placement: the paper's
// "design rule depending prioritization". More constrained parts (large
// PEMD totals, big bodies, group membership, area restrictions) go first.
func priority(d *layout.Design, c *layout.Component) float64 {
	p := 0.0
	if d.Rules != nil {
		for _, r := range d.Rules.Of(c.Ref) {
			p += r.PEMD * 1000 // meters → strong weight
		}
	}
	p += c.W * c.L * 1e5 // body area
	if c.Group != "" {
		p += 2
	}
	if c.AreaName != "" {
		p += 3
	}
	return p
}

// placementOrder returns unplaced components sorted by descending priority
// (ties broken by reference for determinism).
func placementOrder(d *layout.Design) []*layout.Component {
	var order []*layout.Component
	for _, c := range d.Comps {
		if !c.Preplaced {
			order = append(order, c)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		pi, pj := priority(d, order[i]), priority(d, order[j])
		if pi != pj {
			return pi > pj
		}
		return order[i].Ref < order[j].Ref
	})
	return order
}

// Verify runs the full design-rule check on the placed design.
func Verify(d *layout.Design) *drc.Report { return drc.Check(d) }

// autoGrid picks the default candidate raster.
func autoGrid(d *layout.Design) float64 {
	min := math.Inf(1)
	for _, c := range d.Comps {
		if c.W < min {
			min = c.W
		}
		if c.L < min {
			min = c.L
		}
	}
	if math.IsInf(min, 1) {
		return 1e-3
	}
	return math.Max(1e-3, min/2)
}

// PlaceError reports the components that found no legal position.
type PlaceError struct {
	Refs []string
}

// Error implements the error interface.
func (e *PlaceError) Error() string {
	return fmt.Sprintf("place: no legal position for %v", e.Refs)
}

// boardCentroid returns the centroid of the placement areas of a board.
func boardCentroid(d *layout.Design, board int) geom.Vec2 {
	var sum geom.Vec2
	n := 0
	for _, a := range d.AreasOf(board, "") {
		sum = sum.Add(a.Poly.Centroid())
		n++
	}
	if n == 0 {
		return geom.Vec2{}
	}
	return sum.Scale(1 / float64(n))
}
