package place

import (
	"testing"

	"repro/internal/geom"
)

func TestCompactShrinksLayout(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	if _, err := AutoPlace(d, Options{}); err != nil {
		t.Fatal(err)
	}
	// Artificially spread the parts to the corners first so compaction has
	// something to do, keeping legality.
	spread := map[string]geom.Vec2{
		"C1": {X: 0.010, Y: 0.010},
		"C2": {X: 0.050, Y: 0.010},
		"C3": {X: 0.010, Y: 0.042},
		"C4": {X: 0.050, Y: 0.042},
		"Q1": {X: 0.030, Y: 0.026},
	}
	for ref, pos := range spread {
		d.Find(ref).Center = pos
	}
	if rep := Verify(d); !rep.Green() {
		t.Fatalf("spread layout not legal:\n%s", rep)
	}
	res, err := Compact(d, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves == 0 {
		t.Fatal("compaction made no moves")
	}
	if res.AreaAfter >= res.AreaBefore {
		t.Errorf("area did not shrink: %.1f → %.1f cm²",
			res.AreaBefore*1e4, res.AreaAfter*1e4)
	}
	if rep := Verify(d); !rep.Green() {
		t.Fatalf("compacted layout not legal:\n%s", rep)
	}
}

func TestCompactRespectsPreplaced(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	q := d.Find("Q1")
	q.Preplaced = true
	q.Placed = true
	q.Center = geom.V2(0.052, 0.042)
	if _, err := AutoPlace(d, Options{}); err != nil {
		t.Fatal(err)
	}
	before := q.Center
	if _, err := Compact(d, 0, 3); err != nil {
		t.Fatal(err)
	}
	if q.Center != before {
		t.Error("compaction moved a preplaced part")
	}
	if rep := Verify(d); !rep.Green() {
		t.Fatalf("layout not legal after compaction:\n%s", rep)
	}
}

func TestCompactRejectsIllegalInput(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	if _, err := AutoPlace(d, Options{IgnoreEMD: true}); err != nil {
		t.Fatal(err)
	}
	// The baseline layout violates EMD rules; compaction must refuse.
	if _, err := Compact(d, 0, 3); err == nil {
		t.Error("compaction of an illegal layout should error")
	}
}

func TestCompactEmptyBoard(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	if _, err := AutoPlace(d, Options{}); err != nil {
		t.Fatal(err)
	}
	// Board 0 only exists; asking for board 1 is invalid per Validate
	// (single-board design), so work on a legal but empty selection by
	// checking boundingArea directly.
	if a := boundingArea(d, 1); a != 0 {
		t.Errorf("empty board area = %v", a)
	}
	if c := occupiedCentroid(d, 1); c != (geom.Vec2{}) {
		t.Errorf("empty centroid = %v", c)
	}
}
