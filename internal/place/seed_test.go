package place

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
)

// snapshot captures the placement state of a design for bit-exact
// comparison.
type placementSnap struct {
	ref    string
	placed bool
	center geom.Vec2
	rot    float64
	board  int
}

func snapshotPlacement(d *layout.Design) []placementSnap {
	out := make([]placementSnap, 0, len(d.Comps))
	for _, c := range d.Comps {
		out = append(out, placementSnap{c.Ref, c.Placed, c.Center, c.Rot, c.Board})
	}
	return out
}

func samePlacement(a, b []placementSnap) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSeededPlacementReproducible: with order jitter and annealing
// enabled, the same seed must reproduce the placement byte for byte, and
// a different seed should explore a different placement.
func TestSeededPlacementReproducible(t *testing.T) {
	t.Parallel()
	opt := Options{Seed: 42, OrderJitter: 0.5, AnnealIters: 200}

	run := func(o Options) []placementSnap {
		d := smallDesign()
		if _, err := AutoPlace(d, o); err != nil {
			t.Fatalf("AutoPlace: %v", err)
		}
		if rep := Verify(d); !rep.Green() {
			t.Fatalf("seeded placement not legal:\n%s", rep)
		}
		return snapshotPlacement(d)
	}

	first := run(opt)
	if !samePlacement(first, run(opt)) {
		t.Error("same seed produced different placements")
	}

	// Some other seed should land differently — the tournament knob only
	// matters if seeds actually vary the outcome. Probe a few seeds: at
	// least one must differ.
	differs := false
	for _, seed := range []int64{1, 7, 99} {
		o := opt
		o.Seed = seed
		if !samePlacement(first, run(o)) {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("no probed seed changed the placement; the seed knob is dead")
	}
}

// TestZeroRandomnessMatchesClassic: with OrderJitter and AnnealIters at
// zero the placement must be identical to the pre-seed deterministic
// behaviour regardless of Seed — no randomness may be consumed.
func TestZeroRandomnessMatchesClassic(t *testing.T) {
	t.Parallel()
	base := smallDesign()
	if _, err := AutoPlace(base, Options{}); err != nil {
		t.Fatal(err)
	}
	seeded := smallDesign()
	if _, err := AutoPlace(seeded, Options{Seed: 1234567}); err != nil {
		t.Fatal(err)
	}
	if !samePlacement(snapshotPlacement(base), snapshotPlacement(seeded)) {
		t.Error("Seed changed the placement although no random feature is enabled")
	}
}

// TestOrderJitterPerturbsPriorities: the jittered order is a permutation
// of the deterministic one and is itself deterministic in the seed.
func TestOrderJitterPerturbsPriorities(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	plain := placementOrder(d)

	refsOf := func(opt Options) []string {
		rng := opt.rng()
		var refs []string
		for _, c := range orderFor(d, opt, rng) {
			refs = append(refs, c.Ref)
		}
		return refs
	}

	j1 := refsOf(Options{Seed: 5, OrderJitter: 0.9})
	j2 := refsOf(Options{Seed: 5, OrderJitter: 0.9})
	if len(j1) != len(plain) {
		t.Fatalf("jittered order has %d comps, want %d", len(j1), len(plain))
	}
	for i := range j1 {
		if j1[i] != j2[i] {
			t.Fatalf("jittered order not deterministic: %v vs %v", j1, j2)
		}
	}
	seen := map[string]bool{}
	for _, r := range j1 {
		if seen[r] {
			t.Fatalf("ref %s appears twice in jittered order", r)
		}
		seen[r] = true
	}
	for _, c := range plain {
		if !seen[c.Ref] {
			t.Fatalf("ref %s missing from jittered order", c.Ref)
		}
	}
}

// TestAnnealIterationsKeepLegality: the annealing refinement must leave
// the layout green and report its proposal bookkeeping.
func TestAnnealIterationsKeepLegality(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	res, err := AutoPlace(d, Options{Seed: 9, AnnealIters: 300})
	if err != nil {
		t.Fatalf("AutoPlace: %v", err)
	}
	if rep := Verify(d); !rep.Green() {
		t.Fatalf("annealed layout not legal:\n%s", rep)
	}
	if res.AnnealProposals == 0 {
		t.Error("AnnealIters > 0 but no proposals recorded")
	}
	if res.AnnealAccepted > res.AnnealProposals {
		t.Errorf("accepted %d > proposals %d", res.AnnealAccepted, res.AnnealProposals)
	}
}

// TestAnnealSkippedForBaseline: EMD-blind baselines skip the refinement
// (their layouts are not legal, the annealer's precondition).
func TestAnnealSkippedForBaseline(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	res, err := AutoPlace(d, Options{IgnoreEMD: true, AnnealIters: 300})
	if err != nil {
		t.Fatalf("AutoPlace: %v", err)
	}
	if res.AnnealProposals != 0 {
		t.Errorf("baseline ran %d anneal proposals, want 0", res.AnnealProposals)
	}
}
