package place

import (
	"fmt"

	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
)

// Adviser provides the interactive placement functionality of the tool:
// move or rotate a selected component and get the online design-rule check
// back immediately, so the user sees violations (the red circles) while
// dragging and can minimise the system volume under live constraint
// control. Moves are undoable.
type Adviser struct {
	d       *layout.Design
	idx     *drc.Index
	history []moveRecord
}

type moveRecord struct {
	ref    string
	center geom.Vec2
	rot    float64
	placed bool
}

// NewAdviser wraps a design for interactive editing. One dependency index
// is built up front and serves every Try probe.
func NewAdviser(d *layout.Design) *Adviser {
	return &Adviser{d: d, idx: drc.NewIndex(d)}
}

// Design returns the underlying design.
func (a *Adviser) Design() *layout.Design { return a.d }

// Report runs the full DRC on the current state.
func (a *Adviser) Report() *drc.Report { return drc.Check(a.d) }

// Try evaluates a hypothetical move without applying it. The report is
// scoped to the probed component (see drc.Index.CheckMove).
func (a *Adviser) Try(ref string, center geom.Vec2, rot float64) (*drc.Report, error) {
	return a.idx.CheckMove(ref, center, rot)
}

// Move applies a move/rotation to a component and returns the online check
// result. Preplaced components refuse to move.
func (a *Adviser) Move(ref string, center geom.Vec2, rot float64) (*drc.Report, error) {
	c := a.d.Find(ref)
	if c == nil {
		return nil, fmt.Errorf("adviser: unknown component %q", ref)
	}
	if c.Preplaced {
		return nil, fmt.Errorf("adviser: %q is preplaced and cannot move", ref)
	}
	a.history = append(a.history, moveRecord{ref: ref, center: c.Center, rot: c.Rot, placed: c.Placed})
	c.Center, c.Rot, c.Placed = center, rot, true
	a.idx.Update(ref)
	return drc.Check(a.d), nil
}

// Undo reverts the most recent Move. It reports whether there was anything
// to undo.
func (a *Adviser) Undo() bool {
	if len(a.history) == 0 {
		return false
	}
	m := a.history[len(a.history)-1]
	a.history = a.history[:len(a.history)-1]
	c := a.d.Find(m.ref)
	if c != nil {
		c.Center, c.Rot, c.Placed = m.center, m.rot, m.placed
		a.idx.Update(m.ref)
	}
	return true
}

// BoundingBox returns the bounding box of all placed footprints on a board
// — the quantity a user minimises when compacting the system volume.
func (a *Adviser) BoundingBox(board int) geom.Rect {
	var bb geom.Rect
	first := true
	for _, c := range a.d.Comps {
		if !c.Placed || c.Board != board {
			continue
		}
		if first {
			bb = c.Footprint()
			first = false
		} else {
			bb = bb.Union(c.Footprint())
		}
	}
	return bb
}
