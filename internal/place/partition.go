package place

import (
	"sort"

	"repro/internal/layout"
)

// partition implements step 2 of the automatic method for two rigidly
// connected boards: the circuit is bipartitioned and the partitions are
// assigned to board sides. A Fiduccia–Mattheyses-style pass-based local
// search minimises the number of nets crossing the boards while keeping the
// body-area balance within tolerance. Functional groups move as one unit
// (they must end up in coherent areas) and preplaced components anchor
// their side. Returns the resulting cut size.
func partition(d *layout.Design) int {
	// Build move units: one per functional group plus one per loose
	// component.
	type unit struct {
		refs   []string
		area   float64
		board  int
		locked bool
	}
	var units []*unit
	unitOf := map[string]*unit{}

	groups := d.Groups()
	var groupNames []string
	for name := range groups {
		groupNames = append(groupNames, name)
	}
	sort.Strings(groupNames)
	for _, name := range groupNames {
		u := &unit{}
		for _, c := range groups[name] {
			u.refs = append(u.refs, c.Ref)
			u.area += c.W * c.L
			if c.Preplaced {
				u.locked = true
				u.board = c.Board
			}
			unitOf[c.Ref] = u
		}
		units = append(units, u)
	}
	for _, c := range d.Comps {
		if unitOf[c.Ref] != nil {
			continue
		}
		u := &unit{refs: []string{c.Ref}, area: c.W * c.L}
		if c.Preplaced {
			u.locked = true
			u.board = c.Board
		}
		unitOf[c.Ref] = u
		units = append(units, u)
	}

	// Initial assignment: keep locked sides; distribute the rest by
	// descending area, preferring the side that avoids new cut nets
	// (connectivity attraction) and falling back to the lighter side.
	totalArea := 0.0
	for _, u := range units {
		totalArea += u.area
	}
	sideArea := [2]float64{}
	assigned := map[*unit]bool{}
	for _, u := range units {
		if u.locked {
			sideArea[u.board] += u.area
			assigned[u] = true
		}
	}
	free := make([]*unit, 0, len(units))
	for _, u := range units {
		if !u.locked {
			free = append(free, u)
		}
	}
	sort.SliceStable(free, func(i, j int) bool {
		if free[i].area != free[j].area {
			return free[i].area > free[j].area
		}
		return free[i].refs[0] < free[j].refs[0]
	})
	maxSkew := 0.15 * totalArea
	// newCuts counts the nets shared between unit u and units already
	// assigned to the opposite side of candidate board b.
	newCuts := func(u *unit, b int) int {
		member := map[string]bool{}
		for _, r := range u.refs {
			member[r] = true
		}
		n := 0
		for _, net := range d.Nets {
			touches, crosses := false, false
			for _, r := range net.Refs {
				if member[r] {
					touches = true
				} else if o := unitOf[r]; o != nil && assigned[o] && o.board != b {
					crosses = true
				}
			}
			if touches && crosses {
				n++
			}
		}
		return n
	}
	for _, u := range free {
		c0, c1 := newCuts(u, 0), newCuts(u, 1)
		b := 0
		switch {
		case c0 < c1:
			b = 0
		case c1 < c0:
			b = 1
		case sideArea[0] <= sideArea[1]:
			b = 0
		default:
			b = 1
		}
		// Respect the balance tolerance where possible.
		if abs(sideArea[b]+u.area-sideArea[1-b]) > maxSkew &&
			abs(sideArea[1-b]+u.area-sideArea[b]) <= maxSkew {
			b = 1 - b
		}
		u.board = b
		sideArea[b] += u.area
		assigned[u] = true
	}

	cut := func() int {
		n := 0
		for _, net := range d.Nets {
			seen := [2]bool{}
			for _, r := range net.Refs {
				if u := unitOf[r]; u != nil {
					seen[u.board] = true
				}
			}
			if seen[0] && seen[1] {
				n++
			}
		}
		return n
	}

	// FM-style passes: repeatedly take the single best balance-respecting
	// move; stop when no move reduces the cut.
	for pass := 0; pass < 8; pass++ {
		improved := false
		for _, u := range free {
			before := cut()
			u.board = 1 - u.board
			after := cut()
			newSkew := sideArea[0] - sideArea[1]
			if u.board == 1 {
				newSkew -= 2 * u.area
			} else {
				newSkew += 2 * u.area
			}
			if after < before && abs(newSkew) <= maxSkew {
				sideArea[1-u.board] -= u.area
				sideArea[u.board] += u.area
				improved = true
			} else {
				u.board = 1 - u.board // revert
			}
		}
		if !improved {
			break
		}
	}

	for _, u := range units {
		for _, r := range u.refs {
			d.Find(r).Board = u.board
		}
	}
	return cut()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
