package place

import (
	"repro/internal/geom"
	"repro/internal/layout"
)

// vecZero is the zero magnetic axis (non-magnetic component).
var vecZero = geom.Vec3{}

// maxRotationPasses bounds the local search of step 1.
const maxRotationPasses = 12

// optimizeRotations implements step 1 of the automatic method: choose a
// rotation for every movable component from its allowed set so that the
// total sum of effective minimum distances Σ EMD_ij = Σ PEMD_ij·|cos α_ij|
// is minimal. Orthogonal magnetic axes eliminate distance requirements
// entirely, so this step decides how much board area the EMC rules will
// ultimately cost.
//
// The objective is minimised by coordinate descent: each pass greedily
// re-chooses every component's angle given the others; the objective is
// non-increasing, so the search terminates. Returns the number of passes.
func optimizeRotations(d *layout.Design) int {
	if d.Rules == nil || len(d.Rules.Rules) == 0 {
		return 0
	}
	// Only components that appear in rules and may rotate matter.
	movable := map[string]bool{}
	for _, r := range d.Rules.Rules {
		for _, ref := range []string{r.RefA, r.RefB} {
			c := d.Find(ref)
			if c != nil && !c.Preplaced && c.AxisAt(0) != (vecZero) && len(c.Rotations()) > 1 {
				movable[ref] = true
			}
		}
	}
	passes := 0
	for ; passes < maxRotationPasses; passes++ {
		improved := false
		for _, c := range d.Comps {
			if !movable[c.Ref] {
				continue
			}
			bestRot, bestCost := c.Rot, partialEMD(d, c, c.Rot)
			for _, rot := range c.Rotations() {
				if cost := partialEMD(d, c, rot); cost < bestCost-1e-12 {
					bestRot, bestCost = rot, cost
				}
			}
			if bestRot != c.Rot {
				c.Rot = bestRot
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return passes
}

// partialEMD sums the EMD of all rules touching c when c is at rotation
// rot and everyone else stays put.
func partialEMD(d *layout.Design, c *layout.Component, rot float64) float64 {
	sum := 0.0
	for _, r := range d.Rules.Of(c.Ref) {
		other := r.RefB
		if other == c.Ref {
			other = r.RefA
		}
		o := d.Find(other)
		if o == nil {
			continue
		}
		sum += d.EMDBetween(c, o, rot, o.Rot)
	}
	return sum
}
