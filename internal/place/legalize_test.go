package place

import (
	"testing"

	"repro/internal/geom"
)

func TestLegalizeRepairsBaselineLayout(t *testing.T) {
	t.Parallel()
	// Start from the EMI-blind baseline (violates EMD rules), then
	// legalize: the result must be green with as few parts moved as
	// the violations demand.
	d := smallDesign()
	if _, err := AutoPlace(d, Options{IgnoreEMD: true}); err != nil {
		t.Fatal(err)
	}
	if Verify(d).Green() {
		t.Fatal("baseline should violate rules (test premise)")
	}
	moved, err := Legalize(d, Options{})
	if err != nil {
		t.Fatalf("Legalize: %v", err)
	}
	if len(moved) == 0 {
		t.Fatal("legalizer moved nothing")
	}
	if rep := Verify(d); !rep.Green() {
		t.Fatalf("legalized layout not green:\n%s", rep)
	}
	// Untouched components stayed where the baseline put them.
	movedSet := map[string]bool{}
	for _, r := range moved {
		movedSet[r] = true
	}
	stayed := 0
	for _, c := range d.Comps {
		if !movedSet[c.Ref] {
			stayed++
		}
	}
	t.Logf("moved %d, kept %d", len(moved), stayed)
}

func TestLegalizeNoopOnGreen(t *testing.T) {
	t.Parallel()
	d := smallDesign()
	if _, err := AutoPlace(d, Options{}); err != nil {
		t.Fatal(err)
	}
	before := placementSnapshot(d)
	moved, err := Legalize(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 0 {
		t.Errorf("green layout should not move anything: %v", moved)
	}
	if !snapshotsEqual(before, placementSnapshot(d)) {
		t.Error("green layout changed")
	}
}

func TestLegalizeRespectsPreplacedConflicts(t *testing.T) {
	t.Parallel()
	// Two preplaced parts violating a rule cannot be repaired.
	d := smallDesign()
	for _, ref := range []string{"C1", "C2"} {
		c := d.Find(ref)
		c.Preplaced = true
		c.Placed = true
	}
	d.Find("C1").Center = geom.V2(0.02, 0.025)
	d.Find("C2").Center = geom.V2(0.028, 0.025) // violates 15 mm PEMD
	// Place the rest legally.
	if _, err := AutoPlace(d, Options{}); err == nil {
		// AutoPlace may succeed for the movable parts; the design is
		// still red because of the preplaced pair.
		_ = err
	}
	if _, err := Legalize(d, Options{}); err == nil {
		t.Error("unfixable preplaced conflict should report an error")
	}
	if d.Find("C1").Center != geom.V2(0.02, 0.025) {
		t.Error("legalizer moved a preplaced part")
	}
}
