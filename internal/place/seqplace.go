package place

import (
	"math"

	"repro/internal/geom"
	"repro/internal/layout"
)

// sequentialPlace implements step 3: components are placed one after
// another in priority order on the continuous plane. For each component a
// raster of candidate centers inside its allowed areas is evaluated for
// legality against all design rules; among the legal candidates a weighted
// cost of net length, group coherence and compactness picks the position.
// If the raster yields no legal position it is refined (halved) up to
// opt.MaxRefine times before the component is reported unplaceable.
func sequentialPlace(d *layout.Design, opt Options) (int, error) {
	for _, c := range placementOrder(d) {
		c.Placed = false // re-place movable components from scratch
	}
	return placeUnplaced(d, opt)
}

// placeUnplaced runs the prioritised sequential search for every movable
// component that currently has no position, leaving placed ones alone —
// the shared engine of AutoPlace (which unplaces everything first) and
// Legalize (which rips up only the offenders).
func placeUnplaced(d *layout.Design, opt Options) (int, error) {
	grid := opt.GridStep
	if grid <= 0 {
		grid = autoGrid(d)
	}
	placedCount := 0
	var failed []string

	for _, c := range placementOrder(d) {
		if c.Placed {
			continue
		}
		ok := false
		g := grid
		for attempt := 0; attempt <= opt.maxRefine(); attempt++ {
			if best, found := bestCandidate(d, c, g, opt); found {
				c.Center, c.Rot, c.Placed = best.center, best.rot, true
				ok = true
				break
			}
			g /= 2
		}
		if ok {
			placedCount++
		} else {
			failed = append(failed, c.Ref)
		}
	}
	if len(failed) > 0 {
		return placedCount, &PlaceError{Refs: failed}
	}
	return placedCount, nil
}

// candidate is a legal placement option with its cost.
type candidate struct {
	center geom.Vec2
	rot    float64
	cost   float64
}

// rotationsFor returns the rotations to try during placement. Magnetic
// components keep the angle chosen by step 1 (unless the caller baselines
// EMD away); others try all allowed angles, since their rotation only
// affects the footprint.
func rotationsFor(c *layout.Component, opt Options) []float64 {
	if !opt.SkipRotation && !opt.IgnoreEMD && c.AxisAt(0) != vecZero {
		return []float64{c.Rot}
	}
	return c.Rotations()
}

// bestCandidate scans the raster of the component's allowed areas.
func bestCandidate(d *layout.Design, c *layout.Component, grid float64, opt Options) (candidate, bool) {
	best := candidate{cost: math.Inf(1)}
	found := false
	for _, area := range d.AreasOf(c.Board, c.AreaName) {
		bb := area.Poly.BBox()
		// Inset by half the smaller dimension so tiny parts hug edges.
		for y := bb.Min.Y; y <= bb.Max.Y+1e-12; y += grid {
			for x := bb.Min.X; x <= bb.Max.X+1e-12; x += grid {
				center := geom.V2(x, y)
				for _, rot := range rotationsFor(c, opt) {
					if !legalAt(d, c, area, center, rot, opt) {
						continue
					}
					cost := placementCost(d, c, center, opt)
					if cost < best.cost-1e-12 ||
						(math.Abs(cost-best.cost) <= 1e-12 && lessPos(center, best.center)) {
						best = candidate{center: center, rot: rot, cost: cost}
						found = true
					}
				}
			}
		}
	}
	return best, found
}

func lessPos(a, b geom.Vec2) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// legalAt checks every design rule for placing c at (center, rot) inside
// the given area.
func legalAt(d *layout.Design, c *layout.Component, area layout.Area, center geom.Vec2, rot float64, opt Options) bool {
	fp := c.FootprintAt(center, rot)
	if !area.Poly.ContainsRect(fp.Inflate(d.EdgeClearance)) {
		return false
	}
	body := geom.CuboidOf(fp, 0, c.H)
	for _, k := range d.Keepouts {
		if k.Board == c.Board && body.Overlaps(k.Box) {
			return false
		}
	}
	clearFP := fp.Inflate(d.Clearance)
	groups := d.Groups()
	for _, o := range d.Comps {
		if o == c || !o.Placed || o.Board != c.Board {
			continue
		}
		// Clearance: inflating one footprint by the full clearance and
		// testing overlap is equivalent to separation < clearance for
		// axis-aligned rectangles.
		if clearFP.Overlaps(o.Footprint()) || fp.Overlaps(o.Footprint()) {
			return false
		}
		// EMD minimum distances (center to center).
		if !opt.IgnoreEMD {
			if need := d.EMDBetween(c, o, rot, o.Rot); need > 0 &&
				center.Dist(o.Center) < need {
				return false
			}
		}
	}
	// Group coherence, both directions: do not sit inside a foreign
	// group's bounding box, and do not grow the own group's bounding box
	// over a placed foreign component.
	for name, members := range groups {
		if name == c.Group {
			continue
		}
		var bbox geom.Rect
		any := false
		for _, m := range members {
			if m.Placed && m.Board == c.Board {
				if !any {
					bbox = m.Footprint()
					any = true
				} else {
					bbox = bbox.Union(m.Footprint())
				}
			}
		}
		if any && (bbox.Contains(center) || bbox.Overlaps(fp)) {
			return false
		}
	}
	if c.Group != "" {
		grown := fp
		for _, m := range groups[c.Group] {
			if m != c && m.Placed && m.Board == c.Board {
				grown = grown.Union(m.Footprint())
			}
		}
		for _, o := range d.Comps {
			if o == c || !o.Placed || o.Board != c.Board || o.Group == c.Group {
				continue
			}
			if grown.Contains(o.Center) {
				return false
			}
		}
	}
	// Net length limits against already-placed mates.
	for _, n := range d.Nets {
		if n.MaxLength <= 0 {
			continue
		}
		involved := false
		for _, r := range n.Refs {
			if r == c.Ref {
				involved = true
				break
			}
		}
		if !involved {
			continue
		}
		var pts []geom.Vec2
		for _, r := range n.Refs {
			if r == c.Ref {
				pts = append(pts, center)
			} else if o := d.Find(r); o != nil && o.Placed {
				pts = append(pts, o.Center)
			}
		}
		if starLength(pts) > n.MaxLength {
			return false
		}
	}
	return true
}

func starLength(pts []geom.Vec2) float64 {
	if len(pts) < 2 {
		return 0
	}
	var centroid geom.Vec2
	for _, p := range pts {
		centroid = centroid.Add(p)
	}
	centroid = centroid.Scale(1 / float64(len(pts)))
	sum := 0.0
	for _, p := range pts {
		sum += p.Dist(centroid)
	}
	return sum
}

// placementCost scores a legal candidate (lower is better): connected net
// length, distance to the functional group's placed members, and
// compactness towards the board centroid.
func placementCost(d *layout.Design, c *layout.Component, center geom.Vec2, opt Options) float64 {
	wire := 0.0
	for _, n := range d.Nets {
		for _, r := range n.Refs {
			if r != c.Ref {
				continue
			}
			for _, other := range n.Refs {
				if other == c.Ref {
					continue
				}
				if o := d.Find(other); o != nil && o.Placed {
					wire += center.Dist(o.Center)
				}
			}
		}
	}
	group := 0.0
	if c.Group != "" {
		var sum geom.Vec2
		n := 0
		for _, m := range d.Groups()[c.Group] {
			if m != c && m.Placed && m.Board == c.Board {
				sum = sum.Add(m.Center)
				n++
			}
		}
		if n > 0 {
			group = center.Dist(sum.Scale(1 / float64(n)))
		}
	}
	compact := center.Dist(boardCentroid(d, c.Board))
	return opt.wWire()*wire + opt.wGroup()*group + opt.wCompact()*compact
}

// SortRefs returns the design's references in placement-priority order —
// exposed for tests and diagnostics.
func SortRefs(d *layout.Design) []string {
	order := placementOrder(d)
	out := make([]string, len(order))
	for i, c := range order {
		out[i] = c.Ref
	}
	return out
}
