package place

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/layout"
)

// sequentialPlace implements step 3: components are placed one after
// another in priority order on the continuous plane. For each component a
// raster of candidate centers inside its allowed areas is evaluated for
// legality against all design rules; among the legal candidates a weighted
// cost of net length, group coherence and compactness picks the position.
// If the raster yields no legal position it is refined (halved) up to
// opt.MaxRefine times before the component is reported unplaceable.
func sequentialPlace(ctx context.Context, d *layout.Design, opt Options, rng *rand.Rand) (int, error) {
	for _, c := range placementOrder(d) {
		c.Placed = false // re-place movable components from scratch
	}
	return placeUnplaced(ctx, d, opt, rng)
}

// orderFor returns the sequential-placement order: the deterministic
// priority order, or — with OrderJitter enabled — the same priorities
// perturbed multiplicatively by the run's seeded rng. The jitters are
// drawn in design order (one per movable component) so the stream, and
// with it the placement, depends only on the seed.
func orderFor(d *layout.Design, opt Options, rng *rand.Rand) []*layout.Component {
	if opt.OrderJitter <= 0 || rng == nil {
		return placementOrder(d)
	}
	var order []*layout.Component
	var pri []float64
	for _, c := range d.Comps {
		if c.Preplaced {
			continue
		}
		order = append(order, c)
		pri = append(pri, priority(d, c)*(1+opt.OrderJitter*(2*rng.Float64()-1)))
	}
	idx := make([]int, len(order))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if pri[idx[a]] != pri[idx[b]] {
			return pri[idx[a]] > pri[idx[b]]
		}
		return order[idx[a]].Ref < order[idx[b]].Ref
	})
	out := make([]*layout.Component, len(order))
	for i, j := range idx {
		out[i] = order[j]
	}
	return out
}

// placeUnplaced runs the prioritised sequential search for every movable
// component that currently has no position, leaving placed ones alone —
// the shared engine of AutoPlace (which unplaces everything first) and
// Legalize (which rips up only the offenders). Cancellation is checked
// between components and between raster rows inside a candidate scan.
func placeUnplaced(ctx context.Context, d *layout.Design, opt Options, rng *rand.Rand) (int, error) {
	grid := opt.GridStep
	if grid <= 0 {
		grid = autoGrid(d)
	}
	placedCount := 0
	var failed []string

	for _, c := range orderFor(d, opt, rng) {
		if c.Placed {
			continue
		}
		if err := ctx.Err(); err != nil {
			return placedCount, err
		}
		ok := false
		g := grid
		for attempt := 0; attempt <= opt.maxRefine(); attempt++ {
			best, found := bestCandidate(ctx, d, c, g, opt)
			if err := ctx.Err(); err != nil {
				return placedCount, err
			}
			if found {
				c.Center, c.Rot, c.Placed = best.center, best.rot, true
				ok = true
				break
			}
			g /= 2
		}
		if ok {
			placedCount++
		} else {
			failed = append(failed, c.Ref)
		}
	}
	if len(failed) > 0 {
		return placedCount, &PlaceError{Refs: failed}
	}
	return placedCount, nil
}

// candidate is a legal placement option with its cost.
type candidate struct {
	center geom.Vec2
	rot    float64
	cost   float64
}

// rotationsFor returns the rotations to try during placement. Magnetic
// components keep the angle chosen by step 1 (unless the caller baselines
// EMD away); others try all allowed angles, since their rotation only
// affects the footprint.
func rotationsFor(c *layout.Component, opt Options) []float64 {
	if !opt.SkipRotation && !opt.IgnoreEMD && c.AxisAt(0) != vecZero {
		return []float64{c.Rot}
	}
	return c.Rotations()
}

// bestCandidate scans the raster of the component's allowed areas. The
// placement-invariant parts of the legality and cost evaluation (group
// boxes, placed footprints, EMD requirements, net memberships) are
// hoisted into a scan context once per component — they do not change
// while one component's raster is scanned, and rebuilding them per
// candidate dominated the placement profile.
func bestCandidate(cancel context.Context, d *layout.Design, c *layout.Component, grid float64, opt Options) (candidate, bool) {
	ctx := newScanCtx(d, c, opt)
	best := candidate{cost: math.Inf(1)}
	found := false
	for _, area := range d.AreasOf(c.Board, c.AreaName) {
		bb := area.Poly.BBox()
		// Inset by half the smaller dimension so tiny parts hug edges.
		for y := bb.Min.Y; y <= bb.Max.Y+1e-12; y += grid {
			if cancel.Err() != nil {
				return best, false
			}
			for x := bb.Min.X; x <= bb.Max.X+1e-12; x += grid {
				center := geom.V2(x, y)
				for ri := range ctx.rots {
					if !ctx.legalAt(area, center, ri) {
						continue
					}
					cost := ctx.cost(center)
					if cost < best.cost-1e-12 ||
						(math.Abs(cost-best.cost) <= 1e-12 && lessPos(center, best.center)) {
						best = candidate{center: center, rot: ctx.rots[ri], cost: cost}
						found = true
					}
				}
			}
		}
	}
	return best, found
}

func lessPos(a, b geom.Vec2) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// scanCtx caches everything about one component's candidate scan that
// does not depend on the candidate position: placed footprints, group
// bounding boxes, per-rotation EMD requirements, net memberships and
// the fixed cost terms. The design is not mutated while a raster is
// scanned, so all of this is invariant — rebuilding it per candidate
// (especially Design.Groups) dominated the placement profile. Every
// floating-point evaluation keeps the operand order of the direct
// rule checks, so placements are bit-identical.
type scanCtx struct {
	d   *layout.Design
	c   *layout.Component
	opt Options

	rots   []float64
	hw, hh []float64 // c's footprint half-extents per rotation

	keepouts []geom.Cuboid // keepout boxes on c's board
	others   []scanOther   // placed components on c's board, design order

	foreignBoxes []geom.Rect // placed bounding box per foreign group
	ownFPs       []geom.Rect // own group's placed members' footprints
	outsiders    []geom.Vec2 // centers of placed non-group comps on board

	netLims []netLimit

	// Cost terms.
	mates         []geom.Vec2 // placed net mates (with multiplicity, net order)
	groupCentroid geom.Vec2
	hasGroupCost  bool
	boardCenter   geom.Vec2
	wWire         float64
	wGroup        float64
	wCompact      float64
}

// scanOther is one placed component the candidate must respect.
type scanOther struct {
	center geom.Vec2
	fp     geom.Rect
	need   []float64 // EMD minimum distance per rotation index; nil if none
}

// netLimit is a length-limited net involving the candidate component. The
// points slice is a template: the entries at cIdx are overwritten with the
// candidate center on every evaluation, the rest are fixed placed mates.
type netLimit struct {
	max  float64
	pts  []geom.Vec2
	cIdx []int
}

// newScanCtx hoists the placement-invariant state for scanning c.
func newScanCtx(d *layout.Design, c *layout.Component, opt Options) *scanCtx {
	ctx := &scanCtx{
		d: d, c: c, opt: opt,
		rots:        rotationsFor(c, opt),
		boardCenter: boardCentroid(d, c.Board),
		wWire:       opt.wWire(),
		wGroup:      opt.wGroup(),
		wCompact:    opt.wCompact(),
	}
	ctx.hw = make([]float64, len(ctx.rots))
	ctx.hh = make([]float64, len(ctx.rots))
	for ri, rot := range ctx.rots {
		s, co := math.Sincos(rot)
		ctx.hw[ri] = (math.Abs(co)*c.W + math.Abs(s)*c.L) / 2
		ctx.hh[ri] = (math.Abs(s)*c.W + math.Abs(co)*c.L) / 2
	}
	for _, k := range d.Keepouts {
		if k.Board == c.Board {
			ctx.keepouts = append(ctx.keepouts, k.Box)
		}
	}
	for _, o := range d.Comps {
		if o == c || !o.Placed || o.Board != c.Board {
			continue
		}
		so := scanOther{center: o.Center, fp: o.Footprint()}
		if !opt.IgnoreEMD {
			so.need = make([]float64, len(ctx.rots))
			for ri, rot := range ctx.rots {
				so.need[ri] = d.EMDBetween(c, o, rot, o.Rot)
			}
		}
		ctx.others = append(ctx.others, so)
	}
	groups := d.Groups()
	for name, members := range groups {
		if name == c.Group {
			continue
		}
		var bbox geom.Rect
		any := false
		for _, m := range members {
			if m.Placed && m.Board == c.Board {
				if !any {
					bbox = m.Footprint()
					any = true
				} else {
					bbox = bbox.Union(m.Footprint())
				}
			}
		}
		if any {
			ctx.foreignBoxes = append(ctx.foreignBoxes, bbox)
		}
	}
	if c.Group != "" {
		var sum geom.Vec2
		n := 0
		for _, m := range groups[c.Group] {
			if m != c && m.Placed && m.Board == c.Board {
				ctx.ownFPs = append(ctx.ownFPs, m.Footprint())
				sum = sum.Add(m.Center)
				n++
			}
		}
		if n > 0 {
			ctx.groupCentroid = sum.Scale(1 / float64(n))
			ctx.hasGroupCost = true
		}
		for _, o := range d.Comps {
			if o == c || !o.Placed || o.Board != c.Board || o.Group == c.Group {
				continue
			}
			ctx.outsiders = append(ctx.outsiders, o.Center)
		}
	}
	for _, n := range d.Nets {
		involved := false
		for _, r := range n.Refs {
			if r == c.Ref {
				involved = true
				break
			}
		}
		if !involved {
			continue
		}
		if n.MaxLength > 0 {
			nl := netLimit{max: n.MaxLength}
			for _, r := range n.Refs {
				if r == c.Ref {
					nl.cIdx = append(nl.cIdx, len(nl.pts))
					nl.pts = append(nl.pts, geom.Vec2{})
				} else if o := d.Find(r); o != nil && o.Placed {
					nl.pts = append(nl.pts, o.Center)
				}
			}
			ctx.netLims = append(ctx.netLims, nl)
		}
		// Cost mates, with the same multiplicity and order as the direct
		// net scan: one pass per occurrence of c.Ref in the net.
		for _, r := range n.Refs {
			if r != c.Ref {
				continue
			}
			for _, other := range n.Refs {
				if other == c.Ref {
					continue
				}
				if o := d.Find(other); o != nil && o.Placed {
					ctx.mates = append(ctx.mates, o.Center)
				}
			}
		}
	}
	return ctx
}

// legalAt checks every design rule for placing c at (center, rots[ri])
// inside the given area.
func (ctx *scanCtx) legalAt(area layout.Area, center geom.Vec2, ri int) bool {
	d, c := ctx.d, ctx.c
	hw, hh := ctx.hw[ri], ctx.hh[ri]
	fp := geom.R(center.X-hw, center.Y-hh, center.X+hw, center.Y+hh)
	if !area.Poly.ContainsRect(fp.Inflate(d.EdgeClearance)) {
		return false
	}
	body := geom.CuboidOf(fp, 0, c.H)
	for _, k := range ctx.keepouts {
		if body.Overlaps(k) {
			return false
		}
	}
	clearFP := fp.Inflate(d.Clearance)
	for i := range ctx.others {
		o := &ctx.others[i]
		// Clearance: inflating one footprint by the full clearance and
		// testing overlap is equivalent to separation < clearance for
		// axis-aligned rectangles.
		if clearFP.Overlaps(o.fp) || fp.Overlaps(o.fp) {
			return false
		}
		// EMD minimum distances (center to center).
		if o.need != nil {
			if need := o.need[ri]; need > 0 && center.Dist(o.center) < need {
				return false
			}
		}
	}
	// Group coherence, both directions: do not sit inside a foreign
	// group's bounding box, and do not grow the own group's bounding box
	// over a placed foreign component.
	for _, bbox := range ctx.foreignBoxes {
		if bbox.Contains(center) || bbox.Overlaps(fp) {
			return false
		}
	}
	if c.Group != "" {
		grown := fp
		for _, mfp := range ctx.ownFPs {
			grown = grown.Union(mfp)
		}
		for _, oc := range ctx.outsiders {
			if grown.Contains(oc) {
				return false
			}
		}
	}
	// Net length limits against already-placed mates.
	for i := range ctx.netLims {
		nl := &ctx.netLims[i]
		for _, k := range nl.cIdx {
			nl.pts[k] = center
		}
		if starLength(nl.pts) > nl.max {
			return false
		}
	}
	return true
}

func starLength(pts []geom.Vec2) float64 {
	if len(pts) < 2 {
		return 0
	}
	var centroid geom.Vec2
	for _, p := range pts {
		centroid = centroid.Add(p)
	}
	centroid = centroid.Scale(1 / float64(len(pts)))
	sum := 0.0
	for _, p := range pts {
		sum += p.Dist(centroid)
	}
	return sum
}

// cost scores a legal candidate (lower is better): connected net length,
// distance to the functional group's placed members, and compactness
// towards the board centroid.
func (ctx *scanCtx) cost(center geom.Vec2) float64 {
	wire := 0.0
	for _, p := range ctx.mates {
		wire += center.Dist(p)
	}
	group := 0.0
	if ctx.hasGroupCost {
		group = center.Dist(ctx.groupCentroid)
	}
	compact := center.Dist(ctx.boardCenter)
	return ctx.wWire*wire + ctx.wGroup*group + ctx.wCompact*compact
}

// SortRefs returns the design's references in placement-priority order —
// exposed for tests and diagnostics.
func SortRefs(d *layout.Design) []string {
	order := placementOrder(d)
	out := make([]string, len(order))
	for i, c := range order {
		out[i] = c.Ref
	}
	return out
}
