// Package inverter provides a second case study beyond the paper's buck
// converter: the common-mode emissions of a three-phase motor-drive
// inverter — the system class whose three-winding current-compensated
// choke the paper's Figure 8 discusses ("the three winding design
// generates almost rotating stray fields and therefore no decoupled
// position for adjacent components can be found").
//
// Three half-bridge legs switch the DC link with 120° interleave; each
// switch node pumps common-mode current through its device-tab capacitance
// to the grounded heatsink and through the motor-cable capacitances; the
// CM current returns through the two supply LISNs. A three-winding CM
// choke on the motor phases blocks the cable path.
package inverter

import (
	"fmt"

	"repro/internal/components"
	"repro/internal/emi"
	"repro/internal/netlist"
)

// Operating point of the reference drive.
const (
	VDC     = 48.0
	FSwitch = 20e3 // typical drive PWM frequency
	Duty    = 0.5
	Rise    = 100e-9
	Fall    = 100e-9

	CMChokeL = 0.8e-3 // per-winding inductance
	CMChokeK = 0.95   // pairwise winding coupling
	CableCap = 1.5e-9 // per-phase motor-cable capacitance to chassis
	TabCap   = 60e-12 // per-device tab-to-heatsink capacitance
	StrapL   = 30e-9  // heatsink grounding strap
)

// Options selects circuit variants for the study.
type Options struct {
	Interleaved bool // 120° phase shift between the legs (the real drive)
	WithChoke   bool // three-winding CM choke on the motor phases
}

// Circuit builds the CM netlist of the drive. The measurement node of the
// positive-line LISN is returned alongside.
func Circuit(opt Options) (*netlist.Circuit, string) {
	c := &netlist.Circuit{Title: "three-phase inverter CM model"}
	c.AddV("Vdc", "batp", "batn", netlist.Source{DC: VDC})
	meas := emi.AddLISN(c, "lisnp", "batp", "dcp")
	emi.AddLISN(c, "lisnn", "batn", "dcn")
	// DC-link capacitor with parasitics.
	dcCap := components.NewElectrolytic("ELKO-470u", 470e-6)
	c.AddC("Cdc", "dcp", "dc1", dcCap.C)
	c.AddR("Rdc", "dc1", "dc2", dcCap.ESR)
	c.AddL("Ldc", "dc2", "dcn", dcCap.EffectiveESL())

	period := 1 / FSwitch
	phases := []string{"a", "b", "c"}
	for i, ph := range phases {
		delay := 0.0
		if opt.Interleaved {
			delay = float64(i) * period / 3
		}
		sw := "sw" + ph
		// Leg output voltage against the negative rail.
		c.AddV("Vleg"+ph, sw, "dcn", netlist.Source{Pulse: &netlist.Pulse{
			V1: 0, V2: VDC, Delay: delay,
			Rise: Rise, Fall: Fall,
			Width: Duty*period - Rise, Period: period,
		}})
		// Device tab to heatsink.
		c.AddC("Ctab"+ph, sw, "hs", TabCap)
		// Phase path to the motor cable.
		if opt.WithChoke {
			c.AddL("Lcm"+ph, sw, "ph"+ph, CMChokeL)
		} else {
			c.AddL("Lcm"+ph, sw, "ph"+ph, 10e-9) // just the lead
		}
		c.AddC("Ccab"+ph, "ph"+ph, "cb"+ph, CableCap)
		c.AddR("Rcab"+ph, "cb"+ph, "0", 2) // cable shield termination
	}
	if opt.WithChoke {
		// Current-compensated three-winding choke: pairwise coupling.
		c.AddK("Kab", "Lcma", "Lcmb", CMChokeK)
		c.AddK("Kbc", "Lcmb", "Lcmc", CMChokeK)
		c.AddK("Kca", "Lcmc", "Lcma", CMChokeK)
	}
	// Heatsink to chassis.
	c.AddL("Lhs", "hs", "0", StrapL)
	return c, meas
}

// Predict computes the conducted CM spectrum at the positive LISN.
func Predict(opt Options, maxFreq float64) (*emi.Spectrum, error) {
	ckt, meas := Circuit(opt)
	return (&emi.Predictor{
		Circuit:     ckt,
		Sources:     []string{"Vlega", "Vlegb", "Vlegc"},
		MeasureNode: meas,
		MaxFreq:     maxFreq,
	}).Spectrum()
}

// HarmonicLevel returns the level of harmonic k in dBµV.
func HarmonicLevel(s *emi.Spectrum, k int) (float64, error) {
	if k < 1 || k > len(s.DB) {
		return 0, fmt.Errorf("inverter: harmonic %d out of range", k)
	}
	return s.DB[k-1], nil
}
