package inverter

import (
	"testing"

	"repro/internal/emi"
	"repro/internal/netlist"
)

func predict(t *testing.T, opt Options) *emi.Spectrum {
	t.Helper()
	s, err := Predict(opt, 2e6)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInterleavingCancelsNonTriplenHarmonics(t *testing.T) {
	t.Parallel()
	// Balanced 120°-interleaved identical legs: the leg voltages' phasors
	// sum to zero for every harmonic not divisible by 3 (1 + a + a² = 0),
	// so the common-mode drive contains only triplen harmonics. The
	// synchronized variant keeps them all.
	inter := predict(t, Options{Interleaved: true, WithChoke: true})
	sync := predict(t, Options{Interleaved: false, WithChoke: true})

	// At 50 % duty the even harmonics are already nulled by the waveform
	// itself, so the interleaving cancellation is visible on the odd
	// non-triplen harmonics.
	for _, k := range []int{1, 5, 7} {
		li, err := HarmonicLevel(inter, k)
		if err != nil {
			t.Fatal(err)
		}
		ls, err := HarmonicLevel(sync, k)
		if err != nil {
			t.Fatal(err)
		}
		if li > ls-40 {
			t.Errorf("h%d: interleaved %.1f dBµV not ≫ below synchronized %.1f", k, li, ls)
		}
	}
	for _, k := range []int{3, 9} {
		li, _ := HarmonicLevel(inter, k)
		ls, _ := HarmonicLevel(sync, k)
		// Triplen harmonics survive interleaving (within a few dB).
		if li < ls-3 || li > ls+3 {
			t.Errorf("h%d: triplen should persist: interleaved %.1f vs sync %.1f", k, li, ls)
		}
	}
}

func TestCMChokeAttenuates(t *testing.T) {
	t.Parallel()
	with := predict(t, Options{Interleaved: true, WithChoke: true})
	without := predict(t, Options{Interleaved: true, WithChoke: false})
	_, w := with.InBand(50e3, 2e6).Max()
	_, wo := without.InBand(50e3, 2e6).Max()
	if wo < w+15 {
		t.Errorf("3-winding choke should buy > 15 dB: %v vs %v dBµV", wo, w)
	}
}

func TestCircuitStructure(t *testing.T) {
	t.Parallel()
	c, meas := Circuit(Options{Interleaved: true, WithChoke: true})
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if meas != "lisnp_meas" {
		t.Errorf("measure node = %q", meas)
	}
	// Three pairwise couplings make the three-winding choke.
	kCount := 0
	for _, e := range c.Elements {
		if e.Kind == netlist.K {
			kCount++
		}
	}
	if kCount != 3 {
		t.Errorf("K elements = %d, want 3", kCount)
	}
	// The legs are delayed by T/3 steps.
	pb := c.Find("Vlegb").Src.Pulse
	if pb.Delay <= 0 {
		t.Error("leg b should be delayed")
	}
}

func TestHarmonicLevelErrors(t *testing.T) {
	t.Parallel()
	s := predict(t, Options{Interleaved: true, WithChoke: true})
	if _, err := HarmonicLevel(s, 0); err == nil {
		t.Error("harmonic 0 should error")
	}
	if _, err := HarmonicLevel(s, len(s.DB)+1); err == nil {
		t.Error("out-of-range harmonic should error")
	}
}
