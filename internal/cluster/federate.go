package cluster

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Metrics federation: the router's GET /metrics re-exports every
// member's series with a replica="name" label injected, so one scrape
// of the router observes the whole cluster. Families are regrouped so
// every series of one family stays contiguous (the text exposition
// format requires it) and HELP/TYPE headers are deduped across members
// (first member to declare a family wins).

const (
	// scrapeTimeout bounds each member scrape; a slow member must not
	// stall the whole federation response.
	scrapeTimeout = 2 * time.Second
	// scrapeBodyCap bounds one member's exposition body.
	scrapeBodyCap = 4 << 20
)

// promFamily is one metric family reassembled across members.
type promFamily struct {
	header  []string // "# HELP ..." / "# TYPE ..." lines
	samples []string // relabeled sample lines, in member order
}

// federate scrapes every non-Down member's /metrics concurrently and
// writes the relabeled union, preceded by a per-member scrape_ok gauge
// so a partial view is visible as such rather than silently short.
func (rt *Router) federate(ctx context.Context, w io.Writer) {
	type scrape struct {
		name string
		body string
		ok   bool
	}
	members := rt.sortedMembers()
	results := make([]scrape, len(members))
	var wg sync.WaitGroup
	for i, h := range members {
		results[i].name = h.Name
		if h.State == StateDown {
			continue
		}
		wg.Add(1)
		go func(i int, h MemberHealth) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, scrapeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(sctx, http.MethodGet, h.URL+"/metrics", nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				return
			}
			defer drainClose(resp)
			if resp.StatusCode != http.StatusOK {
				return
			}
			b, err := io.ReadAll(io.LimitReader(resp.Body, scrapeBodyCap))
			if err != nil {
				return
			}
			results[i].body, results[i].ok = string(b), true
		}(i, h)
	}
	wg.Wait()

	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# HELP emiserve_cluster_scrape_ok Whether the federation scrape of each member succeeded.")
	fmt.Fprintln(bw, "# TYPE emiserve_cluster_scrape_ok gauge")
	for _, sc := range results {
		v := 0
		if sc.ok {
			v = 1
		}
		fmt.Fprintf(bw, "emiserve_cluster_scrape_ok{replica=%q} %d\n", sc.name, v)
	}

	var order []string
	families := map[string]*promFamily{}
	famOf := func(name string) *promFamily {
		if f, ok := families[name]; ok {
			return f
		}
		f := &promFamily{}
		families[name] = f
		order = append(order, name)
		return f
	}
	for _, sc := range results {
		if !sc.ok {
			continue
		}
		// Families whose HELP/TYPE this member contributed — once a
		// member owns a family's header it also supplies the TYPE line.
		owned := map[string]bool{}
		for _, line := range strings.Split(sc.body, "\n") {
			line = strings.TrimRight(line, "\r")
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				fields := strings.Fields(line)
				if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
					continue
				}
				f := famOf(fields[2])
				if len(f.header) == 0 || owned[fields[2]] {
					f.header = append(f.header, line)
					owned[fields[2]] = true
				}
				continue
			}
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			// Histogram series (_bucket/_sum/_count) group under their
			// declared base family.
			base := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if t := strings.TrimSuffix(name, suf); t != name {
					if _, ok := families[t]; ok {
						base = t
						break
					}
				}
			}
			famOf(base).samples = append(famOf(base).samples, injectReplica(line, sc.name))
		}
	}
	for _, name := range order {
		f := families[name]
		for _, h := range f.header {
			fmt.Fprintln(bw, h)
		}
		for _, s := range f.samples {
			fmt.Fprintln(bw, s)
		}
	}
	_ = bw.Flush()
}

// injectReplica adds a replica="name" label to one sample line,
// whether or not the line already carries a label set.
func injectReplica(line, replica string) string {
	label := fmt.Sprintf("replica=%q", replica)
	if i := strings.IndexByte(line, '{'); i >= 0 {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 || i < sp {
			if strings.HasPrefix(line[i+1:], "}") {
				return line[:i+1] + label + line[i+1:]
			}
			return line[:i+1] + label + "," + line[i+1:]
		}
	}
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return line
	}
	return line[:i] + "{" + label + "}" + line[i:]
}
