package cluster

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// ---- trace propagation and request correlation ----------------------

// TestRouterInjectsTraceparentAndRequestID: every submit forward
// carries a W3C traceparent minted by the router (or adopted from the
// caller) plus an X-Request-ID, and the response echoes the same
// request ID so client, router and replica logs correlate.
func TestRouterInjectsTraceparentAndRequestID(t *testing.T) {
	a := newStubReplica(t, "r0")
	rt := testRouter(t, a)
	base := routerServer(t, rt)

	resp, body := post(t, base+"/v1/predict", `{"n":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	hdr, ok := a.lastSubmitHdr.Load().(http.Header)
	if !ok {
		t.Fatal("stub recorded no submit headers")
	}
	tp := hdr.Get(obs.TraceparentHeader)
	tid, ok := obs.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("forward carried no valid traceparent: %q", tp)
	}
	if tid.IsZero() {
		t.Fatal("forwarded trace ID is zero")
	}
	rid := hdr.Get("X-Request-ID")
	if rid == "" {
		t.Fatal("forward carried no X-Request-ID")
	}
	if got := resp.Header.Get("X-Request-ID"); got != rid {
		t.Fatalf("response request ID %q, forward carried %q", got, rid)
	}

	// A caller-supplied traceparent is adopted, not replaced: the
	// replica must see the caller's trace ID.
	const callerTP = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	req, err := http.NewRequest(http.MethodPost, base+"/v1/predict", strings.NewReader(`{"n":2}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceparentHeader, callerTP)
	req.Header.Set("X-Request-ID", "caller-rid-1")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	hdr, _ = a.lastSubmitHdr.Load().(http.Header)
	tid2, _ := obs.ParseTraceparent(hdr.Get(obs.TraceparentHeader))
	if tid2.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("forwarded trace ID %s, want the caller's", tid2)
	}
	if got := hdr.Get("X-Request-ID"); got != "caller-rid-1" {
		t.Fatalf("forwarded request ID %q, want the caller's", got)
	}
	if got := r2.Header.Get("X-Request-ID"); got != "caller-rid-1" {
		t.Fatalf("echoed request ID %q, want the caller's", got)
	}
}

// TestClusterTraceMergesProcesses: GET /cluster/trace/{job} returns one
// Chrome trace containing the router's request spans and the owning
// replica's fragment under the same trace ID, one process lane each.
func TestClusterTraceMergesProcesses(t *testing.T) {
	a := newStubReplica(t, "r0")
	b := newStubReplica(t, "r1")
	rt := testRouter(t, a, b)
	base := routerServer(t, rt)

	resp, body := post(t, base+"/v1/predict", `{"n":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d body %s", resp.StatusCode, body)
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &view); err != nil || view.ID == "" {
		t.Fatalf("submit body %s: %v", body, err)
	}

	resp, body = get(t, base+"/cluster/trace/"+view.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster trace status %d body %s", resp.StatusCode, body)
	}
	var doc obs.ChromeDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("cluster trace is not Chrome JSON: %v", err)
	}

	pids := map[int]string{} // pid → process_name
	spansByPid := map[int]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			name, _ := ev.Args["name"].(string)
			pids[ev.Pid] = name
		}
		if ev.Ph == "X" {
			spansByPid[ev.Pid]++
		}
	}
	if len(pids) < 2 {
		t.Fatalf("merged trace has %d process lanes, want >= 2: %v", len(pids), pids)
	}
	names := map[string]bool{}
	for _, n := range pids {
		names[n] = true
	}
	if !names["emirouter"] {
		t.Fatalf("no emirouter lane: %v", pids)
	}
	owner := rt.jobOwnerOf(view.ID)
	if !names[owner] {
		t.Fatalf("no lane for owner %q: %v", owner, pids)
	}
	for pid, name := range pids {
		if spansByPid[pid] == 0 {
			t.Errorf("lane %q (pid %d) has no spans", name, pid)
		}
	}

	// Both processes share one propagated trace ID.
	hdr, _ := a.lastSubmitHdr.Load().(http.Header)
	if hdr == nil {
		hdr, _ = b.lastSubmitHdr.Load().(http.Header)
	}
	tid, _ := obs.ParseTraceparent(hdr.Get(obs.TraceparentHeader))
	if doc.OtherData["traceId"] != tid.String() {
		t.Fatalf("merged traceId %q, forwarded traceparent carried %q",
			doc.OtherData["traceId"], tid)
	}
}

// ---- metrics federation ----------------------------------------------

// TestFederatedMetrics: the router's /metrics re-exports every member's
// series with an injected replica label, dedupes HELP/TYPE headers, and
// reports per-member scrape health.
func TestFederatedMetrics(t *testing.T) {
	a := newStubReplica(t, "r0")
	b := newStubReplica(t, "r1")
	rt := testRouter(t, a, b)
	base := routerServer(t, rt)
	post(t, base+"/v1/predict", `{"n":1}`)

	resp, body := get(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`emiserve_cluster_scrape_ok{replica="r0"} 1`,
		`emiserve_cluster_scrape_ok{replica="r1"} 1`,
		`emiserve_jobs_total{replica="r0"}`,
		`emiserve_jobs_total{replica="r1"}`,
		`emiserve_queue_wait_depth{replica="r0",queue="jobs"}`,
		`emiserve_queue_wait_depth{replica="r1",queue="jobs"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("federated metrics missing %q", want)
		}
	}
	// HELP/TYPE of a replica family appears once, not per member.
	if n := strings.Count(text, "# HELP emiserve_jobs_total "); n != 1 {
		t.Errorf("HELP emiserve_jobs_total appears %d times, want 1", n)
	}
	// Series of one family stay contiguous: between the first and last
	// emiserve_jobs_total sample there is no other family's sample.
	lines := strings.Split(text, "\n")
	first, last := -1, -1
	for i, ln := range lines {
		if strings.HasPrefix(ln, "emiserve_jobs_total") {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	for i := first; i >= 0 && i <= last; i++ {
		ln := lines[i]
		if ln == "" || strings.HasPrefix(ln, "#") || strings.HasPrefix(ln, "emiserve_jobs_total") {
			continue
		}
		t.Errorf("family emiserve_jobs_total interleaved with %q", ln)
	}

	// A member that dies shows up as a failed scrape, not a hole.
	b.ts.Close()
	rt.Prober().ProbeNow()
	_, body = get(t, base+"/metrics")
	if !strings.Contains(string(body), `emiserve_cluster_scrape_ok{replica="r1"} 0`) {
		t.Error("dead member not reported as scrape_ok 0")
	}
}

// ---- event timeline --------------------------------------------------

// eventTypes filters the timeline to one session's takeover events.
func eventTypes(evs []Event, session string) []string {
	var out []string
	for _, ev := range evs {
		if ev.Session == session {
			out = append(out, ev.Type)
		}
	}
	return out
}

// TestTakeoverTimelineOrder: a completed takeover emits timeline events
// in the proven handshake order seal → fetch → replay → release,
// bracketed by begin and adopted.
func TestTakeoverTimelineOrder(t *testing.T) {
	a := newStubReplica(t, "r0")
	b := newStubReplica(t, "r1")
	rt := testRouter(t, a, b)
	base := routerServer(t, rt)

	a.putSession("s1", "live")
	rt.mu.Lock()
	rt.sessOwner["s1"] = sessRoute{owner: "r0"}
	rt.mu.Unlock()
	a.ready.Store(false) // owner drains; next request must adopt
	rt.Prober().ProbeNow()

	resp, body := get(t, base+"/v1/sessions/s1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session read after takeover: status %d body %s", resp.StatusCode, body)
	}
	got := eventTypes(rt.Events(0), "s1")
	want := []string{"takeover.begin", "takeover.seal", "takeover.fetch",
		"takeover.replay", "takeover.release", "takeover.adopted"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("timeline %v, want %v", got, want)
	}

	// The probe round that saw r0 drain left a member.state transition.
	var sawState bool
	for _, ev := range rt.Events(0) {
		if ev.Type == "member.state" && ev.Member == "r0" {
			sawState = true
		}
	}
	if !sawState {
		t.Error("no member.state event for the drained owner")
	}
}

// TestTakeoverAbortTimeline: an aborted takeover ends with the unseal
// event (the fence was lifted) followed by takeover.abort, and counts
// as a failed outcome.
func TestTakeoverAbortTimeline(t *testing.T) {
	a := newStubReplica(t, "r0")
	b := newStubReplica(t, "r1")
	b.failTakeover.Store(true)
	rt := testRouter(t, a, b)
	base := routerServer(t, rt)

	a.putSession("s2", "live")
	rt.mu.Lock()
	rt.sessOwner["s2"] = sessRoute{owner: "r0"}
	rt.mu.Unlock()
	a.ready.Store(false)
	rt.Prober().ProbeNow()

	resp, _ := get(t, base+"/v1/sessions/s2")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("aborted takeover: status %d, want 503", resp.StatusCode)
	}
	got := eventTypes(rt.Events(0), "s2")
	want := []string{"takeover.begin", "takeover.seal", "takeover.unseal", "takeover.abort"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("timeline %v, want %v", got, want)
	}
	var buf strings.Builder
	if err := rt.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `emiserve_cluster_takeover_outcomes_total{result="failed"} 1`) {
		t.Error("failed takeover not counted in outcomes")
	}
}

// TestEventsSSEReplay: GET /cluster/events replays the retained ring as
// server-sent events with sequence IDs, honoring ?after=.
func TestEventsSSEReplay(t *testing.T) {
	a := newStubReplica(t, "r0")
	rt := testRouter(t, a)
	base := routerServer(t, rt)

	rt.events.publish(Event{Type: "member.drain", Member: "r0"})
	rt.events.publish(Event{Type: "admission.reject", Detail: "test"})
	evs := rt.Events(0)
	if len(evs) < 2 {
		t.Fatalf("timeline holds %d events, want >= 2", len(evs))
	}
	after := evs[len(evs)-2].Seq - 1 // expect the last two

	resp, err := http.Get(base + "/cluster/events?after=" + strconv.FormatUint(after, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var types, ids []string
	for sc.Scan() && (len(types) < 2 || len(ids) < 2) {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			types = append(types, strings.TrimPrefix(line, "event: "))
		}
		if strings.HasPrefix(line, "id: ") {
			ids = append(ids, strings.TrimPrefix(line, "id: "))
		}
	}
	if len(types) < 2 || types[0] != "member.drain" || types[1] != "admission.reject" {
		t.Fatalf("replayed event types %v", types)
	}
	if len(ids) < 2 || ids[0] != strconv.FormatUint(evs[len(evs)-2].Seq, 10) {
		t.Fatalf("replayed ids %v, want first %d", ids, evs[len(evs)-2].Seq)
	}
}
