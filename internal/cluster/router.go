package cluster

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// maxBodyBytes mirrors the replicas' request-body bound.
const maxBodyBytes = 8 << 20

// Config parameterizes a Router.
type Config struct {
	// Members is the static replica list. At least one is required.
	Members []Member
	// Vnodes per member on the hash ring; 0 = DefaultVnodes.
	Vnodes int
	// ProbeInterval between health rounds; 0 = 500ms. It doubles as the
	// Retry-After the router advertises on 429/503, since that is when
	// its routing view refreshes.
	ProbeInterval time.Duration
	// Retries bounds forward attempts per job submission (the first
	// attempt included); 0 = 3. Session mutations are never retried —
	// a session lives on exactly one member.
	Retries int
	// RetryDelay is the backoff base between submit attempts, jittered
	// to ±50% and doubled per attempt; 0 = 25ms.
	RetryDelay time.Duration
	// JobRouteCap bounds the job → owner table; 0 = 65536. Overflow
	// evicts the oldest route; a request for an evicted job falls back
	// to asking every ready member.
	JobRouteCap int
	// Client issues the forwards. nil builds one without a global
	// timeout (forwards carry SSE streams and ?wait=1 blocks; the
	// request context is the deadline).
	Client *http.Client
	// Logger receives request and takeover logs; nil discards.
	Logger *slog.Logger
	// RunTrace, when set, receives one summary span per handled request
	// (the emirouter -trace flag wires it) — a Chrome trace of the
	// router's whole run.
	RunTrace *obs.Trace
}

type sessRoute struct {
	owner string
}

// Router is the cluster entry point: one HTTP handler that owns the
// ring, the prober and the routing tables.
type Router struct {
	cfg    Config
	ring   *Ring
	prober *Prober
	client *http.Client
	log    *slog.Logger

	mu        sync.Mutex
	jobOwner  map[string]string
	jobFIFO   []string
	sessOwner map[string]sessRoute
	sessLocks map[string]*sync.Mutex
	jobTrace  map[string]*obs.Trace // request traces by acknowledged job ID
	traceFIFO []string

	events  *eventLog
	fwd     *obs.HistogramVec // forward latency by route and outcome
	tkPhase *obs.HistogramSet // takeover phase durations, from adopter responses

	m metrics
}

// New builds a router; Start launches its prober.
func New(cfg Config) (*Router, error) {
	names := make([]string, 0, len(cfg.Members))
	for _, m := range cfg.Members {
		if m.URL == "" {
			return nil, fmt.Errorf("cluster: member %q has no URL", m.Name)
		}
		names = append(names, m.Name)
	}
	ring, err := NewRing(names, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 25 * time.Millisecond
	}
	if cfg.JobRouteCap <= 0 {
		cfg.JobRouteCap = 65536
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	rt := &Router{
		cfg:       cfg,
		ring:      ring,
		prober:    NewProber(cfg.Members, cfg.ProbeInterval, nil),
		client:    client,
		log:       cfg.Logger,
		jobOwner:  map[string]string{},
		sessOwner: map[string]sessRoute{},
		sessLocks: map[string]*sync.Mutex{},
		jobTrace:  map[string]*obs.Trace{},
		events:    newEventLog(),
		fwd: obs.NewHistogramVec("emiserve_cluster_forward_seconds",
			"Forward latency by route and outcome.",
			[]string{"route", "outcome"}, obs.LatencySeconds),
		tkPhase: obs.NewHistogramSet("emiserve_cluster_takeover_phase_seconds",
			"Session takeover phase durations, as reported by the adopter.",
			"phase", obs.LatencySeconds),
	}
	// Health transitions feed the cluster event timeline — probe rounds
	// and forward-failure feedback alike.
	rt.prober.SetObserver(rt.onHealthChange)
	return rt, nil
}

// onHealthChange turns a member-health update into timeline events:
// one per state transition, plus a drain marker the first time a
// replica reports itself draining.
func (rt *Router) onHealthChange(prev, cur MemberHealth) {
	if prev.State != cur.State {
		detail := fmt.Sprintf("%s→%s", prev.State, cur.State)
		if cur.State != StateReady && cur.Err != "" {
			detail += ": " + cur.Err
		}
		rt.events.publish(Event{Type: "member.state", Member: cur.Name, Detail: detail})
	}
	if cur.Status == "draining" && prev.Status != "draining" {
		rt.events.publish(Event{Type: "member.drain", Member: cur.Name,
			Detail: "replica reports draining"})
	}
}

// Start launches the health prober (one synchronous round first, so the
// router can route immediately).
func (rt *Router) Start() { rt.prober.ProbeNow(); rt.prober.Start() }

// Close stops the prober and ends live event subscriptions.
func (rt *Router) Close() {
	rt.prober.Stop()
	rt.events.close()
}

// Prober exposes the health view (tests, status pages).
func (rt *Router) Prober() *Prober { return rt.prober }

// Handler returns the router's HTTP surface — the same API the replicas
// serve, plus the router's own /healthz, /readyz and /metrics.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, kind := range []string{"predict", "place", "couple", "explore", "yield"} {
		mux.HandleFunc("POST /v1/"+kind, rt.submitHandler)
	}
	mux.HandleFunc("GET /v1/jobs", rt.fanoutListHandler)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.jobHandler(false))
	mux.HandleFunc("GET /v1/jobs/{id}/events", rt.jobHandler(false))
	mux.HandleFunc("DELETE /v1/jobs/{id}", rt.jobHandler(true))
	mux.HandleFunc("GET /debug/trace/{id}", rt.jobHandler(false))
	mux.HandleFunc("POST /v1/sessions", rt.createSessionHandler)
	mux.HandleFunc("GET /v1/sessions", rt.fanoutListHandler)
	mux.HandleFunc("GET /v1/sessions/{id}", rt.sessionHandler(false))
	mux.HandleFunc("DELETE /v1/sessions/{id}", rt.sessionHandler(true))
	mux.HandleFunc("POST /v1/sessions/{id}/edits", rt.sessionHandler(true))
	mux.HandleFunc("POST /v1/sessions/{id}/undo", rt.sessionHandler(true))
	mux.HandleFunc("POST /v1/sessions/{id}/redo", rt.sessionHandler(true))
	mux.HandleFunc("GET /v1/sessions/{id}/events", rt.sessionHandler(false))
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", rt.sessionHandler(false))
	mux.HandleFunc("GET /cluster/trace/{id}", rt.clusterTraceHandler)
	mux.HandleFunc("GET /cluster/events", rt.eventsHandler)
	mux.HandleFunc("GET /healthz", rt.healthHandler)
	mux.HandleFunc("GET /readyz", rt.readyHandler)
	mux.HandleFunc("GET /metrics", rt.metricsHandler)
	return rt.withRequest(mux)
}

// requestIDHeader carries the per-request correlation ID (kept in sync
// with internal/serve's RequestIDHeader — the packages are deliberately
// import-independent).
const requestIDHeader = "X-Request-ID"

// mintRequestID returns a fresh correlation ID for a request that
// arrived without one.
func mintRequestID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("cluster: crypto/rand: %v", err))
	}
	return fmt.Sprintf("%x", b[:])
}

// statusRecorder captures the status a handler wrote; Flush passes
// through so relayed SSE streams stay live.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Flush() {
	if fl, ok := sr.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// withRequest is the router's outermost middleware: it mints (or
// adopts) the X-Request-ID, echoes it on the response, stamps it onto
// the inbound headers so every forward carries it — replica request
// logs echo the same ID, correlating router and replica log lines —
// and emits one request log line (plus a -trace run-trace span) when
// the handler finishes.
func (rt *Router) withRequest(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get(requestIDHeader)
		if rid == "" {
			rid = mintRequestID()
			r.Header.Set(requestIDHeader, rid)
		}
		w.Header().Set(requestIDHeader, rid)
		sr := &statusRecorder{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(sr, r)
		status := sr.status
		if status == 0 {
			status = http.StatusOK
		}
		dur := time.Since(t0)
		rt.log.Info("request",
			"method", r.Method, "path", r.URL.Path,
			"status", status, "dur_ms", float64(dur)/1e6,
			"request_id", rid)
		if run := rt.cfg.RunTrace; run != nil {
			run.RecordSpan("http "+r.Method, t0.Sub(run.Start()), dur,
				obs.Attr{Key: "path", Val: r.URL.Path},
				obs.Attr{Key: "status", Val: int64(status)},
				obs.Attr{Key: "request_id", Val: rid})
		}
	})
}

// startRequestTrace mints the per-request root trace, adopting the
// caller's traceparent when one arrived, and attaches it to the
// request context so every forward (roundTrip) injects the header and
// the replica's job/session trace joins the same trace ID.
func (rt *Router) startRequestTrace(r *http.Request) (*obs.Trace, *http.Request) {
	tr := obs.NewTrace("router")
	if tid, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
		tr.SetID(tid)
	}
	tr.Root().Str("path", r.URL.Path).Str("request_id", r.Header.Get(requestIDHeader))
	return tr, r.WithContext(obs.WithTrace(r.Context(), tr))
}

// markDown feeds a forward failure into the prober — unless the error
// is the client's own doing. A client that disconnects (or times out)
// mid-forward cancels the outbound request and surfaces as a transport
// error here; marking a healthy replica Down for that would trigger
// spurious session takeovers for up to a probe interval. Cluster health
// only changes on failures the replica actually caused.
func (rt *Router) markDown(name string, r *http.Request, err error) {
	if errors.Is(err, context.Canceled) || r.Context().Err() != nil {
		return
	}
	rt.prober.MarkDown(name, err)
}

// retryAfter is the seconds the router tells shed clients to wait: one
// probe interval, when its view of the cluster refreshes.
func (rt *Router) retryAfter() string {
	s := int(math.Ceil(rt.prober.Interval().Seconds()))
	if s < 1 {
		s = 1
	}
	return fmt.Sprintf("%d", s)
}

func (rt *Router) healthHandler(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"members": len(rt.cfg.Members),
	})
}

func (rt *Router) readyHandler(w http.ResponseWriter, _ *http.Request) {
	snap := rt.prober.Snapshot()
	states := make(map[string]string, len(snap))
	ready, depth, qcap := 0, 0, 0
	for name, h := range snap {
		states[name] = h.State.String()
		if h.State == StateReady {
			ready++
			depth += h.QueueDepth
			qcap += h.QueueCap
		}
	}
	body := map[string]any{
		"status":      "ready",
		"ready":       ready,
		"members":     states,
		"queue_depth": depth,
		"queue_cap":   qcap,
	}
	if ready == 0 {
		body["status"] = "no ready members"
		w.Header().Set("Retry-After", rt.retryAfter())
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// metricsHandler is the cluster federation endpoint: the router's own
// series first, then every reachable member's series re-emitted with a
// replica="name" label (see federate.go).
func (rt *Router) metricsHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = rt.WriteMetrics(w)
	rt.federate(r.Context(), w)
}

// ---- job submission -------------------------------------------------

// submitHandler routes one job submission by content hash: the same
// body always walks the ring from the same point, so repeated
// identical requests land on the same replica and hit its result-store
// dedup. Transport failures and queue rejections fall through to the
// next ring member with jittered backoff — duplicated compute is
// harmless for jobs (they are idempotent pure functions), unlike for
// session mutations, which are never retried across members.
func (rt *Router) submitHandler(w http.ResponseWriter, r *http.Request) {
	tr, r := rt.startRequestTrace(r)
	defer tr.Finish()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		tr.Root().Str("verdict", "body_too_large")
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	key := fmt.Sprintf("%s:%016x", r.URL.Path, hashBytes(body))
	rctx, rsp := obs.Start(r.Context(), "route")
	rsp.Str("key", key)
	attempts := 0
	sawReady := false
	for _, name := range rt.ring.Sequence(key) {
		if !rt.prober.Ready(name) {
			continue
		}
		sawReady = true
		if !rt.prober.Accepting(name) {
			continue
		}
		if attempts >= rt.cfg.Retries {
			break
		}
		if attempts > 0 {
			rt.m.retries.Add(1)
			_, bsp := obs.Start(rctx, "retry.backoff")
			ok := sleepJitter(r, rt.cfg.RetryDelay, attempts)
			bsp.Int("attempt", int64(attempts)).End()
			if !ok {
				rsp.Str("verdict", "client_gone").End()
				return // client gone
			}
		}
		attempts++
		_, fsp := obs.Start(rctx, "forward")
		fsp.Str("member", name).Int("attempt", int64(attempts))
		resp, err := rt.roundTrip(r, name, body)
		if err != nil {
			fsp.Str("outcome", "error").End()
			rt.markDown(name, r, err)
			rt.log.Warn("submit forward failed", "member", name, "err", err)
			continue
		}
		fsp.Int("status", int64(resp.StatusCode)).End()
		if resp.StatusCode == http.StatusServiceUnavailable {
			// The replica's own admission control rejected the job
			// (queue full or draining): not an error, just no headroom
			// here right now.
			drainClose(resp)
			rt.prober.MarkSaturated(name)
			continue
		}
		if id := resp.Header.Get("X-Job-ID"); id != "" {
			rt.recordJobOwner(id, name)
			rt.recordJobTrace(id, tr)
			tr.Root().Str("job", id)
		}
		rsp.Str("verdict", "forwarded").Str("member", name).End()
		rt.m.forwards.Add(1)
		relay(w, resp)
		return
	}
	w.Header().Set("Retry-After", rt.retryAfter())
	if sawReady {
		rsp.Str("verdict", "saturated").End()
		rt.m.shed.Add(1)
		rt.m.admSaturated.Add(1)
		rt.events.publish(Event{Type: "admission.reject",
			Detail: r.URL.Path + ": all replicas saturated"})
		writeError(w, http.StatusTooManyRequests, "cluster: all replicas saturated")
		return
	}
	rsp.Str("verdict", "no_ready").End()
	rt.m.unavailable.Add(1)
	rt.m.admNoReady.Add(1)
	rt.events.publish(Event{Type: "admission.reject",
		Detail: r.URL.Path + ": no ready replicas"})
	writeError(w, http.StatusServiceUnavailable, "cluster: no ready replicas")
}

// sleepJitter waits RetryDelay·2^(attempt-1), jittered to ±50%. False
// means the client disconnected while we waited.
func sleepJitter(r *http.Request, base time.Duration, attempt int) bool {
	d := base << (attempt - 1)
	d = d/2 + time.Duration(rand.Int63n(int64(d))) // [d/2, 3d/2)
	select {
	case <-time.After(d):
		return true
	case <-r.Context().Done():
		return false
	}
}

// ---- job reads ------------------------------------------------------

// jobHandler forwards job reads (status, events, trace) and cancels to
// the replica that acknowledged the submission. mutation selects the
// 502-on-unknown-fate error contract.
func (rt *Router) jobHandler(mutation bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		owner := rt.jobOwnerOf(id)
		if owner == "" {
			var complete bool
			owner, complete = rt.locateJob(r, id)
			if owner == "" {
				if !complete {
					// A member the scan could not ask (down, draining,
					// recovering) may hold the job; "not found" is only
					// provable when every member answered.
					rt.m.unavailable.Add(1)
					w.Header().Set("Retry-After", rt.retryAfter())
					writeError(w, http.StatusServiceUnavailable,
						"cluster: job "+id+" not located; not every replica answered")
					return
				}
				writeError(w, http.StatusNotFound, "cluster: no replica knows job "+id)
				return
			}
			rt.recordJobOwner(id, owner)
		}
		if !rt.prober.Ready(owner) {
			// The owner recovers requeued jobs from its WAL when it
			// returns; tell the client to come back rather than 404ing
			// a job that still exists.
			rt.m.unavailable.Add(1)
			w.Header().Set("Retry-After", rt.retryAfter())
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("cluster: job owner %s is %s", owner, rt.stateOf(owner)))
			return
		}
		resp, err := rt.roundTrip(r, owner, nil)
		if err != nil {
			rt.markDown(owner, r, err)
			rt.forwardFailure(w, mutation, owner, err)
			return
		}
		rt.m.forwards.Add(1)
		relay(w, resp)
	}
}

// locateJob asks every ready member for the job when the routing table
// has no entry (router restart, evicted route). First non-404 wins.
// complete reports whether every member was asked and answered — only
// then is an empty result proof the job does not exist.
func (rt *Router) locateJob(r *http.Request, id string) (owner string, complete bool) {
	complete = true
	for _, name := range rt.ring.Sequence("job:" + id) {
		if !rt.prober.Ready(name) {
			complete = false
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
			rt.prober.URL(name)+"/v1/jobs/"+id, nil)
		if err != nil {
			complete = false
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			rt.markDown(name, r, err)
			complete = false
			continue
		}
		code := resp.StatusCode
		drainClose(resp)
		if code != http.StatusNotFound {
			return name, true
		}
	}
	return "", complete
}

func (rt *Router) jobOwnerOf(id string) string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.jobOwner[id]
}

func (rt *Router) recordJobOwner(id, owner string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.jobOwner[id]; !ok {
		rt.jobFIFO = append(rt.jobFIFO, id)
		for len(rt.jobFIFO) > rt.cfg.JobRouteCap {
			delete(rt.jobOwner, rt.jobFIFO[0])
			rt.jobFIFO = rt.jobFIFO[1:]
		}
	}
	rt.jobOwner[id] = owner
}

// ---- sessions -------------------------------------------------------

// ClusterSessionHeader carries the router-minted session ID on create
// forwards; replicas create the session under this ID so that every
// later routing decision hashes to the same ring owner.
const ClusterSessionHeader = "X-Cluster-Session-ID"

// sessionSealedHeader marks a replica response served by a session copy
// that is sealed for migration (kept in sync with internal/serve's
// constant of the same name). A sealed copy is the fossil of an
// interrupted takeover: it refuses mutations and may be stale, so the
// router completes the handover to a fresh owner instead of relaying
// the refusal to the client.
const sessionSealedHeader = "X-Session-Sealed"

// mintSessionID returns a fresh router-scoped session ID. The "cs-"
// prefix keeps it out of the replicas' local "s%06d" namespace.
func mintSessionID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("cluster: crypto/rand: %v", err))
	}
	return fmt.Sprintf("cs-%x", b[:])
}

func (rt *Router) createSessionHandler(w http.ResponseWriter, r *http.Request) {
	tr, r := rt.startRequestTrace(r)
	defer tr.Finish()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	id := mintSessionID()
	tr.Root().Str("session", id)
	owner, ok := rt.ring.Owner(id, rt.prober.Ready)
	if !ok {
		rt.m.unavailable.Add(1)
		w.Header().Set("Retry-After", rt.retryAfter())
		writeError(w, http.StatusServiceUnavailable, "cluster: no ready replicas")
		return
	}
	r.Header.Set(ClusterSessionHeader, id)
	resp, err := rt.roundTrip(r, owner, body)
	if err != nil {
		rt.markDown(owner, r, err)
		rt.forwardFailure(w, true, owner, err)
		return
	}
	if resp.StatusCode == http.StatusCreated {
		rt.mu.Lock()
		rt.sessOwner[id] = sessRoute{owner: owner}
		rt.mu.Unlock()
		rt.m.sessions.Add(1)
	}
	rt.m.forwards.Add(1)
	relay(w, resp)
}

// sessionHandler pins every session request to the session's owner,
// running the takeover handshake first when the owner is gone. The
// takeover-before-forward ordering covers reads too: a GET hitting a
// reassigned-but-not-yet-adopted session must wait for the replay, not
// 404 against a replica that never heard of it.
func (rt *Router) sessionHandler(mutation bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		tr, r := rt.startRequestTrace(r)
		defer tr.Finish()
		tr.Root().Str("session", id)
		var body []byte
		if r.Method != http.MethodGet {
			var err error
			body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
			if err != nil {
				writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
				return
			}
		}
		owner, status, msg := rt.ensureSessionOwner(r, id)
		if status != 0 {
			rt.writeRoutingError(w, status, msg)
			return
		}
		resp, err := rt.roundTrip(r, owner, body)
		if err != nil {
			rt.markDown(owner, r, err)
			rt.forwardFailure(w, mutation, owner, err)
			return
		}
		if resp.Header.Get(sessionSealedHeader) != "" {
			// The owner's copy is sealed — an earlier takeover fenced it
			// and was interrupted before the handover finished. Complete
			// the migration to a fresh owner and retry there once.
			drainClose(resp)
			owner, status, msg = rt.recoverSealed(r, id, owner)
			if status != 0 {
				rt.writeRoutingError(w, status, msg)
				return
			}
			resp, err = rt.roundTrip(r, owner, body)
			if err != nil {
				rt.markDown(owner, r, err)
				rt.forwardFailure(w, mutation, owner, err)
				return
			}
		}
		if r.Method == http.MethodDelete && resp.StatusCode == http.StatusOK {
			rt.mu.Lock()
			delete(rt.sessOwner, id)
			rt.mu.Unlock()
		}
		rt.m.forwards.Add(1)
		relay(w, resp)
	}
}

// writeRoutingError answers a request the router could not place,
// counting 503s and attaching Retry-After so clients retry instead of
// giving up on a session that still exists.
func (rt *Router) writeRoutingError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusServiceUnavailable {
		rt.m.unavailable.Add(1)
		w.Header().Set("Retry-After", rt.retryAfter())
	}
	writeError(w, status, msg)
}

// ensureSessionOwner resolves the member that must serve a session
// request, completing a takeover when the recorded owner is not ready.
// A session only ever moves when the handshake fully succeeds — until
// then requests answer 503 + Retry-After and the session stays put, so
// an owner that merely flapped keeps its sessions with no replay.
func (rt *Router) ensureSessionOwner(r *http.Request, id string) (owner string, status int, msg string) {
	rt.mu.Lock()
	route, known := rt.sessOwner[id]
	rt.mu.Unlock()
	if !known {
		// Router restart or foreign session: find who holds it. "No such
		// session" is only provable when every member answered — a
		// session whose owner is down still exists, it just cannot be
		// served until the owner's journal is reachable again.
		name, sealedAt, complete := rt.locateSession(r, id)
		if name == "" {
			if sealedAt != "" {
				// The only copy located is sealed — the fossil of an
				// interrupted takeover. Finish the handover now and
				// serve from the adopter.
				return rt.recoverSealed(r, id, sealedAt)
			}
			if !complete {
				return "", http.StatusServiceUnavailable,
					"cluster: session " + id + " not located; not every replica answered"
			}
			return "", http.StatusNotFound, "no such session"
		}
		rt.mu.Lock()
		rt.sessOwner[id] = sessRoute{owner: name}
		rt.mu.Unlock()
		route = sessRoute{owner: name}
	}
	if rt.prober.Ready(route.owner) {
		return route.owner, 0, ""
	}

	// Owner gone: serialize the handshake per session so concurrent
	// requests don't race duplicate adoptions.
	lk := rt.sessionLock(id)
	lk.Lock()
	defer lk.Unlock()
	rt.mu.Lock()
	route = rt.sessOwner[id]
	rt.mu.Unlock()
	if rt.prober.Ready(route.owner) {
		return route.owner, 0, ""
	}
	return rt.adoptFrom(r, id, route.owner)
}

// adoptFrom runs the takeover handshake moving a session off oldOwner
// to its ring successor and updates the routing table on success. The
// caller holds the session lock.
func (rt *Router) adoptFrom(r *http.Request, id, oldOwner string) (owner string, status int, msg string) {
	newOwner, ok := rt.ring.Owner(id, func(n string) bool {
		return n != oldOwner && rt.prober.Ready(n)
	})
	if !ok {
		return "", http.StatusServiceUnavailable, "cluster: no ready replica can adopt session " + id
	}
	if err := rt.takeover(r, id, newOwner, oldOwner); err != nil {
		return "", http.StatusServiceUnavailable,
			fmt.Sprintf("cluster: takeover of %s pending: %v", id, err)
	}
	rt.mu.Lock()
	rt.sessOwner[id] = sessRoute{owner: newOwner}
	rt.mu.Unlock()
	rt.m.takeovers.Add(1)
	rt.log.Info("session takeover", "session", id, "from", oldOwner, "to", newOwner)
	return newOwner, 0, ""
}

// recoverSealed finishes the migration of a session whose recorded
// owner answered with a sealed copy (an interrupted earlier takeover).
// The sealed copy keeps refusing mutations, so until a fresh owner
// adopts the journal the session is safe but not live.
func (rt *Router) recoverSealed(r *http.Request, id, sealedOwner string) (owner string, status int, msg string) {
	lk := rt.sessionLock(id)
	lk.Lock()
	defer lk.Unlock()
	rt.mu.Lock()
	route := rt.sessOwner[id]
	rt.mu.Unlock()
	if route.owner != "" && route.owner != sealedOwner && rt.prober.Ready(route.owner) {
		// A concurrent request already completed the handover.
		return route.owner, 0, ""
	}
	return rt.adoptFrom(r, id, sealedOwner)
}

// takeoverPhase mirrors internal/serve's TakeoverPhase: one phase of
// the adoption handshake as timed by the adopter, returned in both
// success and error bodies.
type takeoverPhase struct {
	Phase    string  `json:"phase"`
	OffsetMS float64 `json:"offset_ms"`
	DurMS    float64 `json:"dur_ms"`
}

// recordTakeoverPhases folds the adopter-reported phase timings into
// the router's observability surfaces: the phase-duration histogram,
// the cluster event timeline (takeover.seal, .fetch, .replay, .release
// — and .unseal on an abort), and — when the triggering request carries
// a trace — spans grafted at the adopter's reported offsets, so an
// adoption appears inside the request trace that triggered it.
func (rt *Router) recordTakeoverPhases(tr *obs.Trace, t0 time.Time, member, id string, phases []takeoverPhase) {
	for _, ph := range phases {
		rt.tkPhase.Observe(ph.Phase, ph.DurMS/1e3)
		rt.events.publish(Event{Type: "takeover." + ph.Phase, Member: member, Session: id,
			Detail: fmt.Sprintf("%.1fms", ph.DurMS)})
		if tr != nil {
			tr.RecordSpan("takeover."+ph.Phase,
				t0.Sub(tr.Start())+time.Duration(ph.OffsetMS*float64(time.Millisecond)),
				time.Duration(ph.DurMS*float64(time.Millisecond)),
				obs.Attr{Key: "member", Val: member})
		}
	}
}

// takeover asks newOwner to adopt the session by fetching and replaying
// its journal from oldOwner's store. It succeeds only when the adopter
// has the full acknowledged log — the source must be reachable (a
// draining or recovering replica serves its store; a killed one does
// not until it restarts). The adopter's phase timings are folded into
// the event timeline, the phase histogram and the request trace.
func (rt *Router) takeover(r *http.Request, id, newOwner, oldOwner string) error {
	tr := obs.TraceOf(r.Context())
	t0 := time.Now()
	rt.events.publish(Event{Type: "takeover.begin", Member: newOwner, Session: id,
		Detail: "from " + oldOwner})
	reqBody, _ := json.Marshal(map[string]string{"source": rt.prober.URL(oldOwner)})
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		rt.prober.URL(newOwner)+"/cluster/sessions/"+id+"/takeover",
		bytes.NewReader(reqBody))
	if err != nil {
		rt.m.takeoverFail.Add(1)
		rt.events.publish(Event{Type: "takeover.abort", Member: newOwner, Session: id,
			Detail: err.Error()})
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if tr != nil {
		req.Header.Set(obs.TraceparentHeader, tr.Traceparent())
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.markDown(newOwner, r, err)
		rt.m.takeoverFail.Add(1)
		rt.events.publish(Event{Type: "takeover.abort", Member: newOwner, Session: id,
			Detail: err.Error()})
		return err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var tk struct {
		Error  string          `json:"error"`
		Phases []takeoverPhase `json:"phases"`
	}
	_ = json.Unmarshal(b, &tk)
	rt.recordTakeoverPhases(tr, t0, newOwner, id, tk.Phases)
	if resp.StatusCode != http.StatusOK {
		rt.m.takeoverFail.Add(1)
		msg := tk.Error
		if msg == "" {
			msg = strings.TrimSpace(string(b))
		}
		rt.events.publish(Event{Type: "takeover.abort", Member: newOwner, Session: id,
			Detail: msg})
		return fmt.Errorf("%s: HTTP %d: %s", newOwner, resp.StatusCode, msg)
	}
	rt.events.publish(Event{Type: "takeover.adopted", Member: newOwner, Session: id,
		Detail: "from " + oldOwner})
	return nil
}

// locateSession asks ready members whether they hold the session (used
// when the routing table has no entry, e.g. after a router restart).
// Sealed copies are migration fossils, not owners — they are reported
// via sealedAt so the caller can finish the interrupted handover, and a
// live copy always wins over a fossil. complete reports whether every
// member was asked and answered; only then does an empty result prove
// the session does not exist.
func (rt *Router) locateSession(r *http.Request, id string) (owner, sealedAt string, complete bool) {
	complete = true
	for _, name := range rt.ring.Sequence(id) {
		if !rt.prober.Ready(name) {
			complete = false
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
			rt.prober.URL(name)+"/v1/sessions/"+id, nil)
		if err != nil {
			complete = false
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			rt.markDown(name, r, err)
			complete = false
			continue
		}
		code := resp.StatusCode
		sealed := resp.Header.Get(sessionSealedHeader) != ""
		drainClose(resp)
		if sealed {
			if sealedAt == "" {
				sealedAt = name
			}
			continue
		}
		if code == http.StatusOK {
			return name, "", true
		}
	}
	return "", sealedAt, complete
}

func (rt *Router) sessionLock(id string) *sync.Mutex {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	lk, ok := rt.sessLocks[id]
	if !ok {
		lk = &sync.Mutex{}
		rt.sessLocks[id] = lk
	}
	return lk
}

// ---- fan-out lists --------------------------------------------------

// fanoutListHandler merges a list endpoint (/v1/jobs, /v1/sessions)
// across every ready member. A member that fails mid-round is skipped —
// a partial list beats a failed one for these observability endpoints.
func (rt *Router) fanoutListHandler(w http.ResponseWriter, r *http.Request) {
	merged := []json.RawMessage{}
	for _, h := range rt.sortedMembers() {
		if h.State != StateReady {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
			h.URL+r.URL.RequestURI(), nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			rt.markDown(h.Name, r, err)
			continue
		}
		if resp.StatusCode == http.StatusOK {
			var part []json.RawMessage
			if derr := json.NewDecoder(resp.Body).Decode(&part); derr == nil {
				merged = append(merged, part...)
			}
		} else if resp.StatusCode == http.StatusBadRequest {
			// Bad query parameters fail identically everywhere; relay
			// the first verdict instead of hiding it in an empty list.
			relay(w, resp)
			return
		}
		drainClose(resp)
	}
	writeJSON(w, http.StatusOK, merged)
}

func (rt *Router) sortedMembers() []MemberHealth {
	snap := rt.prober.Snapshot()
	out := make([]MemberHealth, 0, len(snap))
	for _, name := range rt.ring.Members() {
		out = append(out, snap[name])
	}
	return out
}

func (rt *Router) stateOf(name string) string {
	snap := rt.prober.Snapshot()
	return snap[name].State.String()
}

// ---- forwarding plumbing --------------------------------------------

// roundTrip forwards the inbound request to one member, replaying the
// pre-read body. The caller owns the returned response.
func (rt *Router) roundTrip(r *http.Request, member string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method,
		rt.prober.URL(member)+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	copyHeaders(out.Header, r.Header)
	if tr := obs.TraceOf(r.Context()); tr != nil {
		out.Header.Set(obs.TraceparentHeader, tr.Traceparent())
	}
	t0 := time.Now()
	resp, err := rt.client.Do(out)
	rt.fwd.Observe(time.Since(t0).Seconds(), routeOf(r.URL.Path), forwardOutcome(resp, err))
	return resp, err
}

// routeOf buckets a request path into a low-cardinality route label
// for the forward-latency histogram.
func routeOf(path string) string {
	if strings.HasPrefix(path, "/debug/trace/") {
		return "trace"
	}
	rest := strings.TrimPrefix(path, "/v1/")
	if rest == path {
		return "other"
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	switch rest {
	case "predict", "place", "couple", "explore", "yield", "jobs", "sessions":
		return rest
	}
	return "other"
}

// forwardOutcome labels one forward attempt for the latency histogram.
func forwardOutcome(resp *http.Response, err error) string {
	switch {
	case err != nil:
		return "error"
	case resp.StatusCode == http.StatusServiceUnavailable ||
		resp.StatusCode == http.StatusTooManyRequests:
		return "rejected"
	case resp.StatusCode >= 500:
		return "server_error"
	case resp.StatusCode >= 400:
		return "client_error"
	default:
		return "ok"
	}
}

// forwardFailure answers a forward whose transport died. For mutations
// the fate is unknown — the replica may have applied and journaled the
// op before the connection broke — so the answer is 502, which clients
// treat as "resolve my op's fate before retrying" (see internal/soak).
// Reads are side-effect free: 503 + Retry-After invites a plain retry.
func (rt *Router) forwardFailure(w http.ResponseWriter, mutation bool, member string, err error) {
	if mutation {
		rt.m.badGateway.Add(1)
		writeError(w, http.StatusBadGateway,
			fmt.Sprintf("cluster: forward to %s died mid-request: %v", member, err))
		return
	}
	rt.m.unavailable.Add(1)
	w.Header().Set("Retry-After", rt.retryAfter())
	writeError(w, http.StatusServiceUnavailable,
		fmt.Sprintf("cluster: %s unreachable: %v", member, err))
}

// relay streams a member's response to the client, flushing per chunk
// so forwarded SSE streams stay live.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vv := range resp.Header {
		if hopByHop(k) {
			continue
		}
		for _, v := range vv {
			h.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	copyFlush(w, resp.Body)
}

func copyFlush(w http.ResponseWriter, src io.Reader) {
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func copyHeaders(dst, src http.Header) {
	for k, vv := range src {
		if hopByHop(k) {
			continue
		}
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}

func hopByHop(k string) bool {
	switch http.CanonicalHeaderKey(k) {
	case "Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
		"Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade":
		return true
	}
	return false
}

func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
	resp.Body.Close()
}

func hashBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
