package cluster

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics are the router's monotonic counters, exported on /metrics in
// the same Prometheus text format (with HELP/TYPE headers) as the
// replicas' own series, prefixed emiserve_cluster_.
type metrics struct {
	forwards    atomic.Int64 // requests proxied to a replica
	retries     atomic.Int64 // forward attempts after the first, per request
	shed        atomic.Int64 // 429s: every useful target saturated
	unavailable atomic.Int64 // 503s: no owner / takeover incomplete
	badGateway  atomic.Int64 // 502s: transport died mid-forward, fate unknown
	takeovers   atomic.Int64 // session takeover handshakes completed
	sessions    atomic.Int64 // sessions created through the router

	takeoverFail atomic.Int64 // takeover handshakes that aborted
	admSaturated atomic.Int64 // submits rejected: every useful target saturated
	admNoReady   atomic.Int64 // submits rejected: no ready replica at all
}

// WriteMetrics writes the router metrics plus the per-state member
// gauge derived from the prober snapshot.
func (rt *Router) WriteMetrics(w io.Writer) error {
	snap := rt.prober.Snapshot()
	counts := map[MemberState]int{}
	var depth, capSum int
	for _, h := range snap {
		counts[h.State]++
		if h.State == StateReady {
			depth += h.QueueDepth
			capSum += h.QueueCap
		}
	}
	bw := &errWriter{w: w}
	bw.printf("# HELP emiserve_cluster_members Members by probed state.\n")
	bw.printf("# TYPE emiserve_cluster_members gauge\n")
	for _, st := range []MemberState{StateReady, StateNotReady, StateDown} {
		bw.printf("emiserve_cluster_members{state=%q} %d\n", st.String(), counts[st])
	}
	bw.printf("# HELP emiserve_cluster_queue_depth Summed queue depth of ready members.\n")
	bw.printf("# TYPE emiserve_cluster_queue_depth gauge\n")
	bw.printf("emiserve_cluster_queue_depth %d\n", depth)
	bw.printf("# HELP emiserve_cluster_queue_cap Summed queue capacity of ready members.\n")
	bw.printf("# TYPE emiserve_cluster_queue_cap gauge\n")
	bw.printf("emiserve_cluster_queue_cap %d\n", capSum)

	counters := []struct {
		name, help string
		v          *atomic.Int64
	}{
		{"emiserve_cluster_forwards_total", "Requests proxied to a replica.", &rt.m.forwards},
		{"emiserve_cluster_retries_total", "Forward attempts beyond the first.", &rt.m.retries},
		{"emiserve_cluster_shed_total", "Requests shed with 429 (all targets saturated).", &rt.m.shed},
		{"emiserve_cluster_unavailable_total", "Requests answered 503 (no ready owner).", &rt.m.unavailable},
		{"emiserve_cluster_bad_gateway_total", "Forwards answered 502 (transport died mid-request).", &rt.m.badGateway},
		{"emiserve_cluster_takeovers_total", "Session takeover handshakes completed.", &rt.m.takeovers},
		{"emiserve_cluster_sessions_total", "Sessions created through the router.", &rt.m.sessions},
	}
	for _, c := range counters {
		bw.printf("# HELP %s %s\n", c.name, c.help)
		bw.printf("# TYPE %s counter\n", c.name)
		bw.printf("%s %d\n", c.name, c.v.Load())
	}

	bw.printf("# HELP emiserve_cluster_probe_rtt_seconds Last successful readyz probe round-trip per member.\n")
	bw.printf("# TYPE emiserve_cluster_probe_rtt_seconds gauge\n")
	for _, name := range rt.ring.Members() {
		bw.printf("emiserve_cluster_probe_rtt_seconds{member=%q} %g\n",
			name, snap[name].RTT.Seconds())
	}
	bw.printf("# HELP emiserve_cluster_takeover_outcomes_total Session takeover handshakes by result.\n")
	bw.printf("# TYPE emiserve_cluster_takeover_outcomes_total counter\n")
	bw.printf("emiserve_cluster_takeover_outcomes_total{result=%q} %d\n", "adopted", rt.m.takeovers.Load())
	bw.printf("emiserve_cluster_takeover_outcomes_total{result=%q} %d\n", "failed", rt.m.takeoverFail.Load())
	bw.printf("# HELP emiserve_cluster_admission_rejected_total Submissions the router rejected, by reason.\n")
	bw.printf("# TYPE emiserve_cluster_admission_rejected_total counter\n")
	bw.printf("emiserve_cluster_admission_rejected_total{reason=%q} %d\n", "saturated", rt.m.admSaturated.Load())
	bw.printf("emiserve_cluster_admission_rejected_total{reason=%q} %d\n", "no_ready", rt.m.admNoReady.Load())

	if bw.err == nil {
		bw.err = rt.fwd.WriteProm(w)
	}
	if bw.err == nil {
		bw.err = rt.tkPhase.WriteProm(w)
	}
	return bw.err
}

// errWriter folds the first write error, so WriteMetrics stays a flat
// list of printf calls.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}
