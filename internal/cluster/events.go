package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// The cluster event timeline: one bounded, ordered stream of the state
// changes an operator asks "what just happened?" about — member health
// transitions, drains, the phases of every session takeover, and
// admission rejections. The ring + SSE-replay shape is the same one
// job progress streaming uses (internal/serve's progressLog): a client
// reconnecting with Last-Event-ID (or ?after=N) replays what the ring
// still holds and then follows live.

const (
	// eventRingCap bounds the replay ring. Cluster events are rare
	// (state flips, takeovers), so the ring normally holds hours of
	// history; sustained admission rejections are the one high-rate
	// producer, and losing old ones to the cap is acceptable.
	eventRingCap = 1024

	// eventChanSlack is a subscriber's live buffer beyond its replay
	// backlog; a slower client is dropped and must reconnect.
	eventChanSlack = 64
)

// Event is one entry of the cluster timeline.
type Event struct {
	Seq     uint64    `json:"seq"`
	At      time.Time `json:"at"`
	Type    string    `json:"type"`              // e.g. "member.state", "takeover.seal", "admission.reject"
	Member  string    `json:"member,omitempty"`  // the replica the event is about
	Session string    `json:"session,omitempty"` // set on takeover events
	Detail  string    `json:"detail,omitempty"`  // human-readable specifics
}

// eventLog is a bounded ring of cluster events with subscription
// fan-out. Safe for concurrent use.
type eventLog struct {
	mu     sync.Mutex
	events []Event
	seq    uint64
	subs   map[chan Event]bool
	closed bool
}

func newEventLog() *eventLog {
	return &eventLog{subs: make(map[chan Event]bool)}
}

// publish stamps and appends an event, fanning it out to subscribers.
// A subscriber whose channel is full is dropped — the timeline is
// advisory and must never block routing.
func (l *eventLog) publish(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.seq++
	ev.Seq = l.seq
	ev.At = time.Now()
	l.events = append(l.events, ev)
	if n := len(l.events) - eventRingCap; n > 0 {
		l.events = append(l.events[:0:0], l.events[n:]...)
	}
	for ch := range l.subs {
		select {
		case ch <- ev:
		default:
			delete(l.subs, ch)
			close(ch)
		}
	}
}

// subscribe returns a channel replaying the retained events with
// Seq > after, then live events until cancel, close, or falling behind.
func (l *eventLog) subscribe(after uint64) (<-chan Event, func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var replay []Event
	for _, ev := range l.events {
		if ev.Seq > after {
			replay = append(replay, ev)
		}
	}
	ch := make(chan Event, len(replay)+eventChanSlack)
	for _, ev := range replay {
		ch <- ev
	}
	if l.closed {
		close(ch)
		return ch, func() {}
	}
	l.subs[ch] = true
	cancel := func() {
		l.mu.Lock()
		if l.subs[ch] {
			delete(l.subs, ch)
			close(ch)
		}
		l.mu.Unlock()
	}
	return ch, cancel
}

// snapshot returns the retained events with Seq > after.
func (l *eventLog) snapshot(after uint64) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, ev := range l.events {
		if ev.Seq > after {
			out = append(out, ev)
		}
	}
	return out
}

// close ends every live subscription (router shutdown). The ring is
// retained for any in-flight snapshot reads.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for ch := range l.subs {
		delete(l.subs, ch)
		close(ch)
	}
}

// Events returns the retained timeline events with Seq > after —
// the programmatic view of GET /cluster/events (status pages, tests).
func (rt *Router) Events(after uint64) []Event {
	return rt.events.snapshot(after)
}

// eventsHandler streams the cluster timeline as server-sent events.
// Each event's type is the SSE event name and its sequence number the
// SSE id, so EventSource reconnection (Last-Event-ID) resumes where
// the stream broke; ?after=N does the same for plain clients.
func (rt *Router) eventsHandler(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	var after uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		after, _ = strconv.ParseUint(v, 10, 64)
	} else if v := r.URL.Query().Get("after"); v != "" {
		after, _ = strconv.ParseUint(v, 10, 64)
	}
	ch, cancel := rt.events.subscribe(after)
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return // router closing, or this client fell behind
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.Seq, data)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
