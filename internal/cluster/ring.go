// Package cluster turns N emiserve replicas into one logical service: a
// consistent-hash router spreads content-hash-deduped jobs and pins
// interactive sessions to their ring owner, health probes separate
// liveness from readiness, and admission control sheds load with 429 +
// Retry-After instead of letting queues time out.
//
// The membership is static (a fixed list of name → base-URL pairs):
// replicas neither gossip nor elect; the router is the only component
// with a cluster-wide view. On owner failure the ring reassigns the
// failed member's range and the new owner takes over each session by
// replaying its per-session WAL, fetched from the previous owner's
// store (see the /cluster handshake in internal/serve).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the virtual-node count per member. 64 points per
// member keeps the largest/smallest range ratio within a few percent
// for the small static clusters this package targets.
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring over a static member list.
// Liveness is intentionally not part of the ring: callers pass an
// "alive" predicate per lookup, so a member flapping never reshuffles
// the ranges of healthy members — keys owned by live members stay put.
type Ring struct {
	members []string
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring with vnodes virtual points per member
// (vnodes <= 0 selects DefaultVnodes). Member names must be unique.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := map[string]bool{}
	r := &Ring{
		members: append([]string(nil), members...),
		points:  make([]ringPoint, 0, len(members)*vnodes),
	}
	sort.Strings(r.members)
	for _, m := range r.members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if seen[m] {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
		seen[m] = true
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:   hashKey(fmt.Sprintf("%s#%d", m, i)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Members returns the member names, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Owner returns the first member at or after the key's hash whose
// alive(name) reports true (nil alive accepts everyone). The second
// return is false when no member qualifies.
func (r *Ring) Owner(key string, alive func(string) bool) (string, bool) {
	for _, m := range r.walk(key) {
		if alive == nil || alive(m) {
			return m, true
		}
	}
	return "", false
}

// Sequence returns every member once, in ring-walk order from the key's
// hash — the preference order for failover and submit retries. The
// first element is the key's primary owner.
func (r *Ring) Sequence(key string) []string {
	return r.walk(key)
}

// walk returns the distinct members in point order starting at the
// key's position.
func (r *Ring) walk(key string) []string {
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.members))
	seen := map[string]bool{}
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// hashKey is 64-bit FNV-1a — stable across processes and runs, which
// the ring needs so a restarted router routes a session to the same
// owner it picked before the restart.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
