package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// MemberState is the router's view of one replica. Liveness and
// readiness are distinct: a draining or recovering replica answers
// /healthz 200 but /readyz 503 — it must not receive new work, yet its
// store is (or will shortly be) reachable for session-log fetches, so
// it is NotReady rather than Down.
type MemberState int

const (
	// StateDown: the probe failed at the transport level — the process
	// is gone or unreachable.
	StateDown MemberState = iota
	// StateNotReady: the replica answered /readyz with 503 (recovery
	// replay or drain in progress).
	StateNotReady
	// StateReady: the replica accepts new work.
	StateReady
)

func (s MemberState) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateNotReady:
		return "notready"
	default:
		return "down"
	}
}

// Member is one replica in the static member list.
type Member struct {
	Name string // ring identity; stable across restarts
	URL  string // base URL, e.g. http://127.0.0.1:7001
}

// MemberHealth is one probe-round observation of a member.
type MemberHealth struct {
	Member
	State      MemberState
	QueueDepth int
	QueueCap   int
	// Saturated: the replica reported a full queue (or rejected a
	// forward with 503) — ready, but not a useful submit target until
	// the next probe observes headroom.
	Saturated bool
	Err       string // probe failure detail, "" when State == StateReady
	// Status is the replica's self-reported readyz status string
	// ("ready", "draining", ...); "" when the probe never got a body.
	Status string
	// RTT is the round-trip time of the last successful readyz probe
	// (transport-level failures leave it zero).
	RTT time.Duration
}

// readyzPayload is the JSON body of a replica's GET /readyz.
type readyzPayload struct {
	Status     string `json:"status"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
}

// Prober polls every member's /readyz on a fixed interval and caches
// the results; forwards feed back observed failures between rounds
// (MarkDown, MarkSaturated). All methods are safe for concurrent use.
type Prober struct {
	members  []Member
	interval time.Duration
	client   *http.Client

	mu       sync.Mutex
	health   map[string]MemberHealth
	observer func(prev, cur MemberHealth)
	stop     chan struct{}
	done     chan struct{}
}

// NewProber builds a prober; interval <= 0 selects 500ms. The initial
// state of every member is Down until the first probe round — call
// ProbeNow before routing if the caller cannot wait an interval.
func NewProber(members []Member, interval time.Duration, client *http.Client) *Prober {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	p := &Prober{
		members:  append([]Member(nil), members...),
		interval: interval,
		client:   client,
		health:   map[string]MemberHealth{},
	}
	for _, m := range p.members {
		p.health[m.Name] = MemberHealth{Member: m, State: StateDown, Err: "not probed yet"}
	}
	return p
}

// Interval returns the probe interval — the Retry-After the router
// advertises, since that is when its view refreshes.
func (p *Prober) Interval() time.Duration { return p.interval }

// SetObserver registers fn, called with the previous and new
// observation every time a member's health is updated (probe rounds
// and forward-failure feedback alike). The call happens outside the
// prober's lock, so fn may call back into the prober. Call before
// Start; one observer only — the router's event timeline.
func (p *Prober) SetObserver(fn func(prev, cur MemberHealth)) {
	p.mu.Lock()
	p.observer = fn
	p.mu.Unlock()
}

// setHealth stores a member's new observation and notifies the
// observer outside the lock.
func (p *Prober) setHealth(h MemberHealth) {
	p.mu.Lock()
	prev := p.health[h.Name]
	p.health[h.Name] = h
	fn := p.observer
	p.mu.Unlock()
	if fn != nil {
		fn(prev, h)
	}
}

// Start launches the probe loop. Stop ends it.
func (p *Prober) Start() {
	p.mu.Lock()
	if p.stop != nil {
		p.mu.Unlock()
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	stop, done := p.stop, p.done
	p.mu.Unlock()

	go func() {
		defer close(done)
		t := time.NewTicker(p.interval)
		defer t.Stop()
		p.ProbeNow()
		for {
			select {
			case <-t.C:
				p.ProbeNow()
			case <-stop:
				return
			}
		}
	}()
}

// Stop ends the probe loop and waits for it to exit.
func (p *Prober) Stop() {
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// ProbeNow runs one synchronous probe round over all members. Exported
// so tests (and the router's startup) can refresh the view on demand
// instead of sleeping an interval.
func (p *Prober) ProbeNow() {
	var wg sync.WaitGroup
	for _, m := range p.members {
		wg.Add(1)
		go func(m Member) {
			defer wg.Done()
			p.setHealth(p.probeOne(m))
		}(m)
	}
	wg.Wait()
}

func (p *Prober) probeOne(m Member) MemberHealth {
	h := MemberHealth{Member: m}
	t0 := time.Now()
	resp, err := p.client.Get(m.URL + "/readyz")
	if err != nil {
		h.State, h.Err = StateDown, err.Error()
		return h
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	h.RTT = time.Since(t0)
	var pl readyzPayload
	_ = json.Unmarshal(body, &pl)
	h.QueueDepth, h.QueueCap = pl.QueueDepth, pl.QueueCap
	h.Status = pl.Status
	switch {
	case resp.StatusCode == http.StatusOK:
		h.State = StateReady
		h.Saturated = pl.QueueCap > 0 && pl.QueueDepth >= pl.QueueCap
	case resp.StatusCode == http.StatusServiceUnavailable:
		h.State = StateNotReady
		h.Err = fmt.Sprintf("readyz: %s", pl.Status)
	default:
		h.State, h.Err = StateDown, fmt.Sprintf("readyz: HTTP %d", resp.StatusCode)
	}
	return h
}

// Snapshot returns the current view of every member, keyed by name.
func (p *Prober) Snapshot() map[string]MemberHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]MemberHealth, len(p.health))
	for k, v := range p.health {
		out[k] = v
	}
	return out
}

// Ready reports whether a member is ready (saturated members are still
// ready — they hold sessions and serve reads, they just reject new
// queue work).
func (p *Prober) Ready(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.health[name].State == StateReady
}

// Accepting reports whether a member is a useful submit target: ready
// and not saturated.
func (p *Prober) Accepting(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := p.health[name]
	return h.State == StateReady && !h.Saturated
}

// URL returns a member's base URL ("" for unknown names).
func (p *Prober) URL(name string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.health[name].URL
}

// MarkDown records a transport failure observed by a forward, so
// routing reacts before the next probe round.
func (p *Prober) MarkDown(name string, err error) {
	p.mu.Lock()
	h, ok := p.health[name]
	if !ok {
		p.mu.Unlock()
		return
	}
	prev := h
	h.State = StateDown
	if err != nil {
		h.Err = err.Error()
	}
	p.health[name] = h
	fn := p.observer
	p.mu.Unlock()
	if fn != nil {
		fn(prev, h)
	}
}

// MarkSaturated records a 503 queue rejection observed by a forward;
// the flag clears on the next probe round that sees headroom.
func (p *Prober) MarkSaturated(name string) {
	p.mu.Lock()
	h, ok := p.health[name]
	if !ok {
		p.mu.Unlock()
		return
	}
	prev := h
	h.Saturated = true
	p.health[name] = h
	fn := p.observer
	p.mu.Unlock()
	if fn != nil {
		fn(prev, h)
	}
}
