package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// ---- ring ----------------------------------------------------------

// TestRingDeterminism: the same member list yields the same ownership
// for every key, regardless of input order — a restarted router must
// route to the owners its predecessor picked.
func TestRingDeterminism(t *testing.T) {
	a, err := NewRing([]string{"r0", "r1", "r2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"r2", "r0", "r1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("session-%d", i)
		oa, _ := a.Owner(key, nil)
		ob, _ := b.Owner(key, nil)
		if oa != ob {
			t.Fatalf("key %q: owner %q vs %q across member orderings", key, oa, ob)
		}
	}
}

// TestRingSpread: keys distribute over all members without any member
// starving (loose bound — vnode balance, not perfection).
func TestRingSpread(t *testing.T) {
	r, err := NewRing([]string{"r0", "r1", "r2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		o, ok := r.Owner(fmt.Sprintf("key-%d", i), nil)
		if !ok {
			t.Fatal("no owner with nil alive predicate")
		}
		counts[o]++
	}
	for _, m := range r.Members() {
		if counts[m] < n/10 {
			t.Fatalf("member %s owns only %d of %d keys: %v", m, counts[m], n, counts)
		}
	}
}

// TestRingFailoverStability: keys owned by live members keep their
// owner when another member dies, and keys of the dead member move to
// its ring successor (Sequence[1]).
func TestRingFailoverStability(t *testing.T) {
	r, err := NewRing([]string{"r0", "r1", "r2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	alive := func(dead string) func(string) bool {
		return func(n string) bool { return n != dead }
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		owner, _ := r.Owner(key, nil)
		seq := r.Sequence(key)
		if seq[0] != owner {
			t.Fatalf("key %q: Sequence[0] = %q, Owner = %q", key, seq[0], owner)
		}
		if len(seq) != 3 {
			t.Fatalf("key %q: sequence %v misses members", key, seq)
		}
		// Kill a non-owner: ownership must not move.
		for _, dead := range r.Members() {
			o2, ok := r.Owner(key, alive(dead))
			if !ok {
				t.Fatalf("key %q: no owner with %s dead", key, dead)
			}
			if dead != owner && o2 != owner {
				t.Fatalf("key %q: owner moved %q → %q when unrelated %s died", key, owner, o2, dead)
			}
			if dead == owner && o2 != seq[1] {
				t.Fatalf("key %q: failover owner %q, want ring successor %q", key, o2, seq[1])
			}
		}
	}
}

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Fatal("empty member name accepted")
	}
}

// ---- stub replica ---------------------------------------------------

// stubReplica is a controllable fake emiserve: readiness, queue depth
// and submit behavior are all settable, and it records what it served.
type stubReplica struct {
	name string
	ts   *httptest.Server

	ready      atomic.Bool
	queueDepth atomic.Int64
	queueCap   atomic.Int64
	rejectSub  atomic.Bool // submit answers 503 queue-full

	submits atomic.Int64
	gets    atomic.Int64
	nextJob atomic.Int64

	adoptions      atomic.Int64
	takeoverSource atomic.Value // string: last takeover {"source"}
	failTakeover   atomic.Bool  // takeover answers 502 after seal+unseal
	lastSubmitHdr  atomic.Value // http.Header: last /v1/predict request headers

	mu       sync.Mutex
	jobs     map[string]bool
	sessions map[string]string // id → "live" | "sealed"
}

func (s *stubReplica) putSession(id, state string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sessions == nil {
		s.sessions = map[string]string{}
	}
	s.sessions[id] = state
}

func (s *stubReplica) sessionState(id string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

func (s *stubReplica) putJob(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jobs == nil {
		s.jobs = map[string]bool{}
	}
	s.jobs[id] = true
}

func (s *stubReplica) hasJob(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func newStubReplica(t *testing.T, name string) *stubReplica {
	t.Helper()
	sr := &stubReplica{name: name}
	sr.ready.Store(true)
	sr.queueCap.Store(8)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if !sr.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{"status": "draining"})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"status":      "ready",
			"queue_depth": sr.queueDepth.Load(),
			"queue_cap":   sr.queueCap.Load(),
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		sr.lastSubmitHdr.Store(r.Header.Clone())
		sr.submits.Add(1)
		if sr.rejectSub.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"queue full"}`)
			return
		}
		id := fmt.Sprintf("j%06d-%s", sr.nextJob.Add(1), sr.name)
		sr.putJob(id)
		w.Header().Set("X-Job-ID", id)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id, "state": "queued"})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		sr.gets.Add(1)
		id := r.PathValue("id")
		if !sr.hasJob(id) {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintln(w, `{"error":"no such job"}`)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"id": id, "state": "done"})
	})
	// Session surface, mirroring the replica contract: a sealed copy
	// flags every response with X-Session-Sealed and refuses mutations
	// with 409; takeover installs a live copy and records the source.
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		switch sr.sessionState(id) {
		case "live":
			json.NewEncoder(w).Encode(map[string]string{"id": id})
		case "sealed":
			w.Header().Set("X-Session-Sealed", "true")
			json.NewEncoder(w).Encode(map[string]string{"id": id})
		default:
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintln(w, `{"error":"no such session"}`)
		}
	})
	mux.HandleFunc("POST /v1/sessions/{id}/edits", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		id := r.PathValue("id")
		switch sr.sessionState(id) {
		case "live":
			json.NewEncoder(w).Encode(map[string]any{"id": id, "seq": 1})
		case "sealed":
			w.Header().Set("X-Session-Sealed", "true")
			w.WriteHeader(http.StatusConflict)
			fmt.Fprintln(w, `{"error":"sealed for migration"}`)
		default:
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintln(w, `{"error":"no such session"}`)
		}
	})
	mux.HandleFunc("POST /cluster/sessions/{id}/takeover", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Source string `json:"source"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		sr.takeoverSource.Store(req.Source)
		if sr.failTakeover.Load() {
			// An aborted handshake: the fence was raised and lifted again.
			w.WriteHeader(http.StatusBadGateway)
			json.NewEncoder(w).Encode(map[string]any{
				"error": "source store unreachable",
				"phases": []map[string]any{
					{"phase": "seal", "offset_ms": 0.0, "dur_ms": 1.0},
					{"phase": "unseal", "offset_ms": 2.0, "dur_ms": 0.5},
				},
			})
			return
		}
		sr.adoptions.Add(1)
		sr.putSession(r.PathValue("id"), "live")
		json.NewEncoder(w).Encode(map[string]any{
			"status": "adopted",
			"phases": []map[string]any{
				{"phase": "seal", "offset_ms": 0.0, "dur_ms": 1.0},
				{"phase": "fetch", "offset_ms": 1.0, "dur_ms": 2.0},
				{"phase": "replay", "offset_ms": 3.0, "dur_ms": 4.0},
				{"phase": "release", "offset_ms": 7.0, "dur_ms": 0.5},
			},
		})
	})
	// Observability surface: a minimal Prometheus exposition and a
	// canned per-job Chrome trace fragment that adopts the trace ID the
	// router injected on the submit forward.
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, "# HELP emiserve_jobs_total Jobs accepted.\n# TYPE emiserve_jobs_total counter\nemiserve_jobs_total %d\n", sr.submits.Load())
		fmt.Fprintf(w, "# HELP emiserve_queue_wait_depth Queue depth by queue.\n# TYPE emiserve_queue_wait_depth gauge\nemiserve_queue_wait_depth{queue=\"jobs\"} %d\n", sr.queueDepth.Load())
	})
	mux.HandleFunc("GET /debug/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !sr.hasJob(r.PathValue("id")) {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintln(w, `{"error":"no trace"}`)
			return
		}
		traceID := ""
		if hdr, ok := sr.lastSubmitHdr.Load().(http.Header); ok {
			if tid, ok := obs.ParseTraceparent(hdr.Get(obs.TraceparentHeader)); ok {
				traceID = tid.String()
			}
		}
		doc := obs.ChromeDoc{
			TraceEvents: []obs.ChromeEvent{
				{Name: "queue.wait", Ph: "X", Ts: 0, Dur: 500, Pid: 1, Tid: 1},
				{Name: "job.run", Ph: "X", Ts: 500, Dur: 1500, Pid: 1, Tid: 1},
			},
			DisplayTimeUnit: "ms",
			OtherData: map[string]string{
				"traceId":     traceID,
				"startUnixUs": strconv.FormatInt(time.Now().UnixMicro(), 10),
			},
		}
		json.NewEncoder(w).Encode(doc)
	})
	sr.ts = httptest.NewServer(mux)
	t.Cleanup(sr.ts.Close)
	return sr
}

func (s *stubReplica) member() Member { return Member{Name: s.name, URL: s.ts.URL} }

// testRouter builds an unstarted router over the stubs (tests drive
// probes explicitly with ProbeNow — no background goroutine, no timing
// dependence).
func testRouter(t *testing.T, stubs ...*stubReplica) *Router {
	t.Helper()
	members := make([]Member, len(stubs))
	for i, s := range stubs {
		members[i] = s.member()
	}
	rt, err := New(Config{
		Members:       members,
		ProbeInterval: 50 * time.Millisecond,
		RetryDelay:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rt.Prober().ProbeNow()
	return rt
}

func routerServer(t *testing.T, rt *Router) string {
	t.Helper()
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// ---- admission control ----------------------------------------------

// TestSaturationShedAndRecover is the admission-control acceptance
// test: a cluster whose every replica reports a full queue sheds new
// submissions with 429 + Retry-After (never a queue-timeout failure),
// and accepts again within one probe round after headroom returns.
func TestSaturationShedAndRecover(t *testing.T) {
	a := newStubReplica(t, "r0")
	b := newStubReplica(t, "r1")
	for _, s := range []*stubReplica{a, b} {
		s.queueDepth.Store(8) // depth == cap: saturated
		s.rejectSub.Store(true)
	}
	rt := testRouter(t, a, b)
	base := routerServer(t, rt)

	resp, body := post(t, base+"/v1/predict", `{"n":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated cluster: status %d body %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Load drops: one replica reports headroom again. One probe round
	// later the cluster must accept.
	b.queueDepth.Store(0)
	b.rejectSub.Store(false)
	rt.Prober().ProbeNow()

	resp, body = post(t, base+"/v1/predict", `{"n":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("recovered cluster: status %d body %s, want 202", resp.StatusCode, body)
	}
	var view struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(body, &view); view.ID == "" || !strings.Contains(view.ID, "r1") {
		t.Fatalf("job %q not served by the replica with headroom", view.ID)
	}
}

// TestSubmitRetriesAcrossMembers: a dead primary must not fail the
// submission — the forward falls through to the next ring member.
func TestSubmitRetriesAcrossMembers(t *testing.T) {
	a := newStubReplica(t, "r0")
	b := newStubReplica(t, "r1")
	// Kill a AFTER the probe round saw it ready, so the router discovers
	// the death on the forward itself.
	rt := testRouter(t, a, b)
	base := routerServer(t, rt)
	a.ts.Close()

	// Pick a body whose ring primary is the dead member, so the forward
	// must actually fail over (the router keys submissions by content
	// hash over the request path).
	reqBody := ""
	for i := 0; i < 10000; i++ {
		c := fmt.Sprintf(`{"n":%d}`, i)
		key := fmt.Sprintf("/v1/predict:%016x", hashBytes([]byte(c)))
		if rt.ring.Sequence(key)[0] == "r0" {
			reqBody = c
			break
		}
	}
	if reqBody == "" {
		t.Fatal("no test body hashes to r0")
	}

	resp, body := post(t, base+"/v1/predict", reqBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d body %s, want 202 via surviving member", resp.StatusCode, body)
	}
	var view struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(body, &view); !strings.Contains(view.ID, "r1") {
		t.Fatalf("job %q not acked by the survivor", view.ID)
	}
	// The failed forward marked r0 down without waiting for a probe.
	if rt.Prober().Ready("r0") {
		t.Fatal("dead member still marked ready after a failed forward")
	}
}

// TestNoReadyReplicas503: with every member down the router answers 503
// + Retry-After — "come back", not "gone".
func TestNoReadyReplicas503(t *testing.T) {
	a := newStubReplica(t, "r0")
	a.ready.Store(false)
	rt := testRouter(t, a)
	base := routerServer(t, rt)

	resp, body := post(t, base+"/v1/predict", `{"n":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("status %d body %s Retry-After %q, want 503 with Retry-After",
			resp.StatusCode, body, resp.Header.Get("Retry-After"))
	}
	// Router readiness mirrors the members: no ready replica → 503.
	rresp, _ := get(t, base+"/readyz")
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("router readyz %d with no ready members, want 503", rresp.StatusCode)
	}
	// Liveness is the router's own: always 200.
	hresp, _ := get(t, base+"/healthz")
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("router healthz %d, want 200", hresp.StatusCode)
	}
}

// ---- job affinity ---------------------------------------------------

// TestJobReadsFollowOwner: reads for a job go to the replica that acked
// it, and a router with a cold routing table locates the owner by
// scanning ready members.
func TestJobReadsFollowOwner(t *testing.T) {
	a := newStubReplica(t, "r0")
	b := newStubReplica(t, "r1")
	rt := testRouter(t, a, b)
	base := routerServer(t, rt)

	resp, body := post(t, base+"/v1/predict", `{"n":7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &view); err != nil || view.ID == "" {
		t.Fatalf("submit body %s", body)
	}

	resp, body = get(t, base+"/v1/jobs/"+view.ID)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), view.ID) {
		t.Fatalf("job read status %d body %s", resp.StatusCode, body)
	}

	// A second router (cold tables, same members) finds the job too.
	rt2 := testRouter(t, a, b)
	base2 := routerServer(t, rt2)
	resp, _ = get(t, base2+"/v1/jobs/"+view.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold-table job read status %d, want 200 via locate scan", resp.StatusCode)
	}

	resp, body = get(t, base+"/v1/jobs/j999999-nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d body %s", resp.StatusCode, body)
	}
}

// ---- health attribution ---------------------------------------------

// TestMarkDownIgnoresClientCancel: a forward error caused by the
// client's own disconnect (canceled context) must not mark a healthy
// replica Down — that would trigger spurious session takeovers. A
// genuine transport failure still does.
func TestMarkDownIgnoresClientCancel(t *testing.T) {
	a := newStubReplica(t, "r0")
	rt := testRouter(t, a)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gone := httptest.NewRequest(http.MethodGet, "/v1/jobs/x", nil).WithContext(ctx)
	rt.markDown("r0", gone, fmt.Errorf("forward: %w", context.Canceled))
	if !rt.prober.Ready("r0") {
		t.Fatal("client disconnect marked a healthy replica down")
	}

	// Same verdict when only the error says canceled (the inbound
	// request may already be torn down when the forward returns).
	live := httptest.NewRequest(http.MethodGet, "/v1/jobs/x", nil)
	rt.markDown("r0", live, context.Canceled)
	if !rt.prober.Ready("r0") {
		t.Fatal("canceled forward marked a healthy replica down")
	}

	rt.markDown("r0", live, errors.New("connection refused"))
	if rt.prober.Ready("r0") {
		t.Fatal("genuine transport failure did not mark the replica down")
	}
}

// ---- locate completeness --------------------------------------------

// TestSessionLocate404Vs503: "no such session" is only provable when
// every member answered the locate scan. With a member unreachable the
// same request must answer 503 + Retry-After, not 404 — the silent
// member may hold the session.
func TestSessionLocate404Vs503(t *testing.T) {
	a := newStubReplica(t, "r0")
	b := newStubReplica(t, "r1")
	rt := testRouter(t, a, b)
	base := routerServer(t, rt)

	resp, body := get(t, base+"/v1/sessions/cs-nowhere01")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("all members answered: status %d body %s, want 404", resp.StatusCode, body)
	}

	b.ready.Store(false)
	rt.Prober().ProbeNow()
	resp, body = get(t, base+"/v1/sessions/cs-nowhere01")
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("member silent: status %d body %s Retry-After %q, want 503 with Retry-After",
			resp.StatusCode, body, resp.Header.Get("Retry-After"))
	}
}

// TestJobLocate503WhenMemberSilent: same contract for jobs — an owner
// that is down holds its jobs in its WAL, so an unlocatable job is
// "come back", never "gone", until every member has answered.
func TestJobLocate503WhenMemberSilent(t *testing.T) {
	a := newStubReplica(t, "r0")
	b := newStubReplica(t, "r1")
	rt := testRouter(t, a, b)
	base := routerServer(t, rt)

	b.ready.Store(false)
	rt.Prober().ProbeNow()
	resp, body := get(t, base+"/v1/jobs/j000042-r1")
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("member silent: status %d body %s Retry-After %q, want 503 with Retry-After",
			resp.StatusCode, body, resp.Header.Get("Retry-After"))
	}
}

// ---- sealed-copy recovery -------------------------------------------

// TestSealedOwnerRecovery: when the recorded owner answers with a
// sealed copy (the fossil of an interrupted takeover), the router must
// complete the handover to a fresh owner and retry there — the client
// sees one normal answer, not the fossil's 409.
func TestSealedOwnerRecovery(t *testing.T) {
	a := newStubReplica(t, "r0")
	b := newStubReplica(t, "r1")
	rt := testRouter(t, a, b)
	base := routerServer(t, rt)
	const id = "cs-sealed01"
	a.putSession(id, "sealed")
	rt.mu.Lock()
	rt.sessOwner[id] = sessRoute{owner: "r0"}
	rt.mu.Unlock()

	resp, body := post(t, base+"/v1/sessions/"+id+"/edits", `{"op":"param"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edit against sealed owner: status %d body %s, want 200 after recovery", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Session-Sealed") != "" {
		t.Fatal("recovered response still carries the sealed flag")
	}
	if n := b.adoptions.Load(); n != 1 {
		t.Fatalf("successor ran %d takeovers, want 1", n)
	}
	if src, _ := b.takeoverSource.Load().(string); src != a.ts.URL {
		t.Fatalf("takeover source %q, want the sealed owner %q", src, a.ts.URL)
	}
	rt.mu.Lock()
	owner := rt.sessOwner[id].owner
	rt.mu.Unlock()
	if owner != "r1" {
		t.Fatalf("routing table owner %q after recovery, want r1", owner)
	}
}

// TestColdLocateRecoversSealedFossil: a router with a cold routing
// table (restart) whose locate scan finds only a sealed copy must
// finish the interrupted handover instead of 503ing forever.
func TestColdLocateRecoversSealedFossil(t *testing.T) {
	a := newStubReplica(t, "r0")
	b := newStubReplica(t, "r1")
	rt := testRouter(t, a, b)
	base := routerServer(t, rt)
	const id = "cs-fossil02"
	a.putSession(id, "sealed")

	resp, body := get(t, base+"/v1/sessions/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold locate of sealed fossil: status %d body %s, want 200 via handover", resp.StatusCode, body)
	}
	if n := b.adoptions.Load(); n != 1 {
		t.Fatalf("successor ran %d takeovers, want 1", n)
	}
}

// ---- metrics --------------------------------------------------------

// TestRouterMetricsExposition: the emiserve_cluster_* series are
// present, counted, and documented with # HELP and # TYPE.
func TestRouterMetricsExposition(t *testing.T) {
	a := newStubReplica(t, "r0")
	b := newStubReplica(t, "r1")
	b.ready.Store(false)
	rt := testRouter(t, a, b)
	base := routerServer(t, rt)

	post(t, base+"/v1/predict", `{"n":1}`) // one forward

	resp, body := get(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`emiserve_cluster_members{state="ready"} 1`,
		`emiserve_cluster_members{state="notready"} 1`,
		`emiserve_cluster_members{state="down"} 0`,
		"emiserve_cluster_queue_depth",
		"emiserve_cluster_queue_cap",
		"emiserve_cluster_forwards_total 1",
		"emiserve_cluster_retries_total",
		"emiserve_cluster_shed_total",
		"emiserve_cluster_unavailable_total",
		"emiserve_cluster_bad_gateway_total",
		"emiserve_cluster_takeovers_total",
		"emiserve_cluster_sessions_total",
		`emiserve_cluster_probe_rtt_seconds{member="r0"}`,
		`emiserve_cluster_probe_rtt_seconds{member="r1"}`,
		`emiserve_cluster_takeover_outcomes_total{result="adopted"} 0`,
		`emiserve_cluster_takeover_outcomes_total{result="failed"} 0`,
		`emiserve_cluster_admission_rejected_total{reason="saturated"} 0`,
		`emiserve_cluster_admission_rejected_total{reason="no_ready"} 0`,
		`emiserve_cluster_forward_seconds_bucket{route="predict",outcome="ok",le="+Inf"} 1`,
		"emiserve_cluster_takeover_phase_seconds",
		`emiserve_cluster_scrape_ok{replica="r0"}`,
		`emiserve_cluster_scrape_ok{replica="r1"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Every exposed family carries HELP and TYPE (histogram series
	// belong to the family named without the _bucket/_sum/_count
	// suffix).
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fam := line[:strings.IndexAny(line, "{ ")]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			fam = strings.TrimSuffix(fam, suffix)
		}
		if !strings.Contains(text, "# HELP "+fam+" ") {
			t.Errorf("family %s has no HELP line", fam)
		}
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("family %s has no TYPE line", fam)
		}
	}
}

// ---- plumbing -------------------------------------------------------

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}
