package cluster

import (
	"encoding/json"
	"io"
	"net/http"

	"repro/internal/obs"
)

// Cluster trace assembly: GET /cluster/trace/{job} merges the router's
// per-request trace (route, forwards, backoff, takeover phases) with
// the owning replica's /debug/trace/{job} fragment into one Chrome
// trace_event document — one process lane per member, all on the
// router's clock. The two processes share a trace ID because roundTrip
// injects the router trace's traceparent and the replica adopts it, so
// the merged document is one distributed trace, not two glued files.

// routerTraceCap bounds the job → request-trace table. Request traces
// are small (tens of spans) but keep their span slices alive, so the
// cap is much lower than the job-route cap; an evicted trace degrades
// /cluster/trace/{job} to the replica fragment alone.
const routerTraceCap = 512

// recordJobTrace remembers the request trace that carried a job
// submission, keyed by the job ID the replica acknowledged.
func (rt *Router) recordJobTrace(id string, tr *obs.Trace) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.jobTrace[id]; !ok {
		rt.traceFIFO = append(rt.traceFIFO, id)
		for len(rt.traceFIFO) > routerTraceCap {
			delete(rt.jobTrace, rt.traceFIFO[0])
			rt.traceFIFO = rt.traceFIFO[1:]
		}
	}
	rt.jobTrace[id] = tr
}

func (rt *Router) jobTraceOf(id string) *obs.Trace {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.jobTrace[id]
}

// fetchReplicaTrace pulls the owner's /debug/trace fragment for a job;
// nil when the owner is unknown, unreachable, or has no trace.
func (rt *Router) fetchReplicaTrace(r *http.Request, owner, id string) *obs.ChromeDoc {
	if owner == "" || !rt.prober.Ready(owner) {
		return nil
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		rt.prober.URL(owner)+"/debug/trace/"+id, nil)
	if err != nil {
		return nil
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.markDown(owner, r, err)
		return nil
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var d obs.ChromeDoc
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&d); err != nil {
		return nil
	}
	return &d
}

// clusterTraceHandler assembles the cluster-wide trace of one job. The
// replica fragment is shifted onto the router's clock using both
// documents' startUnixUs anchors, then given its own process lane
// (pid per ring position, process_name = member name); the router's
// own spans ride on pid 1 as "emirouter".
func (rt *Router) clusterTraceHandler(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr := rt.jobTraceOf(id)
	owner := rt.jobOwnerOf(id)
	if owner == "" {
		owner, _ = rt.locateJob(r, id)
	}
	frag := rt.fetchReplicaTrace(r, owner, id)
	if tr == nil && frag == nil {
		writeError(w, http.StatusNotFound, "cluster: no trace for job "+id)
		return
	}
	var docs []obs.ChromeDoc
	var anchorUs int64
	haveAnchor := false
	if tr != nil {
		d := tr.ChromeDoc()
		if v, ok := d.StartUnixUs(); ok {
			anchorUs, haveAnchor = v, true
		}
		d.SetProcess(1, "emirouter")
		docs = append(docs, d)
	}
	if frag != nil {
		if v, ok := frag.StartUnixUs(); ok && haveAnchor {
			frag.Shift(float64(v - anchorUs))
		}
		pid := 2
		for i, name := range rt.ring.Members() {
			if name == owner {
				pid = 2 + i
				break
			}
		}
		frag.SetProcess(pid, owner)
		docs = append(docs, *frag)
	}
	writeJSON(w, http.StatusOK, obs.MergeChromeDocs(docs...))
}
