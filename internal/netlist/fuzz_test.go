package netlist

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text through the parser and checks two
// invariants on every input the parser accepts:
//
//  1. Circuit.String renders a form the parser accepts again (the text
//     format is self-hosting), and
//  2. that normalized form is a fixed point: writing the re-parsed
//     circuit reproduces it byte for byte.
//
// Inputs the parser rejects only have to fail cleanly (no panic, which
// the fuzz driver reports by itself).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"* buck stage\nR1 vin vdd 0.2\nL1 vdd sw 22u\nC1 sw 0 1u\n.end\n",
		"V1 vin 0 DC 12\nI1 vin 0 AC 1 90\nR1 vin 0 50\n",
		"Vsw sw 0 PULSE(0 12 0 30n 30n 2u 5u)\nRl sw 0 1k\n",
		"L1 a 0 15n\nL2 b 0 15n\nK12 L1 L2 0.03\nR1 a b 1\n",
		"S1 a 0 0.1 1meg SCHED(0 5u 2u)\nD1 a 0 0.1 1e6\nR1 a 0 1\n",
		"# comment title\nR1 n1 0 4.7kOhm\nC1 n1 0 10uF\n",
		"V1 a 0 DC 0\nR1 a 0 1\n",
		"R1 a 0 1e-3\nR2 a 0 1E6\nR3 a 0 .5\n.END\n",
		"",
		"R1 a 0\n",
		"X1 a 0 5\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		c, err := ParseString(in)
		if err != nil {
			return // rejected inputs just must not panic
		}
		s1 := c.String()
		c2, err := ParseString(s1)
		if err != nil {
			t.Fatalf("rendered form rejected: %v\ninput: %q\nrendered: %q", err, in, s1)
		}
		s2 := c2.String()
		if s1 != s2 {
			t.Fatalf("String not a fixed point:\nfirst:  %q\nsecond: %q\ninput:  %q", s1, s2, in)
		}
		if len(c2.Elements) != len(c.Elements) {
			t.Fatalf("element count changed: %d -> %d for %q", len(c.Elements), len(c2.Elements), in)
		}
	})
}

// TestStringRoundTripsDegenerateSources pins the corner the fuzzer found
// first: sources whose every parameter is zero still need a DC clause to
// stay parseable.
func TestStringRoundTripsDegenerateSources(t *testing.T) {
	t.Parallel()
	c := &Circuit{}
	c.AddV("V1", "a", "0", Source{})
	c.AddI("I1", "a", "0", Source{})
	c.AddR("R1", "a", "0", 1)
	s := c.String()
	if !strings.Contains(s, "V1 a 0 DC 0") || !strings.Contains(s, "I1 a 0 DC 0") {
		t.Fatalf("zero sources rendered without a clause:\n%s", s)
	}
	if _, err := ParseString(s); err != nil {
		t.Fatalf("round-trip failed: %v\n%s", err, s)
	}
}
