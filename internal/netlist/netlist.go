// Package netlist provides the circuit data model of the EMI prediction
// flow: a SPICE-like netlist of passive elements, independent sources,
// switches and diodes, including the mutual-inductance (K) elements through
// which the PEEC coupling results enter the circuit simulation.
package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates the element types.
type Kind int

// Element kinds.
const (
	R  Kind = iota // resistor
	L              // inductor
	C              // capacitor
	K              // mutual coupling between two inductors
	V              // independent voltage source
	I              // independent current source
	SW             // time-controlled switch (Ron/Roff)
	D              // diode (ideal switched resistance)
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case R:
		return "R"
	case L:
		return "L"
	case C:
		return "C"
	case K:
		return "K"
	case V:
		return "V"
	case I:
		return "I"
	case SW:
		return "S"
	case D:
		return "D"
	}
	return "?"
}

// Pulse describes a SPICE PULSE source: the trapezoidal switching waveform
// whose spectrum drives the conducted-emission prediction.
type Pulse struct {
	V1, V2 float64 // low and high level
	Delay  float64
	Rise   float64
	Fall   float64
	Width  float64 // time at V2 (excluding edges)
	Period float64
}

// At evaluates the pulse at time t.
func (p *Pulse) At(t float64) float64 {
	if p.Period <= 0 {
		return p.V1
	}
	t -= p.Delay
	if t < 0 {
		return p.V1
	}
	for t >= p.Period {
		t -= p.Period
	}
	switch {
	case t < p.Rise:
		if p.Rise == 0 {
			return p.V2
		}
		return p.V1 + (p.V2-p.V1)*t/p.Rise
	case t < p.Rise+p.Width:
		return p.V2
	case t < p.Rise+p.Width+p.Fall:
		if p.Fall == 0 {
			return p.V1
		}
		return p.V2 + (p.V1-p.V2)*(t-p.Rise-p.Width)/p.Fall
	default:
		return p.V1
	}
}

// Source holds the excitation of a V or I element.
type Source struct {
	DC      float64
	ACMag   float64
	ACPhase float64 // radians
	Pulse   *Pulse
}

// Schedule describes the on/off timing of a switch: it is on while
// fmod(t-Delay, Period) < OnTime.
type Schedule struct {
	Delay  float64
	Period float64
	OnTime float64
}

// On reports whether the switch conducts at time t.
func (s *Schedule) On(t float64) bool {
	if s == nil || s.Period <= 0 {
		return false
	}
	t -= s.Delay
	if t < 0 {
		return false
	}
	for t >= s.Period {
		t -= s.Period
	}
	return t < s.OnTime
}

// Element is one netlist entry.
type Element struct {
	Kind  Kind
	Name  string
	N1    string // positive node (current flows N1 → N2 inside the element)
	N2    string
	Value float64 // R: Ω, L: H, C: F, SW/D: on-resistance Ω

	// K elements couple two named inductors with factor Coup.
	LA, LB string
	Coup   float64

	Src *Source // V and I elements

	// Switches and diodes.
	Roff  float64
	Sched *Schedule
}

// Circuit is an ordered list of elements plus a title.
type Circuit struct {
	Title    string
	Elements []*Element
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Title: c.Title, Elements: make([]*Element, len(c.Elements))}
	for i, e := range c.Elements {
		ce := *e
		if e.Src != nil {
			s := *e.Src
			if e.Src.Pulse != nil {
				p := *e.Src.Pulse
				s.Pulse = &p
			}
			ce.Src = &s
		}
		if e.Sched != nil {
			sc := *e.Sched
			ce.Sched = &sc
		}
		out.Elements[i] = &ce
	}
	return out
}

// Find returns the element with the given name, or nil.
func (c *Circuit) Find(name string) *Element {
	for _, e := range c.Elements {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// add appends an element after checking for duplicate names.
func (c *Circuit) add(e *Element) *Element {
	c.Elements = append(c.Elements, e)
	return e
}

// AddR adds a resistor.
func (c *Circuit) AddR(name, n1, n2 string, ohms float64) *Element {
	return c.add(&Element{Kind: R, Name: name, N1: n1, N2: n2, Value: ohms})
}

// AddL adds an inductor.
func (c *Circuit) AddL(name, n1, n2 string, henry float64) *Element {
	return c.add(&Element{Kind: L, Name: name, N1: n1, N2: n2, Value: henry})
}

// AddC adds a capacitor.
func (c *Circuit) AddC(name, n1, n2 string, farad float64) *Element {
	return c.add(&Element{Kind: C, Name: name, N1: n1, N2: n2, Value: farad})
}

// AddK adds a mutual coupling of factor k between the named inductors.
func (c *Circuit) AddK(name, la, lb string, k float64) *Element {
	return c.add(&Element{Kind: K, Name: name, LA: la, LB: lb, Coup: k})
}

// AddV adds an independent voltage source.
func (c *Circuit) AddV(name, n1, n2 string, src Source) *Element {
	s := src
	return c.add(&Element{Kind: V, Name: name, N1: n1, N2: n2, Src: &s})
}

// AddI adds an independent current source (current flows N1 → N2 through
// the source, i.e. it pushes current into N2).
func (c *Circuit) AddI(name, n1, n2 string, src Source) *Element {
	s := src
	return c.add(&Element{Kind: I, Name: name, N1: n1, N2: n2, Src: &s})
}

// AddSwitch adds a time-scheduled switch with the given on/off resistances.
func (c *Circuit) AddSwitch(name, n1, n2 string, ron, roff float64, sched Schedule) *Element {
	sc := sched
	return c.add(&Element{Kind: SW, Name: name, N1: n1, N2: n2, Value: ron, Roff: roff, Sched: &sc})
}

// AddDiode adds an ideal switched-resistance diode (anode N1, cathode N2).
func (c *Circuit) AddDiode(name, n1, n2 string, ron, roff float64) *Element {
	return c.add(&Element{Kind: D, Name: name, N1: n1, N2: n2, Value: ron, Roff: roff})
}

// SetCoupling inserts or updates the K element between two inductors.
func (c *Circuit) SetCoupling(la, lb string, k float64) *Element {
	for _, e := range c.Elements {
		if e.Kind == K && ((e.LA == la && e.LB == lb) || (e.LA == lb && e.LB == la)) {
			e.Coup = k
			return e
		}
	}
	return c.AddK("K_"+la+"_"+lb, la, lb, k)
}

// RemoveCouplings deletes all K elements, producing the "neglecting magnetic
// couplings" variant of the prediction (the paper's Figure 13).
func (c *Circuit) RemoveCouplings() {
	out := c.Elements[:0]
	for _, e := range c.Elements {
		if e.Kind != K {
			out = append(out, e)
		}
	}
	c.Elements = out
}

// Inductors returns the names of all inductors, in netlist order.
func (c *Circuit) Inductors() []string {
	var out []string
	for _, e := range c.Elements {
		if e.Kind == L {
			out = append(out, e.Name)
		}
	}
	return out
}

// Nodes returns all node names except ground ("0"), sorted.
func (c *Circuit) Nodes() []string {
	set := map[string]bool{}
	for _, e := range c.Elements {
		if e.Kind == K {
			continue
		}
		for _, n := range []string{e.N1, e.N2} {
			if n != "" && n != "0" {
				set[n] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Validate checks structural consistency: unique names, K elements
// referencing existing inductors with |k| <= 1, positive passive values and
// a ground reference.
func (c *Circuit) Validate() error {
	names := map[string]bool{}
	hasGround := false
	for _, e := range c.Elements {
		if e.Name == "" {
			return fmt.Errorf("netlist: element with empty name (kind %v)", e.Kind)
		}
		if names[e.Name] {
			return fmt.Errorf("netlist: duplicate element name %q", e.Name)
		}
		names[e.Name] = true
		// Names must follow the SPICE convention — kind letter first — or
		// the text form would not parse back to the same circuit.
		if got := strings.ToUpper(e.Name[:1]); got != e.Kind.String() {
			return fmt.Errorf("netlist: element %q must start with %q", e.Name, e.Kind.String())
		}
		switch e.Kind {
		case R, L, C:
			if e.Value <= 0 {
				return fmt.Errorf("netlist: %s has non-positive value %g", e.Name, e.Value)
			}
		case SW, D:
			if e.Value <= 0 || e.Roff <= 0 {
				return fmt.Errorf("netlist: %s needs positive on/off resistances", e.Name)
			}
		case V, I:
			if e.Src == nil {
				return fmt.Errorf("netlist: source %s has no excitation", e.Name)
			}
		}
		if e.Kind != K && (e.N1 == "0" || e.N2 == "0") {
			hasGround = true
		}
	}
	for _, e := range c.Elements {
		if e.Kind != K {
			continue
		}
		la, lb := c.Find(e.LA), c.Find(e.LB)
		if la == nil || la.Kind != L {
			return fmt.Errorf("netlist: %s couples unknown inductor %q", e.Name, e.LA)
		}
		if lb == nil || lb.Kind != L {
			return fmt.Errorf("netlist: %s couples unknown inductor %q", e.Name, e.LB)
		}
		if e.LA == e.LB {
			return fmt.Errorf("netlist: %s couples %q with itself", e.Name, e.LA)
		}
		if e.Coup < -1 || e.Coup > 1 {
			return fmt.Errorf("netlist: %s has |k| > 1 (%g)", e.Name, e.Coup)
		}
	}
	if len(c.Elements) > 0 && !hasGround {
		return fmt.Errorf("netlist: no element connects to ground node 0")
	}
	return nil
}

// String renders the circuit in the text format understood by Parse.
func (c *Circuit) String() string {
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "* %s\n", c.Title)
	}
	for _, e := range c.Elements {
		switch e.Kind {
		case R, L, C:
			fmt.Fprintf(&b, "%s %s %s %g\n", e.Name, e.N1, e.N2, e.Value)
		case K:
			fmt.Fprintf(&b, "%s %s %s %g\n", e.Name, e.LA, e.LB, e.Coup)
		case V, I:
			fmt.Fprintf(&b, "%s %s %s", e.Name, e.N1, e.N2)
			// An all-zero source still needs one clause: a bare
			// "Vname n1 n2" line would not parse back.
			if e.Src.DC != 0 || (e.Src.ACMag == 0 && e.Src.Pulse == nil) {
				fmt.Fprintf(&b, " DC %g", e.Src.DC)
			}
			if e.Src.ACMag != 0 {
				fmt.Fprintf(&b, " AC %g %g", e.Src.ACMag, e.Src.ACPhase)
			}
			if p := e.Src.Pulse; p != nil {
				fmt.Fprintf(&b, " PULSE(%g %g %g %g %g %g %g)",
					p.V1, p.V2, p.Delay, p.Rise, p.Fall, p.Width, p.Period)
			}
			b.WriteString("\n")
		case SW:
			fmt.Fprintf(&b, "%s %s %s %g %g SCHED(%g %g %g)\n",
				e.Name, e.N1, e.N2, e.Value, e.Roff,
				e.Sched.Delay, e.Sched.Period, e.Sched.OnTime)
		case D:
			fmt.Fprintf(&b, "%s %s %s %g %g\n", e.Name, e.N1, e.N2, e.Value, e.Roff)
		}
	}
	b.WriteString(".end\n")
	return b.String()
}
