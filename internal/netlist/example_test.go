package netlist_test

import (
	"fmt"

	"repro/internal/netlist"
)

// Circuits round-trip through the SPICE-like text format; engineering
// suffixes are accepted on input.
func ExampleParseString() {
	ckt, err := netlist.ParseString(`* demo filter
V1 in 0 AC 1
L1 in out 10u
C1 out 0 100n
R1 out 0 50
K1 L1 L1x 0.0
L1x aux 0 1u
.end
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("title:", ckt.Title)
	fmt.Println("elements:", len(ckt.Elements))
	fmt.Printf("L1 = %.0f µH\n", ckt.Find("L1").Value*1e6)
	// Output:
	// title: demo filter
	// elements: 6
	// L1 = 10 µH
}

func ExampleCircuit_SetCoupling() {
	ckt := &netlist.Circuit{}
	ckt.AddL("L1", "a", "0", 1e-6)
	ckt.AddL("L2", "b", "0", 1e-6)
	ckt.SetCoupling("L1", "L2", 0.05) // insert
	ckt.SetCoupling("L2", "L1", 0.08) // update the same pair
	for _, e := range ckt.Elements {
		if e.Kind == netlist.K {
			fmt.Printf("%s k=%.2f\n", e.Name, e.Coup)
		}
	}
	// Output:
	// K_L1_L2 k=0.08
}
