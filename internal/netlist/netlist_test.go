package netlist

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestParseValueSuffixes(t *testing.T) {
	t.Parallel()
	cases := []struct {
		in   string
		want float64
	}{
		{"10", 10},
		{"1.5u", 1.5e-6},
		{"1.5uF", 1.5e-6},
		{"100n", 1e-7},
		{"22p", 22e-12},
		{"3f", 3e-15},
		{"4.7k", 4700},
		{"4.7kOhm", 4700},
		{"1meg", 1e6},
		{"2g", 2e9},
		{"1t", 1e12},
		{"5m", 5e-3},
		{"-12", -12},
		{"1e-6", 1e-6},
		{"2.5e3", 2500},
		{"3V", 3},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-15*math.Abs(c.want) {
			t.Errorf("ParseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "--3"} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q) should fail", bad)
		}
	}
}

func TestPulseWaveform(t *testing.T) {
	t.Parallel()
	p := &Pulse{V1: 0, V2: 10, Delay: 1e-6, Rise: 1e-7, Fall: 1e-7, Width: 4e-7, Period: 1e-6}
	cases := []struct {
		t    float64
		want float64
	}{
		{0, 0},             // before delay
		{1e-6, 0},          // start of rise
		{1e-6 + 5e-8, 5},   // mid rise
		{1e-6 + 1e-7, 10},  // top start
		{1e-6 + 3e-7, 10},  // top
		{1e-6 + 5e-7, 10},  // fall start
		{1e-6 + 5.5e-7, 5}, // mid fall
		{1e-6 + 7e-7, 0},   // low
		{2e-6 + 5e-8, 5},   // periodic repeat, mid rise
	}
	for _, c := range cases {
		if got := p.At(c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Pulse.At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	// Zero-period pulse stays at V1.
	if (&Pulse{V1: 3}).At(1) != 3 {
		t.Error("zero-period pulse")
	}
	// Zero rise/fall are hard edges.
	hard := &Pulse{V1: 0, V2: 1, Width: 0.5, Period: 1}
	if hard.At(0) != 1 || hard.At(0.6) != 0 {
		t.Error("hard-edge pulse")
	}
}

func TestScheduleOn(t *testing.T) {
	t.Parallel()
	s := &Schedule{Delay: 1, Period: 10, OnTime: 3}
	cases := []struct {
		t    float64
		want bool
	}{
		{0, false}, {1, true}, {3.9, true}, {4, false}, {10.5, false},
		{11, true}, {13.5, true}, {14.1, false},
	}
	for _, c := range cases {
		if got := s.On(c.t); got != c.want {
			t.Errorf("On(%v) = %v", c.t, got)
		}
	}
	var nilSched *Schedule
	if nilSched.On(5) {
		t.Error("nil schedule must be off")
	}
}

func TestBuildAndValidate(t *testing.T) {
	t.Parallel()
	c := &Circuit{Title: "pi filter"}
	c.AddV("V1", "in", "0", Source{ACMag: 1})
	c.AddR("R1", "in", "a", 0.1)
	c.AddC("C1", "a", "0", 1e-6)
	c.AddL("L1", "a", "b", 10e-6)
	c.AddC("C2", "b", "0", 1e-6)
	c.AddL("L2", "b", "out", 1e-6)
	c.AddR("RL", "out", "0", 50)
	c.AddK("K1", "L1", "L2", 0.05)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	nodes := c.Nodes()
	want := []string{"a", "b", "in", "out"}
	if len(nodes) != len(want) {
		t.Fatalf("nodes = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Errorf("nodes = %v, want %v", nodes, want)
		}
	}
	if inds := c.Inductors(); len(inds) != 2 || inds[0] != "L1" {
		t.Errorf("Inductors = %v", inds)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	t.Parallel()
	mk := func(f func(c *Circuit)) error {
		c := &Circuit{}
		c.AddR("R1", "a", "0", 1)
		f(c)
		return c.Validate()
	}
	if err := mk(func(c *Circuit) { c.AddR("R1", "b", "0", 1) }); err == nil {
		t.Error("duplicate name not caught")
	}
	if err := mk(func(c *Circuit) { c.AddC("C1", "a", "0", -1) }); err == nil {
		t.Error("negative value not caught")
	}
	if err := mk(func(c *Circuit) { c.AddK("K1", "L1", "L2", 0.1) }); err == nil {
		t.Error("K with unknown inductors not caught")
	}
	if err := mk(func(c *Circuit) {
		c.AddL("L1", "a", "0", 1e-6)
		c.AddL("L2", "a", "0", 1e-6)
		c.AddK("K1", "L1", "L2", 1.5)
	}); err == nil {
		t.Error("|k|>1 not caught")
	}
	if err := mk(func(c *Circuit) {
		c.AddL("L1", "a", "0", 1e-6)
		c.AddK("K1", "L1", "L1", 0.5)
	}); err == nil {
		t.Error("self-coupling not caught")
	}
	// No ground.
	c := &Circuit{}
	c.AddR("R1", "a", "b", 1)
	if err := c.Validate(); err == nil {
		t.Error("missing ground not caught")
	}
}

func TestSetCouplingUpserts(t *testing.T) {
	t.Parallel()
	c := &Circuit{}
	c.AddL("L1", "a", "0", 1e-6)
	c.AddL("L2", "b", "0", 1e-6)
	c.SetCoupling("L1", "L2", 0.1)
	c.SetCoupling("L2", "L1", 0.2) // reversed order updates the same K
	count := 0
	for _, e := range c.Elements {
		if e.Kind == K {
			count++
			if e.Coup != 0.2 {
				t.Errorf("k = %v, want 0.2", e.Coup)
			}
		}
	}
	if count != 1 {
		t.Errorf("K count = %d", count)
	}
}

func TestRemoveCouplings(t *testing.T) {
	t.Parallel()
	c := &Circuit{}
	c.AddL("L1", "a", "0", 1e-6)
	c.AddL("L2", "b", "0", 1e-6)
	c.AddK("K1", "L1", "L2", 0.1)
	c.RemoveCouplings()
	for _, e := range c.Elements {
		if e.Kind == K {
			t.Fatal("K element survived RemoveCouplings")
		}
	}
	if len(c.Elements) != 2 {
		t.Errorf("elements = %d", len(c.Elements))
	}
}

func TestCloneIsDeep(t *testing.T) {
	t.Parallel()
	c := &Circuit{}
	c.AddV("V1", "in", "0", Source{DC: 5, Pulse: &Pulse{V2: 10, Period: 1e-6, Width: 5e-7}})
	c.AddSwitch("S1", "in", "out", 0.1, 1e9, Schedule{Period: 1e-6, OnTime: 5e-7})
	c.AddR("RL", "out", "0", 50)
	cl := c.Clone()
	cl.Find("V1").Src.DC = 99
	cl.Find("V1").Src.Pulse.V2 = 42
	cl.Find("S1").Sched.OnTime = 1
	if c.Find("V1").Src.DC != 5 || c.Find("V1").Src.Pulse.V2 != 10 {
		t.Error("Clone shares Source")
	}
	if c.Find("S1").Sched.OnTime != 5e-7 {
		t.Error("Clone shares Schedule")
	}
}

func TestRoundTrip(t *testing.T) {
	t.Parallel()
	c := &Circuit{Title: "buck"}
	c.AddV("Vin", "in", "0", Source{DC: 12})
	c.AddV("Vg", "g", "0", Source{Pulse: &Pulse{V1: 0, V2: 1, Rise: 1e-8, Fall: 1e-8, Width: 2e-6, Period: 5e-6}})
	c.AddSwitch("S1", "in", "sw", 0.05, 1e8, Schedule{Period: 5e-6, OnTime: 2e-6})
	c.AddDiode("D1", "0", "sw", 0.02, 1e7)
	c.AddL("L1", "sw", "out", 47e-6)
	c.AddC("C1", "out", "0", 100e-6)
	c.AddR("RL", "out", "0", 6)
	c.AddL("L2", "in", "x", 1e-6)
	c.AddK("K1", "L1", "L2", 0.03)
	c.AddI("Inoise", "sw", "0", Source{ACMag: 0.5, ACPhase: 1.2})

	text := c.String()
	got, err := ParseString(text)
	if err != nil {
		t.Fatalf("Parse(String): %v\n%s", err, text)
	}
	if len(got.Elements) != len(c.Elements) {
		t.Fatalf("element count %d != %d", len(got.Elements), len(c.Elements))
	}
	if got.Title != "buck" {
		t.Errorf("title = %q", got.Title)
	}
	// Spot-check a few round-tripped values.
	if got.Find("L1").Value != 47e-6 {
		t.Errorf("L1 = %v", got.Find("L1").Value)
	}
	if got.Find("K1").Coup != 0.03 {
		t.Errorf("K1 = %v", got.Find("K1").Coup)
	}
	p := got.Find("Vg").Src.Pulse
	if p == nil || p.Period != 5e-6 || p.Width != 2e-6 {
		t.Errorf("Vg pulse = %+v", p)
	}
	s := got.Find("S1")
	if s.Value != 0.05 || s.Roff != 1e8 || s.Sched.OnTime != 2e-6 {
		t.Errorf("S1 = %+v", s)
	}
	d := got.Find("D1")
	if d.Value != 0.02 || d.Roff != 1e7 {
		t.Errorf("D1 = %+v", d)
	}
	i := got.Find("Inoise")
	if i.Src.ACMag != 0.5 || i.Src.ACPhase != 1.2 {
		t.Errorf("Inoise = %+v", i.Src)
	}
}

func TestParseErrors(t *testing.T) {
	t.Parallel()
	bad := []string{
		"R1 a 0",                    // missing value
		"R1 a 0 xyz",                // bad value
		"X1 a 0 5",                  // unknown prefix
		"S1 a 0 0.1 1e9",            // missing SCHED
		"S1 a 0 0.1 1e9 SCHED(1 2)", // short SCHED
		"V1 a 0 PULSE(1 2 3)",       // short PULSE
		"K1 L1 L2 0.5\nR1 a 0 5",    // K referencing unknown inductors
	}
	for _, s := range bad {
		if _, err := ParseString(s + "\n.end\n"); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseNeverPanics(t *testing.T) {
	t.Parallel()
	// The parser must reject arbitrary garbage with errors, not panics.
	rng := rand.New(rand.NewSource(99))
	alphabet := []byte("RLCKVISD abc0123().,-+eEuUnNpP\n\t*#")
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(120)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse panicked on %q: %v", buf, r)
				}
			}()
			_, _ = ParseString(string(buf))
		}()
	}
}

func TestParseValueNeverPanics(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	alphabet := []byte("0123456789.eE+-uUnNpPkKmMgGtTfF ")
	for trial := 0; trial < 1000; trial++ {
		n := rng.Intn(20)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseValue panicked on %q: %v", buf, r)
				}
			}()
			_, _ = ParseValue(string(buf))
		}()
	}
}

func TestParseCommentsAndTitle(t *testing.T) {
	t.Parallel()
	src := `* my filter
; a comment
# another
R1 in 0 50
.end
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Title != "my filter" {
		t.Errorf("title = %q", c.Title)
	}
	if len(c.Elements) != 1 {
		t.Errorf("elements = %d", len(c.Elements))
	}
}

func TestTokenizeKeepsGroups(t *testing.T) {
	t.Parallel()
	got := tokenize("V1 a 0 PULSE(0 5 0 1n 1n 2u 5u)")
	if len(got) != 4 {
		t.Fatalf("tokens = %v", got)
	}
	if !strings.HasPrefix(got[3], "PULSE(") {
		t.Errorf("group token = %q", got[3])
	}
}
