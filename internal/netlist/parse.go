package netlist

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Parse reads a circuit in the SPICE-like text format produced by
// Circuit.String. Supported lines:
//
//   - comment                       (also lines starting with ';' or '#')
//     Rname n1 n2 value               resistor
//     Lname n1 n2 value               inductor
//     Cname n1 n2 value               capacitor
//     Kname La Lb k                   mutual coupling
//     Vname n1 n2 [DC v] [AC mag [ph]] [PULSE(v1 v2 d tr tf w per)]
//     Iname n1 n2 [DC v] [AC mag [ph]]
//     Sname n1 n2 ron roff SCHED(delay period ontime)
//     Dname n1 n2 ron roff            diode
//     .end                            terminator (optional)
//
// Values accept SPICE engineering suffixes (f p n u m k meg g t).
func Parse(r io.Reader) (*Circuit, error) {
	c := &Circuit{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch line[0] {
		case '*', ';', '#':
			if c.Title == "" {
				c.Title = strings.TrimSpace(line[1:])
			}
			continue
		}
		if strings.EqualFold(line, ".end") {
			break
		}
		if err := parseLine(c, line); err != nil {
			return nil, fmt.Errorf("netlist line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseString is Parse on a string.
func ParseString(s string) (*Circuit, error) {
	return Parse(strings.NewReader(s))
}

func parseLine(c *Circuit, line string) error {
	fields := tokenize(line)
	if len(fields) < 4 {
		return fmt.Errorf("too few fields in %q", line)
	}
	name := fields[0]
	switch strings.ToUpper(name[:1]) {
	case "R", "L", "C":
		v, err := ParseValue(fields[3])
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		kind := map[string]Kind{"R": R, "L": L, "C": C}[strings.ToUpper(name[:1])]
		c.add(&Element{Kind: kind, Name: name, N1: fields[1], N2: fields[2], Value: v})
	case "K":
		k, err := ParseValue(fields[3])
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		c.AddK(name, fields[1], fields[2], k)
	case "V", "I":
		src, err := parseSource(fields[3:])
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		kind := V
		if strings.ToUpper(name[:1]) == "I" {
			kind = I
		}
		c.add(&Element{Kind: kind, Name: name, N1: fields[1], N2: fields[2], Src: src})
	case "S":
		if len(fields) < 6 {
			return fmt.Errorf("%s: switch needs ron roff SCHED(...)", name)
		}
		ron, err := ParseValue(fields[3])
		if err != nil {
			return fmt.Errorf("%s ron: %w", name, err)
		}
		roff, err := ParseValue(fields[4])
		if err != nil {
			return fmt.Errorf("%s roff: %w", name, err)
		}
		args, ok := fnArgs(fields[5], "SCHED")
		if !ok || len(args) != 3 {
			return fmt.Errorf("%s: malformed SCHED", name)
		}
		c.add(&Element{
			Kind: SW, Name: name, N1: fields[1], N2: fields[2],
			Value: ron, Roff: roff,
			Sched: &Schedule{Delay: args[0], Period: args[1], OnTime: args[2]},
		})
	case "D":
		if len(fields) < 5 {
			return fmt.Errorf("%s: diode needs ron roff", name)
		}
		ron, err := ParseValue(fields[3])
		if err != nil {
			return fmt.Errorf("%s ron: %w", name, err)
		}
		roff, err := ParseValue(fields[4])
		if err != nil {
			return fmt.Errorf("%s roff: %w", name, err)
		}
		c.add(&Element{Kind: D, Name: name, N1: fields[1], N2: fields[2], Value: ron, Roff: roff})
	default:
		return fmt.Errorf("unknown element prefix in %q", name)
	}
	return nil
}

// parseSource interprets the tail of a V/I line.
func parseSource(fields []string) (*Source, error) {
	src := &Source{}
	i := 0
	for i < len(fields) {
		f := strings.ToUpper(fields[i])
		switch {
		case f == "DC":
			if i+1 >= len(fields) {
				return nil, fmt.Errorf("DC needs a value")
			}
			v, err := ParseValue(fields[i+1])
			if err != nil {
				return nil, err
			}
			src.DC = v
			i += 2
		case f == "AC":
			if i+1 >= len(fields) {
				return nil, fmt.Errorf("AC needs a magnitude")
			}
			v, err := ParseValue(fields[i+1])
			if err != nil {
				return nil, err
			}
			src.ACMag = v
			i += 2
			if i < len(fields) {
				if ph, err := ParseValue(fields[i]); err == nil {
					src.ACPhase = ph
					i++
				}
			}
		case strings.HasPrefix(f, "PULSE"):
			args, ok := fnArgs(fields[i], "PULSE")
			if !ok || len(args) != 7 {
				return nil, fmt.Errorf("malformed PULSE in %q", fields[i])
			}
			src.Pulse = &Pulse{
				V1: args[0], V2: args[1], Delay: args[2],
				Rise: args[3], Fall: args[4], Width: args[5], Period: args[6],
			}
			i++
		default:
			// Bare number: treat as DC, SPICE style.
			v, err := ParseValue(fields[i])
			if err != nil {
				return nil, fmt.Errorf("unexpected token %q", fields[i])
			}
			src.DC = v
			i++
		}
	}
	return src, nil
}

// tokenize splits a line into fields but keeps FN(...) groups together even
// when they contain spaces.
func tokenize(line string) []string {
	var out []string
	var cur strings.Builder
	depth := 0
	for _, r := range line {
		switch {
		case r == '(':
			depth++
			cur.WriteRune(r)
		case r == ')':
			depth--
			cur.WriteRune(r)
		case (r == ' ' || r == '\t' || r == ',') && depth == 0:
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// fnArgs extracts the numeric arguments of NAME(a b c ...).
func fnArgs(tok, name string) ([]float64, bool) {
	up := strings.ToUpper(tok)
	if !strings.HasPrefix(up, name+"(") || !strings.HasSuffix(tok, ")") {
		return nil, false
	}
	inner := tok[len(name)+1 : len(tok)-1]
	parts := strings.FieldsFunc(inner, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' })
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := ParseValue(p)
		if err != nil {
			return nil, false
		}
		out = append(out, v)
	}
	return out, true
}

// ParseValue parses a number with optional SPICE engineering suffix:
// f(-15) p(-12) n(-9) u(-6) m(-3) k(3) meg(6) g(9) t(12). Any trailing
// unit letters after the suffix are ignored (e.g. "10uF", "5kOhm").
func ParseValue(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	low := strings.ToLower(s)
	// Longest numeric prefix.
	end := len(low)
	for end > 0 {
		if _, err := strconv.ParseFloat(low[:end], 64); err == nil {
			break
		}
		end--
	}
	if end == 0 {
		return 0, fmt.Errorf("unparseable value %q", s)
	}
	num, _ := strconv.ParseFloat(low[:end], 64)
	suffix := low[end:]
	mult := 1.0
	switch {
	case suffix == "":
		mult = 1
	case strings.HasPrefix(suffix, "meg"):
		mult = 1e6
	case strings.HasPrefix(suffix, "f"):
		mult = 1e-15
	case strings.HasPrefix(suffix, "p"):
		mult = 1e-12
	case strings.HasPrefix(suffix, "n"):
		mult = 1e-9
	case strings.HasPrefix(suffix, "u"):
		mult = 1e-6
	case strings.HasPrefix(suffix, "m"):
		mult = 1e-3
	case strings.HasPrefix(suffix, "k"):
		mult = 1e3
	case strings.HasPrefix(suffix, "g"):
		mult = 1e9
	case strings.HasPrefix(suffix, "t"):
		mult = 1e12
	default:
		// Unit-only suffix like "v" or "hz": ignore.
		mult = 1
	}
	v := num * mult
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}
