package obs

import (
	"context"
	"testing"
)

// BenchmarkSpanDisabled is the overhead contract's benchmark: a full
// Start/attr/End cycle with no trace attached must be a nil-check —
// ~0 allocs/op (TestSpanDisabledZeroAlloc enforces the 0).
func BenchmarkSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, sp := Start(ctx, "hot.path")
		sp.Int("n", int64(i))
		sp.End()
		_ = c
	}
}

// BenchmarkSpanEnabled measures the enabled path: span object, context
// value, record append — the cost a traced request pays per span.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTrace("bench")
	tr.SetCap(1 << 30)
	ctx := WithTrace(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, sp := Start(ctx, "hot.path")
		sp.Int("n", int64(i))
		sp.End()
		_ = c
	}
}
