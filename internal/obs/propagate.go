package obs

import (
	cryptorand "crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// Cross-process trace propagation: every Trace carries a 128-bit trace
// ID, rendered on the wire as a W3C Trace Context `traceparent` header
//
//	00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// (https://www.w3.org/TR/trace-context/). The router mints the ID with
// the root span of a request and injects the header on every forward;
// a replica that finds the header adopts the ID into the trace of the
// work the request creates, so the two processes' span collections
// merge into one timeline keyed by a single ID. Only the ID crosses
// the wire — span records stay in their owning process and are fetched
// separately (see /cluster/trace in internal/cluster).

// TraceparentHeader is the canonical W3C header name (HTTP headers are
// case-insensitive; the spec spells it lowercase).
const TraceparentHeader = "traceparent"

// TraceID is a 128-bit trace identity. The zero value means "no ID";
// NewTrace always mints a non-zero one.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID (the W3C
// spec forbids it on the wire).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID parses 32 hex digits into a TraceID. The all-zero ID is
// rejected, matching the wire spec.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("obs: trace ID must be 32 hex digits, got %d", len(s))
	}
	if _, err := hex.Decode(id[:], []byte(strings.ToLower(s))); err != nil {
		return TraceID{}, fmt.Errorf("obs: bad trace ID %q: %v", s, err)
	}
	if id.IsZero() {
		return TraceID{}, fmt.Errorf("obs: all-zero trace ID is invalid")
	}
	return id, nil
}

// mintTraceID returns a fresh random non-zero ID.
func mintTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		if _, err := cryptorand.Read(id[:]); err != nil {
			panic(fmt.Sprintf("obs: crypto/rand: %v", err))
		}
	}
	return id
}

// ID returns the trace's 128-bit identity.
func (t *Trace) ID() TraceID { return t.id }

// SetID adopts an inbound trace identity (e.g. parsed from a
// traceparent header), replacing the minted one so this process's spans
// join the caller's trace. A zero ID is ignored. Call before handing
// the trace out.
func (t *Trace) SetID(id TraceID) {
	if !id.IsZero() {
		t.id = id
	}
}

// Traceparent renders the trace's wire form: version 00, the trace ID,
// the root span as parent, flags 01 (sampled — a trace that exists is
// by definition being recorded).
func (t *Trace) Traceparent() string {
	return fmt.Sprintf("00-%s-%016x-01", t.id, t.root.id)
}

// ParseTraceparent extracts the trace ID from a traceparent header
// value. ok is false for anything malformed — a propagation header is
// advisory, so callers fall back to minting locally rather than
// erroring. Unknown future versions are accepted as long as the first
// two fields parse, per the spec's version-tolerance rule.
func ParseTraceparent(v string) (id TraceID, ok bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) < 4 {
		return TraceID{}, false
	}
	if len(parts[0]) != 2 || parts[0] == "ff" {
		return TraceID{}, false
	}
	if len(parts[2]) != 16 || parts[2] == "0000000000000000" {
		return TraceID{}, false
	}
	id, err := ParseTraceID(parts[1])
	if err != nil {
		return TraceID{}, false
	}
	return id, true
}
