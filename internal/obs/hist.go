package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram safe for concurrent Observe.
// Buckets are defined by ascending upper bounds; an implicit +Inf bucket
// catches the overflow. Counts and the sum are atomics, so the hot path
// never takes a lock.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last = +Inf overflow
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	total  atomic.Uint64
}

// NewHistogram creates a histogram over the given ascending upper
// bounds. Panics on an empty or unsorted bound list (a programming
// error, not an input error).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// ExpBuckets returns n strictly ascending bounds start, start·factor,
// start·factor², … — the standard exponential latency/alloc ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencySeconds is the default latency ladder: 1 ms … ~65 s in powers
// of two — wide enough for a queue wait and a full placement job alike.
var LatencySeconds = ExpBuckets(1e-3, 2, 17)

// AllocBytes is the default allocation ladder: 4 KiB … 4 GiB in powers
// of four.
var AllocBytes = ExpBuckets(4096, 4, 11)

// formatBound renders a bucket bound the shortest round-trip way —
// matches Prometheus's own `le` label rendering closely enough to grep.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// HistogramSet is one labeled histogram family (e.g. job-phase latency
// keyed by phase name): histograms are created on first Observe of a
// label and exposed together as one Prometheus metric family.
type HistogramSet struct {
	name, help, label string
	bounds            []float64

	mu sync.RWMutex
	m  map[string]*Histogram
}

// NewHistogramSet creates an empty family. name/help/label feed the
// exposition; bounds are shared by every member.
func NewHistogramSet(name, help, label string, bounds []float64) *HistogramSet {
	return &HistogramSet{
		name: name, help: help, label: label,
		bounds: append([]float64(nil), bounds...),
		m:      map[string]*Histogram{},
	}
}

// Observe records v under the given label value.
func (s *HistogramSet) Observe(labelVal string, v float64) {
	s.mu.RLock()
	h := s.m[labelVal]
	s.mu.RUnlock()
	if h == nil {
		s.mu.Lock()
		h = s.m[labelVal]
		if h == nil {
			h = NewHistogram(s.bounds)
			s.m[labelVal] = h
		}
		s.mu.Unlock()
	}
	h.Observe(v)
}

// Get returns the member histogram for a label value, or nil.
func (s *HistogramSet) Get(labelVal string) *Histogram {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[labelVal]
}

// Labels returns the observed label values, sorted.
func (s *HistogramSet) Labels() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// HistogramVec is a histogram family keyed by a fixed tuple of labels
// (e.g. forward latency by route and outcome) — HistogramSet's shape
// generalized past one label. Members are created on first Observe.
type HistogramVec struct {
	name, help string
	labels     []string
	bounds     []float64

	mu sync.RWMutex
	m  map[string]*Histogram // key: label values joined by \x00
}

// NewHistogramVec creates an empty family over the given label names.
func NewHistogramVec(name, help string, labels []string, bounds []float64) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec needs at least one label")
	}
	return &HistogramVec{
		name: name, help: help,
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		m:      map[string]*Histogram{},
	}
}

const vecKeySep = "\x00"

// Observe records v under the given label values (one per label name;
// a mismatched count is a programming error and panics).
func (s *HistogramVec) Observe(v float64, labelVals ...string) {
	if len(labelVals) != len(s.labels) {
		panic(fmt.Sprintf("obs: %s needs %d label values, got %d", s.name, len(s.labels), len(labelVals)))
	}
	key := strings.Join(labelVals, vecKeySep)
	s.mu.RLock()
	h := s.m[key]
	s.mu.RUnlock()
	if h == nil {
		s.mu.Lock()
		h = s.m[key]
		if h == nil {
			h = NewHistogram(s.bounds)
			s.m[key] = h
		}
		s.mu.Unlock()
	}
	h.Observe(v)
}

// Get returns the member histogram for a label tuple, or nil.
func (s *HistogramVec) Get(labelVals ...string) *Histogram {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[strings.Join(labelVals, vecKeySep)]
}

// keys returns the observed label tuples, sorted for deterministic
// exposition.
func (s *HistogramVec) keys() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// WriteProm writes the family in the Prometheus text exposition format:
// one HELP/TYPE header, then per label tuple the cumulative _bucket
// series, _sum and _count.
func (s *HistogramVec) WriteProm(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", s.name, s.help, s.name); err != nil {
		return err
	}
	for _, key := range s.keys() {
		vals := strings.Split(key, vecKeySep)
		var lb strings.Builder
		for i, name := range s.labels {
			fmt.Fprintf(&lb, "%s=%q,", name, vals[i])
		}
		labels := lb.String() // trailing comma kept; le= follows
		s.mu.RLock()
		h := s.m[key]
		s.mu.RUnlock()
		counts := h.BucketCounts()
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", s.name, labels, formatBound(b), cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", s.name, labels, cum); err != nil {
			return err
		}
		trimmed := strings.TrimSuffix(labels, ",")
		if _, err := fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n",
			s.name, trimmed, h.Sum(), s.name, trimmed, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// WriteProm writes the family in the Prometheus text exposition format
// (version 0.0.4): one # HELP and # TYPE header, then per label value
// the cumulative _bucket series, _sum and _count.
func (s *HistogramSet) WriteProm(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", s.name, s.help, s.name); err != nil {
		return err
	}
	for _, lv := range s.Labels() {
		h := s.Get(lv)
		counts := h.BucketCounts()
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n",
				s.name, s.label, lv, formatBound(b), cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", s.name, s.label, lv, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum{%s=%q} %g\n%s_count{%s=%q} %d\n",
			s.name, s.label, lv, h.Sum(), s.name, s.label, lv, h.Count()); err != nil {
			return err
		}
	}
	return nil
}
