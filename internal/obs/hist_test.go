package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// A value equal to a bound lands in that bound's bucket (le is
	// inclusive, Prometheus semantics).
	for _, v := range []float64{0.5, 1} {
		h.Observe(v)
	}
	h.Observe(1.5)
	h.Observe(4)
	h.Observe(100) // overflow
	counts := h.BucketCounts()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-107) > 1e-9 {
		t.Fatalf("sum = %g, want 107", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	t.Parallel()
	h := NewHistogram(ExpBuckets(1, 2, 10))
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i % 7))
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	perWorker := 0.0
	for i := 0; i < per; i++ {
		perWorker += float64(i % 7)
	}
	wantSum := float64(workers) * perWorker
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1e-3, 2, 4)
	want := []float64{1e-3, 2e-3, 4e-3, 8e-3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestHistogramSetPromExposition(t *testing.T) {
	s := NewHistogramSet("emiserve_phase_seconds",
		"Wall time per pipeline phase.", "phase", []float64{0.001, 0.01})
	s.Observe("predict", 0.0005)
	s.Observe("predict", 0.005)
	s.Observe("predict", 5)
	s.Observe("queue.wait", 0.0001)

	var buf bytes.Buffer
	if err := s.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP emiserve_phase_seconds Wall time per pipeline phase.\n",
		"# TYPE emiserve_phase_seconds histogram\n",
		`emiserve_phase_seconds_bucket{phase="predict",le="0.001"} 1` + "\n",
		`emiserve_phase_seconds_bucket{phase="predict",le="0.01"} 2` + "\n",
		`emiserve_phase_seconds_bucket{phase="predict",le="+Inf"} 3` + "\n",
		`emiserve_phase_seconds_sum{phase="predict"} 5.0055` + "\n",
		`emiserve_phase_seconds_count{phase="predict"} 3` + "\n",
		`emiserve_phase_seconds_bucket{phase="queue.wait",le="0.001"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE appear exactly once for the family.
	if strings.Count(out, "# HELP") != 1 || strings.Count(out, "# TYPE") != 1 {
		t.Fatalf("want exactly one HELP and one TYPE header:\n%s", out)
	}
	// Labels come out sorted: predict before queue.wait.
	if strings.Index(out, `phase="predict"`) > strings.Index(out, `phase="queue.wait"`) {
		t.Fatalf("label values not sorted:\n%s", out)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(LatencySeconds)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-4)
	}
}
