package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock returns a trace whose clock advances exactly 1 ms per
// reading, starting at t=0 — every exported timestamp (and the trace
// ID, normally random) is deterministic.
func fakeClockTrace(name string) *Trace {
	tr := NewTrace(name)
	clk := time.Unix(0, 0)
	tr.now = func() time.Time {
		clk = clk.Add(time.Millisecond)
		return clk
	}
	tr.start = time.Unix(0, 0)
	tr.root.start = tr.start
	id, err := ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	if err != nil {
		panic(err)
	}
	tr.SetID(id)
	return tr
}

// TestChromeTraceGolden pins the Chrome trace_event JSON byte-for-byte:
// structure, lane assignment, microsecond timestamps and args.
func TestChromeTraceGolden(t *testing.T) {
	tr := fakeClockTrace("job")
	tr.RecordSpan("queue.wait", 0, 500*time.Microsecond)
	ctx := WithTrace(context.Background(), tr)

	pctx, parse := Start(ctx, "parse") // start 1ms
	_ = pctx
	parse.Int("elements", 12)
	parse.End() // end 2ms

	sctx, solve := Start(ctx, "solve") // start 3ms
	_, sweep := Start(sctx, "mna.sweep")
	sweep.Int("freqs", 300)
	sweep.End() // 4ms..5ms
	solve.End() // 3ms..6ms
	tr.Finish() // root 0..7ms

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run: go test ./internal/obs -run ChromeTraceGolden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	// And it must be valid JSON with the expected top-level shape.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(parsed.TraceEvents))
	}
}

// TestChromeLanesSeparateOverlaps checks the lane assignment: two
// overlapping sibling spans cannot share a tid, while a nested child
// shares its parent's.
func TestChromeLanesSeparateOverlaps(t *testing.T) {
	tr := NewTrace("root")
	// Hand-record overlapping siblings plus one nested child.
	tr.RecordSpan("a", 0, 10*time.Millisecond)
	tr.RecordSpan("b", 5*time.Millisecond, 10*time.Millisecond) // overlaps a
	tr.RecordSpan("a.child", 2*time.Millisecond, 2*time.Millisecond)

	spans := tr.sorted()
	lanes := assignLanes(spans)
	byName := map[string]int{}
	for i, s := range spans {
		byName[s.Name] = lanes[i]
	}
	if byName["a"] == byName["b"] {
		t.Fatalf("overlapping siblings share lane %d", byName["a"])
	}
	if byName["a.child"] != byName["a"] {
		t.Fatalf("nested child on lane %d, parent on %d", byName["a.child"], byName["a"])
	}
}
