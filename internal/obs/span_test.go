package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledPathIsNil(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "x")
	if sp != nil {
		t.Fatal("Start without a trace must return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("Start without a trace must return the context unchanged")
	}
	// Every method must be a safe no-op on nil.
	sp.Int("a", 1).Float("b", 2).Str("c", "d")
	sp.End()
	sp.End()
	if sp.Verbose() {
		t.Fatal("nil span is not verbose")
	}
	if sp.Path() != "" {
		t.Fatal("nil span has no path")
	}
	if Current(ctx) != nil || TraceOf(ctx) != nil {
		t.Fatal("background context carries no span")
	}
}

// TestSpanDisabledZeroAlloc enforces the overhead contract: with no
// trace attached, a Start/attr/End cycle allocates nothing.
func TestSpanDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := Start(ctx, "hot.path")
		sp.Int("n", 42)
		sp.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f/op, want 0", allocs)
	}
}

func TestSpanTreeParentChild(t *testing.T) {
	t.Parallel()
	tr := NewTrace("root")
	ctx := WithTrace(context.Background(), tr)

	ctx1, a := Start(ctx, "a")
	_, a1 := Start(ctx1, "a1")
	a1.End()
	a.End()
	_, b := Start(ctx, "b")
	b.End()
	tr.Finish()

	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root := byName["root"]
	if root.Parent != 0 {
		t.Fatalf("root parent = %d, want 0", root.Parent)
	}
	if byName["a"].Parent != root.ID || byName["b"].Parent != root.ID {
		t.Fatal("a and b must be children of root")
	}
	if byName["a1"].Parent != byName["a"].ID {
		t.Fatal("a1 must be a child of a")
	}
	if got := byName["a1"].Start; got < byName["a"].Start {
		t.Fatalf("child started (%v) before parent (%v)", got, byName["a"].Start)
	}
}

// TestSpanConcurrent exercises concurrent span creation and collection
// under -race: many goroutines each build a small subtree.
func TestSpanConcurrent(t *testing.T) {
	t.Parallel()
	tr := NewTrace("root")
	ctx := WithTrace(context.Background(), tr)
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wctx, ws := Start(ctx, "worker")
			ws.Int("w", int64(w))
			for i := 0; i < 8; i++ {
				_, item := Start(wctx, "item")
				item.End()
			}
			ws.End()
		}(w)
	}
	wg.Wait()
	tr.Finish()

	spans := tr.Snapshot()
	if want := 1 + workers + workers*8; len(spans) != want {
		t.Fatalf("got %d spans, want %d", len(spans), want)
	}
	// Every recorded parent must exist and have started no later than
	// the child.
	byID := map[uint64]SpanRecord{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %q has unknown parent %d", s.Name, s.Parent)
		}
		if s.Start < p.Start {
			t.Fatalf("span %q starts before its parent %q", s.Name, p.Name)
		}
	}
}

func TestSpanCapDrops(t *testing.T) {
	tr := NewTrace("root")
	tr.SetCap(4)
	ctx := WithTrace(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, sp := Start(ctx, "s")
		sp.End()
	}
	tr.Finish()
	if got := tr.Len(); got != 4 {
		t.Fatalf("recorded %d spans, want cap 4", got)
	}
	// 10 ended spans + the root, minus the 4 kept.
	if got := tr.Dropped(); got != 7 {
		t.Fatalf("dropped %d, want 7", got)
	}
}

func TestSlowOpLogsAncestorPath(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace("job")
	tr.SetLogger(slog.New(slog.NewTextHandler(&buf, nil)), time.Nanosecond)
	ctx := WithTrace(context.Background(), tr)
	ctx, a := Start(ctx, "predict")
	_, b := Start(ctx, "mna.sweep")
	time.Sleep(time.Millisecond)
	b.End()
	a.End()
	out := buf.String()
	if !strings.Contains(out, "slow op") || !strings.Contains(out, "job → predict → mna.sweep") {
		t.Fatalf("slow-op log missing ancestor path:\n%s", out)
	}
}

func TestRecordSpanAndTimings(t *testing.T) {
	tr := NewTrace("job")
	tr.RecordSpan("queue.wait", 0, 5*time.Millisecond)
	tr.RecordSpan("queue.wait", 0, 3*time.Millisecond)
	tr.Finish()
	tms := tr.Timings()
	var qt *PhaseTiming
	for i := range tms {
		if tms[i].Phase == "queue.wait" {
			qt = &tms[i]
		}
	}
	if qt == nil {
		t.Fatal("no queue.wait timing")
	}
	if qt.Calls != 2 || qt.TotalMS != 8 || qt.MaxMS != 5 {
		t.Fatalf("queue.wait timing = %+v, want calls 2, total 8ms, max 5ms", *qt)
	}
}

func TestWriteTree(t *testing.T) {
	tr := NewTrace("root")
	ctx := WithTrace(context.Background(), tr)
	ctx, a := Start(ctx, "outer")
	a.Int("n", 3)
	_, b := Start(ctx, "inner")
	b.End()
	a.End()
	tr.Finish()
	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"root ", "\n  outer ", "n=3", "\n    inner "} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree missing %q:\n%s", want, out)
		}
	}
}
