package obs

import (
	"io"
	"log/slog"
)

// NewLogger returns the stack's standard structured logger: slog text
// format to w at the given level. Every subsystem that logs goes through
// this constructor so log lines stay uniformly parseable.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// Discard is a logger that drops everything — the nil-object default so
// call sites never branch on "is logging configured".
func Discard() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{
		Level: slog.Level(127), // above every real level: Enabled is always false
	}))
}
