package obs

import "context"

// ctxKey carries the current *Span through a context chain.
type ctxKey struct{}

// WithTrace attaches a trace's root span to the context; spans started
// from the returned context become its descendants. A nil trace returns
// ctx unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t.root)
}

// Current returns the span the context carries, or nil.
func Current(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// TraceOf returns the trace the context carries, or nil.
func TraceOf(ctx context.Context) *Trace {
	if s := Current(ctx); s != nil {
		return s.t
	}
	return nil
}

// Start begins a child span of whatever span the context carries and
// returns a context carrying the new span. When the context carries no
// span (tracing disabled) it returns ctx unchanged and a nil span —
// the zero-allocation fast path the overhead contract promises.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(ctxKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	t := parent.t
	s := &Span{
		t:      t,
		parent: parent,
		id:     t.nextID.Add(1),
		name:   name,
		start:  t.now(),
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}
