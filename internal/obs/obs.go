// Package obs is the zero-dependency observability layer of the EMI
// design stack: hierarchical spans collected into bounded per-request
// traces, fixed-bucket histograms with Prometheus text exposition, and a
// slog-based structured logger with slow-operation reporting.
//
// The overhead contract is the load-bearing property: when no trace is
// attached to the context, obs.Start returns a nil *Span and every Span
// method is a nil-check no-op — zero allocations, benchmark-enforced
// (see TestSpanDisabledZeroAlloc). Figures and tier-1 timings therefore
// stay byte-identical whether or not the package is linked into the hot
// path.
//
// Usage:
//
//	tr := obs.NewTrace("job")
//	ctx = obs.WithTrace(ctx, tr)
//	...
//	ctx, sp := obs.Start(ctx, "mna.sweep")
//	sp.Int("freqs", int64(len(freqs)))
//	defer sp.End()
//
// A finished trace exports as a Chrome trace_event JSON (load in
// chrome://tracing or Perfetto) via WriteChrome, as an indented text
// tree via WriteTree, and as a per-phase aggregate via Timings.
package obs

import (
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanCap bounds a trace's span store: spans finished beyond the
// cap are counted in Dropped instead of recorded, so a runaway fan-out
// cannot grow a request trace without bound.
const DefaultSpanCap = 4096

// Attr is one span attribute. Values are whatever the caller hands the
// typed setters (int64, float64, string); they surface as Chrome trace
// args and `k=v` pairs in the text tree.
type Attr struct {
	Key string
	Val any
}

// SpanRecord is one finished span as stored in the trace. Start is the
// monotonic offset from the trace's start.
type SpanRecord struct {
	ID     uint64
	Parent uint64 // 0 = no parent (the root span itself)
	Name   string
	Start  time.Duration
	Dur    time.Duration
	Attrs  []Attr
}

// Trace is a bounded, goroutine-safe collection of spans for one request
// (a job, a CLI invocation, a session edit storm). Create with NewTrace,
// attach to a context with WithTrace, finish with Finish.
type Trace struct {
	name  string
	id    TraceID // 128-bit identity, shared across processes (see propagate.go)
	start time.Time
	now   func() time.Time // injectable clock for deterministic tests
	cap   int

	logger  *slog.Logger
	slowOp  time.Duration
	verbose bool

	nextID atomic.Uint64
	root   *Span

	mu      sync.Mutex
	spans   []SpanRecord
	dropped uint64
}

// NewTrace creates a trace whose root span carries the given name. The
// span store is bounded at DefaultSpanCap.
func NewTrace(name string) *Trace {
	t := &Trace{
		name: name,
		id:   mintTraceID(),
		now:  time.Now,
		cap:  DefaultSpanCap,
	}
	t.start = t.now()
	t.root = &Span{t: t, id: t.nextID.Add(1), name: name, start: t.start}
	return t
}

// SetCap bounds the number of recorded spans (<= 0 keeps the default).
// Call before handing the trace out.
func (t *Trace) SetCap(n int) {
	if n > 0 {
		t.cap = n
	}
}

// SetLogger wires a structured logger and a slow-op threshold: any span
// whose duration reaches slowOp logs its whole ancestor path at Warn
// level when it ends. A zero slowOp or nil logger disables the check.
func (t *Trace) SetLogger(l *slog.Logger, slowOp time.Duration) {
	t.logger = l
	t.slowOp = slowOp
}

// SetVerbose opts the trace into high-cardinality detail (e.g. the
// engine's per-task spans). Off by default; the serving layer keeps it
// off, the CLIs' -trace flag turns it on.
func (t *Trace) SetVerbose(v bool) { t.verbose = v }

// Name returns the trace (root span) name.
func (t *Trace) Name() string { return t.name }

// Start returns the trace's start time.
func (t *Trace) Start() time.Time { return t.start }

// Age returns the monotonic time elapsed since the trace started.
func (t *Trace) Age() time.Duration { return t.now().Sub(t.start) }

// Root returns the root span (ended by Finish).
func (t *Trace) Root() *Span { return t.root }

// Finish ends the root span. Idempotent.
func (t *Trace) Finish() { t.root.End() }

// Dropped returns the number of spans discarded by the cap.
func (t *Trace) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// RecordSpan records an already-measured interval (e.g. a queue wait
// observed outside any live span) as a child of the root span. The
// offset is relative to the trace start.
func (t *Trace) RecordSpan(name string, offset, dur time.Duration, attrs ...Attr) {
	t.record(SpanRecord{
		ID:     t.nextID.Add(1),
		Parent: t.root.id,
		Name:   name,
		Start:  offset,
		Dur:    dur,
		Attrs:  attrs,
	})
}

// record appends one finished span under the bound.
func (t *Trace) record(r SpanRecord) {
	t.mu.Lock()
	if len(t.spans) >= t.cap {
		t.dropped++
	} else {
		t.spans = append(t.spans, r)
	}
	t.mu.Unlock()
}

// Snapshot returns a copy of the recorded spans (safe while spans are
// still being added).
func (t *Trace) Snapshot() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Span is one live timed operation. A nil *Span (tracing disabled) is
// valid: every method is a no-op, so call sites carry no conditionals.
// A span belongs to the goroutine that started it until End; children
// may be started from other goroutines via the returned context.
type Span struct {
	t      *Trace
	parent *Span
	id     uint64
	name   string
	start  time.Time
	attrs  []Attr
	ended  atomic.Bool
}

// Int attaches an integer attribute. Returns s for chaining.
func (s *Span) Int(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{key, v})
	return s
}

// Float attaches a float attribute.
func (s *Span) Float(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{key, v})
	return s
}

// Str attaches a string attribute.
func (s *Span) Str(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{key, v})
	return s
}

// Verbose reports whether the owning trace asked for high-cardinality
// detail. False on a nil span.
func (s *Span) Verbose() bool { return s != nil && s.t.verbose }

// Path returns the ancestor chain "root → ... → this span".
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	var names []string
	for sp := s; sp != nil; sp = sp.parent {
		names = append(names, sp.name)
	}
	// Reverse into root-first order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

// End finishes the span: the record lands in the trace and, when the
// duration reaches the trace's slow-op threshold, the whole ancestor
// path is logged. Safe on a nil span; second and later calls are no-ops.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	t := s.t
	end := t.now()
	d := end.Sub(s.start)
	var parentID uint64
	if s.parent != nil {
		parentID = s.parent.id
	}
	t.record(SpanRecord{
		ID:     s.id,
		Parent: parentID,
		Name:   s.name,
		Start:  s.start.Sub(t.start),
		Dur:    d,
		Attrs:  s.attrs,
	})
	if t.slowOp > 0 && d >= t.slowOp && t.logger != nil {
		t.logger.Warn("slow op",
			"span", s.name,
			"dur", d,
			"path", s.Path(),
			"trace", t.name)
	}
}
