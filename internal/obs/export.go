package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// sorted returns the trace's spans ordered for export: by start offset,
// then longer spans first (parents enclose children), then by ID —
// deterministic under any goroutine interleaving.
func (t *Trace) sorted() []SpanRecord {
	spans := t.Snapshot()
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Dur != b.Dur {
			return a.Dur > b.Dur
		}
		return a.ID < b.ID
	})
	return spans
}

// ChromeEvent is one trace_event in the Chrome trace JSON. Exported so
// the cluster router can parse a replica's trace fragment and re-emit
// it on another process lane (see ChromeDoc.SetProcess).
type ChromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds since trace start
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeDoc is the JSON-object form of the Chrome trace file format.
// OtherData carries the cross-process merge anchors: "traceId" (the
// 128-bit trace identity) and "startUnixUs" (the trace's absolute start
// as Unix microseconds, used to shift fragments onto one clock).
// Chrome and Perfetto ignore keys they do not know.
type ChromeDoc struct {
	TraceEvents     []ChromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// ChromeDoc exports the trace as a parsed Chrome trace document on
// pid 1. Spans are assigned lanes (tids) greedily so that overlapping
// concurrent spans land on separate rows while properly nested spans
// share their ancestors' row.
func (t *Trace) ChromeDoc() ChromeDoc {
	spans := t.sorted()
	lanes := assignLanes(spans)
	out := ChromeDoc{
		DisplayTimeUnit: "ms",
		TraceEvents:     make([]ChromeEvent, 0, len(spans)),
		OtherData: map[string]string{
			"traceId":     t.id.String(),
			"startUnixUs": strconv.FormatInt(t.start.UnixMicro(), 10),
		},
	}
	for i, s := range spans {
		ev := ChromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  lanes[i],
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Val
			}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	return out
}

// WriteChrome exports the trace in the Chrome trace_event format
// ("complete" X events) — load the file in chrome://tracing or
// ui.perfetto.dev.
func (t *Trace) WriteChrome(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.ChromeDoc())
}

// StartUnixUs returns the document's absolute start anchor (Unix
// microseconds), ok=false when the fragment does not carry one.
func (d ChromeDoc) StartUnixUs() (int64, bool) {
	v, err := strconv.ParseInt(d.OtherData["startUnixUs"], 10, 64)
	return v, err == nil
}

// SetProcess moves every event onto the given pid and prepends a
// process_name metadata event so trace viewers label the lane with the
// process's name (e.g. the cluster member name).
func (d *ChromeDoc) SetProcess(pid int, name string) {
	for i := range d.TraceEvents {
		d.TraceEvents[i].Pid = pid
	}
	meta := ChromeEvent{
		Name: "process_name",
		Ph:   "M",
		Pid:  pid,
		Args: map[string]any{"name": name},
	}
	d.TraceEvents = append([]ChromeEvent{meta}, d.TraceEvents...)
}

// Shift moves every timed event by deltaUs microseconds — how a
// fragment whose clock starts at its own trace start is aligned onto
// another trace's clock (deltaUs = fragment start − anchor start).
// Metadata events carry no time and stay put.
func (d *ChromeDoc) Shift(deltaUs float64) {
	for i := range d.TraceEvents {
		if d.TraceEvents[i].Ph == "M" {
			continue
		}
		d.TraceEvents[i].Ts += deltaUs
	}
}

// MergeChromeDocs concatenates per-process fragments into one document.
// The first fragment's OtherData (trace ID, start anchor) wins — the
// caller aligns and lanes the fragments first via Shift and SetProcess.
func MergeChromeDocs(docs ...ChromeDoc) ChromeDoc {
	out := ChromeDoc{DisplayTimeUnit: "ms"}
	for _, d := range docs {
		if out.OtherData == nil && d.OtherData != nil {
			out.OtherData = d.OtherData
		}
		out.TraceEvents = append(out.TraceEvents, d.TraceEvents...)
	}
	return out
}

// assignLanes places start-ordered spans onto the fewest rows such that
// a span only shares a row with spans it nests inside: per lane a stack
// of open intervals is kept; a span joins the first lane whose top
// interval contains it (or which has no open interval left).
func assignLanes(spans []SpanRecord) []int {
	type lane struct{ open []SpanRecord }
	var ls []*lane
	out := make([]int, len(spans))
	for i, s := range spans {
		placed := false
		for li, l := range ls {
			// Close intervals that ended before this span starts.
			for len(l.open) > 0 && l.open[len(l.open)-1].Start+l.open[len(l.open)-1].Dur <= s.Start {
				l.open = l.open[:len(l.open)-1]
			}
			if len(l.open) == 0 || s.Start+s.Dur <= l.open[len(l.open)-1].Start+l.open[len(l.open)-1].Dur {
				l.open = append(l.open, s)
				out[i] = li + 1
				placed = true
				break
			}
		}
		if !placed {
			ls = append(ls, &lane{open: []SpanRecord{s}})
			out[i] = len(ls)
		}
	}
	return out
}

// WriteTree writes the span hierarchy as an indented text tree with
// durations and attributes — the compact terminal-friendly view of the
// same data WriteChrome exports.
func (t *Trace) WriteTree(w io.Writer) error {
	spans := t.sorted()
	children := make(map[uint64][]SpanRecord, len(spans))
	byID := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		byID[s.ID] = true
	}
	var roots []SpanRecord
	for _, s := range spans {
		if s.Parent == 0 || !byID[s.Parent] {
			roots = append(roots, s)
		} else {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	var walk func(s SpanRecord, depth int) error
	walk = func(s SpanRecord, depth int) error {
		for i := 0; i < depth; i++ {
			if _, err := io.WriteString(w, "  "); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s", s.Name, s.Dur.Round(time.Microsecond)); err != nil {
			return err
		}
		for _, a := range s.Attrs {
			if _, err := fmt.Fprintf(w, " %s=%v", a.Key, a.Val); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		for _, c := range children[s.ID] {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	if d := t.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(+%d spans dropped by cap)\n", d); err != nil {
			return err
		}
	}
	return nil
}

// PhaseTiming is the per-phase aggregate of a trace: every span of the
// same name folded into call count, total and maximum duration. This is
// what a job's `timings` breakdown serves.
type PhaseTiming struct {
	Phase   string  `json:"phase"`
	Calls   int     `json:"calls"`
	TotalMS float64 `json:"total_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// TotalSeconds returns the total duration in seconds (histogram unit).
func (p PhaseTiming) TotalSeconds() float64 { return p.TotalMS / 1e3 }

// Timings aggregates the recorded spans by name, sorted by descending
// total time (ties by name). Call after Finish for a complete view.
func (t *Trace) Timings() []PhaseTiming {
	agg := map[string]*PhaseTiming{}
	for _, s := range t.Snapshot() {
		p := agg[s.Name]
		if p == nil {
			p = &PhaseTiming{Phase: s.Name}
			agg[s.Name] = p
		}
		p.Calls++
		ms := float64(s.Dur) / float64(time.Millisecond)
		p.TotalMS += ms
		if ms > p.MaxMS {
			p.MaxMS = ms
		}
	}
	out := make([]PhaseTiming, 0, len(agg))
	for _, p := range agg {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalMS != out[j].TotalMS {
			return out[i].TotalMS > out[j].TotalMS
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}
