package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestTraceparentRoundTrip pins the wire format: a minted trace renders
// a valid traceparent whose trace ID parses back to the same identity.
func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTrace("req")
	if tr.ID().IsZero() {
		t.Fatal("NewTrace minted a zero trace ID")
	}
	tp := tr.Traceparent()
	parts := strings.Split(tp, "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 || len(parts[2]) != 16 || parts[3] != "01" {
		t.Fatalf("malformed traceparent %q", tp)
	}
	id, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("own traceparent %q did not parse", tp)
	}
	if id != tr.ID() {
		t.Fatalf("round trip changed the ID: %s != %s", id, tr.ID())
	}
}

// TestTraceparentAdoption: a trace that adopts an inbound ID renders it
// back on the wire — the propagation contract across a hop.
func TestTraceparentAdoption(t *testing.T) {
	up := NewTrace("router")
	down := NewTrace("job")
	before := down.ID()
	id, ok := ParseTraceparent(up.Traceparent())
	if !ok {
		t.Fatal("parse failed")
	}
	down.SetID(id)
	if down.ID() != up.ID() {
		t.Fatalf("adoption failed: %s != %s", down.ID(), up.ID())
	}
	if down.ID() == before {
		t.Fatal("SetID did not replace the minted ID")
	}
	down.SetID(TraceID{}) // zero must be ignored
	if down.ID() != up.ID() {
		t.Fatal("SetID accepted the zero ID")
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-abc-def-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero parent
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // non-hex
		"0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // short version
	}
	for _, v := range bad {
		if _, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", v)
		}
	}
	// Version tolerance: a future version with trailing fields parses.
	if _, ok := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Error("future traceparent version rejected")
	}
}

// TestChromeDocMerge builds the two-process merge the cluster router
// performs: a router doc on pid 1, a replica fragment shifted onto the
// router's clock on pid 2, each lane named via process_name metadata.
func TestChromeDocMerge(t *testing.T) {
	router := fakeClockTrace("router")
	router.RecordSpan("forward", time.Millisecond, 2*time.Millisecond)
	router.Finish()

	replica := fakeClockTrace("job")
	replica.start = time.Unix(0, int64(1500*time.Microsecond)) // 1.5ms after the router
	replica.RecordSpan("queue.wait", 0, 300*time.Microsecond)
	replica.Finish()

	rd := router.ChromeDoc()
	fd := replica.ChromeDoc()
	rs, ok1 := rd.StartUnixUs()
	fs, ok2 := fd.StartUnixUs()
	if !ok1 || !ok2 {
		t.Fatal("missing startUnixUs anchors")
	}
	if fs-rs != 1500 {
		t.Fatalf("anchor delta = %d us, want 1500", fs-rs)
	}
	rd.SetProcess(1, "emirouter")
	fd.SetProcess(2, "r0")
	fd.Shift(float64(fs - rs))
	merged := MergeChromeDocs(rd, fd)

	if got := merged.OtherData["traceId"]; got != router.ID().String() {
		t.Fatalf("merged traceId = %q, want the router's %q", got, router.ID())
	}
	pids := map[int]bool{}
	names := map[string]bool{}
	var shifted *ChromeEvent
	for i, ev := range merged.TraceEvents {
		pids[ev.Pid] = true
		if ev.Ph == "M" && ev.Name == "process_name" {
			names[ev.Args["name"].(string)] = true
		}
		if ev.Name == "queue.wait" {
			shifted = &merged.TraceEvents[i]
		}
	}
	if len(pids) != 2 {
		t.Fatalf("merged doc spans %d pids, want 2", len(pids))
	}
	if !names["emirouter"] || !names["r0"] {
		t.Fatalf("missing process_name lanes: %v", names)
	}
	if shifted == nil {
		t.Fatal("replica span missing from merge")
	}
	if shifted.Ts != 1500 {
		t.Fatalf("replica span ts = %v us after shift, want 1500", shifted.Ts)
	}
	if shifted.Pid != 2 {
		t.Fatalf("replica span pid = %d, want 2", shifted.Pid)
	}
}

// TestHistogramVecExposition pins the multi-label exposition format:
// both label names on every series, deterministic tuple order, le last.
func TestHistogramVecExposition(t *testing.T) {
	v := NewHistogramVec("test_fwd_seconds", "Forward latency.", []string{"route", "outcome"}, []float64{0.1, 1})
	v.Observe(0.05, "predict", "ok")
	v.Observe(2.0, "predict", "ok")
	v.Observe(0.5, "jobs", "error")

	var buf bytes.Buffer
	if err := v.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP test_fwd_seconds Forward latency.",
		"# TYPE test_fwd_seconds histogram",
		`test_fwd_seconds_bucket{route="predict",outcome="ok",le="0.1"} 1`,
		`test_fwd_seconds_bucket{route="predict",outcome="ok",le="+Inf"} 2`,
		`test_fwd_seconds_count{route="predict",outcome="ok"} 2`,
		`test_fwd_seconds_bucket{route="jobs",outcome="error",le="1"} 1`,
		`test_fwd_seconds_sum{route="jobs",outcome="error"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h := v.Get("predict", "ok"); h == nil || h.Count() != 2 {
		t.Fatal("Get did not find the observed member")
	}
}
