package emi

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"repro/internal/fft"
	"repro/internal/netlist"
)

func TestLimitServiceBands(t *testing.T) {
	t.Parallel()
	cases := []struct {
		f      float64
		want   float64
		inBand bool
	}{
		{200e3, 70, true},
		{1e6, 54, true},
		{6e6, 53, true},
		{27e6, 44, true},
		{40e6, 44, true},
		{100e6, 38, true},
		{400e3, 0, false},  // between LW and MW
		{10e6, 0, false},   // between SW and CB
		{100e3, 70, false}, // below band
		{200e6, 38, false}, // above band
	}
	for _, c := range cases {
		got, inBand := Limit(c.f)
		if inBand != c.inBand {
			t.Errorf("Limit(%g): inBand = %v, want %v", c.f, inBand, c.inBand)
		}
		if c.inBand && got != c.want {
			t.Errorf("Limit(%g) = %v, want %v", c.f, got, c.want)
		}
	}
	// Interpolation is monotone between LW (70) and MW (54).
	l1, _ := Limit(350e3)
	l2, _ := Limit(500e3)
	if !(l1 <= 70 && l1 >= l2 && l2 >= 54) {
		t.Errorf("interpolated limits not monotone: %v %v", l1, l2)
	}
}

func TestLimitClass(t *testing.T) {
	t.Parallel()
	// Class 5 equals the base limit; lower classes relax in the band's
	// step: LW relaxes 10 dB per class.
	for class, want := range map[int]float64{5: 70, 4: 80, 3: 90, 2: 100, 1: 110} {
		got, inBand := LimitClass(class, 200e3)
		if !inBand || got != want {
			t.Errorf("LW class %d = %v (inBand %v), want %v", class, got, inBand, want)
		}
	}
	// FM relaxes 6 dB per class.
	if got, _ := LimitClass(3, 100e6); got != 38+12 {
		t.Errorf("FM class 3 = %v", got)
	}
	// Clamping.
	lo, _ := LimitClass(0, 200e3)
	hi, _ := LimitClass(9, 200e3)
	if lo != 110 || hi != 70 {
		t.Errorf("clamped = %v, %v", lo, hi)
	}
	// Classes are monotone everywhere in the band.
	for _, f := range []float64{200e3, 1e6, 6e6, 27e6, 40e6, 90e6, 400e3, 10e6} {
		prev := -1000.0
		for class := 5; class >= 1; class-- {
			l, _ := LimitClass(class, f)
			if l < prev {
				t.Errorf("class %d at %g Hz: %v below class %d's %v", class, f, l, class+1, prev)
			}
			prev = l
		}
	}
}

func TestDBuVRoundTrip(t *testing.T) {
	t.Parallel()
	for _, v := range []float64{1e-6, 1e-3, 1, 17.3e-6} {
		db := DBuV(v)
		if math.Abs(FromDBuV(db)-v)/v > 1e-12 {
			t.Errorf("round trip %v → %v → %v", v, db, FromDBuV(db))
		}
	}
	if DBuV(1e-6) != 0 {
		t.Errorf("1 µV = %v dBµV, want 0", DBuV(1e-6))
	}
	if DBuV(0) != -200 || DBuV(-1) != -200 {
		t.Error("non-positive voltage must floor at -200")
	}
}

func TestAddLISNStructure(t *testing.T) {
	t.Parallel()
	c := &netlist.Circuit{}
	c.AddV("Vbat", "bat", "0", netlist.Source{DC: 12})
	meas := AddLISN(c, "lisnP", "bat", "vin")
	c.AddR("Rdut", "vin", "0", 10)
	if meas != "lisnP_meas" {
		t.Errorf("measure node = %q", meas)
	}
	if err := ValidateLISN(c, "lisnP"); err != nil {
		t.Fatal(err)
	}
	if err := ValidateLISN(c, "nope"); err == nil {
		t.Error("missing LISN must fail validation")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrapezoidHarmonicsAgainstFFT(t *testing.T) {
	t.Parallel()
	// The analytic Fourier coefficients must match an FFT of the sampled
	// waveform.
	p := &netlist.Pulse{
		V1: 0, V2: 12, Delay: 0.3e-6,
		Rise: 50e-9, Fall: 80e-9, Width: 1.7e-6, Period: 5e-6,
	}
	const n = 4096
	samples := make([]complex128, n)
	for i := range samples {
		samples[i] = complex(p.At(float64(i)*p.Period/n), 0)
	}
	spec := fft.FFT(samples)
	for k := 0; k <= 20; k++ {
		want := spec[k] / complex(n, 0)
		got := TrapezoidHarmonic(p, k)
		if cmplx.Abs(got-want) > 2e-3*(cmplx.Abs(want)+1) {
			t.Errorf("c_%d = %v, want %v", k, got, want)
		}
	}
}

func TestTrapezoidHarmonicEnvelope(t *testing.T) {
	t.Parallel()
	// Beyond 1/(π·t_rise) the envelope falls at 40 dB/decade: c at 10× the
	// corner must be well below c just above it.
	p := &netlist.Pulse{V1: 0, V2: 1, Rise: 100e-9, Fall: 100e-9, Width: 2.4e-6, Period: 5e-6}
	f1 := 1 / p.Period
	corner := 1 / (math.Pi * p.Rise)
	kC := int(corner / f1)
	kHi := 10 * kC
	cC := cmplx.Abs(TrapezoidHarmonic(p, kC))
	cHi := cmplx.Abs(TrapezoidHarmonic(p, kHi))
	// 40 dB/decade means a factor 100; allow slack for sinc ripple.
	if cHi > cC/20 {
		t.Errorf("harmonic envelope too flat: c(corner)=%v c(10×corner)=%v", cC, cHi)
	}
	// DC coefficient equals the duty-weighted average.
	dc := real(TrapezoidHarmonic(p, 0))
	wantDC := (p.Width + p.Rise) / p.Period // V2·(w+tr/2+tf/2)/T with V1=0
	if math.Abs(dc-wantDC) > 1e-9 {
		t.Errorf("DC = %v, want %v", dc, wantDC)
	}
}

func TestHarmonicRMS(t *testing.T) {
	t.Parallel()
	p := &netlist.Pulse{V1: 0, V2: 1, Rise: 10e-9, Fall: 10e-9, Width: 2.5e-6, Period: 5e-6}
	// Square-ish wave: fundamental peak ≈ 2/π, RMS ≈ √2/π.
	got := HarmonicRMS(p, 1)
	want := math.Sqrt2 / math.Pi
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("fundamental RMS = %v, want ≈ %v", got, want)
	}
}

// testConverter builds a minimal switching cell behind a LISN.
func testConverter(k float64) *netlist.Circuit {
	c := &netlist.Circuit{Title: "test converter"}
	c.AddV("Vbat", "bat", "0", netlist.Source{DC: 12})
	AddLISN(c, "lisn", "bat", "vin")
	// Input filter: shunt cap with ESL, series choke.
	c.AddC("Cin", "vin", "cx", 1e-6)
	c.AddL("Lcin", "cx", "0", 15e-9)
	c.AddL("Lfilt", "vin", "vdd", 10e-6)
	c.AddC("Cdd", "vdd", "cy", 1e-6)
	c.AddL("Lcdd", "cy", "0", 15e-9)
	// Switching cell: trapezoid noise source with loop parasitics.
	c.AddV("Vsw", "sw", "0", netlist.Source{Pulse: &netlist.Pulse{
		V1: 0, V2: 12, Rise: 30e-9, Fall: 30e-9, Width: 2e-6, Period: 5e-6,
	}})
	c.AddL("Lloop", "sw", "swl", 50e-9)
	c.AddR("Rloop", "swl", "vdd", 0.2)
	if k != 0 {
		c.AddK("Kc", "Lcin", "Lcdd", k)
	}
	return c
}

func TestPredictorSpectrum(t *testing.T) {
	t.Parallel()
	p := &Predictor{
		Circuit:     testConverter(0),
		SourceName:  "Vsw",
		MeasureNode: "lisn_meas",
		MaxFreq:     30e6,
	}
	s, err := p.Spectrum()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Freqs) < 100 {
		t.Fatalf("too few harmonics: %d", len(s.Freqs))
	}
	// Harmonic grid: f_k = k·200 kHz.
	if math.Abs(s.Freqs[0]-200e3) > 1 {
		t.Errorf("f1 = %v", s.Freqs[0])
	}
	// Levels are finite and in plausible EMI territory (0–120 dBµV peaks).
	_, peak := s.Max()
	if peak < 0 || peak > 140 {
		t.Errorf("peak level = %v dBµV", peak)
	}
	// The circuit is untouched.
	if p.Circuit.Find("Vsw").Src.ACMag != 0 {
		t.Error("Predictor mutated the input circuit")
	}
}

func TestCouplingRaisesEmissions(t *testing.T) {
	t.Parallel()
	// The paper's central claim in circuit form: adding the magnetic
	// coupling between the filter capacitors' ESLs raises high-frequency
	// conducted emissions.
	mk := func(k float64) *Spectrum {
		p := &Predictor{
			Circuit:     testConverter(k),
			SourceName:  "Vsw",
			MeasureNode: "lisn_meas",
			MaxFreq:     100e6,
		}
		s, err := p.Spectrum()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s0 := mk(0)
	s1 := mk(0.05)
	hf0 := s0.InBand(20e6, 100e6)
	hf1 := s1.InBand(20e6, 100e6)
	_, m0 := hf0.Max()
	_, m1 := hf1.Max()
	if m1 < m0+10 {
		t.Errorf("coupling should raise HF emissions by >10 dB: %v vs %v", m1, m0)
	}
}

func TestPredictorErrors(t *testing.T) {
	t.Parallel()
	c := testConverter(0)
	for _, p := range []*Predictor{
		{Circuit: c, SourceName: "nope", MeasureNode: "lisn_meas"},
		{Circuit: c, SourceName: "Vbat", MeasureNode: "lisn_meas"}, // no pulse
	} {
		if _, err := p.Spectrum(); err == nil {
			t.Errorf("Predictor %+v should fail", p.SourceName)
		}
	}
}

func TestSpectrumHelpers(t *testing.T) {
	t.Parallel()
	s := &Spectrum{
		Freqs: []float64{200e3, 1e6, 10e6, 100e6},
		DB:    []float64{70, 60, 50, 45},
	}
	if band := s.InBand(500e3, 20e6); len(band.Freqs) != 2 {
		t.Errorf("InBand = %v", band.Freqs)
	}
	f, db := s.Max()
	if f != 200e3 || db != 70 {
		t.Errorf("Max = %v @ %v", db, f)
	}
	// 200 kHz (limit 70, level 70) no violation; 1 MHz (54, 60) violates;
	// 100 MHz (38, 45) violates; 10 MHz out of service bands.
	v := s.Violations()
	if len(v) != 2 {
		t.Fatalf("violations = %+v", v)
	}
	if v[0].Freq != 1e6 || v[1].Freq != 100e6 {
		t.Errorf("violations = %+v", v)
	}
	if m := s.WorstMargin(); math.Abs(m-(-7)) > 1e-9 {
		t.Errorf("WorstMargin = %v, want -7", m)
	}
}

func TestCompareMetrics(t *testing.T) {
	t.Parallel()
	a := &Spectrum{Freqs: []float64{1, 2, 3, 4}, DB: []float64{10, 20, 30, 40}}
	ident := Compare(a, a)
	if ident.MaxAbsDelta != 0 || ident.Correlation < 0.999 {
		t.Errorf("self comparison = %+v", ident)
	}
	b := &Spectrum{Freqs: []float64{1, 2, 3, 4}, DB: []float64{12, 22, 32, 42}}
	c := Compare(a, b)
	if math.Abs(c.MaxAbsDelta-2) > 1e-12 || math.Abs(c.MeanAbsDelta-2) > 1e-12 {
		t.Errorf("offset comparison = %+v", c)
	}
	if c.Correlation < 0.999 {
		t.Errorf("offset correlation = %v", c.Correlation)
	}
	anti := &Spectrum{Freqs: []float64{1, 2, 3, 4}, DB: []float64{40, 30, 20, 10}}
	if cc := Compare(a, anti); cc.Correlation > -0.999 {
		t.Errorf("anti correlation = %v", cc.Correlation)
	}
	// Disjoint grids.
	d := Compare(a, &Spectrum{Freqs: []float64{9}, DB: []float64{1}})
	if d.N != 0 {
		t.Errorf("disjoint N = %d", d.N)
	}
}

func TestTSVRoundTrip(t *testing.T) {
	t.Parallel()
	s := &Spectrum{
		Freqs: []float64{200e3, 1e6, 30e6},
		DB:    []float64{70.5, 54.25, -3},
	}
	var b strings.Builder
	if err := s.WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ReadTSV: %v\n%s", err, b.String())
	}
	if len(got.Freqs) != 3 || got.Freqs[1] != 1e6 || got.DB[1] != 54.25 {
		t.Errorf("round trip = %+v", got)
	}
	// Headerless and commented input parses too.
	got, err = ReadTSV(strings.NewReader("# comment\n1000 10\n2000 20\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Freqs) != 2 {
		t.Errorf("parsed = %+v", got)
	}
}

func TestTSVErrors(t *testing.T) {
	t.Parallel()
	bad := []string{
		"",                   // empty
		"1000\n",             // wrong arity
		"abc def\n",          // bad numbers past line 1
		"1000 10\nabc def\n", // bad numbers later
		"-5 10\n",            // non-positive frequency
		"2000 10\n1000 20\n", // descending
	}
	for _, s := range bad {
		if _, err := ReadTSV(strings.NewReader(s)); err == nil {
			t.Errorf("ReadTSV(%q) should fail", s)
		}
	}
}

func TestMeasuredIsDeterministicAndBounded(t *testing.T) {
	t.Parallel()
	ref := &Spectrum{Freqs: []float64{1, 2, 3, 4, 5}, DB: []float64{50, 55, 60, 65, 70}}
	m1 := Measured(ref, 2, 42)
	m2 := Measured(ref, 2, 42)
	for i := range m1.DB {
		if m1.DB[i] != m2.DB[i] {
			t.Fatal("Measured is not deterministic")
		}
		if math.Abs(m1.DB[i]-ref.DB[i]) > 2 {
			t.Errorf("ripple exceeded bound: %v vs %v", m1.DB[i], ref.DB[i])
		}
	}
	m3 := Measured(ref, 2, 43)
	same := true
	for i := range m1.DB {
		if m1.DB[i] != m3.DB[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
	// The measurement stays well correlated with the reference.
	if c := Compare(ref, m1); c.Correlation < 0.9 {
		t.Errorf("measured correlation = %v", c.Correlation)
	}
}
