package emi

import (
	"math"
	"testing"
)

// tone synthesises A·sin(2πft) sampled at fs for dur seconds.
func tone(a, f, fs, dur float64) ([]float64, float64) {
	dt := 1 / fs
	n := int(dur * fs)
	out := make([]float64, n)
	for i := range out {
		out[i] = a * math.Sin(2*math.Pi*f*float64(i)*dt)
	}
	return out, dt
}

// fastBand is a receiver band with shortened QP time constants so unit
// tests settle within short synthetic waveforms.
var fastBand = ReceiverBand{Name: "test", RBW: 9e3, ChargeTC: 50e-6, DischargeTC: 2e-3, MeterTC: 1e-3}

func TestCWToneReadsEquallyOnAllDetectors(t *testing.T) {
	t.Parallel()
	// CISPR: a continuous sinusoid reads the same on peak, quasi-peak and
	// average detectors, equal to its RMS level.
	a := 1e-3 // 1 mV peak = 57.0 dBµV RMS
	samples, dt := tone(a, 1e6, 20e6, 20e-3)
	want := DBuV(a / math.Sqrt2)
	for _, det := range []Detector{Peak, QuasiPeak, Average} {
		got, err := MeasureWaveform(samples, dt, 1e6, fastBand, det)
		if err != nil {
			t.Fatalf("%v: %v", det, err)
		}
		if math.Abs(got-want) > 0.6 {
			t.Errorf("%v reads %.1f dBµV, want %.1f", det, got, want)
		}
	}
}

func TestPulsedSignalDetectorOrdering(t *testing.T) {
	t.Parallel()
	// A pulsed carrier (low duty) must read Peak > QuasiPeak > Average —
	// the defining property of the CISPR weighting chain.
	fs, f := 20e6, 1e6
	dt := 1 / fs
	n := int(40e-3 * fs)
	samples := make([]float64, n)
	// 100 µs bursts every 2 ms.
	for i := range samples {
		tt := float64(i) * dt
		if math.Mod(tt, 2e-3) < 100e-6 {
			samples[i] = 1e-3 * math.Sin(2*math.Pi*f*tt)
		}
	}
	pk, err := MeasureWaveform(samples, dt, f, fastBand, Peak)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := MeasureWaveform(samples, dt, f, fastBand, QuasiPeak)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := MeasureWaveform(samples, dt, f, fastBand, Average)
	if err != nil {
		t.Fatal(err)
	}
	if !(pk > qp+1 && qp > avg+1) {
		t.Errorf("detector ordering violated: PK %.1f, QP %.1f, AVG %.1f", pk, qp, avg)
	}
}

func TestOffTuneRejection(t *testing.T) {
	t.Parallel()
	// A tone 20×RBW away from the tuned frequency must be strongly
	// suppressed by the IF selectivity.
	a := 1e-3
	samples, dt := tone(a, 1e6, 20e6, 10e-3)
	on, err := MeasureWaveform(samples, dt, 1e6, fastBand, Peak)
	if err != nil {
		t.Fatal(err)
	}
	off, err := MeasureWaveform(samples, dt, 1e6+20*fastBand.RBW, fastBand, Peak)
	if err != nil {
		t.Fatal(err)
	}
	if on-off < 30 {
		t.Errorf("selectivity too weak: on-tune %.1f vs off-tune %.1f dBµV", on, off)
	}
}

func TestTwoToneSelectivity(t *testing.T) {
	t.Parallel()
	// Tuning picks out the right component of a two-tone signal.
	fs := 50e6
	dt := 1 / fs
	n := int(10e-3 * fs)
	samples := make([]float64, n)
	for i := range samples {
		tt := float64(i) * dt
		samples[i] = 1e-3*math.Sin(2*math.Pi*1e6*tt) + 0.1e-3*math.Sin(2*math.Pi*3e6*tt)
	}
	big, err := MeasureWaveform(samples, dt, 1e6, fastBand, Peak)
	if err != nil {
		t.Fatal(err)
	}
	small, err := MeasureWaveform(samples, dt, 3e6, fastBand, Peak)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((big-small)-20) > 1.5 {
		t.Errorf("level difference = %.1f dB, want 20", big-small)
	}
}

func TestBandFor(t *testing.T) {
	t.Parallel()
	if b := BandFor(100e3); b.Name != "A" {
		t.Errorf("100 kHz → band %s", b.Name)
	}
	if b := BandFor(1e6); b.Name != "B" || b.RBW != 9e3 {
		t.Errorf("1 MHz → band %s", b.Name)
	}
	if b := BandFor(50e6); b.Name != "C/D" || b.RBW != 120e3 {
		t.Errorf("50 MHz → band %s", b.Name)
	}
}

func TestMeasureWaveformErrors(t *testing.T) {
	t.Parallel()
	samples, dt := tone(1, 1e6, 20e6, 1e-3)
	if _, err := MeasureWaveform(nil, dt, 1e6, fastBand, Peak); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := MeasureWaveform(samples, 0, 1e6, fastBand, Peak); err == nil {
		t.Error("zero dt should fail")
	}
	if _, err := MeasureWaveform(samples, dt, 15e6, fastBand, Peak); err == nil {
		t.Error("above-Nyquist tune should fail")
	}
	if _, err := MeasureWaveform(samples, dt, 1e6, fastBand, Detector(99)); err == nil {
		t.Error("unknown detector should fail")
	}
}

func TestMeasureSpectrum(t *testing.T) {
	t.Parallel()
	a := 1e-3
	samples, dt := tone(a, 1e6, 20e6, 10e-3)
	s, err := MeasureSpectrum(samples, dt, []float64{0.5e6, 1e6, 2e6}, Peak, &fastBand)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Freqs) != 3 {
		t.Fatalf("spectrum size = %d", len(s.Freqs))
	}
	// The 1 MHz bin dominates.
	if !(s.DB[1] > s.DB[0]+20 && s.DB[1] > s.DB[2]+20) {
		t.Errorf("spectrum = %v", s.DB)
	}
}

func TestDetectorString(t *testing.T) {
	t.Parallel()
	if Peak.String() != "PK" || QuasiPeak.String() != "QP" || Average.String() != "AVG" {
		t.Error("detector names")
	}
	if Detector(9).String() != "?" {
		t.Error("unknown detector name")
	}
}
