package emi

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/engine"
	"repro/internal/mna"
	"repro/internal/netlist"
)

// Spectrum is a conducted-emission spectrum in dBµV over discrete
// frequencies (ascending).
type Spectrum struct {
	Freqs []float64
	DB    []float64 // dBµV (RMS convention)
}

// Predictor computes the conducted-emission spectrum of a converter
// circuit: the paper's interference prediction. Each switching device is
// represented by a V or I element carrying a PULSE description — the
// standard equivalent-source substitution, e.g. a voltage source in the
// diode position and a current source in the transistor position. All
// pulse sources must share the same switching period; the spectrum is
// obtained by solving the circuit at every harmonic of that frequency
// (with all sources driven coherently by their own Fourier coefficients)
// and reading the measurement node — typically a LISN receiver port.
type Predictor struct {
	Circuit     *netlist.Circuit
	SourceName  string   // single switching source (legacy convenience)
	Sources     []string // all switching sources; empty = [SourceName]
	MeasureNode string
	Harmonics   int     // number of harmonics; 0 = enough to reach BandStop
	MaxFreq     float64 // 0 = BandStop
}

// Spectrum runs the prediction. The circuit is not modified.
func (p *Predictor) Spectrum() (*Spectrum, error) {
	return p.SpectrumCtx(context.Background())
}

// SpectrumCtx is Spectrum with cancellation: once ctx is done no further
// harmonic solves start and the context's error is returned.
func (p *Predictor) SpectrumCtx(ctx context.Context) (*Spectrum, error) {
	ckt := p.Circuit.Clone()
	names := p.Sources
	if len(names) == 0 {
		names = []string{p.SourceName}
	}
	var srcs []*netlist.Element
	for _, name := range names {
		e := ckt.Find(name)
		if e == nil || (e.Kind != netlist.V && e.Kind != netlist.I) ||
			e.Src == nil || e.Src.Pulse == nil || e.Src.Pulse.Period <= 0 {
			return nil, fmt.Errorf("emi: %q is not a periodic PULSE source", name)
		}
		srcs = append(srcs, e)
	}
	period := srcs[0].Src.Pulse.Period
	for _, e := range srcs[1:] {
		if e.Src.Pulse.Period != period {
			return nil, fmt.Errorf("emi: source %q period %g differs from %g",
				e.Name, e.Src.Pulse.Period, period)
		}
	}
	f1 := 1 / period
	maxF := p.MaxFreq
	if maxF <= 0 {
		maxF = BandStop
	}
	n := p.Harmonics
	if n <= 0 {
		n = int(maxF / f1)
	}
	if n < 1 {
		n = 1
	}

	// Collect the harmonic grid.
	var ks []int
	for k := 1; k <= n; k++ {
		if float64(k)*f1 > maxF {
			break
		}
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("emi: no harmonics below %g Hz", maxF)
	}

	// The harmonics are independent AC solves: fan them out over the
	// shared engine pool. Each worker gets its own circuit clone and
	// analyzer because the source phasors are set per harmonic; each
	// harmonic writes only its own slot, so the spectrum is identical
	// under any parallelism.
	defer engine.Phase("emi.harmonics")()
	type workerState struct {
		srcs []*netlist.Element
		an   *mna.Analyzer
	}
	dbs := make([]float64, len(ks))
	err := engine.ForEachStateCtx(ctx, len(ks),
		func() (*workerState, error) {
			wc := ckt.Clone()
			s := &workerState{}
			for _, name := range names {
				s.srcs = append(s.srcs, wc.Find(name))
			}
			an, err := mna.NewAnalyzer(wc)
			if err != nil {
				return nil, err
			}
			s.an = an
			return s, nil
		},
		func(s *workerState, i int) error {
			k := ks[i]
			f := float64(k) * f1
			for _, e := range s.srcs {
				ck := TrapezoidHarmonic(e.Src.Pulse, k)
				// Drive each source with its harmonic's RMS phasor;
				// the solve superposes them coherently.
				e.Src.ACMag = math.Sqrt2 * cmplx.Abs(ck)
				e.Src.ACPhase = cmplx.Phase(ck)
			}
			sol, err := s.an.Solve(f)
			if err != nil {
				return fmt.Errorf("emi: harmonic %d: %w", k, err)
			}
			dbs[i] = DBuV(cmplx.Abs(sol.NodeVoltage(p.MeasureNode)))
			return nil
		})
	if err != nil {
		return nil, err
	}
	out := &Spectrum{}
	for i, k := range ks {
		out.Freqs = append(out.Freqs, float64(k)*f1)
		out.DB = append(out.DB, dbs[i])
	}
	return out, nil
}

// InBand returns the sub-spectrum within [lo, hi].
func (s *Spectrum) InBand(lo, hi float64) *Spectrum {
	out := &Spectrum{}
	for i, f := range s.Freqs {
		if f >= lo && f <= hi {
			out.Freqs = append(out.Freqs, f)
			out.DB = append(out.DB, s.DB[i])
		}
	}
	return out
}

// Max returns the highest level and its frequency.
func (s *Spectrum) Max() (f, db float64) {
	db = math.Inf(-1)
	for i, v := range s.DB {
		if v > db {
			db, f = v, s.Freqs[i]
		}
	}
	return f, db
}

// Violation is a spectrum point exceeding its CISPR limit.
type Violation struct {
	Freq    float64
	Level   float64
	LimitDB float64
}

// Violations returns all in-service-band points above the Class-5 limit.
func (s *Spectrum) Violations() []Violation {
	var out []Violation
	for i, f := range s.Freqs {
		limit, inBand := Limit(f)
		if inBand && s.DB[i] > limit {
			out = append(out, Violation{Freq: f, Level: s.DB[i], LimitDB: limit})
		}
	}
	return out
}

// WorstMargin returns the smallest (limit − level) over the protected
// bands; negative means a violation. An empty overlap returns +Inf.
func (s *Spectrum) WorstMargin() float64 {
	margin := math.Inf(1)
	for i, f := range s.Freqs {
		limit, inBand := Limit(f)
		if !inBand {
			continue
		}
		if m := limit - s.DB[i]; m < margin {
			margin = m
		}
	}
	return margin
}

// Comparison quantifies the agreement of two spectra on a shared frequency
// grid — how the paper judges prediction vs measurement (Figures 12–14).
type Comparison struct {
	MaxAbsDelta  float64 // worst disagreement in dB
	MeanAbsDelta float64 // average disagreement in dB
	Correlation  float64 // Pearson correlation of the dB traces
	N            int
}

// Compare evaluates both spectra at the frequencies they share.
func Compare(a, b *Spectrum) Comparison {
	bIdx := map[float64]int{}
	for i, f := range b.Freqs {
		bIdx[f] = i
	}
	var da, db []float64
	for i, f := range a.Freqs {
		if j, ok := bIdx[f]; ok {
			da = append(da, a.DB[i])
			db = append(db, b.DB[j])
		}
	}
	out := Comparison{N: len(da)}
	if len(da) == 0 {
		return out
	}
	var sumAbs, maxAbs float64
	var ma, mb float64
	for i := range da {
		d := math.Abs(da[i] - db[i])
		sumAbs += d
		if d > maxAbs {
			maxAbs = d
		}
		ma += da[i]
		mb += db[i]
	}
	n := float64(len(da))
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range da {
		cov += (da[i] - ma) * (db[i] - mb)
		va += (da[i] - ma) * (da[i] - ma)
		vb += (db[i] - mb) * (db[i] - mb)
	}
	out.MaxAbsDelta = maxAbs
	out.MeanAbsDelta = sumAbs / n
	if va > 0 && vb > 0 {
		out.Correlation = cov / math.Sqrt(va*vb)
	}
	return out
}

// Measured derives a virtual measurement from a reference spectrum: the
// complete coupled model plus a deterministic, seeded receiver ripple of
// the given peak amplitude in dB. This stands in for the paper's CISPR 25
// lab measurement (see DESIGN.md §2).
func Measured(ref *Spectrum, rippleDB float64, seed uint64) *Spectrum {
	out := &Spectrum{
		Freqs: append([]float64(nil), ref.Freqs...),
		DB:    make([]float64, len(ref.DB)),
	}
	state := seed*2862933555777941757 + 3037000493
	for i, db := range ref.DB {
		// xorshift-style deterministic noise in [-1, 1].
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		u := float64(state%2000)/1000 - 1
		out.DB[i] = db + rippleDB*u
	}
	return out
}
