package emi

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/engine"
	"repro/internal/linalg"
	"repro/internal/mna"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Spectrum is a conducted-emission spectrum in dBµV over discrete
// frequencies (ascending).
type Spectrum struct {
	Freqs []float64
	DB    []float64 // dBµV (RMS convention)
}

// Predictor computes the conducted-emission spectrum of a converter
// circuit: the paper's interference prediction. Each switching device is
// represented by a V or I element carrying a PULSE description — the
// standard equivalent-source substitution, e.g. a voltage source in the
// diode position and a current source in the transistor position. All
// pulse sources must share the same switching period; the spectrum is
// obtained by solving the circuit at every harmonic of that frequency
// (with all sources driven coherently by their own Fourier coefficients)
// and reading the measurement node — typically a LISN receiver port.
type Predictor struct {
	Circuit     *netlist.Circuit
	SourceName  string   // single switching source (legacy convenience)
	Sources     []string // all switching sources; empty = [SourceName]
	MeasureNode string
	Harmonics   int     // number of harmonics; 0 = enough to reach BandStop
	MaxFreq     float64 // 0 = BandStop

	// Solver overrides the MNA factorization backend for this prediction
	// only (ModeAuto, the zero value, defers to the process default). It
	// applies to every analyzer the fan-out compiles, so a per-request
	// choice never races another job's.
	Solver linalg.SolverMode
}

// Spectrum runs the prediction. The circuit is not modified.
func (p *Predictor) Spectrum() (*Spectrum, error) {
	return p.SpectrumCtx(context.Background())
}

// BandSolver evaluates emission spectra repeatedly over one circuit: it
// clones the circuit once, compiles one analyzer, and reuses both (plus
// the analyzer's assembly and factorization buffers) across harmonics and
// across whole predictions. It is the serial core of Predictor's fan-out
// and the per-worker engine of the sensitivity ranking, which re-predicts
// the band once per probed inductor pair. Not safe for concurrent use;
// create one per goroutine.
type BandSolver struct {
	an      *mna.Analyzer
	srcs    []*netlist.Element
	ks      []int
	f1      float64
	measure string
}

// NewBandSolver prepares a solver over its own clone of the circuit. The
// harmonic grid covers multiples of the sources' shared switching
// frequency up to maxFreq (0 = the CISPR band stop); harmonics > 0 caps
// the harmonic count.
func NewBandSolver(ckt *netlist.Circuit, sources []string, measure string, harmonics int, maxFreq float64) (*BandSolver, error) {
	wc := ckt.Clone()
	b := &BandSolver{measure: measure}
	for _, name := range sources {
		e := wc.Find(name)
		if e == nil || (e.Kind != netlist.V && e.Kind != netlist.I) ||
			e.Src == nil || e.Src.Pulse == nil || e.Src.Pulse.Period <= 0 {
			return nil, fmt.Errorf("emi: %q is not a periodic PULSE source", name)
		}
		b.srcs = append(b.srcs, e)
	}
	period := b.srcs[0].Src.Pulse.Period
	for _, e := range b.srcs[1:] {
		if e.Src.Pulse.Period != period {
			return nil, fmt.Errorf("emi: source %q period %g differs from %g",
				e.Name, e.Src.Pulse.Period, period)
		}
	}
	b.f1 = 1 / period
	maxF := maxFreq
	if maxF <= 0 {
		maxF = BandStop
	}
	n := harmonics
	if n <= 0 {
		n = int(maxF / b.f1)
	}
	if n < 1 {
		n = 1
	}
	for k := 1; k <= n; k++ {
		if float64(k)*b.f1 > maxF {
			break
		}
		b.ks = append(b.ks, k)
	}
	if len(b.ks) == 0 {
		return nil, fmt.Errorf("emi: no harmonics below %g Hz", maxF)
	}
	an, err := mna.NewAnalyzer(wc)
	if err != nil {
		return nil, err
	}
	b.an = an
	return b, nil
}

// Analyzer exposes the compiled analyzer, e.g. for probe couplings.
func (b *BandSolver) Analyzer() *mna.Analyzer { return b.an }

// SetSolver overrides the factorization backend of the compiled analyzer
// (see mna.Analyzer.SetSolver). ModeAuto restores the default heuristic.
func (b *BandSolver) SetSolver(m linalg.SolverMode) { b.an.SetSolver(m) }

// Freqs returns the harmonic grid frequencies, ascending.
func (b *BandSolver) Freqs() []float64 {
	out := make([]float64, len(b.ks))
	for i, k := range b.ks {
		out[i] = float64(k) * b.f1
	}
	return out
}

// SolveHarmonic solves grid point i and returns the measure-node level in
// dBµV. The sources are driven coherently by their own Fourier
// coefficients — the harmonic's RMS phasors — and the solve superposes
// them.
func (b *BandSolver) SolveHarmonic(i int) (float64, error) {
	k := b.ks[i]
	f := float64(k) * b.f1
	for _, e := range b.srcs {
		ck := TrapezoidHarmonic(e.Src.Pulse, k)
		e.Src.ACMag = math.Sqrt2 * cmplx.Abs(ck)
		e.Src.ACPhase = cmplx.Phase(ck)
	}
	sol, err := b.an.Solve(f)
	if err != nil {
		return 0, fmt.Errorf("emi: harmonic %d: %w", k, err)
	}
	return DBuV(cmplx.Abs(sol.NodeVoltage(b.measure))), nil
}

// SpectrumCtx computes the whole band serially, checking ctx between
// harmonics. Callers running many predictions fan out at a higher level
// (one BandSolver per worker) rather than per harmonic.
func (b *BandSolver) SpectrumCtx(ctx context.Context) (*Spectrum, error) {
	_, sp := obs.Start(ctx, "emi.band")
	sp.Int("harmonics", int64(len(b.ks)))
	defer sp.End()
	out := &Spectrum{
		Freqs: b.Freqs(),
		DB:    make([]float64, len(b.ks)),
	}
	for i := range b.ks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		db, err := b.SolveHarmonic(i)
		if err != nil {
			return nil, err
		}
		out.DB[i] = db
	}
	return out, nil
}

// SpectrumCtx is Spectrum with cancellation: once ctx is done no further
// harmonic solves start and the context's error is returned.
func (p *Predictor) SpectrumCtx(ctx context.Context) (*Spectrum, error) {
	names := p.Sources
	if len(names) == 0 {
		names = []string{p.SourceName}
	}
	// Validate and size the grid once; the workers compile their own
	// solvers from the same inputs.
	proto, err := NewBandSolver(p.Circuit, names, p.MeasureNode, p.Harmonics, p.MaxFreq)
	if err != nil {
		return nil, err
	}
	proto.SetSolver(p.Solver)
	ks := proto.ks

	// The harmonics are independent AC solves: fan them out over the
	// shared engine pool. Each worker gets its own BandSolver (clone +
	// compiled analyzer) because the source phasors are set per harmonic;
	// each harmonic writes only its own slot, so the spectrum is
	// identical under any parallelism.
	defer engine.Phase("emi.harmonics")()
	ctx, sp := obs.Start(ctx, "emi.spectrum")
	sp.Int("harmonics", int64(len(ks)))
	sp.Int("sources", int64(len(names)))
	defer sp.End()
	dbs := make([]float64, len(ks))
	err = engine.ForEachStateCtx(ctx, len(ks),
		func() (*BandSolver, error) {
			bs, err := NewBandSolver(p.Circuit, names, p.MeasureNode, p.Harmonics, p.MaxFreq)
			if err != nil {
				return nil, err
			}
			bs.SetSolver(p.Solver)
			return bs, nil
		},
		func(s *BandSolver, i int) error {
			db, err := s.SolveHarmonic(i)
			if err != nil {
				return err
			}
			dbs[i] = db
			return nil
		})
	if err != nil {
		return nil, err
	}
	return &Spectrum{Freqs: proto.Freqs(), DB: dbs}, nil
}

// InBand returns the sub-spectrum within [lo, hi].
func (s *Spectrum) InBand(lo, hi float64) *Spectrum {
	out := &Spectrum{}
	for i, f := range s.Freqs {
		if f >= lo && f <= hi {
			out.Freqs = append(out.Freqs, f)
			out.DB = append(out.DB, s.DB[i])
		}
	}
	return out
}

// Max returns the highest level and its frequency.
func (s *Spectrum) Max() (f, db float64) {
	db = math.Inf(-1)
	for i, v := range s.DB {
		if v > db {
			db, f = v, s.Freqs[i]
		}
	}
	return f, db
}

// Violation is a spectrum point exceeding its CISPR limit.
type Violation struct {
	Freq    float64
	Level   float64
	LimitDB float64
}

// Violations returns all in-service-band points above the Class-5 limit.
func (s *Spectrum) Violations() []Violation {
	var out []Violation
	for i, f := range s.Freqs {
		limit, inBand := Limit(f)
		if inBand && s.DB[i] > limit {
			out = append(out, Violation{Freq: f, Level: s.DB[i], LimitDB: limit})
		}
	}
	return out
}

// WorstMargin returns the smallest (limit − level) over the protected
// bands; negative means a violation. An empty overlap returns +Inf.
func (s *Spectrum) WorstMargin() float64 {
	margin := math.Inf(1)
	for i, f := range s.Freqs {
		limit, inBand := Limit(f)
		if !inBand {
			continue
		}
		if m := limit - s.DB[i]; m < margin {
			margin = m
		}
	}
	return margin
}

// Comparison quantifies the agreement of two spectra on a shared frequency
// grid — how the paper judges prediction vs measurement (Figures 12–14).
type Comparison struct {
	MaxAbsDelta  float64 // worst disagreement in dB
	MeanAbsDelta float64 // average disagreement in dB
	Correlation  float64 // Pearson correlation of the dB traces
	N            int
}

// compareRTol is the relative tolerance under which two grid frequencies
// count as the same point. Grids computed independently (k·f1 versus a
// harmonic enumeration, or a round-tripped TSV) agree only to roundoff,
// so exact float64 equality would silently drop every shared point.
const compareRTol = 1e-9

// sameFreq reports whether fa and fb are the same grid point up to
// relative roundoff.
func sameFreq(fa, fb float64) bool {
	scale := math.Max(math.Abs(fa), math.Abs(fb))
	return math.Abs(fa-fb) <= compareRTol*scale
}

// Compare evaluates both spectra at the frequencies they share, matching
// grid points within a relative tolerance (spectra are ascending by
// construction; the merge walks both grids once).
func Compare(a, b *Spectrum) Comparison {
	var da, db []float64
	for i, j := 0, 0; i < len(a.Freqs) && j < len(b.Freqs); {
		fa, fb := a.Freqs[i], b.Freqs[j]
		switch {
		case sameFreq(fa, fb):
			da = append(da, a.DB[i])
			db = append(db, b.DB[j])
			i++
			j++
		case fa < fb:
			i++
		default:
			j++
		}
	}
	out := Comparison{N: len(da)}
	if len(da) == 0 {
		return out
	}
	var sumAbs, maxAbs float64
	var ma, mb float64
	for i := range da {
		d := math.Abs(da[i] - db[i])
		sumAbs += d
		if d > maxAbs {
			maxAbs = d
		}
		ma += da[i]
		mb += db[i]
	}
	n := float64(len(da))
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range da {
		cov += (da[i] - ma) * (db[i] - mb)
		va += (da[i] - ma) * (da[i] - ma)
		vb += (db[i] - mb) * (db[i] - mb)
	}
	out.MaxAbsDelta = maxAbs
	out.MeanAbsDelta = sumAbs / n
	if va > 0 && vb > 0 {
		out.Correlation = cov / math.Sqrt(va*vb)
	}
	return out
}

// Measured derives a virtual measurement from a reference spectrum: the
// complete coupled model plus a deterministic, seeded receiver ripple of
// the given peak amplitude in dB. This stands in for the paper's CISPR 25
// lab measurement (see DESIGN.md §2).
func Measured(ref *Spectrum, rippleDB float64, seed uint64) *Spectrum {
	out := &Spectrum{
		Freqs: append([]float64(nil), ref.Freqs...),
		DB:    make([]float64, len(ref.DB)),
	}
	state := seed*2862933555777941757 + 3037000493
	for i, db := range ref.DB {
		// xorshift-style deterministic noise in [-1, 1].
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		u := float64(state%2000)/1000 - 1
		out.DB[i] = db + rippleDB*u
	}
	return out
}
