package emi

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTSV serialises a spectrum as tab-separated frequency/level pairs
// with a header line — the interchange format of the CLI tools, trivially
// plottable with any external tool.
func (s *Spectrum) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "freq_hz\tlevel_dbuv"); err != nil {
		return err
	}
	for i, f := range s.Freqs {
		if _, err := fmt.Fprintf(w, "%g\t%g\n", f, s.DB[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadTSV parses the WriteTSV format (the header is optional; '#' comments
// are skipped). Frequencies must be positive and strictly ascending.
func ReadTSV(r io.Reader) (*Spectrum, error) {
	out := &Spectrum{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("emi: tsv line %d: want 2 fields, got %d", line, len(fields))
		}
		f, errF := strconv.ParseFloat(fields[0], 64)
		db, errD := strconv.ParseFloat(fields[1], 64)
		if errF != nil || errD != nil {
			if line == 1 && strings.EqualFold(fields[0], "freq_hz") {
				continue // header
			}
			return nil, fmt.Errorf("emi: tsv line %d: bad numbers %q", line, text)
		}
		if f <= 0 {
			return nil, fmt.Errorf("emi: tsv line %d: non-positive frequency %g", line, f)
		}
		if n := len(out.Freqs); n > 0 && f <= out.Freqs[n-1] {
			return nil, fmt.Errorf("emi: tsv line %d: frequencies must ascend", line)
		}
		out.Freqs = append(out.Freqs, f)
		out.DB = append(out.DB, db)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out.Freqs) == 0 {
		return nil, fmt.Errorf("emi: tsv: no data rows")
	}
	return out, nil
}
