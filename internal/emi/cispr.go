// Package emi turns circuit models into conducted-emission spectra and
// judges them against CISPR 25 limits — the measurement context of the
// paper's buck-converter case study (its Figures 1, 2, 12–14).
package emi

import (
	"math"
)

// Conducted-emission band of CISPR 25 (voltage method).
const (
	BandStart = 150e3
	BandStop  = 108e6
)

// ServiceBand is one protected broadcast/mobile band of CISPR 25 with its
// Class-5 peak-detector voltage limit.
type ServiceBand struct {
	Name    string
	F0, F1  float64 // band edges in Hz
	LimitDB float64 // Class 5 peak limit in dBµV

	// ClassStep is the limit relaxation per class below 5: the class-c
	// limit is LimitDB + (5-c)·ClassStep (CISPR 25 grades its classes in
	// fixed per-band steps).
	ClassStep float64
}

// CISPR25Class5 lists the conducted-voltage service bands of CISPR 25
// (4th ed., voltage method, Class 5, peak detector) with the per-class
// relaxation steps.
var CISPR25Class5 = []ServiceBand{
	{"LW", 150e3, 300e3, 70, 10},
	{"MW", 530e3, 1.8e6, 54, 8},
	{"SW", 5.9e6, 6.2e6, 53, 6},
	{"CB", 26e6, 28e6, 44, 6},
	{"VHF", 30e6, 54e6, 44, 6},
	{"FM", 76e6, 108e6, 38, 6},
}

// LimitClass returns the peak limit at frequency f for the given CISPR 25
// class (1 = most permissive … 5 = strictest). Classes outside 1–5 clamp.
// The interpolation between service bands follows Limit.
func LimitClass(class int, f float64) (limitDB float64, inBand bool) {
	if class < 1 {
		class = 1
	}
	if class > 5 {
		class = 5
	}
	base, inBand := Limit(f)
	// The relaxation step of the nearest applicable band.
	step := CISPR25Class5[len(CISPR25Class5)-1].ClassStep
	for i, b := range CISPR25Class5 {
		if f <= b.F1 || i == len(CISPR25Class5)-1 {
			step = b.ClassStep
			break
		}
		if i+1 < len(CISPR25Class5) && f < CISPR25Class5[i+1].F0 {
			// Between bands: use the stricter (next) band's step.
			step = CISPR25Class5[i+1].ClassStep
			break
		}
	}
	return base + float64(5-class)*step, inBand
}

// Limit returns the applicable Class-5 peak limit at frequency f. Between
// the protected service bands CISPR 25 specifies no limit; there the
// function interpolates the neighbouring band limits on a log-frequency
// axis (a common engineering envelope) and reports inBand = false.
func Limit(f float64) (limitDB float64, inBand bool) {
	bands := CISPR25Class5
	if f < bands[0].F0 {
		return bands[0].LimitDB, false
	}
	if f > bands[len(bands)-1].F1 {
		return bands[len(bands)-1].LimitDB, false
	}
	for i, b := range bands {
		if f >= b.F0 && f <= b.F1 {
			return b.LimitDB, true
		}
		if i+1 < len(bands) && f > b.F1 && f < bands[i+1].F0 {
			// Log-frequency interpolation between band limits.
			next := bands[i+1]
			t := (math.Log10(f) - math.Log10(b.F1)) /
				(math.Log10(next.F0) - math.Log10(b.F1))
			return b.LimitDB + t*(next.LimitDB-b.LimitDB), false
		}
	}
	return bands[len(bands)-1].LimitDB, false
}

// DBuV converts an RMS voltage in volts to dBµV. Non-positive input maps to
// a floor of -200 dBµV rather than -Inf so downstream arithmetic stays
// finite.
func DBuV(vrms float64) float64 {
	if vrms <= 0 {
		return -200
	}
	db := 20 * math.Log10(vrms/1e-6)
	if db < -200 {
		return -200
	}
	return db
}

// FromDBuV converts dBµV back to an RMS voltage in volts.
func FromDBuV(db float64) float64 {
	return 1e-6 * math.Pow(10, db/20)
}
