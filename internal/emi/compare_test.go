package emi

import (
	"math"
	"testing"
)

// TestCompareMatchesRoundoffGrids: two grids computed by different code
// paths (k·f1 versus an accumulated enumeration) agree only to roundoff.
// The tolerance matcher must treat them as the same points; exact float64
// keying silently dropped all of them.
func TestCompareMatchesRoundoffGrids(t *testing.T) {
	t.Parallel()
	f1 := 1 / 5e-6 // 200 kHz fundamental, not representable exactly
	n := 50
	a := &Spectrum{}
	for k := 1; k <= n; k++ {
		a.Freqs = append(a.Freqs, float64(k)*f1)
		a.DB = append(a.DB, 40+float64(k))
	}
	b := &Spectrum{}
	acc := 0.0
	for k := 1; k <= n; k++ {
		acc += f1 // accumulated sum drifts a few ulps from k·f1
		b.Freqs = append(b.Freqs, acc)
		b.DB = append(b.DB, 40+float64(k))
	}
	cmp := Compare(a, b)
	if cmp.N != n {
		t.Fatalf("matched %d of %d roundoff-equal points", cmp.N, n)
	}
	if cmp.MaxAbsDelta != 0 {
		t.Errorf("identical traces: MaxAbsDelta = %v", cmp.MaxAbsDelta)
	}
}

func TestCompareDistinctFrequenciesNotMatched(t *testing.T) {
	t.Parallel()
	a := &Spectrum{Freqs: []float64{1e6, 2e6, 3e6}, DB: []float64{1, 2, 3}}
	b := &Spectrum{Freqs: []float64{1.5e6, 2e6, 2.5e6}, DB: []float64{9, 2, 9}}
	cmp := Compare(a, b)
	if cmp.N != 1 {
		t.Fatalf("matched %d points, want only the shared 2 MHz", cmp.N)
	}
	if cmp.MaxAbsDelta != 0 {
		t.Errorf("2 MHz traces agree: MaxAbsDelta = %v", cmp.MaxAbsDelta)
	}
}

func TestCompareNearbyButDifferentGridPoints(t *testing.T) {
	t.Parallel()
	// 1 ppm apart is a different measurement point, far outside the
	// roundoff tolerance — must not be conflated.
	f := 30e6
	a := &Spectrum{Freqs: []float64{f}, DB: []float64{10}}
	b := &Spectrum{Freqs: []float64{f * (1 + 1e-6)}, DB: []float64{99}}
	if cmp := Compare(a, b); cmp.N != 0 {
		t.Fatalf("1 ppm-apart frequencies matched (N=%d)", cmp.N)
	}
	// A few ulps apart is the same point.
	fb := math.Nextafter(math.Nextafter(f, math.Inf(1)), math.Inf(1))
	b = &Spectrum{Freqs: []float64{fb}, DB: []float64{10}}
	if cmp := Compare(a, b); cmp.N != 1 {
		t.Fatalf("ulp-equal frequencies not matched (N=%d)", cmp.N)
	}
}
