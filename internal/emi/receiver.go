package emi

import (
	"fmt"
	"math"
)

// Detector selects the CISPR 16-1-1 weighting of the measuring receiver.
type Detector int

// Detector kinds.
const (
	Peak Detector = iota
	QuasiPeak
	Average
)

// String implements fmt.Stringer.
func (d Detector) String() string {
	switch d {
	case Peak:
		return "PK"
	case QuasiPeak:
		return "QP"
	case Average:
		return "AVG"
	}
	return "?"
}

// ReceiverBand holds the measuring-receiver parameters of one CISPR band:
// the -6 dB resolution bandwidth and the quasi-peak detector time
// constants.
type ReceiverBand struct {
	Name        string
	RBW         float64 // resolution bandwidth, Hz
	ChargeTC    float64 // QP charge time constant, s
	DischargeTC float64 // QP discharge time constant, s
	MeterTC     float64 // critically damped meter time constant, s
}

// CISPR 16-1-1 band definitions.
var (
	BandA  = ReceiverBand{Name: "A", RBW: 200, ChargeTC: 45e-3, DischargeTC: 500e-3, MeterTC: 160e-3}
	BandB  = ReceiverBand{Name: "B", RBW: 9e3, ChargeTC: 1e-3, DischargeTC: 160e-3, MeterTC: 160e-3}
	BandCD = ReceiverBand{Name: "C/D", RBW: 120e3, ChargeTC: 1e-3, DischargeTC: 550e-3, MeterTC: 100e-3}
)

// BandFor returns the receiver band applicable at frequency f.
func BandFor(f float64) ReceiverBand {
	switch {
	case f < 150e3:
		return BandA
	case f < 30e6:
		return BandB
	default:
		return BandCD
	}
}

// MeasureWaveform runs a tuned measuring-receiver model over a sampled
// waveform (volts, fixed step dt): I/Q down-conversion at fTune, a 4-pole
// low-pass matched to the band's RBW, envelope detection and the selected
// detector weighting. It returns the reading in dBµV (RMS convention, so a
// settled CW tone reads identically on all detectors, as CISPR requires).
//
// The waveform must be several filter time constants long; the first
// settling portion is excluded from the detector statistics.
func MeasureWaveform(samples []float64, dt, fTune float64, band ReceiverBand, det Detector) (float64, error) {
	n := len(samples)
	if n == 0 || dt <= 0 || fTune <= 0 {
		return 0, fmt.Errorf("emi: invalid receiver input (n=%d dt=%g f=%g)", n, dt, fTune)
	}
	if fTune >= 0.5/dt {
		return 0, fmt.Errorf("emi: tune frequency %g above Nyquist %g", fTune, 0.5/dt)
	}
	// 4-pole one-real-pole cascade: the -6 dB bandwidth of k cascaded
	// poles at cutoff fc is 2·fc·sqrt(2^(1/k)−1)·sqrt(3)… empirically for
	// envelope selectivity a cutoff of RBW/2 per pole scaled by the
	// cascade factor works; we set the single-pole cutoff so the cascade's
	// -6 dB two-sided width equals RBW.
	k := 4.0
	scale := math.Sqrt(math.Pow(4, 1/k) - 1) // per-pole -6dB half width factor
	fc := band.RBW / 2 / scale
	alpha := 1 - math.Exp(-2*math.Pi*fc*dt)

	var iF, qS [4]float64 // cascade states for the I and Q channels
	envAt := func(idx int, x float64) float64 {
		ph := 2 * math.Pi * fTune * float64(idx) * dt
		s, c := math.Sincos(ph)
		i0 := x * c
		q0 := x * -s
		for st := 0; st < 4; st++ {
			iF[st] += alpha * (i0 - iF[st])
			i0 = iF[st]
			qS[st] += alpha * (q0 - qS[st])
			q0 = qS[st]
		}
		// Envelope of the analytic signal; ×2 recovers the tone amplitude
		// lost in mixing.
		return 2 * math.Hypot(i0, q0)
	}

	// Settle: skip max(12 filter TCs, 10 carrier periods). Twelve time
	// constants (≈ 104 dB of decayed turn-on transient) keep the filter's
	// own step response below the dynamic range of multi-line spectra.
	settle := int(12 / (2 * math.Pi * fc) / dt)
	if s2 := int(10 / fTune / dt); s2 > settle {
		settle = s2
	}
	if settle >= n {
		settle = n / 2
	}

	peak, sum := 0.0, 0.0
	count := 0
	qpState, qpMeter, qpMax := 0.0, 0.0, 0.0
	for idx, x := range samples {
		env := envAt(idx, x)
		if idx < settle {
			continue
		}
		count++
		if env > peak {
			peak = env
		}
		sum += env
		// Quasi-peak charge/discharge network plus meter smoothing.
		if env > qpState {
			qpState += dt / band.ChargeTC * (env - qpState)
		} else {
			qpState -= dt / band.DischargeTC * qpState
		}
		qpMeter += dt / band.MeterTC * (qpState - qpMeter)
		if qpMeter > qpMax {
			qpMax = qpMeter
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("emi: waveform too short to settle the receiver")
	}
	var amp float64
	switch det {
	case Peak:
		amp = peak
	case Average:
		amp = sum / float64(count)
	case QuasiPeak:
		amp = qpMax
	default:
		return 0, fmt.Errorf("emi: unknown detector %v", det)
	}
	// RMS convention: a settled CW tone of amplitude A reads A/√2.
	return DBuV(amp / math.Sqrt2), nil
}

// MeasureSpectrum applies the receiver at each frequency and returns a
// Spectrum. The band parameters are chosen per frequency via BandFor
// unless a non-zero override is supplied.
func MeasureSpectrum(samples []float64, dt float64, freqs []float64, det Detector, override *ReceiverBand) (*Spectrum, error) {
	out := &Spectrum{}
	for _, f := range freqs {
		band := BandFor(f)
		if override != nil {
			band = *override
		}
		db, err := MeasureWaveform(samples, dt, f, band, det)
		if err != nil {
			return nil, fmt.Errorf("emi: at %g Hz: %w", f, err)
		}
		out.Freqs = append(out.Freqs, f)
		out.DB = append(out.DB, db)
	}
	return out, nil
}
