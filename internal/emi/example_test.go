package emi_test

import (
	"fmt"

	"repro/internal/emi"
)

// CISPR 25 protects specific broadcast/mobile service bands; between them
// no limit applies.
func ExampleLimit() {
	for _, f := range []float64{200e3, 1e6, 100e6, 400e3} {
		limit, inBand := emi.Limit(f)
		fmt.Printf("%7.2f MHz: limit %.0f dBµV (service band: %v)\n", f/1e6, limit, inBand)
	}
	// Output:
	//    0.20 MHz: limit 70 dBµV (service band: true)
	//    1.00 MHz: limit 54 dBµV (service band: true)
	//  100.00 MHz: limit 38 dBµV (service band: true)
	//    0.40 MHz: limit 62 dBµV (service band: false)
}

func ExampleDBuV() {
	fmt.Printf("1 µV  = %.0f dBµV\n", emi.DBuV(1e-6))
	fmt.Printf("1 mV  = %.0f dBµV\n", emi.DBuV(1e-3))
	fmt.Printf("1 V   = %.0f dBµV\n", emi.DBuV(1))
	// Output:
	// 1 µV  = 0 dBµV
	// 1 mV  = 60 dBµV
	// 1 V   = 120 dBµV
}
