package emi

import (
	"math"
	"math/cmplx"

	"repro/internal/netlist"
)

// TrapezoidHarmonic returns the complex Fourier-series coefficient c_k of
// the periodic trapezoid described by p, computed by exact integration of
// the piecewise-linear waveform:
//
//	v(t) = Σ_k c_k · e^{+j·2πk·t/T},  c_{-k} = conj(c_k)
//
// k = 0 returns the average value. The trapezoid's rise time controls the
// second corner frequency of the classical 20/40 dB-per-decade envelope —
// the spectral shape that drives conducted emissions of hard-switched
// converters.
func TrapezoidHarmonic(p *netlist.Pulse, k int) complex128 {
	if p.Period <= 0 {
		return complex(p.V1, 0)
	}
	T := p.Period
	if k == 0 {
		// Average of the piecewise-linear waveform.
		hi := p.V2*(p.Width+(p.Rise+p.Fall)/2) + p.V1*(p.Rise+p.Fall)/2
		lo := p.V1 * (T - p.Rise - p.Width - p.Fall)
		return complex((hi+lo)/T, 0)
	}
	omega := 2 * math.Pi * float64(k) / T
	// Integrate v(t)·e^{-jωt} over the four linear pieces starting at the
	// rise (Delay only shifts the phase; applied at the end).
	t0 := 0.0
	total := complex(0, 0)
	pieces := []struct {
		dur    float64
		v0, v1 float64
	}{
		{p.Rise, p.V1, p.V2},
		{p.Width, p.V2, p.V2},
		{p.Fall, p.V2, p.V1},
		{T - p.Rise - p.Width - p.Fall, p.V1, p.V1},
	}
	for _, pc := range pieces {
		if pc.dur <= 0 {
			continue
		}
		total += linSegIntegral(pc.v0, pc.v1, t0, t0+pc.dur, omega)
		t0 += pc.dur
	}
	ck := total / complex(T, 0)
	// Delay shift: v(t - d) ⇒ c_k · e^{-jωd}.
	return ck * cmplx.Rect(1, -omega*p.Delay)
}

// linSegIntegral evaluates ∫_{t0}^{t1} v(t)·e^{-jωt} dt for the linear ramp
// v(t) from v0 at t0 to v1 at t1 (closed form).
func linSegIntegral(v0, v1, t0, t1 float64, omega float64) complex128 {
	b := (v1 - v0) / (t1 - t0)
	jw := complex(0, omega)
	f := func(t float64) complex128 {
		v := v0 + b*(t-t0)
		// ∫(a+bt)e^{-jωt}dt = e^{-jωt}·( -(a+bt)/(jω) - b/ω² )… evaluated
		// via the antiderivative below.
		return cmplx.Exp(-jw*complex(t, 0)) *
			(complex(v, 0)/(-jw) - complex(b, 0)/(jw*jw))
	}
	return f(t1) - f(t0)
}

// HarmonicRMS returns the RMS amplitude of harmonic k (k >= 1) of the
// pulse: √2·|c_k| corresponds to a cosine of peak 2·|c_k|.
func HarmonicRMS(p *netlist.Pulse, k int) float64 {
	return math.Sqrt2 * cmplx.Abs(TrapezoidHarmonic(p, k))
}
