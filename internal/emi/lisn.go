package emi

import (
	"fmt"

	"repro/internal/netlist"
)

// LISN parameters of the CISPR 25 5 µH artificial network.
const (
	LISNInductance  = 5e-6   // series inductor
	LISNCouplingCap = 0.1e-6 // measurement coupling capacitor
	LISNSupplyCap   = 1e-6   // supply-side capacitor
	LISNMeasureR    = 50.0   // receiver input impedance
	LISNSupplyR     = 1.0    // damping resistor on the supply cap
)

// AddLISN inserts a CISPR 25 artificial network between the supply node and
// the equipment node. The conducted noise is measured at the returned node
// (voltage across the 50 Ω receiver). prefix namespaces the element names
// so two LISNs (e.g. positive and return line) can coexist. Element names
// start with their kind letter (L/C/R) so the netlist stays parseable.
func AddLISN(c *netlist.Circuit, prefix, supplyNode, equipmentNode string) (measureNode string) {
	measureNode = prefix + "_meas"
	mid := prefix + "_cap"
	c.AddL("L"+prefix, supplyNode, equipmentNode, LISNInductance)
	c.AddC("Cs"+prefix, supplyNode, mid, LISNSupplyCap)
	c.AddR("Rs"+prefix, mid, "0", LISNSupplyR)
	c.AddC("Cc"+prefix, equipmentNode, measureNode, LISNCouplingCap)
	c.AddR("Rm"+prefix, measureNode, "0", LISNMeasureR)
	return measureNode
}

// ValidateLISN checks that the named LISN is present and intact in the
// circuit — a guard for harnesses assembling circuits from parts.
func ValidateLISN(c *netlist.Circuit, prefix string) error {
	for _, name := range []string{"L", "Cs", "Rs", "Cc", "Rm"} {
		if c.Find(name+prefix) == nil {
			return fmt.Errorf("emi: LISN %q is missing element %s", prefix, name+prefix)
		}
	}
	return nil
}
