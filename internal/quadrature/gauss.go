// Package quadrature provides Gauss–Legendre quadrature rules used by the
// PEEC engine to evaluate Neumann mutual-inductance integrals.
package quadrature

import (
	"fmt"
	"math"
	"sync"
)

// Rule holds quadrature nodes and weights on the reference interval [-1, 1].
type Rule struct {
	Nodes   []float64
	Weights []float64
}

var (
	cacheMu sync.Mutex
	cache   = map[int]Rule{}
)

// Legendre returns the n-point Gauss–Legendre rule on [-1, 1]. Rules are
// computed once by Newton iteration on the Legendre polynomial and cached.
// n must be >= 1.
func Legendre(n int) Rule {
	if n < 1 {
		panic(fmt.Sprintf("quadrature: invalid rule order %d", n))
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if r, ok := cache[n]; ok {
		return r
	}
	r := Rule{
		Nodes:   make([]float64, n),
		Weights: make([]float64, n),
	}
	for i := 0; i < (n+1)/2; i++ {
		// Chebyshev-like initial guess for the i-th root of P_n.
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var dp float64
		for iter := 0; iter < 100; iter++ {
			p, d := legendrePoly(n, x)
			dp = d
			dx := p / d
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		w := 2 / ((1 - x*x) * dp * dp)
		r.Nodes[i] = -x
		r.Weights[i] = w
		r.Nodes[n-1-i] = x
		r.Weights[n-1-i] = w
	}
	if n%2 == 1 {
		// Middle node is exactly zero for odd n.
		r.Nodes[n/2] = 0
		_, d := legendrePoly(n, 0)
		r.Weights[n/2] = 2 / (d * d)
	}
	cache[n] = r
	return r
}

// legendrePoly evaluates the Legendre polynomial P_n and its derivative at x
// using the three-term recurrence.
func legendrePoly(n int, x float64) (p, dp float64) {
	p0, p1 := 1.0, x
	if n == 0 {
		return 1, 0
	}
	for k := 2; k <= n; k++ {
		p0, p1 = p1, ((2*float64(k)-1)*x*p1-(float64(k)-1)*p0)/float64(k)
	}
	dp = float64(n) * (x*p1 - p0) / (x*x - 1)
	return p1, dp
}

// Integrate approximates the integral of f over [a, b] with the n-point rule.
func Integrate(f func(float64) float64, a, b float64, n int) float64 {
	r := Legendre(n)
	mid, half := (a+b)/2, (b-a)/2
	sum := 0.0
	for i, x := range r.Nodes {
		sum += r.Weights[i] * f(mid+half*x)
	}
	return sum * half
}

// Integrate2D approximates the double integral of f over [a1,b1]×[a2,b2]
// using the tensor product of two n-point rules.
func Integrate2D(f func(x, y float64) float64, a1, b1, a2, b2 float64, n int) float64 {
	r := Legendre(n)
	m1, h1 := (a1+b1)/2, (b1-a1)/2
	m2, h2 := (a2+b2)/2, (b2-a2)/2
	sum := 0.0
	for i, xi := range r.Nodes {
		x := m1 + h1*xi
		rowSum := 0.0
		for j, yj := range r.Nodes {
			rowSum += r.Weights[j] * f(x, m2+h2*yj)
		}
		sum += r.Weights[i] * rowSum
	}
	return sum * h1 * h2
}
