package quadrature

import (
	"math"
	"testing"
)

func TestLegendreNodesKnown(t *testing.T) {
	t.Parallel()
	// 2-point rule: nodes ±1/√3, weights 1.
	r := Legendre(2)
	want := 1 / math.Sqrt(3)
	if math.Abs(r.Nodes[0]+want) > 1e-14 || math.Abs(r.Nodes[1]-want) > 1e-14 {
		t.Errorf("2-point nodes = %v", r.Nodes)
	}
	if math.Abs(r.Weights[0]-1) > 1e-14 || math.Abs(r.Weights[1]-1) > 1e-14 {
		t.Errorf("2-point weights = %v", r.Weights)
	}
	// 3-point rule: nodes 0, ±√(3/5); weights 8/9, 5/9.
	r = Legendre(3)
	if math.Abs(r.Nodes[1]) > 1e-14 {
		t.Errorf("3-point middle node = %v", r.Nodes[1])
	}
	if math.Abs(r.Nodes[2]-math.Sqrt(0.6)) > 1e-14 {
		t.Errorf("3-point node = %v", r.Nodes[2])
	}
	if math.Abs(r.Weights[1]-8.0/9) > 1e-14 {
		t.Errorf("3-point middle weight = %v", r.Weights[1])
	}
	if math.Abs(r.Weights[0]-5.0/9) > 1e-14 {
		t.Errorf("3-point edge weight = %v", r.Weights[0])
	}
}

func TestWeightsSumToTwo(t *testing.T) {
	t.Parallel()
	for n := 1; n <= 20; n++ {
		r := Legendre(n)
		sum := 0.0
		for _, w := range r.Weights {
			sum += w
		}
		if math.Abs(sum-2) > 1e-12 {
			t.Errorf("n=%d: weight sum = %v", n, sum)
		}
	}
}

func TestExactForPolynomials(t *testing.T) {
	t.Parallel()
	// n-point Gauss–Legendre integrates polynomials up to degree 2n-1 exactly.
	for n := 1; n <= 8; n++ {
		deg := 2*n - 1
		f := func(x float64) float64 { return math.Pow(x, float64(deg)) }
		got := Integrate(f, 0, 1, n)
		want := 1 / float64(deg+1)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("n=%d deg=%d: got %v want %v", n, deg, got, want)
		}
	}
}

func TestIntegrateKnown(t *testing.T) {
	t.Parallel()
	got := Integrate(math.Sin, 0, math.Pi, 12)
	if math.Abs(got-2) > 1e-10 {
		t.Errorf("∫sin over [0,π] = %v", got)
	}
	got = Integrate(func(x float64) float64 { return math.Exp(-x * x) }, -5, 5, 40)
	if math.Abs(got-math.Sqrt(math.Pi)) > 1e-8 {
		t.Errorf("gaussian integral = %v", got)
	}
}

func TestIntegrate2D(t *testing.T) {
	t.Parallel()
	// ∫∫ x*y over [0,1]² = 1/4.
	got := Integrate2D(func(x, y float64) float64 { return x * y }, 0, 1, 0, 1, 4)
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("∫∫xy = %v", got)
	}
	// ∫∫ sin(x)cos(y) over [0,π]×[0,π/2] = 2·1 = 2.
	got = Integrate2D(func(x, y float64) float64 { return math.Sin(x) * math.Cos(y) },
		0, math.Pi, 0, math.Pi/2, 12)
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("∫∫sin·cos = %v", got)
	}
}

func TestInvalidOrderPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("Legendre(0) must panic")
		}
	}()
	Legendre(0)
}

func TestRuleCaching(t *testing.T) {
	t.Parallel()
	a := Legendre(7)
	b := Legendre(7)
	if &a.Nodes[0] != &b.Nodes[0] {
		t.Error("rules should be cached and shared")
	}
}
