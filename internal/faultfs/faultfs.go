// Package faultfs simulates storage faults for the durability tests:
// torn writes (a crash between sectors persists only a prefix of a
// write), short writes (the device errors mid-write), and kill-point
// directory clones (the on-disk image an abrupt process death at a given
// byte offset would leave behind). The write-ahead log layer must turn
// every one of these into a clean truncation of the acknowledged prefix
// — never a panic, never silently accepted garbage.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ErrInjected is returned by writes past a configured fault point.
var ErrInjected = errors.New("faultfs: injected write failure")

// File wraps a writer, injecting a fault once the cumulative byte count
// crosses a threshold. Two fault modes:
//
//   - Tear: bytes past the threshold are silently dropped while the
//     write reports full success — the caller believes the record is
//     durable, the medium holds a prefix. This is the torn-write model
//     (crash after acknowledging, before all sectors hit the platter).
//   - Fail: the write stops at the threshold and returns ErrInjected
//     with a short byte count — the short-write model (device error the
//     caller observes and must handle).
type File struct {
	w       io.Writer
	written int64
	limit   int64 // -1: no fault armed
	tear    bool
}

// New wraps w with no fault armed.
func New(w io.Writer) *File {
	return &File{w: w, limit: -1}
}

// TearAfter arms a torn write: everything past the first n bytes is
// silently dropped while writes keep reporting success.
func (f *File) TearAfter(n int64) { f.limit, f.tear = n, true }

// FailAfter arms a short write: the write that crosses the first n bytes
// persists only up to the threshold and returns ErrInjected.
func (f *File) FailAfter(n int64) { f.limit, f.tear = n, false }

// Written returns the bytes actually persisted to the underlying writer.
func (f *File) Written() int64 { return f.written }

func (f *File) Write(p []byte) (int, error) {
	if f.limit < 0 || f.written+int64(len(p)) <= f.limit {
		n, err := f.w.Write(p)
		f.written += int64(n)
		return n, err
	}
	keep := f.limit - f.written
	if keep < 0 {
		keep = 0
	}
	n, err := f.w.Write(p[:keep])
	f.written += int64(n)
	if err != nil {
		return n, err
	}
	if f.tear {
		// Torn write: claim success for the whole buffer.
		return len(p), nil
	}
	return n, ErrInjected
}

// CloneTruncated copies the data directory src to dst, truncating the
// single file at relPath to size bytes — the image a SIGKILL at that
// byte offset leaves behind. Every other file is copied verbatim. The
// kill-point sweep calls this once per record boundary.
func CloneTruncated(src, dst, relPath string, size int64) error {
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if rel == filepath.FromSlash(relPath) {
			if size > int64(len(data)) {
				return fmt.Errorf("faultfs: truncate %s to %d: file has %d bytes", relPath, size, len(data))
			}
			data = data[:size]
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		return fmt.Errorf("faultfs: clone %s: %w", src, err)
	}
	return nil
}

// Corrupt flips one bit at the given byte offset of a file in place —
// the bit-rot model the checksum layer must catch.
func Corrupt(path string, offset int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if offset < 0 || offset >= int64(len(data)) {
		return fmt.Errorf("faultfs: corrupt %s at %d: file has %d bytes", path, offset, len(data))
	}
	data[offset] ^= 0x40
	return os.WriteFile(path, data, 0o644)
}
