package faultfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestTearAfter(t *testing.T) {
	t.Parallel()
	var medium bytes.Buffer
	f := New(&medium)
	f.TearAfter(10)

	// First write fits entirely under the limit.
	if n, err := f.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("pre-fault write: n=%d err=%v", n, err)
	}
	// Second write crosses the limit: full success claimed, prefix kept.
	if n, err := f.Write([]byte("abcdef")); n != 6 || err != nil {
		t.Fatalf("torn write: n=%d err=%v, want claimed success", n, err)
	}
	// Writes after the tear persist nothing but still claim success.
	if n, err := f.Write([]byte("xyz")); n != 3 || err != nil {
		t.Fatalf("post-tear write: n=%d err=%v", n, err)
	}
	if got := medium.String(); got != "12345678ab" {
		t.Fatalf("medium holds %q, want the 10-byte prefix", got)
	}
	if f.Written() != 10 {
		t.Fatalf("Written()=%d, want 10", f.Written())
	}
}

func TestFailAfter(t *testing.T) {
	t.Parallel()
	var medium bytes.Buffer
	f := New(&medium)
	f.FailAfter(5)
	n, err := f.Write([]byte("abcdefgh"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write: n=%d err=%v, want 5 bytes and ErrInjected", n, err)
	}
	if medium.String() != "abcde" {
		t.Fatalf("medium holds %q", medium.String())
	}
}

func TestNoFaultPassthrough(t *testing.T) {
	t.Parallel()
	var medium bytes.Buffer
	f := New(&medium)
	if n, err := f.Write([]byte("hello")); n != 5 || err != nil {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if medium.String() != "hello" || f.Written() != 5 {
		t.Fatal("unarmed writer altered the data")
	}
}

func TestCloneTruncated(t *testing.T) {
	t.Parallel()
	src := t.TempDir()
	if err := os.MkdirAll(filepath.Join(src, "sessions"), 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{
		"jobs.wal":             []byte("jobrecords"),
		"sessions/s000001.wal": []byte("0123456789abcdef"),
		"sessions/s000002.wal": []byte("untouched"),
	}
	for rel, data := range files {
		if err := os.WriteFile(filepath.Join(src, filepath.FromSlash(rel)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	dst := t.TempDir()
	if err := CloneTruncated(src, dst, "sessions/s000001.wal", 7); err != nil {
		t.Fatal(err)
	}
	for rel, want := range files {
		got, err := os.ReadFile(filepath.Join(dst, filepath.FromSlash(rel)))
		if err != nil {
			t.Fatal(err)
		}
		if rel == "sessions/s000001.wal" {
			want = want[:7]
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: %q, want %q", rel, got, want)
		}
	}

	// Truncating past the end is a test bug, not a silent no-op.
	if err := CloneTruncated(src, t.TempDir(), "jobs.wal", 99); err == nil {
		t.Fatal("oversized truncation accepted")
	}
}

func TestCorrupt(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "f.wal")
	if err := os.WriteFile(path, []byte{0x00, 0x01, 0x02}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Corrupt(path, 1); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0x00, 0x41, 0x02}) {
		t.Fatalf("corrupted file is % x", got)
	}
	if err := Corrupt(path, 3); err == nil {
		t.Fatal("out-of-range corruption accepted")
	}
}
