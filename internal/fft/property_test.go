package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

// boundedComplexSlice maps arbitrary float pairs into a short signal.
func boundedComplexSlice(re, im []float64) []complex128 {
	n := len(re)
	if len(im) < n {
		n = len(im)
	}
	if n == 0 {
		return nil
	}
	if n > 64 {
		n = 64
	}
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		r, q := re[i], im[i]
		if math.IsNaN(r) || math.IsInf(r, 0) {
			r = 0
		}
		if math.IsNaN(q) || math.IsInf(q, 0) {
			q = 0
		}
		out[i] = complex(math.Mod(r, 100), math.Mod(q, 100))
	}
	return out
}

func TestQuickFFTLinearity(t *testing.T) {
	t.Parallel()
	// FFT(a·x + y) = a·FFT(x) + FFT(y) on same-length signals.
	f := func(re1, im1 []float64, scale float64) bool {
		x := boundedComplexSlice(re1, im1)
		if len(x) < 2 {
			return true
		}
		if math.IsNaN(scale) || math.IsInf(scale, 0) {
			scale = 1
		}
		a := complex(math.Mod(scale, 10), 0)
		y := make([]complex128, len(x))
		for i := range y {
			y[i] = complex(float64(i%5)-2, float64(i%3))
		}
		mixed := make([]complex128, len(x))
		for i := range mixed {
			mixed[i] = a*x[i] + y[i]
		}
		fx, fy, fm := FFT(x), FFT(y), FFT(mixed)
		for i := range fm {
			want := a*fx[i] + fy[i]
			if cmplx.Abs(fm[i]-want) > 1e-6*(cmplx.Abs(want)+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickIFFTInverts(t *testing.T) {
	t.Parallel()
	f := func(re, im []float64) bool {
		x := boundedComplexSlice(re, im)
		if len(x) == 0 {
			return true
		}
		y := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(x[i]-y[i]) > 1e-7*(cmplx.Abs(x[i])+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickParseval(t *testing.T) {
	t.Parallel()
	f := func(re, im []float64) bool {
		x := boundedComplexSlice(re, im)
		if len(x) == 0 {
			return true
		}
		y := FFT(x)
		var te, fe float64
		for _, v := range x {
			te += real(v)*real(v) + imag(v)*imag(v)
		}
		for _, v := range y {
			fe += real(v)*real(v) + imag(v)*imag(v)
		}
		fe /= float64(len(x))
		return math.Abs(te-fe) <= 1e-7*(te+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
