// Package fft provides the discrete Fourier transform machinery used to
// turn simulated time-domain converter waveforms into conducted-emission
// spectra: an iterative radix-2 Cooley–Tukey transform, Bluestein's
// algorithm for arbitrary lengths, window functions and single-sided
// amplitude spectra.
package fft

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the discrete Fourier transform of x (any length; the input is
// not modified). Power-of-two lengths use radix-2 Cooley–Tukey directly;
// other lengths go through Bluestein's chirp-z reduction.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		out := make([]complex128, n)
		copy(out, x)
		radix2(out, false)
		return out
	}
	return bluestein(x)
}

// IFFT returns the inverse DFT of x, normalised by 1/N.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	conj := make([]complex128, n)
	for i, v := range x {
		conj[i] = cmplx.Conj(v)
	}
	y := FFT(conj)
	inv := complex(1/float64(n), 0)
	for i, v := range y {
		y[i] = cmplx.Conj(v) * inv
	}
	return y
}

// radix2 transforms x in place; x must have power-of-two length.
func radix2(x []complex128, _ bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		wBase := cmplx.Rect(1, step)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wBase
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution evaluated
// with power-of-two FFTs.
func bluestein(x []complex128) []complex128 {
	n := len(x)
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	// Chirp: c_k = exp(-iπ k² / n). Compute k² mod 2n to avoid float
	// blow-up for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Rect(1, -math.Pi*float64(kk)/float64(n))
	}
	a := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
	}
	b := make([]complex128, m)
	b[0] = cmplx.Conj(chirp[0])
	for k := 1; k < n; k++ {
		v := cmplx.Conj(chirp[k])
		b[k] = v
		b[m-k] = v
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	// Inverse of length m.
	for i := range a {
		a[i] = cmplx.Conj(a[i])
	}
	radix2(a, false)
	inv := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = cmplx.Conj(a[k]*inv) * chirp[k]
	}
	return out
}

// Hann returns the n-point Hann window. Its coherent gain is 0.5, which
// AmplitudeSpectrum compensates.
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// Rectangular returns the all-ones window.
func Rectangular(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// AmplitudeSpectrum computes the single-sided amplitude spectrum of a real
// waveform sampled at interval dt, applying the given window with
// coherent-gain correction. It returns the frequency axis and the peak
// amplitudes (volts if the input is volts): bin magnitudes are scaled by
// 2/(N·G) except DC, where the factor is 1/(N·G), with G the mean window
// value.
func AmplitudeSpectrum(samples []float64, dt float64, window []float64) (freqs, amps []float64) {
	n := len(samples)
	if n == 0 || dt <= 0 {
		return nil, nil
	}
	if window == nil {
		window = Rectangular(n)
	}
	gain := 0.0
	x := make([]complex128, n)
	for i, s := range samples {
		w := 1.0
		if i < len(window) {
			w = window[i]
		}
		gain += w
		x[i] = complex(s*w, 0)
	}
	gain /= float64(n)
	if gain == 0 {
		gain = 1
	}
	y := FFT(x)
	half := n/2 + 1
	freqs = make([]float64, half)
	amps = make([]float64, half)
	df := 1 / (dt * float64(n))
	for k := 0; k < half; k++ {
		freqs[k] = float64(k) * df
		scale := 2 / (float64(n) * gain)
		if k == 0 || (n%2 == 0 && k == n/2) {
			scale = 1 / (float64(n) * gain)
		}
		amps[k] = cmplx.Abs(y[k]) * scale
	}
	return freqs, amps
}
