package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			sum += x[j] * cmplx.Rect(1, -2*math.Pi*float64(k*j)/float64(n))
		}
		out[k] = sum
	}
	return out
}

func maxDiff(a, b []complex128) float64 {
	max := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

func randomSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaive(t *testing.T) {
	t.Parallel()
	// Cover radix-2 sizes, odd sizes, primes and 1.
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 64, 100} {
		x := randomSignal(n, int64(n))
		got := FFT(x)
		want := naiveDFT(x)
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: max diff %v", n, d)
		}
	}
}

func TestFFTEmpty(t *testing.T) {
	t.Parallel()
	if FFT(nil) != nil || IFFT(nil) != nil {
		t.Error("empty transforms should be nil")
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	t.Parallel()
	for _, n := range []int{4, 10, 37, 128} {
		x := randomSignal(n, int64(1000+n))
		y := IFFT(FFT(x))
		if d := maxDiff(x, y); d > 1e-9*float64(n) {
			t.Errorf("n=%d: round-trip diff %v", n, d)
		}
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	t.Parallel()
	x := randomSignal(8, 1)
	orig := make([]complex128, len(x))
	copy(orig, x)
	FFT(x)
	if maxDiff(x, orig) != 0 {
		t.Error("FFT mutated its input")
	}
}

func TestParsevalTheorem(t *testing.T) {
	t.Parallel()
	for _, n := range []int{16, 33} {
		x := randomSignal(n, int64(7*n))
		y := FFT(x)
		var tEnergy, fEnergy float64
		for _, v := range x {
			tEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		for _, v := range y {
			fEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		fEnergy /= float64(n)
		if math.Abs(tEnergy-fEnergy)/tEnergy > 1e-9 {
			t.Errorf("n=%d: Parseval violated: %v vs %v", n, tEnergy, fEnergy)
		}
	}
}

func TestHannWindow(t *testing.T) {
	t.Parallel()
	w := Hann(101)
	if w[0] > 1e-12 || w[100] > 1e-12 {
		t.Error("Hann endpoints must be 0")
	}
	if math.Abs(w[50]-1) > 1e-12 {
		t.Error("Hann center must be 1")
	}
	if Hann(1)[0] != 1 {
		t.Error("Hann(1) must be [1]")
	}
	for _, x := range Rectangular(5) {
		if x != 1 {
			t.Error("rectangular window must be 1s")
		}
	}
}

func TestAmplitudeSpectrumPureTone(t *testing.T) {
	t.Parallel()
	// A 1 kHz, 2 V sine sampled coherently: the spectrum shows 2 V at
	// exactly the 1 kHz bin, both with and without a window.
	fs := 64000.0
	n := 640 // 10 full cycles of 1 kHz
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = 2 * math.Sin(2*math.Pi*1000*float64(i)/fs)
	}
	for _, win := range [][]float64{nil, Hann(n)} {
		freqs, amps := AmplitudeSpectrum(samples, 1/fs, win)
		// Locate the 1 kHz bin.
		best := 0
		for k := range freqs {
			if math.Abs(freqs[k]-1000) < math.Abs(freqs[best]-1000) {
				best = k
			}
		}
		if math.Abs(freqs[best]-1000) > 1e-6 {
			t.Fatalf("no 1 kHz bin: %v", freqs[best])
		}
		if math.Abs(amps[best]-2) > 0.02 {
			t.Errorf("tone amplitude = %v, want 2", amps[best])
		}
	}
}

func TestAmplitudeSpectrumDCOffset(t *testing.T) {
	t.Parallel()
	samples := make([]float64, 256)
	for i := range samples {
		samples[i] = 3
	}
	_, amps := AmplitudeSpectrum(samples, 1e-3, nil)
	if math.Abs(amps[0]-3) > 1e-9 {
		t.Errorf("DC bin = %v, want 3", amps[0])
	}
	for _, a := range amps[1:] {
		if a > 1e-9 {
			t.Errorf("non-DC bin = %v, want 0", a)
		}
	}
}

func TestAmplitudeSpectrumDegenerate(t *testing.T) {
	t.Parallel()
	if f, a := AmplitudeSpectrum(nil, 1e-3, nil); f != nil || a != nil {
		t.Error("empty input")
	}
	if f, _ := AmplitudeSpectrum([]float64{1}, 0, nil); f != nil {
		t.Error("zero dt")
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := randomSignal(1024, 42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTBluestein1000(b *testing.B) {
	x := randomSignal(1000, 42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
