package rules

import (
	"math"
	"strings"
	"testing"

	"repro/internal/components"
	"repro/internal/geom"
	"repro/internal/peec"
)

func TestEMDCosineLaw(t *testing.T) {
	t.Parallel()
	r := Rule{RefA: "L1", RefB: "L2", PEMD: 0.02}
	if got := r.EMD(0); got != 0.02 {
		t.Errorf("EMD(0) = %v", got)
	}
	if got := r.EMD(math.Pi / 2); math.Abs(got) > 1e-12 {
		t.Errorf("EMD(90°) = %v, want 0", got)
	}
	if got := r.EMD(math.Pi / 3); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("EMD(60°) = %v, want 0.01", got)
	}
	// |cos| folds angles beyond 90°.
	if got := r.EMD(math.Pi); math.Abs(got-0.02) > 1e-12 {
		t.Errorf("EMD(180°) = %v, want 0.02", got)
	}
}

func TestSetAddLookup(t *testing.T) {
	t.Parallel()
	s := NewSet([]Rule{
		{RefA: "C1", RefB: "C2", PEMD: 0.01},
		{RefA: "C2", RefB: "C3", PEMD: 0.02},
	})
	if d, ok := s.Lookup("C1", "C2"); !ok || d != 0.01 {
		t.Errorf("Lookup C1/C2 = %v %v", d, ok)
	}
	// Order independent.
	if d, ok := s.Lookup("C2", "C1"); !ok || d != 0.01 {
		t.Errorf("Lookup C2/C1 = %v %v", d, ok)
	}
	if _, ok := s.Lookup("C1", "C3"); ok {
		t.Error("unconstrained pair must not be found")
	}
	// Add replaces duplicates (in either order).
	s.Add(Rule{RefA: "C2", RefB: "C1", PEMD: 0.03})
	if d, _ := s.Lookup("C1", "C2"); d != 0.03 {
		t.Errorf("replaced PEMD = %v", d)
	}
	if len(s.Rules) != 2 {
		t.Errorf("rule count = %d", len(s.Rules))
	}
	if got := s.Of("C2"); len(got) != 2 {
		t.Errorf("Of(C2) = %v", got)
	}
	if got := s.TotalPEMD(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("TotalPEMD = %v", got)
	}
	// Nil set lookups are safe.
	var nilSet *Set
	if _, ok := nilSet.Lookup("a", "b"); ok {
		t.Error("nil set lookup")
	}
}

func TestDerivePEMDCapacitors(t *testing.T) {
	t.Parallel()
	// Two X2 caps with k_max = 0.01: expect a rule in the centimeter range
	// (the paper's Figure 5 regime).
	m := components.NewX2Cap("X2", 1.5e-6)
	d, err := DerivePEMD(m, m, DeriveOptions{KMax: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if d < 5e-3 || d > 0.2 {
		t.Errorf("PEMD = %v m, want centimeter range", d)
	}
	// At the derived distance the coupling is at most k_max in both
	// displacement directions.
	for _, dir := range []geom.Vec2{{X: 1}, {Y: 1}} {
		a := &components.Instance{Ref: "a", Model: m}
		b := &components.Instance{Ref: "b", Model: m, Center: dir.Scale(d * 1.001)}
		if k := math.Abs(components.CouplingFactor(a, b, peec.DefaultOrder)); k > 0.0105 {
			t.Errorf("k at PEMD along %v = %v > 0.01", dir, k)
		}
	}
	// A stricter threshold gives a larger distance.
	d2, err := DerivePEMD(m, m, DeriveOptions{KMax: 0.003})
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d {
		t.Errorf("stricter k_max should need more distance: %v vs %v", d2, d)
	}
}

func TestDerivePEMDRelaxedThresholdZero(t *testing.T) {
	t.Parallel()
	// A loose threshold that is met even at touching distance gives 0 (no
	// constraint).
	m := components.NewMLCC("MLCC", 100e-9)
	d, err := DerivePEMD(m, m, DeriveOptions{KMax: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("PEMD = %v, want 0", d)
	}
}

func TestDerivePEMDNonMagnetic(t *testing.T) {
	t.Parallel()
	body := &components.BodyModel{ModelName: "IC", W: 0.01, L: 0.01, H: 0.002}
	cap := components.NewX2Cap("X2", 1e-6)
	d, err := DerivePEMD(body, cap, DeriveOptions{})
	if err != nil || d != 0 {
		t.Errorf("non-magnetic PEMD = %v, %v", d, err)
	}
}

func TestDerivePEMDShieldPlaneDependency(t *testing.T) {
	t.Parallel()
	// The paper: the minimum distance "depends on the presence of
	// shielding planes like ground planes". For the standing (vertical)
	// capacitor loops the image currents reduce the self-inductances
	// faster than the mutual, so the k-based distance shifts — while the
	// absolute mutual inductance is reduced (TestGroundPlaneReducesCoupling
	// in peec covers that direction).
	m := components.NewX2Cap("X2", 1.5e-6)
	free, err := DerivePEMD(m, m, DeriveOptions{KMax: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	z := -1e-3 // 1 mm under the component origins
	shielded, err := DerivePEMD(m, m, DeriveOptions{KMax: 0.01, ShieldPlane: &z})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(shielded-free) < 1e-3 {
		t.Errorf("shield plane should change the PEMD: %.1f mm vs %.1f mm free",
			shielded*1e3, free*1e3)
	}
	// A distant plane has nearly no effect.
	zFar := -0.5
	far, err := DerivePEMD(m, m, DeriveOptions{KMax: 0.01, ShieldPlane: &zFar})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(far-free) > 1e-3 {
		t.Errorf("distant plane should not matter: %.1f mm vs %.1f mm", far*1e3, free*1e3)
	}
}

func TestDerivePEMDUnreachable(t *testing.T) {
	t.Parallel()
	m := components.NewX2Cap("X2", 1.5e-6)
	// Absurd threshold cannot be met within DMax.
	if _, err := DerivePEMD(m, m, DeriveOptions{KMax: 1e-9, DMax: 0.05}); err == nil {
		t.Error("unreachable threshold should error")
	}
}

func TestRuleSetRoundTrip(t *testing.T) {
	t.Parallel()
	s := NewSet([]Rule{
		{RefA: "C1", RefB: "C2", PEMD: 0.0123},
		{RefA: "L1", RefB: "C2", PEMD: 0.025},
	})
	var b strings.Builder
	if err := s.Write(&b); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Read: %v\n%s", err, b.String())
	}
	if len(got.Rules) != 2 {
		t.Fatalf("rules = %d", len(got.Rules))
	}
	if d, ok := got.Lookup("C1", "C2"); !ok || math.Abs(d-0.0123) > 1e-7 {
		t.Errorf("round-tripped PEMD = %v", d)
	}
}

func TestReadErrorsAndComments(t *testing.T) {
	t.Parallel()
	if _, err := Read(strings.NewReader("PEMD a b\n")); err == nil {
		t.Error("short line should fail")
	}
	if _, err := Read(strings.NewReader("XEMD a b 5\n")); err == nil {
		t.Error("bad keyword should fail")
	}
	if _, err := Read(strings.NewReader("PEMD a b -5\n")); err == nil {
		t.Error("negative distance should fail")
	}
	s, err := Read(strings.NewReader("# comment\n\nPEMD a b 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := s.Lookup("a", "b"); !ok || math.Abs(d-0.005) > 1e-12 {
		t.Errorf("parsed = %v %v", d, ok)
	}
}

func TestSetRemove(t *testing.T) {
	t.Parallel()
	s := NewSet([]Rule{
		{RefA: "C1", RefB: "C2", PEMD: 0.01},
		{RefA: "C2", RefB: "C3", PEMD: 0.02},
		{RefA: "C3", RefB: "C4", PEMD: 0.03},
	})
	// Removal is order independent.
	if !s.Remove("C3", "C2") {
		t.Fatal("Remove C3/C2 should report true")
	}
	if _, ok := s.Lookup("C2", "C3"); ok {
		t.Error("removed rule still found")
	}
	if len(s.Rules) != 2 {
		t.Fatalf("rule count = %d", len(s.Rules))
	}
	// The remaining rules keep working through the reindexed map.
	if d, ok := s.Lookup("C1", "C2"); !ok || d != 0.01 {
		t.Errorf("Lookup C1/C2 = %v %v", d, ok)
	}
	if d, ok := s.Lookup("C4", "C3"); !ok || d != 0.03 {
		t.Errorf("Lookup C4/C3 = %v %v", d, ok)
	}
	// Removing a missing pair is a no-op.
	if s.Remove("C2", "C3") {
		t.Error("second Remove should report false")
	}
	// Add after Remove reuses the freed slot correctly.
	s.Add(Rule{RefA: "C2", RefB: "C3", PEMD: 0.05})
	if d, _ := s.Lookup("C2", "C3"); d != 0.05 {
		t.Errorf("re-added PEMD = %v", d)
	}
}
