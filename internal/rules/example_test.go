package rules_test

import (
	"fmt"
	"math"

	"repro/internal/rules"
)

// The paper's placement rule: the pairwise minimum distance PEMD is defined
// for parallel magnetic axes and shrinks with the rotation angle between
// them, vanishing at 90°.
func ExampleEMD() {
	pemd := 24e-3 // 24 mm at parallel axes
	for _, deg := range []float64{0, 45, 90} {
		fmt.Printf("alpha=%2.0f°  EMD=%.1f mm\n", deg, rules.EMD(pemd, deg*math.Pi/180)*1e3)
	}
	// Output:
	// alpha= 0°  EMD=24.0 mm
	// alpha=45°  EMD=17.0 mm
	// alpha=90°  EMD=0.0 mm
}

func ExampleSet_Lookup() {
	set := rules.NewSet([]rules.Rule{
		{RefA: "C1", RefB: "C2", PEMD: 0.020},
	})
	d, ok := set.Lookup("C2", "C1") // order-independent
	fmt.Printf("%.0f mm, found=%v\n", d*1e3, ok)
	_, ok = set.Lookup("C1", "C9")
	fmt.Println("unconstrained pair found =", ok)
	// Output:
	// 20 mm, found=true
	// unconstrained pair found = false
}
