package rules

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuickEMDBounds(t *testing.T) {
	t.Parallel()
	// 0 <= EMD(pemd, α) <= pemd for every angle and non-negative PEMD.
	f := func(pemd, alpha float64) bool {
		if math.IsNaN(pemd) || math.IsInf(pemd, 0) || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			return true
		}
		pemd = math.Abs(math.Mod(pemd, 1))
		e := EMD(pemd, alpha)
		return e >= 0 && e <= pemd+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickEMDPeriodicAndSymmetric(t *testing.T) {
	t.Parallel()
	// |cos| makes EMD π-periodic and even in α.
	f := func(pemd, alpha float64) bool {
		if math.IsNaN(pemd) || math.IsInf(pemd, 0) || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			return true
		}
		pemd = math.Abs(math.Mod(pemd, 1))
		alpha = math.Mod(alpha, 10)
		a := EMD(pemd, alpha)
		b := EMD(pemd, alpha+math.Pi)
		c := EMD(pemd, -alpha)
		tol := 1e-9 * (pemd + 1)
		return math.Abs(a-b) <= tol && math.Abs(a-c) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSetLookupConsistency(t *testing.T) {
	t.Parallel()
	// Whatever order rules are added in, Lookup returns the last value for
	// the unordered pair.
	f := func(d1, d2 float64, swap bool) bool {
		if math.IsNaN(d1) || math.IsNaN(d2) || math.IsInf(d1, 0) || math.IsInf(d2, 0) {
			return true
		}
		d1 = math.Abs(math.Mod(d1, 0.1))
		d2 = math.Abs(math.Mod(d2, 0.1))
		s := NewSet(nil)
		s.Add(Rule{RefA: "A", RefB: "B", PEMD: d1})
		if swap {
			s.Add(Rule{RefA: "B", RefB: "A", PEMD: d2})
		} else {
			s.Add(Rule{RefA: "A", RefB: "B", PEMD: d2})
		}
		got1, ok1 := s.Lookup("A", "B")
		got2, ok2 := s.Lookup("B", "A")
		return ok1 && ok2 && got1 == d2 && got2 == d2 && len(s.Rules) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
