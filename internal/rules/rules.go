// Package rules derives and evaluates the paper's placement design rules:
// pairwise minimum distances PEMD_ij, defined for parallel magnetic axes,
// whose effective value shrinks with the rotation angle between the axes as
//
//	EMD_ij = PEMD_ij · |cos(alpha_ij)|
//
// so that orthogonal axes fully decouple and the parts may sit arbitrarily
// close (the paper's Figure 6 and Figure 10).
package rules

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/components"
	"repro/internal/geom"
	"repro/internal/peec"
)

// Rule is one pairwise minimum-distance requirement between two reference
// designators. PEMD is the center-to-center distance in meters required
// when the magnetic axes are parallel.
type Rule struct {
	RefA, RefB string
	PEMD       float64
}

// EMD returns the effective minimum distance for axis angle alpha.
func (r Rule) EMD(alpha float64) float64 {
	return EMD(r.PEMD, alpha)
}

// EMD computes PEMD·|cos(alpha)|.
func EMD(pemd, alpha float64) float64 {
	return pemd * math.Abs(math.Cos(alpha))
}

// Set is a collection of rules with pair lookup.
type Set struct {
	Rules []Rule
	index map[[2]string]int
}

// NewSet builds a Set from rules, keeping the last rule for duplicates.
func NewSet(rules []Rule) *Set {
	s := &Set{index: map[[2]string]int{}}
	for _, r := range rules {
		s.Add(r)
	}
	return s
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Add inserts or replaces the rule for the pair.
func (s *Set) Add(r Rule) {
	if s.index == nil {
		s.index = map[[2]string]int{}
	}
	k := pairKey(r.RefA, r.RefB)
	if i, ok := s.index[k]; ok {
		s.Rules[i] = r
		return
	}
	s.index[k] = len(s.Rules)
	s.Rules = append(s.Rules, r)
}

// Remove deletes the rule for the pair, preserving the order of the
// remaining rules. It reports whether a rule was present. Sessions use it
// to undo a rule addition.
func (s *Set) Remove(a, b string) bool {
	if s == nil || s.index == nil {
		return false
	}
	k := pairKey(a, b)
	i, ok := s.index[k]
	if !ok {
		return false
	}
	s.Rules = append(s.Rules[:i], s.Rules[i+1:]...)
	delete(s.index, k)
	for kk, j := range s.index {
		if j > i {
			s.index[kk] = j - 1
		}
	}
	return true
}

// Lookup returns the PEMD for a pair, or 0 if unconstrained.
func (s *Set) Lookup(a, b string) (float64, bool) {
	if s == nil || s.index == nil {
		return 0, false
	}
	i, ok := s.index[pairKey(a, b)]
	if !ok {
		return 0, false
	}
	return s.Rules[i].PEMD, true
}

// Of returns all rules touching the given reference.
func (s *Set) Of(ref string) []Rule {
	var out []Rule
	for _, r := range s.Rules {
		if r.RefA == ref || r.RefB == ref {
			out = append(out, r)
		}
	}
	return out
}

// TotalPEMD returns the sum of all PEMD values — the quantity whose
// EMD-sum the placement tool's rotation step minimises.
func (s *Set) TotalPEMD() float64 {
	sum := 0.0
	for _, r := range s.Rules {
		sum += r.PEMD
	}
	return sum
}

// DeriveOptions tunes the PEMD derivation.
type DeriveOptions struct {
	KMax   float64 // acceptable residual coupling factor; 0 = 0.01
	DMin   float64 // closest center distance probed; 0 = touching bodies
	DMax   float64 // largest distance probed; 0 = 0.5 m
	Order  int     // quadrature order; 0 = peec.DefaultOrder
	Points int     // bisection iterations; 0 = 40

	// ShieldPlane, when non-nil, places an ideal shielding plane (e.g. a
	// ground plane) at the given z below the components. Its image
	// currents reduce the mutual coupling, which relaxes the derived
	// minimum distance — the paper's observation that the distance
	// "depends on the presence of shielding planes like ground planes".
	ShieldPlane *float64
}

// DerivePEMD computes the minimum center-to-center distance at which the
// worst-case parallel-axis coupling factor of two component models falls to
// KMax: the paper's EMI-prediction-derived placement rule. Both
// displacement directions (along and across the magnetic axis) are probed
// and the worse one governs. A PEMD of 0 means the parts never couple above
// KMax, even touching; an error is returned if they still couple at DMax.
func DerivePEMD(a, b components.Model, opt DeriveOptions) (float64, error) {
	kmax := opt.KMax
	if kmax == 0 {
		kmax = 0.01
	}
	order := opt.Order
	if order == 0 {
		order = peec.DefaultOrder
	}
	iters := opt.Points
	if iters == 0 {
		iters = 40
	}
	wa, la, _ := a.Size()
	wb, lb, _ := b.Size()
	dMin := opt.DMin
	if dMin == 0 {
		dMin = (math.Max(wa, la) + math.Max(wb, lb)) / 2
	}
	dMax := opt.DMax
	if dMax == 0 {
		dMax = 0.5
	}
	ca, cb := a.Conductor(0), b.Conductor(0)
	if len(ca.Segments) == 0 || len(cb.Segments) == 0 {
		return 0, nil // non-magnetic parts never constrain
	}
	// Self-inductances do not depend on the displacement: compute once.
	// A shield plane lowers them via the image currents, consistently with
	// the mutual below.
	var indA, indB float64
	if opt.ShieldPlane != nil {
		indA = ca.SelfInductanceWithPlane(*opt.ShieldPlane, order)
		indB = cb.SelfInductanceWithPlane(*opt.ShieldPlane, order)
	} else {
		indA = ca.SelfInductanceOrder(order)
		indB = cb.SelfInductanceOrder(order)
	}
	if indA <= 0 || indB <= 0 {
		return 0, nil
	}
	norm := math.Sqrt(indA * indB)

	kAt := func(d float64) float64 {
		worst := 0.0
		for _, dir := range []geom.Vec2{{X: 1}, {Y: 1}} {
			moved := cb.Translate(dir.Scale(d).Lift(0))
			var m float64
			if opt.ShieldPlane != nil {
				m = peec.MutualWithPlane(ca, moved, *opt.ShieldPlane, order)
			} else {
				m = peec.Mutual(ca, moved, order)
			}
			k := math.Abs(m) / norm
			if k > worst {
				worst = k
			}
		}
		return worst
	}

	if kAt(dMin) <= kmax {
		return 0, nil
	}
	if kAt(dMax) > kmax {
		return 0, fmt.Errorf("rules: %s/%s still couple above k=%g at %g m",
			a.Name(), b.Name(), kmax, dMax)
	}
	lo, hi := dMin, dMax
	for i := 0; i < iters && hi-lo > 1e-5; i++ {
		mid := (lo + hi) / 2
		if kAt(mid) > kmax {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// Write serialises the set in the ASCII rule format of the placement tool:
// one "PEMD refA refB <mm>" line per rule, sorted for stable output.
func (s *Set) Write(w io.Writer) error {
	rules := append([]Rule(nil), s.Rules...)
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].RefA != rules[j].RefA {
			return rules[i].RefA < rules[j].RefA
		}
		return rules[i].RefB < rules[j].RefB
	})
	for _, r := range rules {
		if _, err := fmt.Fprintf(w, "PEMD %s %s %.4f\n", r.RefA, r.RefB, r.PEMD*1e3); err != nil {
			return err
		}
	}
	return nil
}

// Read parses the ASCII rule format (distances in millimeters).
func Read(r io.Reader) (*Set, error) {
	s := NewSet(nil)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		if len(f) != 4 || f[0] != "PEMD" {
			return nil, fmt.Errorf("rules: line %d: want \"PEMD refA refB mm\", got %q", line, text)
		}
		mm, err := strconv.ParseFloat(f[3], 64)
		if err != nil || mm < 0 {
			return nil, fmt.Errorf("rules: line %d: bad distance %q", line, f[3])
		}
		s.Add(Rule{RefA: f[1], RefB: f[2], PEMD: mm * 1e-3})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
