package engine

import (
	"fmt"
	"io"
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Atomic work counters. They measure cost, never influence results, so
// every hot path increments them unconditionally.
var (
	ctrMNASolves   atomic.Uint64
	ctrNeumann     atomic.Uint64
	ctrCacheHits   atomic.Uint64
	ctrCacheMisses atomic.Uint64
	ctrPoolBatches atomic.Uint64
	ctrPoolTasks   atomic.Uint64
	ctrAssemblies  atomic.Uint64
	ctrFactors     atomic.Uint64
	ctrResolves    atomic.Uint64

	ctrSparseFactors  atomic.Uint64
	ctrSparseResolves atomic.Uint64
)

// solverLabel is the human-readable factorization-backend selection the
// CLIs advertise through -stats (e.g. "auto", "sparse (forced)"). Empty
// until a command or test sets it.
var solverLabel atomic.Value

// SetSolverLabel records the solver-selection mode for the -stats report.
func SetSolverLabel(s string) { solverLabel.Store(s) }

// SolverLabel returns the recorded solver-selection mode ("" if unset).
func SolverLabel() string {
	if v := solverLabel.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// CountMNASolve records one frequency-domain MNA solve.
func CountMNASolve() { ctrMNASolves.Add(1) }

// CountAssembly records one dense-matrix assembly (a stamp-plan pass or a
// netlist walk filling a system matrix).
func CountAssembly() { ctrAssemblies.Add(1) }

// CountFactor records one LU factorization.
func CountFactor() { ctrFactors.Add(1) }

// CountResolve records one triangular solve against a retained
// factorization. Resolves far in excess of factorizations are the
// signature of the solver substrate reusing its work.
func CountResolve() { ctrResolves.Add(1) }

// CountFactorSparse records one sparse LU factorization (numeric refactor
// or full symbolic+numeric). Sparse factorizations also count as plain
// factorizations, so the lu totals stay comparable across backends.
func CountFactorSparse() { ctrFactors.Add(1); ctrSparseFactors.Add(1) }

// CountResolveSparse records one sparse triangular resolve; see
// CountFactorSparse for the double-count convention.
func CountResolveSparse() { ctrResolves.Add(1); ctrSparseResolves.Add(1) }

// CountNeumann records one Neumann mutual-inductance integral (one
// filament-pair double integral, before adaptive subdivision).
func CountNeumann() { ctrNeumann.Add(1) }

func statCacheHit()  { ctrCacheHits.Add(1) }
func statCacheMiss() { ctrCacheMisses.Add(1) }
func statPoolBatch(n int) {
	ctrPoolBatches.Add(1)
	ctrPoolTasks.Add(uint64(n))
}

// CacheCounts returns the memo-cache hit/miss counters — the cheap
// accessor span attributes use (Snapshot takes the phase lock and
// sorts; this is two atomic loads).
func CacheCounts() (hits, misses uint64) {
	return ctrCacheHits.Load(), ctrCacheMisses.Load()
}

// LUCounts returns the assembly/factorization/resolve counters, equally
// cheaply. Deltas of these across a span are approximate under
// concurrency (the counters are process-global) but still separate "one
// refactor per frequency" from "resolves against a retained LU" at a
// glance.
func LUCounts() (assemblies, factorizations, resolves uint64) {
	return ctrAssemblies.Load(), ctrFactors.Load(), ctrResolves.Load()
}

// PhaseStat is the accumulated wall time and heap allocation of one
// named phase. Bytes counts process-global heap allocation during the
// phase (runtime/metrics "/gc/heap/allocs:bytes"), so concurrent phases
// attribute each other's allocations — a cost profile, not an exact
// per-phase ledger.
type PhaseStat struct {
	Name  string
	Calls uint64
	Wall  time.Duration
	Bytes uint64
}

// allocSamples pools the one-element runtime/metrics sample slices so
// heapAllocBytes itself stays allocation-free on the steady state.
var allocSamples = sync.Pool{New: func() any {
	s := make([]metrics.Sample, 1)
	s[0].Name = "/gc/heap/allocs:bytes"
	return &s
}}

// heapAllocBytes reads the cumulative heap allocation counter.
func heapAllocBytes() uint64 {
	sp := allocSamples.Get().(*[]metrics.Sample)
	metrics.Read(*sp)
	v := (*sp)[0].Value.Uint64()
	allocSamples.Put(sp)
	return v
}

var phases = struct {
	sync.Mutex
	m map[string]*PhaseStat
}{m: map[string]*PhaseStat{}}

// Phase starts timing a named phase and returns the function that ends
// it. Typical use:
//
//	defer engine.Phase("extract.mutual")()
//
// Phases may run concurrently; wall time accumulates per call, so
// overlapping calls double-count wall clock (the counter measures
// phase effort, not process elapsed time).
func Phase(name string) func() {
	start := time.Now()
	a0 := heapAllocBytes()
	return func() {
		d := time.Since(start)
		da := heapAllocBytes() - a0
		phases.Lock()
		p := phases.m[name]
		if p == nil {
			p = &PhaseStat{Name: name}
			phases.m[name] = p
		}
		p.Calls++
		p.Wall += d
		p.Bytes += da
		phases.Unlock()
	}
}

// Stats is a snapshot of the engine's observability counters.
type Stats struct {
	MNASolves        uint64
	NeumannIntegrals uint64
	CacheHits        uint64
	CacheMisses      uint64
	PoolBatches      uint64
	PoolTasks        uint64
	Assemblies       uint64
	Factorizations   uint64
	Resolves         uint64
	SparseFactors    uint64
	SparseResolves   uint64
	Solver           string      // solver-selection label ("" if never set)
	Phases           []PhaseStat // sorted by name
}

// HitRate returns the cache hit fraction in [0, 1] (0 when unused).
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Snapshot returns the current counter values.
func Snapshot() Stats {
	s := Stats{
		MNASolves:        ctrMNASolves.Load(),
		NeumannIntegrals: ctrNeumann.Load(),
		CacheHits:        ctrCacheHits.Load(),
		CacheMisses:      ctrCacheMisses.Load(),
		PoolBatches:      ctrPoolBatches.Load(),
		PoolTasks:        ctrPoolTasks.Load(),
		Assemblies:       ctrAssemblies.Load(),
		Factorizations:   ctrFactors.Load(),
		Resolves:         ctrResolves.Load(),
		SparseFactors:    ctrSparseFactors.Load(),
		SparseResolves:   ctrSparseResolves.Load(),
		Solver:           SolverLabel(),
	}
	phases.Lock()
	for _, p := range phases.m {
		s.Phases = append(s.Phases, *p)
	}
	phases.Unlock()
	sort.Slice(s.Phases, func(i, j int) bool { return s.Phases[i].Name < s.Phases[j].Name })
	return s
}

// ResetStats zeroes every counter and phase timer (the cache contents
// stay; use ResetCache for those).
func ResetStats() {
	ctrMNASolves.Store(0)
	ctrNeumann.Store(0)
	ctrCacheHits.Store(0)
	ctrCacheMisses.Store(0)
	ctrPoolBatches.Store(0)
	ctrPoolTasks.Store(0)
	ctrAssemblies.Store(0)
	ctrFactors.Store(0)
	ctrResolves.Store(0)
	ctrSparseFactors.Store(0)
	ctrSparseResolves.Store(0)
	phases.Lock()
	phases.m = map[string]*PhaseStat{}
	phases.Unlock()
}

// Fprint writes the human-readable stats report consumed by the CLIs'
// -stats flag. The format is stable line-oriented "key value" text:
//
//	engine: mna solves <n>
//	engine: neumann integrals <n>
//	engine: cache hits <n> misses <n> hit-rate <pct>%
//	engine: pool batches <n> tasks <n>
//	engine: lu assemblies <n> factorizations <n> resolves <n>
//	engine: solver <mode> sparse-factorizations <n> sparse-resolves <n>
//	engine: phase <name> calls <n> wall <duration>
//
// The solver line appears only once a command has recorded its -solver
// selection (SetSolverLabel), so legacy -stats consumers see the exact
// historic output.
func Fprint(w io.Writer) error {
	s := Snapshot()
	if _, err := fmt.Fprintf(w,
		"engine: mna solves %d\nengine: neumann integrals %d\nengine: cache hits %d misses %d hit-rate %.1f%%\nengine: pool batches %d tasks %d\nengine: lu assemblies %d factorizations %d resolves %d\n",
		s.MNASolves, s.NeumannIntegrals, s.CacheHits, s.CacheMisses,
		100*s.HitRate(), s.PoolBatches, s.PoolTasks,
		s.Assemblies, s.Factorizations, s.Resolves); err != nil {
		return err
	}
	if s.Solver != "" {
		if _, err := fmt.Fprintf(w, "engine: solver %s sparse-factorizations %d sparse-resolves %d\n",
			s.Solver, s.SparseFactors, s.SparseResolves); err != nil {
			return err
		}
	}
	for _, p := range s.Phases {
		if _, err := fmt.Fprintf(w, "engine: phase %s calls %d wall %s alloc %s\n",
			p.Name, p.Calls, p.Wall.Round(time.Microsecond), FmtBytes(p.Bytes)); err != nil {
			return err
		}
	}
	return nil
}

// FmtBytes renders a byte count in the nearest binary unit (1.5MiB).
func FmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
