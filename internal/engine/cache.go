package engine

import "sync"

// The coupling cache memoizes scalar results of pure, expensive
// geometry computations (Neumann mutual-inductance integrals, loop
// self-inductances) under a 128-bit key of their full input. It is
// sharded to keep lock contention away from the worker pool's fan-outs.
const (
	cacheShards = 64
	// maxPerShard bounds memory: when a shard fills up it is dropped
	// wholesale (epoch eviction). 1<<14 entries/shard ≈ 1M entries total,
	// tens of MB worst case — far beyond any single design's working set,
	// so eviction only matters for very long sessions.
	maxPerShard = 1 << 14
)

type cacheShard struct {
	mu sync.Mutex
	m  map[Key]float64
}

var cache [cacheShards]*cacheShard

// cacheOn is the opt-out switch (see SetCacheEnabled). Guarded by
// cacheMu together with structural resets.
var (
	cacheMu sync.Mutex
	cacheOn = true
)

func init() {
	for i := range cache {
		cache[i] = &cacheShard{m: make(map[Key]float64)}
	}
}

// SetCacheEnabled turns the memoization cache on or off (the opt-out for
// callers that stream unique geometries and would only pay the hashing).
// Disabling also drops the cached entries. Returns the previous setting.
func SetCacheEnabled(on bool) bool {
	cacheMu.Lock()
	old := cacheOn
	cacheOn = on
	cacheMu.Unlock()
	if !on {
		ResetCache()
	}
	return old
}

// CacheEnabled reports whether memoization is active.
func CacheEnabled() bool {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return cacheOn
}

// ResetCache drops every cached entry (the counters are part of Stats
// and reset separately).
func ResetCache() {
	for _, s := range cache {
		s.mu.Lock()
		s.m = make(map[Key]float64)
		s.mu.Unlock()
	}
}

// Memo returns the cached value for key, computing and storing it via
// miss on first use. miss runs outside the shard lock, so two goroutines
// racing on the same cold key may both compute it — they store the same
// value (miss must be pure), which keeps results deterministic while
// never holding a lock across an expensive integral.
func Memo(key Key, miss func() float64) float64 {
	if !CacheEnabled() {
		return miss()
	}
	s := cache[key[0]%cacheShards]
	s.mu.Lock()
	v, ok := s.m[key]
	s.mu.Unlock()
	if ok {
		statCacheHit()
		return v
	}
	statCacheMiss()
	v = miss()
	s.mu.Lock()
	if len(s.m) >= maxPerShard {
		s.m = make(map[Key]float64)
	}
	s.m[key] = v
	s.mu.Unlock()
	return v
}
