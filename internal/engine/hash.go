package engine

import "math"

// Key is a 128-bit cache key: two independent 64-bit hashes of the same
// input stream. A single 64-bit hash would make silent collisions (and
// therefore silently wrong physics) merely improbable; two independent
// hashes make them negligible for any realistic session.
type Key [2]uint64

// Hasher accumulates a Key over a stream of numbers. The zero value is
// ready to use after Reset; NewHasher returns one initialized.
type Hasher struct {
	h1, h2 uint64
}

// FNV-1a constants for the first lane; the second lane uses a distinct
// offset basis and a post-multiply mix so the lanes decorrelate.
const (
	fnvOffset1 = 14695981039346656037
	fnvOffset2 = 9650029242287828579
	fnvPrime   = 1099511628211
	mixPrime   = 0x9e3779b97f4a7c15 // 2^64 / golden ratio
)

// NewHasher returns an initialized Hasher.
func NewHasher() *Hasher {
	h := &Hasher{}
	h.Reset()
	return h
}

// Reset restores the initial state.
func (h *Hasher) Reset() {
	h.h1, h.h2 = fnvOffset1, fnvOffset2
}

// Uint64 feeds one 64-bit word, byte by byte, into both lanes.
func (h *Hasher) Uint64(v uint64) {
	for i := 0; i < 8; i++ {
		b := uint64(byte(v >> (8 * i)))
		h.h1 = (h.h1 ^ b) * fnvPrime
		h.h2 = (h.h2 ^ (b * mixPrime)) * fnvPrime
	}
}

// Float64 feeds the IEEE-754 bit pattern of f. Distinct bit patterns
// (including -0 vs +0) hash differently, which is exactly right for a
// cache keyed on bit-for-bit reproducibility.
func (h *Hasher) Float64(f float64) {
	h.Uint64(math.Float64bits(f))
}

// Int feeds an integer.
func (h *Hasher) Int(v int) {
	h.Uint64(uint64(v))
}

// Bytes feeds a byte slice, length-prefixed so that consecutive slices
// of different split points hash differently.
func (h *Hasher) Bytes(b []byte) {
	h.Uint64(uint64(len(b)))
	for _, c := range b {
		v := uint64(c)
		h.h1 = (h.h1 ^ v) * fnvPrime
		h.h2 = (h.h2 ^ (v * mixPrime)) * fnvPrime
	}
}

// String feeds a string (length-prefixed, like Bytes).
func (h *Hasher) String(s string) {
	h.Uint64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		v := uint64(s[i])
		h.h1 = (h.h1 ^ v) * fnvPrime
		h.h2 = (h.h2 ^ (v * mixPrime)) * fnvPrime
	}
}

// Sum returns the accumulated 128-bit key.
func (h *Hasher) Sum() Key {
	return Key{h.h1, h.h2}
}
