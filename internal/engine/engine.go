// Package engine is the shared execution substrate of the EMI design
// flow: one bounded worker pool for every parallel fan-out, one memoized
// cache for the repeated PEEC field integrals, and one observability
// layer counting the work actually done (MNA solves, Neumann integrals,
// cache traffic, wall time per phase).
//
// Before this package existed the repository carried three hand-rolled
// worker pools (harmonic solves, coupling extraction, generic
// parallel-each) and recomputed identical mutual-inductance integrals in
// four different call sites. The engine replaces all of them with a
// single substrate whose guarantees the rest of the code relies on:
//
//   - Deterministic results: work item i writes only slot i, so the
//     output of Map/ForEach is independent of goroutine scheduling.
//     Combined with pure per-item functions this makes parallel runs
//     bit-for-bit identical to serial runs.
//   - Bounded global concurrency: nested fan-outs (a pair ranking whose
//     items each fan out harmonic solves) share one token budget instead
//     of multiplying goroutines.
//   - First-error propagation by lowest index, and panic capture: a
//     panicking work item surfaces as an error naming the item instead of
//     killing the process from a bare goroutine.
//
// All state is package-global by design — the flow is one process working
// one project; the cache and the stats are meant to be shared by every
// subsystem that touches field integrals.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// tokens is the global concurrency budget shared by every (possibly
// nested) parallel call. The calling goroutine never needs a token for
// itself, so the pool degrades to serial inline execution when the
// budget is exhausted — nested fan-outs cannot deadlock.
var tokens = struct {
	sync.Mutex
	free int
}{free: runtime.GOMAXPROCS(0) - 1}

// maxParallel is the configured parallelism cap (workers per call,
// including the calling goroutine). 0 means GOMAXPROCS.
var maxParallel atomic.Int64

// SetMaxParallelism caps the number of workers any single Map/ForEach
// call uses, including the calling goroutine; k <= 0 restores the
// default (GOMAXPROCS). Raising the cap above GOMAXPROCS also grows the
// global token budget so tests can exercise true concurrency on small
// machines. It returns the previous cap (0 = default).
func SetMaxParallelism(k int) int {
	old := int(maxParallel.Swap(int64(k)))
	tokens.Lock()
	want := runtime.GOMAXPROCS(0) - 1
	if k-1 > want {
		want = k - 1
	}
	// Adjust the number of *unclaimed* tokens by the capacity delta.
	tokens.free += want - tokenCapacity
	tokenCapacity = want
	tokens.Unlock()
	return old
}

// tokenCapacity tracks the current total token budget (excluding the
// calling goroutine's implicit slot). Guarded by tokens.Mutex.
var tokenCapacity = runtime.GOMAXPROCS(0) - 1

// limit returns the per-call worker cap.
func limit() int {
	if k := int(maxParallel.Load()); k > 0 {
		return k
	}
	return runtime.GOMAXPROCS(0)
}

// acquire claims up to n tokens from the global budget and returns how
// many it got (possibly 0).
func acquire(n int) int {
	if n <= 0 {
		return 0
	}
	tokens.Lock()
	got := tokens.free
	if got > n {
		got = n
	}
	tokens.free -= got
	tokens.Unlock()
	return got
}

// release returns n tokens to the budget.
func release(n int) {
	if n <= 0 {
		return
	}
	tokens.Lock()
	tokens.free += n
	tokens.Unlock()
}

// PanicError wraps a panic recovered from a work item.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

// Error implements the error interface.
func (p *PanicError) Error() string {
	return fmt.Sprintf("engine: panic in work item %d: %v", p.Index, p.Value)
}

// firstError collects per-item errors and reports the one with the
// lowest index, making error propagation deterministic under any
// scheduling.
type firstError struct {
	mu    sync.Mutex
	index int
	err   error
}

func (f *firstError) set(i int, err error) {
	f.mu.Lock()
	if f.err == nil || i < f.index {
		f.index, f.err = i, err
	}
	f.mu.Unlock()
}

func (f *firstError) failed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err != nil
}

// ForEach runs fn(0..n-1) over the shared bounded pool and returns the
// lowest-index error, if any. After the first error no new items start
// (items already running finish). A panic in fn is captured and
// reported as a *PanicError. fn must treat distinct indices as
// independent; slot-per-index writes keep results deterministic.
func ForEach(n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, fn)
}

// ForEachCtx is ForEach with cancellation: once ctx is done no new items
// start (items already running finish) and the context's error is
// returned. fn itself receives no context — long-running items that must
// observe cancellation mid-item should capture ctx themselves.
func ForEachCtx(ctx context.Context, n int, fn func(i int) error) error {
	return ForEachStateCtx(ctx, n,
		func() (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, i int) error { return fn(i) })
}

// ForEachState is ForEach for work that needs per-worker scratch state
// (a cloned circuit, a factorized analyzer): newState runs once per
// worker, fn receives that worker's state. The serial path calls
// newState exactly once.
func ForEachState[S any](n int, newState func() (S, error), fn func(s S, i int) error) error {
	return ForEachStateCtx(context.Background(), n, newState, fn)
}

// ForEachStateCtx is ForEachState with cancellation (see ForEachCtx).
func ForEachStateCtx[S any](ctx context.Context, n int, newState func() (S, error), fn func(s S, i int) error) error {
	if n <= 0 {
		return nil
	}
	statPoolBatch(n)
	bctx, batch := obs.Start(ctx, "engine.batch")
	defer batch.End()
	batch.Int("tasks", int64(n))
	workers := limit()
	if workers > n {
		workers = n
	}
	if workers > 1 {
		// The calling goroutine is worker 0; the rest need tokens.
		t0 := time.Now()
		extra := acquire(workers - 1)
		if batch != nil {
			batch.Float("token_wait_ms", float64(time.Since(t0))/1e6)
		}
		workers = extra + 1
		defer release(extra)
	}
	batch.Int("workers", int64(workers))
	if workers <= 1 {
		s, err := newState()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runItemTraced(bctx, s, i, fn, batch.Verbose()); err != nil {
				return err
			}
		}
		return nil
	}

	var next atomic.Int64
	var ferr firstError
	verbose := batch.Verbose()
	work := func() {
		wctx, wsp := obs.Start(bctx, "engine.worker")
		defer wsp.End()
		s, err := newState()
		if err != nil {
			// Attribute state-construction failures to the next
			// unclaimed item so propagation stays deterministic enough
			// (the error itself does not depend on an item).
			ferr.set(int(next.Load()), err)
			return
		}
		items := 0
		defer func() { wsp.Int("items", int64(items)) }()
		for {
			i := int(next.Add(1)) - 1
			if i >= n || ferr.failed() {
				return
			}
			if err := ctx.Err(); err != nil {
				ferr.set(i, err)
				return
			}
			items++
			if err := runItemTraced(wctx, s, i, fn, verbose); err != nil {
				ferr.set(i, err)
				return
			}
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	ferr.mu.Lock()
	defer ferr.mu.Unlock()
	return ferr.err
}

// runItemTraced wraps runItem in an "engine.task" span when the trace is
// verbose; per-item spans for thousand-task batches would blow the span
// cap otherwise.
func runItemTraced[S any](ctx context.Context, s S, i int, fn func(s S, i int) error, verbose bool) error {
	if !verbose {
		return runItem(s, i, fn)
	}
	_, sp := obs.Start(ctx, "engine.task")
	sp.Int("i", int64(i))
	err := runItem(s, i, fn)
	sp.End()
	return err
}

// runItem executes one work item with panic capture.
func runItem[S any](s S, i int, fn func(s S, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := make([]byte, 16<<10)
			stack = stack[:runtime.Stack(stack, false)]
			err = &PanicError{Index: i, Value: r, Stack: stack}
		}
	}()
	return fn(s, i)
}

// Map runs fn(0..n-1) over the pool and returns the results in index
// order. On error the partial results are discarded.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, fn)
}

// MapCtx is Map with cancellation (see ForEachCtx).
func MapCtx[T any](ctx context.Context, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
