package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestForEachCtxCancelSerial verifies that the serial path stops starting
// items once the context is cancelled and reports the context's error.
func TestForEachCtxCancelSerial(t *testing.T) {
	old := SetMaxParallelism(1)
	defer SetMaxParallelism(old)

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachCtx(ctx, 100, func(i int) error {
		if i == 3 {
			cancel()
		}
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 4 {
		t.Fatalf("ran %d items, want 4 (items after cancel must not start)", n)
	}
}

// TestForEachCtxCancelParallel verifies that parallel workers observe the
// cancellation and stop claiming items.
func TestForEachCtxCancelParallel(t *testing.T) {
	old := SetMaxParallelism(4)
	defer SetMaxParallelism(old)

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	gate := make(chan struct{})
	err := ForEachCtx(ctx, 1000, func(i int) error {
		if ran.Add(1) == 1 {
			cancel()
			close(gate)
		} else {
			<-gate // hold every other item until the cancel happened
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("all %d items ran despite cancellation", n)
	}
}

// TestForEachCtxDoneBeforeStart verifies that an already-cancelled context
// runs nothing.
func TestForEachCtxDoneBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEachCtx(ctx, 10, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("ran %d items on a dead context, want 0", n)
	}
}

// TestMapCtxBackground verifies the ctx variants behave like the plain
// ones under a background context.
func TestMapCtxBackground(t *testing.T) {
	out, err := MapCtx(context.Background(), 5, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestHasherBytesString verifies the byte/string feeds are consistent with
// each other and sensitive to split points.
func TestHasherBytesString(t *testing.T) {
	h1 := NewHasher()
	h1.Bytes([]byte("predict"))
	h2 := NewHasher()
	h2.String("predict")
	if h1.Sum() != h2.Sum() {
		t.Fatal("Bytes and String disagree on identical content")
	}
	h3 := NewHasher()
	h3.String("pre")
	h3.String("dict")
	if h3.Sum() == h2.Sum() {
		t.Fatal("length prefix failed: split strings hash like the whole")
	}
	h4 := NewHasher()
	h4.String("predicu")
	if h4.Sum() == h2.Sum() {
		t.Fatal("distinct strings collided")
	}
}
