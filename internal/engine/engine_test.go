package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// withParallelism runs fn with the pool capped at k workers, restoring
// the previous cap afterwards. Tests using it must not run in parallel
// with each other (package-global state), so none of them call
// t.Parallel.
func withParallelism(t *testing.T, k int, fn func()) {
	t.Helper()
	old := SetMaxParallelism(k)
	defer SetMaxParallelism(old)
	fn()
}

func TestMapOrderingDeterministic(t *testing.T) {
	for _, k := range []int{1, 2, 8} {
		withParallelism(t, k, func() {
			got, err := Map(100, func(i int) (int, error) { return i * i, nil })
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			for i, v := range got {
				if v != i*i {
					t.Fatalf("k=%d: slot %d = %d, want %d", k, i, v, i*i)
				}
			}
		})
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	withParallelism(t, 8, func() {
		counts := make([]atomic.Int64, 500)
		if err := ForEach(len(counts), func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if n := counts[i].Load(); n != 1 {
				t.Fatalf("index %d ran %d times", i, n)
			}
		}
	})
}

func TestForEachFirstErrorLowestIndex(t *testing.T) {
	errBoom := errors.New("boom")
	for _, k := range []int{1, 4} {
		withParallelism(t, k, func() {
			err := ForEach(50, func(i int) error {
				if i == 7 || i == 33 {
					return fmt.Errorf("item %d: %w", i, errBoom)
				}
				return nil
			})
			if err == nil || !errors.Is(err, errBoom) {
				t.Fatalf("k=%d: want wrapped boom, got %v", k, err)
			}
			// Serial execution must deterministically report index 7; the
			// parallel path reports the lowest index among those that ran.
			if k == 1 && err.Error() != "item 7: boom" {
				t.Fatalf("serial error = %v, want item 7", err)
			}
		})
	}
}

func TestForEachPanicCapture(t *testing.T) {
	for _, k := range []int{1, 4} {
		withParallelism(t, k, func() {
			err := ForEach(10, func(i int) error {
				if i == 3 {
					panic("kaboom")
				}
				return nil
			})
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("k=%d: want PanicError, got %v", k, err)
			}
			if pe.Value != "kaboom" || len(pe.Stack) == 0 {
				t.Fatalf("k=%d: bad panic capture: %+v", k, pe)
			}
		})
	}
}

func TestForEachStatePerWorkerState(t *testing.T) {
	withParallelism(t, 4, func() {
		var states atomic.Int64
		seen := make([]int64, 200)
		err := ForEachState(len(seen),
			func() (int64, error) { return states.Add(1), nil },
			func(s int64, i int) error {
				atomic.StoreInt64(&seen[i], s)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if n := states.Load(); n < 1 || n > 4 {
			t.Fatalf("state constructors ran %d times, want 1..4", n)
		}
		for i, s := range seen {
			if s == 0 {
				t.Fatalf("index %d never ran", i)
			}
		}
	})
}

func TestForEachStateSetupError(t *testing.T) {
	errSetup := errors.New("setup failed")
	for _, k := range []int{1, 4} {
		withParallelism(t, k, func() {
			err := ForEachState(10,
				func() (int, error) { return 0, errSetup },
				func(int, int) error { return nil })
			if !errors.Is(err, errSetup) {
				t.Fatalf("k=%d: want setup error, got %v", k, err)
			}
		})
	}
}

func TestNestedForEachDoesNotDeadlock(t *testing.T) {
	withParallelism(t, 4, func() {
		var total atomic.Int64
		err := ForEach(8, func(i int) error {
			return ForEach(8, func(j int) error {
				total.Add(1)
				return nil
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		if total.Load() != 64 {
			t.Fatalf("ran %d inner items, want 64", total.Load())
		}
	})
}

func TestHasherDistinguishesInputs(t *testing.T) {
	h := NewHasher()
	h.Float64(1.0)
	h.Float64(2.0)
	a := h.Sum()
	h.Reset()
	h.Float64(2.0)
	h.Float64(1.0)
	b := h.Sum()
	if a == b {
		t.Fatal("order-insensitive hash")
	}
	h.Reset()
	h.Float64(1.0)
	h.Float64(2.0)
	if h.Sum() != a {
		t.Fatal("hash not reproducible")
	}
}

func TestMemoCachesAndCounts(t *testing.T) {
	defer SetCacheEnabled(SetCacheEnabled(true))
	ResetCache()
	ResetStats()
	h := NewHasher()
	h.Float64(42)
	key := h.Sum()
	calls := 0
	f := func() float64 { calls++; return 3.25 }
	if v := Memo(key, f); v != 3.25 {
		t.Fatalf("miss returned %v", v)
	}
	if v := Memo(key, f); v != 3.25 {
		t.Fatalf("hit returned %v", v)
	}
	if calls != 1 {
		t.Fatalf("miss fn ran %d times, want 1", calls)
	}
	s := Snapshot()
	if s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Fatalf("counters hits=%d misses=%d, want 1/1", s.CacheHits, s.CacheMisses)
	}
}

func TestMemoOptOut(t *testing.T) {
	defer SetCacheEnabled(SetCacheEnabled(true))
	SetCacheEnabled(false)
	h := NewHasher()
	h.Float64(7)
	key := h.Sum()
	calls := 0
	for i := 0; i < 3; i++ {
		Memo(key, func() float64 { calls++; return 1 })
	}
	if calls != 3 {
		t.Fatalf("disabled cache memoized anyway (%d calls)", calls)
	}
}

// TestCacheStress hammers the shared cache from GOMAXPROCS (at least 8)
// goroutines with overlapping keys while another goroutine toggles the
// enable switch and resets — the race-hardening test for the sharded
// locking. Run with -race.
func TestCacheStress(t *testing.T) {
	defer SetCacheEnabled(SetCacheEnabled(true))
	ResetCache()
	workers := runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	const keys = 256
	const iters = 2000
	var wg sync.WaitGroup
	var wrong atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := NewHasher()
			for i := 0; i < iters; i++ {
				k := (i*7 + w) % keys
				h.Reset()
				h.Int(k)
				want := float64(k) * 1.5
				if got := Memo(h.Sum(), func() float64 { return want }); got != want {
					wrong.Add(1)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			SetCacheEnabled(i%2 == 0)
			ResetCache()
		}
		SetCacheEnabled(true)
	}()
	wg.Wait()
	if wrong.Load() != 0 {
		t.Fatalf("%d wrong cache results under contention", wrong.Load())
	}
}

// TestCacheEviction fills one shard past its cap and checks the cache
// keeps answering correctly afterwards.
func TestCacheEviction(t *testing.T) {
	defer SetCacheEnabled(SetCacheEnabled(true))
	ResetCache()
	// Same shard: keep key[0] % cacheShards constant.
	for i := 0; i < maxPerShard+10; i++ {
		k := Key{uint64(i) * cacheShards, uint64(i)}
		want := float64(i)
		if got := Memo(k, func() float64 { return want }); got != want {
			t.Fatalf("entry %d: got %v", i, got)
		}
	}
}
