// Determinism property tests: the engine's contract is that fanning work
// out over the pool and memoizing coupling integrals never changes a
// single bit of the physics results. These tests drive the two heaviest
// real pipelines — sensitivity ranking and coupling extraction — serially
// and in parallel, with the cache on and off, and demand exact equality.
package engine_test

import (
	"math"
	"sync"
	"testing"

	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/emi"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/rules"
	"repro/internal/sensitivity"
)

// filterCircuit is the two-stage LISN filter used by the sensitivity
// package's own tests: small but exercising every MNA element kind.
func filterCircuit() *netlist.Circuit {
	c := &netlist.Circuit{Title: "determinism test"}
	c.AddV("Vbat", "bat", "0", netlist.Source{DC: 12})
	emi.AddLISN(c, "lisn", "bat", "vin")
	c.AddC("C1", "vin", "c1x", 1e-6)
	c.AddL("Lc1", "c1x", "0", 15e-9)
	c.AddL("Lfilt", "vin", "vdd", 22e-6)
	c.AddC("C2", "vdd", "c2x", 1e-6)
	c.AddL("Lc2", "c2x", "0", 15e-9)
	c.AddV("Vsw", "sw", "0", netlist.Source{Pulse: &netlist.Pulse{
		V1: 0, V2: 12, Rise: 30e-9, Fall: 30e-9, Width: 2e-6, Period: 5e-6,
	}})
	c.AddL("Lloop", "sw", "swl", 50e-9)
	c.AddR("Rloop", "swl", "vdd", 0.2)
	return c
}

// twoCapsProject is a placed two-capacitor project whose coupling
// extraction runs real Neumann integrals through the memo cache.
func twoCapsProject() *core.Project {
	capModel := components.NewX2Cap("X2", 1e-6)
	d := &layout.Design{
		Name:      "determinism",
		Boards:    1,
		Clearance: 1e-3,
		Areas: []layout.Area{
			{Name: "board", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, 0.08, 0.06))},
		},
		Rules: rules.NewSet(nil),
	}
	for i, ref := range []string{"C1", "C2", "C3"} {
		w, l, h := capModel.Size()
		d.Comps = append(d.Comps, &layout.Component{
			Ref: ref, W: w, L: l, H: h, Axis: capModel.MagneticAxis(0),
			Placed: true, Center: geom.V2(0.015+0.02*float64(i), 0.03),
		})
	}
	c := &netlist.Circuit{Title: "determinism"}
	c.AddC("Cc1", "vin", "x1", capModel.C)
	c.AddL("Lc1", "x1", "0", capModel.EffectiveESL())
	c.AddC("Cc2", "vin", "x2", capModel.C)
	c.AddL("Lc2", "x2", "0", capModel.EffectiveESL())
	c.AddC("Cc3", "vin", "x3", capModel.C)
	c.AddL("Lc3", "x3", "0", capModel.EffectiveESL())
	return &core.Project{
		Design:  d,
		Circuit: c,
		Models: map[string]components.Model{
			"C1": capModel, "C2": capModel, "C3": capModel,
		},
		InductorOf: map[string]string{
			"C1": "Lc1", "C2": "Lc2", "C3": "Lc3",
		},
	}
}

// run executes fn with the pool capped at k workers and a cold cache, so
// memoized values computed under one setting can never leak into the next.
func run(t *testing.T, k int, fn func()) {
	t.Helper()
	old := engine.SetMaxParallelism(k)
	defer engine.SetMaxParallelism(old)
	engine.ResetCache()
	fn()
}

func TestRankDeterministicAcrossParallelism(t *testing.T) {
	rank := func(k int) sensitivity.Ranking {
		var out sensitivity.Ranking
		run(t, k, func() {
			r, err := sensitivity.Rank(filterCircuit(), "Vsw", "lisn_meas", sensitivity.Options{
				ProbeK:     0.01,
				MaxFreq:    20e6,
				Candidates: []string{"Lc1", "Lc2", "Lloop"},
			})
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			out = r
		})
		return out
	}
	serial := rank(1)
	for _, k := range []int{2, 8} {
		parallel := rank(k)
		if len(parallel) != len(serial) {
			t.Fatalf("parallelism %d: %d pairs, serial %d", k, len(parallel), len(serial))
		}
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Errorf("parallelism %d, rank[%d]: %+v != serial %+v",
					k, i, parallel[i], serial[i])
			}
		}
	}
}

func TestExtractCouplingsDeterministicAcrossParallelism(t *testing.T) {
	extract := func(k int) map[[2]string]float64 {
		var out map[[2]string]float64
		run(t, k, func() {
			p := twoCapsProject()
			ks, err := p.ExtractCouplings(p.AllPairs())
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			out = ks
		})
		return out
	}
	serial := extract(1)
	if len(serial) == 0 {
		t.Fatal("no couplings extracted")
	}
	for _, k := range []int{2, 8} {
		parallel := extract(k)
		if len(parallel) != len(serial) {
			t.Fatalf("parallelism %d: %d pairs, serial %d", k, len(parallel), len(serial))
		}
		for pair, ks := range serial {
			kp, ok := parallel[pair]
			if !ok {
				t.Fatalf("parallelism %d: pair %v missing", k, pair)
			}
			// Bit-for-bit: the engine reorders scheduling, never arithmetic.
			if math.Float64bits(kp) != math.Float64bits(ks) {
				t.Errorf("parallelism %d, pair %v: %v != serial %v", k, pair, kp, ks)
			}
		}
	}
}

func TestCouplingCacheEquivalence(t *testing.T) {
	extract := func() map[[2]string]float64 {
		p := twoCapsProject()
		ks, err := p.ExtractCouplings(p.AllPairs())
		if err != nil {
			t.Fatal(err)
		}
		return ks
	}

	engine.ResetCache()
	engine.SetCacheEnabled(false)
	uncached := extract()
	engine.SetCacheEnabled(true)
	engine.ResetCache()
	cold := extract()
	warm := extract() // second pass must be served from the cache

	for pair, want := range uncached {
		if got := cold[pair]; math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("cold cache, pair %v: %v != uncached %v", pair, got, want)
		}
		if got := warm[pair]; math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("warm cache, pair %v: %v != uncached %v", pair, got, want)
		}
	}
	if hits := engine.Snapshot().CacheHits; hits == 0 {
		t.Error("warm pass recorded no cache hits")
	}
}

// TestRankStressConcurrent hammers the full sensitivity pipeline from many
// goroutines at once — nested ForEach fan-outs, shared cache, shared stats —
// and checks every goroutine still computes the identical ranking. Run with
// -race this is the engine's end-to-end soundness test.
func TestRankStressConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	opt := sensitivity.Options{
		ProbeK:     0.01,
		MaxFreq:    5e6,
		Candidates: []string{"Lc1", "Lc2", "Lloop"},
	}
	old := engine.SetMaxParallelism(4)
	defer engine.SetMaxParallelism(old)
	engine.ResetCache()

	want, err := sensitivity.Rank(filterCircuit(), "Vsw", "lisn_meas", opt)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	ranks := make([]sensitivity.Ranking, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ranks[g], errs[g] = sensitivity.Rank(filterCircuit(), "Vsw", "lisn_meas", opt)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if len(ranks[g]) != len(want) {
			t.Fatalf("goroutine %d: %d pairs, want %d", g, len(ranks[g]), len(want))
		}
		for i := range want {
			if ranks[g][i] != want[i] {
				t.Errorf("goroutine %d, rank[%d]: %+v != %+v", g, i, ranks[g][i], want[i])
			}
		}
	}
}
