package render

import (
	"strings"
	"testing"

	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/rules"
)

func renderable() *layout.Design {
	d := &layout.Design{
		Name:      "render",
		Boards:    1,
		Clearance: 0.5e-3,
		Areas: []layout.Area{
			{Name: "main", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, 0.06, 0.04))},
		},
		Keepouts: []layout.Keepout{
			{Name: "k", Board: 0, Box: geom.CuboidOf(geom.R(0.05, 0, 0.06, 0.01), 0, 0.01)},
		},
		Rules: rules.NewSet(nil),
	}
	d.Comps = append(d.Comps,
		&layout.Component{Ref: "C1", W: 0.012, L: 0.006, H: 0.012, Axis: geom.V3(0, 1, 0),
			Group: "in", Placed: true, Center: geom.V2(0.015, 0.02)},
		&layout.Component{Ref: "C2", W: 0.012, L: 0.006, H: 0.012, Axis: geom.V3(0, 1, 0),
			Group: "out", Placed: true, Center: geom.V2(0.04, 0.02)},
	)
	d.Rules.Add(rules.Rule{RefA: "C1", RefB: "C2", PEMD: 0.03})
	return d
}

func TestSVGContainsEverything(t *testing.T) {
	t.Parallel()
	d := renderable()
	rep := drc.Check(d)
	var b strings.Builder
	err := SVG(&b, d, rep, Options{ShowRules: true, ShowAxes: true})
	if err != nil {
		t.Fatal(err)
	}
	svg := b.String()
	for _, want := range []string{"<svg", "</svg>", "C1", "C2", "<polygon", "<rect", "<circle"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// The pair is violated (30 mm required, 25 mm given): red circle.
	if !strings.Contains(svg, "#d22") {
		t.Error("violated rule should render red")
	}
	// Rotate to fix, then the circle must be green.
	d.Find("C2").Rot = 1.5707963267948966
	rep = drc.Check(d)
	b.Reset()
	if err := SVG(&b, d, rep, Options{ShowRules: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "#2a2") {
		t.Error("met rule should render green")
	}
	if strings.Contains(b.String(), "#d22") {
		t.Error("no red circles expected after fix")
	}
}

func TestSVGNoAreasErrors(t *testing.T) {
	t.Parallel()
	d := renderable()
	var b strings.Builder
	if err := SVG(&b, d, nil, Options{Board: 1}); err == nil {
		t.Error("rendering a board without areas should error")
	}
}

func TestSVGWithoutReport(t *testing.T) {
	t.Parallel()
	d := renderable()
	var b strings.Builder
	if err := SVG(&b, d, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "<circle") {
		t.Error("no circles expected without a report")
	}
}
