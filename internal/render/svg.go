// Package render draws placement layouts as SVG — the headless substitute
// for the paper's GUI screenshots (Figures 9, 15–18): board outlines,
// keepouts, component bodies colored by functional group, magnetic axes,
// and the EMD rule circles in red (violated) or green (met).
package render

import (
	"fmt"
	"io"
	"math"

	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
)

// groupPalette cycles over functional groups.
var groupPalette = []string{
	"#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462",
}

// Options tunes the rendering.
type Options struct {
	Board     int  // which board to draw
	ShowRules bool // draw EMD circles from the DRC report
	ShowAxes  bool // draw magnetic axis arrows
	PixPerMM  float64
}

func (o Options) scale() float64 {
	if o.PixPerMM <= 0 {
		return 8
	}
	return o.PixPerMM
}

// SVG writes the design (and, if given, the DRC report's pair status) as an
// SVG document.
func SVG(w io.Writer, d *layout.Design, rep *drc.Report, opt Options) error {
	var bb geom.Rect
	first := true
	for _, a := range d.AreasOf(opt.Board, "") {
		if first {
			bb = a.Poly.BBox()
			first = false
		} else {
			bb = bb.Union(a.Poly.BBox())
		}
	}
	if first {
		return fmt.Errorf("render: board %d has no areas", opt.Board)
	}
	bb = bb.Inflate(0.005)
	s := opt.scale() * 1e3 // meters → px
	toX := func(x float64) float64 { return (x - bb.Min.X) * s }
	toY := func(y float64) float64 { return (bb.Max.Y - y) * s } // flip y

	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p(`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		bb.W()*s, bb.H()*s, bb.W()*s, bb.H()*s); err != nil {
		return err
	}
	must := func(err error) error { return err }
	_ = must

	// Placement areas.
	for _, a := range d.AreasOf(opt.Board, "") {
		if err := p(`<polygon points="`); err != nil {
			return err
		}
		for _, v := range a.Poly {
			if err := p("%.1f,%.1f ", toX(v.X), toY(v.Y)); err != nil {
				return err
			}
		}
		if err := p(`" fill="#f5f5ef" stroke="#444" stroke-width="2"/>` + "\n"); err != nil {
			return err
		}
	}
	// Keepouts.
	for _, k := range d.Keepouts {
		if k.Board != opt.Board {
			continue
		}
		r := k.Box.Base
		if err := p(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#ddd" stroke="#999" stroke-dasharray="4 3"/>`+"\n",
			toX(r.Min.X), toY(r.Max.Y), r.W()*s, r.H()*s); err != nil {
			return err
		}
	}

	// Group colors.
	colorOf := map[string]string{}
	for i, g := range d.GroupNames() {
		colorOf[g] = groupPalette[i%len(groupPalette)]
	}

	// EMD rule circles below the components.
	if opt.ShowRules && rep != nil {
		for _, pr := range rep.Pairs {
			a, b := d.Find(pr.RefA), d.Find(pr.RefB)
			if a == nil || b == nil || !a.Placed || !b.Placed ||
				a.Board != opt.Board || b.Board != opt.Board {
				continue
			}
			color := "#2a2"
			if !pr.OK {
				color = "#d22"
			}
			mid := a.Center.Add(b.Center).Scale(0.5)
			radius := math.Max(pr.Required, 0.002) / 2 * s
			if err := p(`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="%s" stroke-width="2.5" opacity="0.8"/>`+"\n",
				toX(mid.X), toY(mid.Y), radius, color); err != nil {
				return err
			}
			if err := p(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.5" opacity="0.6"/>`+"\n",
				toX(a.Center.X), toY(a.Center.Y), toX(b.Center.X), toY(b.Center.Y), color); err != nil {
				return err
			}
		}
	}

	// Components.
	for _, c := range d.Comps {
		if !c.Placed || c.Board != opt.Board {
			continue
		}
		fill := "#cfe2f3"
		if col, ok := colorOf[c.Group]; ok {
			fill = col
		}
		fp := c.Footprint()
		if err := p(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#333" stroke-width="1.5"/>`+"\n",
			toX(fp.Min.X), toY(fp.Max.Y), fp.W()*s, fp.H()*s, fill); err != nil {
			return err
		}
		if err := p(`<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
			toX(c.Center.X), toY(c.Center.Y)+4, c.Ref); err != nil {
			return err
		}
		if opt.ShowAxes {
			ax := c.MagneticAxis()
			if ax != (geom.Vec3{}) && (ax.X != 0 || ax.Y != 0) {
				dir := geom.V2(ax.X, ax.Y).Normalize().Scale(math.Min(fp.W(), fp.H()) * 0.7)
				a0 := c.Center.Sub(dir)
				a1 := c.Center.Add(dir)
				if err := p(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#06c" stroke-width="2" marker-end="none"/>`+"\n",
					toX(a0.X), toY(a0.Y), toX(a1.X), toY(a1.Y)); err != nil {
					return err
				}
			}
		}
	}
	return p("</svg>\n")
}
