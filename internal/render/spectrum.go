package render

import (
	"fmt"
	"io"
	"math"

	"repro/internal/emi"
)

// SpectrumSeries is one trace in a spectrum plot.
type SpectrumSeries struct {
	Name     string
	Spectrum *emi.Spectrum
	Color    string // CSS color; "" picks from the palette
}

// seriesPalette colors spectra traces.
var seriesPalette = []string{"#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#8c564b"}

// SpectrumSVG plots one or more conducted-emission spectra on a
// log-frequency axis with the CISPR 25 Class-5 limit segments overlaid —
// the plot style of the paper's Figures 1, 2 and 12–14.
func SpectrumSVG(w io.Writer, series []SpectrumSeries, title string) error {
	if len(series) == 0 {
		return fmt.Errorf("render: no spectra")
	}
	const (
		width  = 760.0
		height = 420.0
		left   = 60.0
		right  = 20.0
		top    = 40.0
		bottom = 50.0
	)
	fLo, fHi := math.Inf(1), 0.0
	dbLo, dbHi := 0.0, 80.0
	for _, s := range series {
		for i, f := range s.Spectrum.Freqs {
			if f <= 0 {
				continue
			}
			fLo = math.Min(fLo, f)
			fHi = math.Max(fHi, f)
			dbLo = math.Min(dbLo, s.Spectrum.DB[i])
			dbHi = math.Max(dbHi, s.Spectrum.DB[i])
		}
	}
	if !(fHi > fLo) {
		return fmt.Errorf("render: empty spectra")
	}
	dbLo = math.Floor(dbLo/20) * 20
	dbHi = math.Ceil((dbHi+5)/20) * 20
	lf0, lf1 := math.Log10(fLo), math.Log10(fHi)
	x := func(f float64) float64 {
		return left + (math.Log10(f)-lf0)/(lf1-lf0)*(width-left-right)
	}
	y := func(db float64) float64 {
		return top + (dbHi-db)/(dbHi-dbLo)*(height-top-bottom)
	}

	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p(`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" font-family="sans-serif">`+"\n", width, height); err != nil {
		return err
	}
	if err := p(`<rect width="%.0f" height="%.0f" fill="white"/>`+"\n", width, height); err != nil {
		return err
	}
	if err := p(`<text x="%.0f" y="24" font-size="15" text-anchor="middle">%s</text>`+"\n", width/2, title); err != nil {
		return err
	}

	// Grid: frequency decades and 20 dB lines.
	for d := math.Ceil(lf0); d <= lf1; d++ {
		f := math.Pow(10, d)
		if err := p(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			x(f), top, x(f), height-bottom); err != nil {
			return err
		}
		if err := p(`<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x(f), height-bottom+16, freqLabel(f)); err != nil {
			return err
		}
	}
	for db := dbLo; db <= dbHi; db += 20 {
		if err := p(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			left, y(db), width-right, y(db)); err != nil {
			return err
		}
		if err := p(`<text x="%.1f" y="%.1f" font-size="11" text-anchor="end">%.0f</text>`+"\n",
			left-6, y(db)+4, db); err != nil {
			return err
		}
	}
	if err := p(`<text x="16" y="%.0f" font-size="12" transform="rotate(-90 16 %.0f)" text-anchor="middle">dBµV</text>`+"\n",
		(top+height-bottom)/2, (top+height-bottom)/2); err != nil {
		return err
	}

	// CISPR limit segments inside the plotted range.
	for _, b := range emi.CISPR25Class5 {
		if b.F1 < fLo || b.F0 > fHi {
			continue
		}
		f0, f1 := math.Max(b.F0, fLo), math.Min(b.F1, fHi)
		if err := p(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333" stroke-width="2.5" stroke-dasharray="7 4"/>`+"\n",
			x(f0), y(b.LimitDB), x(f1), y(b.LimitDB)); err != nil {
			return err
		}
	}

	// Series.
	for si, s := range series {
		color := s.Color
		if color == "" {
			color = seriesPalette[si%len(seriesPalette)]
		}
		if err := p(`<polyline fill="none" stroke="%s" stroke-width="1.6" points="`, color); err != nil {
			return err
		}
		for i, f := range s.Spectrum.Freqs {
			db := math.Max(s.Spectrum.DB[i], dbLo)
			if err := p("%.1f,%.1f ", x(f), y(db)); err != nil {
				return err
			}
		}
		if err := p(`"/>` + "\n"); err != nil {
			return err
		}
		if err := p(`<text x="%.1f" y="%.1f" font-size="12" fill="%s">%s</text>`+"\n",
			left+10, top+16+float64(si)*16, color, s.Name); err != nil {
			return err
		}
	}
	return p("</svg>\n")
}

// freqLabel formats a decade tick.
func freqLabel(f float64) string {
	switch {
	case f >= 1e9:
		return fmt.Sprintf("%.0f GHz", f/1e9)
	case f >= 1e6:
		return fmt.Sprintf("%.0f MHz", f/1e6)
	case f >= 1e3:
		return fmt.Sprintf("%.0f kHz", f/1e3)
	}
	return fmt.Sprintf("%.0f Hz", f)
}
