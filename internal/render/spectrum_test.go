package render

import (
	"strings"
	"testing"

	"repro/internal/emi"
)

func sampleSpectrum(offset float64) *emi.Spectrum {
	s := &emi.Spectrum{}
	for f := 200e3; f <= 100e6; f *= 1.5 {
		s.Freqs = append(s.Freqs, f)
		s.DB = append(s.DB, 60-10*float64(len(s.Freqs))/3+offset)
	}
	return s
}

func TestSpectrumSVG(t *testing.T) {
	t.Parallel()
	var b strings.Builder
	err := SpectrumSVG(&b, []SpectrumSeries{
		{Name: "unfavourable", Spectrum: sampleSpectrum(10)},
		{Name: "optimized", Spectrum: sampleSpectrum(-10)},
	}, "Conducted emissions")
	if err != nil {
		t.Fatal(err)
	}
	svg := b.String()
	for _, want := range []string{
		"<svg", "</svg>", "unfavourable", "optimized",
		"Conducted emissions", "polyline", "MHz", "dBµV",
		"stroke-dasharray", // the limit lines
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestSpectrumSVGErrors(t *testing.T) {
	t.Parallel()
	var b strings.Builder
	if err := SpectrumSVG(&b, nil, "x"); err == nil {
		t.Error("no series should fail")
	}
	empty := &emi.Spectrum{}
	if err := SpectrumSVG(&b, []SpectrumSeries{{Name: "e", Spectrum: empty}}, "x"); err == nil {
		t.Error("empty spectrum should fail")
	}
}

func TestFreqLabel(t *testing.T) {
	t.Parallel()
	cases := map[float64]string{
		100: "100 Hz",
		1e3: "1 kHz",
		2e6: "2 MHz",
		1e9: "1 GHz",
	}
	for f, want := range cases {
		if got := freqLabel(f); got != want {
			t.Errorf("freqLabel(%v) = %q, want %q", f, got, want)
		}
	}
}
