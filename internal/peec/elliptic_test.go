package peec

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestEllipticKnownValues(t *testing.T) {
	t.Parallel()
	// K(0) = E(0) = π/2.
	K, E := EllipticKE(0)
	if relErr(K, math.Pi/2) > 1e-15 || relErr(E, math.Pi/2) > 1e-15 {
		t.Errorf("k=0: K=%v E=%v", K, E)
	}
	// Reference values (Abramowitz & Stegun) for k² = 0.5:
	// K ≈ 1.85407467730137, E ≈ 1.35064388104768.
	K, E = EllipticKE(math.Sqrt(0.5))
	if relErr(K, 1.85407467730137) > 1e-12 {
		t.Errorf("K(√0.5) = %.14f", K)
	}
	if relErr(E, 1.35064388104768) > 1e-12 {
		t.Errorf("E(√0.5) = %.14f", E)
	}
	// K diverges, E → 1 as k → 1.
	K, E = EllipticKE(0.999999)
	if K < 7 || E < 1 || E > 1.01 {
		t.Errorf("near k=1: K=%v E=%v", K, E)
	}
	// Out of domain.
	if K, _ := EllipticKE(1); !math.IsNaN(K) {
		t.Error("k=1 should be NaN")
	}
	if K, _ := EllipticKE(-0.1); !math.IsNaN(K) {
		t.Error("negative k should be NaN")
	}
}

func TestMutualCoaxialLoopsAgainstNeumann(t *testing.T) {
	t.Parallel()
	// The segmented-ring Neumann quadrature must converge to Maxwell's
	// exact filament formula.
	cases := []struct{ ra, rb, d float64 }{
		{5e-3, 5e-3, 10e-3},
		{5e-3, 4e-3, 6e-3},
		{8e-3, 3e-3, 12e-3},
		{5e-3, 5e-3, 50e-3},
	}
	for _, c := range cases {
		exact := MutualCoaxialLoops(c.ra, c.rb, c.d)
		a := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), c.ra, 64, 0.05e-3)
		b := Ring(geom.V3(0, 0, c.d), geom.V3(0, 0, 1), c.rb, 64, 0.05e-3)
		num := Mutual(a, b, DefaultOrder)
		if relErr(num, exact) > 0.01 {
			t.Errorf("ra=%v rb=%v d=%v: Neumann %v vs Maxwell %v (relerr %.4f)",
				c.ra, c.rb, c.d, num, exact, relErr(num, exact))
		}
	}
}

func TestMutualCoaxialLoopsLimits(t *testing.T) {
	t.Parallel()
	// Far field → dipole formula µ0·π·ra²·rb²/(2·d³).
	ra, rb, d := 4e-3, 3e-3, 0.1
	exact := MutualCoaxialLoops(ra, rb, d)
	dip := Mu0 * math.Pi * ra * ra * rb * rb / (2 * d * d * d)
	if relErr(exact, dip) > 0.01 {
		t.Errorf("far field %v vs dipole %v", exact, dip)
	}
	// Degenerate inputs.
	if MutualCoaxialLoops(0, 1e-3, 1e-3) != 0 {
		t.Error("zero radius should give 0")
	}
	// Coincident filaments are singular.
	if !math.IsInf(MutualCoaxialLoops(5e-3, 5e-3, 0), 1) {
		t.Error("coincident loops should be +Inf")
	}
	// Monotone decay with separation.
	prev := math.Inf(1)
	for _, dd := range []float64{1e-3, 3e-3, 1e-2, 3e-2} {
		m := MutualCoaxialLoops(5e-3, 5e-3, dd)
		if m >= prev {
			t.Errorf("not decaying at d=%v", dd)
		}
		prev = m
	}
}
