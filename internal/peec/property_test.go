package peec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// boundedVec maps arbitrary floats into a centimeter-scale coordinate.
func boundedVec(x, y, z float64) geom.Vec3 {
	m := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0.001
		}
		return math.Mod(v, 0.05)
	}
	return geom.V3(m(x), m(y), m(z))
}

func TestQuickMutualSymmetry(t *testing.T) {
	t.Parallel()
	// M(a,b) = M(b,a) for arbitrary segment pairs.
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz, dx, dy, dz float64) bool {
		a := Segment{boundedVec(ax, ay, az), boundedVec(bx, by, bz), 0.2e-3}
		b := Segment{boundedVec(cx, cy, cz), boundedVec(dx, dy, dz), 0.2e-3}
		m1 := MutualFilaments(a, b, 4)
		m2 := MutualFilaments(b, a, 4)
		return math.Abs(m1-m2) <= 1e-9*(math.Abs(m1)+1e-15)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickMutualReversalAntisymmetry(t *testing.T) {
	t.Parallel()
	// Reversing one segment's direction flips the sign of M.
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz, dx, dy, dz float64) bool {
		a := Segment{boundedVec(ax, ay, az), boundedVec(bx, by, bz), 0.2e-3}
		b := Segment{boundedVec(cx, cy, cz), boundedVec(dx, dy, dz), 0.2e-3}
		m := MutualFilaments(a, b, 4)
		mr := MutualFilaments(a, b.Reversed(), 4)
		return math.Abs(m+mr) <= 1e-9*(math.Abs(m)+1e-15)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickTranslationInvariance(t *testing.T) {
	t.Parallel()
	// Rigid translation of both segments leaves M unchanged.
	f := func(ax, ay, bx, by, tx, ty, tz float64) bool {
		a := Segment{boundedVec(ax, ay, 0), boundedVec(bx, by, 0.001), 0.2e-3}
		b := Segment{boundedVec(ay, ax, 0.002), boundedVec(by, bx, 0.003), 0.2e-3}
		d := boundedVec(tx, ty, tz)
		m1 := MutualFilaments(a, b, 4)
		m2 := MutualFilaments(a.Translate(d), b.Translate(d), 4)
		// The adaptive subdivision threshold may flip under translation for
		// borderline pairs, changing the quadrature decomposition — the
		// invariance therefore holds to the method's accuracy, not to
		// machine precision. Near-perpendicular pairs also sit at the
		// rounding floor, hence the absolute term.
		return math.Abs(m1-m2) <= 5e-3*math.Abs(m1)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickBFieldLinearInCurrent(t *testing.T) {
	t.Parallel()
	f := func(i1, i2, px, py, pz float64) bool {
		bound := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 10)
		}
		s := Segment{geom.V3(0, 0, 0), geom.V3(0.02, 0, 0), 0.2e-3}
		p := geom.V3(bound(px)*1e-3, 0.003+math.Abs(bound(py))*1e-3, bound(pz)*1e-3)
		b1 := SegmentBField(s, bound(i1), p)
		b2 := SegmentBField(s, bound(i2), p)
		sum := SegmentBField(s, bound(i1)+bound(i2), p)
		return sum.Dist(b1.Add(b2)) <= 1e-12*(sum.Norm()+1e-15)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
