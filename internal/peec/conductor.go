package peec

import (
	"math"

	"repro/internal/engine"
	"repro/internal/geom"
)

// Conductor is a field-generating structure: an ordered set of directed
// filament segments carrying the same (unit) current. It represents the
// paper's simplified component models — capacitor current loops, segmented
// winding rings, traces.
//
// MuEff is the effective relative permeability that corrects inductances of
// ferrite-cored structures per the paper's workaround (Hoene et al., PESC
// 2005); 1 means air. The geometric redirection of field lines by the core
// is neglected, which the paper quantifies at roughly 15 % error for stray
// fields.
type Conductor struct {
	Segments []Segment
	MuEff    float64

	// Shield attenuates the structure's external stray field without
	// changing its self-inductance — the lumped model of a shielded
	// (closed-flux) component such as a shielded SMD power inductor.
	// 0 means unshielded (factor 1); values in (0, 1] scale the emitted
	// and received stray field, so mutual inductances between two
	// shielded parts scale by the product of their factors.
	Shield float64
}

// NewPolyline builds an open conductor along the given points with a common
// wire radius. Fewer than two points yield an empty conductor.
func NewPolyline(points []geom.Vec3, radius float64) *Conductor {
	c := &Conductor{MuEff: 1}
	for i := 0; i+1 < len(points); i++ {
		c.Segments = append(c.Segments, Segment{points[i], points[i+1], radius})
	}
	return c
}

// NewLoop builds a closed conductor through the given points (the last point
// connects back to the first).
func NewLoop(points []geom.Vec3, radius float64) *Conductor {
	c := NewPolyline(points, radius)
	if len(points) >= 3 {
		c.Segments = append(c.Segments, Segment{points[len(points)-1], points[0], radius})
	}
	return c
}

// Ring builds a segmented circular ring (the paper's "segmented rings")
// of the given radius around center, with the loop normal along axis,
// discretised into n straight segments of wire radius wireR.
func Ring(center, axis geom.Vec3, radius float64, n int, wireR float64) *Conductor {
	if n < 3 {
		n = 3
	}
	axis = axis.Normalize()
	if axis == (geom.Vec3{}) {
		axis = geom.V3(0, 0, 1)
	}
	// Build an orthonormal basis (u, v, axis).
	ref := geom.V3(1, 0, 0)
	if math.Abs(axis.X) > 0.9 {
		ref = geom.V3(0, 1, 0)
	}
	u := axis.Cross(ref).Normalize()
	v := axis.Cross(u)
	pts := make([]geom.Vec3, n)
	for i := 0; i < n; i++ {
		phi := 2 * math.Pi * float64(i) / float64(n)
		s, cphi := math.Sincos(phi)
		pts[i] = center.Add(u.Scale(radius * cphi)).Add(v.Scale(radius * s))
	}
	return NewLoop(pts, wireR)
}

// Translate returns a copy of c shifted by d.
func (c *Conductor) Translate(d geom.Vec3) *Conductor {
	out := &Conductor{MuEff: c.MuEff, Shield: c.Shield, Segments: make([]Segment, len(c.Segments))}
	for i, s := range c.Segments {
		out.Segments[i] = s.Translate(d)
	}
	return out
}

// RotZAround returns a copy of c rotated by rad around the vertical axis
// through pivot.
func (c *Conductor) RotZAround(pivot geom.Vec3, rad float64) *Conductor {
	out := &Conductor{MuEff: c.MuEff, Shield: c.Shield, Segments: make([]Segment, len(c.Segments))}
	for i, s := range c.Segments {
		out.Segments[i] = s.RotZAround(pivot, rad)
	}
	return out
}

// Append merges another conductor's segments (same current) into c.
func (c *Conductor) Append(o *Conductor) {
	c.Segments = append(c.Segments, o.Segments...)
}

// TotalLength returns the summed segment length.
func (c *Conductor) TotalLength() float64 {
	sum := 0.0
	for _, s := range c.Segments {
		sum += s.Length()
	}
	return sum
}

// muEff returns the effective permeability, defaulting to 1 for the zero
// value so that Conductor{} is usable.
func (c *Conductor) muEff() float64 {
	if c.MuEff <= 0 {
		return 1
	}
	return c.MuEff
}

// shield returns the stray-field factor, defaulting to 1.
func (c *Conductor) shield() float64 {
	if c.Shield <= 0 || c.Shield > 1 {
		return 1
	}
	return c.Shield
}

// SelfInductance returns the loop inductance of the structure:
// the sum of partial self-inductances of all segments plus all pairwise
// partial mutuals, scaled by the effective permeability.
func (c *Conductor) SelfInductance() float64 {
	return c.SelfInductanceOrder(DefaultOrder)
}

// SelfInductanceOrder is SelfInductance with an explicit quadrature order
// (exposed for the accuracy/speed ablation). Results are memoized in the
// engine's coupling cache under the full geometry (see cache.go).
func (c *Conductor) SelfInductanceOrder(order int) float64 {
	if len(c.Segments) == 0 {
		return 0
	}
	return engine.Memo(selfKey(c, order), func() float64 {
		return c.selfInductanceUncached(order)
	})
}

func (c *Conductor) selfInductanceUncached(order int) float64 {
	sum := 0.0
	for i, si := range c.Segments {
		sum += si.SelfInductance()
		for j := i + 1; j < len(c.Segments); j++ {
			sum += 2 * MutualFilaments(si, c.Segments[j], order)
		}
	}
	return c.muEff() * sum
}

// Mutual returns the mutual inductance between two conductor structures:
// the sum of pairwise partial mutuals between their segments. Cored
// structures scale by √(µ1·µ2), consistent with the effective-permeability
// correction of the self terms; shield factors of both parts attenuate
// the result. Results are memoized in the engine's coupling cache under
// the full geometry of both structures (see cache.go).
func Mutual(a, b *Conductor, order int) float64 {
	if len(a.Segments) == 0 || len(b.Segments) == 0 {
		return 0
	}
	return engine.Memo(mutualKey(a, b, order), func() float64 {
		return mutualUncached(a, b, order)
	})
}

func mutualUncached(a, b *Conductor, order int) float64 {
	sum := 0.0
	for _, sa := range a.Segments {
		for _, sb := range b.Segments {
			sum += MutualFilaments(sa, sb, order)
		}
	}
	return math.Sqrt(a.muEff()*b.muEff()) * a.shield() * b.shield() * sum
}

// CouplingFactor returns k = M / √(L1·L2) between two structures, the
// quantity the paper's design rules are expressed in. The result is clamped
// to [-1, 1]; structures with non-positive self-inductance yield 0.
func CouplingFactor(a, b *Conductor, order int) float64 {
	la := a.SelfInductanceOrder(order)
	lb := b.SelfInductanceOrder(order)
	if la <= 0 || lb <= 0 {
		return 0
	}
	k := Mutual(a, b, order) / math.Sqrt(la*lb)
	if k > 1 {
		k = 1
	} else if k < -1 {
		k = -1
	}
	return k
}

// ImageAcross returns the mirror-image conductor across the plane z =
// zPlane, modelling a perfectly conducting shield plane. The image carries
// the opposite current, which the mirrored segment direction encodes.
func (c *Conductor) ImageAcross(zPlane float64) *Conductor {
	out := &Conductor{MuEff: c.MuEff, Shield: c.Shield, Segments: make([]Segment, len(c.Segments))}
	for i, s := range c.Segments {
		out.Segments[i] = s.MirrorZ(zPlane)
	}
	return out
}

// MutualWithPlane returns the mutual inductance between a and b in the
// presence of an infinite shield plane at z = zPlane, using image currents:
// M = M(a,b) + M(a, image(b)).
func MutualWithPlane(a, b *Conductor, zPlane float64, order int) float64 {
	return Mutual(a, b, order) + Mutual(a, b.ImageAcross(zPlane), order)
}

// SelfInductanceWithPlane returns the loop inductance of c above an ideal
// shield plane at z = zPlane: the free-space inductance plus the (negative)
// mutual with its own image current.
func (c *Conductor) SelfInductanceWithPlane(zPlane float64, order int) float64 {
	return c.SelfInductanceOrder(order) + Mutual(c, c.ImageAcross(zPlane), order)
}

// DipoleMoment returns the magnetic dipole moment per ampere of loop
// current, m = ½ Σ r × dl. For closed loops the result is independent of
// the origin; for open polylines it is the standard generalisation.
func (c *Conductor) DipoleMoment() geom.Vec3 {
	var m geom.Vec3
	for _, s := range c.Segments {
		m = m.Add(s.Center().Cross(s.B.Sub(s.A)))
	}
	return m.Scale(0.5)
}

// MagneticAxis returns the unit direction of the dipole moment — the
// "magnetic axis" between which the paper measures the rotation angle of
// its EMD placement rule. A structure with no net moment returns the zero
// vector.
func (c *Conductor) MagneticAxis() geom.Vec3 {
	return c.DipoleMoment().Normalize()
}
