// Package peec implements the Partial Element Equivalent Circuit method for
// the magnetic part of the EMI prediction flow.
//
// Following Ruehli (1974) and the paper, field-generating structures are
// discretised into straight filament segments with a finite wire radius.
// The package computes partial self- and mutual inductances, coupling
// factors between full conductor structures, Biot–Savart stray fields, and
// supports the paper's effective-permeability correction for ferrite cores
// as well as ground-plane image mirroring for shield planes.
//
// All quantities are SI: meters, henry, tesla, ampere.
package peec

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Mu0 is the vacuum permeability in H/m.
const Mu0 = 4 * math.Pi * 1e-7

// Segment is a straight filament of current with finite wire radius,
// directed from A to B. It is the elementary PEEC inductive cell.
type Segment struct {
	A, B   geom.Vec3
	Radius float64
}

// Length returns the segment length |B-A|.
func (s Segment) Length() float64 { return s.B.Sub(s.A).Norm() }

// Dir returns the unit direction from A to B (zero vector for a degenerate
// segment).
func (s Segment) Dir() geom.Vec3 { return s.B.Sub(s.A).Normalize() }

// Center returns the segment midpoint.
func (s Segment) Center() geom.Vec3 { return s.A.Add(s.B).Scale(0.5) }

// Reversed returns the segment with opposite current direction.
func (s Segment) Reversed() Segment { return Segment{A: s.B, B: s.A, Radius: s.Radius} }

// Translate shifts the segment by d.
func (s Segment) Translate(d geom.Vec3) Segment {
	return Segment{A: s.A.Add(d), B: s.B.Add(d), Radius: s.Radius}
}

// RotZAround rotates the segment by rad around the vertical axis through c.
func (s Segment) RotZAround(c geom.Vec3, rad float64) Segment {
	return Segment{
		A:      s.A.Sub(c).RotZ(rad).Add(c),
		B:      s.B.Sub(c).RotZ(rad).Add(c),
		Radius: s.Radius,
	}
}

// MirrorZ reflects the segment across the horizontal plane z = zPlane and
// reverses its direction, producing the image current of a perfectly
// conducting shield plane (the paper's "shielding planes like ground planes").
func (s Segment) MirrorZ(zPlane float64) Segment {
	ref := func(p geom.Vec3) geom.Vec3 {
		return geom.V3(p.X, p.Y, 2*zPlane-p.Z)
	}
	// Reflection alone reverses the z component; reversing A and B then
	// yields the image current (anti-parallel horizontal component).
	return Segment{A: ref(s.B), B: ref(s.A), Radius: s.Radius}
}

// SelfInductance returns the partial self-inductance of a straight round
// wire of the given length and radius (Rosa's formula, DC current
// distribution):
//
//	L = µ0·l/(2π) · (ln(2l/r) − 0.75)
//
// valid for l >> r; it degrades gracefully (returns 0) for degenerate input.
func SelfInductance(length, radius float64) float64 {
	if length <= 0 || radius <= 0 || length <= radius {
		return 0
	}
	return Mu0 * length / (2 * math.Pi) * (math.Log(2*length/radius) - 0.75)
}

// SelfInductance returns the partial self-inductance of the segment.
func (s Segment) SelfInductance() float64 {
	return SelfInductance(s.Length(), s.Radius)
}

// String implements fmt.Stringer.
func (s Segment) String() string {
	return fmt.Sprintf("seg(%.3g,%.3g,%.3g → %.3g,%.3g,%.3g r=%.2gmm)",
		s.A.X, s.A.Y, s.A.Z, s.B.X, s.B.Y, s.B.Z, s.Radius*1e3)
}
