package peec

import (
	"math"

	"repro/internal/engine"
	"repro/internal/quadrature"
)

// DefaultOrder is the Gauss–Legendre order used for Neumann integrals when
// the caller does not request a specific one.
const DefaultOrder = 8

// maxSubdivide bounds the adaptive subdivision depth of the Neumann
// integration for near-singular segment pairs.
const maxSubdivide = 6

// MutualFilaments computes the mutual partial inductance between two
// straight filament segments by the Neumann double integral
//
//	M = µ0/(4π) · (â·b̂) · ∫∫ ds dt / dist(s,t)
//
// evaluated with tensor-product Gauss–Legendre quadrature of the given
// order. Close pairs are subdivided adaptively; the distance kernel is
// regularised with the geometric-mean wire radius so that touching or
// overlapping filaments stay finite (the finite-radius filament model).
//
// The sign of the result follows the segment directions: anti-parallel
// segments yield negative M.
func MutualFilaments(a, b Segment, order int) float64 {
	engine.CountNeumann()
	if order <= 0 {
		order = DefaultOrder
	}
	la, lb := a.Length(), b.Length()
	if la == 0 || lb == 0 {
		return 0
	}
	cosAB := a.Dir().Dot(b.Dir())
	if cosAB == 0 {
		return 0 // perpendicular filaments never couple
	}
	gmd := filamentGMD(a.Radius, b.Radius)
	integral := neumann(a, b, order, gmd, 0)
	return Mu0 / (4 * math.Pi) * cosAB * integral
}

// filamentGMD returns the regularisation distance for the Neumann kernel:
// the geometric mean distance of a round conductor, e^{-1/4}·r, combined for
// the two wire radii. Zero radii regularise with a tiny epsilon to keep the
// kernel integrable for exactly coincident filaments.
func filamentGMD(ra, rb float64) float64 {
	g := math.Exp(-0.25) * math.Sqrt(math.Max(ra, 1e-12)*math.Max(rb, 1e-12))
	return g
}

// neumann evaluates ∫∫ ds dt / sqrt(dist² + gmd²) over both segments,
// subdividing the longer segment while the pair is close relative to its
// size (where the kernel varies too fast for the fixed-order rule).
func neumann(a, b Segment, order int, gmd float64, depth int) float64 {
	la, lb := a.Length(), b.Length()
	d := segmentMinDistance(a, b)
	if depth < maxSubdivide && d < 0.5*math.Max(la, lb) {
		// Split the longer segment at its midpoint and recurse.
		if la >= lb {
			m := a.Center()
			return neumann(Segment{a.A, m, a.Radius}, b, order, gmd, depth+1) +
				neumann(Segment{m, a.B, a.Radius}, b, order, gmd, depth+1)
		}
		m := b.Center()
		return neumann(a, Segment{b.A, m, b.Radius}, order, gmd, depth+1) +
			neumann(a, Segment{m, b.B, b.Radius}, order, gmd, depth+1)
	}
	da := a.B.Sub(a.A)
	db := b.B.Sub(b.A)
	g2 := gmd * gmd
	f := func(s, t float64) float64 {
		p := a.A.Add(da.Scale(s))
		q := b.A.Add(db.Scale(t))
		diff := p.Sub(q)
		return 1 / math.Sqrt(diff.Dot(diff)+g2)
	}
	return quadrature.Integrate2D(f, 0, 1, 0, 1, order) * la * lb
}

// segmentMinDistance returns the minimum distance between two segments,
// computed by the standard closest-point-of-approach clamp.
func segmentMinDistance(a, b Segment) float64 {
	u := a.B.Sub(a.A)
	v := b.B.Sub(b.A)
	w := a.A.Sub(b.A)
	uu := u.Dot(u)
	vv := v.Dot(v)
	uv := u.Dot(v)
	uw := u.Dot(w)
	vw := v.Dot(w)
	den := uu*vv - uv*uv

	var s, t float64
	if den > 1e-18*(uu*vv+1e-30) {
		s = clamp01((uv*vw - vv*uw) / den)
	} else {
		s = 0 // nearly parallel: pick an endpoint
	}
	if vv > 0 {
		t = clamp01((uv*s + vw) / vv)
	}
	if uu > 0 {
		s = clamp01((uv*t - uw) / uu)
	}
	p := a.A.Add(u.Scale(s))
	q := b.A.Add(v.Scale(t))
	return p.Dist(q)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// MutualParallelFilaments returns the exact (Grover) mutual inductance of
// two equal-length parallel filaments of length l at center distance d:
//
//	M = µ0·l/(2π) · [ ln(l/d + √(1+l²/d²)) − √(1+d²/l²) + d/l ]
//
// Used as a fast path and as the validation anchor for the Neumann
// quadrature.
func MutualParallelFilaments(length, d float64) float64 {
	if length <= 0 || d <= 0 {
		return 0
	}
	r := length / d
	return Mu0 * length / (2 * math.Pi) *
		(math.Log(r+math.Sqrt(1+r*r)) - math.Sqrt(1+1/(r*r)) + 1/r)
}
