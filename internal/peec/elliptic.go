package peec

import "math"

// EllipticKE returns the complete elliptic integrals K(k) and E(k) of
// modulus k (0 <= k < 1), computed with the arithmetic–geometric mean
// iteration — the classical fast path for loop-inductance formulas.
func EllipticKE(k float64) (K, E float64) {
	if k < 0 || k >= 1 {
		return math.NaN(), math.NaN()
	}
	if k == 0 {
		return math.Pi / 2, math.Pi / 2
	}
	a, b := 1.0, math.Sqrt(1-k*k)
	c := k
	sum := c * c / 2
	pow := 1.0
	for i := 0; i < 64 && math.Abs(c) > 1e-17; i++ {
		an := (a + b) / 2
		bn := math.Sqrt(a * b)
		c = (a - b) / 2
		a, b = an, bn
		pow *= 2
		sum += pow * c * c / 2
	}
	K = math.Pi / (2 * a)
	E = K * (1 - sum)
	return K, E
}

// MutualCoaxialLoops returns the exact mutual inductance of two coaxial
// circular filament loops of radii ra and rb whose planes are d apart
// (Maxwell's formula):
//
//	M = µ0·√(ra·rb) · [ (2/k − k)·K(k) − (2/k)·E(k) ],
//	k² = 4·ra·rb / ((ra+rb)² + d²)
//
// It anchors the segmented-ring Neumann sums and serves as a fast path for
// coaxial winding stacks. Degenerate inputs return 0.
func MutualCoaxialLoops(ra, rb, d float64) float64 {
	if ra <= 0 || rb <= 0 {
		return 0
	}
	k2 := 4 * ra * rb / ((ra+rb)*(ra+rb) + d*d)
	if k2 >= 1 { // touching coincident filaments: singular
		return math.Inf(1)
	}
	k := math.Sqrt(k2)
	K, E := EllipticKE(k)
	return Mu0 * math.Sqrt(ra*rb) * ((2/k-k)*K - (2/k)*E)
}
