package peec

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// relErr returns |a-b| / |b|.
func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestMutualParallelAgainstGrover(t *testing.T) {
	t.Parallel()
	// Two equal parallel filaments: the quadrature must reproduce the
	// analytic Grover formula over a wide range of distance/length ratios.
	const l = 0.05 // 50 mm
	for _, d := range []float64{0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2} {
		a := Segment{geom.V3(0, 0, 0), geom.V3(l, 0, 0), 0.1e-3}
		b := Segment{geom.V3(0, d, 0), geom.V3(l, d, 0), 0.1e-3}
		got := MutualFilaments(a, b, DefaultOrder)
		want := MutualParallelFilaments(l, d)
		if relErr(got, want) > 0.02 {
			t.Errorf("d=%v: quadrature %v vs Grover %v (relerr %.3f)",
				d, got, want, relErr(got, want))
		}
	}
}

func TestMutualPerpendicularIsZero(t *testing.T) {
	t.Parallel()
	a := Segment{geom.V3(0, 0, 0), geom.V3(1, 0, 0), 1e-3}
	b := Segment{geom.V3(0, 0.01, 0), geom.V3(0, 0.01, 1), 1e-3}
	if m := MutualFilaments(a, b, DefaultOrder); m != 0 {
		t.Errorf("perpendicular mutual = %v, want 0", m)
	}
}

func TestMutualAntiParallelNegative(t *testing.T) {
	t.Parallel()
	a := Segment{geom.V3(0, 0, 0), geom.V3(0.05, 0, 0), 0.1e-3}
	b := Segment{geom.V3(0.05, 0.01, 0), geom.V3(0, 0.01, 0), 0.1e-3}
	m := MutualFilaments(a, b, DefaultOrder)
	if m >= 0 {
		t.Errorf("anti-parallel mutual = %v, want < 0", m)
	}
	// Magnitude must equal the parallel case.
	mp := MutualFilaments(a, b.Reversed(), DefaultOrder)
	if relErr(-m, mp) > 1e-12 {
		t.Errorf("|anti-parallel| %v != parallel %v", -m, mp)
	}
}

func TestMutualSymmetric(t *testing.T) {
	t.Parallel()
	a := Segment{geom.V3(0, 0, 0), geom.V3(0.03, 0.01, 0), 0.2e-3}
	b := Segment{geom.V3(0.01, 0.02, 0.005), geom.V3(0.05, 0.03, 0.01), 0.2e-3}
	m1 := MutualFilaments(a, b, DefaultOrder)
	m2 := MutualFilaments(b, a, DefaultOrder)
	if relErr(m1, m2) > 1e-9 {
		t.Errorf("M(a,b)=%v != M(b,a)=%v", m1, m2)
	}
}

func TestMutualDegenerateSegments(t *testing.T) {
	t.Parallel()
	a := Segment{geom.V3(0, 0, 0), geom.V3(0, 0, 0), 1e-3} // zero length
	b := Segment{geom.V3(0, 0.01, 0), geom.V3(0.05, 0.01, 0), 1e-3}
	if m := MutualFilaments(a, b, DefaultOrder); m != 0 {
		t.Errorf("degenerate mutual = %v", m)
	}
}

func TestMutualTouchingFilamentsFinite(t *testing.T) {
	t.Parallel()
	// Collinear filaments sharing an endpoint: the GMD regularisation must
	// keep the integral finite and positive.
	a := Segment{geom.V3(0, 0, 0), geom.V3(0.01, 0, 0), 0.5e-3}
	b := Segment{geom.V3(0.01, 0, 0), geom.V3(0.02, 0, 0), 0.5e-3}
	m := MutualFilaments(a, b, DefaultOrder)
	if math.IsNaN(m) || math.IsInf(m, 0) || m <= 0 {
		t.Errorf("touching collinear mutual = %v", m)
	}
}

func TestMutualDecaysWithDistance(t *testing.T) {
	t.Parallel()
	const l = 0.02
	prev := math.Inf(1)
	for _, d := range []float64{0.005, 0.01, 0.02, 0.04, 0.08} {
		a := Segment{geom.V3(0, 0, 0), geom.V3(l, 0, 0), 0.1e-3}
		b := Segment{geom.V3(0, d, 0), geom.V3(l, d, 0), 0.1e-3}
		m := MutualFilaments(a, b, DefaultOrder)
		if m >= prev {
			t.Errorf("mutual did not decay at d=%v: %v >= %v", d, m, prev)
		}
		prev = m
	}
}

func TestGroverKnownValue(t *testing.T) {
	t.Parallel()
	// Two parallel 100 mm wires 10 mm apart: a textbook value of ≈ 46 nH
	// (Grover). Check the closed form lands in that neighbourhood.
	m := MutualParallelFilaments(0.1, 0.01)
	if m < 40e-9 || m > 52e-9 {
		t.Errorf("Grover 100mm/10mm = %v H, want ≈ 46 nH", m)
	}
}

func TestSelfInductanceStraightWire(t *testing.T) {
	t.Parallel()
	// 100 mm of 1 mm-diameter wire ≈ 100 nH (the 1 µH/m rule of thumb the
	// EMI community uses, also quoted in the paper's context [5]).
	l := SelfInductance(0.1, 0.5e-3)
	if l < 80e-9 || l > 130e-9 {
		t.Errorf("L(100mm wire) = %v, want ≈ 100 nH", l)
	}
	// Longer wire has more inductance per length (log term).
	if SelfInductance(0.2, 0.5e-3) <= 2*l*0.99 {
		t.Error("inductance should grow slightly super-linearly with length")
	}
	// Degenerate inputs.
	if SelfInductance(0, 1e-3) != 0 || SelfInductance(0.1, 0) != 0 {
		t.Error("degenerate self inductance must be 0")
	}
	if SelfInductance(1e-4, 1e-3) != 0 {
		t.Error("l <= r must yield 0")
	}
}

func TestSegmentMinDistance(t *testing.T) {
	t.Parallel()
	a := Segment{geom.V3(0, 0, 0), geom.V3(1, 0, 0), 0}
	cases := []struct {
		b    Segment
		want float64
	}{
		{Segment{geom.V3(0, 1, 0), geom.V3(1, 1, 0), 0}, 1},      // parallel
		{Segment{geom.V3(0.5, 2, 0), geom.V3(0.5, 1, 0), 0}, 1},  // perpendicular above
		{Segment{geom.V3(2, 0, 0), geom.V3(3, 0, 0), 0}, 1},      // collinear gap
		{Segment{geom.V3(0.5, 0, 0), geom.V3(0.5, 1, 0), 0}, 0},  // touching
		{Segment{geom.V3(0.2, -1, 0), geom.V3(0.2, 1, 0), 0}, 0}, // crossing
		{Segment{geom.V3(0, 3, 4), geom.V3(1, 3, 4), 0}, 5},      // 3D offset
	}
	for i, c := range cases {
		if got := segmentMinDistance(a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("case %d: dist = %v, want %v", i, got, c.want)
		}
	}
}
