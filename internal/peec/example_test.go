package peec_test

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/peec"
)

// Two coaxial segmented rings: self- and mutual inductance from the PEEC
// partial-element sums, and the coupling factor the design rules use.
func ExampleCouplingFactor() {
	a := peec.Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), 5e-3, 32, 0.2e-3)
	b := peec.Ring(geom.V3(0, 0, 10e-3), geom.V3(0, 0, 1), 5e-3, 32, 0.2e-3)
	fmt.Printf("L = %.1f nH\n", a.SelfInductance()*1e9)
	fmt.Printf("M = %.2f nH\n", peec.Mutual(a, b, peec.DefaultOrder)*1e9)
	fmt.Printf("k = %.3f\n", peec.CouplingFactor(a, b, peec.DefaultOrder))
	// Output:
	// L = 21.3 nH
	// M = 0.70 nH
	// k = 0.033
}

// A shield plane below two loops reduces their mutual inductance via image
// currents.
func ExampleMutualWithPlane() {
	a := peec.Ring(geom.V3(0, 0, 2e-3), geom.V3(0, 0, 1), 5e-3, 24, 0.2e-3)
	b := peec.Ring(geom.V3(15e-3, 0, 2e-3), geom.V3(0, 0, 1), 5e-3, 24, 0.2e-3)
	free := peec.Mutual(a, b, peec.DefaultOrder)
	shielded := peec.MutualWithPlane(a, b, 0, peec.DefaultOrder)
	fmt.Printf("|M| reduced: %v\n", absF(shielded) < absF(free))
	// Output:
	// |M| reduced: true
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
