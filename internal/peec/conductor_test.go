package peec

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestRingSelfInductanceAnalytic(t *testing.T) {
	t.Parallel()
	// Circular loop: L = µ0·R·(ln(8R/a) − 1.75) with internal inductance,
	// matching the per-segment Rosa constant −0.75 used here. The wire must
	// stay thin relative to the segment length for the thin-wire formula.
	R, a := 0.01, 0.1e-3
	ring := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), R, 64, a)
	got := ring.SelfInductance()
	want := Mu0 * R * (math.Log(8*R/a) - 1.75)
	if relErr(got, want) > 0.08 {
		t.Errorf("ring L = %v vs analytic %v (relerr %.3f)", got, want, relErr(got, want))
	}
}

func TestRingSelfInductanceConverges(t *testing.T) {
	t.Parallel()
	R, a := 0.01, 0.1e-3
	l16 := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), R, 16, a).SelfInductance()
	l64 := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), R, 64, a).SelfInductance()
	want := Mu0 * R * (math.Log(8*R/a) - 1.75)
	if relErr(l64, want) > relErr(l16, want)+1e-6 {
		t.Errorf("finer discretisation further from analytic: n=16 %.3f, n=64 %.3f",
			relErr(l16, want), relErr(l64, want))
	}
}

func TestCoaxialLoopsDipoleLimit(t *testing.T) {
	t.Parallel()
	// Far-separated coaxial loops: M → µ0·π·a²·b² / (2·d³).
	a, b := 0.005, 0.004
	ra := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), a, 32, 0.2e-3)
	for _, d := range []float64{0.05, 0.08, 0.12} {
		rb := Ring(geom.V3(0, 0, d), geom.V3(0, 0, 1), b, 32, 0.2e-3)
		got := Mutual(ra, rb, DefaultOrder)
		want := Mu0 * math.Pi * a * a * b * b / (2 * d * d * d)
		if relErr(got, want) > 0.05 {
			t.Errorf("d=%v: M=%v vs dipole %v (relerr %.3f)", d, got, want, relErr(got, want))
		}
	}
}

func TestCouplingFactorProperties(t *testing.T) {
	t.Parallel()
	a := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), 0.005, 24, 0.2e-3)
	b := Ring(geom.V3(0.03, 0, 0), geom.V3(0, 0, 1), 0.004, 24, 0.2e-3)
	k := CouplingFactor(a, b, DefaultOrder)
	if math.Abs(k) > 1 {
		t.Errorf("|k| = %v > 1", k)
	}
	if k == 0 {
		t.Error("coplanar parallel-axis loops must couple")
	}
	// Symmetry.
	k2 := CouplingFactor(b, a, DefaultOrder)
	if relErr(k, k2) > 1e-9 {
		t.Errorf("k(a,b)=%v != k(b,a)=%v", k, k2)
	}
	// Monotone decay with distance (the paper's Figure 5 behaviour).
	prev := math.Abs(k)
	for _, d := range []float64{0.05, 0.08, 0.12} {
		bb := Ring(geom.V3(d, 0, 0), geom.V3(0, 0, 1), 0.004, 24, 0.2e-3)
		kk := math.Abs(CouplingFactor(a, bb, DefaultOrder))
		if kk >= prev {
			t.Errorf("|k| did not decay at d=%v: %v >= %v", d, kk, prev)
		}
		prev = kk
	}
}

func TestOrthogonalAxesDecouple(t *testing.T) {
	t.Parallel()
	// Rotating one loop's axis by 90° must collapse the coupling — the
	// physical basis of the paper's EMD = PEMD·cos(alpha) rule.
	a := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), 0.005, 32, 0.2e-3)
	parallel := Ring(geom.V3(0.02, 0, 0), geom.V3(0, 0, 1), 0.005, 32, 0.2e-3)
	orthogonal := Ring(geom.V3(0.02, 0, 0), geom.V3(0, 1, 0), 0.005, 32, 0.2e-3)
	kp := math.Abs(CouplingFactor(a, parallel, DefaultOrder))
	ko := math.Abs(CouplingFactor(a, orthogonal, DefaultOrder))
	if ko > 0.05*kp {
		t.Errorf("orthogonal k=%v not << parallel k=%v", ko, kp)
	}
}

func TestMuEffScaling(t *testing.T) {
	t.Parallel()
	air := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), 0.005, 24, 0.2e-3)
	cored := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), 0.005, 24, 0.2e-3)
	cored.MuEff = 100
	la, lc := air.SelfInductance(), cored.SelfInductance()
	if relErr(lc, 100*la) > 1e-12 {
		t.Errorf("µeff scaling: %v vs %v", lc, 100*la)
	}
	// Coupling factor is invariant under the effective-permeability
	// correction (both L and M scale together).
	other := Ring(geom.V3(0.03, 0, 0), geom.V3(0, 0, 1), 0.004, 24, 0.2e-3)
	ka := CouplingFactor(air, other, DefaultOrder)
	kc := CouplingFactor(cored, other, DefaultOrder)
	if relErr(ka, kc) > 1e-9 {
		t.Errorf("k changed under µeff: %v vs %v", ka, kc)
	}
}

func TestGroundPlaneReducesCoupling(t *testing.T) {
	t.Parallel()
	// An ideal shield plane below two coplanar loops must reduce |M| —
	// the paper's observation that ground planes relax minimum distances.
	h := 0.002 // loops 2 mm above the plane
	a := Ring(geom.V3(0, 0, h), geom.V3(0, 0, 1), 0.005, 24, 0.2e-3)
	b := Ring(geom.V3(0.02, 0, h), geom.V3(0, 0, 1), 0.005, 24, 0.2e-3)
	m := Mutual(a, b, DefaultOrder)
	mp := MutualWithPlane(a, b, 0, DefaultOrder)
	if math.Abs(mp) >= math.Abs(m) {
		t.Errorf("plane did not reduce coupling: %v vs %v", mp, m)
	}
}

func TestDipoleMomentRing(t *testing.T) {
	t.Parallel()
	// m = I·A·n for a planar loop; per unit current, |m| = π·R².
	R := 0.01
	ring := Ring(geom.V3(0.002, -0.001, 0.05), geom.V3(0, 0, 1), R, 64, 0.2e-3)
	m := ring.DipoleMoment()
	// Polygon area is slightly below the circle area.
	polyArea := 0.5 * 64 * R * R * math.Sin(2*math.Pi/64)
	if relErr(m.Norm(), polyArea) > 1e-9 {
		t.Errorf("|m| = %v, want polygon area %v", m.Norm(), polyArea)
	}
	ax := ring.MagneticAxis()
	if relErr(math.Abs(ax.Z), 1) > 1e-9 {
		t.Errorf("axis = %v, want ±z", ax)
	}
	// Axis follows ring orientation.
	tilted := Ring(geom.V3(0, 0, 0), geom.V3(1, 0, 1), R, 64, 0.2e-3)
	ta := tilted.MagneticAxis()
	want := geom.V3(1, 0, 1).Normalize()
	if geom.AxisAngle(ta, want) > 1e-6 {
		t.Errorf("tilted axis = %v, want %v", ta, want)
	}
}

func TestDipoleMomentOriginIndependent(t *testing.T) {
	t.Parallel()
	ring := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), 0.008, 32, 0.2e-3)
	moved := ring.Translate(geom.V3(1, 2, 3))
	if ring.DipoleMoment().Dist(moved.DipoleMoment()) > 1e-12 {
		t.Error("closed-loop dipole moment must be translation invariant")
	}
}

func TestConductorTransforms(t *testing.T) {
	t.Parallel()
	c := NewPolyline([]geom.Vec3{{X: 0}, {X: 1}}, 1e-3)
	moved := c.Translate(geom.V3(0, 1, 0))
	if moved.Segments[0].A != geom.V3(0, 1, 0) {
		t.Errorf("Translate: %v", moved.Segments[0])
	}
	rot := c.RotZAround(geom.V3(0, 0, 0), math.Pi/2)
	if rot.Segments[0].B.Dist(geom.V3(0, 1, 0)) > 1e-12 {
		t.Errorf("RotZAround: %v", rot.Segments[0])
	}
	// Transforms preserve inductance.
	ring := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), 0.005, 16, 0.2e-3)
	l0 := ring.SelfInductance()
	l1 := ring.Translate(geom.V3(0.1, 0.2, 0.3)).RotZAround(geom.V3(0, 0, 0), 1.1).SelfInductance()
	if relErr(l0, l1) > 1e-9 {
		t.Errorf("rigid transform changed L: %v vs %v", l0, l1)
	}
}

func TestNewLoopClosesPolyline(t *testing.T) {
	t.Parallel()
	pts := []geom.Vec3{{}, {X: 1}, {X: 1, Y: 1}}
	loop := NewLoop(pts, 1e-3)
	if len(loop.Segments) != 3 {
		t.Fatalf("loop segments = %d, want 3", len(loop.Segments))
	}
	last := loop.Segments[2]
	if last.B != pts[0] {
		t.Errorf("loop not closed: %v", last)
	}
	// Too few points: no closing segment.
	if n := len(NewLoop(pts[:2], 1e-3).Segments); n != 1 {
		t.Errorf("2-point loop segments = %d", n)
	}
}

func TestTotalLength(t *testing.T) {
	t.Parallel()
	c := NewLoop([]geom.Vec3{{}, {X: 1}, {X: 1, Y: 1}, {Y: 1}}, 1e-3)
	if got := c.TotalLength(); math.Abs(got-4) > 1e-12 {
		t.Errorf("TotalLength = %v", got)
	}
}
