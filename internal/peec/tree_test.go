package peec

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/geom"
)

// randomPolyline builds a jagged open conductor of n segments inside a
// unit-ish cloud centered at c.
func randomPolyline(rng *rand.Rand, c geom.Vec3, n int, spread float64) *Conductor {
	pts := make([]geom.Vec3, n+1)
	for i := range pts {
		pts[i] = c.Add(geom.V3(
			spread*(rng.Float64()-0.5),
			spread*(rng.Float64()-0.5),
			spread*(rng.Float64()-0.5),
		))
	}
	return NewPolyline(pts, 0.0005)
}

func TestMutualHierExactAtThetaZero(t *testing.T) {
	a := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), 0.01, 16, 0.0005)
	b := Ring(geom.V3(0.05, 0.02, 0), geom.V3(0, 0, 1), 0.008, 16, 0.0005)
	ta, tb := NewSegTree(a), NewSegTree(b)
	exact := Mutual(a, b, DefaultOrder)
	if got := MutualHier(ta, tb, DefaultOrder, 0); got != exact {
		t.Fatalf("theta=0 not bit-exact: %g vs %g", got, exact)
	}
	if got := MutualHier(ta, tb, DefaultOrder, -1); got != exact {
		t.Fatalf("theta<0 not bit-exact: %g vs %g", got, exact)
	}
}

// TestMutualHierFarFieldAccuracy checks the controlled-error contract:
// at moderate theta the hierarchical result stays within a few percent
// of the exact double sum, tightening as theta shrinks.
func TestMutualHierFarFieldAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type pair struct {
		a, b *Conductor
	}
	var pairs []pair
	// Coaxial and offset rings at a range of separations, plus random
	// polyline clouds — the component shapes core extraction produces.
	for _, d := range []float64{0.03, 0.06, 0.15, 0.4} {
		pairs = append(pairs,
			pair{
				Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), 0.01, 16, 0.0005),
				Ring(geom.V3(d, 0, 0), geom.V3(0, 0, 1), 0.01, 16, 0.0005),
			},
			pair{
				Ring(geom.V3(0, 0, 0), geom.V3(0, 1, 0), 0.008, 12, 0.0005),
				Ring(geom.V3(d, d/2, 0.01), geom.V3(0, 0, 1), 0.012, 20, 0.0005),
			},
			pair{
				randomPolyline(rng, geom.V3(0, 0, 0), 30, 0.02),
				randomPolyline(rng, geom.V3(d, 0, 0.005), 30, 0.02),
			})
	}
	for _, theta := range []float64{0.5, 0.25} {
		for pi, p := range pairs {
			exact := Mutual(p.a, p.b, DefaultOrder)
			got := MutualHier(NewSegTree(p.a), NewSegTree(p.b), DefaultOrder, theta)
			// Relative to the exact magnitude, floored: distant pairs have
			// tiny M where absolute agreement is what matters. Loop pairs
			// are dipole-dominated, where the expansion's relative error is
			// O(θ) at the acceptance margin — hence the θ-scaled bounds.
			tol := 0.12*math.Abs(exact) + 1e-13
			if theta <= 0.25 {
				tol = 0.03*math.Abs(exact) + 1e-13
			}
			if err := math.Abs(got - exact); err > tol {
				t.Errorf("pair %d theta=%g: exact %.6g hier %.6g (err %.2g > tol %.2g)",
					pi, theta, exact, got, err, tol)
			}
		}
	}
}

// TestMutualHierDeterministic: the same inputs give bit-identical
// results across calls and across cache resets (the tree build and the
// traversal order are deterministic, and the memo layer must be
// invisible).
func TestMutualHierDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomPolyline(rng, geom.V3(0, 0, 0), 50, 0.03)
	b := randomPolyline(rng, geom.V3(0.08, 0.01, 0), 50, 0.03)
	const theta = 0.4
	first := MutualHier(NewSegTree(a), NewSegTree(b), DefaultOrder, theta)
	again := MutualHier(NewSegTree(a), NewSegTree(b), DefaultOrder, theta)
	if first != again {
		t.Fatalf("cached call differs: %g vs %g", first, again)
	}
	engine.ResetCache()
	fresh := MutualHier(NewSegTree(a), NewSegTree(b), DefaultOrder, theta)
	if first != fresh {
		t.Fatalf("result not bit-stable across cache reset: %g vs %g", first, fresh)
	}
}

// TestMutualHierWeights: µ-cored and shielded conductors scale the
// hierarchical result exactly like the exact path.
func TestMutualHierWeights(t *testing.T) {
	a := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), 0.01, 16, 0.0005)
	b := Ring(geom.V3(0.1, 0, 0), geom.V3(0, 0, 1), 0.01, 16, 0.0005)
	a.MuEff, b.Shield = 50, 0.2
	exact := Mutual(a, b, DefaultOrder)
	got := MutualHier(NewSegTree(a), NewSegTree(b), DefaultOrder, 0.3)
	if exact == 0 || math.Abs(got-exact) > 0.03*math.Abs(exact) {
		t.Fatalf("weighted mutual: exact %g hier %g", exact, got)
	}
}

func TestMutualHierDegenerate(t *testing.T) {
	empty := NewSegTree(&Conductor{})
	ring := NewSegTree(Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), 0.01, 8, 0.0005))
	if got := MutualHier(empty, ring, DefaultOrder, 0.5); got != 0 {
		t.Fatalf("empty tree mutual = %g, want 0", got)
	}
	if got := MutualHier(ring, empty, DefaultOrder, 0.5); got != 0 {
		t.Fatalf("empty tree mutual = %g, want 0", got)
	}
	// A tiny conductor below the leaf size is one node; the walk reduces
	// to the plain Neumann sum for a nearby pair.
	a := NewPolyline([]geom.Vec3{geom.V3(0, 0, 0), geom.V3(0.01, 0, 0)}, 0.0005)
	b := NewPolyline([]geom.Vec3{geom.V3(0, 0.002, 0), geom.V3(0.01, 0.002, 0)}, 0.0005)
	exact := Mutual(a, b, DefaultOrder)
	got := MutualHier(NewSegTree(a), NewSegTree(b), DefaultOrder, 0.5)
	if math.Abs(got-exact) > 1e-3*math.Abs(exact) {
		t.Fatalf("near leaf pair: exact %g hier %g", exact, got)
	}
}

// TestSegTreeCoversSegments: every node's radius must cover all endpoint
// of its range — the invariant the MAC's error bound rests on.
func TestSegTreeCoversSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := NewSegTree(randomPolyline(rng, geom.V3(0, 0, 0), 200, 0.05))
	for ni, n := range tr.nodes {
		for i := n.lo; i < n.hi; i++ {
			s := tr.segs[i]
			if d := s.A.Sub(n.center).Norm(); d > n.radius*(1+1e-12) {
				t.Fatalf("node %d: endpoint outside radius (%g > %g)", ni, d, n.radius)
			}
			if d := s.B.Sub(n.center).Norm(); d > n.radius*(1+1e-12) {
				t.Fatalf("node %d: endpoint outside radius (%g > %g)", ni, d, n.radius)
			}
		}
	}
}
