package peec

import (
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/geom"
)

// Hierarchical mutual-inductance evaluation. The exact Mutual is a dense
// double sum over segment pairs — O(na·nb) Neumann integrals per
// conductor pair, which makes whole-board coupling extraction O(n²) in
// total segments. The Neumann kernel (dla·dlb)/|ra−rb| varies slowly
// once two segment clusters are far apart, so the double sum over a
// well-separated cluster pair collapses to a handful of moment
// contractions: expanding 1/|r+u| (u = sb−sa about the cluster centroids,
// d = |r|) through second order,
//
//	1/|r+u| ≈ 1/d − (r̂·u)/d² + (3(r̂·u)² − |u|²)/(2d³),
//
// every term factorises into per-cluster moments of the current
// elements: P = Σdl, Q_ij = Σ s_i dl_j, T_ijk = Σ s_i s_j dl_k and
// S2 = Σ|s|²dl. The expansion matters because closed loops — rings,
// capacitor loops, the dominant shapes here — have P = 0 identically:
// their leading far-field interaction is the 1/d³ term, which for loops
// reduces exactly to the magnetic dipole–dipole formula
// µ0/4π·[3(ma·r̂)(mb·r̂) − ma·mb]/d³ (Q is then the cross-product matrix
// of the dipole moment m = ½Σs×dl).
//
// SegTree stores a conductor's segments in a spatial bisection tree with
// these moments per node; MutualHier walks two trees simultaneously,
// taking the moment product wherever the multipole acceptance criterion
// (ra+rb) < θ·d holds and recursing — down to exact leaf×leaf Neumann
// sums — where it does not. θ ∈ (0, 1) is the accuracy knob: smaller is
// stricter (more exact pairs), and θ ≤ 0 bypasses the tree entirely for
// bit-exact parity with Mutual.

// treeLeafSize is the largest segment count kept in one leaf; below this
// the exact Neumann sum is cheaper than further subdivision.
const treeLeafSize = 8

// treeNode is one cluster: a contiguous range of the tree's reordered
// segment slice, its length-weighted centroid, a radius covering every
// endpoint, and the multipole moments of its current elements about the
// centroid.
type treeNode struct {
	center geom.Vec3
	radius float64
	lo, hi int32
	left   int32 // -1 = leaf
	right  int32

	p  geom.Vec3       // Σ dl
	q  [3][3]float64   // Σ s_i dl_j
	t2 [3][3]geom.Vec3 // Σ s_i s_j dl (vector per (i,j)); symmetric in i,j
	s2 geom.Vec3       // Σ |s|² dl
}

// SegTree is the spatial bisection tree over one conductor's segments.
// Building is O(n log n) and deterministic (stable median splits on the
// widest axis); the tree holds its own reordered copy of the segments,
// leaving the conductor untouched.
type SegTree struct {
	c     *Conductor
	segs  []Segment
	nodes []treeNode
}

// NewSegTree builds the segment tree of c. An empty conductor yields an
// empty tree (MutualHier returns 0 for it).
func NewSegTree(c *Conductor) *SegTree {
	t := &SegTree{c: c, segs: append([]Segment(nil), c.Segments...)}
	if len(t.segs) > 0 {
		t.build(0, len(t.segs))
	}
	return t
}

// Conductor returns the conductor the tree was built over.
func (t *SegTree) Conductor() *Conductor { return t.c }

// build creates the node covering segs[lo:hi] (splitting recursively)
// and returns its index. The root is node 0.
func (t *SegTree) build(lo, hi int) int32 {
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{}) // reserve; children append after
	var n treeNode
	n.lo, n.hi, n.left, n.right = int32(lo), int32(hi), -1, -1
	wsum := 0.0
	for i := lo; i < hi; i++ {
		s := t.segs[i]
		l := s.Length()
		n.center = n.center.Add(s.Center().Scale(l))
		wsum += l
	}
	if wsum > 0 {
		n.center = n.center.Scale(1 / wsum)
	} else {
		n.center = t.segs[lo].Center()
	}
	for i := lo; i < hi; i++ {
		s := t.segs[i]
		if d := s.A.Sub(n.center).Norm(); d > n.radius {
			n.radius = d
		}
		if d := s.B.Sub(n.center).Norm(); d > n.radius {
			n.radius = d
		}
		dl := s.B.Sub(s.A)
		sv := s.Center().Sub(n.center)
		n.p = n.p.Add(dl)
		sc := [3]float64{sv.X, sv.Y, sv.Z}
		dc := [3]float64{dl.X, dl.Y, dl.Z}
		for i3 := 0; i3 < 3; i3++ {
			for j3 := 0; j3 < 3; j3++ {
				n.q[i3][j3] += sc[i3] * dc[j3]
				n.t2[i3][j3] = n.t2[i3][j3].Add(dl.Scale(sc[i3] * sc[j3]))
			}
		}
		n.s2 = n.s2.Add(dl.Scale(sv.Dot(sv)))
	}
	if hi-lo > treeLeafSize {
		// Median split on the widest axis of the segment centers. The
		// stable sort keeps equal keys in input order, so the tree — and
		// every result computed from it — is deterministic.
		var minC, maxC geom.Vec3
		for i := lo; i < hi; i++ {
			c := t.segs[i].Center()
			if i == lo {
				minC, maxC = c, c
				continue
			}
			minC = geom.V3(math.Min(minC.X, c.X), math.Min(minC.Y, c.Y), math.Min(minC.Z, c.Z))
			maxC = geom.V3(math.Max(maxC.X, c.X), math.Max(maxC.Y, c.Y), math.Max(maxC.Z, c.Z))
		}
		ext := maxC.Sub(minC)
		axis := func(v geom.Vec3) float64 { return v.X }
		if ext.Y >= ext.X && ext.Y >= ext.Z {
			axis = func(v geom.Vec3) float64 { return v.Y }
		} else if ext.Z >= ext.X && ext.Z >= ext.Y {
			axis = func(v geom.Vec3) float64 { return v.Z }
		}
		sub := t.segs[lo:hi]
		sort.SliceStable(sub, func(i, j int) bool {
			return axis(sub[i].Center()) < axis(sub[j].Center())
		})
		mid := (lo + hi) / 2
		n.left = t.build(lo, mid)
		n.right = t.build(mid, hi)
	}
	t.nodes[idx] = n
	return idx
}

// qTvec returns Qᵀ·v, i.e. out_j = Σ_i Q_ij v_i.
func qTvec(q *[3][3]float64, v geom.Vec3) geom.Vec3 {
	return geom.V3(
		q[0][0]*v.X+q[1][0]*v.Y+q[2][0]*v.Z,
		q[0][1]*v.X+q[1][1]*v.Y+q[2][1]*v.Z,
		q[0][2]*v.X+q[1][2]*v.Y+q[2][2]*v.Z,
	)
}

// qFrob returns the Frobenius inner product Σ_ij Qa_ij·Qb_ij.
func qFrob(a, b *[3][3]float64) float64 {
	sum := 0.0
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			sum += a[i][j] * b[i][j]
		}
	}
	return sum
}

// t2Contract returns Σ_ij r̂_i r̂_j T_ij — the vector Σ (r̂·s)² dl.
func t2Contract(t2 *[3][3]geom.Vec3, rh geom.Vec3) geom.Vec3 {
	rc := [3]float64{rh.X, rh.Y, rh.Z}
	var out geom.Vec3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out = out.Add(t2[i][j].Scale(rc[i] * rc[j]))
		}
	}
	return out
}

// farMutual evaluates the second-order moment expansion of the Neumann
// double sum for a well-separated node pair (the µ0/4π factor and the
// conductor weights are applied by the callers).
func farMutual(a, b *treeNode) float64 {
	r := b.center.Sub(a.center)
	d := r.Norm()
	rh := r.Scale(1 / d)
	qaTr := qTvec(&a.q, rh)
	qbTr := qTvec(&b.q, rh)
	sum := a.p.Dot(b.p) / d
	sum -= (a.p.Dot(qbTr) - b.p.Dot(qaTr)) / (d * d)
	sum += (3*a.p.Dot(t2Contract(&b.t2, rh)) +
		3*b.p.Dot(t2Contract(&a.t2, rh)) -
		6*qaTr.Dot(qbTr) +
		2*qFrob(&a.q, &b.q) -
		a.p.Dot(b.s2) - b.p.Dot(a.s2)) / (2 * d * d * d)
	return sum
}

// mutualRec is the dual-tree walk: moment expansion under the MAC, exact
// Neumann sums at leaf pairs, and recursion into the larger cluster
// otherwise. Returns the unweighted segment-pair sum (the caller applies
// the µ/shield scalar and µ0/4π for far terms is folded in here to stay
// additive with the exact leaf sums).
func (t *SegTree) mutualRec(o *SegTree, ia, ib int32, order int, theta float64) float64 {
	a, b := &t.nodes[ia], &o.nodes[ib]
	d := a.center.Dist(b.center)
	if d > 0 && a.radius+b.radius < theta*d {
		return Mu0 / (4 * math.Pi) * farMutual(a, b)
	}
	aLeaf, bLeaf := a.left < 0, b.left < 0
	if aLeaf && bLeaf {
		sum := 0.0
		for i := a.lo; i < a.hi; i++ {
			for j := b.lo; j < b.hi; j++ {
				sum += MutualFilaments(t.segs[i], o.segs[j], order)
			}
		}
		return sum
	}
	if bLeaf || (!aLeaf && a.radius >= b.radius) {
		return t.mutualRec(o, a.left, ib, order, theta) +
			t.mutualRec(o, a.right, ib, order, theta)
	}
	return t.mutualRec(o, ia, b.left, order, theta) +
		t.mutualRec(o, ia, b.right, order, theta)
}

// MutualHier returns the mutual inductance between the two trees'
// conductors, hierarchically approximated with accuracy parameter
// theta ∈ (0, 1) (see the package comment above; smaller is more
// accurate). theta ≤ 0 delegates to the exact Mutual, bit-for-bit.
// Results are memoized in the engine's coupling cache under both
// geometries, order and theta, so a fixed theta yields bit-stable
// results across runs and callers.
func MutualHier(a, b *SegTree, order int, theta float64) float64 {
	if theta <= 0 {
		return Mutual(a.c, b.c, order)
	}
	if len(a.segs) == 0 || len(b.segs) == 0 {
		return 0
	}
	return engine.Memo(mutualHierKey(a.c, b.c, order, theta), func() float64 {
		sum := a.mutualRec(b, 0, 0, order, theta)
		return math.Sqrt(a.c.muEff()*b.c.muEff()) * a.c.shield() * b.c.shield() * sum
	})
}

// CouplingFactorHier is CouplingFactor with the mutual term approximated
// hierarchically at accuracy theta (theta ≤ 0 delegates to the exact
// Mutual, matching CouplingFactor bit-for-bit). The self-inductance
// denominators are always exact: they are O(n²) once per conductor, not
// per pair, so approximating them buys nothing.
func CouplingFactorHier(a, b *SegTree, order int, theta float64) float64 {
	la := a.c.SelfInductanceOrder(order)
	lb := b.c.SelfInductanceOrder(order)
	if la <= 0 || lb <= 0 {
		return 0
	}
	k := MutualHier(a, b, order, theta) / math.Sqrt(la*lb)
	if k > 1 {
		k = 1
	} else if k < -1 {
		k = -1
	}
	return k
}
