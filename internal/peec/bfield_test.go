package peec

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestSegmentBFieldLongWireLimit(t *testing.T) {
	t.Parallel()
	// Near the middle of a long wire the field approaches µ0·I/(2π·d).
	s := Segment{geom.V3(-1, 0, 0), geom.V3(1, 0, 0), 1e-3}
	i, d := 2.0, 0.01
	b := SegmentBField(s, i, geom.V3(0, d, 0))
	want := Mu0 * i / (2 * math.Pi * d)
	if relErr(b.Norm(), want) > 1e-3 {
		t.Errorf("|B| = %v, want %v", b.Norm(), want)
	}
	// Right-hand rule: current +x, point +y ⇒ B along +z.
	if b.Z <= 0 || math.Abs(b.X) > 1e-15 || math.Abs(b.Y) > 1e-15 {
		t.Errorf("B direction = %v, want +z", b)
	}
}

func TestSegmentBFieldOnAxisZero(t *testing.T) {
	t.Parallel()
	s := Segment{geom.V3(0, 0, 0), geom.V3(1, 0, 0), 1e-3}
	if b := SegmentBField(s, 1, geom.V3(2, 0, 0)); b != (geom.Vec3{}) {
		t.Errorf("on-axis B = %v, want 0", b)
	}
	if b := SegmentBField(Segment{}, 1, geom.V3(1, 1, 1)); b != (geom.Vec3{}) {
		t.Errorf("degenerate segment B = %v", b)
	}
}

func TestLoopCenterField(t *testing.T) {
	t.Parallel()
	// B at the center of a circular loop: µ0·I/(2R).
	R, i := 0.01, 1.5
	ring := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), R, 64, 0.2e-3)
	b := ring.BField(i, geom.V3(0, 0, 0))
	want := Mu0 * i / (2 * R)
	if relErr(b.Norm(), want) > 0.01 {
		t.Errorf("|B center| = %v, want %v", b.Norm(), want)
	}
	if math.Abs(b.Z)/b.Norm() < 0.999 {
		t.Errorf("center field not axial: %v", b)
	}
}

func TestLoopFarFieldDipole(t *testing.T) {
	t.Parallel()
	// On the loop axis far away: B = µ0·m/(2π·z³) with m = I·A.
	R, i := 0.005, 1.0
	ring := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), R, 48, 0.2e-3)
	z := 0.1
	b := ring.BField(i, geom.V3(0, 0, z))
	m := i * ring.DipoleMoment().Norm()
	want := Mu0 * m / (2 * math.Pi * z * z * z)
	if relErr(b.Norm(), want) > 0.01 {
		t.Errorf("axial far field = %v, want %v", b.Norm(), want)
	}
}

func TestBFieldSuperposition(t *testing.T) {
	t.Parallel()
	a := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), 0.005, 16, 0.2e-3)
	b := Ring(geom.V3(0.02, 0, 0), geom.V3(0, 0, 1), 0.005, 16, 0.2e-3)
	p := geom.V3(0.01, 0.005, 0.002)
	sum := a.BField(1, p).Add(b.BField(1, p))
	both := &Conductor{MuEff: 1}
	both.Append(a)
	both.Append(b)
	if sum.Dist(both.BField(1, p)) > 1e-15 {
		t.Error("superposition violated")
	}
}

func TestBFieldMuEff(t *testing.T) {
	t.Parallel()
	ring := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), 0.005, 16, 0.2e-3)
	cored := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), 0.005, 16, 0.2e-3)
	cored.MuEff = 50
	p := geom.V3(0.02, 0, 0)
	if relErr(cored.BField(1, p).Norm(), 50*ring.BField(1, p).Norm()) > 1e-12 {
		t.Error("µeff must scale the stray field")
	}
}

func TestFieldMapShape(t *testing.T) {
	t.Parallel()
	ring := Ring(geom.V3(0, 0, 0), geom.V3(0, 0, 1), 0.005, 16, 0.2e-3)
	m := FieldMap([]*Conductor{ring}, geom.R(-0.02, -0.02, 0.02, 0.02), 0.001, 9, 7)
	if len(m) != 7 || len(m[0]) != 9 {
		t.Fatalf("grid = %dx%d", len(m), len(m[0]))
	}
	// The field is strongest near the ring center (middle of the grid).
	center := m[3][4]
	corner := m[0][0]
	if center <= corner {
		t.Errorf("center %v not stronger than corner %v", center, corner)
	}
	// Degenerate grid sizes are clamped.
	m2 := FieldMap([]*Conductor{ring}, geom.R(-0.01, -0.01, 0.01, 0.01), 0, 1, 1)
	if len(m2) != 2 || len(m2[0]) != 2 {
		t.Errorf("clamped grid = %dx%d", len(m2), len(m2[0]))
	}
}

func TestMirrorZImage(t *testing.T) {
	t.Parallel()
	s := Segment{geom.V3(0, 0, 0.003), geom.V3(0.01, 0, 0.003), 1e-3}
	img := s.MirrorZ(0)
	if img.A.Z != -0.003 || img.B.Z != -0.003 {
		t.Errorf("image z = %v, %v", img.A.Z, img.B.Z)
	}
	// The image current direction is reversed in x.
	if img.Dir().X != -s.Dir().X {
		t.Errorf("image direction = %v", img.Dir())
	}
	// Tangential B cancels at the plane surface: Bx,By of source+image ≈
	// doubled normal? For a horizontal wire the field AT the plane from
	// wire+image must be purely vertical-free: check tangential-only
	// component cancellation of Bz is not expected; instead check the
	// normal component Bz cancels (perfect electric conductor boundary).
	p := geom.V3(0.005, 0.004, 0)
	bsum := SegmentBField(s, 1, p).Add(SegmentBField(img, 1, p))
	if math.Abs(bsum.Z) > 1e-12*bsum.Norm() {
		t.Errorf("normal B at plane = %v, want 0", bsum.Z)
	}
}
