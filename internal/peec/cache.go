package peec

import "repro/internal/engine"

// Memoization of the expensive conductor-level integrals through the
// engine's coupling cache.
//
// The cache key is a 128-bit hash of everything the result depends on:
// the kind of computation, the quadrature order, and for each conductor
// its effective permeability, shield factor and the full segment set
// (endpoint coordinates and wire radius, bit-for-bit). Two conductors
// with identical geometry therefore share cache entries no matter which
// subsystem (core extraction, rule derivation, routing, sensitivity)
// built them — and any bit of geometric difference, including a
// translation by one ULP, misses. Keys never canonicalise symmetry
// (Mutual(a,b) vs Mutual(b,a)): the summation order differs, so the
// floating-point results may too, and the cache must be invisible in
// the output.

// Cache key tags, one per memoized computation.
const (
	tagMutual = iota
	tagSelfL
	tagMutualHier
)

// hashInto feeds the conductor's full field-relevant state to h.
func (c *Conductor) hashInto(h *engine.Hasher) {
	h.Float64(c.muEff())
	h.Float64(c.shield())
	h.Int(len(c.Segments))
	for _, s := range c.Segments {
		h.Float64(s.A.X)
		h.Float64(s.A.Y)
		h.Float64(s.A.Z)
		h.Float64(s.B.X)
		h.Float64(s.B.Y)
		h.Float64(s.B.Z)
		h.Float64(s.Radius)
	}
}

// mutualKey builds the cache key for Mutual(a, b, order).
func mutualKey(a, b *Conductor, order int) engine.Key {
	h := engine.NewHasher()
	h.Int(tagMutual)
	h.Int(order)
	a.hashInto(h)
	b.hashInto(h)
	return h.Sum()
}

// mutualHierKey builds the cache key for MutualHier at a given theta.
// theta is part of the key: a different accuracy setting is a different
// (deterministic) result.
func mutualHierKey(a, b *Conductor, order int, theta float64) engine.Key {
	h := engine.NewHasher()
	h.Int(tagMutualHier)
	h.Int(order)
	h.Float64(theta)
	a.hashInto(h)
	b.hashInto(h)
	return h.Sum()
}

// selfKey builds the cache key for c.SelfInductanceOrder(order).
func selfKey(c *Conductor, order int) engine.Key {
	h := engine.NewHasher()
	h.Int(tagSelfL)
	h.Int(order)
	c.hashInto(h)
	return h.Sum()
}
