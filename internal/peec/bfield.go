package peec

import (
	"math"

	"repro/internal/engine"
	"repro/internal/geom"
)

// SegmentBField returns the magnetic flux density at point p produced by
// current i flowing through segment s, using the exact finite-segment
// Biot–Savart solution. Points on the segment axis return the zero vector
// (the field is singular on the filament itself; the caller is expected to
// stay a wire radius away).
func SegmentBField(s Segment, i float64, p geom.Vec3) geom.Vec3 {
	u := s.B.Sub(s.A)
	l := u.Norm()
	if l == 0 {
		return geom.Vec3{}
	}
	uhat := u.Scale(1 / l)
	ap := p.Sub(s.A)
	proj := ap.Dot(uhat)
	perp := ap.Sub(uhat.Scale(proj))
	d := perp.Norm()
	// Regularise on-axis evaluation with the wire radius.
	reg := math.Max(s.Radius*1e-3, 1e-12)
	if d < reg {
		return geom.Vec3{}
	}
	z1 := -proj
	z2 := l - proj
	f := z2/math.Sqrt(z2*z2+d*d) - z1/math.Sqrt(z1*z1+d*d)
	mag := Mu0 * i / (4 * math.Pi * d) * f
	dir := uhat.Cross(perp.Scale(1 / d))
	return dir.Scale(mag)
}

// BField returns the flux density at p produced by current i through the
// whole conductor structure, scaled by its effective permeability (the
// paper's stray-field approximation for cored components) and attenuated
// by its shield factor.
func (c *Conductor) BField(i float64, p geom.Vec3) geom.Vec3 {
	var b geom.Vec3
	for _, s := range c.Segments {
		b = b.Add(SegmentBField(s, i, p))
	}
	return b.Scale(c.muEff() * c.shield())
}

// FieldMap samples |B| over a regular nx×ny grid spanning rectangle r at
// height z, for unit current through each conductor in cs. It reproduces
// the kind of stray-field picture shown in the paper's Figure 4.
// The returned grid is indexed [iy][ix]. Rows are sampled over the
// engine's worker pool; each cell is an independent Biot–Savart sum, so
// the grid is identical under any parallelism.
func FieldMap(cs []*Conductor, r geom.Rect, z float64, nx, ny int) [][]float64 {
	if nx < 2 {
		nx = 2
	}
	if ny < 2 {
		ny = 2
	}
	defer engine.Phase("peec.fieldmap")()
	out := make([][]float64, ny)
	engine.ForEach(ny, func(iy int) error {
		row := make([]float64, nx)
		y := r.Min.Y + (r.Max.Y-r.Min.Y)*float64(iy)/float64(ny-1)
		for ix := 0; ix < nx; ix++ {
			x := r.Min.X + (r.Max.X-r.Min.X)*float64(ix)/float64(nx-1)
			p := geom.V3(x, y, z)
			var b geom.Vec3
			for _, c := range cs {
				b = b.Add(c.BField(1, p))
			}
			row[ix] = b.Norm()
		}
		out[iy] = row
		return nil
	})
	return out
}
