package explore

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/emi"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// YieldOptions configures a Monte Carlo tolerance analysis. Zero values
// take the documented defaults.
type YieldOptions struct {
	Samples int   // Monte Carlo builds; 0 = 200
	Batch   int   // builds per parallel wave (emit granularity); 0 = 32
	Seed    int64 // RNG seed — the sample stream is deterministic in it

	MaxFreq float64 // EMI band limit; 0 = CISPR band stop

	DefaultTol  float64            // relative R/L/C tolerance; 0 = 0.10
	CouplingTol float64            // relative tolerance on extracted k; 0 = 0.20
	TolOf       map[string]float64 // per-element overrides (datasheet bands)

	// Exclude skips elements from perturbation (calibrated measurement
	// equipment). nil excludes every element whose name contains "lisn".
	Exclude func(name string) bool
}

// YieldEstimate is the running estimate emitted after each batch.
type YieldEstimate struct {
	Done    int           `json:"done"`
	Total   int           `json:"total"`
	Pass    int           `json:"pass"`
	Yield   float64       `json:"yield"`
	CILo    float64       `json:"ci_lo"`
	CIHi    float64       `json:"ci_hi"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// YieldCurve is the result of a Monte Carlo run: the overall pass yield
// with its Wilson 95% confidence interval, plus the per-frequency-bin
// pass fraction — the EMI yield curve — with per-bin intervals.
type YieldCurve struct {
	Samples int     // builds evaluated
	Pass    int     // builds meeting the limit mask everywhere
	Yield   float64 // Pass / Samples
	CILo    float64 // Wilson 95% interval of the overall yield
	CIHi    float64
	Batches int
	Elapsed time.Duration

	Freqs   []float64 // harmonic grid, ascending (shared by all samples)
	InBand  []bool    // bin overlaps a protected CISPR band
	BinPass []float64 // fraction of builds under the limit per bin (1 out of band)
	BinLo   []float64 // Wilson 95% interval per bin
	BinHi   []float64

	WorstMargins []float64 // per-build worst margin in dB, ascending
	Perturbed    int       // circuit elements that were perturbed
}

// Percentile returns the q-quantile (0..1) of the worst margins.
func (y *YieldCurve) Percentile(q float64) float64 {
	if len(y.WorstMargins) == 0 {
		return 0
	}
	idx := int(q * float64(len(y.WorstMargins)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(y.WorstMargins) {
		idx = len(y.WorstMargins) - 1
	}
	return y.WorstMargins[idx]
}

// perturbation is one circuit element the Monte Carlo jitters.
type perturbation struct {
	idx      int     // index into the base circuit's element slice
	tol      float64 // relative uniform tolerance
	coupling bool    // K element: clamp to [-1, 1] after jitter
}

// Yield runs the Monte Carlo tolerance analysis of a project's coupled
// EMI prediction: couplings are extracted once from the placement, then
// opt.Samples builds are drawn by perturbing every perturbable element
// uniformly within its tolerance band and predicting the spectrum. The
// random multipliers are drawn serially from one seeded rand.Rand before
// any evaluation starts, so the curve is bit-reproducible for a fixed
// seed regardless of worker scheduling; the builds themselves fan out
// over the engine pool in batches, and emit (optional) receives a running
// estimate after every batch.
func Yield(ctx context.Context, proj *core.Project, opt YieldOptions, emit func(YieldEstimate)) (*YieldCurve, error) {
	n := opt.Samples
	if n <= 0 {
		n = 200
	}
	batch := opt.Batch
	if batch <= 0 {
		batch = 32
	}
	defTol := opt.DefaultTol
	if defTol == 0 {
		defTol = 0.10
	}
	kTol := opt.CouplingTol
	if kTol == 0 {
		kTol = 0.20
	}
	exclude := opt.Exclude
	if exclude == nil {
		exclude = func(name string) bool {
			return strings.Contains(strings.ToLower(name), "lisn")
		}
	}
	start := time.Now()
	ctx, sp := obs.Start(ctx, "explore.yield")
	sp.Int("samples", int64(n))
	defer sp.End()

	for name, tol := range opt.TolOf {
		if proj.Circuit.Find(name) == nil {
			return nil, fmt.Errorf("explore: tolerance for unknown element %q", name)
		}
		if tol < 0 || tol >= 1 {
			return nil, fmt.Errorf("explore: tolerance %g for %q out of [0, 1)", tol, name)
		}
	}

	ks, err := proj.ExtractCouplingsCtx(ctx, proj.AllPairs())
	if err != nil {
		return nil, err
	}
	base := proj.CircuitWithCouplings(ks)

	// The perturbation set, in circuit element order.
	var perturbs []perturbation
	for i, e := range base.Elements {
		switch e.Kind {
		case netlist.R, netlist.L, netlist.C:
			if exclude(e.Name) {
				continue
			}
			tol := defTol
			if t, ok := opt.TolOf[e.Name]; ok {
				tol = t
			}
			if tol <= 0 {
				continue
			}
			perturbs = append(perturbs, perturbation{idx: i, tol: tol})
		case netlist.K:
			if kTol > 0 {
				perturbs = append(perturbs, perturbation{idx: i, tol: kTol, coupling: true})
			}
		}
	}

	// Draw every build's multipliers up front, serially: the stream of
	// random numbers depends only on the seed and the perturbation set.
	rng := rand.New(rand.NewSource(opt.Seed))
	mults := make([][]float64, n)
	for s := range mults {
		row := make([]float64, len(perturbs))
		for j, pb := range perturbs {
			row[j] = 1 + pb.tol*(2*rng.Float64()-1)
		}
		mults[s] = row
	}

	// The harmonic grid is placement- and perturbation-invariant.
	proto, err := emi.NewBandSolver(base, proj.Sources, proj.MeasureNode, 0, opt.MaxFreq)
	if err != nil {
		return nil, err
	}
	freqs := proto.Freqs()
	inBand := make([]bool, len(freqs))
	nInBand := 0
	for i, f := range freqs {
		_, inBand[i] = emi.Limit(f)
		if inBand[i] {
			nInBand++
		}
	}
	if nInBand == 0 {
		return nil, fmt.Errorf("explore: no harmonic overlaps a protected band below %g Hz", opt.MaxFreq)
	}

	out := &YieldCurve{
		Samples:   n,
		Freqs:     freqs,
		InBand:    inBand,
		Perturbed: len(perturbs),
	}
	binPass := make([]int, len(freqs))

	type sampleOut struct {
		pass   []bool // per-bin level <= limit (true out of band)
		margin float64
	}
	for off := 0; off < n; off += batch {
		size := batch
		if off+size > n {
			size = n - off
		}
		_, bsp := obs.Start(ctx, "explore.yield.batch")
		bsp.Int("size", int64(size))
		done := engine.Phase("explore.yield.batch")
		results, err := engine.MapCtx(ctx, size, func(i int) (sampleOut, error) {
			ckt := base.Clone()
			for j, pb := range perturbs {
				e := ckt.Elements[pb.idx]
				if pb.coupling {
					e.Coup *= mults[off+i][j]
					if e.Coup > 1 {
						e.Coup = 1
					} else if e.Coup < -1 {
						e.Coup = -1
					}
				} else {
					e.Value *= mults[off+i][j]
				}
			}
			bs, err := emi.NewBandSolver(ckt, proj.Sources, proj.MeasureNode, 0, opt.MaxFreq)
			if err != nil {
				return sampleOut{}, err
			}
			bs.SetSolver(proj.Solver)
			spec, err := bs.SpectrumCtx(ctx)
			if err != nil {
				return sampleOut{}, err
			}
			so := sampleOut{pass: make([]bool, len(spec.Freqs)), margin: spec.WorstMargin()}
			for k, f := range spec.Freqs {
				limit, in := emi.Limit(f)
				so.pass[k] = !in || spec.DB[k] <= limit
			}
			return so, nil
		})
		done()
		bsp.End()
		if err != nil {
			return nil, err
		}
		for _, so := range results {
			allPass := true
			for k, ok := range so.pass {
				if ok {
					binPass[k]++
				} else {
					allPass = false
				}
			}
			if allPass {
				out.Pass++
			}
			out.WorstMargins = append(out.WorstMargins, so.margin)
		}
		out.Batches++
		if emit != nil {
			done := off + size
			lo, hi := wilson(out.Pass, done)
			emit(YieldEstimate{
				Done: done, Total: n, Pass: out.Pass,
				Yield: float64(out.Pass) / float64(done),
				CILo:  lo, CIHi: hi,
				Elapsed: time.Since(start),
			})
		}
	}

	out.Yield = float64(out.Pass) / float64(n)
	out.CILo, out.CIHi = wilson(out.Pass, n)
	out.BinPass = make([]float64, len(freqs))
	out.BinLo = make([]float64, len(freqs))
	out.BinHi = make([]float64, len(freqs))
	for k := range freqs {
		out.BinPass[k] = float64(binPass[k]) / float64(n)
		out.BinLo[k], out.BinHi[k] = wilson(binPass[k], n)
	}
	sort.Float64s(out.WorstMargins)
	out.Elapsed = time.Since(start)
	return out, nil
}

// wilson returns the Wilson score 95% confidence interval of a binomial
// proportion — well-behaved at the 0 and 1 boundaries Monte Carlo yield
// estimates live near.
func wilson(pass, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.959963984540054 // Φ⁻¹(0.975)
	p := float64(pass) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := p + z*z/(2*nn)
	half := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn))
	return (center - half) / denom, (center + half) / denom
}
