package explore

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/emi"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/place"
)

// Objective names a DesignProblem can score. All are minimized; the margin
// objective is the negated worst-case margin against the CISPR limit mask,
// so minimizing it maximizes headroom.
const (
	ObjMargin     = "margin"     // −(worst-case limit − level) in dB
	ObjArea       = "area"       // bounding-box area of the placed parts, m²
	ObjNet        = "net"        // Σ star net length, m
	ObjViolations = "violations" // DRC violation count
)

// AllObjectives is the full objective vocabulary in canonical order.
var AllObjectives = []string{ObjMargin, ObjArea, ObjNet, ObjViolations}

// penaltyObjective marks an unplaceable candidate: worse than any feasible
// point in every objective, but finite so crowding distances stay usable.
const penaltyObjective = 1e9

// marginCap bounds the margin objective: beyond ±1000 dB the spectrum is
// numerically meaningless and unbounded values would wreck crowding
// normalization.
const marginCap = 1000.0

// SweepParam is one component-parameter axis of the search: the named
// circuit element's value is scaled by a genome-controlled multiplier in
// [Lo, Hi] (e.g. an X-cap swept over 0.5×..2× its nominal capacitance).
type SweepParam struct {
	Element string  `json:"element"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
}

// DesignProblem adapts a core.Project to the Evaluator interface: each
// genome encodes a placement tournament entry (placement seed, priority
// jitter, scoring weights) plus one value multiplier per SweepParam, and
// evaluates to the configured objective vector. Evaluate never mutates
// the project — every candidate works on its own design clone and circuit
// clone, so candidates are safe to fan out.
type DesignProblem struct {
	Project    *core.Project
	Objectives []string // nil = AllObjectives
	Sweep      []SweepParam
	MaxFreq    float64 // EMI band limit; 0 = CISPR band stop

	// Placement knobs shared by all candidates.
	GridStep    float64
	AnnealIters int     // per-candidate refinement budget; 0 = none
	JitterMax   float64 // upper bound of the order-jitter gene; 0 = 0.3
}

// Validate checks the problem is well-formed before a run.
func (p *DesignProblem) Validate() error {
	if p.Project == nil {
		return fmt.Errorf("explore: problem needs a project")
	}
	if err := p.Project.Validate(); err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, o := range p.objectives() {
		switch o {
		case ObjMargin, ObjArea, ObjNet, ObjViolations:
		default:
			return fmt.Errorf("explore: unknown objective %q", o)
		}
		if seen[o] {
			return fmt.Errorf("explore: duplicate objective %q", o)
		}
		seen[o] = true
	}
	for _, sw := range p.Sweep {
		e := p.Project.Circuit.Find(sw.Element)
		if e == nil {
			return fmt.Errorf("explore: sweep element %q not in circuit", sw.Element)
		}
		switch e.Kind {
		case netlist.R, netlist.L, netlist.C:
		default:
			return fmt.Errorf("explore: sweep element %q is not an R/L/C", sw.Element)
		}
		if !(sw.Lo > 0) || !(sw.Hi >= sw.Lo) {
			return fmt.Errorf("explore: sweep %q needs 0 < lo <= hi, got [%g, %g]",
				sw.Element, sw.Lo, sw.Hi)
		}
	}
	return nil
}

func (p *DesignProblem) objectives() []string {
	if len(p.Objectives) == 0 {
		return AllObjectives
	}
	return p.Objectives
}

func (p *DesignProblem) jitterMax() float64 {
	if p.JitterMax == 0 {
		return 0.3
	}
	return p.JitterMax
}

// ObjectiveNames implements Evaluator.
func (p *DesignProblem) ObjectiveNames() []string { return p.objectives() }

// The genome layout: placement seed, priority jitter, the three scoring
// weights, then one multiplier per sweep parameter.
const fixedGenes = 5

// Bounds implements Evaluator.
func (p *DesignProblem) Bounds() []Bound {
	out := []Bound{
		{0, 1},             // placement seed, quantized by decode
		{0, p.jitterMax()}, // priority order jitter
		{0.25, 2},          // wirelength weight
		{0.05, 1.5},        // group weight
		{0.05, 1},          // compactness weight
	}
	for _, sw := range p.Sweep {
		out = append(out, Bound{sw.Lo, sw.Hi})
	}
	return out
}

// decode splits a genome into the placement options and sweep multipliers.
func (p *DesignProblem) decode(genes []float64) (place.Options, []float64, error) {
	if len(genes) != fixedGenes+len(p.Sweep) {
		return place.Options{}, nil, fmt.Errorf("explore: genome has %d genes, want %d",
			len(genes), fixedGenes+len(p.Sweep))
	}
	opt := place.Options{
		GridStep:         p.GridStep,
		Seed:             int64(genes[0] * float64(1<<31)),
		OrderJitter:      genes[1],
		WirelengthWeight: genes[2],
		GroupWeight:      genes[3],
		CompactWeight:    genes[4],
		AnnealIters:      p.AnnealIters,
	}
	return opt, genes[fixedGenes:], nil
}

// Realize re-runs the winning candidate's placement on a fresh clone and
// returns the placed design — used to turn front members back into
// shippable layouts after a run.
func (p *DesignProblem) Realize(ctx context.Context, genes []float64) (*layout.Design, error) {
	opt, _, err := p.decode(genes)
	if err != nil {
		return nil, err
	}
	d := p.cloneUnplaced()
	if _, err := place.AutoPlaceCtx(ctx, d, opt); err != nil {
		return nil, err
	}
	return d, nil
}

// cloneUnplaced clones the project design with every movable component
// ripped up, so each candidate places from the same blank slate.
func (p *DesignProblem) cloneUnplaced() *layout.Design {
	d := p.Project.Design.Clone()
	for _, c := range d.Comps {
		if !c.Preplaced {
			c.Placed = false
		}
	}
	return d
}

// Evaluate implements Evaluator: place the candidate, then score the
// requested objectives. Candidates whose placement fails return the
// penalty vector (they stay comparable instead of aborting the run);
// context cancellation and solver failures abort.
func (p *DesignProblem) Evaluate(ctx context.Context, genes []float64) ([]float64, error) {
	opt, mults, err := p.decode(genes)
	if err != nil {
		return nil, err
	}
	objectives := p.objectives()
	d := p.cloneUnplaced()
	if _, err := place.AutoPlaceCtx(ctx, d, opt); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var perr *place.PlaceError
		if errors.As(err, &perr) {
			out := make([]float64, len(objectives))
			for i := range out {
				out[i] = penaltyObjective
			}
			return out, nil
		}
		return nil, err
	}

	var margin float64
	var haveMargin bool
	var rep *drc.Report
	for _, o := range objectives {
		switch o {
		case ObjMargin:
			haveMargin = true
		case ObjViolations:
			rep = drc.CheckCtx(ctx, d)
		}
	}
	if haveMargin {
		margin, err = p.worstMargin(ctx, d, mults)
		if err != nil {
			return nil, err
		}
	}

	out := make([]float64, len(objectives))
	for i, o := range objectives {
		switch o {
		case ObjMargin:
			out[i] = -margin
		case ObjArea:
			out[i] = placedArea(d)
		case ObjNet:
			out[i] = totalNetLength(d)
		case ObjViolations:
			out[i] = float64(len(rep.Violations))
		}
	}
	return out, nil
}

// worstMargin runs the coupled EMI prediction of the candidate: couplings
// extracted from its placement, sweep multipliers applied to the circuit,
// one BandSolver compiled and reused serially across the harmonics —
// the parallelism lives across candidates, not inside one.
func (p *DesignProblem) worstMargin(ctx context.Context, d *layout.Design, mults []float64) (float64, error) {
	proj := *p.Project
	proj.Design = d
	if len(mults) > 0 {
		ckt := proj.Circuit.Clone()
		for i, sw := range p.Sweep {
			ckt.Find(sw.Element).Value *= mults[i]
		}
		proj.Circuit = ckt
	}
	ks, err := proj.ExtractCouplingsCtx(ctx, proj.AllPairs())
	if err != nil {
		return 0, err
	}
	ckt := proj.CircuitWithCouplings(ks)
	bs, err := emi.NewBandSolver(ckt, proj.Sources, proj.MeasureNode, 0, p.MaxFreq)
	if err != nil {
		return 0, err
	}
	bs.SetSolver(proj.Solver)
	spec, err := bs.SpectrumCtx(ctx)
	if err != nil {
		return 0, err
	}
	m := spec.WorstMargin()
	if math.IsNaN(m) {
		return 0, fmt.Errorf("explore: margin is NaN")
	}
	if m > marginCap {
		m = marginCap
	} else if m < -marginCap {
		m = -marginCap
	}
	return m, nil
}

// placedArea sums the bounding-box area of the placed components per board.
func placedArea(d *layout.Design) float64 {
	total := 0.0
	for b := 0; b < d.Boards; b++ {
		var bbox geom.Rect
		any := false
		for _, c := range d.Comps {
			if !c.Placed || c.Board != b {
				continue
			}
			if !any {
				bbox = c.Footprint()
				any = true
			} else {
				bbox = bbox.Union(c.Footprint())
			}
		}
		if any {
			total += bbox.W() * bbox.H()
		}
	}
	return total
}

// totalNetLength sums the star length of every net.
func totalNetLength(d *layout.Design) float64 {
	sum := 0.0
	for _, n := range d.Nets {
		sum += d.NetLength(n)
	}
	return sum
}
