package explore_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/buck"
	"repro/internal/explore"
)

func TestDesignProblemValidate(t *testing.T) {
	t.Parallel()
	proj := buck.Project()
	cases := []struct {
		name string
		prob explore.DesignProblem
	}{
		{"no project", explore.DesignProblem{}},
		{"unknown objective", explore.DesignProblem{Project: proj, Objectives: []string{"speed"}}},
		{"duplicate objective", explore.DesignProblem{Project: proj, Objectives: []string{"area", "area"}}},
		{"unknown sweep element", explore.DesignProblem{Project: proj,
			Sweep: []explore.SweepParam{{Element: "nope", Lo: 0.5, Hi: 2}}}},
		{"bad sweep bounds", explore.DesignProblem{Project: proj,
			Sweep: []explore.SweepParam{{Element: "CCIN1", Lo: 2, Hi: 0.5}}}},
	}
	for _, c := range cases {
		if err := c.prob.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the problem", c.name)
		}
	}
	ok := explore.DesignProblem{Project: proj, Objectives: []string{explore.ObjArea, explore.ObjNet}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
}

// TestExplorePlacementObjectives runs a tiny tournament on the geometric
// objectives only (no EMI solves): the front must be non-empty, finite,
// non-dominated, and bit-reproducible for the seed.
func TestExplorePlacementObjectives(t *testing.T) {
	t.Parallel()
	run := func() *explore.Result {
		prob := &explore.DesignProblem{
			Project:    buck.Project(),
			Objectives: []string{explore.ObjArea, explore.ObjNet, explore.ObjViolations},
			JitterMax:  0.4,
		}
		if err := prob.Validate(); err != nil {
			t.Fatal(err)
		}
		res, err := explore.Run(context.Background(), prob, explore.Config{
			Pop: 4, Generations: 1, Seed: 7,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		res.Elapsed = 0
		return res
	}
	res := run()
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	if res.Evaluations != 8 {
		t.Errorf("evaluations = %d, want 8", res.Evaluations)
	}
	for i := range res.Front {
		for _, v := range res.Front[i].Objectives {
			if v < 0 || v >= 1e9 {
				t.Errorf("objective %v out of feasible range", v)
			}
		}
		for j := range res.Front {
			if i != j && explore.Dominates(res.Front[i].Objectives, res.Front[j].Objectives) {
				t.Fatal("final front violates the non-dominated invariant")
			}
		}
	}
	if !reflect.DeepEqual(res, run()) {
		t.Error("same seed produced different exploration results")
	}
}

// TestExploreMarginObjective exercises the full EMI evaluation path:
// placement, coupling extraction, band-limited spectrum, margin.
func TestExploreMarginObjective(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("EMI evaluations")
	}
	prob := &explore.DesignProblem{
		Project:    buck.Project(),
		Objectives: []string{explore.ObjMargin, explore.ObjArea},
		Sweep:      []explore.SweepParam{{Element: "CCIN1", Lo: 0.5, Hi: 2}},
		MaxFreq:    2e6,
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := explore.Run(context.Background(), prob, explore.Config{
		Pop: 4, Generations: 1, Seed: 5,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for _, ind := range res.Front {
		if len(ind.Genes) != 6 { // 5 fixed + 1 sweep
			t.Errorf("genome has %d genes, want 6", len(ind.Genes))
		}
		m := ind.Objectives[0]
		if m < -1000 || m > 1000 {
			t.Errorf("margin objective %v outside the ±1000 dB cap", m)
		}
	}

	// Realize turns a front member back into a fully placed design.
	d, err := prob.Realize(context.Background(), res.Front[0].Genes)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Comps {
		if !c.Placed {
			t.Errorf("realized design leaves %s unplaced", c.Ref)
		}
	}
}
