package explore_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/buck"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/place"
)

// placedBuck returns the buck project with a deterministic placement, the
// precondition for coupling extraction.
func placedBuck(t *testing.T) *core.Project {
	t.Helper()
	p := buck.Project()
	if _, err := place.AutoPlace(p.Design, place.Options{}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestYieldCurve(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("Monte-Carlo run")
	}
	proj := placedBuck(t)
	opt := explore.YieldOptions{Samples: 12, Batch: 5, Seed: 41, MaxFreq: 2e6}

	var estimates []explore.YieldEstimate
	curve, err := explore.Yield(context.Background(), proj, opt, func(e explore.YieldEstimate) {
		estimates = append(estimates, e)
	})
	if err != nil {
		t.Fatal(err)
	}
	if curve.Samples != 12 || curve.Batches != 3 {
		t.Errorf("samples/batches = %d/%d, want 12/3", curve.Samples, curve.Batches)
	}
	if curve.Perturbed == 0 {
		t.Error("no elements perturbed")
	}
	if len(curve.Freqs) == 0 || len(curve.BinPass) != len(curve.Freqs) ||
		len(curve.BinLo) != len(curve.Freqs) || len(curve.BinHi) != len(curve.Freqs) {
		t.Fatalf("bin slices misaligned: %d freqs, %d pass", len(curve.Freqs), len(curve.BinPass))
	}
	inBand := 0
	for i := range curve.Freqs {
		if curve.InBand[i] {
			inBand++
		}
		if curve.BinPass[i] < 0 || curve.BinPass[i] > 1 {
			t.Errorf("bin %d pass fraction %v out of [0,1]", i, curve.BinPass[i])
		}
		if curve.BinLo[i] > curve.BinPass[i] || curve.BinHi[i] < curve.BinPass[i] {
			t.Errorf("bin %d CI [%v, %v] excludes the estimate %v",
				i, curve.BinLo[i], curve.BinHi[i], curve.BinPass[i])
		}
	}
	if inBand == 0 {
		t.Error("no harmonic in a protected band")
	}
	if curve.CILo > curve.Yield || curve.CIHi < curve.Yield || curve.CILo < 0 || curve.CIHi > 1 {
		t.Errorf("overall CI [%v, %v] inconsistent with yield %v", curve.CILo, curve.CIHi, curve.Yield)
	}
	if len(curve.WorstMargins) != 12 {
		t.Fatalf("%d worst margins, want 12", len(curve.WorstMargins))
	}
	for i := 1; i < len(curve.WorstMargins); i++ {
		if curve.WorstMargins[i-1] > curve.WorstMargins[i] {
			t.Fatal("worst margins not sorted ascending")
		}
	}
	if curve.Percentile(0) > curve.Percentile(1) {
		t.Error("percentiles out of order")
	}

	// The running estimates arrive per batch with monotone progress.
	if len(estimates) != 3 {
		t.Fatalf("emit called %d times, want 3", len(estimates))
	}
	wantDone := []int{5, 10, 12}
	for i, e := range estimates {
		if e.Done != wantDone[i] || e.Total != 12 {
			t.Errorf("estimate %d progress %d/%d, want %d/12", i, e.Done, e.Total, wantDone[i])
		}
	}

	// Bit-reproducible for the seed regardless of worker scheduling.
	again, err := explore.Yield(context.Background(), proj, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	curve.Elapsed, again.Elapsed = 0, 0
	if !reflect.DeepEqual(curve, again) {
		t.Error("same seed produced a different yield curve")
	}

	// A different seed draws different builds.
	opt.Seed = 4242
	other, err := explore.Yield(context.Background(), proj, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(curve.WorstMargins, other.WorstMargins) {
		t.Error("different seeds produced identical margin streams")
	}
}

func TestYieldValidatesTolOf(t *testing.T) {
	t.Parallel()
	proj := placedBuck(t)
	_, err := explore.Yield(context.Background(), proj,
		explore.YieldOptions{Samples: 1, MaxFreq: 2e6, TolOf: map[string]float64{"nope": 0.1}}, nil)
	if err == nil {
		t.Error("unknown TolOf element accepted")
	}
	_, err = explore.Yield(context.Background(), proj,
		explore.YieldOptions{Samples: 1, MaxFreq: 2e6, TolOf: map[string]float64{"CCIN1": 1.5}}, nil)
	if err == nil {
		t.Error("out-of-range tolerance accepted")
	}
}

func TestYieldHonoursCancellation(t *testing.T) {
	t.Parallel()
	proj := placedBuck(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := explore.Yield(ctx, proj, explore.YieldOptions{Samples: 4, MaxFreq: 2e6}, nil); err == nil {
		t.Error("cancelled yield run returned no error")
	}
}
