// Package explore turns the EMI design flow into a search workload: a
// multi-objective optimizer that runs placement tournaments and
// component-parameter sweeps against a configurable objective vector
// (EMI margin, board area, net length, DRC violations) with NSGA-II-style
// non-dominated sorting, and a Monte Carlo tolerance analyzer producing
// EMI yield curves — the fraction of builds passing the limit mask per
// frequency bin — with confidence intervals.
//
// The solver stack underneath (compiled MNA stamp plans, LU reuse,
// per-candidate BandSolver compilation) is what makes treating a whole
// design space as one workload affordable; candidates fan out over the
// shared engine pool while every per-candidate evaluation stays serial
// and deterministic.
package explore

import (
	"math"
	"sort"
)

// Dominates reports Pareto dominance for minimization: a dominates b when
// a is no worse in every objective and strictly better in at least one.
// Vectors of unequal length never dominate each other.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) || len(a) == 0 {
		return false
	}
	better := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			better = true
		}
	}
	return better
}

// NondominatedSort partitions the points into fronts: front 0 holds the
// non-dominated points, front k the points dominated only by fronts < k
// (the fast non-dominated sort of NSGA-II). Every front lists indices
// into objs in ascending order, so the result is independent of any
// iteration accident.
func NondominatedSort(objs [][]float64) [][]int {
	n := len(objs)
	if n == 0 {
		return nil
	}
	domCount := make([]int, n)    // how many points dominate i
	dominated := make([][]int, n) // points i dominates
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case Dominates(objs[i], objs[j]):
				dominated[i] = append(dominated[i], j)
				domCount[j]++
			case Dominates(objs[j], objs[i]):
				dominated[j] = append(dominated[j], i)
				domCount[i]++
			}
		}
	}
	var fronts [][]int
	var cur []int
	for i := 0; i < n; i++ {
		if domCount[i] == 0 {
			cur = append(cur, i)
		}
	}
	for len(cur) > 0 {
		sort.Ints(cur)
		fronts = append(fronts, cur)
		var next []int
		for _, i := range cur {
			for _, j := range dominated[i] {
				domCount[j]--
				if domCount[j] == 0 {
					next = append(next, j)
				}
			}
		}
		cur = next
	}
	return fronts
}

// CrowdingDistance returns the NSGA-II crowding distance of each member
// of one front (aligned with the front slice): the boundary points of
// every objective get +Inf, interior points the sum of normalized
// neighbour gaps. An objective with zero range contributes nothing.
// Ties in an objective are broken by point index so the assignment is
// deterministic.
func CrowdingDistance(objs [][]float64, front []int) []float64 {
	n := len(front)
	dist := make([]float64, n)
	if n == 0 {
		return dist
	}
	m := len(objs[front[0]])
	idx := make([]int, n) // positions 0..n-1 into front, resorted per objective
	for k := 0; k < m; k++ {
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			va, vb := objs[front[idx[a]]][k], objs[front[idx[b]]][k]
			if va != vb {
				return va < vb
			}
			return front[idx[a]] < front[idx[b]]
		})
		lo := objs[front[idx[0]]][k]
		hi := objs[front[idx[n-1]]][k]
		dist[idx[0]] = math.Inf(1)
		dist[idx[n-1]] = math.Inf(1)
		if !(hi > lo) || math.IsInf(hi, 0) || math.IsInf(lo, 0) {
			continue
		}
		for i := 1; i < n-1; i++ {
			if math.IsInf(dist[idx[i]], 1) {
				continue
			}
			dist[idx[i]] += (objs[front[idx[i+1]]][k] - objs[front[idx[i-1]]][k]) / (hi - lo)
		}
	}
	return dist
}
