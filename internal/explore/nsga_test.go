package explore

import (
	"context"
	"math"
	"reflect"
	"testing"
)

// zdt1 is the classic two-objective benchmark: the Pareto-optimal set is
// g = 1 (all tail genes 0) with f2 = 1 - sqrt(f1). Cheap and analytic, so
// the optimizer's machinery is tested without the EMI stack.
type zdt1 struct{ genes int }

func (z zdt1) Bounds() []Bound {
	out := make([]Bound, z.genes)
	for i := range out {
		out[i] = Bound{0, 1}
	}
	return out
}

func (z zdt1) ObjectiveNames() []string { return []string{"f1", "f2"} }

func (z zdt1) Evaluate(_ context.Context, genes []float64) ([]float64, error) {
	f1 := genes[0]
	g := 0.0
	for _, v := range genes[1:] {
		g += v
	}
	g = 1 + 9*g/float64(len(genes)-1)
	return []float64{f1, g * (1 - math.Sqrt(f1/g))}, nil
}

func TestRunConvergesOnZDT1(t *testing.T) {
	t.Parallel()
	var gens []Generation
	res, err := Run(context.Background(), zdt1{genes: 6}, Config{
		Pop: 20, Generations: 20, Seed: 3,
	}, func(g Generation) { gens = append(gens, g) })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty final front")
	}
	if res.Generations != 21 {
		t.Errorf("generations = %d, want 21", res.Generations)
	}
	if res.Evaluations != 21*20 {
		t.Errorf("evaluations = %d, want %d", res.Evaluations, 21*20)
	}
	if len(gens) != 21 {
		t.Fatalf("emit called %d times, want 21", len(gens))
	}
	for i, g := range gens {
		if g.Gen != i {
			t.Errorf("emit %d has Gen %d", i, g.Gen)
		}
		if len(g.Front) == 0 {
			t.Errorf("emit %d has empty front", i)
		}
	}

	// The final front satisfies the non-dominated invariant.
	assertNondominated(t, res.Front)

	// Convergence: on ZDT1 the optimum satisfies f2 = 1 - sqrt(f1) (g = 1).
	// A short run will not reach it, but the whole front must sit clearly
	// below the g = 4 level and the best aggregate must improve on the
	// initial random generation.
	best := func(front []Individual) float64 {
		b := math.Inf(1)
		for _, ind := range front {
			if s := ind.Objectives[0] + ind.Objectives[1]; s < b {
				b = s
			}
		}
		return b
	}
	for _, ind := range res.Front {
		bound := 4 * (1 - math.Sqrt(ind.Objectives[0]/4))
		if ind.Objectives[1] > bound+0.5 {
			t.Errorf("front member (%.3f, %.3f) far from the ZDT1 front",
				ind.Objectives[0], ind.Objectives[1])
		}
	}
	if best(res.Front) >= best(gens[0].Front) {
		t.Errorf("no improvement: best sum %v (final) vs %v (initial)",
			best(res.Front), best(gens[0].Front))
	}
}

func assertNondominated(t *testing.T, front []Individual) {
	t.Helper()
	for i := range front {
		for j := range front {
			if i != j && Dominates(front[i].Objectives, front[j].Objectives) {
				t.Fatalf("front member %v dominates co-member %v",
					front[i].Objectives, front[j].Objectives)
			}
		}
	}
}

// TestRunBitReproducible: identical config twice → identical genomes,
// objectives, and emitted progress stream.
func TestRunBitReproducible(t *testing.T) {
	t.Parallel()
	run := func() (*Result, []Generation) {
		var gens []Generation
		res, err := Run(context.Background(), zdt1{genes: 5}, Config{
			Pop: 12, Generations: 8, Seed: 99,
		}, func(g Generation) {
			g.Elapsed = 0 // wall time is the one legitimately varying field
			gens = append(gens, g)
		})
		if err != nil {
			t.Fatal(err)
		}
		res.Elapsed = 0
		return res, gens
	}
	r1, g1 := run()
	r2, g2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Error("same seed produced different results")
	}
	if !reflect.DeepEqual(g1, g2) {
		t.Error("same seed produced different progress streams")
	}

	r3, _ := run3(t, 100)
	if reflect.DeepEqual(r1.Front, r3.Front) {
		t.Error("different seeds produced identical fronts (seed is dead)")
	}
}

func run3(t *testing.T, seed int64) (*Result, []Generation) {
	t.Helper()
	res, err := Run(context.Background(), zdt1{genes: 5}, Config{
		Pop: 12, Generations: 8, Seed: seed,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res, nil
}

type noGenes struct{}

func (noGenes) Bounds() []Bound                                        { return nil }
func (noGenes) ObjectiveNames() []string                               { return []string{"x"} }
func (noGenes) Evaluate(context.Context, []float64) ([]float64, error) { return []float64{0}, nil }

func TestRunRejectsDegenerateEvaluators(t *testing.T) {
	t.Parallel()
	if _, err := Run(context.Background(), noGenes{}, Config{}, nil); err == nil {
		t.Error("no error for evaluator without genes")
	}
}

func TestRunHonoursCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, zdt1{genes: 4}, Config{Pop: 8, Generations: 4}, nil); err == nil {
		t.Error("cancelled run returned no error")
	}
}
