package explore

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Bound is one gene's closed search interval.
type Bound struct {
	Lo, Hi float64
}

// Evaluator scores one genome. Evaluate returns the objective vector to
// minimize — one value per ObjectiveNames entry. Implementations must be
// safe for concurrent calls (candidates fan out over the engine pool)
// and deterministic: the same genes always yield the same vector.
// A non-nil error that is not the context's abandons the whole run;
// implementations should encode infeasible candidates as penalty
// objectives instead.
type Evaluator interface {
	Bounds() []Bound
	ObjectiveNames() []string
	Evaluate(ctx context.Context, genes []float64) ([]float64, error)
}

// Config tunes the NSGA-II run. Zero values take the documented defaults.
type Config struct {
	Pop         int   // population size (rounded up to even); 0 = 24
	Generations int   // offspring generations after the initial one; 0 = 10
	Seed        int64 // RNG seed — the whole run is deterministic in it

	CrossoverProb float64 // SBX probability per parent pair; 0 = 0.9
	MutationProb  float64 // polynomial mutation per gene; 0 = 1/genes
	EtaCrossover  float64 // SBX distribution index; 0 = 15
	EtaMutation   float64 // mutation distribution index; 0 = 20
}

func (c Config) pop() int {
	p := c.Pop
	if p <= 0 {
		p = 24
	}
	if p%2 == 1 {
		p++
	}
	return p
}

func (c Config) generations() int {
	if c.Generations <= 0 {
		return 10
	}
	return c.Generations
}

// Individual is one evaluated genome.
type Individual struct {
	Genes      []float64 `json:"genes"`
	Objectives []float64 `json:"objectives"`

	rank  int
	crowd float64
}

// Generation is the progress snapshot emitted after each evaluation wave:
// the current non-dominated front sorted by first objective (ties by the
// remaining ones), plus running counters.
type Generation struct {
	Gen         int           `json:"gen"` // 0 = initial population
	Evaluations int           `json:"evaluations"`
	Front       []Individual  `json:"front"`
	Elapsed     time.Duration `json:"elapsed_ns"`
}

// Result is the final state of a run.
type Result struct {
	Front       []Individual // non-dominated set of the final population
	Generations int          // evaluation waves run (incl. the initial one)
	Evaluations int
	Elapsed     time.Duration
}

// Run executes the NSGA-II loop: a seeded random initial population, then
// cfg.Generations rounds of binary-tournament selection, simulated binary
// crossover, polynomial mutation, parallel evaluation of the offspring on
// the engine pool, and elitist environmental selection by non-dominated
// rank and crowding distance. emit (optional) receives a snapshot of the
// current front after every wave. The run is bit-reproducible for a fixed
// seed: all randomness flows from one serial rand.Rand and every parallel
// evaluation writes only its own slot.
func Run(ctx context.Context, ev Evaluator, cfg Config, emit func(Generation)) (*Result, error) {
	bounds := ev.Bounds()
	if len(bounds) == 0 {
		return nil, fmt.Errorf("explore: evaluator has no genes")
	}
	nObj := len(ev.ObjectiveNames())
	if nObj == 0 {
		return nil, fmt.Errorf("explore: evaluator has no objectives")
	}
	for g, b := range bounds {
		if !(b.Hi >= b.Lo) {
			return nil, fmt.Errorf("explore: gene %d bound [%g, %g] is invalid", g, b.Lo, b.Hi)
		}
	}
	pop := cfg.pop()
	gens := cfg.generations()
	pc := cfg.CrossoverProb
	if pc == 0 {
		pc = 0.9
	}
	pm := cfg.MutationProb
	if pm == 0 {
		pm = 1 / float64(len(bounds))
	}
	etaC := cfg.EtaCrossover
	if etaC == 0 {
		etaC = 15
	}
	etaM := cfg.EtaMutation
	if etaM == 0 {
		etaM = 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	res := &Result{}

	// Initial population: uniform in the bounds.
	cur := make([]Individual, pop)
	for i := range cur {
		genes := make([]float64, len(bounds))
		for g, b := range bounds {
			genes[g] = b.Lo + rng.Float64()*(b.Hi-b.Lo)
		}
		cur[i] = Individual{Genes: genes}
	}
	if err := evaluateWave(ctx, ev, cur, nObj, 0, res); err != nil {
		return nil, err
	}
	fronts := rankAndCrowd(cur)
	res.Generations = 1
	emitFront(emit, 0, res, cur, fronts[0], start)

	for gen := 1; gen <= gens; gen++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Variation: pop offspring from binary tournaments + SBX + mutation.
		// All serial on the one rng, so the genome stream is seed-determined.
		off := make([]Individual, 0, pop)
		for len(off) < pop {
			p1 := tournament(rng, cur)
			p2 := tournament(rng, cur)
			c1, c2 := crossover(rng, p1.Genes, p2.Genes, bounds, pc, etaC)
			mutate(rng, c1, bounds, pm, etaM)
			mutate(rng, c2, bounds, pm, etaM)
			off = append(off, Individual{Genes: c1})
			if len(off) < pop {
				off = append(off, Individual{Genes: c2})
			}
		}
		if err := evaluateWave(ctx, ev, off, nObj, gen, res); err != nil {
			return nil, err
		}
		// Environmental selection over parents + offspring.
		combined := append(append(make([]Individual, 0, 2*pop), cur...), off...)
		fronts = rankAndCrowd(combined)
		cur = selectNext(combined, fronts, pop)
		fronts = rankAndCrowd(cur)
		res.Generations++
		emitFront(emit, gen, res, cur, fronts[0], start)
	}
	res.Front = copyFront(cur, fronts[0])
	res.Elapsed = time.Since(start)
	return res, nil
}

// evaluateWave scores a population slice in parallel on the engine pool.
// Each index writes only its own individual, so scheduling cannot change
// the outcome. NaN objectives are mapped to +Inf so sorting stays total.
func evaluateWave(ctx context.Context, ev Evaluator, pop []Individual, nObj, gen int, res *Result) error {
	_, sp := obs.Start(ctx, "explore.generation")
	sp.Int("gen", int64(gen))
	sp.Int("candidates", int64(len(pop)))
	defer sp.End()
	defer engine.Phase("explore.generation")()
	objs, err := engine.MapCtx(ctx, len(pop), func(i int) ([]float64, error) {
		return ev.Evaluate(ctx, pop[i].Genes)
	})
	if err != nil {
		return err
	}
	for i, o := range objs {
		if len(o) != nObj {
			return fmt.Errorf("explore: evaluator returned %d objectives, want %d", len(o), nObj)
		}
		for k, v := range o {
			if math.IsNaN(v) {
				o[k] = math.Inf(1)
			}
		}
		pop[i].Objectives = o
	}
	res.Evaluations += len(pop)
	return nil
}

// rankAndCrowd assigns non-dominated rank and crowding distance to every
// individual and returns the fronts (indices into pop).
func rankAndCrowd(pop []Individual) [][]int {
	objs := make([][]float64, len(pop))
	for i := range pop {
		objs[i] = pop[i].Objectives
	}
	fronts := NondominatedSort(objs)
	for r, front := range fronts {
		dist := CrowdingDistance(objs, front)
		for k, i := range front {
			pop[i].rank = r
			pop[i].crowd = dist[k]
		}
	}
	return fronts
}

// selectNext keeps the best pop individuals: whole fronts while they fit,
// then the most crowded-out members of the split front (ties broken by
// genome order index for determinism).
func selectNext(combined []Individual, fronts [][]int, pop int) []Individual {
	next := make([]Individual, 0, pop)
	for _, front := range fronts {
		if len(next)+len(front) <= pop {
			for _, i := range front {
				next = append(next, combined[i])
			}
			continue
		}
		rest := append([]int(nil), front...)
		sort.SliceStable(rest, func(a, b int) bool {
			ca, cb := combined[rest[a]].crowd, combined[rest[b]].crowd
			if ca != cb {
				return ca > cb
			}
			return rest[a] < rest[b]
		})
		for _, i := range rest[:pop-len(next)] {
			next = append(next, combined[i])
		}
		break
	}
	return next
}

// tournament picks the better of two random individuals: lower rank wins,
// ties go to the larger crowding distance.
func tournament(rng *rand.Rand, pop []Individual) *Individual {
	a := &pop[rng.Intn(len(pop))]
	b := &pop[rng.Intn(len(pop))]
	if a.rank != b.rank {
		if a.rank < b.rank {
			return a
		}
		return b
	}
	if b.crowd > a.crowd {
		return b
	}
	return a
}

// crossover is simulated binary crossover (SBX): with probability pc the
// parents mix per gene, else they are copied.
func crossover(rng *rand.Rand, p1, p2 []float64, bounds []Bound, pc, eta float64) ([]float64, []float64) {
	c1 := append([]float64(nil), p1...)
	c2 := append([]float64(nil), p2...)
	if rng.Float64() > pc {
		return c1, c2
	}
	for g := range c1 {
		if rng.Float64() > 0.5 || math.Abs(p1[g]-p2[g]) < 1e-14 {
			continue
		}
		u := rng.Float64()
		var beta float64
		if u <= 0.5 {
			beta = math.Pow(2*u, 1/(eta+1))
		} else {
			beta = math.Pow(1/(2*(1-u)), 1/(eta+1))
		}
		x1, x2 := p1[g], p2[g]
		c1[g] = clamp(0.5*((1+beta)*x1+(1-beta)*x2), bounds[g])
		c2[g] = clamp(0.5*((1-beta)*x1+(1+beta)*x2), bounds[g])
	}
	return c1, c2
}

// mutate applies polynomial mutation per gene with probability pm.
func mutate(rng *rand.Rand, genes []float64, bounds []Bound, pm, eta float64) {
	for g := range genes {
		if rng.Float64() > pm {
			continue
		}
		b := bounds[g]
		span := b.Hi - b.Lo
		if span <= 0 {
			continue
		}
		u := rng.Float64()
		var delta float64
		if u < 0.5 {
			delta = math.Pow(2*u, 1/(eta+1)) - 1
		} else {
			delta = 1 - math.Pow(2*(1-u), 1/(eta+1))
		}
		genes[g] = clamp(genes[g]+delta*span, b)
	}
}

func clamp(v float64, b Bound) float64 {
	if v < b.Lo {
		return b.Lo
	}
	if v > b.Hi {
		return b.Hi
	}
	return v
}

// emitFront snapshots the current non-dominated front for a progress
// callback, sorted by objective vector so the stream is reproducible.
func emitFront(emit func(Generation), gen int, res *Result, pop []Individual, front []int, start time.Time) {
	if emit == nil {
		return
	}
	emit(Generation{
		Gen:         gen,
		Evaluations: res.Evaluations,
		Front:       copyFront(pop, front),
		Elapsed:     time.Since(start),
	})
}

// copyFront deep-copies the front members (sorted lexicographically by
// objectives, then genes) so callers can hold them across generations.
func copyFront(pop []Individual, front []int) []Individual {
	out := make([]Individual, 0, len(front))
	for _, i := range front {
		out = append(out, Individual{
			Genes:      append([]float64(nil), pop[i].Genes...),
			Objectives: append([]float64(nil), pop[i].Objectives...),
		})
	}
	sort.SliceStable(out, func(a, b int) bool {
		if c := compareVec(out[a].Objectives, out[b].Objectives); c != 0 {
			return c < 0
		}
		return compareVec(out[a].Genes, out[b].Genes) < 0
	})
	return out
}

func compareVec(a, b []float64) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		if a[i] != b[i] {
			if a[i] < b[i] || math.IsNaN(b[i]) {
				return -1
			}
			return 1
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}
