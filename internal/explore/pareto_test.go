package explore

import (
	"math"
	"math/rand"
	"testing"
)

// randomObjectives draws a population of objective vectors with repeated
// values (integers quantize them) so domination ties actually occur.
func randomObjectives(rng *rand.Rand, n, m int) [][]float64 {
	objs := make([][]float64, n)
	for i := range objs {
		v := make([]float64, m)
		for k := range v {
			v[k] = float64(rng.Intn(6))
		}
		objs[i] = v
	}
	return objs
}

// TestDominatesBasics pins the dominance definition: strictly better in at
// least one objective, no worse in all.
func TestDominatesBasics(t *testing.T) {
	t.Parallel()
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict gain
		{[]float64{1, 1}, []float64{1, 2}, true},
		{[]float64{1}, []float64{1, 2}, false}, // length mismatch never dominates
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestDominanceAntisymmetry: for random vectors, a dominating b excludes b
// dominating a, and nothing dominates itself.
func TestDominanceAntisymmetry(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		m := 1 + rng.Intn(4)
		objs := randomObjectives(rng, 2, m)
		a, b := objs[0], objs[1]
		if Dominates(a, a) {
			t.Fatalf("vector %v dominates itself", a)
		}
		if Dominates(a, b) && Dominates(b, a) {
			t.Fatalf("mutual domination between %v and %v", a, b)
		}
	}
}

// TestNondominatedSortInvariants: the fronts partition the population; no
// member of a front is dominated by another member of the same front; and
// every member of front k+1 is dominated by someone in front k.
func TestNondominatedSortInvariants(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		m := 1 + rng.Intn(3)
		objs := randomObjectives(rng, n, m)
		fronts := NondominatedSort(objs)

		seen := map[int]bool{}
		for _, front := range fronts {
			if len(front) == 0 {
				t.Fatal("empty front")
			}
			for _, i := range front {
				if seen[i] {
					t.Fatalf("index %d in two fronts", i)
				}
				seen[i] = true
			}
		}
		if len(seen) != n {
			t.Fatalf("fronts cover %d of %d individuals", len(seen), n)
		}

		for r, front := range fronts {
			// Within a front: mutually non-dominated.
			for _, i := range front {
				for _, j := range front {
					if i != j && Dominates(objs[i], objs[j]) {
						t.Fatalf("front %d: %v dominates co-member %v", r, objs[i], objs[j])
					}
				}
			}
			// Front 0 members are dominated by nobody at all.
			if r == 0 {
				for _, i := range front {
					for j := range objs {
						if Dominates(objs[j], objs[i]) {
							t.Fatalf("front 0 member %v dominated by %v", objs[i], objs[j])
						}
					}
				}
				continue
			}
			// Deeper fronts: each member dominated by someone one front up.
			for _, i := range front {
				dominated := false
				for _, j := range fronts[r-1] {
					if Dominates(objs[j], objs[i]) {
						dominated = true
						break
					}
				}
				if !dominated {
					t.Fatalf("front %d member %v not dominated by front %d", r, objs[i], r-1)
				}
			}
		}
	}
}

// TestCrowdingDistanceBoundaries: extreme points of every objective get
// +Inf, interior distances are finite and non-negative, and tiny fronts
// are all-boundary.
func TestCrowdingDistanceBoundaries(t *testing.T) {
	t.Parallel()
	objs := [][]float64{
		{0, 4}, {1, 3}, {2, 2}, {3, 1}, {4, 0},
	}
	front := []int{0, 1, 2, 3, 4}
	dist := CrowdingDistance(objs, front)
	if len(dist) != len(front) {
		t.Fatalf("distance slice has %d entries, want %d", len(dist), len(front))
	}
	if !math.IsInf(dist[0], 1) || !math.IsInf(dist[4], 1) {
		t.Errorf("boundary points not +Inf: %v", dist)
	}
	for k := 1; k < 4; k++ {
		if math.IsInf(dist[k], 0) || dist[k] < 0 {
			t.Errorf("interior point %d has distance %v", k, dist[k])
		}
	}

	// A front of two: both are boundaries.
	d2 := CrowdingDistance(objs, []int{1, 3})
	if !math.IsInf(d2[0], 1) || !math.IsInf(d2[1], 1) {
		t.Errorf("two-point front not all +Inf: %v", d2)
	}
	// A singleton front.
	d1 := CrowdingDistance(objs, []int{2})
	if !math.IsInf(d1[0], 1) {
		t.Errorf("singleton front distance = %v, want +Inf", d1[0])
	}
}

// TestCrowdingDistanceDegenerateObjective: an objective with zero spread
// must not produce NaNs.
func TestCrowdingDistanceDegenerate(t *testing.T) {
	t.Parallel()
	objs := [][]float64{{1, 5}, {1, 3}, {1, 4}}
	dist := CrowdingDistance(objs, []int{0, 1, 2})
	for k, d := range dist {
		if math.IsNaN(d) {
			t.Errorf("distance %d is NaN", k)
		}
	}
}

// TestCrowdingDistanceRandomized: randomized fronts keep distances
// NaN-free and assign +Inf to every per-objective extreme.
func TestCrowdingDistanceRandomized(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		m := 1 + rng.Intn(3)
		objs := make([][]float64, n)
		for i := range objs {
			v := make([]float64, m)
			for k := range v {
				v[k] = rng.Float64()
			}
			objs[i] = v
		}
		front := make([]int, n)
		for i := range front {
			front[i] = i
		}
		dist := CrowdingDistance(objs, front)
		for k, d := range dist {
			if math.IsNaN(d) || d < 0 {
				t.Fatalf("bad distance %v at %d", d, k)
			}
		}
		for obj := 0; obj < m; obj++ {
			// The implementation breaks value ties by index, so the
			// guaranteed +Inf holders are the first minimum and the last
			// maximum.
			lo, hi := 0, 0
			for i := 1; i < n; i++ {
				if objs[i][obj] < objs[lo][obj] {
					lo = i
				}
				if objs[i][obj] >= objs[hi][obj] {
					hi = i
				}
			}
			if !math.IsInf(dist[lo], 1) || !math.IsInf(dist[hi], 1) {
				t.Fatalf("objective %d extremes (%d, %d) not +Inf: %v", obj, lo, hi, dist)
			}
		}
	}
}
