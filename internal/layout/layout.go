// Package layout models the placement tool's view of a design: one or two
// rigidly connected boards, arbitrary placement areas (keepins), 3D
// keepouts with z-offset, components with allowed rotation angles and
// functional groups, electrical nets with length limits, and the pairwise
// minimum-distance rules produced by the EMI prediction — everything the
// paper lists as design rules its tool handles.
//
// All geometry is SI meters internally; the ASCII file interface uses
// millimeters (and degrees for angles) as is conventional in PCB tooling.
package layout

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/rules"
)

// DefaultRotations is the standard set of allowed component rotations.
var DefaultRotations = []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2}

// Component is a placeable part.
type Component struct {
	Ref     string
	W, L, H float64 // body at rotation 0: extent in x, y, z

	// Magnetic axis in the local frame at rotation 0; zero for parts
	// without a field structure. Only the direction matters.
	Axis geom.Vec3

	Group      string    // functional group name; "" = none
	AreaName   string    // required placement area; "" = any area of its board
	AllowedRot []float64 // allowed rotations in radians; nil = DefaultRotations

	Preplaced bool // fixed by the user; the placer must not move it

	// Placement state.
	Placed bool
	Center geom.Vec2
	Rot    float64
	Board  int // 0 or 1
}

// Rotations returns the allowed rotations (defaulted).
func (c *Component) Rotations() []float64 {
	if len(c.AllowedRot) == 0 {
		return DefaultRotations
	}
	return c.AllowedRot
}

// Footprint returns the rectilinear approximation of the rotated body at
// its current placement.
func (c *Component) Footprint() geom.Rect {
	return geom.RotatedAABB(c.Center, c.W, c.L, c.Rot)
}

// FootprintAt returns the footprint for a hypothetical placement.
func (c *Component) FootprintAt(center geom.Vec2, rot float64) geom.Rect {
	return geom.RotatedAABB(center, c.W, c.L, rot)
}

// Body returns the component's cuboid at its current placement.
func (c *Component) Body() geom.Cuboid {
	return geom.CuboidOf(c.Footprint(), 0, c.H)
}

// MagneticAxis returns the placed magnetic axis (zero if non-magnetic).
func (c *Component) MagneticAxis() geom.Vec3 {
	return c.AxisAt(c.Rot)
}

// AxisAt returns the magnetic axis for a hypothetical rotation.
func (c *Component) AxisAt(rot float64) geom.Vec3 {
	if c.Axis == (geom.Vec3{}) {
		return geom.Vec3{}
	}
	return c.Axis.RotZ(rot)
}

// Area is a named placement region (keepin) on a board.
type Area struct {
	Name  string
	Board int
	Poly  geom.Polygon
}

// Keepout is a forbidden volume on a board; Z0 > 0 models keepouts that
// hover above low components ("3D keepouts with/without z-offset").
type Keepout struct {
	Name  string
	Board int
	Box   geom.Cuboid
}

// Net connects component references; MaxLength (0 = unlimited) bounds the
// net's star length from the component centers.
type Net struct {
	Name      string
	Refs      []string
	MaxLength float64
}

// Design is a complete placement problem and, once solved, its solution.
type Design struct {
	Name      string
	Boards    int // 1 or 2
	Clearance float64

	// EdgeClearance is the minimum distance between any component
	// footprint and the placement-area boundary (board edge); 0 allows
	// parts to touch the edge.
	EdgeClearance float64
	Areas         []Area
	Keepouts      []Keepout
	Comps         []*Component
	Nets          []Net
	Rules         *rules.Set
}

// Find returns the component with the given reference, or nil.
func (d *Design) Find(ref string) *Component {
	for _, c := range d.Comps {
		if c.Ref == ref {
			return c
		}
	}
	return nil
}

// AreasOf returns the placement areas on the given board, restricted to the
// named area when name is non-empty.
func (d *Design) AreasOf(board int, name string) []Area {
	var out []Area
	for _, a := range d.Areas {
		if a.Board != board {
			continue
		}
		if name != "" && a.Name != name {
			continue
		}
		out = append(out, a)
	}
	return out
}

// Groups returns group name → member components, sorted by name.
func (d *Design) Groups() map[string][]*Component {
	out := map[string][]*Component{}
	for _, c := range d.Comps {
		if c.Group != "" {
			out[c.Group] = append(out[c.Group], c)
		}
	}
	return out
}

// GroupNames returns the group names in sorted order.
func (d *Design) GroupNames() []string {
	g := d.Groups()
	names := make([]string, 0, len(g))
	for n := range g {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NetLength returns the star length of a net: the sum of distances from
// the members' centers to their centroid. Unplaced members are skipped.
func (d *Design) NetLength(n Net) float64 {
	var pts []geom.Vec2
	for _, ref := range n.Refs {
		if c := d.Find(ref); c != nil && c.Placed {
			pts = append(pts, c.Center)
		}
	}
	if len(pts) < 2 {
		return 0
	}
	var centroid geom.Vec2
	for _, p := range pts {
		centroid = centroid.Add(p)
	}
	centroid = centroid.Scale(1 / float64(len(pts)))
	sum := 0.0
	for _, p := range pts {
		sum += p.Dist(centroid)
	}
	return sum
}

// Validate checks structural consistency of the problem definition.
func (d *Design) Validate() error {
	if d.Boards < 1 || d.Boards > 2 {
		return fmt.Errorf("layout: boards = %d, want 1 or 2", d.Boards)
	}
	if d.Clearance < 0 {
		return fmt.Errorf("layout: negative clearance")
	}
	if d.EdgeClearance < 0 {
		return fmt.Errorf("layout: negative edge clearance")
	}
	if len(d.Areas) == 0 {
		return fmt.Errorf("layout: no placement areas")
	}
	areaNames := map[string]bool{}
	for _, a := range d.Areas {
		if a.Board < 0 || a.Board >= d.Boards {
			return fmt.Errorf("layout: area %q on invalid board %d", a.Name, a.Board)
		}
		if len(a.Poly) < 3 || a.Poly.Area() == 0 {
			return fmt.Errorf("layout: area %q has a degenerate polygon", a.Name)
		}
		areaNames[a.Name] = true
	}
	for _, k := range d.Keepouts {
		if k.Board < 0 || k.Board >= d.Boards {
			return fmt.Errorf("layout: keepout %q on invalid board %d", k.Name, k.Board)
		}
	}
	refs := map[string]bool{}
	for _, c := range d.Comps {
		if c.Ref == "" {
			return fmt.Errorf("layout: component with empty reference")
		}
		if refs[c.Ref] {
			return fmt.Errorf("layout: duplicate reference %q", c.Ref)
		}
		refs[c.Ref] = true
		if c.W <= 0 || c.L <= 0 || c.H < 0 {
			return fmt.Errorf("layout: %s has degenerate body %g×%g×%g", c.Ref, c.W, c.L, c.H)
		}
		if c.AreaName != "" && !areaNames[c.AreaName] {
			return fmt.Errorf("layout: %s requires unknown area %q", c.Ref, c.AreaName)
		}
		if c.Board < 0 || c.Board >= d.Boards {
			return fmt.Errorf("layout: %s on invalid board %d", c.Ref, c.Board)
		}
		if c.Preplaced && !c.Placed {
			return fmt.Errorf("layout: %s is preplaced but has no position", c.Ref)
		}
	}
	for _, n := range d.Nets {
		if len(n.Refs) < 2 {
			return fmt.Errorf("layout: net %q has fewer than 2 pins", n.Name)
		}
		for _, r := range n.Refs {
			if !refs[r] {
				return fmt.Errorf("layout: net %q references unknown component %q", n.Name, r)
			}
		}
	}
	if d.Rules != nil {
		for _, r := range d.Rules.Rules {
			if !refs[r.RefA] || !refs[r.RefB] {
				return fmt.Errorf("layout: rule %s/%s references unknown component", r.RefA, r.RefB)
			}
			if r.PEMD < 0 {
				return fmt.Errorf("layout: rule %s/%s has negative PEMD", r.RefA, r.RefB)
			}
		}
	}
	return nil
}

// RuleCount returns the number of minimum-distance rules.
func (d *Design) RuleCount() int {
	if d.Rules == nil {
		return 0
	}
	return len(d.Rules.Rules)
}

// EMDBetween returns the effective minimum distance currently required
// between two components given their (possibly hypothetical) rotations.
func (d *Design) EMDBetween(a, b *Component, rotA, rotB float64) float64 {
	if d.Rules == nil {
		return 0
	}
	pemd, ok := d.Rules.Lookup(a.Ref, b.Ref)
	if !ok || pemd == 0 {
		return 0
	}
	axA, axB := a.AxisAt(rotA), b.AxisAt(rotB)
	if axA == (geom.Vec3{}) || axB == (geom.Vec3{}) {
		return 0
	}
	return rules.EMD(pemd, geom.AxisAngle(axA, axB))
}
