package layout

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/rules"
)

// The ASCII file interface of the placement tool. Lengths are millimeters,
// angles degrees. Grammar (one statement per line, '#' comments):
//
//	DESIGN <name>
//	BOARDS <1|2>
//	CLEARANCE <mm>
//	EDGECLEARANCE <mm>
//	AREA <name> <board> <x1> <y1> <x2> <y2> [<x3> <y3> ...]   (>= 3 vertices)
//	KEEPOUT <name> <board> <zoff> <height> <x0> <y0> <x1> <y1>
//	COMP <ref> <w> <l> <h> [GROUP <g>] [AXIS <x> <y> <z>] [ROT <d1,d2,...>]
//	     [AREA <name>] [BOARD <b>] [PREPLACED <x> <y> <rotdeg>]
//	     [AT <x> <y> <rotdeg>]
//	NET <name> <maxlen|0> <ref1> <ref2> [...]
//	PEMD <refA> <refB> <mm>
//	END
//
// AT records a (movable) placement result; PREPLACED additionally fixes it.
func Read(r io.Reader) (*Design, error) {
	d := &Design{Boards: 1, Rules: rules.NewSet(nil)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	done := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if done {
			return nil, fmt.Errorf("layout: line %d: content after END", lineNo)
		}
		f := strings.Fields(line)
		var err error
		switch strings.ToUpper(f[0]) {
		case "DESIGN":
			if len(f) < 2 {
				err = fmt.Errorf("DESIGN needs a name")
			} else {
				d.Name = strings.Join(f[1:], " ")
			}
		case "BOARDS":
			err = parseInt(f, 1, &d.Boards)
		case "CLEARANCE":
			err = parseMM(f, 1, &d.Clearance)
		case "EDGECLEARANCE":
			err = parseMM(f, 1, &d.EdgeClearance)
		case "AREA":
			err = parseArea(d, f)
		case "KEEPOUT":
			err = parseKeepout(d, f)
		case "COMP":
			err = parseComp(d, f)
		case "NET":
			err = parseNet(d, f)
		case "PEMD":
			err = parsePEMD(d, f)
		case "END":
			done = true
		default:
			err = fmt.Errorf("unknown statement %q", f[0])
		}
		if err != nil {
			return nil, fmt.Errorf("layout: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// ReadString is Read on a string.
func ReadString(s string) (*Design, error) { return Read(strings.NewReader(s)) }

func parseInt(f []string, i int, out *int) error {
	if len(f) <= i {
		return fmt.Errorf("missing value")
	}
	v, err := strconv.Atoi(f[i])
	if err != nil {
		return fmt.Errorf("bad integer %q", f[i])
	}
	*out = v
	return nil
}

func parseMM(f []string, i int, out *float64) error {
	if len(f) <= i {
		return fmt.Errorf("missing value")
	}
	v, err := strconv.ParseFloat(f[i], 64)
	if err != nil {
		return fmt.Errorf("bad number %q", f[i])
	}
	*out = v * 1e-3
	return nil
}

func parseFloats(f []string) ([]float64, error) {
	out := make([]float64, len(f))
	for i, s := range f {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", s)
		}
		out[i] = v
	}
	return out, nil
}

func parseArea(d *Design, f []string) error {
	if len(f) < 9 || (len(f)-3)%2 != 0 {
		return fmt.Errorf("AREA needs a name, board and >= 3 vertex pairs")
	}
	board, err := strconv.Atoi(f[2])
	if err != nil {
		return fmt.Errorf("bad board %q", f[2])
	}
	vals, err := parseFloats(f[3:])
	if err != nil {
		return err
	}
	poly := make(geom.Polygon, len(vals)/2)
	for i := range poly {
		poly[i] = geom.V2(vals[2*i]*1e-3, vals[2*i+1]*1e-3)
	}
	d.Areas = append(d.Areas, Area{Name: f[1], Board: board, Poly: poly})
	return nil
}

func parseKeepout(d *Design, f []string) error {
	if len(f) != 9 {
		return fmt.Errorf("KEEPOUT needs name board zoff height x0 y0 x1 y1")
	}
	board, err := strconv.Atoi(f[2])
	if err != nil {
		return fmt.Errorf("bad board %q", f[2])
	}
	vals, err := parseFloats(f[3:])
	if err != nil {
		return err
	}
	box := geom.CuboidOf(
		geom.R(vals[2]*1e-3, vals[3]*1e-3, vals[4]*1e-3, vals[5]*1e-3),
		vals[0]*1e-3, vals[1]*1e-3)
	d.Keepouts = append(d.Keepouts, Keepout{Name: f[1], Board: board, Box: box})
	return nil
}

func parseComp(d *Design, f []string) error {
	if len(f) < 5 {
		return fmt.Errorf("COMP needs ref w l h")
	}
	dims, err := parseFloats(f[2:5])
	if err != nil {
		return err
	}
	c := &Component{
		Ref: f[1],
		W:   dims[0] * 1e-3, L: dims[1] * 1e-3, H: dims[2] * 1e-3,
	}
	i := 5
	for i < len(f) {
		switch strings.ToUpper(f[i]) {
		case "GROUP":
			if i+1 >= len(f) {
				return fmt.Errorf("GROUP needs a name")
			}
			c.Group = f[i+1]
			i += 2
		case "AXIS":
			if i+3 >= len(f) {
				return fmt.Errorf("AXIS needs x y z")
			}
			v, err := parseFloats(f[i+1 : i+4])
			if err != nil {
				return err
			}
			c.Axis = geom.V3(v[0], v[1], v[2]).Normalize()
			i += 4
		case "ROT":
			if i+1 >= len(f) {
				return fmt.Errorf("ROT needs a degree list")
			}
			for _, s := range strings.Split(f[i+1], ",") {
				deg, err := strconv.ParseFloat(s, 64)
				if err != nil {
					return fmt.Errorf("bad rotation %q", s)
				}
				c.AllowedRot = append(c.AllowedRot, geom.Rad(deg))
			}
			i += 2
		case "AREA":
			if i+1 >= len(f) {
				return fmt.Errorf("AREA needs a name")
			}
			c.AreaName = f[i+1]
			i += 2
		case "BOARD":
			if i+1 >= len(f) {
				return fmt.Errorf("BOARD needs an index")
			}
			b, err := strconv.Atoi(f[i+1])
			if err != nil {
				return fmt.Errorf("bad board %q", f[i+1])
			}
			c.Board = b
			i += 2
		case "PREPLACED", "AT":
			if i+3 >= len(f) {
				return fmt.Errorf("%s needs x y rotdeg", f[i])
			}
			v, err := parseFloats(f[i+1 : i+4])
			if err != nil {
				return err
			}
			c.Center = geom.V2(v[0]*1e-3, v[1]*1e-3)
			c.Rot = geom.Rad(v[2])
			c.Placed = true
			c.Preplaced = strings.EqualFold(f[i], "PREPLACED")
			i += 4
		default:
			return fmt.Errorf("unknown COMP attribute %q", f[i])
		}
	}
	d.Comps = append(d.Comps, c)
	return nil
}

func parseNet(d *Design, f []string) error {
	if len(f) < 5 {
		return fmt.Errorf("NET needs name maxlen and >= 2 refs")
	}
	maxMM, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return fmt.Errorf("bad max length %q", f[2])
	}
	d.Nets = append(d.Nets, Net{Name: f[1], MaxLength: maxMM * 1e-3, Refs: f[3:]})
	return nil
}

func parsePEMD(d *Design, f []string) error {
	if len(f) != 4 {
		return fmt.Errorf("PEMD needs refA refB mm")
	}
	mm, err := strconv.ParseFloat(f[3], 64)
	if err != nil || mm < 0 {
		return fmt.Errorf("bad distance %q", f[3])
	}
	d.Rules.Add(rules.Rule{RefA: f[1], RefB: f[2], PEMD: mm * 1e-3})
	return nil
}

// Write serialises the design in the ASCII format of Read, including any
// placement state (AT/PREPLACED), so layouts round-trip.
func Write(w io.Writer, d *Design) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("DESIGN %s\nBOARDS %d\nCLEARANCE %.4f\n", d.Name, d.Boards, d.Clearance*1e3); err != nil {
		return err
	}
	if d.EdgeClearance > 0 {
		if err := p("EDGECLEARANCE %.4f\n", d.EdgeClearance*1e3); err != nil {
			return err
		}
	}
	for _, a := range d.Areas {
		if err := p("AREA %s %d", a.Name, a.Board); err != nil {
			return err
		}
		for _, v := range a.Poly {
			if err := p(" %.4f %.4f", v.X*1e3, v.Y*1e3); err != nil {
				return err
			}
		}
		if err := p("\n"); err != nil {
			return err
		}
	}
	for _, k := range d.Keepouts {
		if err := p("KEEPOUT %s %d %.4f %.4f %.4f %.4f %.4f %.4f\n",
			k.Name, k.Board, k.Box.Z0*1e3, k.Box.Height()*1e3,
			k.Box.Base.Min.X*1e3, k.Box.Base.Min.Y*1e3,
			k.Box.Base.Max.X*1e3, k.Box.Base.Max.Y*1e3); err != nil {
			return err
		}
	}
	for _, c := range d.Comps {
		if err := p("COMP %s %.4f %.4f %.4f", c.Ref, c.W*1e3, c.L*1e3, c.H*1e3); err != nil {
			return err
		}
		if c.Group != "" {
			if err := p(" GROUP %s", c.Group); err != nil {
				return err
			}
		}
		if c.Axis != (geom.Vec3{}) {
			if err := p(" AXIS %.6f %.6f %.6f", c.Axis.X, c.Axis.Y, c.Axis.Z); err != nil {
				return err
			}
		}
		if len(c.AllowedRot) > 0 {
			degs := make([]string, len(c.AllowedRot))
			for i, r := range c.AllowedRot {
				degs[i] = strconv.FormatFloat(geom.Deg(r), 'f', -1, 64)
			}
			if err := p(" ROT %s", strings.Join(degs, ",")); err != nil {
				return err
			}
		}
		if c.AreaName != "" {
			if err := p(" AREA %s", c.AreaName); err != nil {
				return err
			}
		}
		if c.Board != 0 {
			if err := p(" BOARD %d", c.Board); err != nil {
				return err
			}
		}
		if c.Placed {
			kw := "AT"
			if c.Preplaced {
				kw = "PREPLACED"
			}
			if err := p(" %s %.4f %.4f %.4f", kw, c.Center.X*1e3, c.Center.Y*1e3, geom.Deg(c.Rot)); err != nil {
				return err
			}
		}
		if err := p("\n"); err != nil {
			return err
		}
	}
	for _, n := range d.Nets {
		if err := p("NET %s %.4f %s\n", n.Name, n.MaxLength*1e3, strings.Join(n.Refs, " ")); err != nil {
			return err
		}
	}
	if d.Rules != nil {
		rs := append([]rules.Rule(nil), d.Rules.Rules...)
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].RefA != rs[j].RefA {
				return rs[i].RefA < rs[j].RefA
			}
			return rs[i].RefB < rs[j].RefB
		})
		for _, r := range rs {
			if err := p("PEMD %s %s %.4f\n", r.RefA, r.RefB, r.PEMD*1e3); err != nil {
				return err
			}
		}
	}
	return p("END\n")
}
