package layout

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/rules"
)

func sampleDesign() *Design {
	d := &Design{
		Name:      "test",
		Boards:    1,
		Clearance: 0.5e-3,
		Areas: []Area{
			{Name: "main", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, 0.1, 0.08))},
		},
		Rules: rules.NewSet(nil),
	}
	d.Comps = append(d.Comps,
		&Component{Ref: "C1", W: 0.018, L: 0.008, H: 0.014, Axis: geom.V3(0, 1, 0), Group: "in"},
		&Component{Ref: "C2", W: 0.018, L: 0.008, H: 0.014, Axis: geom.V3(0, 1, 0), Group: "in"},
		&Component{Ref: "Q1", W: 0.010, L: 0.010, H: 0.005, Group: "sw"},
	)
	d.Nets = append(d.Nets, Net{Name: "vin", MaxLength: 0.1, Refs: []string{"C1", "C2"}})
	d.Rules.Add(rules.Rule{RefA: "C1", RefB: "C2", PEMD: 0.02})
	return d
}

func TestComponentGeometry(t *testing.T) {
	t.Parallel()
	c := &Component{Ref: "X", W: 0.02, L: 0.01, H: 0.005, Center: geom.V2(0.05, 0.05)}
	fp := c.Footprint()
	if math.Abs(fp.W()-0.02) > 1e-12 || math.Abs(fp.H()-0.01) > 1e-12 {
		t.Errorf("footprint = %v", fp)
	}
	c.Rot = math.Pi / 2
	fp = c.Footprint()
	if math.Abs(fp.W()-0.01) > 1e-12 || math.Abs(fp.H()-0.02) > 1e-12 {
		t.Errorf("rotated footprint = %v", fp)
	}
	b := c.Body()
	if b.Z0 != 0 || math.Abs(b.Height()-0.005) > 1e-12 {
		t.Errorf("body = %+v", b)
	}
	if got := c.Rotations(); len(got) != 4 {
		t.Errorf("default rotations = %v", got)
	}
	c.AllowedRot = []float64{0, math.Pi}
	if got := c.Rotations(); len(got) != 2 {
		t.Errorf("explicit rotations = %v", got)
	}
}

func TestMagneticAxisRotation(t *testing.T) {
	t.Parallel()
	c := &Component{Ref: "L1", W: 0.01, L: 0.01, H: 0.01, Axis: geom.V3(0, 1, 0)}
	if ax := c.MagneticAxis(); math.Abs(ax.Y-1) > 1e-12 {
		t.Errorf("axis = %v", ax)
	}
	c.Rot = math.Pi / 2
	if ax := c.MagneticAxis(); math.Abs(ax.X+1) > 1e-12 {
		t.Errorf("rotated axis = %v", ax)
	}
	nc := &Component{Ref: "Q1", W: 0.01, L: 0.01, H: 0.01}
	if nc.MagneticAxis() != (geom.Vec3{}) {
		t.Error("non-magnetic axis must be zero")
	}
}

func TestEMDBetween(t *testing.T) {
	t.Parallel()
	d := sampleDesign()
	c1, c2 := d.Find("C1"), d.Find("C2")
	// Parallel axes: full PEMD.
	if got := d.EMDBetween(c1, c2, 0, 0); math.Abs(got-0.02) > 1e-12 {
		t.Errorf("EMD parallel = %v", got)
	}
	// Orthogonal: zero.
	if got := d.EMDBetween(c1, c2, 0, math.Pi/2); math.Abs(got) > 1e-12 {
		t.Errorf("EMD orthogonal = %v", got)
	}
	// 180°: full again.
	if got := d.EMDBetween(c1, c2, 0, math.Pi); math.Abs(got-0.02) > 1e-12 {
		t.Errorf("EMD 180° = %v", got)
	}
	// Pair without rule: zero.
	if got := d.EMDBetween(c1, d.Find("Q1"), 0, 0); got != 0 {
		t.Errorf("EMD unruled = %v", got)
	}
}

func TestNetLength(t *testing.T) {
	t.Parallel()
	d := sampleDesign()
	d.Find("C1").Placed = true
	d.Find("C1").Center = geom.V2(0, 0)
	d.Find("C2").Placed = true
	d.Find("C2").Center = geom.V2(0.03, 0)
	// Two pins: star length = 2 × half distance = full distance.
	if got := d.NetLength(d.Nets[0]); math.Abs(got-0.03) > 1e-12 {
		t.Errorf("net length = %v", got)
	}
	// Unplaced member is skipped.
	d.Find("C2").Placed = false
	if got := d.NetLength(d.Nets[0]); got != 0 {
		t.Errorf("partial net length = %v", got)
	}
}

func TestGroups(t *testing.T) {
	t.Parallel()
	d := sampleDesign()
	g := d.Groups()
	if len(g["in"]) != 2 || len(g["sw"]) != 1 {
		t.Errorf("groups = %v", g)
	}
	names := d.GroupNames()
	if len(names) != 2 || names[0] != "in" || names[1] != "sw" {
		t.Errorf("group names = %v", names)
	}
}

func TestValidateCatches(t *testing.T) {
	t.Parallel()
	ok := sampleDesign()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid design rejected: %v", err)
	}
	check := func(name string, mutate func(*Design)) {
		d := sampleDesign()
		mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s not caught", name)
		}
	}
	check("bad boards", func(d *Design) { d.Boards = 3 })
	check("negative clearance", func(d *Design) { d.Clearance = -1 })
	check("no areas", func(d *Design) { d.Areas = nil })
	check("degenerate area", func(d *Design) { d.Areas[0].Poly = geom.Polygon{{X: 0}, {X: 1}} })
	check("area on bad board", func(d *Design) { d.Areas[0].Board = 1 })
	check("duplicate ref", func(d *Design) { d.Comps = append(d.Comps, &Component{Ref: "C1", W: 1, L: 1}) })
	check("degenerate body", func(d *Design) { d.Comps[0].W = 0 })
	check("unknown comp area", func(d *Design) { d.Comps[0].AreaName = "nope" })
	check("comp on bad board", func(d *Design) { d.Comps[0].Board = 1 })
	check("preplaced without position", func(d *Design) { d.Comps[0].Preplaced = true })
	check("short net", func(d *Design) { d.Nets = append(d.Nets, Net{Name: "x", Refs: []string{"C1"}}) })
	check("net with unknown ref", func(d *Design) { d.Nets = append(d.Nets, Net{Name: "x", Refs: []string{"C1", "zz"}}) })
	check("rule with unknown ref", func(d *Design) { d.Rules.Add(rules.Rule{RefA: "C1", RefB: "zz", PEMD: 0.01}) })
	check("keepout on bad board", func(d *Design) {
		d.Keepouts = append(d.Keepouts, Keepout{Name: "k", Board: 1})
	})
}

func TestFileRoundTrip(t *testing.T) {
	t.Parallel()
	d := sampleDesign()
	d.Keepouts = append(d.Keepouts, Keepout{
		Name: "conn", Board: 0,
		Box: geom.CuboidOf(geom.R(0.08, 0, 0.1, 0.02), 0.002, 0.01),
	})
	d.Comps[0].Placed = true
	d.Comps[0].Preplaced = true
	d.Comps[0].Center = geom.V2(0.02, 0.03)
	d.Comps[0].Rot = math.Pi / 2
	d.Comps[1].Placed = true
	d.Comps[1].Center = geom.V2(0.06, 0.03)
	d.Comps[1].AllowedRot = []float64{0, math.Pi / 2}
	d.Comps[2].AreaName = "main"

	var b strings.Builder
	if err := Write(&b, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadString(b.String())
	if err != nil {
		t.Fatalf("Read(Write): %v\n%s", err, b.String())
	}
	if got.Name != "test" || got.Boards != 1 {
		t.Errorf("header = %q %d", got.Name, got.Boards)
	}
	if math.Abs(got.Clearance-0.5e-3) > 1e-9 {
		t.Errorf("clearance = %v", got.Clearance)
	}
	if len(got.Areas) != 1 || len(got.Keepouts) != 1 || len(got.Comps) != 3 || len(got.Nets) != 1 {
		t.Fatalf("counts: %d areas %d keepouts %d comps %d nets",
			len(got.Areas), len(got.Keepouts), len(got.Comps), len(got.Nets))
	}
	c1 := got.Find("C1")
	if !c1.Preplaced || !c1.Placed {
		t.Error("C1 preplacement lost")
	}
	if c1.Center.Dist(geom.V2(0.02, 0.03)) > 1e-7 || math.Abs(c1.Rot-math.Pi/2) > 1e-6 {
		t.Errorf("C1 position = %v rot %v", c1.Center, c1.Rot)
	}
	if math.Abs(c1.Axis.Y-1) > 1e-6 {
		t.Errorf("C1 axis = %v", c1.Axis)
	}
	c2 := got.Find("C2")
	if c2.Preplaced || !c2.Placed {
		t.Error("C2 AT placement lost or promoted")
	}
	if len(c2.AllowedRot) != 2 {
		t.Errorf("C2 rotations = %v", c2.AllowedRot)
	}
	if got.Find("Q1").AreaName != "main" {
		t.Error("Q1 area lost")
	}
	if pemd, ok := got.Rules.Lookup("C1", "C2"); !ok || math.Abs(pemd-0.02) > 1e-7 {
		t.Errorf("rule = %v %v", pemd, ok)
	}
	ko := got.Keepouts[0]
	if math.Abs(ko.Box.Z0-0.002) > 1e-9 || math.Abs(ko.Box.Height()-0.01) > 1e-9 {
		t.Errorf("keepout z = %v h %v", ko.Box.Z0, ko.Box.Height())
	}
}

func TestReadErrors(t *testing.T) {
	t.Parallel()
	bad := []string{
		"BOGUS x",
		"AREA a 0 0 0 10 0",             // too few vertices
		"KEEPOUT k 0 0 5 0 0 10",        // wrong arity
		"COMP",                          // too short
		"COMP X 10 10 2 WHAT ever",      // unknown attribute
		"NET n 0 C1",                    // single pin (also unknown)
		"PEMD a b",                      // short
		"DESIGN d\nEND\nCOMP X 10 10 2", // content after END
		"AREA a 0 0 0 10 0 10 10 0 10\nCOMP X 10 10 2 ROT x",
	}
	for _, s := range bad {
		if _, err := ReadString(s + "\n"); err == nil {
			t.Errorf("ReadString(%q) should fail", s)
		}
	}
}

func TestAreasOf(t *testing.T) {
	t.Parallel()
	d := sampleDesign()
	d.Boards = 2
	d.Areas = append(d.Areas, Area{Name: "top", Board: 1, Poly: geom.RectPolygon(geom.R(0, 0, 0.05, 0.05))})
	if got := d.AreasOf(0, ""); len(got) != 1 || got[0].Name != "main" {
		t.Errorf("AreasOf(0) = %v", got)
	}
	if got := d.AreasOf(1, "top"); len(got) != 1 {
		t.Errorf("AreasOf(1,top) = %v", got)
	}
	if got := d.AreasOf(0, "top"); len(got) != 0 {
		t.Errorf("AreasOf(0,top) = %v", got)
	}
}
