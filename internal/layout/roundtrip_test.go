// The round-trip test lives in an external test package because it pulls
// in the workload generators, which themselves import layout.
package layout_test

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/workload"
)

// designTexts collects every design in the ASCII file interface the
// round-trip must preserve: all parseable .txt files under testdata/ plus
// the synthetic workload generators, so the test keeps covering new
// grammar as designs are added.
func designTexts(t *testing.T) map[string]string {
	t.Helper()
	texts := make(map[string]string)
	paths, err := filepath.Glob("../../testdata/*.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := layout.ReadString(string(b)); err != nil {
			continue // not a design file
		}
		texts[filepath.Base(p)] = string(b)
	}
	if len(texts) == 0 {
		t.Fatal("no design files found in testdata/")
	}
	for _, gen := range []struct {
		name string
		d    *layout.Design
	}{
		{"synthetic-29", workload.Complex29()},
		{"synthetic-60", workload.Synthetic(60, 40, 2, 0.2, 0.15)},
	} {
		var buf bytes.Buffer
		if err := layout.Write(&buf, gen.d); err != nil {
			t.Fatalf("%s: %v", gen.name, err)
		}
		texts[gen.name] = buf.String()
	}
	return texts
}

// TestRoundTrip is the parse → write → parse golden test: for every
// design, the reparsed design must equal the first parse, and a second
// write must be byte-identical to the first (the written form is the
// fixed point of the grammar).
func TestRoundTrip(t *testing.T) {
	for name, text := range designTexts(t) {
		t.Run(name, func(t *testing.T) {
			d1, err := layout.ReadString(text)
			if err != nil {
				t.Fatal(err)
			}
			var w1 bytes.Buffer
			if err := layout.Write(&w1, d1); err != nil {
				t.Fatal(err)
			}
			d2, err := layout.ReadString(w1.String())
			if err != nil {
				t.Fatalf("reparse: %v\nwritten:\n%s", err, w1.String())
			}
			if !reflect.DeepEqual(d1, d2) {
				t.Fatalf("designs differ after round trip\nfirst:  %+v\nsecond: %+v", d1, d2)
			}
			var w2 bytes.Buffer
			if err := layout.Write(&w2, d2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
				t.Fatalf("written form is not a fixed point:\nfirst:\n%s\nsecond:\n%s", w1.String(), w2.String())
			}
		})
	}
}

// TestRoundTripPlaced runs the same invariant on a placed design, so the
// AT clauses and rotations survive the grammar too.
func TestRoundTripPlaced(t *testing.T) {
	d := workload.Synthetic(12, 6, 1, 0.1, 0.08)
	// Place components deterministically on a diagonal.
	for i, c := range d.Comps {
		c.Placed = true
		c.Center = geom.V2(float64(5+7*i)*1e-3, float64(5+5*i)*1e-3)
		if i%3 == 1 {
			c.Rot = math.Pi / 2
		}
	}
	var w1 bytes.Buffer
	if err := layout.Write(&w1, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w1.String(), " AT ") {
		t.Fatalf("placed design written without AT clauses:\n%s", w1.String())
	}
	d2, err := layout.ReadString(w1.String())
	if err != nil {
		t.Fatal(err)
	}
	var w2 bytes.Buffer
	if err := layout.Write(&w2, d2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatalf("placed round trip not byte-identical:\nfirst:\n%s\nsecond:\n%s", w1.String(), w2.String())
	}
}
