package layout

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// FuzzParseLayout feeds arbitrary text through the design parser and
// checks the write/parse loop on every input it accepts:
//
//  1. Write renders a form the parser accepts again — or rejects only at
//     the semantic validation stage (quantizing to the format's 4
//     decimals can shrink a barely-positive dimension to zero), never
//     with a grammar error: everything Write emits must be parseable.
//  2. The write/parse loop reaches a fixed point within a few rounds:
//     values quantize to the format's precision on the first write, and
//     the degree↔radian conversions settle.
//
// Inputs the parser rejects only have to fail cleanly (no panic, which
// the fuzz driver reports by itself).
func FuzzParseLayout(f *testing.F) {
	seeds := []string{
		"DESIGN d\nBOARDS 1\nCLEARANCE 1\nAREA board 0 0 0 100 0 100 80 0 80\nCOMP C1 10 8 3\nEND\n",
		"DESIGN two boards\nBOARDS 2\nCLEARANCE 1.5\nEDGECLEARANCE 0.5\n" +
			"AREA board 0 0 0 60 0 60 40 0 40\nAREA board 1 0 0 60 0 60 40 0 40\n" +
			"COMP A 10 8 3 GROUP g1 AXIS 0 1 0 ROT 0,90 AT 20 20 90\n" +
			"COMP B 7 4 2 BOARD 1 PREPLACED 30 10 0\n" +
			"NET n1 25 A B\nPEMD A B 14.5\nEND\n",
		"DESIGN k\nBOARDS 1\nCLEARANCE 1\nAREA board 0 0 0 50 0 50 50 0 50\n" +
			"KEEPOUT conn 0 0 20 0 30 12 50\nCOMP X 5 5 5 AREA board\nEND\n",
		"# comment\n\nDESIGN c\nBOARDS 1\nCLEARANCE 0.8\nAREA a 0 0 0 30 0 30 30 0 30\n" +
			"COMP P 3.2 2.5 1.8 ROT 0,45,90,135\nEND\n",
		"",
		"DESIGN x\n",
		"COMP broken\n",
		"AREA a 0 0 0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	if buck, err := os.ReadFile("../../testdata/buck_design.txt"); err == nil {
		f.Add(string(buck))
	}
	f.Fuzz(func(t *testing.T, in string) {
		d, err := ReadString(in)
		if err != nil {
			return // rejected inputs just must not panic
		}
		prev := render(t, d)
		for round := 0; ; round++ {
			d2, err := ReadString(prev)
			if err != nil {
				// Quantization may invalidate a design semantically, but
				// Write output must never trip the line-level grammar.
				if strings.Contains(err.Error(), ": line ") {
					t.Fatalf("rendered form hit a grammar error: %v\ninput: %q\nrendered: %q", err, in, prev)
				}
				return
			}
			next := render(t, d2)
			if next == prev {
				return // fixed point
			}
			if round >= 5 {
				t.Fatalf("write/parse loop did not converge in %d rounds:\nlast:     %q\nprevious: %q\ninput:    %q",
					round, next, prev, in)
			}
			prev = next
		}
	})
}

func render(t *testing.T, d *Design) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatalf("write failed on parsed design: %v", err)
	}
	return buf.String()
}
