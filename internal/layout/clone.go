package layout

import "repro/internal/rules"

// Clone returns a deep copy of the design: mutating the copy's components,
// areas, keepouts, nets or rules never affects the original. Sessions use
// this to own a private design while the caller keeps the source.
func (d *Design) Clone() *Design {
	out := &Design{
		Name:          d.Name,
		Boards:        d.Boards,
		Clearance:     d.Clearance,
		EdgeClearance: d.EdgeClearance,
	}
	if d.Areas != nil {
		out.Areas = make([]Area, len(d.Areas))
		for i, a := range d.Areas {
			out.Areas[i] = a
			out.Areas[i].Poly = append(a.Poly[:0:0], a.Poly...)
		}
	}
	out.Keepouts = append(d.Keepouts[:0:0], d.Keepouts...)
	if d.Comps != nil {
		out.Comps = make([]*Component, len(d.Comps))
		for i, c := range d.Comps {
			cc := *c
			cc.AllowedRot = append(c.AllowedRot[:0:0], c.AllowedRot...)
			out.Comps[i] = &cc
		}
	}
	if d.Nets != nil {
		out.Nets = make([]Net, len(d.Nets))
		for i, n := range d.Nets {
			out.Nets[i] = n
			out.Nets[i].Refs = append(n.Refs[:0:0], n.Refs...)
		}
	}
	if d.Rules != nil {
		out.Rules = rules.NewSet(d.Rules.Rules)
	}
	return out
}
