// Soak is the mixed-load durability driver: predict bursts, placement
// jobs and chatty design sessions (edits, undo/redo, SSE streams) thrown
// at a live emiserve over plain HTTP, with an acknowledgement ledger on
// the client side. After the server is killed and restarted, Verify
// replays the ledger against the recovered state: every acknowledged job
// must still resolve, every acknowledged session edit must be present,
// and each recovered snapshot must match the client's reference session
// byte for byte (and agree with it under DRC).
//
// The driver lives here rather than in internal/serve so the serving
// layer (which imports this package for Synthetic) never depends on its
// own load generator; everything below speaks net/http only.
package soak

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/session"
	"repro/internal/workload"
)

// SoakOptions configure the mixed-load driver.
type SoakOptions struct {
	BaseURL    string        // e.g. http://127.0.0.1:8080
	Seed       int64         // deterministic op streams
	Sessions   int           // chatty session workers; <= 0: 2
	JobWorkers int           // predict/place submitters; <= 0: 2
	OpEvery    time.Duration // pacing between session ops; <= 0: 5ms
	JobEvery   time.Duration // pacing between submissions; <= 0: 25ms
	Client     *http.Client  // nil: 10s-timeout default
}

// Soak drives the load and owns the acknowledgement ledger. One Soak
// survives any number of server restarts: Run keeps working through
// kills (waiting out the downtime), and Verify can be called after each
// restart.
type Soak struct {
	opts SoakOptions
	hc   *http.Client

	mu       sync.Mutex
	jobs     map[string]string // acked job ID → kind
	sessions []*soakSession

	sseDeltas atomic.Int64 // deltas observed over SSE, all sessions
	acked     atomic.Int64 // acknowledged session ops, all sessions
}

// soakSession pairs a remote session with the local reference the
// verifier compares against. ref has exactly the acknowledged ops
// applied; pending is the single op whose fate is unknown (the request
// died mid-flight — at most one, the worker is sequential).
type soakSession struct {
	mu       sync.Mutex
	remoteID string
	ref      *session.Session
	acked    int
	pending  *soakOp
	dead     bool // worker gave up (session vanished while serving)
}

// soakOp is one session operation in both forms: the wire request and
// the local edit that reproduces it exactly (the local edit uses the
// same millimeter→meter conversion expressions as the server, so the
// float64 results are bit-identical).
type soakOp struct {
	kind  string // edits | undo | redo
	wire  []byte // JSON body for edits
	local session.Edit
}

// NewSoak builds an idle driver; Run starts the load.
func NewSoak(opts SoakOptions) *Soak {
	if opts.Sessions <= 0 {
		opts.Sessions = 2
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = 2
	}
	if opts.OpEvery <= 0 {
		opts.OpEvery = 5 * time.Millisecond
	}
	if opts.JobEvery <= 0 {
		opts.JobEvery = 25 * time.Millisecond
	}
	hc := opts.Client
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Soak{opts: opts, hc: hc, jobs: map[string]string{}}
}

// AckedJobs returns the number of acknowledged job submissions so far.
func (s *Soak) AckedJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// AckedOps returns the number of acknowledged session ops so far.
func (s *Soak) AckedOps() int { return int(s.acked.Load()) }

// SSEDeltas returns the number of deltas observed over the event streams.
func (s *Soak) SSEDeltas() int { return int(s.sseDeltas.Load()) }

// Run drives the mixed load until ctx is done. It tolerates the server
// dying mid-request: unacknowledged work stays out of the ledger (or is
// resolved against the recovered state) and the workers wait for the
// server to come back.
func (s *Soak) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for i := 0; i < s.opts.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.sessionWorker(ctx, i)
		}(i)
	}
	for i := 0; i < s.opts.JobWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.jobWorker(ctx, i)
		}(i)
	}
	wg.Wait()
}

// ---- job load ----

// jobWorker alternates predict and place submissions with varying
// payloads (distinct bodies defeat the dedup layer, so each submission
// is a real queue entry).
func (s *Soak) jobWorker(ctx context.Context, worker int) {
	rng := rand.New(rand.NewSource(s.opts.Seed + int64(worker)*7919))
	t := time.NewTicker(s.opts.JobEvery)
	defer t.Stop()
	for n := 0; ; n++ {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		var path string
		var body []byte
		if n%2 == 0 {
			path = "/v1/predict"
			body = predictBody(worker, n, rng)
		} else {
			path = "/v1/place"
			body = placeBody(worker, n, rng)
		}
		resp, err := s.post(ctx, path, body)
		if err != nil {
			s.awaitHealthy(ctx) // server gone: the submission is unacked
			continue
		}
		var view struct {
			ID string `json:"id"`
		}
		code := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if code != http.StatusAccepted || err != nil || view.ID == "" {
			continue // rejected (queue full, draining): nothing acknowledged
		}
		s.mu.Lock()
		s.jobs[view.ID] = path
		s.mu.Unlock()
	}
}

// predictBody is a small switching-converter netlist whose load varies
// per submission.
func predictBody(worker, n int, rng *rand.Rand) []byte {
	load := 1 + rng.Intn(40)
	netl := fmt.Sprintf(`* soak predict %d-%d
Vbat bat 0 DC 12
Llisn bat vin 5e-06
Cclisn vin meas 1e-07
Rmlisn meas 0 50
Cin vin in_a 2.2e-06
Rin in_a 0 0.02
VD1 vin 0 PULSE(0 12 0 4e-08 4e-08 2e-06 5e-06)
Lbuck vin vout 2.2e-05
Cout vout out_a 4.7e-05
Rout out_a 0 0.08
Rload vout 0 %d
`, worker, n, load)
	body, _ := json.Marshal(map[string]any{
		"netlist":  netl,
		"sources":  []string{"VD1"},
		"measure":  "meas",
		"max_freq": 5e6,
	})
	return body
}

// placeBody is a small synthetic placement problem with varying size.
func placeBody(worker, n int, rng *rand.Rand) []byte {
	comps := 5 + rng.Intn(4)
	d := workload.Synthetic(comps, comps, 2, 0.1, 0.08)
	d.Name = fmt.Sprintf("soak-%d-%d", worker, n)
	var buf bytes.Buffer
	if err := layout.Write(&buf, d); err != nil {
		panic(err) // deterministic small design; cannot fail
	}
	body, _ := json.Marshal(map[string]any{"design": buf.String()})
	return body
}

// ---- session load ----

// sessionWorker creates one durable session, opens its SSE stream, and
// streams edits/undo/redo at it, maintaining the local reference.
func (s *Soak) sessionWorker(ctx context.Context, worker int) {
	rng := rand.New(rand.NewSource(s.opts.Seed + 1e6 + int64(worker)*104729))

	// Create the remote session and the bit-identical local reference.
	// The explicit spec mirrors SyntheticSpec.build in the server: both
	// sides evaluate the same expressions on the same inputs.
	n := 6 + worker%4
	ruleCount, groups := 6, 2
	wmm, hmm := 160.0, 120.0
	createBody, _ := json.Marshal(map[string]any{
		"synthetic": map[string]any{
			"n": n, "rules": ruleCount, "groups": groups,
			"w_mm": wmm, "h_mm": hmm,
		},
	})
	var ss *soakSession
	for ss == nil {
		resp, err := s.post(ctx, "/v1/sessions", createBody)
		if err != nil {
			if !s.awaitHealthy(ctx) {
				return
			}
			continue
		}
		var st struct {
			ID string `json:"id"`
		}
		code := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if code != http.StatusCreated || err != nil || st.ID == "" {
			select {
			case <-ctx.Done():
				return
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		ref := session.New("ref-"+st.ID, workload.Synthetic(n, ruleCount, groups, wmm*1e-3, hmm*1e-3))
		ss = &soakSession{remoteID: st.ID, ref: ref}
		s.mu.Lock()
		s.sessions = append(s.sessions, ss)
		s.mu.Unlock()
	}
	go s.streamEvents(ctx, ss.remoteID)

	t := time.NewTicker(s.opts.OpEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		op := s.nextOp(ss, rng)
		ss.mu.Lock()
		ss.pending = op
		ss.mu.Unlock()
		ok, gone := s.sendOp(ctx, ss.remoteID, op)
		ss.mu.Lock()
		switch {
		case ok:
			// Acknowledged: the op is durable server-side; mirror it.
			if err := applyLocal(ss.ref, op); err == nil {
				ss.acked++
				s.acked.Add(1)
			} else {
				// The server acked an op the reference rejects: leave the
				// ledger ahead so Verify flags the divergence.
				ss.dead = true
			}
			ss.pending = nil
		case gone:
			// Transport died mid-request: the op's fate is unknown. Leave
			// it pending; resolvePending settles it once the server is up.
			ss.mu.Unlock()
			if !s.awaitHealthy(ctx) {
				return
			}
			if !s.resolvePending(ctx, ss) {
				return // session vanished; Verify reports it
			}
			ss.mu.Lock()
		default:
			// Clean rejection (409 empty undo stack, 400): nothing
			// happened on either side.
			ss.pending = nil
		}
		dead := ss.dead
		ss.mu.Unlock()
		if dead {
			return
		}
	}
}

// nextOp picks the next session op: mostly moves, with rotations,
// rule/param edits and undo/redo mixed in. Wire values are integral
// millimeters/degrees so both sides convert identically.
func (s *Soak) nextOp(ss *soakSession, rng *rand.Rand) *soakOp {
	d := ss.ref.DesignSnapshot()
	pick := rng.Intn(10)
	switch {
	case pick < 5: // move
		c := d.Comps[rng.Intn(len(d.Comps))]
		xmm := float64(15 + rng.Intn(130))
		ymm := float64(15 + rng.Intn(90))
		deg := float64(90 * rng.Intn(4))
		wire, _ := json.Marshal(map[string]any{
			"op": "move", "ref": c.Ref, "x_mm": xmm, "y_mm": ymm, "rot_deg": deg,
		})
		return &soakOp{kind: "edits", wire: wire, local: session.Edit{
			Op: session.OpMove, Ref: c.Ref,
			Center: geom.V2(xmm*1e-3, ymm*1e-3), Rot: geom.Rad(deg),
		}}
	case pick < 7: // rotate
		c := d.Comps[rng.Intn(len(d.Comps))]
		deg := float64(90 * rng.Intn(4))
		wire, _ := json.Marshal(map[string]any{
			"op": "rotate", "ref": c.Ref, "rot_deg": deg,
		})
		return &soakOp{kind: "edits", wire: wire, local: session.Edit{
			Op: session.OpRotate, Ref: c.Ref, Rot: geom.Rad(deg),
		}}
	case pick < 8: // clearance param
		mm := float64(1+rng.Intn(4)) / 2 // 0.5 .. 2.0
		wire, _ := json.Marshal(map[string]any{
			"op": "param", "param": session.ParamClearance, "value_mm": mm,
		})
		return &soakOp{kind: "edits", wire: wire, local: session.Edit{
			Op: session.OpParam, Param: session.ParamClearance, Value: mm * 1e-3,
		}}
	case pick < 9:
		return &soakOp{kind: "undo"}
	default:
		return &soakOp{kind: "redo"}
	}
}

// sendOp posts one op. ok means acknowledged (200); gone means the
// op's fate is unknown — the transport failed, or a cluster router
// answered 502 because the forwarded request died mid-flight on the
// session's owner. Either way the op may have landed, so it must stay
// pending until resolved against the recovered sequence number. Every
// other status (429 shed, 503 takeover pending, 409 empty undo stack)
// is a clean rejection: nothing happened on either side.
func (s *Soak) sendOp(ctx context.Context, id string, op *soakOp) (ok, gone bool) {
	path := "/v1/sessions/" + id + "/" + op.kind
	resp, err := s.post(ctx, path, op.wire)
	if err != nil {
		return false, true
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		return true, false
	case http.StatusBadGateway:
		return false, true
	}
	return false, false
}

// applyLocal mirrors an acknowledged op onto the reference session.
func applyLocal(ref *session.Session, op *soakOp) error {
	var err error
	switch op.kind {
	case "edits":
		_, err = ref.Apply(op.local)
	case "undo":
		_, err = ref.Undo()
	case "redo":
		_, err = ref.Redo()
	}
	return err
}

// resolvePending settles the one op whose request died mid-flight by
// asking the recovered server for the session's sequence number: seq ==
// acked means the op never landed, seq == acked+1 means it did (and is
// applied to the reference). Returns false when the session is gone.
func (s *Soak) resolvePending(ctx context.Context, ss *soakSession) bool {
	ss.mu.Lock()
	op := ss.pending
	acked := ss.acked
	id := ss.remoteID
	ss.mu.Unlock()
	if op == nil {
		return true
	}
	seq, found := s.remoteSeq(ctx, id)
	if !found {
		ss.mu.Lock()
		ss.dead = true
		ss.mu.Unlock()
		return false
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	switch seq {
	case uint64(acked):
		// Not applied (or an undo/redo the server rejected with 409).
	case uint64(acked) + 1:
		if err := applyLocal(ss.ref, op); err != nil {
			ss.dead = true
			return false
		}
		ss.acked++
		s.acked.Add(1)
	default:
		ss.dead = true // a whole op went missing; Verify reports it
		return false
	}
	ss.pending = nil
	return true
}

// remoteSeq fetches a session's sequence number, retrying through
// transient downtime until ctx expires.
func (s *Soak) remoteSeq(ctx context.Context, id string) (uint64, bool) {
	for ctx.Err() == nil {
		resp, err := s.get(ctx, "/v1/sessions/"+id)
		if err != nil {
			if !s.awaitHealthy(ctx) {
				return 0, false
			}
			continue
		}
		var st struct {
			Seq uint64 `json:"seq"`
		}
		code := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if code == http.StatusNotFound {
			return 0, false
		}
		if code == http.StatusOK && err == nil {
			return st.Seq, true
		}
		// 503: the session's owner is down or a takeover is pending
		// behind a router. Back off instead of spinning.
		select {
		case <-ctx.Done():
		case <-time.After(100 * time.Millisecond):
		}
	}
	return 0, false
}

// streamEvents keeps an SSE subscription open for load realism,
// counting the deltas it sees and reconnecting across restarts.
func (s *Soak) streamEvents(ctx context.Context, id string) {
	for ctx.Err() == nil {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			s.opts.BaseURL+"/v1/sessions/"+id+"/events", nil)
		if err != nil {
			return
		}
		// SSE must outlive the client timeout: use a bare transport.
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			select {
			case <-ctx.Done():
				return
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "event: delta") {
				s.sseDeltas.Add(1)
			}
		}
		resp.Body.Close()
	}
}

// ---- verification ----

// SoakReport is Verify's verdict over the whole ledger.
type SoakReport struct {
	AckedJobs     int
	LostJobs      int // acknowledged job IDs the server no longer knows
	PendingJobs   int // still queued/running when Verify gave up waiting
	AckedSessions int
	AckedOps      int
	LostSessions  int // acknowledged sessions that did not come back
	SeqMismatches int // recovered seq disagrees with the acked ledger
	SnapshotDiffs int // recovered snapshot differs from the reference
	DRCDiffs      int // recovered design disagrees with the reference under DRC
	Errors        []string
}

// OK reports whether no acknowledged state was lost or corrupted.
func (r *SoakReport) OK() bool {
	return r.LostJobs == 0 && r.LostSessions == 0 &&
		r.SeqMismatches == 0 && r.SnapshotDiffs == 0 && r.DRCDiffs == 0
}

func (r *SoakReport) String() string {
	return fmt.Sprintf("jobs acked=%d lost=%d pending=%d | sessions acked=%d ops=%d lost=%d seq_mismatch=%d snapshot_diff=%d drc_diff=%d",
		r.AckedJobs, r.LostJobs, r.PendingJobs,
		r.AckedSessions, r.AckedOps, r.LostSessions,
		r.SeqMismatches, r.SnapshotDiffs, r.DRCDiffs)
}

func (r *SoakReport) errf(format string, args ...any) {
	if len(r.Errors) < 32 {
		r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
	}
}

// Verify checks the recovered server against the ledger. Call it after
// a restart with the load stopped; ctx bounds how long it waits for
// requeued jobs to finish.
func (s *Soak) Verify(ctx context.Context) *SoakReport {
	rep := &SoakReport{}
	if !s.awaitHealthy(ctx) {
		rep.errf("server never became healthy")
		rep.LostJobs = -1
		return rep
	}

	s.mu.Lock()
	jobs := make(map[string]string, len(s.jobs))
	for id, kind := range s.jobs {
		jobs[id] = kind
	}
	sess := append([]*soakSession(nil), s.sessions...)
	s.mu.Unlock()

	// Jobs: every acknowledged ID must still resolve, and requeued ones
	// must run to a terminal state.
	rep.AckedJobs = len(jobs)
	for id := range jobs {
		state, found := s.jobState(ctx, id, true)
		switch {
		case !found:
			rep.LostJobs++
			rep.errf("job %s: acknowledged but unknown after restart", id)
		case state == "queued" || state == "running":
			rep.PendingJobs++
		}
	}

	// Sessions: resolve any in-flight op, then compare seq, snapshot
	// bytes and the DRC verdict against the reference.
	rep.AckedSessions = len(sess)
	for _, ss := range sess {
		s.resolvePending(ctx, ss)
		ss.mu.Lock()
		id, ref, acked := ss.remoteID, ss.ref, ss.acked
		ss.mu.Unlock()
		rep.AckedOps += acked

		seq, found := s.remoteSeq(ctx, id)
		if !found {
			rep.LostSessions++
			rep.errf("session %s: acknowledged but missing after restart", id)
			continue
		}
		if seq != uint64(acked) {
			rep.SeqMismatches++
			rep.errf("session %s: recovered seq %d, ledger acked %d", id, seq, acked)
			continue
		}
		remote, err := s.snapshot(ctx, id)
		if err != nil {
			rep.SnapshotDiffs++
			rep.errf("session %s: snapshot: %v", id, err)
			continue
		}
		local, err := ref.Snapshot()
		if err != nil {
			rep.errf("session %s: reference snapshot: %v", id, err)
			continue
		}
		if !bytes.Equal(remote, local) {
			rep.SnapshotDiffs++
			rep.errf("session %s: recovered snapshot differs from reference (%d vs %d bytes)",
				id, len(remote), len(local))
			continue
		}
		// Independent semantic check: the recovered design must agree
		// with the reference under a full DRC pass.
		rd, err := layout.ReadString(string(remote))
		if err != nil {
			rep.DRCDiffs++
			rep.errf("session %s: recovered snapshot unparseable: %v", id, err)
			continue
		}
		rrep, lrep := drc.Check(rd), drc.Check(ref.DesignSnapshot())
		if rrep.Green() != lrep.Green() || len(rrep.Violations) != len(lrep.Violations) {
			rep.DRCDiffs++
			rep.errf("session %s: DRC disagrees (recovered %d violations, reference %d)",
				id, len(rrep.Violations), len(lrep.Violations))
		}
	}
	return rep
}

// snapshot fetches a session's current design in the ASCII layout format.
func (s *Soak) snapshot(ctx context.Context, id string) ([]byte, error) {
	resp, err := s.get(ctx, "/v1/sessions/"+id+"/snapshot")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("snapshot: HTTP %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// jobState fetches a job's state, optionally blocking until terminal.
func (s *Soak) jobState(ctx context.Context, id string, wait bool) (string, bool) {
	path := "/v1/jobs/" + id
	if wait {
		path += "?wait=1"
	}
	for ctx.Err() == nil {
		resp, err := s.get(ctx, path)
		if err != nil {
			if !s.awaitHealthy(ctx) {
				break
			}
			continue
		}
		var view struct {
			State string `json:"state"`
		}
		code := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if code == http.StatusNotFound {
			return "", false
		}
		if err == nil && view.State != "" {
			return view.State, true
		}
		// Owner down behind a router (503) or a malformed answer: back
		// off and retry until the deadline.
		select {
		case <-ctx.Done():
		case <-time.After(100 * time.Millisecond):
		}
	}
	// ctx expired: one last non-blocking look.
	resp, err := s.get(context.Background(), "/v1/jobs/"+id)
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	var view struct {
		State string `json:"state"`
	}
	if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&view) == nil {
		return view.State, true
	}
	return "", false
}

// ---- plumbing ----

func (s *Soak) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		s.opts.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return s.hc.Do(req)
}

func (s *Soak) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.opts.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	return s.hc.Do(req)
}

// awaitHealthy polls /readyz until the server answers 200 or ctx ends.
// Readiness, not liveness: a recovering or draining replica answers 200
// on /healthz but cannot take work yet, and a cluster router's /readyz
// is 200 exactly when at least one replica behind it is routable.
func (s *Soak) awaitHealthy(ctx context.Context) bool {
	for {
		resp, err := s.get(ctx, "/readyz")
		if err == nil {
			code := resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if code == http.StatusOK {
				return true
			}
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(100 * time.Millisecond):
		}
	}
}
