package soak

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// buildEmiserve compiles the real server binary once per test run.
func buildEmiserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "emiserve")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/emiserve")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build emiserve: %v\n%s", err, out)
	}
	return bin
}

// TestKillRestartCycle is the in-tree slice of the soak harness: real
// emiserve process, mixed load, SIGKILL mid-load, restart, and the full
// no-acknowledged-state-lost verification. The CI soak target runs the
// emisoak binary for longer; this keeps a fast version in plain go test.
func TestKillRestartCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level soak cycle; skipped in -short")
	}
	bin := buildEmiserve(t)
	h := &Harness{
		Bin:     bin,
		DataDir: t.TempDir(),
		Args:    []string{"-fsync", "off"},
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Kill()

	soaker := NewSoak(SoakOptions{
		BaseURL:    h.BaseURL(),
		Seed:       42,
		Sessions:   2,
		JobWorkers: 2,
	})

	loadCtx, stopLoad := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		soaker.Run(loadCtx)
		close(done)
	}()
	time.Sleep(3 * time.Second)

	h.Kill()
	stopLoad()
	<-done

	if soaker.AckedOps() == 0 && soaker.AckedJobs() == 0 {
		t.Fatal("no work was acknowledged before the kill; the cycle proves nothing")
	}

	if err := h.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	vctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep := soaker.Verify(vctx)
	if !rep.OK() {
		for _, e := range rep.Errors {
			t.Error(e)
		}
		t.Fatalf("acknowledged state lost across SIGKILL: %s", rep)
	}
	t.Logf("cycle verified: %d jobs acked, %d ops acked, %d SSE deltas: %s",
		soaker.AckedJobs(), soaker.AckedOps(), soaker.SSEDeltas(), rep)
}
