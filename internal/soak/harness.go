package soak

import (
	"fmt"
	"net"
	"os/exec"
	"syscall"
	"time"
)

// Harness manages a real emiserve process for the crash-recovery soak:
// start it against a data directory, SIGKILL it mid-load (no drain, no
// goodbye — the hard-crash model the WAL must survive), start it again.
// The harness is used both by the soak test and by cmd/emisoak.
type Harness struct {
	Bin     string   // path to the emiserve binary
	DataDir string   // -data-dir passed to every start
	Addr    string   // host:port; empty picks a free localhost port
	Args    []string // extra flags (e.g. -fsync always)

	cmd *exec.Cmd
}

// BaseURL returns the server's base URL.
func (h *Harness) BaseURL() string { return "http://" + h.Addr }

// PickAddr reserves a free localhost port for the server. Call once
// before the first Start.
func (h *Harness) PickAddr() error {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	h.Addr = l.Addr().String()
	return l.Close()
}

// Start launches emiserve with the durable data directory and waits
// until it accepts connections.
func (h *Harness) Start() error {
	if h.cmd != nil {
		return fmt.Errorf("harness: server already running")
	}
	if h.Addr == "" {
		if err := h.PickAddr(); err != nil {
			return err
		}
	}
	args := append([]string{"-addr", h.Addr, "-data-dir", h.DataDir}, h.Args...)
	cmd := exec.Command(h.Bin, args...)
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("harness: start %s: %w", h.Bin, err)
	}
	h.cmd = cmd
	// Wait for the listener, bounded: recovery of a big log takes time.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", h.Addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return nil
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	h.Kill()
	return fmt.Errorf("harness: server on %s never came up", h.Addr)
}

// Kill SIGKILLs the server — the abrupt death the durability layer is
// tested against — and reaps the process.
func (h *Harness) Kill() {
	if h.cmd == nil {
		return
	}
	if h.cmd.Process != nil {
		_ = h.cmd.Process.Signal(syscall.SIGKILL)
	}
	_ = h.cmd.Wait()
	h.cmd = nil
}

// Stop SIGTERMs the server (graceful drain path) and waits for exit.
func (h *Harness) Stop() error {
	if h.cmd == nil {
		return nil
	}
	if h.cmd.Process != nil {
		_ = h.cmd.Process.Signal(syscall.SIGTERM)
	}
	err := h.cmd.Wait()
	h.cmd = nil
	return err
}
