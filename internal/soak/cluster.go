package soak

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
)

// ClusterHarness runs N real emiserve replicas (separate processes,
// separate durable data directories) behind an in-process
// cluster.Router, for the cluster soak: rolling SIGKILLs of replicas
// while mixed load flows through the router, then ledger verification
// against the router URL. The router stays in-process so its routing
// tables (job owners, session affinity) survive every replica death,
// the way a production router outlives the replicas it fronts.
type ClusterHarness struct {
	Bin      string     // path to the emiserve binary
	BaseDir  string     // per-replica data dirs are created under here
	Args     []string   // extra emiserve flags (e.g. -fsync always)
	Replicas []*Harness // one per member, index-stable

	rt   *cluster.Router
	hs   *http.Server
	addr string
}

// NewClusterHarness lays out n replica harnesses under baseDir
// (replica0, replica1, ...) with pre-picked localhost ports, so the
// member list — and with it the hash ring — is fixed before anything
// starts.
func NewClusterHarness(bin, baseDir string, n int, args []string) (*ClusterHarness, error) {
	if n < 2 {
		return nil, fmt.Errorf("cluster harness: need at least 2 replicas, got %d", n)
	}
	c := &ClusterHarness{Bin: bin, BaseDir: baseDir, Args: args}
	for i := 0; i < n; i++ {
		dir := filepath.Join(baseDir, fmt.Sprintf("replica%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		h := &Harness{Bin: bin, DataDir: dir, Args: args}
		if err := h.PickAddr(); err != nil {
			return nil, err
		}
		c.Replicas = append(c.Replicas, h)
	}
	return c, nil
}

// Start launches every replica, then the router on its own localhost
// port. probeEvery is the router's health-probe period (also its
// advertised Retry-After); keep it short in tests so takeover and
// recovery converge quickly.
func (c *ClusterHarness) Start(probeEvery time.Duration) error {
	for i, h := range c.Replicas {
		if err := h.Start(); err != nil {
			for _, prev := range c.Replicas[:i] {
				prev.Kill()
			}
			return fmt.Errorf("cluster harness: replica %d: %w", i, err)
		}
	}
	members := make([]cluster.Member, len(c.Replicas))
	for i, h := range c.Replicas {
		members[i] = cluster.Member{Name: fmt.Sprintf("r%d", i), URL: h.BaseURL()}
	}
	rt, err := cluster.New(cluster.Config{Members: members, ProbeInterval: probeEvery})
	if err != nil {
		c.killAll()
		return err
	}
	rt.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Close()
		c.killAll()
		return err
	}
	c.rt = rt
	c.addr = ln.Addr().String()
	c.hs = &http.Server{Handler: rt.Handler()}
	go c.hs.Serve(ln)
	return nil
}

// BaseURL returns the router's base URL — the single address the load
// and the verifier talk to.
func (c *ClusterHarness) BaseURL() string { return "http://" + c.addr }

// Router exposes the in-process router (metrics, forced probes).
func (c *ClusterHarness) Router() *cluster.Router { return c.rt }

// KillReplica SIGKILLs replica i mid-load: no drain, no goodbye.
func (c *ClusterHarness) KillReplica(i int) { c.Replicas[i].Kill() }

// RestartReplica starts replica i again against its surviving data
// directory; it recovers from its WALs and rejoins the ring as soon as
// the next probe sees it ready.
func (c *ClusterHarness) RestartReplica(i int) error { return c.Replicas[i].Start() }

// AwaitAllReady blocks until every replica answers 200 on its own
// /readyz and the router has probed them, so a following Verify sees
// the complete cluster (a still-recovering replica would make its jobs
// look lost). Returns false when ctx expires first.
func (c *ClusterHarness) AwaitAllReady(ctx context.Context) bool {
	hc := &http.Client{Timeout: 2 * time.Second}
	for _, h := range c.Replicas {
		for {
			if ctx.Err() != nil {
				return false
			}
			resp, err := hc.Get(h.BaseURL() + "/readyz")
			if err == nil {
				code := resp.StatusCode
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if code == http.StatusOK {
					break
				}
			}
			select {
			case <-ctx.Done():
				return false
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
	c.rt.Prober().ProbeNow()
	return true
}

// Close stops the router and SIGKILLs every replica.
func (c *ClusterHarness) Close() {
	if c.hs != nil {
		c.hs.Close()
	}
	if c.rt != nil {
		c.rt.Close()
	}
	c.killAll()
}

func (c *ClusterHarness) killAll() {
	for _, h := range c.Replicas {
		h.Kill()
	}
}
