// Package core ties the substrates together into the paper's methodical
// EMI design flow:
//
//  1. circuit simulation of the converter including component parasitics,
//  2. sensitivity analysis ranking the pairwise magnetic couplings,
//  3. PEEC field extraction of the relevant coupling factors from the 3D
//     component placement,
//  4. interference prediction with the couplings inserted,
//  5. derivation of minimum-distance placement rules (PEMD), and
//  6. automatic, rule-honouring placement with final verification.
//
// A Project bundles the three synchronized views of one design: the
// electrical netlist, the geometric placement problem, and the PEEC
// component models, linked by reference designators.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/components"
	"repro/internal/drc"
	"repro/internal/emi"
	"repro/internal/engine"
	"repro/internal/layout"
	"repro/internal/linalg"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/peec"
	"repro/internal/place"
	"repro/internal/rules"
	"repro/internal/sensitivity"
	"repro/internal/transient"
)

// Project is one power electronics design under EMI analysis.
type Project struct {
	Design  *layout.Design
	Circuit *netlist.Circuit

	// Models maps component references to their PEEC component models.
	Models map[string]components.Model

	// InductorOf maps a component reference to the name of the circuit
	// inductor that represents its magnetically active part (a
	// capacitor's ESL, a choke's winding). Only mapped components take
	// part in coupling extraction.
	InductorOf map[string]string

	// Sources are the switching equivalent sources (V/I elements with
	// PULSE) driving the interference prediction.
	Sources     []string
	MeasureNode string

	// HotNodeOf maps a component reference to the circuit node its body
	// is electrically tied to — the injection point for capacitive body
	// coupling (the paper's "capacitive coupling gains more influence at
	// higher frequencies"). Optional; only mapped components take part.
	HotNodeOf map[string]string

	// Order is the PEEC quadrature order (0 = peec.DefaultOrder).
	Order int

	// GroundPlane, when non-nil, models a solid copper plane at the given
	// z (typically just below the components) during coupling extraction:
	// its image currents modify both mutual and self inductances — the
	// "GND" part of the paper's Figure 11 PEEC model.
	GroundPlane *float64

	// CouplingTheta switches mutual-inductance extraction to the
	// hierarchical (tree-accelerated) evaluator with the given multipole
	// acceptance parameter θ ∈ (0, 1): far cluster pairs use a moment
	// expansion, near pairs stay exact (see peec.MutualHier). Smaller is
	// more accurate; 0 (the default) keeps the exact all-pairs Neumann
	// sums, bit-for-bit. Self-inductances are always exact — they are
	// per-component and already cached across placements.
	CouplingTheta float64

	// Solver selects the MNA factorization backend for every prediction
	// this project runs (linalg.ModeAuto, the zero value, defers to the
	// process-wide default). Carried per project rather than set globally
	// so concurrent jobs with different requests never race on a shared
	// mode switch.
	Solver linalg.SolverMode
}

func (p *Project) order() int {
	if p.Order == 0 {
		return peec.DefaultOrder
	}
	return p.Order
}

// Validate cross-checks the three views.
func (p *Project) Validate() error {
	if p.Design == nil || p.Circuit == nil {
		return fmt.Errorf("core: project needs a design and a circuit")
	}
	if err := p.Design.Validate(); err != nil {
		return err
	}
	if err := p.Circuit.Validate(); err != nil {
		return err
	}
	for ref, ind := range p.InductorOf {
		if p.Design.Find(ref) == nil {
			return fmt.Errorf("core: InductorOf references unknown component %q", ref)
		}
		e := p.Circuit.Find(ind)
		if e == nil || e.Kind != netlist.L {
			return fmt.Errorf("core: %q maps to %q which is not a circuit inductor", ref, ind)
		}
		if p.Models[ref] == nil {
			return fmt.Errorf("core: mapped component %q has no PEEC model", ref)
		}
	}
	for _, s := range p.Sources {
		e := p.Circuit.Find(s)
		if e == nil || (e.Kind != netlist.V && e.Kind != netlist.I) {
			return fmt.Errorf("core: source %q is not a V/I element", s)
		}
	}
	if len(p.HotNodeOf) > 0 {
		nodes := map[string]bool{"0": true}
		for _, n := range p.Circuit.Nodes() {
			nodes[n] = true
		}
		for ref, node := range p.HotNodeOf {
			if p.Design.Find(ref) == nil {
				return fmt.Errorf("core: HotNodeOf references unknown component %q", ref)
			}
			if p.Models[ref] == nil {
				return fmt.Errorf("core: hot-node component %q has no model", ref)
			}
			if !nodes[node] {
				return fmt.Errorf("core: %q maps to unknown circuit node %q", ref, node)
			}
		}
	}
	return nil
}

// InstanceOf returns the placed PEEC instance of a component.
func (p *Project) InstanceOf(ref string) (*components.Instance, error) {
	c := p.Design.Find(ref)
	if c == nil {
		return nil, fmt.Errorf("core: unknown component %q", ref)
	}
	m := p.Models[ref]
	if m == nil {
		return nil, fmt.Errorf("core: component %q has no PEEC model", ref)
	}
	if !c.Placed {
		return nil, fmt.Errorf("core: component %q is not placed", ref)
	}
	return &components.Instance{Ref: ref, Model: m, Center: c.Center, Rot: c.Rot}, nil
}

// MappedRefs returns the component references with both a model and a
// circuit inductor, sorted.
func (p *Project) MappedRefs() []string {
	out := make([]string, 0, len(p.InductorOf))
	for ref := range p.InductorOf {
		out = append(out, ref)
	}
	sort.Strings(out)
	return out
}

// AllPairs returns every unordered pair of mapped components.
func (p *Project) AllPairs() [][2]string {
	refs := p.MappedRefs()
	var out [][2]string
	for i := 0; i < len(refs); i++ {
		for j := i + 1; j < len(refs); j++ {
			out = append(out, [2]string{refs[i], refs[j]})
		}
	}
	return out
}

// ExtractCouplings computes the PEEC coupling factor for each component
// pair from the current placement — step 3 of the flow. Pairs on different
// boards couple 0 by convention (separate shielded compartments). The
// placement-invariant self-inductances are cached per component, so the
// cost per pair is one mutual-inductance integral.
func (p *Project) ExtractCouplings(pairs [][2]string) (map[[2]string]float64, error) {
	return p.ExtractCouplingsCtx(context.Background(), pairs)
}

// ExtractCouplingsCtx is ExtractCouplings with cancellation: once ctx is
// done no further field integrals start and the context's error is
// returned.
func (p *Project) ExtractCouplingsCtx(ctx context.Context, pairs [][2]string) (map[[2]string]float64, error) {
	defer engine.Phase("core.extract")()
	ctx, sp := obs.Start(ctx, "peec.extract")
	sp.Int("pairs", int64(len(pairs)))
	var h0, m0 uint64
	if sp != nil {
		h0, m0 = engine.CacheCounts()
	}
	defer func() {
		if sp != nil {
			h1, m1 := engine.CacheCounts()
			sp.Int("cache_hits", int64(h1-h0))
			sp.Int("cache_misses", int64(m1-m0))
		}
		sp.End()
	}()
	// Phase 1: build every needed conductor and its (placement-invariant)
	// self-inductance, fanned out over the engine pool. Each ref writes
	// only its own slot, so the result is scheduling-independent.
	refSet := map[string]bool{}
	var refs []string
	for _, pair := range pairs {
		for _, r := range pair {
			if !refSet[r] {
				refSet[r] = true
				refs = append(refs, r)
			}
		}
	}
	type refField struct {
		cond *peec.Conductor
		l    float64
		tree *peec.SegTree // hierarchical evaluator (CouplingTheta > 0)
		img  *peec.SegTree // image across the ground plane, if any
	}
	fields, err := engine.MapCtx(ctx, len(refs), func(i int) (refField, error) {
		inst, err := p.InstanceOf(refs[i])
		if err != nil {
			return refField{}, err
		}
		c := inst.Conductor()
		rf := refField{cond: c}
		if len(c.Segments) > 0 {
			if p.GroundPlane != nil {
				rf.l = c.SelfInductanceWithPlane(*p.GroundPlane, p.order())
			} else {
				rf.l = c.SelfInductanceOrder(p.order())
			}
		}
		if p.CouplingTheta > 0 {
			rf.tree = peec.NewSegTree(c)
			if p.GroundPlane != nil {
				rf.img = peec.NewSegTree(c.ImageAcross(*p.GroundPlane))
			}
		}
		return rf, nil
	})
	if err != nil {
		return nil, err
	}
	conds := make(map[string]*peec.Conductor, len(refs))
	selfL := make(map[string]float64, len(refs))
	trees := make(map[string]*peec.SegTree, len(refs))
	imgs := make(map[string]*peec.SegTree, len(refs))
	for i, ref := range refs {
		conds[ref] = fields[i].cond
		selfL[ref] = fields[i].l
		trees[ref] = fields[i].tree
		imgs[ref] = fields[i].img
	}

	// Phase 2: one mutual-inductance integral per pair, in parallel.
	ks := make([]float64, len(pairs))
	if err := engine.ForEachCtx(ctx, len(pairs), func(i int) error {
		pair := pairs[i]
		if p.Design.Find(pair[0]).Board != p.Design.Find(pair[1]).Board {
			return nil
		}
		la, lb := selfL[pair[0]], selfL[pair[1]]
		if la <= 0 || lb <= 0 {
			return nil
		}
		var m float64
		switch {
		case p.CouplingTheta > 0 && p.GroundPlane != nil:
			// Mirror MutualWithPlane: direct term plus the image of b
			// reflected across the plane, both tree-accelerated.
			m = peec.MutualHier(trees[pair[0]], trees[pair[1]], p.order(), p.CouplingTheta) +
				peec.MutualHier(trees[pair[0]], imgs[pair[1]], p.order(), p.CouplingTheta)
		case p.CouplingTheta > 0:
			m = peec.MutualHier(trees[pair[0]], trees[pair[1]], p.order(), p.CouplingTheta)
		case p.GroundPlane != nil:
			m = peec.MutualWithPlane(conds[pair[0]], conds[pair[1]], *p.GroundPlane, p.order())
		default:
			m = peec.Mutual(conds[pair[0]], conds[pair[1]], p.order())
		}
		k := m / math.Sqrt(la*lb)
		if k > 1 {
			k = 1
		} else if k < -1 {
			k = -1
		}
		ks[i] = k
		return nil
	}); err != nil {
		return nil, err
	}

	out := make(map[[2]string]float64, len(pairs))
	for i, pair := range pairs {
		out[pair] = ks[i]
	}
	return out, nil
}

// CircuitWithCouplings returns a clone of the circuit with the K elements
// set from extracted coupling factors (step 4's input).
func (p *Project) CircuitWithCouplings(ks map[[2]string]float64) *netlist.Circuit {
	ckt := p.Circuit.Clone()
	// Deterministic insertion order.
	pairs := make([][2]string, 0, len(ks))
	for pair := range ks {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, pair := range pairs {
		la, lb := p.InductorOf[pair[0]], p.InductorOf[pair[1]]
		if la == "" || lb == "" {
			continue
		}
		ckt.SetCoupling(la, lb, ks[pair])
	}
	return ckt
}

// CapPairs returns every unordered pair of components with distinct hot
// nodes — the candidates for capacitive body coupling.
func (p *Project) CapPairs() [][2]string {
	refs := make([]string, 0, len(p.HotNodeOf))
	for ref := range p.HotNodeOf {
		refs = append(refs, ref)
	}
	sort.Strings(refs)
	var out [][2]string
	for i := 0; i < len(refs); i++ {
		for j := i + 1; j < len(refs); j++ {
			if p.HotNodeOf[refs[i]] != p.HotNodeOf[refs[j]] {
				out = append(out, [2]string{refs[i], refs[j]})
			}
		}
	}
	return out
}

// capExtractionMaxDist bounds the capacitive extraction: body pairs
// farther apart couple through well below a femtofarad and are skipped.
const capExtractionMaxDist = 0.06

// ExtractBodyCapacitances computes the panel-method coupling capacitances
// of the given component pairs from the current placement.
func (p *Project) ExtractBodyCapacitances(pairs [][2]string) (map[[2]string]float64, error) {
	out := map[[2]string]float64{}
	for _, pair := range pairs {
		ca, cb := p.Design.Find(pair[0]), p.Design.Find(pair[1])
		if ca == nil || cb == nil {
			return nil, fmt.Errorf("core: unknown pair %v", pair)
		}
		if !ca.Placed || !cb.Placed || ca.Board != cb.Board ||
			ca.Center.Dist(cb.Center) > capExtractionMaxDist {
			continue
		}
		ia := &components.Instance{Ref: pair[0], Model: p.Models[pair[0]], Center: ca.Center, Rot: ca.Rot}
		ib := &components.Instance{Ref: pair[1], Model: p.Models[pair[1]], Center: cb.Center, Rot: cb.Rot}
		if ia.Model == nil || ib.Model == nil {
			return nil, fmt.Errorf("core: pair %v lacks models", pair)
		}
		c, err := components.BodyCapacitance(ia, ib, 0)
		if err != nil {
			return nil, err
		}
		if c > 1e-18 {
			out[pair] = c
		}
	}
	return out, nil
}

// PredictOptions configures an interference prediction.
type PredictOptions struct {
	WithCouplings  bool
	WithCapacitive bool        // include panel-method body capacitances
	Pairs          [][2]string // nil = all mapped pairs
	MaxFreq        float64
}

// Predict runs the conducted-emission prediction — without couplings it is
// the paper's Figure 13 (no correlation with measurement), with couplings
// its Figure 14.
func (p *Project) Predict(opt PredictOptions) (*emi.Spectrum, error) {
	return p.PredictCtx(context.Background(), opt)
}

// PredictCtx is Predict with cancellation: coupling extraction and the
// harmonic solves both stop once ctx is done.
func (p *Project) PredictCtx(ctx context.Context, opt PredictOptions) (*emi.Spectrum, error) {
	ckt, err := p.buildPredictionCircuit(ctx, opt)
	if err != nil {
		return nil, err
	}
	if opt.WithCapacitive {
		cs, err := p.ExtractBodyCapacitances(p.CapPairs())
		if err != nil {
			return nil, err
		}
		pairs := make([][2]string, 0, len(cs))
		for pair := range cs {
			pairs = append(pairs, pair)
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i][0] != pairs[j][0] {
				return pairs[i][0] < pairs[j][0]
			}
			return pairs[i][1] < pairs[j][1]
		})
		for _, pair := range pairs {
			ckt.AddC("Ccap_"+pair[0]+"_"+pair[1],
				p.HotNodeOf[pair[0]], p.HotNodeOf[pair[1]], cs[pair])
		}
	}
	pred := &emi.Predictor{
		Circuit:     ckt,
		Sources:     p.Sources,
		MeasureNode: p.MeasureNode,
		MaxFreq:     opt.MaxFreq,
		Solver:      p.Solver,
	}
	return pred.SpectrumCtx(ctx)
}

// buildPredictionCircuit assembles the circuit variant an option set asks
// for (shared by the frequency- and time-domain predictions).
func (p *Project) buildPredictionCircuit(ctx context.Context, opt PredictOptions) (*netlist.Circuit, error) {
	ckt := p.Circuit.Clone()
	if opt.WithCouplings {
		pairs := opt.Pairs
		if pairs == nil {
			pairs = p.AllPairs()
		}
		ks, err := p.ExtractCouplingsCtx(ctx, pairs)
		if err != nil {
			return nil, err
		}
		ckt = p.CircuitWithCouplings(ks)
	} else {
		ckt.RemoveCouplings()
	}
	return ckt, nil
}

// PredictTransient cross-checks the harmonic-domain prediction by brute
// force: the same circuit is simulated in the time domain (the switching
// sources run their PULSE waveforms directly) and a CISPR-16-style
// measuring receiver with the given detector is tuned across the first
// harmonics. Startup transients are part of the waveform; the receiver's
// settling exclusion and the simulated duration must be chosen together
// (duration = periods of the first source's switching period).
func (p *Project) PredictTransient(opt PredictOptions, periods int, dt float64, det emi.Detector, harmonics int) (*emi.Spectrum, error) {
	ckt, err := p.buildPredictionCircuit(context.Background(), opt)
	if err != nil {
		return nil, err
	}
	if len(p.Sources) == 0 {
		return nil, fmt.Errorf("core: no switching sources")
	}
	src := ckt.Find(p.Sources[0])
	if src == nil || src.Src == nil || src.Src.Pulse == nil || src.Src.Pulse.Period <= 0 {
		return nil, fmt.Errorf("core: source %q has no periodic pulse", p.Sources[0])
	}
	period := src.Src.Pulse.Period
	res, err := transient.Simulate(ckt, transient.Options{
		Step:   dt,
		End:    float64(periods) * period,
		InitDC: true,
	})
	if err != nil {
		return nil, err
	}
	wave := res.Node(p.MeasureNode)
	if wave == nil {
		return nil, fmt.Errorf("core: measurement node %q not in circuit", p.MeasureNode)
	}
	// Exclude the remaining periodic-steady-state buildup: keep the last
	// two thirds for the receiver.
	wave = wave[len(wave)/3:]
	f1 := 1 / period
	freqs := make([]float64, harmonics)
	for k := range freqs {
		freqs[k] = float64(k+1) * f1
	}
	// Resolution: a tenth of the harmonic spacing keeps the skirt leakage
	// of strong neighbouring lines below the weakest harmonics of
	// interest (the receiver's 4-pole selectivity is ≈ 90 dB one line
	// away at this ratio); shortened detector time constants fit the
	// simulated duration.
	band := emi.ReceiverBand{
		Name:        "sim",
		RBW:         f1 / 10,
		ChargeTC:    2 * period,
		DischargeTC: 40 * period,
		MeterTC:     20 * period,
	}
	return emi.MeasureSpectrum(wave, dt, freqs, det, &band)
}

// VirtualMeasurement stands in for the paper's CISPR 25 lab measurement:
// the complete coupled model plus a deterministic receiver ripple.
func (p *Project) VirtualMeasurement(maxFreq, rippleDB float64, seed uint64) (*emi.Spectrum, error) {
	full, err := p.Predict(PredictOptions{WithCouplings: true, MaxFreq: maxFreq})
	if err != nil {
		return nil, err
	}
	return emi.Measured(full, rippleDB, seed), nil
}

// RankCouplings runs the sensitivity analysis (step 2) over the mapped
// inductors and returns the ranking in component-reference terms.
func (p *Project) RankCouplings(probeK, maxFreq float64) (sensitivity.Ranking, error) {
	return p.RankCouplingsCtx(context.Background(), probeK, maxFreq)
}

// RankCouplingsCtx is RankCouplings with cancellation.
func (p *Project) RankCouplingsCtx(ctx context.Context, probeK, maxFreq float64) (sensitivity.Ranking, error) {
	refOf := map[string]string{}
	var cands []string
	for ref, ind := range p.InductorOf {
		refOf[ind] = ref
		cands = append(cands, ind)
	}
	sort.Strings(cands)
	if len(p.Sources) == 0 {
		return nil, fmt.Errorf("core: project has no switching sources")
	}
	base := p.Circuit.Clone()
	base.RemoveCouplings()
	rank, err := sensitivity.RankCtx(ctx, base, p.Sources[0], p.MeasureNode, sensitivity.Options{
		ProbeK:     probeK,
		MaxFreq:    maxFreq,
		Candidates: cands,
	})
	if err != nil {
		return nil, err
	}
	// Translate inductor names back to component references.
	for i := range rank {
		rank[i].LA = refOf[rank[i].LA]
		rank[i].LB = refOf[rank[i].LB]
	}
	return rank, nil
}

// DeriveRules computes PEMD minimum-distance rules (step 5) for the given
// component pairs and installs them in the design. Pairs that never exceed
// kMax are skipped. Returns the number of rules added.
func (p *Project) DeriveRules(pairs [][2]string, kMax float64) (int, error) {
	if p.Design.Rules == nil {
		p.Design.Rules = rules.NewSet(nil)
	}
	added := 0
	for _, pair := range pairs {
		ma, mb := p.Models[pair[0]], p.Models[pair[1]]
		if ma == nil || mb == nil {
			return added, fmt.Errorf("core: pair %v lacks PEEC models", pair)
		}
		pemd, err := rules.DerivePEMD(ma, mb, rules.DeriveOptions{KMax: kMax, Order: p.Order})
		if err != nil {
			return added, err
		}
		if pemd <= 0 {
			continue
		}
		p.Design.Rules.Add(rules.Rule{RefA: pair[0], RefB: pair[1], PEMD: pemd})
		added++
	}
	return added, nil
}

// AutoPlace runs the placement tool (step 6) on the design.
func (p *Project) AutoPlace(opt place.Options) (*place.Result, error) {
	return place.AutoPlace(p.Design, opt)
}

// AutoPlaceCtx is AutoPlace with cancellation (see place.AutoPlaceCtx).
func (p *Project) AutoPlaceCtx(ctx context.Context, opt place.Options) (*place.Result, error) {
	return place.AutoPlaceCtx(ctx, p.Design, opt)
}

// Verify runs the final design-rule check.
func (p *Project) Verify() *drc.Report {
	return drc.Check(p.Design)
}
