package core

import (
	"context"
	"math"
	"testing"
)

// TestExtractCouplingsHierMatchesExact: switching a project to the
// hierarchical evaluator must reproduce the exact coupling factors
// within the theta-controlled tolerance, with and without a ground
// plane; theta = 0 must stay bit-identical to the legacy path.
func TestExtractCouplingsHierMatchesExact(t *testing.T) {
	t.Parallel()
	for _, plane := range []bool{false, true} {
		p := testProject()
		placeBoth(p, 0.025, 0)
		if plane {
			z := -0.002
			p.GroundPlane = &z
		}
		exact, err := p.ExtractCouplings(p.AllPairs())
		if err != nil {
			t.Fatal(err)
		}

		p.CouplingTheta = 0.25
		hier, err := p.ExtractCouplings(p.AllPairs())
		if err != nil {
			t.Fatal(err)
		}
		for pair, ke := range exact {
			kh := hier[pair]
			if ke == 0 {
				t.Fatalf("plane=%v: exact coupling for %v is zero", plane, pair)
			}
			if rel := math.Abs(kh-ke) / math.Abs(ke); rel > 0.05 {
				t.Errorf("plane=%v pair %v: exact k=%g hier k=%g (rel %g)",
					plane, pair, ke, kh, rel)
			}
		}

		// theta = 0 is the legacy path, bit-for-bit.
		p.CouplingTheta = 0
		again, err := p.ExtractCouplings(p.AllPairs())
		if err != nil {
			t.Fatal(err)
		}
		for pair, ke := range exact {
			if again[pair] != ke {
				t.Errorf("plane=%v pair %v: theta=0 not bit-exact: %g vs %g",
					plane, pair, again[pair], ke)
			}
		}
	}
}

// TestExtractCouplingsHierCancellation: the hierarchical path honours
// context cancellation like the exact one.
func TestExtractCouplingsHierCancellation(t *testing.T) {
	t.Parallel()
	p := testProject()
	placeBoth(p, 0.025, 0)
	p.CouplingTheta = 0.3
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.ExtractCouplingsCtx(ctx, p.AllPairs()); err == nil {
		t.Fatal("cancelled extraction should fail")
	}
}

// TestToleranceYieldCtxCancellation: the Monte-Carlo yield analysis no
// longer bypasses cancellation through its internal extraction call.
func TestToleranceYieldCtxCancellation(t *testing.T) {
	t.Parallel()
	p := testProject()
	placeBoth(p, 0.025, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.ToleranceYieldCtx(ctx, ToleranceOptions{N: 2, MaxFreq: 1e6}); err == nil {
		t.Fatal("cancelled yield analysis should fail")
	}
}
