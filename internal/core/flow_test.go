package core

import (
	"math"
	"testing"

	"repro/internal/components"
	"repro/internal/emi"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/rules"
)

// testProject builds a minimal two-capacitor filter project: small, fast,
// and exercising every step of the flow.
func testProject() *Project {
	capModel := components.NewX2Cap("X2", 1e-6)
	models := map[string]components.Model{
		"C1": capModel,
		"C2": capModel,
	}

	d := &layout.Design{
		Name:      "mini filter",
		Boards:    1,
		Clearance: 1e-3,
		Areas: []layout.Area{
			{Name: "board", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, 0.08, 0.06))},
		},
		Rules: rules.NewSet(nil),
	}
	for _, ref := range []string{"C1", "C2"} {
		w, l, h := capModel.Size()
		d.Comps = append(d.Comps, &layout.Component{
			Ref: ref, W: w, L: l, H: h, Axis: capModel.MagneticAxis(0),
		})
	}

	c := &netlist.Circuit{Title: "mini"}
	c.AddV("Vbat", "bat", "0", netlist.Source{DC: 12})
	emi.AddLISN(c, "lisn", "bat", "vin")
	c.AddC("Cc1", "vin", "x1", capModel.C)
	c.AddL("Lc1", "x1", "0", capModel.EffectiveESL())
	c.AddL("Lf", "vin", "vdd", 22e-6)
	c.AddC("Cc2", "vdd", "x2", capModel.C)
	c.AddL("Lc2", "x2", "0", capModel.EffectiveESL())
	c.AddV("Vsw", "sw", "0", netlist.Source{Pulse: &netlist.Pulse{
		V1: 0, V2: 12, Rise: 30e-9, Fall: 30e-9, Width: 2e-6, Period: 5e-6,
	}})
	c.AddL("Lloop", "sw", "swl", 40e-9)
	c.AddR("Rloop", "swl", "vdd", 0.2)

	return &Project{
		Design:  d,
		Circuit: c,
		Models:  models,
		InductorOf: map[string]string{
			"C1": "Lc1",
			"C2": "Lc2",
		},
		Sources:     []string{"Vsw"},
		MeasureNode: "lisn_meas",
	}
}

func placeBoth(p *Project, d2 float64, rot2 float64) {
	c1, c2 := p.Design.Find("C1"), p.Design.Find("C2")
	c1.Placed, c1.Center = true, geom.V2(0.02, 0.03)
	c2.Placed, c2.Center, c2.Rot = true, geom.V2(0.02+d2, 0.03), rot2
}

func TestValidateCatchesInconsistencies(t *testing.T) {
	t.Parallel()
	p := testProject()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid project rejected: %v", err)
	}
	p1 := testProject()
	p1.InductorOf["C9"] = "Lc1"
	if err := p1.Validate(); err == nil {
		t.Error("unknown component in InductorOf not caught")
	}
	p2 := testProject()
	p2.InductorOf["C1"] = "Rloop"
	if err := p2.Validate(); err == nil {
		t.Error("non-inductor mapping not caught")
	}
	p3 := testProject()
	delete(p3.Models, "C1")
	if err := p3.Validate(); err == nil {
		t.Error("missing model not caught")
	}
	p4 := testProject()
	p4.Sources = []string{"Rloop"}
	if err := p4.Validate(); err == nil {
		t.Error("bad source not caught")
	}
}

func TestInstanceOfRequiresPlacement(t *testing.T) {
	t.Parallel()
	p := testProject()
	if _, err := p.InstanceOf("C1"); err == nil {
		t.Error("unplaced instance should error")
	}
	placeBoth(p, 0.02, 0)
	inst, err := p.InstanceOf("C1")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Center != geom.V2(0.02, 0.03) {
		t.Errorf("instance center = %v", inst.Center)
	}
	if _, err := p.InstanceOf("zz"); err == nil {
		t.Error("unknown ref should error")
	}
}

func TestExtractCouplingsGeometryDependence(t *testing.T) {
	t.Parallel()
	p := testProject()
	placeBoth(p, 0.02, 0)
	near, err := p.ExtractCouplings(p.AllPairs())
	if err != nil {
		t.Fatal(err)
	}
	kNear := math.Abs(near[[2]string{"C1", "C2"}])
	if kNear == 0 {
		t.Fatal("no coupling extracted")
	}
	// Further apart: weaker.
	placeBoth(p, 0.05, 0)
	far, _ := p.ExtractCouplings(p.AllPairs())
	if kFar := math.Abs(far[[2]string{"C1", "C2"}]); kFar >= kNear {
		t.Errorf("k did not decay: %v vs %v", kFar, kNear)
	}
	// Orthogonal rotation: near zero.
	placeBoth(p, 0.02, math.Pi/2)
	orth, _ := p.ExtractCouplings(p.AllPairs())
	if kOrth := math.Abs(orth[[2]string{"C1", "C2"}]); kOrth > 0.05*kNear {
		t.Errorf("orthogonal k = %v not << %v", kOrth, kNear)
	}
}

func TestPredictWithAndWithoutCouplings(t *testing.T) {
	t.Parallel()
	p := testProject()
	placeBoth(p, 0.022, 0) // close, parallel: strong coupling
	sNo, err := p.Predict(PredictOptions{WithCouplings: false, MaxFreq: 60e6})
	if err != nil {
		t.Fatal(err)
	}
	sYes, err := p.Predict(PredictOptions{WithCouplings: true, MaxFreq: 60e6})
	if err != nil {
		t.Fatal(err)
	}
	// Couplings must raise the high-frequency emissions substantially —
	// the Figure 12/13 divergence.
	_, hNo := sNo.InBand(10e6, 60e6).Max()
	_, hYes := sYes.InBand(10e6, 60e6).Max()
	if hYes < hNo+6 {
		t.Errorf("couplings should raise HF levels: %v vs %v", hYes, hNo)
	}
	// The virtual measurement correlates with the coupled prediction
	// (Figure 14) and deviates from the uncoupled one (Figure 13).
	meas, err := p.VirtualMeasurement(60e6, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	cmpYes := emi.Compare(meas, sYes)
	cmpNo := emi.Compare(meas, sNo)
	if cmpYes.MaxAbsDelta > 2.5 {
		t.Errorf("coupled prediction should track measurement: %+v", cmpYes)
	}
	if cmpNo.MaxAbsDelta < 2*cmpYes.MaxAbsDelta {
		t.Errorf("uncoupled prediction should deviate: %+v vs %+v", cmpNo, cmpYes)
	}
}

func TestRankCouplingsMapsRefs(t *testing.T) {
	t.Parallel()
	p := testProject()
	rank, err := p.RankCouplings(0.01, 30e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rank) != 1 {
		t.Fatalf("rank = %+v", rank)
	}
	if rank[0].LA != "C1" || rank[0].LB != "C2" {
		t.Errorf("pair = %s/%s, want component refs", rank[0].LA, rank[0].LB)
	}
	if rank[0].DeltaDB <= 0 {
		t.Errorf("influence = %v", rank[0].DeltaDB)
	}
}

func TestDeriveRulesAndAutoPlace(t *testing.T) {
	t.Parallel()
	p := testProject()
	n, err := p.DeriveRules(p.AllPairs(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || p.Design.RuleCount() != 1 {
		t.Fatalf("rules derived = %d", n)
	}
	pemd, ok := p.Design.Rules.Lookup("C1", "C2")
	if !ok || pemd < 5e-3 || pemd > 0.1 {
		t.Errorf("PEMD = %v", pemd)
	}
	res, err := p.AutoPlace(place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 2 {
		t.Errorf("placed = %d", res.Placed)
	}
	if rep := p.Verify(); !rep.Green() {
		t.Errorf("placed design not green:\n%s", rep)
	}
}

func TestCircuitWithCouplingsDeterministic(t *testing.T) {
	t.Parallel()
	p := testProject()
	ks := map[[2]string]float64{{"C1", "C2"}: 0.042}
	c1 := p.CircuitWithCouplings(ks)
	k := c1.Find("K_Lc1_Lc2")
	if k == nil {
		// Name may differ; look for any K element.
		for _, e := range c1.Elements {
			if e.Kind == netlist.K {
				k = e
			}
		}
	}
	if k == nil || k.Coup != 0.042 {
		t.Fatalf("K element = %+v", k)
	}
	// The source circuit is untouched.
	for _, e := range p.Circuit.Elements {
		if e.Kind == netlist.K {
			t.Error("CircuitWithCouplings mutated the project circuit")
		}
	}
}

func TestScanFields(t *testing.T) {
	t.Parallel()
	p := testProject()
	placeBoth(p, 0.03, 0)
	scan, err := p.ScanFields(0, 0.005, 17, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Grid) != 13 || len(scan.Grid[0]) != 17 {
		t.Fatalf("grid = %dx%d", len(scan.Grid), len(scan.Grid[0]))
	}
	pos, peak := scan.MaxAt()
	if peak <= 0 {
		t.Fatal("no field found")
	}
	// The hot spot sits near one of the two capacitors, not at a corner.
	d1 := pos.Dist(p.Design.Find("C1").Center)
	d2 := pos.Dist(p.Design.Find("C2").Center)
	if math.Min(d1, d2) > 0.015 {
		t.Errorf("hot spot at %v far from both components", pos)
	}
	// The heatmap renders.
	svg := scan.HeatmapSVG()
	if len(svg) < 100 || svg[:4] != "<svg" {
		t.Errorf("heatmap SVG malformed")
	}
	// Unplaced project errors.
	p2 := testProject()
	if _, err := p2.ScanFields(0, 0.005, 5, 5); err == nil {
		t.Error("scan of unplaced design should fail")
	}
}

func TestGroundPlaneChangesExtraction(t *testing.T) {
	t.Parallel()
	p := testProject()
	placeBoth(p, 0.022, 0)
	free, err := p.ExtractCouplings(p.AllPairs())
	if err != nil {
		t.Fatal(err)
	}
	z := -0.5e-3
	p.GroundPlane = &z
	shielded, err := p.ExtractCouplings(p.AllPairs())
	if err != nil {
		t.Fatal(err)
	}
	kf := free[[2]string{"C1", "C2"}]
	ks := shielded[[2]string{"C1", "C2"}]
	if kf == ks {
		t.Errorf("ground plane had no effect: %v", kf)
	}
	// A very distant plane converges to free space.
	zFar := -1.0
	p.GroundPlane = &zFar
	far, err := p.ExtractCouplings(p.AllPairs())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(far[[2]string{"C1", "C2"}]-kf) > 1e-3*math.Abs(kf) {
		t.Errorf("distant plane should converge to free space: %v vs %v",
			far[[2]string{"C1", "C2"}], kf)
	}
}

func TestCapPairsAndCapacitiveValidation(t *testing.T) {
	t.Parallel()
	p := testProject()
	p.HotNodeOf = map[string]string{"C1": "vin", "C2": "vdd"}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid hot nodes rejected: %v", err)
	}
	pairs := p.CapPairs()
	if len(pairs) != 1 || pairs[0] != [2]string{"C1", "C2"} {
		t.Errorf("CapPairs = %v", pairs)
	}
	// Same-node pairs are excluded.
	p.HotNodeOf["C2"] = "vin"
	if len(p.CapPairs()) != 0 {
		t.Error("same-node pair should be excluded")
	}
	// Validation catches bad mappings.
	p.HotNodeOf = map[string]string{"C9": "vin"}
	if err := p.Validate(); err == nil {
		t.Error("unknown component in HotNodeOf not caught")
	}
	p.HotNodeOf = map[string]string{"C1": "nowhere"}
	if err := p.Validate(); err == nil {
		t.Error("unknown node in HotNodeOf not caught")
	}
}

func TestExtractBodyCapacitances(t *testing.T) {
	t.Parallel()
	p := testProject()
	p.HotNodeOf = map[string]string{"C1": "vin", "C2": "vdd"}
	placeBoth(p, 0.025, 0)
	cs, err := p.ExtractBodyCapacitances(p.CapPairs())
	if err != nil {
		t.Fatal(err)
	}
	cNear := cs[[2]string{"C1", "C2"}]
	if cNear < 1e-15 || cNear > 10e-12 {
		t.Fatalf("body capacitance = %v F", cNear)
	}
	// Farther apart: smaller; beyond the extraction horizon: skipped.
	placeBoth(p, 0.045, 0)
	cs, _ = p.ExtractBodyCapacitances(p.CapPairs())
	if cFar := cs[[2]string{"C1", "C2"}]; cFar >= cNear {
		t.Errorf("capacitance did not decay: %v vs %v", cFar, cNear)
	}
	c2 := p.Design.Find("C2")
	c2.Center = geom.V2(0.02+0.08, 0.03) // 80 mm: beyond the horizon
	cs, _ = p.ExtractBodyCapacitances(p.CapPairs())
	if _, ok := cs[[2]string{"C1", "C2"}]; ok {
		t.Error("distant pair should be skipped")
	}
}

func TestPredictWithCapacitive(t *testing.T) {
	t.Parallel()
	p := testProject()
	p.HotNodeOf = map[string]string{"C1": "vin", "C2": "vdd"}
	placeBoth(p, 0.022, math.Pi/2) // orthogonal: magnetics quiet
	sBase, err := p.Predict(PredictOptions{WithCouplings: true, MaxFreq: 108e6})
	if err != nil {
		t.Fatal(err)
	}
	sCap, err := p.Predict(PredictOptions{WithCouplings: true, WithCapacitive: true, MaxFreq: 108e6})
	if err != nil {
		t.Fatal(err)
	}
	// The body capacitance is a high-frequency mechanism: it must move
	// the top of the band measurably while leaving the low band alone.
	// (The direction on this contrived two-node circuit depends on
	// resonance detuning; the realistic aggressor-victim direction is
	// asserted in internal/buck.)
	_, loBase := sBase.InBand(150e3, 2e6).Max()
	_, loCap := sCap.InBand(150e3, 2e6).Max()
	if math.Abs(loCap-loBase) > 0.5 {
		t.Errorf("capacitive path should not move the low band: %.1f vs %.1f dBµV", loCap, loBase)
	}
	_, hiBase := sBase.InBand(50e6, 108e6).Max()
	_, hiCap := sCap.InBand(50e6, 108e6).Max()
	if math.Abs(hiCap-hiBase) < 1 {
		t.Errorf("capacitive path should move the HF band: %.1f vs %.1f dBµV", hiCap, hiBase)
	}
}

// dampedProject builds a project whose circuit has no high-Q resonance, so
// the time-domain simulation reaches periodic steady state within a few
// switching periods — the clean setting for cross-validating the two
// prediction paths.
func dampedProject() *Project {
	capModel := components.NewMLCC("MLCC", 100e-9)
	d := &layout.Design{
		Name:   "damped",
		Boards: 1,
		Areas: []layout.Area{
			{Name: "b", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, 0.05, 0.05))},
		},
		Rules: rules.NewSet(nil),
	}
	w, l, h := capModel.Size()
	d.Comps = append(d.Comps, &layout.Component{Ref: "C1", W: w, L: l, H: h, Axis: capModel.MagneticAxis(0)})

	c := &netlist.Circuit{Title: "damped"}
	c.AddV("Vsw", "sw", "0", netlist.Source{Pulse: &netlist.Pulse{
		V1: 0, V2: 5, Rise: 50e-9, Fall: 50e-9, Width: 2e-6, Period: 5e-6,
	}})
	c.AddR("R1", "sw", "mid", 220)
	c.AddC("C1", "mid", "0", 100e-9)
	c.AddR("R2", "mid", "meas", 100)
	c.AddR("Rm", "meas", "0", 50)
	return &Project{
		Design:      d,
		Circuit:     c,
		Models:      map[string]components.Model{"C1": capModel},
		InductorOf:  map[string]string{},
		Sources:     []string{"Vsw"},
		MeasureNode: "meas",
	}
}

// TestTransientCrossValidatesPredictor is the strongest internal
// consistency check of the repository: the harmonic-domain predictor (MNA
// per harmonic, analytic trapezoid Fourier coefficients) and the
// time-domain path (trapezoidal integration + CISPR-16-style receiver)
// are fully independent implementations and must agree on a circuit that
// reaches periodic steady state.
func TestTransientCrossValidatesPredictor(t *testing.T) {
	t.Parallel()
	p := dampedProject()
	const nHarm = 8
	sFreq, err := p.Predict(PredictOptions{MaxFreq: float64(nHarm+1) * 200e3})
	if err != nil {
		t.Fatal(err)
	}
	sTime, err := p.PredictTransient(PredictOptions{}, 80, 5e-9, emi.Peak, nHarm)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < nHarm; k++ {
		if d := math.Abs(sTime.DB[k] - sFreq.DB[k]); d > 2 {
			t.Errorf("harmonic %d (%.0f kHz): freq %.1f vs time %.1f dBµV (Δ %.1f)",
				k+1, sFreq.Freqs[k]/1e3, sFreq.DB[k], sTime.DB[k], d)
		}
	}
}

func TestPredictTransientErrors(t *testing.T) {
	t.Parallel()
	p := dampedProject()
	p.Sources = nil
	if _, err := p.PredictTransient(PredictOptions{}, 10, 5e-9, emi.Peak, 2); err == nil {
		t.Error("no sources should fail")
	}
	p = dampedProject()
	p.Sources = []string{"Rm"}
	if _, err := p.PredictTransient(PredictOptions{}, 10, 5e-9, emi.Peak, 2); err == nil {
		t.Error("non-pulse source should fail")
	}
	p = dampedProject()
	p.MeasureNode = "nope"
	if _, err := p.PredictTransient(PredictOptions{}, 10, 5e-9, emi.Peak, 2); err == nil {
		t.Error("unknown measure node should fail")
	}
}

func TestMappedRefsAndAllPairs(t *testing.T) {
	t.Parallel()
	p := testProject()
	refs := p.MappedRefs()
	if len(refs) != 2 || refs[0] != "C1" || refs[1] != "C2" {
		t.Errorf("MappedRefs = %v", refs)
	}
	pairs := p.AllPairs()
	if len(pairs) != 1 || pairs[0] != [2]string{"C1", "C2"} {
		t.Errorf("AllPairs = %v", pairs)
	}
}
