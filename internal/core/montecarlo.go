package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/emi"
	"repro/internal/netlist"
)

// ToleranceOptions configures the Monte-Carlo yield analysis.
type ToleranceOptions struct {
	N           int     // samples; 0 = 100
	Seed        int64   // RNG seed (deterministic)
	RLCTol      float64 // relative uniform tolerance on R/L/C values; 0 = 0.10
	CouplingTol float64 // relative uniform tolerance on extracted k; 0 = 0.20
	MaxFreq     float64 // 0 = CISPR band stop

	// Exclude skips elements from perturbation (calibrated measurement
	// equipment). nil excludes every element whose name contains "lisn".
	Exclude func(name string) bool
}

// YieldResult summarises the Monte-Carlo run.
type YieldResult struct {
	N            int
	Pass         int       // samples meeting the CISPR limits everywhere
	WorstMargins []float64 // per-sample worst margin, sorted ascending
}

// Yield returns the pass fraction.
func (y *YieldResult) Yield() float64 {
	if y.N == 0 {
		return 0
	}
	return float64(y.Pass) / float64(y.N)
}

// Percentile returns the q-quantile (0..1) of the worst margins.
func (y *YieldResult) Percentile(q float64) float64 {
	if len(y.WorstMargins) == 0 {
		return 0
	}
	idx := int(q * float64(len(y.WorstMargins)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(y.WorstMargins) {
		idx = len(y.WorstMargins) - 1
	}
	return y.WorstMargins[idx]
}

// ToleranceYield runs a Monte-Carlo tolerance analysis of the coupled
// prediction: component values and extracted coupling factors are
// perturbed uniformly within their tolerances and the CISPR 25 worst
// margin is evaluated per sample. This turns the paper's "statement on
// achievable performance with the given components" into a pass yield.
func (p *Project) ToleranceYield(opt ToleranceOptions) (*YieldResult, error) {
	return p.ToleranceYieldCtx(context.Background(), opt)
}

// ToleranceYieldCtx is ToleranceYield with cancellation: the initial
// coupling extraction and every per-sample spectrum solve stop once ctx
// is done, and the context's error is returned.
func (p *Project) ToleranceYieldCtx(ctx context.Context, opt ToleranceOptions) (*YieldResult, error) {
	n := opt.N
	if n <= 0 {
		n = 100
	}
	rlcTol := opt.RLCTol
	if rlcTol == 0 {
		rlcTol = 0.10
	}
	kTol := opt.CouplingTol
	if kTol == 0 {
		kTol = 0.20
	}
	exclude := opt.Exclude
	if exclude == nil {
		exclude = func(name string) bool {
			return strings.Contains(strings.ToLower(name), "lisn")
		}
	}

	ks, err := p.ExtractCouplingsCtx(ctx, p.AllPairs())
	if err != nil {
		return nil, err
	}
	pairs := make([][2]string, 0, len(ks))
	for pair := range ks {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})

	rng := rand.New(rand.NewSource(opt.Seed))
	jitter := func(tol float64) float64 { return 1 + tol*(2*rng.Float64()-1) }

	res := &YieldResult{N: n}
	for s := 0; s < n; s++ {
		ckt := p.CircuitWithCouplings(ks)
		for _, e := range ckt.Elements {
			switch e.Kind {
			case netlist.R, netlist.L, netlist.C:
				if !exclude(e.Name) {
					e.Value *= jitter(rlcTol)
				}
			case netlist.K:
				e.Coup *= jitter(kTol)
				if e.Coup > 1 {
					e.Coup = 1
				} else if e.Coup < -1 {
					e.Coup = -1
				}
			}
		}
		spec, err := (&emi.Predictor{
			Circuit:     ckt,
			Sources:     p.Sources,
			MeasureNode: p.MeasureNode,
			MaxFreq:     opt.MaxFreq,
		}).SpectrumCtx(ctx)
		if err != nil {
			return nil, fmt.Errorf("core: sample %d: %w", s, err)
		}
		m := spec.WorstMargin()
		res.WorstMargins = append(res.WorstMargins, m)
		if m >= 0 {
			res.Pass++
		}
	}
	sort.Float64s(res.WorstMargins)
	return res, nil
}
