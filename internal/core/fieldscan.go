package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/peec"
)

// FieldScan is a virtual near-field scan: the magnetic stray field of all
// placed, magnetically active components, sampled on a grid at probe
// height above the board — the simulation counterpart of the near-field
// scanners used to locate EMI hot spots on real boards (and the board-level
// generalisation of the paper's Figure 4 flux picture).
type FieldScan struct {
	Window geom.Rect   // scanned region
	Height float64     // probe height above the board
	Grid   [][]float64 // |B| in tesla per ampere of reference current, [iy][ix]
}

// MaxAt returns the strongest sample and its position.
func (f *FieldScan) MaxAt() (geom.Vec2, float64) {
	best := geom.Vec2{}
	max := 0.0
	ny := len(f.Grid)
	if ny == 0 {
		return best, 0
	}
	nx := len(f.Grid[0])
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			if f.Grid[iy][ix] > max {
				max = f.Grid[iy][ix]
				best = geom.V2(
					f.Window.Min.X+f.Window.W()*float64(ix)/float64(nx-1),
					f.Window.Min.Y+f.Window.H()*float64(iy)/float64(ny-1),
				)
			}
		}
	}
	return best, max
}

// ScanFields computes the near-field scan of the project's board at the
// given probe height with an nx×ny grid. Every mapped component's PEEC
// structure contributes with unit current (a relative hot-spot map; the
// absolute field scales with the actual branch currents).
func (p *Project) ScanFields(board int, height float64, nx, ny int) (*FieldScan, error) {
	var conductors []*peec.Conductor
	for _, ref := range p.MappedRefs() {
		c := p.Design.Find(ref)
		if c == nil || !c.Placed || c.Board != board {
			continue
		}
		inst, err := p.InstanceOf(ref)
		if err != nil {
			return nil, err
		}
		cond := inst.Conductor()
		if len(cond.Segments) > 0 {
			conductors = append(conductors, cond)
		}
	}
	if len(conductors) == 0 {
		return nil, fmt.Errorf("core: no magnetic components placed on board %d", board)
	}
	var window geom.Rect
	first := true
	for _, a := range p.Design.AreasOf(board, "") {
		if first {
			window = a.Poly.BBox()
			first = false
		} else {
			window = window.Union(a.Poly.BBox())
		}
	}
	scan := &FieldScan{
		Window: window,
		Height: height,
		Grid:   peec.FieldMap(conductors, window, height, nx, ny),
	}
	return scan, nil
}

// HeatmapSVG renders the scan as a color-mapped SVG with a dB scale
// relative to the peak.
func (f *FieldScan) HeatmapSVG() string {
	ny := len(f.Grid)
	if ny == 0 {
		return "<svg xmlns=\"http://www.w3.org/2000/svg\"/>"
	}
	nx := len(f.Grid[0])
	_, peak := f.MaxAt()
	if peak == 0 {
		peak = 1
	}
	const cell = 8.0
	out := fmt.Sprintf(`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f">`,
		float64(nx)*cell, float64(ny)*cell)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			db := 20 * math.Log10(math.Max(f.Grid[iy][ix], peak*1e-4)/peak) // 0..-80 dB
			t := 1 + db/80                                                  // 1 at peak, 0 at -80 dB
			if t < 0 {
				t = 0
			}
			r := int(255 * t)
			b := int(255 * (1 - t))
			out += fmt.Sprintf(`<rect x="%.0f" y="%.0f" width="%.0f" height="%.0f" fill="rgb(%d,40,%d)"/>`,
				float64(ix)*cell, float64(ny-1-iy)*cell, cell, cell, r, b)
		}
	}
	return out + "</svg>"
}
