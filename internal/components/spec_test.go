package components

import (
	"math"
	"testing"
)

// TestParseSpecVocabulary pins the spec grammar: every catalog form
// parses, the model's Name round-trips the spec, and malformed specs are
// rejected.
func TestParseSpecVocabulary(t *testing.T) {
	t.Parallel()
	valid := []string{
		"x2cap:1.5u", "tantalum:100u", "mlcc:100n",
		"bobbin:10:4", "cmchoke2", "cmchoke3",
	}
	for _, s := range valid {
		m, err := ParseSpec(s)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", s, err)
			continue
		}
		if m.Name() != s {
			t.Errorf("ParseSpec(%q).Name() = %q, spec does not round-trip", s, m.Name())
		}
	}
	invalid := []string{
		"", "x2cap", "x2cap:-1u", "x2cap:huge", "bobbin:10",
		"bobbin:0:4", "bobbin:10:-4", "cmchoke2:5", "resistor:1k",
	}
	for _, s := range invalid {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted a malformed spec", s)
		}
	}
}

// TestParseSpecTol pins the tolerance option: percent and fraction forms,
// the zero default, range validation, and Name round-trip including the
// option.
func TestParseSpecTol(t *testing.T) {
	t.Parallel()
	cases := []struct {
		spec string
		tol  float64
	}{
		{"x2cap:1.5u", 0},
		{"x2cap:1.5u:tol=10%", 0.10},
		{"mlcc:100n:tol=0.2", 0.20},
		{"tantalum:100u:tol=5%", 0.05},
		{"bobbin:10:4:tol=15%", 0.15},
		{"cmchoke2:tol=0%", 0},
	}
	for _, c := range cases {
		m, tol, err := ParseSpecTol(c.spec)
		if err != nil {
			t.Errorf("ParseSpecTol(%q): %v", c.spec, err)
			continue
		}
		if math.Abs(tol-c.tol) > 1e-12 {
			t.Errorf("ParseSpecTol(%q) tol = %v, want %v", c.spec, tol, c.tol)
		}
		if m.Name() != c.spec {
			t.Errorf("ParseSpecTol(%q).Name() = %q, spec does not round-trip", c.spec, m.Name())
		}
		// The tolerance-carrying name re-parses to the same tolerance.
		m2, tol2, err := ParseSpecTol(m.Name())
		if err != nil || tol2 != tol || m2.Name() != m.Name() {
			t.Errorf("re-parse of %q: tol %v err %v", m.Name(), tol2, err)
		}
		// ParseSpec accepts the same spec and ignores the band.
		if _, err := ParseSpec(c.spec); err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
		}
	}

	invalid := []string{
		"x2cap:1.5u:tol=",       // empty band
		"x2cap:1.5u:tol=lots",   // not a number
		"x2cap:1.5u:tol=-5%",    // negative
		"x2cap:1.5u:tol=1.0",    // 100% admits zero-valued parts
		"x2cap:1.5u:tol=150%",   // > 100%
		"tol=10%",               // tolerance without a component
		"x2cap:tol=10%",         // option where the value belongs
		"x2cap:1.5u:tol=10%:5u", // option not last
	}
	for _, s := range invalid {
		if _, _, err := ParseSpecTol(s); err == nil {
			t.Errorf("ParseSpecTol(%q) accepted a malformed spec", s)
		}
	}
}
