package components

import (
	"repro/internal/geom"
	"repro/internal/peec"
)

// Trace is a PCB copper trace, modelled as a filament polyline whose
// equivalent round radius follows the geometric-mean-distance rule for a
// rectangular cross-section, r ≈ 0.2235·(w + t) (Rosa/Grover).
type Trace struct {
	Points    []geom.Vec3
	Width     float64
	Thickness float64
}

// EquivalentRadius returns the GMD-equivalent round-wire radius of the
// rectangular trace cross-section.
func (t *Trace) EquivalentRadius() float64 {
	th := t.Thickness
	if th == 0 {
		th = 35e-6 // 1 oz copper
	}
	return 0.2235 * (t.Width + th)
}

// Conductor returns the trace's PEEC structure (an open polyline).
func (t *Trace) Conductor() *peec.Conductor {
	return peec.NewPolyline(t.Points, t.EquivalentRadius())
}

// Inductance returns the partial inductance of the trace run — the "line
// inductance" parasitic the paper includes in its circuit simulation.
func (t *Trace) Inductance() float64 {
	return t.Conductor().SelfInductance()
}

// Length returns the total routed length of the trace.
func (t *Trace) Length() float64 { return t.Conductor().TotalLength() }

// Via is a vertical interconnect between layers, modelled as a short
// vertical filament.
type Via struct {
	At     geom.Vec2
	Z0, Z1 float64
	Drill  float64 // drill diameter
}

// Conductor returns the via's PEEC structure.
func (v *Via) Conductor() *peec.Conductor {
	r := v.Drill / 2
	if r == 0 {
		r = 0.15e-3
	}
	return peec.NewPolyline([]geom.Vec3{v.At.Lift(v.Z0), v.At.Lift(v.Z1)}, r)
}

// Inductance returns the via's partial self-inductance.
func (v *Via) Inductance() float64 { return v.Conductor().SelfInductance() }
