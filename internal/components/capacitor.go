package components

import (
	"repro/internal/geom"
	"repro/internal/peec"
)

// Capacitor models a two-terminal filter capacitor. Its field-generating
// structure is the equivalent current loop spanned by the two pins and the
// internal current path (cf. the paper's X-ray/PEEC picture of the SMD
// tantalum capacitor, Figure 3): a rectangular loop of width Pitch standing
// LoopH above the board in the pin plane.
//
// At rotation 0 the pins lie along the x axis, so the loop normal — the
// magnetic axis — points along y.
type Capacitor struct {
	ModelName string
	C         float64 // capacitance in F
	ESR       float64 // equivalent series resistance in Ω
	ESL       float64 // equivalent series inductance in H; 0 = derive from the loop
	BodyW     float64 // body extent along the pin direction
	BodyL     float64 // body extent across the pins
	BodyH     float64 // body height
	Pitch     float64 // pin-to-pin distance
	LoopH     float64 // height of the equivalent current loop
	WireR     float64 // equivalent conductor radius of the loop
}

// Name implements Model.
func (c *Capacitor) Name() string { return c.ModelName }

// Size implements Model.
func (c *Capacitor) Size() (float64, float64, float64) { return c.BodyW, c.BodyL, c.BodyH }

// Conductor implements Model: the rectangular equivalent current loop.
func (c *Capacitor) Conductor(rotZ float64) *peec.Conductor {
	p, h := c.Pitch/2, c.LoopH
	pts := []geom.Vec3{
		{X: -p, Z: 0},
		{X: -p, Z: h},
		{X: p, Z: h},
		{X: p, Z: 0},
	}
	loop := peec.NewLoop(pts, c.wireR())
	return loop.RotZAround(geom.Vec3{}, rotZ)
}

// MagneticAxis implements Model: the loop normal, +y at rotation 0.
func (c *Capacitor) MagneticAxis(rotZ float64) geom.Vec3 {
	return geom.V3(0, 1, 0).RotZ(rotZ)
}

// EffectiveESL returns the series inductance used in circuit simulation:
// the explicit ESL if set, otherwise the self-inductance of the equivalent
// loop — the paper's way of obtaining parasitics from the 3D model.
func (c *Capacitor) EffectiveESL() float64 {
	if c.ESL > 0 {
		return c.ESL
	}
	return c.Conductor(0).SelfInductance()
}

func (c *Capacitor) wireR() float64 {
	if c.WireR > 0 {
		return c.WireR
	}
	return 0.4e-3
}

// NewX2Cap returns a film X-capacitor of the given capacitance, the
// component of the paper's Figure 5 distance study (1.5 µF there). The
// geometry follows a typical 305 VAC X2 box film part.
func NewX2Cap(name string, c float64) *Capacitor {
	return &Capacitor{
		ModelName: name,
		C:         c,
		ESR:       0.015,
		BodyW:     18e-3,
		BodyL:     8e-3,
		BodyH:     14e-3,
		Pitch:     15e-3,
		LoopH:     11e-3,
		WireR:     0.4e-3,
	}
}

// NewSMDTantalum returns an SMD tantalum electrolytic capacitor (D case),
// the part X-rayed in the paper's Figure 3.
func NewSMDTantalum(name string, c float64) *Capacitor {
	return &Capacitor{
		ModelName: name,
		C:         c,
		ESR:       0.08,
		BodyW:     7.3e-3,
		BodyL:     4.3e-3,
		BodyH:     2.8e-3,
		Pitch:     6.0e-3,
		LoopH:     1.6e-3,
		WireR:     0.5e-3,
	}
}

// NewElectrolytic returns a radial aluminium electrolytic can capacitor:
// tall body, short pin pitch, relatively high ESR.
func NewElectrolytic(name string, c float64) *Capacitor {
	return &Capacitor{
		ModelName: name,
		C:         c,
		ESR:       0.25,
		BodyW:     10e-3,
		BodyL:     10e-3,
		BodyH:     16e-3,
		Pitch:     5e-3,
		LoopH:     13e-3,
		WireR:     0.4e-3,
	}
}

// NewYCap returns a small Y-class disc safety capacitor (line-to-ground
// filtering).
func NewYCap(name string, c float64) *Capacitor {
	return &Capacitor{
		ModelName: name,
		C:         c,
		ESR:       0.05,
		BodyW:     9e-3,
		BodyL:     5e-3,
		BodyH:     10e-3,
		Pitch:     7.5e-3,
		LoopH:     8e-3,
		WireR:     0.3e-3,
	}
}

// NewMLCC returns an SMD multilayer ceramic capacitor (1210 size).
func NewMLCC(name string, c float64) *Capacitor {
	return &Capacitor{
		ModelName: name,
		C:         c,
		ESR:       0.01,
		BodyW:     3.2e-3,
		BodyL:     2.5e-3,
		BodyH:     1.8e-3,
		Pitch:     2.8e-3,
		LoopH:     0.9e-3,
		WireR:     0.3e-3,
	}
}
