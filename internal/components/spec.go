package components

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/netlist"
)

// ParseSpec builds a catalog component model from its textual spec — the
// shared vocabulary of the coupling CLI and the serving API:
//
//	x2cap:<farad>               film X capacitor, e.g. x2cap:1.5u
//	tantalum:<farad>            SMD tantalum, e.g. tantalum:100u
//	mlcc:<farad>                ceramic capacitor
//	bobbin:<turns>:<radius_mm>  drum-core choke, e.g. bobbin:10:4
//	cmchoke2 | cmchoke3         common-mode chokes
//
// Every form accepts a trailing ":tol=<band>" option — the datasheet
// tolerance of the component's electrical value, e.g. "x2cap:1.5u:tol=10%"
// or "mlcc:100n:tol=0.2" — which ParseSpec validates and ignores; use
// ParseSpecTol to read it (the Monte Carlo yield analysis does).
func ParseSpec(s string) (Model, error) {
	m, _, err := ParseSpecTol(s)
	return m, err
}

// ParseSpecTol is ParseSpec plus the spec's relative tolerance band: 0.1
// for ":tol=10%" (or ":tol=0.1"), 0 when the spec carries no tolerance.
// The model's Name() is the full spec string including the tolerance
// option, so specs round-trip through the model.
func ParseSpecTol(s string) (Model, float64, error) {
	if s == "" {
		return nil, 0, fmt.Errorf("missing component spec")
	}
	parts := strings.Split(s, ":")
	tol := 0.0
	if last := parts[len(parts)-1]; strings.HasPrefix(last, "tol=") {
		t, err := parseTol(strings.TrimPrefix(last, "tol="))
		if err != nil {
			return nil, 0, fmt.Errorf("bad tolerance %q: %v", last, err)
		}
		tol = t
		parts = parts[:len(parts)-1]
		if len(parts) == 0 {
			return nil, 0, fmt.Errorf("missing component spec before %q", last)
		}
	}
	m, err := parseSpecCore(s, parts)
	if err != nil {
		return nil, 0, err
	}
	return m, tol, nil
}

// parseSpecCore parses the spec vocabulary proper. name is the full
// original spec (with any tolerance option) so Name() round-trips.
func parseSpecCore(name string, parts []string) (Model, error) {
	switch parts[0] {
	case "x2cap", "tantalum", "mlcc":
		if len(parts) != 2 {
			return nil, fmt.Errorf("%s needs a capacitance, e.g. %s:1.5u", parts[0], parts[0])
		}
		c, err := netlist.ParseValue(parts[1])
		if err != nil || c <= 0 {
			return nil, fmt.Errorf("bad capacitance %q", parts[1])
		}
		switch parts[0] {
		case "x2cap":
			return NewX2Cap(name, c), nil
		case "tantalum":
			return NewSMDTantalum(name, c), nil
		default:
			return NewMLCC(name, c), nil
		}
	case "bobbin":
		if len(parts) != 3 {
			return nil, fmt.Errorf("bobbin needs turns and radius_mm, e.g. bobbin:10:4")
		}
		turns, err := strconv.Atoi(parts[1])
		if err != nil || turns < 1 {
			return nil, fmt.Errorf("bad turns %q", parts[1])
		}
		rmm, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || rmm <= 0 {
			return nil, fmt.Errorf("bad radius %q", parts[2])
		}
		return NewBobbinChoke(name, turns, rmm*1e-3), nil
	case "cmchoke2":
		if len(parts) != 1 {
			return nil, fmt.Errorf("cmchoke2 takes no parameters")
		}
		return NewCMChoke2(name), nil
	case "cmchoke3":
		if len(parts) != 1 {
			return nil, fmt.Errorf("cmchoke3 takes no parameters")
		}
		return NewCMChoke3(name), nil
	}
	return nil, fmt.Errorf("unknown component spec %q", name)
}

// parseTol parses a tolerance band: "10%" or a plain fraction "0.1",
// valid in [0, 1) — a 100% band would allow zero-valued parts.
func parseTol(v string) (float64, error) {
	scale := 1.0
	if strings.HasSuffix(v, "%") {
		v = strings.TrimSuffix(v, "%")
		scale = 0.01
	}
	t, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("not a number")
	}
	t *= scale
	if t < 0 || t >= 1 {
		return 0, fmt.Errorf("tolerance %g out of [0, 1)", t)
	}
	return t, nil
}
