package components

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/netlist"
)

// ParseSpec builds a catalog component model from its textual spec — the
// shared vocabulary of the coupling CLI and the serving API:
//
//	x2cap:<farad>               film X capacitor, e.g. x2cap:1.5u
//	tantalum:<farad>            SMD tantalum, e.g. tantalum:100u
//	mlcc:<farad>                ceramic capacitor
//	bobbin:<turns>:<radius_mm>  drum-core choke, e.g. bobbin:10:4
//	cmchoke2 | cmchoke3         common-mode chokes
func ParseSpec(s string) (Model, error) {
	if s == "" {
		return nil, fmt.Errorf("missing component spec")
	}
	parts := strings.Split(s, ":")
	switch parts[0] {
	case "x2cap", "tantalum", "mlcc":
		if len(parts) != 2 {
			return nil, fmt.Errorf("%s needs a capacitance, e.g. %s:1.5u", parts[0], parts[0])
		}
		c, err := netlist.ParseValue(parts[1])
		if err != nil || c <= 0 {
			return nil, fmt.Errorf("bad capacitance %q", parts[1])
		}
		switch parts[0] {
		case "x2cap":
			return NewX2Cap(s, c), nil
		case "tantalum":
			return NewSMDTantalum(s, c), nil
		default:
			return NewMLCC(s, c), nil
		}
	case "bobbin":
		if len(parts) != 3 {
			return nil, fmt.Errorf("bobbin needs turns and radius_mm, e.g. bobbin:10:4")
		}
		turns, err := strconv.Atoi(parts[1])
		if err != nil || turns < 1 {
			return nil, fmt.Errorf("bad turns %q", parts[1])
		}
		rmm, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || rmm <= 0 {
			return nil, fmt.Errorf("bad radius %q", parts[2])
		}
		return NewBobbinChoke(s, turns, rmm*1e-3), nil
	case "cmchoke2":
		return NewCMChoke2(s), nil
	case "cmchoke3":
		return NewCMChoke3(s), nil
	}
	return nil, fmt.Errorf("unknown component spec %q", s)
}
