// Package components provides parametric models of the passive power
// electronics components whose placement the paper optimises: filter
// capacitors, bobbin-core chokes, current-compensated (common-mode) chokes,
// PCB traces and vias, plus plain mechanical bodies.
//
// Each model exposes two views used by the flow:
//
//   - a geometric body (footprint, height) for the placement tool, and
//   - a PEEC conductor structure — the paper's "easy to use models created
//     by simplifying the complex structure of passive components" — for the
//     field solver, along with the component's magnetic axis.
//
// Models are defined in a local frame: body centered at the origin, board
// surface at z = 0, reference rotation 0. Placement happens through
// Instance.
package components

import (
	"math"

	"repro/internal/electro"
	"repro/internal/geom"
	"repro/internal/peec"
)

// Model is a placeable component with an optional magnetic field structure.
type Model interface {
	// Name returns the catalog name of the model (not the reference
	// designator; instances carry those).
	Name() string
	// Size returns body width (x at rotation 0), length (y) and height in
	// meters.
	Size() (w, l, h float64)
	// Conductor returns the PEEC field structure in the local frame,
	// rotated by rotZ. Models without a magnetic structure return an empty
	// conductor.
	Conductor(rotZ float64) *peec.Conductor
	// MagneticAxis returns the unit magnetic axis in the local frame
	// rotated by rotZ, or the zero vector for non-magnetic parts.
	MagneticAxis(rotZ float64) geom.Vec3
}

// Instance is a model placed on a board.
type Instance struct {
	Ref    string // reference designator, e.g. "C3"
	Model  Model
	Center geom.Vec2 // body center on the board plane
	Rot    float64   // rotation around z in radians
}

// Conductor returns the placed field structure in board coordinates.
func (in *Instance) Conductor() *peec.Conductor {
	return in.Model.Conductor(in.Rot).Translate(in.Center.Lift(0))
}

// MagneticAxis returns the placed magnetic axis in board coordinates.
func (in *Instance) MagneticAxis() geom.Vec3 {
	return in.Model.MagneticAxis(in.Rot)
}

// Footprint returns the axis-aligned bounding rectangle of the rotated body.
func (in *Instance) Footprint() geom.Rect {
	w, l, _ := in.Model.Size()
	return geom.RotatedAABB(in.Center, w, l, in.Rot)
}

// Body returns the 3D cuboid of the placed component.
func (in *Instance) Body() geom.Cuboid {
	_, _, h := in.Model.Size()
	return geom.CuboidOf(in.Footprint(), 0, h)
}

// CouplingFactor returns the PEEC coupling factor between two placed
// instances, the quantity entering the paper's sensitivity analysis and
// minimum-distance rules. Non-magnetic instances yield 0.
func CouplingFactor(a, b *Instance, order int) float64 {
	ca, cb := a.Conductor(), b.Conductor()
	if len(ca.Segments) == 0 || len(cb.Segments) == 0 {
		return 0
	}
	return peec.CouplingFactor(ca, cb, order)
}

// CouplingFactorHier is CouplingFactor with the mutual-inductance term
// hierarchically approximated at accuracy theta ∈ (0, 1); theta ≤ 0 is
// exact. Useful when a caller sweeps many placements of the same pair
// and can afford the small controlled error for the speedup.
func CouplingFactorHier(a, b *Instance, order int, theta float64) float64 {
	ca, cb := a.Conductor(), b.Conductor()
	if len(ca.Segments) == 0 || len(cb.Segments) == 0 {
		return 0
	}
	return peec.CouplingFactorHier(peec.NewSegTree(ca), peec.NewSegTree(cb), order, theta)
}

// AxisAngle returns the acute angle between the magnetic axes of two placed
// instances (the alpha_ij of the EMD rule). Non-magnetic parts give π/2,
// i.e. "fully decoupled".
func AxisAngle(a, b *Instance) float64 {
	aa, ab := a.MagneticAxis(), b.MagneticAxis()
	if aa == (geom.Vec3{}) || ab == (geom.Vec3{}) {
		return math.Pi / 2
	}
	return geom.AxisAngle(aa, ab)
}

// BodyCapacitance returns the electrostatic coupling capacitance between
// the bodies of two placed instances, computed with the panel method —
// the capacitive counterpart of CouplingFactor, covering the effect the
// paper notes "gains more influence at higher frequencies". maxEdge
// controls the panel discretisation (0 = 4 mm).
func BodyCapacitance(a, b *Instance, maxEdge float64) (float64, error) {
	if maxEdge <= 0 {
		maxEdge = 4e-3
	}
	pa := electro.CuboidPanels(a.Body(), maxEdge)
	pb := electro.CuboidPanels(b.Body(), maxEdge)
	return electro.MutualCapacitance(pa, pb)
}

// Body is a purely mechanical component (switch, controller IC, heat sink,
// connector): it occupies volume but has no simplified magnetic structure
// of its own.
type BodyModel struct {
	ModelName string
	W, L, H   float64
}

// Name implements Model.
func (b *BodyModel) Name() string { return b.ModelName }

// Size implements Model.
func (b *BodyModel) Size() (float64, float64, float64) { return b.W, b.L, b.H }

// Conductor implements Model with an empty field structure.
func (b *BodyModel) Conductor(float64) *peec.Conductor { return &peec.Conductor{MuEff: 1} }

// MagneticAxis implements Model; mechanical bodies have none.
func (b *BodyModel) MagneticAxis(float64) geom.Vec3 { return geom.Vec3{} }
