package components

import (
	"math"
	"math/cmplx"

	"repro/internal/geom"
	"repro/internal/peec"
)

// CMChoke models a current-compensated (common-mode) choke: a toroidal core
// carrying two or three windings, used for filtering power lines. The paper
// observes that the two-winding design offers preferred (decoupled)
// placements for adjacent capacitors, while the three-winding design —
// carrying three-phase currents — generates an almost rotating stray field
// with no decoupled position.
//
// Each winding is modelled as an arc of turn rings around the core tube:
// every turn is a segmented ring of radius TubeR whose axis is tangent to
// the toroid centerline, the physically faithful simplified structure.
// The toroid lies flat on the board; windings are separated by GapDeg of
// unwound core.
type CMChoke struct {
	ModelName string
	Windings  int     // 2 or 3
	TorusR    float64 // centerline radius
	TubeR     float64 // core tube (turn) radius
	TurnsPer  int     // turns per winding
	WireR     float64
	MuEff     float64
	GapDeg    float64 // unwound gap between adjacent windings, degrees
	RingSegs  int     // segments per turn ring; 0 = 12
	BodyH     float64
}

// Name implements Model.
func (c *CMChoke) Name() string { return c.ModelName }

// Size implements Model. The body is the bounding box of the toroid.
func (c *CMChoke) Size() (float64, float64, float64) {
	d := 2 * (c.TorusR + c.TubeR)
	h := c.BodyH
	if h == 0 {
		h = 2 * c.TubeR
	}
	return d, d, h
}

func (c *CMChoke) windings() int {
	if c.Windings == 3 {
		return 3
	}
	return 2
}

func (c *CMChoke) ringSegs() int {
	if c.RingSegs > 0 {
		return c.RingSegs
	}
	return 12
}

func (c *CMChoke) muEff() float64 {
	if c.MuEff <= 0 {
		return 1
	}
	return c.MuEff
}

// NewCMChoke2 returns a typical two-winding common-mode choke for
// single-phase power lines (the left-hand part of the paper's Figure 8).
func NewCMChoke2(name string) *CMChoke {
	return &CMChoke{
		ModelName: name,
		Windings:  2,
		TorusR:    11e-3,
		TubeR:     4e-3,
		TurnsPer:  8,
		WireR:     0.5e-3,
		MuEff:     60,
		GapDeg:    30,
	}
}

// NewCMChoke3 returns a three-winding common-mode choke for three-phase
// lines (the right-hand part of Figure 8), whose phase-shifted currents
// generate the rotating stray field.
func NewCMChoke3(name string) *CMChoke {
	return &CMChoke{
		ModelName: name,
		Windings:  3,
		TorusR:    11e-3,
		TubeR:     4e-3,
		TurnsPer:  6,
		WireR:     0.5e-3,
		MuEff:     60,
		GapDeg:    20,
	}
}

// WindingConductor returns the field structure of winding w (0-based) at
// rotation rotZ, in the local frame.
func (c *CMChoke) WindingConductor(w int, rotZ float64) *peec.Conductor {
	n := c.windings()
	w = ((w % n) + n) % n
	span := 2*math.Pi/float64(n) - geom.Rad(c.GapDeg)
	start := 2*math.Pi*float64(w)/float64(n) - span/2 + rotZ
	out := &peec.Conductor{MuEff: c.muEff()}
	turns := c.TurnsPer
	if turns < 1 {
		turns = 1
	}
	zc := c.TubeR
	for i := 0; i < turns; i++ {
		// Turn centers are inset half a step from the winding ends so that
		// adjacent windings keep their unwound gap.
		frac := (float64(i) + 0.5) / float64(turns)
		theta := start + span*frac
		s, cth := math.Sincos(theta)
		center := geom.V3(c.TorusR*cth, c.TorusR*s, zc)
		tangent := geom.V3(-s, cth, 0)
		out.Append(peec.Ring(center, tangent, c.TubeR, c.ringSegs(), c.WireR))
	}
	return out
}

// Conductor implements Model: all windings excited with equal in-phase
// (common-mode) current. This is the structure the generic coupling-factor
// machinery sees.
func (c *CMChoke) Conductor(rotZ float64) *peec.Conductor {
	out := &peec.Conductor{MuEff: c.muEff()}
	for w := 0; w < c.windings(); w++ {
		wc := c.WindingConductor(w, rotZ)
		wc.MuEff = 1 // scale once on the merged conductor
		out.Append(wc)
	}
	return out
}

// MagneticAxis implements Model: the net dipole axis of the common-mode
// excited structure. For symmetric windings the net moment is small and
// dominated by the in-plane leakage direction.
func (c *CMChoke) MagneticAxis(rotZ float64) geom.Vec3 {
	return c.Conductor(rotZ).MagneticAxis()
}

// WindingPhases returns the excitation phases (radians) the paper's
// scenario implies: in-phase common-mode noise for the 2-winding part,
// symmetric three-phase currents for the 3-winding part.
func (c *CMChoke) WindingPhases() []float64 {
	n := c.windings()
	out := make([]float64, n)
	if n == 3 {
		for i := range out {
			out[i] = 2 * math.Pi * float64(i) / 3
		}
	}
	return out
}

// EffectiveCouplingTo returns the effective coupling magnitude between the
// phasor-excited choke windings and a victim structure:
//
//	k_eff = |Σ_w e^{jφ_w}·M_w| / sqrt(L_choke·L_victim)
//
// For the 2-winding choke (φ = 0,0) decoupled victim positions exist where
// the winding mutuals cancel; for the 3-winding choke under three-phase
// excitation the complex sum cannot vanish away from the symmetry center —
// exactly the paper's Figure 8 observation.
func (c *CMChoke) EffectiveCouplingTo(victim *peec.Conductor, rotZ float64, order int) float64 {
	phases := c.WindingPhases()
	var sum complex128
	for w := 0; w < c.windings(); w++ {
		m := peec.Mutual(c.WindingConductor(w, rotZ), victim, order)
		sum += cmplx.Rect(m, phases[w])
	}
	lc := c.Conductor(rotZ).SelfInductance()
	lv := victim.SelfInductance()
	if lc <= 0 || lv <= 0 {
		return 0
	}
	return cmplx.Abs(sum) / math.Sqrt(lc*lv)
}
