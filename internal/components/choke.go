package components

import (
	"repro/internal/geom"
	"repro/internal/peec"
)

// BobbinChoke models an inductor wound on a bobbin (drum) ferrite core —
// the open-flux component whose pairwise coupling the paper studies in
// Figure 7. The winding is modelled as Turns segmented rings stacked along
// the coil axis; the ferrite enters through the effective permeability
// correction (MuEff).
//
// AxisLocal is the coil axis in the local frame at rotation 0. Horizontal
// axes (the default, +y) are the interesting case for placement because
// rotating the part then changes the axis angle of the EMD rule; a vertical
// axis is rotation-invariant.
type BobbinChoke struct {
	ModelName string
	Turns     int
	CoilR     float64 // winding radius
	CoilLen   float64 // winding length along the axis
	WireR     float64 // wire radius
	MuEff     float64 // effective relative permeability of the open core
	AxisLocal geom.Vec3
	BodyW     float64
	BodyL     float64
	BodyH     float64
	RingSegs  int // segments per turn ring; 0 = 16

	// Shield attenuates the stray field of shielded (closed magnetic
	// path) parts without changing the inductance; 0 = unshielded.
	Shield float64
}

// Name implements Model.
func (b *BobbinChoke) Name() string { return b.ModelName }

// Size implements Model.
func (b *BobbinChoke) Size() (float64, float64, float64) { return b.BodyW, b.BodyL, b.BodyH }

func (b *BobbinChoke) ringSegs() int {
	if b.RingSegs > 0 {
		return b.RingSegs
	}
	return 16
}

func (b *BobbinChoke) axis() geom.Vec3 {
	if b.AxisLocal == (geom.Vec3{}) {
		return geom.V3(0, 1, 0)
	}
	return b.AxisLocal.Normalize()
}

// Conductor implements Model: the stacked-ring winding ("segmented rings"
// of the paper's Figure 11), centered at body mid-height.
func (b *BobbinChoke) Conductor(rotZ float64) *peec.Conductor {
	axis := b.axis().RotZ(rotZ)
	zc := b.BodyH / 2
	out := &peec.Conductor{MuEff: b.muEff(), Shield: b.Shield}
	n := b.Turns
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		t := 0.0
		if n > 1 {
			t = float64(i)/float64(n-1) - 0.5
		}
		center := geom.V3(0, 0, zc).Add(axis.Scale(t * b.CoilLen))
		out.Append(peec.Ring(center, axis, b.CoilR, b.ringSegs(), b.WireR))
	}
	return out
}

// MagneticAxis implements Model.
func (b *BobbinChoke) MagneticAxis(rotZ float64) geom.Vec3 {
	return b.axis().RotZ(rotZ)
}

// Inductance returns the coil inductance from the PEEC model including the
// effective-permeability correction.
func (b *BobbinChoke) Inductance() float64 {
	return b.Conductor(0).SelfInductance()
}

func (b *BobbinChoke) muEff() float64 {
	if b.MuEff <= 0 {
		return 1
	}
	return b.MuEff
}

// NewSMDPowerInductor returns a shielded SMD power inductor: vertical
// magnetic axis (rotation-invariant — rotating the part cannot decouple
// it, only distance can) and a closed magnetic path that attenuates the
// stray field by the shield factor.
func NewSMDPowerInductor(name string, turns int, coilR float64) *BobbinChoke {
	d := 2 * coilR
	return &BobbinChoke{
		ModelName: name,
		Turns:     turns,
		CoilR:     coilR,
		CoilLen:   0.8 * d,
		WireR:     0.4e-3,
		MuEff:     40,
		AxisLocal: geom.V3(0, 0, 1),
		BodyW:     1.4 * d,
		BodyL:     1.4 * d,
		BodyH:     d,
		Shield:    0.15,
	}
}

// NewBobbinChoke returns a horizontal-axis drum-core choke of a typical
// power-filter size. turns and coilR control the size difference of the
// paper's "two bobbin coils of different size" study.
func NewBobbinChoke(name string, turns int, coilR float64) *BobbinChoke {
	d := 2 * coilR
	return &BobbinChoke{
		ModelName: name,
		Turns:     turns,
		CoilR:     coilR,
		CoilLen:   1.2 * d,
		WireR:     0.4e-3,
		MuEff:     25, // open drum core: strongly sheared ferrite
		AxisLocal: geom.V3(0, 1, 0),
		BodyW:     1.3 * d,
		BodyL:     1.5 * d,
		BodyH:     1.3 * d,
	}
}
