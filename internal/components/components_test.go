package components

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/peec"
)

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestCapacitorGeometry(t *testing.T) {
	t.Parallel()
	c := NewX2Cap("X2-1u5", 1.5e-6)
	w, l, h := c.Size()
	if w <= 0 || l <= 0 || h <= 0 {
		t.Fatal("degenerate body")
	}
	cond := c.Conductor(0)
	if len(cond.Segments) != 4 {
		t.Fatalf("loop segments = %d, want 4", len(cond.Segments))
	}
	// Loop in the xz plane ⇒ magnetic axis along ±y at rotation 0.
	ax := c.MagneticAxis(0)
	if math.Abs(ax.Y) != 1 {
		t.Errorf("axis = %v, want ±y", ax)
	}
	// Model axis must agree with the dipole axis of the PEEC structure.
	dip := cond.MagneticAxis()
	if geom.AxisAngle(ax, dip) > 1e-9 {
		t.Errorf("declared axis %v vs dipole axis %v", ax, dip)
	}
	// Rotation by 90° turns the axis to ±x.
	ax90 := c.MagneticAxis(math.Pi / 2)
	if math.Abs(ax90.X) < 0.999 {
		t.Errorf("rotated axis = %v", ax90)
	}
}

func TestCapacitorESL(t *testing.T) {
	t.Parallel()
	c := NewX2Cap("X2", 1.5e-6)
	esl := c.EffectiveESL()
	// A 15 mm pitch, 11 mm tall loop has tens of nH of loop inductance.
	if esl < 5e-9 || esl > 80e-9 {
		t.Errorf("derived ESL = %v H", esl)
	}
	c.ESL = 12e-9
	if c.EffectiveESL() != 12e-9 {
		t.Error("explicit ESL must win")
	}
	// The small MLCC has much lower ESL than the big film cap.
	m := NewMLCC("MLCC", 1e-6)
	if m.EffectiveESL() >= esl {
		t.Errorf("MLCC ESL %v not below X2 ESL %v", m.EffectiveESL(), esl)
	}
}

func TestCapacitorCouplingDecaysWithDistance(t *testing.T) {
	t.Parallel()
	// Two 1.5 µF X-caps with parallel magnetic axes — the Figure 5 setup.
	m := NewX2Cap("X2", 1.5e-6)
	a := &Instance{Ref: "C1", Model: m}
	prev := math.Inf(1)
	for _, d := range []float64{0.02, 0.03, 0.05, 0.08} {
		b := &Instance{Ref: "C2", Model: m, Center: geom.V2(0, d)}
		k := math.Abs(CouplingFactor(a, b, peec.DefaultOrder))
		if k <= 0 {
			t.Fatalf("no coupling at %v", d)
		}
		if k >= prev {
			t.Errorf("k(%v) = %v did not decay below %v", d, k, prev)
		}
		prev = k
	}
}

func TestCapacitorOrthogonalRotationDecouples(t *testing.T) {
	t.Parallel()
	// The Figure 6 rule: rotating one capacitor by 90° puts the equivalent
	// current paths perpendicular and removes the coupling.
	m := NewX2Cap("X2", 1.5e-6)
	a := &Instance{Ref: "C1", Model: m}
	bPar := &Instance{Ref: "C2", Model: m, Center: geom.V2(0, 0.025)}
	bOrth := &Instance{Ref: "C2", Model: m, Center: geom.V2(0, 0.025), Rot: math.Pi / 2}
	kp := math.Abs(CouplingFactor(a, bPar, peec.DefaultOrder))
	ko := math.Abs(CouplingFactor(a, bOrth, peec.DefaultOrder))
	if ko > 0.1*kp {
		t.Errorf("orthogonal k = %v not well below parallel k = %v", ko, kp)
	}
	if got := AxisAngle(a, bOrth); relErr(got, math.Pi/2) > 1e-9 {
		t.Errorf("axis angle = %v", got)
	}
}

func TestInstanceFootprintRotation(t *testing.T) {
	t.Parallel()
	m := NewX2Cap("X2", 1.5e-6)
	in := &Instance{Ref: "C1", Model: m, Center: geom.V2(0.01, 0.02)}
	fp := in.Footprint()
	if relErr(fp.W(), 18e-3) > 1e-9 || relErr(fp.H(), 8e-3) > 1e-9 {
		t.Errorf("footprint = %v", fp)
	}
	in.Rot = math.Pi / 2
	fp = in.Footprint()
	if relErr(fp.W(), 8e-3) > 1e-9 || relErr(fp.H(), 18e-3) > 1e-9 {
		t.Errorf("rotated footprint = %v", fp)
	}
	body := in.Body()
	if relErr(body.Height(), 14e-3) > 1e-9 || body.Z0 != 0 {
		t.Errorf("body = %+v", body)
	}
}

func TestBodyModelIsNonMagnetic(t *testing.T) {
	t.Parallel()
	b := &BodyModel{ModelName: "MOSFET", W: 10e-3, L: 10e-3, H: 4.5e-3}
	if len(b.Conductor(0).Segments) != 0 {
		t.Error("body must have no field structure")
	}
	if b.MagneticAxis(0) != (geom.Vec3{}) {
		t.Error("body must have no magnetic axis")
	}
	a := &Instance{Ref: "Q1", Model: b}
	c := &Instance{Ref: "C1", Model: NewX2Cap("X2", 1e-6), Center: geom.V2(0.02, 0)}
	if CouplingFactor(a, c, peec.DefaultOrder) != 0 {
		t.Error("coupling with body must be 0")
	}
	if AxisAngle(a, c) != math.Pi/2 {
		t.Error("axis angle with body must be π/2 (decoupled)")
	}
}

func TestBobbinChokeInductance(t *testing.T) {
	t.Parallel()
	ch := NewBobbinChoke("L1", 20, 4e-3)
	l := ch.Inductance()
	// 20 turns on an 8 mm drum with µeff 25: order 10–100 µH.
	if l < 1e-6 || l > 500e-6 {
		t.Errorf("L = %v H", l)
	}
	// More turns ⇒ more inductance, superlinear (≈ N²).
	ch2 := NewBobbinChoke("L2", 40, 4e-3)
	if ch2.Inductance() < 2.5*l {
		t.Errorf("N² scaling violated: %v vs %v", ch2.Inductance(), l)
	}
}

func TestBobbinChokeAxisRotates(t *testing.T) {
	t.Parallel()
	ch := NewBobbinChoke("L1", 10, 4e-3)
	if ax := ch.MagneticAxis(0); math.Abs(ax.Y) != 1 {
		t.Errorf("axis at rot 0 = %v", ax)
	}
	ax := ch.MagneticAxis(math.Pi / 2)
	if math.Abs(ax.X) < 0.999 {
		t.Errorf("axis at rot 90° = %v", ax)
	}
	// Dipole axis of the field structure agrees with the declared axis.
	dip := ch.Conductor(0.3).MagneticAxis()
	if geom.AxisAngle(dip, ch.MagneticAxis(0.3)) > 1e-6 {
		t.Errorf("dipole %v vs declared %v", dip, ch.MagneticAxis(0.3))
	}
}

func TestBobbinChokeCouplingSizeDependence(t *testing.T) {
	t.Parallel()
	// Figure 7: coupling of two bobbin coils; values vary with size and
	// must be recomputed per combination.
	small := NewBobbinChoke("Ls", 12, 3e-3)
	big := NewBobbinChoke("Lb", 12, 6e-3)
	d := 0.03
	a := &Instance{Ref: "L1", Model: small}
	bSmall := &Instance{Ref: "L2", Model: small, Center: geom.V2(d, 0)}
	bBig := &Instance{Ref: "L3", Model: big, Center: geom.V2(d, 0)}
	kSS := math.Abs(CouplingFactor(a, bSmall, peec.DefaultOrder))
	kSB := math.Abs(CouplingFactor(a, bBig, peec.DefaultOrder))
	if kSS == 0 || kSB == 0 {
		t.Fatal("chokes must couple")
	}
	if relErr(kSS, kSB) < 0.05 {
		t.Errorf("size should change the coupling: %v vs %v", kSS, kSB)
	}
}

func TestTraceInductanceRuleOfThumb(t *testing.T) {
	t.Parallel()
	tr := &Trace{
		Points: []geom.Vec3{{}, {X: 0.1}},
		Width:  1e-3,
	}
	l := tr.Inductance()
	// ≈ 1 nH/mm for a narrow trace.
	if l < 60e-9 || l > 160e-9 {
		t.Errorf("trace L = %v H", l)
	}
	if relErr(tr.Length(), 0.1) > 1e-12 {
		t.Errorf("length = %v", tr.Length())
	}
}

func TestViaInductance(t *testing.T) {
	t.Parallel()
	v := &Via{At: geom.V2(0, 0), Z0: 0, Z1: 1.6e-3, Drill: 0.3e-3}
	l := v.Inductance()
	// A 1.6 mm via is of order 1 nH.
	if l < 0.2e-9 || l > 3e-9 {
		t.Errorf("via L = %v H", l)
	}
}

func TestCMChokeWindingCount(t *testing.T) {
	t.Parallel()
	c2 := NewCMChoke2("CM2")
	c3 := NewCMChoke3("CM3")
	if c2.windings() != 2 || c3.windings() != 3 {
		t.Fatalf("winding counts: %d, %d", c2.windings(), c3.windings())
	}
	if len(c2.WindingPhases()) != 2 || c2.WindingPhases()[0] != 0 || c2.WindingPhases()[1] != 0 {
		t.Errorf("2-winding phases = %v", c2.WindingPhases())
	}
	p3 := c3.WindingPhases()
	if relErr(p3[1], 2*math.Pi/3) > 1e-12 || relErr(p3[2], 4*math.Pi/3) > 1e-12 {
		t.Errorf("3-winding phases = %v", p3)
	}
}

func TestCMChokeDecoupledPositions(t *testing.T) {
	t.Parallel()
	// Figure 8: scan a test capacitor around each choke. The 2-winding
	// design must show positions with strongly reduced effective coupling;
	// the 3-winding design under three-phase excitation must not.
	victimModel := NewX2Cap("X2", 1e-6)
	scan := func(c *CMChoke) (min, max float64) {
		min, max = math.Inf(1), 0.0
		const d = 0.035
		for deg := 0; deg < 360; deg += 15 {
			phi := geom.Rad(float64(deg))
			pos := geom.V2(d*math.Cos(phi), d*math.Sin(phi))
			// Victim axis oriented radially towards the choke.
			victim := victimModel.Conductor(phi + math.Pi/2).Translate(pos.Lift(0))
			k := c.EffectiveCouplingTo(victim, 0, peec.DefaultOrder)
			if k < min {
				min = k
			}
			if k > max {
				max = k
			}
		}
		return min, max
	}
	min2, max2 := scan(NewCMChoke2("CM2"))
	min3, max3 := scan(NewCMChoke3("CM3"))
	if max2 == 0 || max3 == 0 {
		t.Fatal("chokes must couple somewhere")
	}
	ratio2 := min2 / max2
	ratio3 := min3 / max3
	if ratio2 > 0.01 {
		t.Errorf("2-winding should have a decoupled position: min/max = %.4g", ratio2)
	}
	if ratio3 < 0.1 {
		t.Errorf("3-winding should have no decoupled position: min/max = %.4g", ratio3)
	}
}

func TestCatalogNamesAndSizes(t *testing.T) {
	t.Parallel()
	models := []Model{
		NewX2Cap("X2", 1.5e-6),
		NewSMDTantalum("TAN", 100e-6),
		NewMLCC("MLCC", 1e-6),
		NewElectrolytic("ELKO", 220e-6),
		NewYCap("Y1", 2.2e-9),
		NewBobbinChoke("DR", 10, 4e-3),
		NewSMDPowerInductor("SHD", 10, 4e-3),
		NewCMChoke2("CM2"),
		NewCMChoke3("CM3"),
		&BodyModel{ModelName: "BODY", W: 1e-3, L: 1e-3, H: 1e-3},
	}
	seen := map[string]bool{}
	for _, m := range models {
		if m.Name() == "" {
			t.Errorf("%T has empty name", m)
		}
		if seen[m.Name()] {
			t.Errorf("duplicate catalog name %q", m.Name())
		}
		seen[m.Name()] = true
		w, l, h := m.Size()
		if w <= 0 || l <= 0 || h <= 0 {
			t.Errorf("%s: degenerate size %g×%g×%g", m.Name(), w, l, h)
		}
	}
}

func TestShieldedInductorStray(t *testing.T) {
	t.Parallel()
	open := NewBobbinChoke("DR", 10, 4e-3)
	shielded := NewSMDPowerInductor("SHD", 10, 4e-3)
	// Shielding must not change the inductance…
	twin := *shielded
	twin.Shield = 0
	if relErr(shielded.Inductance(), twin.Inductance()) > 1e-12 {
		t.Error("shield factor changed the inductance")
	}
	// …but must cut the coupling. Compare a shielded pair against the
	// same geometry unshielded: factor Shield² = 0.0225.
	a := &Instance{Ref: "L1", Model: shielded}
	b := &Instance{Ref: "L2", Model: shielded, Center: geom.V2(0.025, 0)}
	at := &Instance{Ref: "L1", Model: &twin}
	bt := &Instance{Ref: "L2", Model: &twin, Center: geom.V2(0.025, 0)}
	kS := CouplingFactor(a, b, peec.DefaultOrder)
	kO := CouplingFactor(at, bt, peec.DefaultOrder)
	if relErr(kS, kO*0.15*0.15) > 1e-9 {
		t.Errorf("shielded k = %v, want %v", kS, kO*0.0225)
	}
	// The vertical axis is rotation invariant: the EMD rule cannot be
	// cured by rotating the part.
	if ax := shielded.MagneticAxis(1.234); geom.AxisAngle(ax, geom.V3(0, 0, 1)) > 1e-12 {
		t.Errorf("vertical axis rotated: %v", ax)
	}
	_ = open
}

func TestElectrolyticAndYCap(t *testing.T) {
	t.Parallel()
	elko := NewElectrolytic("ELKO", 220e-6)
	if esl := elko.EffectiveESL(); esl < 5e-9 || esl > 60e-9 {
		t.Errorf("electrolytic ESL = %v", esl)
	}
	y := NewYCap("Y1", 2.2e-9)
	if esl := y.EffectiveESL(); esl < 3e-9 || esl > 40e-9 {
		t.Errorf("Y-cap ESL = %v", esl)
	}
	if elko.ESR <= y.ESR {
		t.Error("electrolytic should have the higher ESR")
	}
}

func TestCMChokeMagneticAxis(t *testing.T) {
	t.Parallel()
	// The CM-excited structure has a small but defined net dipole; the
	// axis must be a unit vector (or zero) and rotate with the part.
	c := NewCMChoke2("CM2")
	ax := c.MagneticAxis(0)
	if n := ax.Norm(); n != 0 && math.Abs(n-1) > 1e-9 {
		t.Errorf("axis norm = %v", n)
	}
}

func TestBodyCapacitanceDirect(t *testing.T) {
	t.Parallel()
	m := NewX2Cap("X2", 1.5e-6)
	a := &Instance{Ref: "C1", Model: m}
	b := &Instance{Ref: "C2", Model: m, Center: geom.V2(0.025, 0)}
	c, err := BodyCapacitance(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c < 1e-15 || c > 10e-12 {
		t.Errorf("body capacitance = %v F", c)
	}
	// Finer panels refine, not explode.
	c2, err := BodyCapacitance(a, b, 2.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(c2, c) > 0.3 {
		t.Errorf("panel refinement unstable: %v vs %v", c2, c)
	}
}

func TestCMChokeConductorMuEffAppliedOnce(t *testing.T) {
	t.Parallel()
	c := NewCMChoke2("CM2")
	merged := c.Conductor(0)
	if merged.MuEff != c.muEff() {
		t.Errorf("merged MuEff = %v", merged.MuEff)
	}
	// Windings inside the merged structure must not double-scale: total
	// segments = windings × turns × ringSegs.
	want := c.windings() * c.TurnsPer * c.ringSegs()
	if len(merged.Segments) != want {
		t.Errorf("segments = %d, want %d", len(merged.Segments), want)
	}
}
