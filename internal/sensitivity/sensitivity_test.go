package sensitivity

import (
	"testing"

	"repro/internal/emi"
	"repro/internal/netlist"
)

// filterCircuit builds a two-stage filter behind a LISN where the coupling
// between the two capacitor ESLs (Lc1/Lc2) bridges the whole filter, while
// coupling into the source-side loop inductor matters much less.
func filterCircuit() *netlist.Circuit {
	c := &netlist.Circuit{Title: "sensitivity test"}
	c.AddV("Vbat", "bat", "0", netlist.Source{DC: 12})
	emi.AddLISN(c, "lisn", "bat", "vin")
	c.AddC("C1", "vin", "c1x", 1e-6)
	c.AddL("Lc1", "c1x", "0", 15e-9)
	c.AddL("Lfilt", "vin", "vdd", 22e-6)
	c.AddC("C2", "vdd", "c2x", 1e-6)
	c.AddL("Lc2", "c2x", "0", 15e-9)
	c.AddV("Vsw", "sw", "0", netlist.Source{Pulse: &netlist.Pulse{
		V1: 0, V2: 12, Rise: 30e-9, Fall: 30e-9, Width: 2e-6, Period: 5e-6,
	}})
	c.AddL("Lloop", "sw", "swl", 50e-9)
	c.AddR("Rloop", "swl", "vdd", 0.2)
	return c
}

func TestRankFindsCriticalPair(t *testing.T) {
	t.Parallel()
	ckt := filterCircuit()
	rank, err := Rank(ckt, "Vsw", "lisn_meas", Options{
		ProbeK:     0.01,
		MaxFreq:    50e6,
		Candidates: []string{"Lc1", "Lc2", "Lloop"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rank) != 3 {
		t.Fatalf("rank size = %d, want 3 pairs", len(rank))
	}
	// Sorted descending.
	for i := 1; i < len(rank); i++ {
		if rank[i].DeltaDB > rank[i-1].DeltaDB {
			t.Error("ranking not sorted")
		}
	}
	// The paper: "components on positions with low interference levels are
	// affected by magnetic stray fields of components with high
	// interference levels". Lc1 sits on the quiet LISN side, so both pairs
	// coupling noise across the filter into Lc1 must dominate, while the
	// pair entirely on the noisy side (Lc2/Lloop) must rank last and be
	// orders of magnitude weaker.
	for _, p := range rank[:2] {
		if p.LA != "Lc1" && p.LB != "Lc1" {
			t.Errorf("top pairs should involve the quiet-side Lc1; ranking: %+v", rank)
		}
		if p.DeltaDB < 6 {
			t.Errorf("top influence = %.1f dB, expected substantial", p.DeltaDB)
		}
	}
	last := rank[len(rank)-1]
	if !(last.LA == "Lc2" && last.LB == "Lloop") {
		t.Errorf("noisy-side pair should rank last; ranking: %+v", rank)
	}
	if last.DeltaDB > rank[0].DeltaDB/4 {
		t.Errorf("noisy-side pair influence %.1f dB not well below top %.1f dB",
			last.DeltaDB, rank[0].DeltaDB)
	}
}

func TestRankDoesNotMutateCircuit(t *testing.T) {
	t.Parallel()
	ckt := filterCircuit()
	before := len(ckt.Elements)
	_, err := Rank(ckt, "Vsw", "lisn_meas", Options{
		MaxFreq:    20e6,
		Candidates: []string{"Lc1", "Lc2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ckt.Elements) != before {
		t.Error("Rank mutated the circuit")
	}
	for _, e := range ckt.Elements {
		if e.Kind == netlist.K {
			t.Error("probe coupling leaked into the circuit")
		}
	}
}

func TestRelevantThreshold(t *testing.T) {
	t.Parallel()
	r := Ranking{
		{LA: "a", LB: "b", DeltaDB: 12},
		{LA: "a", LB: "c", DeltaDB: 3},
		{LA: "b", LB: "c", DeltaDB: 0.2},
	}
	rel := r.Relevant(1)
	if len(rel) != 2 {
		t.Errorf("Relevant(1) = %d entries", len(rel))
	}
	if len(r.Relevant(100)) != 0 {
		t.Error("high threshold should prune all")
	}
	pairs := r.Pairs()
	if pairs[0] != [2]string{"a", "b"} {
		t.Errorf("Pairs = %v", pairs)
	}
}

func TestRankErrors(t *testing.T) {
	t.Parallel()
	ckt := filterCircuit()
	if _, err := Rank(ckt, "Vsw", "lisn_meas", Options{Candidates: []string{"Lc1"}}); err == nil {
		t.Error("single candidate should fail")
	}
	if _, err := Rank(ckt, "Vsw", "lisn_meas", Options{Candidates: []string{"Lc1", "nope"}}); err == nil {
		t.Error("unknown candidate should fail")
	}
	if _, err := Rank(ckt, "nope", "lisn_meas", Options{Candidates: []string{"Lc1", "Lc2"}}); err == nil {
		t.Error("unknown source should fail")
	}
}
