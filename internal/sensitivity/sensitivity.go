// Package sensitivity implements the paper's sensitivity analysis: probe
// coupling factors are inserted pairwise between the circuit's inductances
// and their influence on the emitted interference is ranked. Only the
// top-ranked pairs then need a 3D field simulation, which is what makes the
// electromagnetic calculation of a whole circuit feasible.
package sensitivity

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/emi"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// PairInfluence records how strongly a probe coupling between two inductors
// raises the conducted emissions.
type PairInfluence struct {
	LA, LB  string  // inductor element names
	DeltaDB float64 // worst-case emission increase across the band, dB
}

// Ranking is the result list, sorted by descending influence.
type Ranking []PairInfluence

// Options configures the analysis.
type Options struct {
	ProbeK     float64  // probe coupling factor; 0 = 0.01
	MaxFreq    float64  // 0 = CISPR band stop
	Candidates []string // inductors to consider; nil = all in the circuit
}

// Rank inserts ProbeK between every candidate inductor pair (one pair at a
// time), predicts the spectrum, and ranks pairs by the worst-case emission
// increase relative to the uncoupled baseline.
func Rank(ckt *netlist.Circuit, sourceName, measureNode string, opt Options) (Ranking, error) {
	return RankCtx(context.Background(), ckt, sourceName, measureNode, opt)
}

// RankCtx is Rank with cancellation: once ctx is done no further pair
// predictions start and the context's error is returned.
func RankCtx(ctx context.Context, ckt *netlist.Circuit, sourceName, measureNode string, opt Options) (Ranking, error) {
	probe := opt.ProbeK
	if probe == 0 {
		probe = 0.01
	}
	cands := opt.Candidates
	if cands == nil {
		cands = ckt.Inductors()
	}
	if len(cands) < 2 {
		return nil, fmt.Errorf("sensitivity: need at least two candidate inductors, have %d", len(cands))
	}
	for _, n := range cands {
		if e := ckt.Find(n); e == nil || e.Kind != netlist.L {
			return nil, fmt.Errorf("sensitivity: candidate %q is not an inductor", n)
		}
	}

	baseline := &emi.Predictor{
		Circuit:     ckt,
		SourceName:  sourceName,
		MeasureNode: measureNode,
		MaxFreq:     opt.MaxFreq,
	}
	base, err := baseline.SpectrumCtx(ctx)
	if err != nil {
		return nil, fmt.Errorf("sensitivity: baseline: %w", err)
	}

	// One full band prediction per pair — the hot path of the analysis.
	// Each worker compiles one BandSolver (circuit clone + stamp plans)
	// and re-predicts per pair by applying the probe as a two-entry delta
	// on the compiled B plan: no per-pair circuit clone, no analyzer
	// rebuild. The pairs are independent and share the read-only
	// baseline, so they fan out over the engine pool; each pair writes
	// only its own slot and the stable sort below keeps ties in pair
	// order, making the ranking identical under any parallelism.
	defer engine.Phase("sensitivity.rank")()
	var pairs [][2]string
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			pairs = append(pairs, [2]string{cands[i], cands[j]})
		}
	}
	ctx, sp := obs.Start(ctx, "sensitivity.rank")
	sp.Int("pairs", int64(len(pairs)))
	sp.Int("candidates", int64(len(cands)))
	defer sp.End()
	rank := make(Ranking, len(pairs))
	err = engine.ForEachStateCtx(ctx, len(pairs),
		func() (*emi.BandSolver, error) {
			return emi.NewBandSolver(ckt, []string{sourceName}, measureNode, 0, opt.MaxFreq)
		},
		func(bs *emi.BandSolver, i int) error {
			la, lb := pairs[i][0], pairs[i][1]
			if err := bs.Analyzer().SetProbeCoupling(la, lb, probe); err != nil {
				return fmt.Errorf("sensitivity: pair %s/%s: %w", la, lb, err)
			}
			s, err := bs.SpectrumCtx(ctx)
			bs.Analyzer().ClearProbeCoupling()
			if err != nil {
				return fmt.Errorf("sensitivity: pair %s/%s: %w", la, lb, err)
			}
			delta := 0.0
			for k := range s.DB {
				if d := s.DB[k] - base.DB[k]; d > delta {
					delta = d
				}
			}
			rank[i] = PairInfluence{LA: la, LB: lb, DeltaDB: delta}
			return nil
		})
	if err != nil {
		return nil, err
	}
	out := rank
	sort.SliceStable(out, func(a, b int) bool { return out[a].DeltaDB > out[b].DeltaDB })
	return out, nil
}

// Relevant returns the pairs whose influence exceeds the threshold — the
// pairs for which 3D coupling extraction is worthwhile.
func (r Ranking) Relevant(thresholdDB float64) Ranking {
	var out Ranking
	for _, p := range r {
		if p.DeltaDB >= thresholdDB {
			out = append(out, p)
		}
	}
	return out
}

// Pairs returns the (LA, LB) names in ranked order.
func (r Ranking) Pairs() [][2]string {
	out := make([][2]string, len(r))
	for i, p := range r {
		out[i] = [2]string{p.LA, p.LB}
	}
	return out
}
