// Package transient implements fixed-step time-domain simulation of the
// netlist circuits using trapezoidal integration (A-stable, the standard
// choice for switching power electronics). Time-scheduled switches and
// ideal switched-resistance diodes model the converter's active devices;
// mutual inductances from the PEEC analysis are honoured in the inductor
// companion equations.
//
// With a fixed step the companion-model matrix depends only on the
// conduction state — which switches and diodes are on. A buck period
// visits a handful of states but hundreds of timesteps, so the solver
// compiles the netlist once into a stamp program, keys the LU
// factorization on the state vector, and re-factors only when a device
// commutates; every other step is a right-hand-side rebuild plus a
// triangular resolve.
package transient

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/linalg"
	"repro/internal/netlist"
)

// Options configures a simulation run.
type Options struct {
	Step         float64 // fixed time step in seconds
	End          float64 // end time in seconds
	MaxDiodeIter int     // per-step diode state iterations; 0 = 20

	// InitDC starts the run from the DC operating point at t = 0
	// (inductors shorted, capacitors open, sources at their t = 0 values)
	// instead of the zero state — the SPICE "operating point first"
	// behaviour, which suppresses artificial startup transients in EMI
	// analyses.
	InitDC bool

	// Solver selects the factorization backend for the conduction-state
	// companion matrices. The zero value (ModeAuto) defers to the
	// process-wide -solver selection and from there to the size/density
	// heuristic; the DC operating point always uses the dense path (it
	// runs once per simulation).
	Solver linalg.SolverMode
}

// Result holds the simulated waveforms.
type Result struct {
	Time      []float64
	nodeIdx   map[string]int
	branchIdx map[string]int
	volt      [][]float64 // [step][node], slices of one flat backing array
	curr      [][]float64 // [step][branch]

	factorizations int // LU factorizations performed (white-box test hook)
}

// Node returns the voltage waveform of the named node; ground returns a
// zero waveform, unknown nodes return nil.
func (r *Result) Node(name string) []float64 {
	if name == "0" {
		return make([]float64, len(r.Time))
	}
	i, ok := r.nodeIdx[name]
	if !ok {
		return nil
	}
	out := make([]float64, len(r.Time))
	for s := range out {
		out[s] = r.volt[s][i]
	}
	return out
}

// Branch returns the current waveform through the named inductor or
// voltage source, or nil for other names.
func (r *Result) Branch(name string) []float64 {
	b, ok := r.branchIdx[name]
	if !ok {
		return nil
	}
	out := make([]float64, len(r.Time))
	for s := range out {
		out[s] = r.curr[s][b]
	}
	return out
}

// Simulate runs the circuit from zero initial state.
func Simulate(c *netlist.Circuit, opt Options) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if opt.Step <= 0 || opt.End <= 0 || opt.End < opt.Step {
		return nil, fmt.Errorf("transient: invalid time window step=%g end=%g", opt.Step, opt.End)
	}
	maxIter := opt.MaxDiodeIter
	if maxIter <= 0 {
		maxIter = 20
	}

	sim := newSim(c)
	sim.mode = opt.Solver
	sim.compile(opt.Step)
	steps := int(math.Floor(opt.End/opt.Step)) + 1
	nn, nb := len(sim.nodes), len(sim.branches)
	res := &Result{
		Time:      make([]float64, steps),
		nodeIdx:   sim.nodeIdx,
		branchIdx: sim.branchIdx,
		volt:      make([][]float64, steps),
		curr:      make([][]float64, steps),
	}
	// One flat backing array per waveform set: the per-step slices are
	// views, so the whole run costs two allocations instead of two per
	// step.
	vflat := make([]float64, steps*nn)
	iflat := make([]float64, steps*nb)
	for s := 0; s < steps; s++ {
		res.volt[s] = vflat[s*nn : (s+1)*nn : (s+1)*nn]
		res.curr[s] = iflat[s*nb : (s+1)*nb : (s+1)*nb]
	}
	if opt.InitDC {
		v0, i0, err := sim.dcOperatingPoint(maxIter)
		if err != nil {
			return nil, fmt.Errorf("transient: DC operating point: %w", err)
		}
		copy(res.volt[0], v0)
		copy(res.curr[0], i0)
	}

	h := opt.Step
	for s := 1; s < steps; s++ {
		tNow := float64(s) * h
		res.Time[s] = tNow
		err := sim.step(tNow, h, res.volt[s-1], res.curr[s-1], res.volt[s], res.curr[s], maxIter)
		if err != nil {
			return nil, fmt.Errorf("transient: t=%g: %w", tNow, err)
		}
	}
	res.factorizations = sim.factorizations
	return res, nil
}

// sim holds the prepared index structures, the compiled stamp program and
// the per-step element state.
type sim struct {
	ckt       *netlist.Circuit
	nodes     []string
	nodeIdx   map[string]int
	branches  []*netlist.Element
	branchIdx map[string]int
	couplings []coupling

	// Switching devices (SW and D in element order): the only elements
	// whose matrix stamps depend on run-time state.
	devices []*netlist.Element
	devIdx  map[string]int
	gOn     []float64 // per device: 1/Ron
	gOff    []float64 // per device: 1/Roff
	diodeOn []bool    // per device index; only diode entries are used

	caps []*netlist.Element
	capI []float64 // trapezoidal capacitor current memory, per cap index

	// Compiled step program (fixed h).
	h      float64
	n      int
	matOps []matOp
	rhsOps []rhsOp

	// Factorization backend: mode as requested (ModeAuto defers to the
	// process default), sparse as decided at compile time, and — on the
	// sparse path — the shared CSC pattern plus the value slot of every
	// matOp. Conduction states share the pattern; each cached entry owns
	// its values and factors.
	mode   linalg.SolverMode
	sparse bool
	pat    *linalg.Pattern
	slots  []int32

	// Conduction-state-keyed factorization cache. Each entry owns its
	// matrix storage, which after Factor holds the packed LU factors.
	cache          map[uint64]*factorEntry
	gs             []float64 // per-device conductance for the current state
	rhs, x         []float64
	factorizations int
}

type coupling struct {
	bi, bj int
	m      float64
}

// matOp is one compiled matrix stamp: flat index plus either a constant
// value (dev < 0) or a ±1 sign scaling the device's state-dependent
// conductance. Ops execute in the exact order the direct netlist walk
// stamped, keeping the assembled matrix bit-for-bit identical.
type matOp struct {
	idx int32
	dev int32 // -1 = static
	v   float64
}

// rhsOp is one compiled right-hand-side contribution, mirroring the
// element walk: sources sampled at t, capacitor and inductor companion
// terms from the previous step's state.
type rhsOp struct {
	kind  uint8 // rhsV, rhsI, rhsC, rhsL
	row   int   // branch row (V, L) or unused
	n1    int   // node indices, -1 = ground
	n2    int
	src   *netlist.Source
	geq   float64 // C: 2C/h
	ci    int     // C: capacitor index into capI
	leq   float64 // L: 2L/h
	bloc  int     // L: branch index into iPrev
	coups []lcoup // L: couplings involving this inductor, in coupling order
}

type lcoup struct {
	meq   float64 // 2m/h
	other int     // coupled branch index into iPrev
}

const (
	rhsV = iota
	rhsI
	rhsC
	rhsL
)

// factorEntry is one cached factorization: the matrix storage of its
// backend plus the retained factors, resolved through the shared
// RealFactorizer interface.
type factorEntry struct {
	m   *linalg.Real // dense path
	lu  linalg.RealLU
	sm  *linalg.SparseReal // sparse path (values on the sim's shared pattern)
	slu linalg.SparseRealLU
	f   linalg.RealFactorizer
}

// maxCacheEntries bounds the factorization cache; a pathological
// chattering circuit visiting many conduction states drops the cache
// wholesale rather than growing without bound.
const maxCacheEntries = 256

func newSim(c *netlist.Circuit) *sim {
	s := &sim{
		ckt:       c,
		nodeIdx:   map[string]int{},
		branchIdx: map[string]int{},
		devIdx:    map[string]int{},
	}
	s.nodes = c.Nodes()
	for i, n := range s.nodes {
		s.nodeIdx[n] = i
	}
	for _, e := range c.Elements {
		switch e.Kind {
		case netlist.L, netlist.V:
			s.branchIdx[e.Name] = len(s.branches)
			s.branches = append(s.branches, e)
		case netlist.SW, netlist.D:
			s.devIdx[e.Name] = len(s.devices)
			s.devices = append(s.devices, e)
			s.gOn = append(s.gOn, 1/e.Value)
			s.gOff = append(s.gOff, 1/e.Roff)
		case netlist.C:
			s.caps = append(s.caps, e)
		}
	}
	s.diodeOn = make([]bool, len(s.devices))
	s.capI = make([]float64, len(s.caps))
	for _, e := range c.Elements {
		if e.Kind != netlist.K {
			continue
		}
		la, lb := c.Find(e.LA), c.Find(e.LB)
		s.couplings = append(s.couplings, coupling{
			bi: s.branchIdx[e.LA],
			bj: s.branchIdx[e.LB],
			m:  e.Coup * math.Sqrt(la.Value*lb.Value),
		})
	}
	return s
}

// compile builds the stamp and right-hand-side programs for step size h,
// preserving the element-order accumulation of the direct walk (Gmin
// diagonal first, then elements, couplings stamped within their
// inductor's turn).
func (s *sim) compile(h float64) {
	s.h = h
	nn := len(s.nodes)
	s.n = nn + len(s.branches)
	s.matOps = s.matOps[:0]
	s.rhsOps = s.rhsOps[:0]
	s.cache = make(map[uint64]*factorEntry)
	s.gs = make([]float64, len(s.devices))
	s.rhs = make([]float64, s.n)
	s.x = make([]float64, s.n)

	addStatic := func(i, j int, v float64) {
		s.matOps = append(s.matOps, matOp{idx: int32(i*s.n + j), dev: -1, v: v})
	}
	addDev := func(i, j, di int, sign float64) {
		s.matOps = append(s.matOps, matOp{idx: int32(i*s.n + j), dev: int32(di), v: sign})
	}
	stampStatic := func(n1, n2 int, g float64) {
		if n1 >= 0 {
			addStatic(n1, n1, g)
		}
		if n2 >= 0 {
			addStatic(n2, n2, g)
		}
		if n1 >= 0 && n2 >= 0 {
			addStatic(n1, n2, -g)
			addStatic(n2, n1, -g)
		}
	}
	stampDev := func(n1, n2, di int) {
		if n1 >= 0 {
			addDev(n1, n1, di, 1)
		}
		if n2 >= 0 {
			addDev(n2, n2, di, 1)
		}
		if n1 >= 0 && n2 >= 0 {
			addDev(n1, n2, di, -1)
			addDev(n2, n1, di, -1)
		}
	}

	for i := 0; i < nn; i++ {
		addStatic(i, i, 1e-12) // Gmin
	}
	ci := 0
	for _, e := range s.ckt.Elements {
		n1, n2 := s.node(e.N1), s.node(e.N2)
		switch e.Kind {
		case netlist.R:
			stampStatic(n1, n2, 1/e.Value)
		case netlist.SW, netlist.D:
			stampDev(n1, n2, s.devIdx[e.Name])
		case netlist.C:
			geq := 2 * e.Value / h
			stampStatic(n1, n2, geq)
			s.rhsOps = append(s.rhsOps, rhsOp{kind: rhsC, n1: n1, n2: n2, geq: geq, ci: ci})
			ci++
		case netlist.L, netlist.V:
			b := nn + s.branchIdx[e.Name]
			if n1 >= 0 {
				addStatic(n1, b, 1)
				addStatic(b, n1, 1)
			}
			if n2 >= 0 {
				addStatic(n2, b, -1)
				addStatic(b, n2, -1)
			}
			if e.Kind == netlist.V {
				s.rhsOps = append(s.rhsOps, rhsOp{kind: rhsV, row: b, src: e.Src})
			} else {
				leq := 2 * e.Value / h
				addStatic(b, b, -leq)
				bloc := s.branchIdx[e.Name]
				op := rhsOp{kind: rhsL, row: b, n1: n1, n2: n2, leq: leq, bloc: bloc}
				for _, cp := range s.couplings {
					meq := 2 * cp.m / h
					switch bloc {
					case cp.bi:
						addStatic(b, nn+cp.bj, -meq)
						op.coups = append(op.coups, lcoup{meq: meq, other: cp.bj})
					case cp.bj:
						addStatic(b, nn+cp.bi, -meq)
						op.coups = append(op.coups, lcoup{meq: meq, other: cp.bi})
					}
				}
				s.rhsOps = append(s.rhsOps, op)
			}
		case netlist.I:
			s.rhsOps = append(s.rhsOps, rhsOp{kind: rhsI, n1: n1, n2: n2, src: e.Src})
		}
	}

	// Backend decision on the compiled program. The op count over-counts
	// unique cells, so the auto density estimate only ever errs toward the
	// dense path.
	mode := s.mode
	if mode == linalg.ModeAuto {
		mode = linalg.DefaultSolver()
	}
	s.sparse = linalg.ChooseSparse(mode, s.n, len(s.matOps))
	if s.sparse {
		flat := make([]int, len(s.matOps))
		for i, op := range s.matOps {
			flat[i] = int(op.idx)
		}
		s.pat, s.slots = linalg.NewPatternFromFlat(s.n, flat)
		// Fill-aware refinement, mirroring mna: auto reverts to dense
		// when the projected elimination fill favours it.
		if mode == linalg.ModeAuto && !linalg.SparseWorthwhile(s.n, s.pat.EstFactorFlops()) {
			s.sparse = false
		}
	}
}

func (s *sim) node(name string) int {
	if name == "0" {
		return -1
	}
	return s.nodeIdx[name]
}

func (s *sim) volt(v []float64, name string) float64 {
	if name == "0" {
		return 0
	}
	return v[s.nodeIdx[name]]
}

// srcAt evaluates a source at time t: the pulse wins if present.
func srcAt(src *netlist.Source, t float64) float64 {
	if src.Pulse != nil {
		return src.Pulse.At(t)
	}
	return src.DC
}

// stateKey packs the conduction state — switch schedules at time t plus
// the iterated diode states — into the factorization cache key. ok is
// false when the circuit has more switching devices than key bits, which
// disables caching.
func (s *sim) stateKey(t float64) (uint64, bool) {
	if len(s.devices) > 64 {
		return 0, false
	}
	var key uint64
	for di, e := range s.devices {
		var on bool
		if e.Kind == netlist.SW {
			on = e.Sched.On(t)
		} else {
			on = s.diodeOn[di]
		}
		if on {
			key |= 1 << uint(di)
		}
	}
	return key, true
}

// factorFor returns the factorization of the companion matrix for the
// conduction state at time t, reusing a cached elimination when the state
// has been visited before.
func (s *sim) factorFor(t float64) (*factorEntry, error) {
	key, cacheable := s.stateKey(t)
	if cacheable {
		if fe, ok := s.cache[key]; ok {
			return fe, nil
		}
		if len(s.cache) >= maxCacheEntries {
			s.cache = make(map[uint64]*factorEntry)
		}
	}
	for di, e := range s.devices {
		var on bool
		if e.Kind == netlist.SW {
			on = e.Sched.On(t)
		} else {
			on = s.diodeOn[di]
		}
		if on {
			s.gs[di] = s.gOn[di]
		} else {
			s.gs[di] = s.gOff[di]
		}
	}
	fe := &factorEntry{}
	engine.CountAssembly()
	if s.sparse {
		fe.sm = linalg.NewSparseReal(s.pat)
		for oi, op := range s.matOps {
			v := op.v
			if op.dev >= 0 {
				v = op.v * s.gs[op.dev]
			}
			fe.sm.V[s.slots[oi]] += v
		}
		if err := fe.sm.Factor(&fe.slu); err != nil {
			return nil, err
		}
		fe.f = &fe.slu
	} else {
		fe.m = linalg.NewReal(s.n)
		for _, op := range s.matOps {
			v := op.v
			if op.dev >= 0 {
				v = op.v * s.gs[op.dev]
			}
			fe.m.V[op.idx] += v
		}
		if err := fe.m.Factor(&fe.lu); err != nil {
			return nil, err
		}
		fe.f = &fe.lu
	}
	s.factorizations++
	if cacheable {
		s.cache[key] = fe
	}
	return fe, nil
}

// solveCandidate solves one candidate step into s.x: factorization from
// the state cache, right-hand side rebuilt from the compiled program.
func (s *sim) solveCandidate(t float64, vPrev, iPrev []float64) error {
	fe, err := s.factorFor(t)
	if err != nil {
		return err
	}
	at := func(n int, v []float64) float64 {
		if n < 0 {
			return 0
		}
		return v[n]
	}
	rhs := s.rhs
	for i := range rhs {
		rhs[i] = 0
	}
	for i := range s.rhsOps {
		op := &s.rhsOps[i]
		switch op.kind {
		case rhsV:
			rhs[op.row] = srcAt(op.src, t)
		case rhsI:
			val := srcAt(op.src, t)
			if op.n1 >= 0 {
				rhs[op.n1] -= val
			}
			if op.n2 >= 0 {
				rhs[op.n2] += val
			}
		case rhsC:
			vp := at(op.n1, vPrev) - at(op.n2, vPrev)
			ieq := op.geq*vp + s.capI[op.ci]
			if op.n1 >= 0 {
				rhs[op.n1] += ieq
			}
			if op.n2 >= 0 {
				rhs[op.n2] -= ieq
			}
		case rhsL:
			vp := at(op.n1, vPrev) - at(op.n2, vPrev)
			r := -vp - op.leq*iPrev[op.bloc]
			for _, cp := range op.coups {
				r -= cp.meq * iPrev[cp.other]
			}
			rhs[op.row] = r
		}
	}
	return fe.f.SolveFactored(rhs, s.x)
}

// step advances one trapezoidal step, iterating diode states until they are
// consistent with the solved voltages, and writes the accepted solution
// into vOut/iOut. Capacitor memory currents are committed only once, after
// the step is accepted.
func (s *sim) step(t, h float64, vPrev, iPrev, vOut, iOut []float64, maxIter int) error {
	nn := len(s.nodes)
	for iter := 0; iter < maxIter; iter++ {
		if err := s.solveCandidate(t, vPrev, iPrev); err != nil {
			return err
		}
		if s.updateDiodes(s.x[:nn]) {
			break
		}
		// A chattering diode at a switching edge resolves next iteration
		// or, failing that, next step; the last solution is accepted.
	}
	copy(vOut, s.x[:nn])
	copy(iOut, s.x[nn:])
	s.commitCapCurrents(h, vPrev, vOut)
	return nil
}

// updateDiodes flips diode states based on the solved voltages and reports
// whether all states were already consistent (ideal diode: conducts iff the
// anode-cathode voltage is positive).
func (s *sim) updateDiodes(v []float64) bool {
	stable := true
	for di, e := range s.devices {
		if e.Kind != netlist.D {
			continue
		}
		wantOn := s.volt(v, e.N1)-s.volt(v, e.N2) > 0
		if wantOn != s.diodeOn[di] {
			s.diodeOn[di] = wantOn
			stable = false
		}
	}
	return stable
}

// dcOperatingPoint solves the t = 0 DC state: capacitors are removed
// (open), inductors become 0 V branches (short), switches follow their
// schedule at t = 0, diodes iterate to a consistent state, and sources
// take their t = 0 values. The capacitor memory currents stay zero, which
// is exact at an operating point (dv/dt = 0). It runs once per
// simulation, so it assembles directly rather than through the compiled
// program (the DC stamps differ from the companion stamps).
func (s *sim) dcOperatingPoint(maxIter int) ([]float64, []float64, error) {
	solve := func() ([]float64, []float64, error) {
		nn := len(s.nodes)
		n := nn + len(s.branches)
		m := linalg.NewReal(n)
		rhs := make([]float64, n)
		engine.CountAssembly()
		for i := 0; i < nn; i++ {
			m.Add(i, i, 1e-12)
		}
		stampG := func(n1, n2 int, g float64) {
			if n1 >= 0 {
				m.Add(n1, n1, g)
			}
			if n2 >= 0 {
				m.Add(n2, n2, g)
			}
			if n1 >= 0 && n2 >= 0 {
				m.Add(n1, n2, -g)
				m.Add(n2, n1, -g)
			}
		}
		for _, e := range s.ckt.Elements {
			n1, n2 := s.node(e.N1), s.node(e.N2)
			switch e.Kind {
			case netlist.R:
				stampG(n1, n2, 1/e.Value)
			case netlist.SW:
				r := e.Roff
				if e.Sched.On(0) {
					r = e.Value
				}
				stampG(n1, n2, 1/r)
			case netlist.D:
				r := e.Roff
				if s.diodeOn[s.devIdx[e.Name]] {
					r = e.Value
				}
				stampG(n1, n2, 1/r)
			case netlist.C:
				// open at DC
			case netlist.L, netlist.V:
				b := nn + s.branchIdx[e.Name]
				if n1 >= 0 {
					m.Add(n1, b, 1)
					m.Add(b, n1, 1)
				}
				if n2 >= 0 {
					m.Add(n2, b, -1)
					m.Add(b, n2, -1)
				}
				if e.Kind == netlist.V {
					rhs[b] = srcAt(e.Src, 0)
				}
				// Inductor: v1 - v2 = 0 (row stays as stamped).
			case netlist.I:
				val := srcAt(e.Src, 0)
				if n1 >= 0 {
					rhs[n1] -= val
				}
				if n2 >= 0 {
					rhs[n2] += val
				}
			}
		}
		x, err := m.Solve(rhs)
		if err != nil {
			return nil, nil, err
		}
		return x[:nn], x[nn:], nil
	}
	var v, i []float64
	var err error
	for iter := 0; iter < maxIter; iter++ {
		v, i, err = solve()
		if err != nil {
			return nil, nil, err
		}
		if s.updateDiodes(v) {
			break
		}
	}
	return v, i, nil
}

// commitCapCurrents advances the trapezoidal capacitor current memory:
// i_n = geq·(v_n − v_{n−1}) − i_{n−1}.
func (s *sim) commitCapCurrents(h float64, vPrev, vNow []float64) {
	for ci, e := range s.caps {
		vp := s.volt(vPrev, e.N1) - s.volt(vPrev, e.N2)
		vn := s.volt(vNow, e.N1) - s.volt(vNow, e.N2)
		geq := 2 * e.Value / h
		s.capI[ci] = geq*(vn-vp) - s.capI[ci]
	}
}
