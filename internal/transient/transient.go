// Package transient implements fixed-step time-domain simulation of the
// netlist circuits using trapezoidal integration (A-stable, the standard
// choice for switching power electronics). Time-scheduled switches and
// ideal switched-resistance diodes model the converter's active devices;
// mutual inductances from the PEEC analysis are honoured in the inductor
// companion equations.
package transient

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/netlist"
)

// Options configures a simulation run.
type Options struct {
	Step         float64 // fixed time step in seconds
	End          float64 // end time in seconds
	MaxDiodeIter int     // per-step diode state iterations; 0 = 20

	// InitDC starts the run from the DC operating point at t = 0
	// (inductors shorted, capacitors open, sources at their t = 0 values)
	// instead of the zero state — the SPICE "operating point first"
	// behaviour, which suppresses artificial startup transients in EMI
	// analyses.
	InitDC bool
}

// Result holds the simulated waveforms.
type Result struct {
	Time      []float64
	nodeIdx   map[string]int
	branchIdx map[string]int
	volt      [][]float64 // [step][node]
	curr      [][]float64 // [step][branch]
}

// Node returns the voltage waveform of the named node; ground returns a
// zero waveform, unknown nodes return nil.
func (r *Result) Node(name string) []float64 {
	if name == "0" {
		return make([]float64, len(r.Time))
	}
	i, ok := r.nodeIdx[name]
	if !ok {
		return nil
	}
	out := make([]float64, len(r.Time))
	for s := range out {
		out[s] = r.volt[s][i]
	}
	return out
}

// Branch returns the current waveform through the named inductor or
// voltage source, or nil for other names.
func (r *Result) Branch(name string) []float64 {
	b, ok := r.branchIdx[name]
	if !ok {
		return nil
	}
	out := make([]float64, len(r.Time))
	for s := range out {
		out[s] = r.curr[s][b]
	}
	return out
}

// Simulate runs the circuit from zero initial state.
func Simulate(c *netlist.Circuit, opt Options) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if opt.Step <= 0 || opt.End <= 0 || opt.End < opt.Step {
		return nil, fmt.Errorf("transient: invalid time window step=%g end=%g", opt.Step, opt.End)
	}
	maxIter := opt.MaxDiodeIter
	if maxIter <= 0 {
		maxIter = 20
	}

	sim := newSim(c)
	steps := int(math.Floor(opt.End/opt.Step)) + 1
	res := &Result{
		Time:      make([]float64, steps),
		nodeIdx:   sim.nodeIdx,
		branchIdx: sim.branchIdx,
		volt:      make([][]float64, steps),
		curr:      make([][]float64, steps),
	}
	res.volt[0] = make([]float64, len(sim.nodes))
	res.curr[0] = make([]float64, len(sim.branches))
	if opt.InitDC {
		v0, i0, err := sim.dcOperatingPoint(maxIter)
		if err != nil {
			return nil, fmt.Errorf("transient: DC operating point: %w", err)
		}
		res.volt[0] = v0
		res.curr[0] = i0
	}

	h := opt.Step
	for s := 1; s < steps; s++ {
		tNow := float64(s) * h
		res.Time[s] = tNow
		v, i, err := sim.step(tNow, h, res.volt[s-1], res.curr[s-1], maxIter)
		if err != nil {
			return nil, fmt.Errorf("transient: t=%g: %w", tNow, err)
		}
		res.volt[s] = v
		res.curr[s] = i
	}
	return res, nil
}

// sim holds the prepared index structures and the per-step element state.
type sim struct {
	ckt       *netlist.Circuit
	nodes     []string
	nodeIdx   map[string]int
	branches  []*netlist.Element
	branchIdx map[string]int
	couplings []coupling
	diodeOn   map[string]bool
	capI      map[string]float64 // trapezoidal capacitor current memory
}

type coupling struct {
	bi, bj int
	m      float64
}

func newSim(c *netlist.Circuit) *sim {
	s := &sim{
		ckt:       c,
		nodeIdx:   map[string]int{},
		branchIdx: map[string]int{},
		diodeOn:   map[string]bool{},
		capI:      map[string]float64{},
	}
	s.nodes = c.Nodes()
	for i, n := range s.nodes {
		s.nodeIdx[n] = i
	}
	for _, e := range c.Elements {
		switch e.Kind {
		case netlist.L, netlist.V:
			s.branchIdx[e.Name] = len(s.branches)
			s.branches = append(s.branches, e)
		case netlist.D:
			s.diodeOn[e.Name] = false
		}
	}
	for _, e := range c.Elements {
		if e.Kind != netlist.K {
			continue
		}
		la, lb := c.Find(e.LA), c.Find(e.LB)
		s.couplings = append(s.couplings, coupling{
			bi: s.branchIdx[e.LA],
			bj: s.branchIdx[e.LB],
			m:  e.Coup * math.Sqrt(la.Value*lb.Value),
		})
	}
	return s
}

func (s *sim) node(name string) int {
	if name == "0" {
		return -1
	}
	return s.nodeIdx[name]
}

func (s *sim) volt(v []float64, name string) float64 {
	if name == "0" {
		return 0
	}
	return v[s.nodeIdx[name]]
}

// srcAt evaluates a source at time t: the pulse wins if present.
func srcAt(src *netlist.Source, t float64) float64 {
	if src.Pulse != nil {
		return src.Pulse.At(t)
	}
	return src.DC
}

// step advances one trapezoidal step, iterating diode states until they are
// consistent with the solved voltages. Capacitor memory currents are
// committed only once, after the step is accepted.
func (s *sim) step(t, h float64, vPrev, iPrev []float64, maxIter int) ([]float64, []float64, error) {
	var v, i []float64
	var err error
	for iter := 0; iter < maxIter; iter++ {
		v, i, err = s.solveWith(t, h, vPrev, iPrev)
		if err != nil {
			return nil, nil, err
		}
		if s.updateDiodes(v) {
			break
		}
		// A chattering diode at a switching edge resolves next iteration
		// or, failing that, next step; the last solution is accepted.
	}
	s.commitCapCurrents(h, vPrev, v)
	return v, i, nil
}

// updateDiodes flips diode states based on the solved voltages and reports
// whether all states were already consistent (ideal diode: conducts iff the
// anode-cathode voltage is positive).
func (s *sim) updateDiodes(v []float64) bool {
	stable := true
	for _, e := range s.ckt.Elements {
		if e.Kind != netlist.D {
			continue
		}
		wantOn := s.volt(v, e.N1)-s.volt(v, e.N2) > 0
		if wantOn != s.diodeOn[e.Name] {
			s.diodeOn[e.Name] = wantOn
			stable = false
		}
	}
	return stable
}

// solveWith builds and solves the companion-model system for one candidate
// step; it does not mutate per-step state.
func (s *sim) solveWith(t, h float64, vPrev, iPrev []float64) ([]float64, []float64, error) {
	nn := len(s.nodes)
	n := nn + len(s.branches)
	m := linalg.NewReal(n)
	rhs := make([]float64, n)

	for i := 0; i < nn; i++ {
		m.Add(i, i, 1e-12) // Gmin
	}

	stampG := func(n1, n2 int, g float64) {
		if n1 >= 0 {
			m.Add(n1, n1, g)
		}
		if n2 >= 0 {
			m.Add(n2, n2, g)
		}
		if n1 >= 0 && n2 >= 0 {
			m.Add(n1, n2, -g)
			m.Add(n2, n1, -g)
		}
	}

	for _, e := range s.ckt.Elements {
		n1, n2 := s.node(e.N1), s.node(e.N2)
		switch e.Kind {
		case netlist.R:
			stampG(n1, n2, 1/e.Value)
		case netlist.SW:
			r := e.Roff
			if e.Sched.On(t) {
				r = e.Value
			}
			stampG(n1, n2, 1/r)
		case netlist.D:
			r := e.Roff
			if s.diodeOn[e.Name] {
				r = e.Value
			}
			stampG(n1, n2, 1/r)
		case netlist.C:
			geq := 2 * e.Value / h
			vp := s.volt(vPrev, e.N1) - s.volt(vPrev, e.N2)
			ieq := geq*vp + s.capI[e.Name]
			stampG(n1, n2, geq)
			if n1 >= 0 {
				rhs[n1] += ieq
			}
			if n2 >= 0 {
				rhs[n2] -= ieq
			}
		case netlist.L, netlist.V:
			b := nn + s.branchIdx[e.Name]
			if n1 >= 0 {
				m.Add(n1, b, 1)
				m.Add(b, n1, 1)
			}
			if n2 >= 0 {
				m.Add(n2, b, -1)
				m.Add(b, n2, -1)
			}
			if e.Kind == netlist.V {
				rhs[b] = srcAt(e.Src, t)
			} else {
				leq := 2 * e.Value / h
				m.Add(b, b, -leq)
				vp := s.volt(vPrev, e.N1) - s.volt(vPrev, e.N2)
				r := -vp - leq*iPrev[s.branchIdx[e.Name]]
				for _, cp := range s.couplings {
					meq := 2 * cp.m / h
					switch s.branchIdx[e.Name] {
					case cp.bi:
						m.Add(b, nn+cp.bj, -meq)
						r -= meq * iPrev[cp.bj]
					case cp.bj:
						m.Add(b, nn+cp.bi, -meq)
						r -= meq * iPrev[cp.bi]
					}
				}
				rhs[b] = r
			}
		case netlist.I:
			val := srcAt(e.Src, t)
			if n1 >= 0 {
				rhs[n1] -= val
			}
			if n2 >= 0 {
				rhs[n2] += val
			}
		}
	}

	x, err := m.Solve(rhs)
	if err != nil {
		return nil, nil, err
	}
	v := make([]float64, nn)
	copy(v, x[:nn])
	i := make([]float64, len(s.branches))
	copy(i, x[nn:])
	return v, i, nil
}

// dcOperatingPoint solves the t = 0 DC state: capacitors are removed
// (open), inductors become 0 V branches (short), switches follow their
// schedule at t = 0, diodes iterate to a consistent state, and sources
// take their t = 0 values. The capacitor memory currents stay zero, which
// is exact at an operating point (dv/dt = 0).
func (s *sim) dcOperatingPoint(maxIter int) ([]float64, []float64, error) {
	solve := func() ([]float64, []float64, error) {
		nn := len(s.nodes)
		n := nn + len(s.branches)
		m := linalg.NewReal(n)
		rhs := make([]float64, n)
		for i := 0; i < nn; i++ {
			m.Add(i, i, 1e-12)
		}
		stampG := func(n1, n2 int, g float64) {
			if n1 >= 0 {
				m.Add(n1, n1, g)
			}
			if n2 >= 0 {
				m.Add(n2, n2, g)
			}
			if n1 >= 0 && n2 >= 0 {
				m.Add(n1, n2, -g)
				m.Add(n2, n1, -g)
			}
		}
		for _, e := range s.ckt.Elements {
			n1, n2 := s.node(e.N1), s.node(e.N2)
			switch e.Kind {
			case netlist.R:
				stampG(n1, n2, 1/e.Value)
			case netlist.SW:
				r := e.Roff
				if e.Sched.On(0) {
					r = e.Value
				}
				stampG(n1, n2, 1/r)
			case netlist.D:
				r := e.Roff
				if s.diodeOn[e.Name] {
					r = e.Value
				}
				stampG(n1, n2, 1/r)
			case netlist.C:
				// open at DC
			case netlist.L, netlist.V:
				b := nn + s.branchIdx[e.Name]
				if n1 >= 0 {
					m.Add(n1, b, 1)
					m.Add(b, n1, 1)
				}
				if n2 >= 0 {
					m.Add(n2, b, -1)
					m.Add(b, n2, -1)
				}
				if e.Kind == netlist.V {
					rhs[b] = srcAt(e.Src, 0)
				}
				// Inductor: v1 - v2 = 0 (row stays as stamped).
			case netlist.I:
				val := srcAt(e.Src, 0)
				if n1 >= 0 {
					rhs[n1] -= val
				}
				if n2 >= 0 {
					rhs[n2] += val
				}
			}
		}
		x, err := m.Solve(rhs)
		if err != nil {
			return nil, nil, err
		}
		return x[:nn], x[nn:], nil
	}
	var v, i []float64
	var err error
	for iter := 0; iter < maxIter; iter++ {
		v, i, err = solve()
		if err != nil {
			return nil, nil, err
		}
		if s.updateDiodes(v) {
			break
		}
	}
	return v, i, nil
}

// commitCapCurrents advances the trapezoidal capacitor current memory:
// i_n = geq·(v_n − v_{n−1}) − i_{n−1}.
func (s *sim) commitCapCurrents(h float64, vPrev, vNow []float64) {
	for _, e := range s.ckt.Elements {
		if e.Kind != netlist.C {
			continue
		}
		vp := s.volt(vPrev, e.N1) - s.volt(vPrev, e.N2)
		vn := s.volt(vNow, e.N1) - s.volt(vNow, e.N2)
		geq := 2 * e.Value / h
		s.capI[e.Name] = geq*(vn-vp) - s.capI[e.Name]
	}
}
