package transient

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/linalg"
	"repro/internal/netlist"
)

// buckChain builds a buck converter followed by stages extra LC filter
// sections, sizing the system for the sparse backend while keeping the
// switching devices that exercise the conduction-state cache.
func buckChain(stages int, period float64) *netlist.Circuit {
	c := &netlist.Circuit{}
	c.AddV("Vin", "in", "0", netlist.Source{DC: 12})
	c.AddSwitch("S1", "in", "sw", 0.01, 1e7, netlist.Schedule{Period: period, OnTime: 0.4 * period})
	c.AddDiode("D1", "0", "sw", 0.01, 1e7)
	prev := "sw"
	for s := 0; s < stages; s++ {
		node := fmt.Sprintf("f%d", s)
		c.AddL(fmt.Sprintf("L%d", s), prev, node, 47e-6/(1+float64(s)))
		c.AddC(fmt.Sprintf("C%d", s), node, "0", 47e-6/(1+float64(s)))
		prev = node
	}
	c.AddK("K01", "L0", "L1", 0.1)
	c.AddR("RL", prev, "0", 4)
	return c
}

// TestSparseTransientMatchesDense runs the same switching simulation on
// both backends and compares the full output waveform. The sparse path
// factors per conduction state like the dense one, so the
// factorization-cache accounting must agree too.
func TestSparseTransientMatchesDense(t *testing.T) {
	t.Parallel()
	period := 5e-6
	c := buckChain(8, period)
	opt := Options{Step: period / 100, End: 10 * period, InitDC: true}

	optD := opt
	optD.Solver = linalg.ModeDense
	rd, err := Simulate(c, optD)
	if err != nil {
		t.Fatalf("dense: %v", err)
	}
	optS := opt
	optS.Solver = linalg.ModeSparse
	rs, err := Simulate(c, optS)
	if err != nil {
		t.Fatalf("sparse: %v", err)
	}
	if rd.factorizations != rs.factorizations {
		t.Errorf("factorization counts differ: dense %d sparse %d",
			rd.factorizations, rs.factorizations)
	}
	vd, vs := rd.Node("f7"), rs.Node("f7")
	peak := 0.0
	for _, v := range vd {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	for i := range vd {
		if math.Abs(vd[i]-vs[i]) > 1e-7*peak {
			t.Fatalf("step %d: dense %g sparse %g (peak %g)", i, vd[i], vs[i], peak)
		}
	}
	id, is := rd.Branch("L0"), rs.Branch("L0")
	for i := range id {
		if math.Abs(id[i]-is[i]) > 1e-6*(math.Abs(id[i])+1) {
			t.Fatalf("current step %d: dense %g sparse %g", i, id[i], is[i])
		}
	}
}

// TestSparseSingularPropagatesTimestep mirrors the dense singularity test
// on the forced-sparse backend: typed ErrSingular with t= context.
func TestSparseSingularPropagatesTimestep(t *testing.T) {
	t.Parallel()
	c := &netlist.Circuit{}
	c.AddV("V1", "n", "0", netlist.Source{DC: 1})
	c.AddV("V2", "n", "0", netlist.Source{DC: 2})
	c.AddR("R1", "n", "0", 10)
	_, err := Simulate(c, Options{Step: 1e-6, End: 1e-5, Solver: linalg.ModeSparse})
	if err == nil {
		t.Fatal("conflicting sources should be singular")
	}
	if !errors.Is(err, linalg.ErrSingular) {
		t.Errorf("error %v is not ErrSingular", err)
	}
	if !strings.Contains(err.Error(), "t=") {
		t.Errorf("error %q lacks the timestep context", err)
	}
}
