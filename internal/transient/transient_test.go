package transient

import (
	"math"
	"testing"

	"repro/internal/netlist"
)

func TestRCCharging(t *testing.T) {
	t.Parallel()
	// Step response of an RC: v(t) = V·(1 − e^{−t/RC}).
	R, C, V := 1000.0, 1e-6, 5.0
	tau := R * C
	c := &netlist.Circuit{}
	c.AddV("V1", "in", "0", netlist.Source{DC: V})
	c.AddR("R1", "in", "out", R)
	c.AddC("C1", "out", "0", C)
	res, err := Simulate(c, Options{Step: tau / 200, End: 5 * tau})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Node("out")
	for _, frac := range []float64{0.2, 0.5, 1, 2, 4} {
		idx := int(frac * 200)
		want := V * (1 - math.Exp(-frac))
		if math.Abs(v[idx]-want) > 0.02*V {
			t.Errorf("v(%.1fτ) = %v, want %v", frac, v[idx], want)
		}
	}
}

func TestRLCurrentRise(t *testing.T) {
	t.Parallel()
	// i(t) = V/R·(1 − e^{−tR/L}).
	R, L, V := 10.0, 1e-3, 5.0
	tau := L / R
	c := &netlist.Circuit{}
	c.AddV("V1", "in", "0", netlist.Source{DC: V})
	c.AddR("R1", "in", "a", R)
	c.AddL("L1", "a", "0", L)
	res, err := Simulate(c, Options{Step: tau / 200, End: 5 * tau})
	if err != nil {
		t.Fatal(err)
	}
	i := res.Branch("L1")
	for _, frac := range []float64{0.5, 1, 2, 4} {
		idx := int(frac * 200)
		want := V / R * (1 - math.Exp(-frac))
		if math.Abs(i[idx]-want) > 0.02*(V/R) {
			t.Errorf("i(%.1fτ) = %v, want %v", frac, i[idx], want)
		}
	}
}

func TestLCOscillationStable(t *testing.T) {
	t.Parallel()
	// Trapezoidal integration is A-stable and preserves the amplitude of a
	// lossless LC tank: inject a pulse and verify the oscillation neither
	// grows nor collapses.
	L, C := 10e-6, 1e-6
	f0 := 1 / (2 * math.Pi * math.Sqrt(L*C))
	c := &netlist.Circuit{}
	c.AddI("I1", "0", "tank", netlist.Source{Pulse: &netlist.Pulse{
		V1: 0, V2: 1, Width: 1 / (20 * f0), Period: 1e9,
	}})
	c.AddL("L1", "tank", "0", L)
	c.AddC("C1", "tank", "0", C)
	res, err := Simulate(c, Options{Step: 1 / (f0 * 400), End: 20 / f0})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Node("tank")
	// Peak in the 2nd vs 18th cycle.
	peak := func(fromCycle, toCycle float64) float64 {
		lo := int(fromCycle * 400)
		hi := int(toCycle * 400)
		max := 0.0
		for _, x := range v[lo:hi] {
			if math.Abs(x) > max {
				max = math.Abs(x)
			}
		}
		return max
	}
	early, late := peak(1, 3), peak(16, 18)
	if early == 0 {
		t.Fatal("no oscillation")
	}
	if math.Abs(late-early)/early > 0.05 {
		t.Errorf("amplitude drifted: early %v late %v", early, late)
	}
}

func TestHalfWaveRectifier(t *testing.T) {
	t.Parallel()
	// A diode + resistor against a sine-approximating pulse train: the
	// output never swings appreciably negative.
	c := &netlist.Circuit{}
	c.AddV("V1", "in", "0", netlist.Source{Pulse: &netlist.Pulse{
		V1: -5, V2: 5, Rise: 4e-4, Fall: 4e-4, Width: 1e-4, Period: 1e-3,
	}})
	c.AddDiode("D1", "in", "out", 0.1, 1e7)
	c.AddR("RL", "out", "0", 1000)
	res, err := Simulate(c, Options{Step: 1e-6, End: 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Node("out")
	min, max := 0.0, 0.0
	for _, x := range v {
		min = math.Min(min, x)
		max = math.Max(max, x)
	}
	if max < 4 {
		t.Errorf("positive peak = %v, want ≈ 5", max)
	}
	if min < -0.1 {
		t.Errorf("negative excursion = %v, diode failed to block", min)
	}
}

func TestBuckConverterAverage(t *testing.T) {
	t.Parallel()
	// A switch-diode-LC buck at duty D: average output ≈ D·Vin.
	Vin, D := 12.0, 0.4
	period := 5e-6
	c := &netlist.Circuit{}
	c.AddV("Vin", "in", "0", netlist.Source{DC: Vin})
	c.AddSwitch("S1", "in", "sw", 0.01, 1e7, netlist.Schedule{Period: period, OnTime: D * period})
	c.AddDiode("D1", "0", "sw", 0.01, 1e7)
	c.AddL("L1", "sw", "out", 47e-6)
	c.AddC("C1", "out", "0", 47e-6)
	c.AddR("RL", "out", "0", 4)
	res, err := Simulate(c, Options{Step: period / 200, End: 400 * period})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Node("out")
	// Average over the last 50 periods.
	lo := len(v) - 50*200
	sum := 0.0
	for _, x := range v[lo:] {
		sum += x
	}
	avg := sum / float64(len(v)-lo)
	if math.Abs(avg-D*Vin)/(D*Vin) > 0.08 {
		t.Errorf("buck average = %v, want ≈ %v", avg, D*Vin)
	}
}

func TestCoupledInductorsTransient(t *testing.T) {
	t.Parallel()
	// A step into the primary of a coupled pair induces secondary voltage
	// of the correct polarity and the coupling k=0 case induces none.
	build := func(k float64) *netlist.Circuit {
		c := &netlist.Circuit{}
		c.AddV("V1", "p", "0", netlist.Source{DC: 1})
		c.AddR("Rp", "p", "a", 10)
		c.AddL("Lp", "a", "0", 1e-3)
		c.AddL("Ls", "s", "0", 1e-3)
		c.AddR("Rs", "s", "0", 1e6)
		if k != 0 {
			c.AddK("K1", "Lp", "Ls", k)
		}
		return c
	}
	opt := Options{Step: 1e-7, End: 2e-5}
	resK, err := Simulate(build(0.8), opt)
	if err != nil {
		t.Fatal(err)
	}
	res0, err := Simulate(build(0), opt)
	if err != nil {
		t.Fatal(err)
	}
	vk := resK.Node("s")
	v0 := res0.Node("s")
	maxK, max0 := 0.0, 0.0
	for i := range vk {
		maxK = math.Max(maxK, math.Abs(vk[i]))
		max0 = math.Max(max0, math.Abs(v0[i]))
	}
	if maxK < 0.1 {
		t.Errorf("coupled secondary voltage = %v, want substantial", maxK)
	}
	if max0 > 1e-6 {
		t.Errorf("uncoupled secondary voltage = %v, want ≈ 0", max0)
	}
}

func TestInitDCStartsAtOperatingPoint(t *testing.T) {
	t.Parallel()
	// A DC source into a divider with a capacitor: from zero state the
	// output charges up; with InitDC it starts settled.
	c := &netlist.Circuit{}
	c.AddV("V1", "in", "0", netlist.Source{DC: 10})
	c.AddR("R1", "in", "out", 1000)
	c.AddR("R2", "out", "0", 1000)
	c.AddC("C1", "out", "0", 1e-6)
	c.AddL("L1", "in", "x", 1e-3)
	c.AddR("R3", "x", "0", 1000)

	res, err := Simulate(c, Options{Step: 1e-6, End: 1e-4, InitDC: true})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Node("out")
	// Already at the 5 V operating point from the first step.
	for _, idx := range []int{0, 1, 50} {
		if math.Abs(v[idx]-5) > 0.01 {
			t.Errorf("v[%d] = %v, want 5 (settled)", idx, v[idx])
		}
	}
	// The inductor branch starts at its DC current 10/1000.
	i := res.Branch("L1")
	if math.Abs(i[0]-0.01) > 1e-5 {
		t.Errorf("i_L(0) = %v, want 0.01", i[0])
	}
	// Without InitDC the start is at zero.
	res0, err := Simulate(c, Options{Step: 1e-6, End: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if res0.Node("out")[0] != 0 {
		t.Error("zero-state start expected without InitDC")
	}
}

func TestInitDCWithDiodeStates(t *testing.T) {
	t.Parallel()
	// Forward-biased diode conducts at the operating point.
	c := &netlist.Circuit{}
	c.AddV("V1", "in", "0", netlist.Source{DC: 5})
	c.AddDiode("D1", "in", "out", 0.1, 1e7)
	c.AddR("RL", "out", "0", 100)
	res, err := Simulate(c, Options{Step: 1e-6, End: 1e-5, InitDC: true})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Node("out")[0]; math.Abs(v-5*100/100.1) > 0.05 {
		t.Errorf("diode op point = %v", v)
	}
	// Reverse-biased diode blocks.
	c2 := &netlist.Circuit{}
	c2.AddV("V1", "in", "0", netlist.Source{DC: -5})
	c2.AddDiode("D1", "in", "out", 0.1, 1e7)
	c2.AddR("RL", "out", "0", 100)
	res2, err := Simulate(c2, Options{Step: 1e-6, End: 1e-5, InitDC: true})
	if err != nil {
		t.Fatal(err)
	}
	if v := res2.Node("out")[0]; math.Abs(v) > 1e-3 {
		t.Errorf("blocked diode op point = %v", v)
	}
}

func TestInvalidOptions(t *testing.T) {
	t.Parallel()
	c := &netlist.Circuit{}
	c.AddR("R1", "a", "0", 1)
	for _, opt := range []Options{
		{Step: 0, End: 1},
		{Step: 1, End: 0},
		{Step: 2, End: 1},
		{Step: -1, End: 1},
	} {
		if _, err := Simulate(c, opt); err == nil {
			t.Errorf("Simulate(%+v) should fail", opt)
		}
	}
}

func TestResultAccessors(t *testing.T) {
	t.Parallel()
	c := &netlist.Circuit{}
	c.AddV("V1", "n", "0", netlist.Source{DC: 1})
	c.AddR("R1", "n", "0", 1)
	res, err := Simulate(c, Options{Step: 1e-3, End: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Node("missing") != nil {
		t.Error("unknown node should be nil")
	}
	if res.Branch("R1") != nil {
		t.Error("resistor has no branch current")
	}
	g := res.Node("0")
	for _, x := range g {
		if x != 0 {
			t.Error("ground waveform must be zero")
		}
	}
	if len(res.Time) != len(res.Node("n")) {
		t.Error("time/waveform length mismatch")
	}
	// V source branch current: 1 V across 1 Ω ⇒ |i| = 1 A at steady state.
	iv := res.Branch("V1")
	if math.Abs(math.Abs(iv[len(iv)-1])-1) > 1e-6 {
		t.Errorf("source current = %v", iv[len(iv)-1])
	}
}
