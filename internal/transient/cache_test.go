package transient

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/linalg"
	"repro/internal/netlist"
)

// TestFactorizationKeyedOnConductionState: a buck period visits only a few
// switch/diode states, so a many-step run must perform a handful of LU
// factorizations — one per distinct state — not one per step.
func TestFactorizationKeyedOnConductionState(t *testing.T) {
	t.Parallel()
	period := 5e-6
	c := &netlist.Circuit{}
	c.AddV("Vin", "in", "0", netlist.Source{DC: 12})
	c.AddSwitch("S1", "in", "sw", 0.01, 1e7, netlist.Schedule{Period: period, OnTime: 0.4 * period})
	c.AddDiode("D1", "0", "sw", 0.01, 1e7)
	c.AddL("L1", "sw", "out", 47e-6)
	c.AddC("C1", "out", "0", 47e-6)
	c.AddR("RL", "out", "0", 4)
	res, err := Simulate(c, Options{Step: period / 200, End: 40 * period})
	if err != nil {
		t.Fatal(err)
	}
	steps := len(res.Time)
	// Two two-state devices bound the distinct conduction states at four.
	if res.factorizations > 4 {
		t.Errorf("%d factorizations over %d steps; want at most 4 (one per conduction state)",
			res.factorizations, steps)
	}
	if res.factorizations < 2 {
		t.Errorf("%d factorizations; a switching buck must visit at least 2 states",
			res.factorizations)
	}
}

// TestStatelessCircuitFactorsOnce: no switches, no diodes — one state, one
// factorization, every step a resolve.
func TestStatelessCircuitFactorsOnce(t *testing.T) {
	t.Parallel()
	c := &netlist.Circuit{}
	c.AddV("V1", "in", "0", netlist.Source{DC: 1})
	c.AddR("R1", "in", "out", 10)
	c.AddL("L1", "out", "0", 1e-3)
	res, err := Simulate(c, Options{Step: 1e-6, End: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.factorizations != 1 {
		t.Errorf("%d factorizations, want exactly 1", res.factorizations)
	}
}

// TestSingularPropagatesTimestep: conflicting ideal voltage sources are
// exactly singular; the error must be ErrSingular wrapped with the
// timestep at which the solve failed.
func TestSingularPropagatesTimestep(t *testing.T) {
	t.Parallel()
	c := &netlist.Circuit{}
	c.AddV("V1", "n", "0", netlist.Source{DC: 1})
	c.AddV("V2", "n", "0", netlist.Source{DC: 2})
	c.AddR("R1", "n", "0", 10)
	_, err := Simulate(c, Options{Step: 1e-6, End: 1e-5})
	if err == nil {
		t.Fatal("conflicting sources should be singular")
	}
	if !errors.Is(err, linalg.ErrSingular) {
		t.Errorf("error %v is not ErrSingular", err)
	}
	if !strings.Contains(err.Error(), "t=") {
		t.Errorf("error %q lacks the timestep context", err)
	}
}
