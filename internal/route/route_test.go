package route

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/peec"
	"repro/internal/rules"
)

func placedDesign() *layout.Design {
	d := &layout.Design{
		Name:      "routed",
		Boards:    1,
		Clearance: 0.5e-3,
		Areas: []layout.Area{
			{Name: "b", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, 0.08, 0.06))},
		},
		Rules: rules.NewSet(nil),
	}
	add := func(ref string, x, y float64) {
		d.Comps = append(d.Comps, &layout.Component{
			Ref: ref, W: 0.008, L: 0.005, H: 0.003,
			Placed: true, Center: geom.V2(x, y),
		})
	}
	add("A", 0.010, 0.010)
	add("B", 0.050, 0.010)
	add("C", 0.030, 0.040)
	add("D", 0.070, 0.040)
	add("E", 0.010, 0.050) // unconnected
	d.Nets = []layout.Net{
		{Name: "n1", Refs: []string{"A", "B", "C"}},
		{Name: "n2", Refs: []string{"C", "D"}},
	}
	return d
}

func TestNetsRoutesAllPlaced(t *testing.T) {
	t.Parallel()
	d := placedDesign()
	routes, err := Nets(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 2 {
		t.Fatalf("routes = %d", len(routes))
	}
	// Sorted by net name.
	if routes[0].Net != "n1" || routes[1].Net != "n2" {
		t.Errorf("order = %s, %s", routes[0].Net, routes[1].Net)
	}
	// The star route reaches every pin: total length at least the sum of
	// Manhattan pin-centroid distances.
	if routes[0].Length() < 0.05 {
		t.Errorf("n1 length = %v m", routes[0].Length())
	}
	// Routed copper has representative inductance (≈ 1 nH/mm scale).
	l := routes[0].Inductance()
	perMM := l / (routes[0].Length() * 1e3)
	if perMM < 0.3e-9 || perMM > 2e-9 {
		t.Errorf("trace inductance %v nH/mm implausible", perMM*1e9)
	}
}

func TestNetsSkipsUnplacedAndCrossBoard(t *testing.T) {
	t.Parallel()
	d := placedDesign()
	d.Comps[0].Placed = false // A unplaced → n1 skipped
	routes, err := Nets(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 1 || routes[0].Net != "n2" {
		t.Errorf("routes = %+v", routes)
	}
	// Cross-board net skipped.
	d2 := placedDesign()
	d2.Boards = 2
	d2.Areas = append(d2.Areas, layout.Area{
		Name: "b2", Board: 1, Poly: geom.RectPolygon(geom.R(0, 0, 0.08, 0.06)),
	})
	d2.Find("D").Board = 1
	routes, err = Nets(d2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 1 || routes[0].Net != "n1" {
		t.Errorf("cross-board routes = %+v", routes)
	}
}

func TestStarRouteDegeneratePin(t *testing.T) {
	t.Parallel()
	// Two coincident pins: centroid equals the pins, no copper needed.
	r := starRoute("x", []geom.Vec2{{X: 0.01, Y: 0.01}, {X: 0.01, Y: 0.01}}, Options{})
	if len(r.Traces) != 0 {
		t.Errorf("coincident pins produced %d traces", len(r.Traces))
	}
	// Axis-aligned pair: single-bend-free straight spokes.
	r = starRoute("y", []geom.Vec2{{X: 0, Y: 0.01}, {X: 0.02, Y: 0.01}}, Options{})
	if len(r.Traces) != 2 {
		t.Fatalf("traces = %d", len(r.Traces))
	}
	if math.Abs(r.Length()-0.02) > 1e-9 {
		t.Errorf("length = %v", r.Length())
	}
}

func TestChainTopology(t *testing.T) {
	t.Parallel()
	d := placedDesign()
	star, err := Nets(d, Options{Topology: Star})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := Nets(d, Options{Topology: Chain})
	if err != nil {
		t.Fatal(err)
	}
	if len(star) != len(chain) {
		t.Fatalf("route counts differ: %d vs %d", len(star), len(chain))
	}
	// A two-pin net routes identically in copper length either way.
	if math.Abs(star[1].Length()-chain[1].Length()) > 1e-9 {
		t.Errorf("n2 lengths differ: %v vs %v", star[1].Length(), chain[1].Length())
	}
	// For the 3-pin net the two topologies differ; both stay finite and
	// reach all pins (at least the Manhattan distance of the extremes).
	if chain[0].Length() < 0.05 {
		t.Errorf("chain n1 too short: %v", chain[0].Length())
	}
	// Chain visits each pin once: segment count = pins-1 (up to straight
	// hops merging nothing here).
	if len(chain[0].Traces) != 2 {
		t.Errorf("chain n1 traces = %d, want 2", len(chain[0].Traces))
	}
	// Deterministic.
	again, _ := Nets(d, Options{Topology: Chain})
	if again[0].Length() != chain[0].Length() {
		t.Error("chain routing not deterministic")
	}
}

func TestCouplingsBetweenParallelRuns(t *testing.T) {
	t.Parallel()
	// Two parallel straight nets couple; far-apart nets couple less.
	mk := func(y float64) Route {
		return starRoute("n", []geom.Vec2{{X: 0, Y: y}, {X: 0.04, Y: y}}, Options{})
	}
	near := Couplings([]Route{mk(0), mk(0.004)}, peec.DefaultOrder)
	far := Couplings([]Route{mk(0), mk(0.03)}, peec.DefaultOrder)
	if len(near) != 1 || len(far) != 1 {
		t.Fatalf("couplings = %d, %d", len(near), len(far))
	}
	if math.Abs(near[0].K) <= math.Abs(far[0].K) {
		t.Errorf("near k %v not above far k %v", near[0].K, far[0].K)
	}
	if math.Abs(near[0].K) < 0.05 {
		t.Errorf("adjacent parallel traces should couple strongly: %v", near[0].K)
	}
}

func TestReportFormat(t *testing.T) {
	t.Parallel()
	d := placedDesign()
	routes, err := Nets(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Report(routes)
	for _, want := range []string{"net", "n1", "n2", "L_nH"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestNetsValidatesDesign(t *testing.T) {
	t.Parallel()
	d := placedDesign()
	d.Areas = nil
	if _, err := Nets(d, Options{}); err == nil {
		t.Error("invalid design should error")
	}
}
