// Package route generates simple Manhattan star routes for the nets of a
// placed design and extracts their PEEC parasitics: the "inductances of
// lines" that the paper's interference prediction includes alongside the
// component parasitics, and the magnetic coupling between trace runs.
//
// The router is deliberately elementary — each net member connects to the
// net's centroid with an L-shaped (x-then-y) path on the board surface —
// because the reproduction needs representative trace geometry, not
// detailed routing. Widths and copper thickness feed the GMD-equivalent
// radius of the trace filaments.
package route

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/components"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/peec"
)

// Topology selects the net routing pattern.
type Topology int

// Routing topologies.
const (
	// Star connects every pin to the net centroid (default): short spokes,
	// a hub suited to supply nets.
	Star Topology = iota
	// Chain connects the pins in nearest-neighbour order: the daisy-chain
	// of signal nets, usually less copper for stretched nets.
	Chain
)

// Options configures the router.
type Options struct {
	Width     float64 // trace width; 0 = 1 mm
	Thickness float64 // copper thickness; 0 = 35 µm
	Z         float64 // routing height above the reference plane; 0 = 0.1 mm
	Topology  Topology
}

func (o Options) width() float64 {
	if o.Width <= 0 {
		return 1e-3
	}
	return o.Width
}

func (o Options) thickness() float64 {
	if o.Thickness <= 0 {
		return 35e-6
	}
	return o.Thickness
}

func (o Options) z() float64 {
	if o.Z <= 0 {
		return 0.1e-3
	}
	return o.Z
}

// Route is the realized copper of one net.
type Route struct {
	Net    string
	Traces []components.Trace
}

// Length returns the total routed copper length.
func (r *Route) Length() float64 {
	sum := 0.0
	for i := range r.Traces {
		sum += r.Traces[i].Length()
	}
	return sum
}

// Conductor merges the route's traces into one PEEC structure (series
// current path approximation: all spokes carry the net current).
func (r *Route) Conductor() *peec.Conductor {
	out := &peec.Conductor{MuEff: 1}
	for i := range r.Traces {
		out.Append(r.Traces[i].Conductor())
	}
	return out
}

// Inductance returns the partial inductance of the routed net.
func (r *Route) Inductance() float64 {
	return r.Conductor().SelfInductance()
}

// Nets routes every net of the design whose members are all placed on the
// same board. Nets spanning boards or with unplaced members are skipped
// with no error (they simply have no copper yet).
func Nets(d *layout.Design, opt Options) ([]Route, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	var out []Route
	for _, n := range d.Nets {
		var pts []geom.Vec2
		sameBoard := true
		board := -1
		for _, ref := range n.Refs {
			c := d.Find(ref)
			if c == nil || !c.Placed {
				pts = nil
				break
			}
			if board == -1 {
				board = c.Board
			} else if c.Board != board {
				sameBoard = false
			}
			pts = append(pts, c.Center)
		}
		if len(pts) < 2 || !sameBoard {
			continue
		}
		switch opt.Topology {
		case Chain:
			out = append(out, chainRoute(n.Name, pts, opt))
		default:
			out = append(out, starRoute(n.Name, pts, opt))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Net < out[j].Net })
	return out, nil
}

// starRoute connects every pin to the centroid with an L-shaped path.
func starRoute(name string, pts []geom.Vec2, opt Options) Route {
	var centroid geom.Vec2
	for _, p := range pts {
		centroid = centroid.Add(p)
	}
	centroid = centroid.Scale(1 / float64(len(pts)))
	z := opt.z()
	r := Route{Net: name}
	for _, p := range pts {
		path := []geom.Vec3{p.Lift(z)}
		if math.Abs(p.X-centroid.X) > 1e-9 {
			path = append(path, geom.V2(centroid.X, p.Y).Lift(z))
		}
		if math.Abs(p.Y-centroid.Y) > 1e-9 {
			path = append(path, centroid.Lift(z))
		}
		if len(path) < 2 {
			continue // pin sits on the centroid
		}
		r.Traces = append(r.Traces, components.Trace{
			Points:    path,
			Width:     opt.width(),
			Thickness: opt.thickness(),
		})
	}
	return r
}

// chainRoute daisy-chains the pins in greedy nearest-neighbour order with
// L-shaped hops.
func chainRoute(name string, pts []geom.Vec2, opt Options) Route {
	z := opt.z()
	r := Route{Net: name}
	remaining := append([]geom.Vec2(nil), pts...)
	// Start from the leftmost pin for determinism.
	start := 0
	for i, p := range remaining {
		if p.X < remaining[start].X ||
			(p.X == remaining[start].X && p.Y < remaining[start].Y) {
			start = i
		}
	}
	cur := remaining[start]
	remaining = append(remaining[:start], remaining[start+1:]...)
	for len(remaining) > 0 {
		next := 0
		for i, p := range remaining {
			if cur.Dist(p) < cur.Dist(remaining[next]) {
				next = i
			}
		}
		to := remaining[next]
		remaining = append(remaining[:next], remaining[next+1:]...)
		path := []geom.Vec3{cur.Lift(z)}
		if math.Abs(cur.X-to.X) > 1e-9 {
			path = append(path, geom.V2(to.X, cur.Y).Lift(z))
		}
		if math.Abs(cur.Y-to.Y) > 1e-9 {
			path = append(path, to.Lift(z))
		}
		if len(path) >= 2 {
			r.Traces = append(r.Traces, components.Trace{
				Points:    path,
				Width:     opt.width(),
				Thickness: opt.thickness(),
			})
		}
		cur = to
	}
	return r
}

// Coupling quantifies the magnetic interaction of two routed nets.
type Coupling struct {
	NetA, NetB string
	K          float64
}

// Couplings computes the pairwise coupling factors between routes — trace
// runs are field sources too, exactly like component current loops.
func Couplings(routes []Route, order int) []Coupling {
	type entry struct {
		cond *peec.Conductor
		l    float64
	}
	entries := make([]entry, len(routes))
	for i := range routes {
		c := routes[i].Conductor()
		entries[i] = entry{cond: c, l: c.SelfInductance()}
	}
	var out []Coupling
	for i := 0; i < len(routes); i++ {
		for j := i + 1; j < len(routes); j++ {
			if entries[i].l <= 0 || entries[j].l <= 0 {
				continue
			}
			k := peec.Mutual(entries[i].cond, entries[j].cond, order) /
				math.Sqrt(entries[i].l*entries[j].l)
			out = append(out, Coupling{
				NetA: routes[i].Net, NetB: routes[j].Net, K: k,
			})
		}
	}
	return out
}

// Report formats a routing summary (lengths and inductances) for CLI use.
func Report(routes []Route) string {
	s := fmt.Sprintf("%-12s %10s %12s\n", "net", "length_mm", "L_nH")
	for i := range routes {
		s += fmt.Sprintf("%-12s %10.1f %12.1f\n",
			routes[i].Net, routes[i].Length()*1e3, routes[i].Inductance()*1e9)
	}
	return s
}
