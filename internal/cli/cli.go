// Package cli holds flag wiring shared by every command: the -stats
// engine-statistics dump and the -timeout computation deadline. Each
// helper registers its flag before flag.Parse and returns a closure the
// command invokes afterwards, so the four binaries stay byte-for-byte
// consistent in flag names, help text and behaviour.
package cli

import (
	"context"
	"flag"
	"os"

	"repro/internal/engine"
)

// StatsOn registers -stats on fs and returns a dump function: a no-op
// unless the flag was set, in which case it prints the engine statistics
// (solves, cache, phases) to stderr. Commands that exit through os.Exit
// must call it explicitly before exiting; otherwise `defer dump()` after
// fs.Parse is the idiom.
func StatsOn(fs *flag.FlagSet) (dump func()) {
	on := fs.Bool("stats", false, "print engine statistics (solves, cache, phases) to stderr")
	return func() {
		if *on {
			engine.Fprint(os.Stderr)
		}
	}
}

// Stats is StatsOn for the default command-line flag set.
func Stats() (dump func()) { return StatsOn(flag.CommandLine) }

// TimeoutOn registers -timeout on fs and returns a context factory: after
// fs.Parse it yields the context every computation should run under — a
// plain background context when the flag is unset, or one cancelled after
// the flag's duration. The caller owns the returned cancel func.
func TimeoutOn(fs *flag.FlagSet) func() (context.Context, context.CancelFunc) {
	d := fs.Duration("timeout", 0, "abort the computation after this duration (0 = no deadline)")
	return func() (context.Context, context.CancelFunc) {
		if *d <= 0 {
			return context.Background(), func() {}
		}
		return context.WithTimeout(context.Background(), *d)
	}
}

// Timeout is TimeoutOn for the default command-line flag set.
func Timeout() func() (context.Context, context.CancelFunc) {
	return TimeoutOn(flag.CommandLine)
}
