// Package cli holds flag wiring shared by every command: the -stats
// engine-statistics dump, the -timeout computation deadline, the -trace
// span capture and the -debug-addr pprof server. Each helper registers
// its flag before flag.Parse and returns a closure the command invokes
// afterwards, so the binaries stay byte-for-byte consistent in flag
// names, help text and behaviour.
package cli

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"

	"repro/internal/engine"
	"repro/internal/linalg"
	"repro/internal/obs"
)

// StatsOn registers -stats on fs and returns a dump function: a no-op
// unless the flag was set, in which case it prints the engine statistics
// (solves, cache, phases) to stderr. Commands that exit through os.Exit
// must call it explicitly before exiting; otherwise `defer dump()` after
// fs.Parse is the idiom.
func StatsOn(fs *flag.FlagSet) (dump func()) {
	on := fs.Bool("stats", false, "print engine statistics (solves, cache, phases) to stderr")
	return func() {
		if *on {
			engine.Fprint(os.Stderr)
		}
	}
}

// Stats is StatsOn for the default command-line flag set.
func Stats() (dump func()) { return StatsOn(flag.CommandLine) }

// SolverOn registers -solver on fs and returns an apply function for use
// after fs.Parse: it parses the flag (auto | dense | sparse), installs it
// as the process-wide default MNA factorization backend, and labels the
// engine statistics so a -stats dump records which backend ran and
// whether it was forced. An invalid value is returned as an error for the
// command to report.
func SolverOn(fs *flag.FlagSet) (apply func() error) {
	mode := fs.String("solver", "auto", "MNA factorization backend: auto, dense or sparse")
	return func() error {
		m, err := linalg.ParseSolverMode(*mode)
		if err != nil {
			return err
		}
		linalg.SetDefaultSolver(m)
		label := m.String()
		if m != linalg.ModeAuto {
			label += " (forced)"
		}
		engine.SetSolverLabel(label)
		return nil
	}
}

// Solver is SolverOn for the default command-line flag set.
func Solver() (apply func() error) { return SolverOn(flag.CommandLine) }

// TimeoutOn registers -timeout on fs and returns a context factory: after
// fs.Parse it yields the context every computation should run under — a
// plain background context when the flag is unset, or one cancelled after
// the flag's duration. The caller owns the returned cancel func.
func TimeoutOn(fs *flag.FlagSet) func() (context.Context, context.CancelFunc) {
	d := fs.Duration("timeout", 0, "abort the computation after this duration (0 = no deadline)")
	return func() (context.Context, context.CancelFunc) {
		if *d <= 0 {
			return context.Background(), func() {}
		}
		return context.WithTimeout(context.Background(), *d)
	}
}

// Timeout is TimeoutOn for the default command-line flag set.
func Timeout() func() (context.Context, context.CancelFunc) {
	return TimeoutOn(flag.CommandLine)
}

// TraceOn registers -trace on fs and returns a wrap function for use
// after fs.Parse: it attaches a verbose span trace to the given context
// and returns the traced context plus a finish func that writes the
// collected spans as Chrome trace_event JSON to the flag's file (load it
// in chrome://tracing or Perfetto). With the flag unset, wrap returns the
// context unchanged and a no-op — the span fast path stays a nil check.
func TraceOn(fs *flag.FlagSet) func(ctx context.Context) (context.Context, func()) {
	path := fs.String("trace", "", "write a Chrome trace_event JSON of the run to this file")
	return func(ctx context.Context) (context.Context, func()) {
		if *path == "" {
			return ctx, func() {}
		}
		tr := obs.NewTrace("run")
		tr.SetVerbose(true)
		return obs.WithTrace(ctx, tr), func() {
			tr.Finish()
			f, err := os.Create(*path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
				return
			}
			defer f.Close()
			if err := tr.WriteChrome(f); err != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "trace: %d spans written to %s\n", tr.Len(), *path)
		}
	}
}

// Trace is TraceOn for the default command-line flag set.
func Trace() func(ctx context.Context) (context.Context, func()) {
	return TraceOn(flag.CommandLine)
}

// DebugAddrOn registers -debug-addr on fs and returns a start function:
// a no-op unless the flag was set, in which case it serves net/http/pprof
// (/debug/pprof/...) on the given address in a background goroutine —
// the opt-in profiling surface for CPU, heap and goroutine diagnostics.
func DebugAddrOn(fs *flag.FlagSet) (start func()) {
	addr := fs.String("debug-addr", "", "serve /debug/pprof on this address (e.g. 127.0.0.1:8081); empty = off")
	return func() {
		if *addr == "" {
			return
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*addr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "debug-addr: %v\n", err)
			}
		}()
	}
}

// DebugAddr is DebugAddrOn for the default command-line flag set.
func DebugAddr() (start func()) { return DebugAddrOn(flag.CommandLine) }
