package cli

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/linalg"
	"repro/internal/obs"
)

func TestTimeoutUnset(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	mk := TimeoutOn(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := mk()
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("unset -timeout produced a deadline")
	}
	if ctx.Err() != nil {
		t.Fatal(ctx.Err())
	}
}

func TestTimeoutSet(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	mk := TimeoutOn(fs)
	if err := fs.Parse([]string{"-timeout", "1ms"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := mk()
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("-timeout 1ms produced no deadline")
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("deadline never fired")
	}
	if ctx.Err() != context.DeadlineExceeded {
		t.Fatalf("err = %v", ctx.Err())
	}
}

func TestStatsFlagRegistered(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	dump := StatsOn(fs)
	if fs.Lookup("stats") == nil {
		t.Fatal("-stats not registered")
	}
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	dump() // unset: must be a no-op and not panic
}

func TestSolverFlag(t *testing.T) {
	prev := linalg.DefaultSolver()
	defer func() {
		linalg.SetDefaultSolver(prev)
		engine.SetSolverLabel("")
	}()

	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	apply := SolverOn(fs)
	if fs.Lookup("solver") == nil {
		t.Fatal("-solver not registered")
	}
	if err := fs.Parse([]string{"-solver", "sparse"}); err != nil {
		t.Fatal(err)
	}
	if err := apply(); err != nil {
		t.Fatal(err)
	}
	if got := linalg.DefaultSolver(); got != linalg.ModeSparse {
		t.Fatalf("default solver = %v, want sparse", got)
	}
	if got := engine.SolverLabel(); got != "sparse (forced)" {
		t.Fatalf("stats label = %q, want forced sparse", got)
	}

	// auto: default backend, label without the forced marker.
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	apply2 := SolverOn(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := apply2(); err != nil {
		t.Fatal(err)
	}
	if got := linalg.DefaultSolver(); got != linalg.ModeAuto {
		t.Fatalf("default solver = %v, want auto", got)
	}
	if got := engine.SolverLabel(); got != "auto" {
		t.Fatalf("stats label = %q, want %q", got, "auto")
	}

	// Invalid values surface as errors, not panics.
	fs3 := flag.NewFlagSet("t", flag.ContinueOnError)
	apply3 := SolverOn(fs3)
	if err := fs3.Parse([]string{"-solver", "cholesky"}); err != nil {
		t.Fatal(err)
	}
	if err := apply3(); err == nil {
		t.Fatal("invalid -solver value not rejected")
	}
}

func TestTraceUnset(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	mk := TraceOn(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	ctx, finish := mk(context.Background())
	if obs.TraceOf(ctx) != nil {
		t.Fatal("unset -trace attached a trace to the context")
	}
	finish() // must be a no-op and not panic
}

func TestTraceSetWritesChromeJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	mk := TraceOn(fs)
	if err := fs.Parse([]string{"-trace", path}); err != nil {
		t.Fatal(err)
	}
	ctx, finish := mk(context.Background())
	if obs.TraceOf(ctx) == nil {
		t.Fatal("-trace did not attach a trace")
	}
	_, sp := obs.Start(ctx, "work")
	sp.Int("items", 3)
	sp.End()
	finish()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &chrome); err != nil {
		t.Fatalf("trace file is not valid JSON: %v\n%s", err, data)
	}
	found := false
	for _, ev := range chrome.TraceEvents {
		if ev.Name == "work" {
			found = true
		}
	}
	if !found {
		t.Fatalf("span %q missing from trace events: %s", "work", data)
	}
}

func TestDebugAddrRegistered(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	start := DebugAddrOn(fs)
	if fs.Lookup("debug-addr") == nil {
		t.Fatal("-debug-addr not registered")
	}
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	start() // unset: must be a no-op and not panic
}
