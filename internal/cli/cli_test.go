package cli

import (
	"context"
	"flag"
	"testing"
	"time"
)

func TestTimeoutUnset(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	mk := TimeoutOn(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := mk()
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("unset -timeout produced a deadline")
	}
	if ctx.Err() != nil {
		t.Fatal(ctx.Err())
	}
}

func TestTimeoutSet(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	mk := TimeoutOn(fs)
	if err := fs.Parse([]string{"-timeout", "1ms"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := mk()
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("-timeout 1ms produced no deadline")
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("deadline never fired")
	}
	if ctx.Err() != context.DeadlineExceeded {
		t.Fatalf("err = %v", ctx.Err())
	}
}

func TestStatsFlagRegistered(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	dump := StatsOn(fs)
	if fs.Lookup("stats") == nil {
		t.Fatal("-stats not registered")
	}
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	dump() // unset: must be a no-op and not panic
}
