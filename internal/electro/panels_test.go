package electro

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestSphereCapacitance(t *testing.T) {
	t.Parallel()
	// Analytic: C = 4πε0·R.
	R := 0.01
	panels := SpherePanels(geom.V3(0, 0, 0), R, 12, 24)
	got, err := SelfCapacitance(panels)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * math.Pi * Eps0 * R
	if relErr(got, want) > 0.03 {
		t.Errorf("C(sphere) = %v vs analytic %v (relerr %.3f)", got, want, relErr(got, want))
	}
}

func TestSphereTranslationInvariance(t *testing.T) {
	t.Parallel()
	R := 0.005
	a, err := SelfCapacitance(SpherePanels(geom.V3(0, 0, 0), R, 10, 20))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelfCapacitance(SpherePanels(geom.V3(1, -2, 3), R, 10, 20))
	if err != nil {
		t.Fatal(err)
	}
	if relErr(a, b) > 1e-9 {
		t.Errorf("translation changed C: %v vs %v", a, b)
	}
}

func TestCubeCapacitance(t *testing.T) {
	t.Parallel()
	// Known numerical result: C(cube, edge a) ≈ 0.6607·4πε0·a.
	a := 0.01
	panels := CuboidPanels(geom.CuboidOf(geom.R(0, 0, a, a), 0, a), a/6)
	got, err := SelfCapacitance(panels)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.6607 * 4 * math.Pi * Eps0 * a
	if relErr(got, want) > 0.05 {
		t.Errorf("C(cube) = %v vs reference %v (relerr %.3f)", got, want, relErr(got, want))
	}
}

func TestSquarePlateCapacitance(t *testing.T) {
	t.Parallel()
	// Known: C(square plate, side a) ≈ 0.3667·4πε0·a·... the standard
	// value is C = 4ε0·a·0.3667·π? Use the accepted 40.8 pF per meter of
	// side length: C ≈ 4.08e-11·a.
	a := 0.02
	panels := PlatePanels(geom.R(0, 0, a, a), 0, a/10)
	got, err := SelfCapacitance(panels)
	if err != nil {
		t.Fatal(err)
	}
	want := 4.08e-11 * a
	if relErr(got, want) > 0.06 {
		t.Errorf("C(plate) = %v vs reference %v (relerr %.3f)", got, want, relErr(got, want))
	}
}

func TestParallelPlates(t *testing.T) {
	t.Parallel()
	// Close plates: C ≥ ε0·A/d, with fringing adding tens of percent.
	a, d := 0.02, 0.002
	top := PlatePanels(geom.R(0, 0, a, a), d, a/10)
	bot := PlatePanels(geom.R(0, 0, a, a), 0, a/10)
	got, err := MutualCapacitance(top, bot)
	if err != nil {
		t.Fatal(err)
	}
	ideal := Eps0 * a * a / d
	if got < ideal || got > 1.8*ideal {
		t.Errorf("C(parallel plates) = %v, ideal %v", got, ideal)
	}
}

func TestMutualCapacitanceDecaysWithDistance(t *testing.T) {
	t.Parallel()
	box := func(x float64) []Panel {
		return CuboidPanels(geom.CuboidOf(geom.R(x, 0, x+0.01, 0.008), 0, 0.012), 3e-3)
	}
	a := box(0)
	prev := math.Inf(1)
	for _, d := range []float64{0.015, 0.025, 0.04} {
		c, err := MutualCapacitance(a, box(d))
		if err != nil {
			t.Fatal(err)
		}
		if c <= 0 {
			t.Fatalf("mutual capacitance = %v at %v", c, d)
		}
		if c >= prev {
			t.Errorf("C did not decay at %v: %v >= %v", d, c, prev)
		}
		prev = c
	}
}

func TestMaxwellMatrixProperties(t *testing.T) {
	t.Parallel()
	a := SpherePanels(geom.V3(0, 0, 0), 0.004, 8, 16)
	b := SpherePanels(geom.V3(0.02, 0, 0), 0.004, 8, 16)
	c, err := CapacitanceMatrix([][]Panel{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal positive, off-diagonal negative, symmetric, diagonally
	// dominant.
	if c[0][0] <= 0 || c[1][1] <= 0 {
		t.Errorf("diagonal = %v %v", c[0][0], c[1][1])
	}
	if c[0][1] >= 0 || c[1][0] >= 0 {
		t.Errorf("off-diagonal = %v %v", c[0][1], c[1][0])
	}
	if relErr(c[0][1], c[1][0]) > 0.02 {
		t.Errorf("asymmetric: %v vs %v", c[0][1], c[1][0])
	}
	if c[0][0] < -c[0][1] {
		t.Error("not diagonally dominant")
	}
	// Two distant equal spheres: identical diagonals.
	if relErr(c[0][0], c[1][1]) > 0.02 {
		t.Errorf("diagonals differ: %v vs %v", c[0][0], c[1][1])
	}
}

func TestTwoSpheresFarFieldCoefficient(t *testing.T) {
	t.Parallel()
	// For d >> R the induction coefficient approaches −4πε0·R²/d.
	R := 0.003
	for _, d := range []float64{0.05, 0.08} {
		a := SpherePanels(geom.V3(0, 0, 0), R, 8, 16)
		b := SpherePanels(geom.V3(d, 0, 0), R, 8, 16)
		c, err := CapacitanceMatrix([][]Panel{a, b})
		if err != nil {
			t.Fatal(err)
		}
		want := -4 * math.Pi * Eps0 * R * R / d
		if relErr(c[0][1], want) > 0.1 {
			t.Errorf("d=%v: c12 = %v vs far-field %v", d, c[0][1], want)
		}
	}
}

func TestErrorsAndDegenerate(t *testing.T) {
	t.Parallel()
	if _, err := CapacitanceMatrix(nil); err == nil {
		t.Error("empty conductor set should fail")
	}
	if _, err := CapacitanceMatrix([][]Panel{{}}); err == nil {
		t.Error("empty panel group should fail")
	}
	// maxEdge defaulting and single-panel faces.
	p := CuboidPanels(geom.CuboidOf(geom.R(0, 0, 1e-3, 1e-3), 0, 1e-3), 0)
	if len(p) != 6 {
		t.Errorf("tiny cube panels = %d, want 6", len(p))
	}
}
