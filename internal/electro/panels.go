// Package electro implements an electrostatic panel method (the
// capacitance counterpart of PEEC's partial inductances) used to estimate
// the capacitive coupling between component bodies — the effect the paper
// notes "gains more influence at higher frequencies".
//
// Conductor surfaces are discretised into rectangular panels with uniform
// charge. The potential-coefficient matrix uses collocation at panel
// centers; the self term is the exact average potential of an equal-area
// uniformly charged disc. Solving P·q = v for unit-potential patterns
// yields the Maxwell capacitance matrix.
package electro

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/linalg"
)

// Eps0 is the vacuum permittivity in F/m.
const Eps0 = 8.8541878128e-12

// Panel is a flat surface element with uniform charge density.
type Panel struct {
	Center geom.Vec3
	Area   float64
}

// CuboidPanels discretises the full surface of a cuboid into panels with
// edges no longer than maxEdge.
func CuboidPanels(c geom.Cuboid, maxEdge float64) []Panel {
	if maxEdge <= 0 {
		maxEdge = 2e-3
	}
	var out []Panel
	b := c.Base
	// face adds a planar grid of panels: the face spans uRange×vRange at
	// the given fixed coordinate along the remaining axis.
	face := func(u0, u1, v0, v1 float64, at func(u, v float64) geom.Vec3) {
		nu := int(math.Ceil((u1 - u0) / maxEdge))
		nv := int(math.Ceil((v1 - v0) / maxEdge))
		if nu < 1 {
			nu = 1
		}
		if nv < 1 {
			nv = 1
		}
		du := (u1 - u0) / float64(nu)
		dv := (v1 - v0) / float64(nv)
		for i := 0; i < nu; i++ {
			for j := 0; j < nv; j++ {
				u := u0 + (float64(i)+0.5)*du
				v := v0 + (float64(j)+0.5)*dv
				out = append(out, Panel{Center: at(u, v), Area: du * dv})
			}
		}
	}
	// Bottom and top (z = Z0 / Z1).
	face(b.Min.X, b.Max.X, b.Min.Y, b.Max.Y, func(u, v float64) geom.Vec3 {
		return geom.V3(u, v, c.Z0)
	})
	face(b.Min.X, b.Max.X, b.Min.Y, b.Max.Y, func(u, v float64) geom.Vec3 {
		return geom.V3(u, v, c.Z1)
	})
	// Front and back (y = Min.Y / Max.Y).
	face(b.Min.X, b.Max.X, c.Z0, c.Z1, func(u, v float64) geom.Vec3 {
		return geom.V3(u, b.Min.Y, v)
	})
	face(b.Min.X, b.Max.X, c.Z0, c.Z1, func(u, v float64) geom.Vec3 {
		return geom.V3(u, b.Max.Y, v)
	})
	// Left and right (x = Min.X / Max.X).
	face(b.Min.Y, b.Max.Y, c.Z0, c.Z1, func(u, v float64) geom.Vec3 {
		return geom.V3(b.Min.X, u, v)
	})
	face(b.Min.Y, b.Max.Y, c.Z0, c.Z1, func(u, v float64) geom.Vec3 {
		return geom.V3(b.Max.X, u, v)
	})
	return out
}

// PlatePanels discretises a rectangle at height z into panels (a single
// charged sheet, e.g. one electrode of a parallel-plate test).
func PlatePanels(r geom.Rect, z, maxEdge float64) []Panel {
	cub := geom.Cuboid{Base: r, Z0: z, Z1: z}
	// Only the "bottom" face of the degenerate cuboid: replicate the face
	// logic via CuboidPanels would double the sheet, so build directly.
	if maxEdge <= 0 {
		maxEdge = 2e-3
	}
	nu := int(math.Ceil(r.W() / maxEdge))
	nv := int(math.Ceil(r.H() / maxEdge))
	if nu < 1 {
		nu = 1
	}
	if nv < 1 {
		nv = 1
	}
	du, dv := r.W()/float64(nu), r.H()/float64(nv)
	out := make([]Panel, 0, nu*nv)
	for i := 0; i < nu; i++ {
		for j := 0; j < nv; j++ {
			out = append(out, Panel{
				Center: geom.V3(r.Min.X+(float64(i)+0.5)*du, r.Min.Y+(float64(j)+0.5)*dv, cub.Z0),
				Area:   du * dv,
			})
		}
	}
	return out
}

// SpherePanels approximates a sphere by a latitude/longitude grid of
// panels (for validation against the analytic sphere capacitance).
func SpherePanels(center geom.Vec3, radius float64, nTheta, nPhi int) []Panel {
	if nTheta < 2 {
		nTheta = 2
	}
	if nPhi < 3 {
		nPhi = 3
	}
	var out []Panel
	for i := 0; i < nTheta; i++ {
		t0 := math.Pi * float64(i) / float64(nTheta)
		t1 := math.Pi * float64(i+1) / float64(nTheta)
		tm := (t0 + t1) / 2
		for j := 0; j < nPhi; j++ {
			pm := 2 * math.Pi * (float64(j) + 0.5) / float64(nPhi)
			area := radius * radius * (math.Cos(t0) - math.Cos(t1)) * 2 * math.Pi / float64(nPhi)
			st, ct := math.Sincos(tm)
			sp, cp := math.Sincos(pm)
			out = append(out, Panel{
				Center: center.Add(geom.V3(radius*st*cp, radius*st*sp, radius*ct)),
				Area:   area,
			})
		}
	}
	return out
}

// potential returns the collocation potential coefficient between panels i
// and j: 1/(4πε0·d) off-diagonal, and the exact average self-potential of
// an equal-area uniformly charged disc, 16/(3π)·1/(4πε0·R), on the
// diagonal (from the disc's electrostatic energy W = 8/(3π)·q²/(4πε0·R),
// V_avg = 2W/q).
func potential(pi, pj Panel, same bool) float64 {
	if same {
		r := math.Sqrt(pi.Area / math.Pi)
		return 16 / (3 * math.Pi) / (4 * math.Pi * Eps0 * r)
	}
	d := pi.Center.Dist(pj.Center)
	if d == 0 {
		// Coincident distinct panels: regularise with the disc radius.
		d = math.Sqrt(pi.Area / math.Pi)
	}
	return 1 / (4 * math.Pi * Eps0 * d)
}

// CapacitanceMatrix computes the Maxwell capacitance matrix of a set of
// conductors, each given as a group of panels: C[i][j] relates the charge
// on conductor i to the potential of conductor j (diagonal positive,
// off-diagonal negative).
func CapacitanceMatrix(conductors [][]Panel) ([][]float64, error) {
	nc := len(conductors)
	if nc == 0 {
		return nil, fmt.Errorf("electro: no conductors")
	}
	var panels []Panel
	owner := []int{}
	for ci, group := range conductors {
		if len(group) == 0 {
			return nil, fmt.Errorf("electro: conductor %d has no panels", ci)
		}
		panels = append(panels, group...)
		for range group {
			owner = append(owner, ci)
		}
	}
	n := len(panels)
	p := linalg.NewReal(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// Charge unknowns are total panel charges: φ_i = Σ_j P_ij·q_j
			// with P already per unit charge.
			p.Set(i, j, potential(panels[i], panels[j], i == j))
		}
	}
	// Solve once per conductor with its potential at 1 V, others at 0.
	// The matrix is destroyed by Solve, so factor repeatedly on copies.
	out := make([][]float64, nc)
	for i := range out {
		out[i] = make([]float64, nc)
	}
	base := append([]float64(nil), p.V...)
	for ci := 0; ci < nc; ci++ {
		rhs := make([]float64, n)
		for i := 0; i < n; i++ {
			if owner[i] == ci {
				rhs[i] = 1
			}
		}
		m := &linalg.Real{N: n, V: append([]float64(nil), base...)}
		q, err := m.Solve(rhs)
		if err != nil {
			return nil, fmt.Errorf("electro: %w", err)
		}
		for i := 0; i < n; i++ {
			out[owner[i]][ci] += q[i]
		}
	}
	return out, nil
}

// SelfCapacitance returns the free-space capacitance of a single conductor.
func SelfCapacitance(panels []Panel) (float64, error) {
	c, err := CapacitanceMatrix([][]Panel{panels})
	if err != nil {
		return 0, err
	}
	return c[0][0], nil
}

// MutualCapacitance returns the coupling capacitance between two
// conductors: the negated off-diagonal Maxwell coefficient, which is the
// value of the equivalent circuit capacitor between them.
//
// The collocation discretisation is valid while the panels are small
// compared to the conductor separation; when that is violated (e.g. a
// sub-millimeter gap meshed with millimeter panels) the potential matrix
// loses diagonal dominance and the result turns unphysical, which is
// reported as an error. Use finer panels — or, for thin uniform gaps, the
// parallel-plate formula.
func MutualCapacitance(a, b []Panel) (float64, error) {
	c, err := CapacitanceMatrix([][]Panel{a, b})
	if err != nil {
		return 0, err
	}
	m := -(c[0][1] + c[1][0]) / 2
	if m <= 0 {
		return 0, fmt.Errorf("electro: unphysical mutual capacitance %g F — panel size exceeds the conductor gap; refine maxEdge", m)
	}
	return m, nil
}
