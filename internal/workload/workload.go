// Package workload generates synthetic placement problems for benchmarks
// and the paper's Figure 9 experiment: a complex power electronic board
// with 29 devices, 100 pairwise minimum distances and three functional
// groups, solved by the automatic placement method in seconds.
package workload

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/rules"
)

// Complex29 builds the Figure 9 problem: 29 devices on a 160×120 mm board
// with exactly 100 minimum-distance rules and 3 functional groups. The
// generator is deterministic.
func Complex29() *layout.Design {
	return Synthetic(29, 100, 3, 0.16, 0.12)
}

// Synthetic builds a deterministic placement problem with n components,
// ruleCount pairwise PEMD rules distributed over the magnetic components,
// and groupCount functional groups on a boardW×boardH meter board.
func Synthetic(n, ruleCount, groupCount int, boardW, boardH float64) *layout.Design {
	d := &layout.Design{
		Name:      fmt.Sprintf("synthetic-%d", n),
		Boards:    1,
		Clearance: 0.5e-3,
		Areas: []layout.Area{
			{Name: "board", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, boardW, boardH))},
		},
		Rules: rules.NewSet(nil),
	}
	// Mix of magnetic (filter) parts and mechanical parts, deterministic
	// sizes from a small catalog.
	type proto struct {
		w, l, h  float64
		magnetic bool
	}
	catalog := []proto{
		{18e-3, 8e-3, 14e-3, true},     // film cap
		{9e-3, 13e-3, 9e-3, true},      // drum choke
		{7.3e-3, 4.3e-3, 2.8e-3, true}, // tantalum
		{10e-3, 15e-3, 4.5e-3, false},  // power package
		{5e-3, 6e-3, 1.8e-3, false},    // SO8
		{26e-3, 26e-3, 12e-3, true},    // CM choke
	}
	var magnetic []string
	for i := 0; i < n; i++ {
		pr := catalog[i%len(catalog)]
		ref := fmt.Sprintf("U%02d", i+1)
		c := &layout.Component{
			Ref: ref, W: pr.w, L: pr.l, H: pr.h,
		}
		if groupCount > 0 {
			c.Group = fmt.Sprintf("grp%d", i%groupCount)
		}
		if pr.magnetic {
			c.Axis = geom.V3(0, 1, 0)
			magnetic = append(magnetic, ref)
		}
		d.Comps = append(d.Comps, c)
	}
	// Rules over magnetic pairs, round-robin with varied distances.
	added := 0
	for gap := 1; gap < len(magnetic) && added < ruleCount; gap++ {
		for i := 0; i+gap < len(magnetic) && added < ruleCount; i++ {
			// PEMD between 8 and 18 mm, deterministic variation.
			pemd := 8e-3 + 10e-3*math.Abs(math.Sin(float64(added)*1.7))
			d.Rules.Add(rules.Rule{
				RefA: magnetic[i], RefB: magnetic[i+gap], PEMD: pemd,
			})
			added++
		}
	}
	// A handful of nets stitching neighbours together.
	for i := 0; i+2 < n; i += 3 {
		d.Nets = append(d.Nets, layout.Net{
			Name: fmt.Sprintf("net%d", i/3),
			Refs: []string{d.Comps[i].Ref, d.Comps[i+1].Ref, d.Comps[i+2].Ref},
		})
	}
	return d
}
