package board

import (
	"fmt"
	"math"

	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/emi"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/rules"
)

// Scaled EMI-filter board: the scaling workload for the sparse MNA and
// hierarchical PEEC paths. The generator chains identical LC filter
// stages — one drum choke plus one tantalum capacitor each — behind a
// CISPR 25 LISN, placed in a snake over a board sized to fit, and maps
// every choke winding and capacitor ESL loop for coupling extraction.
// Everything is deterministic in the target segment count, so two runs
// (or two solver backends) see bit-identical projects.

// Stage geometry: chokes are 3 turns × 8 ring segments = 24 segments,
// capacitor loops are 4. boardSegsPerStage is their sum.
const (
	boardChokeSegs    = 3 * 8
	boardCapSegs      = 4
	boardSegsPerStage = boardChokeSegs + boardCapSegs

	boardCellW  = 0.020 // stage pitch along x
	boardCellH  = 0.032 // stage pitch along y
	boardMargin = 0.012
	boardCapDY  = 0.014 // capacitor offset above its choke

	// SwitchFreq is the switching frequency of the generated
	// board's equivalent noise source.
	SwitchFreq = 200e3
)

// boardChoke returns the per-stage filter choke model: a small drum
// choke coarsened to 8 segments per turn so the segment budget is spent
// on stage count, not per-ring resolution.
func boardChoke() *components.BobbinChoke {
	ch := components.NewBobbinChoke("DR-SCALE", 3, 3.5e-3)
	ch.RingSegs = 8
	return ch
}

// Stages returns the stage count used for a target total segment
// count (at least one stage).
func Stages(targetSegments int) int {
	stages := (targetSegments + boardSegsPerStage/2) / boardSegsPerStage
	if stages < 1 {
		stages = 1
	}
	return stages
}

// Project builds the scaled filter-board project with approximately
// targetSegments PEEC segments (Stages(targetSegments) LC stages).
// All components come back placed, so coupling extraction and prediction
// run directly.
func Project(targetSegments int) *core.Project {
	stages := Stages(targetSegments)
	choke := boardChoke()
	capm := components.NewSMDTantalum("TAN-SCALE", 10e-6)

	cols := int(math.Ceil(math.Sqrt(float64(stages))))
	rows := (stages + cols - 1) / cols
	bw := 2*boardMargin + float64(cols-1)*boardCellW + boardCellW/2
	bh := 2*boardMargin + float64(rows-1)*boardCellH + boardCellH/2

	d := &layout.Design{
		Name:      fmt.Sprintf("scale-board-%d", stages),
		Boards:    1,
		Clearance: 0.5e-3,
		Areas: []layout.Area{
			{Name: "board", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, bw, bh))},
		},
		Rules: rules.NewSet(nil),
	}

	models := map[string]components.Model{}
	inductorOf := map[string]string{}
	c := &netlist.Circuit{Title: d.Name}
	c.AddV("Vbat", "bat", "0", netlist.Source{DC: 12})
	emi.AddLISN(c, "lisn", "bat", "n0")

	place := func(ref string, m components.Model, x, y float64) {
		w, l, h := m.Size()
		d.Comps = append(d.Comps, &layout.Component{
			Ref: ref, W: w, L: l, H: h,
			Axis:   m.MagneticAxis(0),
			Placed: true,
			Center: geom.V2(x, y),
		})
		models[ref] = m
	}

	prev := "n0"
	for s := 0; s < stages; s++ {
		// Snake placement: even rows left-to-right, odd rows reversed, so
		// electrically adjacent stages stay geometric neighbours.
		row := s / cols
		col := s % cols
		if row%2 == 1 {
			col = cols - 1 - col
		}
		x := boardMargin + float64(col)*boardCellW
		y := boardMargin + float64(row)*boardCellH

		lref := fmt.Sprintf("LS%d", s)
		cref := fmt.Sprintf("CS%d", s)
		place(lref, choke, x, y)
		place(cref, capm, x, y+boardCapDY)

		node := fmt.Sprintf("n%d", s+1)
		c.AddL(fmt.Sprintf("L%d", s), prev, node, choke.Inductance())
		mid1, mid2 := node+"_ca", node+"_cb"
		c.AddC(fmt.Sprintf("Cc%d", s), node, mid1, capm.C)
		c.AddR(fmt.Sprintf("Rc%d", s), mid1, mid2, capm.ESR)
		c.AddL(fmt.Sprintf("Lc%d", s), mid2, "0", capm.EffectiveESL())
		inductorOf[lref] = fmt.Sprintf("L%d", s)
		inductorOf[cref] = fmt.Sprintf("Lc%d", s)
		prev = node
	}

	// Switching noise source at the far end of the chain, behind its hot
	// loop parasitics; the LISN at the near end measures what survives
	// the filter chain.
	period := 1 / SwitchFreq
	c.AddV("Vsw", "sw", "0", netlist.Source{Pulse: &netlist.Pulse{
		V1: 0, V2: 12, Rise: 30e-9, Fall: 30e-9,
		Width: 0.4*period - 30e-9, Period: period,
	}})
	c.AddL("Lloop", "sw", "swl", 40e-9)
	c.AddR("Rloop", "swl", prev, 0.2)
	c.AddR("Rload", prev, "0", 4)

	return &core.Project{
		Design:      d,
		Circuit:     c,
		Models:      models,
		InductorOf:  inductorOf,
		Sources:     []string{"Vsw"},
		MeasureNode: "lisn_meas",
	}
}

// Segments counts the total PEEC segments over the project's mapped
// components — the n the scaling claims are stated in.
func Segments(p *core.Project) int {
	total := 0
	for _, ref := range p.MappedRefs() {
		total += len(p.Models[ref].Conductor(0).Segments)
	}
	return total
}

// NeighborPairs returns the mapped pairs whose placed centers lie within
// maxDist of each other — the physically relevant couplings for circuit
// insertion on a large board, where distant pairs contribute k ≈ 0 but
// would each still stamp a K element. maxDist ≤ 0 returns all pairs.
func NeighborPairs(p *core.Project, maxDist float64) [][2]string {
	all := p.AllPairs()
	if maxDist <= 0 {
		return all
	}
	out := make([][2]string, 0, len(all))
	for _, pair := range all {
		a, b := p.Design.Find(pair[0]), p.Design.Find(pair[1])
		if a == nil || b == nil {
			continue
		}
		if a.Center.Dist(b.Center) <= maxDist {
			out = append(out, pair)
		}
	}
	return out
}
