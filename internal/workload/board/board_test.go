package board

import (
	"math"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/linalg"
)

func TestBoardProjectValidates(t *testing.T) {
	for _, target := range []int{1, 300, 1400} {
		p := Project(target)
		if err := p.Validate(); err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		segs := Segments(p)
		if target >= boardSegsPerStage {
			if ratio := float64(segs) / float64(target); ratio < 0.8 || ratio > 1.2 {
				t.Errorf("target %d: generated %d segments", target, segs)
			}
		}
		for _, c := range p.Design.Comps {
			if !c.Placed {
				t.Fatalf("target %d: %s unplaced", target, c.Ref)
			}
		}
	}
}

func TestBoardDeterministic(t *testing.T) {
	a, b := Project(500), Project(500)
	ka, err := a.ExtractCouplings(NeighborPairs(a, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.ExtractCouplings(NeighborPairs(b, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(ka) == 0 || len(ka) != len(kb) {
		t.Fatalf("pair counts: %d vs %d", len(ka), len(kb))
	}
	for pair, v := range ka {
		if kb[pair] != v {
			t.Fatalf("pair %v: %g vs %g", pair, v, kb[pair])
		}
	}
}

// TestBoardHierMatchesExact: on a mid-size board the hierarchical
// extraction reproduces the exact coupling factors within the theta
// tolerance for significant pairs and tiny absolute error everywhere.
// θ = 0.15 is the percent-accuracy setting for this board's stacked-ring
// chokes (their axial quadrupole moments make the margin error ≈ θ for
// looser settings; see the DESIGN notes).
func TestBoardHierMatchesExact(t *testing.T) {
	p := Project(400)
	pairs := p.AllPairs()
	exact, err := p.ExtractCouplings(pairs)
	if err != nil {
		t.Fatal(err)
	}
	p.CouplingTheta = 0.15
	hier, err := p.ExtractCouplings(pairs)
	if err != nil {
		t.Fatal(err)
	}
	kMax := 0.0
	for _, k := range exact {
		if a := math.Abs(k); a > kMax {
			kMax = a
		}
	}
	if kMax == 0 {
		t.Fatal("no couplings extracted")
	}
	for pair, ke := range exact {
		kh := hier[pair]
		if diff := math.Abs(kh - ke); diff > 0.08*math.Abs(ke)+1e-4*kMax {
			t.Errorf("pair %v: exact %g hier %g", pair, ke, kh)
		}
	}
}

// TestBoardPredictSolverEquivalence: the full prediction (couple +
// sweep) agrees between the forced dense and forced sparse backends.
func TestBoardPredictSolverEquivalence(t *testing.T) {
	prev := linalg.SetDefaultSolver(linalg.ModeDense)
	defer linalg.SetDefaultSolver(prev)

	p := Project(300)
	p.CouplingTheta = 0.3
	opt := core.PredictOptions{
		WithCouplings: true,
		Pairs:         NeighborPairs(p, 0.05),
		MaxFreq:       10e6,
	}
	dense, err := p.Predict(opt)
	if err != nil {
		t.Fatal(err)
	}
	linalg.SetDefaultSolver(linalg.ModeSparse)
	sparse, err := p.Predict(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(dense.DB) == 0 || len(dense.DB) != len(sparse.DB) {
		t.Fatalf("spectrum lengths: %d vs %d", len(dense.DB), len(sparse.DB))
	}
	for i := range dense.DB {
		if !isFiniteDB(dense.DB[i]) || !isFiniteDB(sparse.DB[i]) {
			t.Fatalf("harmonic %d: non-finite level (%g, %g)", i, dense.DB[i], sparse.DB[i])
		}
		if math.Abs(dense.DB[i]-sparse.DB[i]) > 1e-6 {
			t.Fatalf("harmonic %d: dense %g dB sparse %g dB", i, dense.DB[i], sparse.DB[i])
		}
	}
}

func isFiniteDB(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// TestBoardScaleSmoke is the 10k-segment end-to-end run: hierarchical
// coupling extraction over every neighbour pair plus a sparse-solver
// prediction, bounded by a wall-clock budget. Heavy, so it only runs
// when EMI_SCALE is set (the CI scale job exports it).
func TestBoardScaleSmoke(t *testing.T) {
	if os.Getenv("EMI_SCALE") == "" {
		t.Skip("set EMI_SCALE=1 to run the 10k-segment smoke")
	}
	start := time.Now()
	p := Project(10000)
	if segs := Segments(p); segs < 9000 {
		t.Fatalf("board has only %d segments", segs)
	}
	p.CouplingTheta = 0.3

	ks, err := p.ExtractCouplings(p.AllPairs())
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) == 0 {
		t.Fatal("no couplings extracted")
	}
	for pair, k := range ks {
		if math.IsNaN(k) || math.Abs(k) > 1 {
			t.Fatalf("pair %v: k = %g out of range", pair, k)
		}
	}

	spec, err := p.Predict(core.PredictOptions{
		WithCouplings: true,
		Pairs:         NeighborPairs(p, 0.05),
		MaxFreq:       5e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.DB) == 0 {
		t.Fatal("empty spectrum")
	}
	for i, db := range spec.DB {
		// Sane bounds: the chain attenuates enormously, but levels must
		// stay finite and far below any physical drive level.
		if !isFiniteDB(db) || db > 200 {
			t.Fatalf("harmonic %d: level %g dBµV out of bounds", i, db)
		}
	}
	t.Logf("10k board end-to-end in %v (%d pairs, %d harmonics)",
		time.Since(start), len(ks), len(spec.DB))
}
