package workload

import (
	"testing"

	"repro/internal/place"
)

func TestComplex29Shape(t *testing.T) {
	t.Parallel()
	d := Complex29()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Comps) != 29 {
		t.Errorf("components = %d, want 29", len(d.Comps))
	}
	if d.RuleCount() != 100 {
		t.Errorf("rules = %d, want 100", d.RuleCount())
	}
	if got := len(d.GroupNames()); got != 3 {
		t.Errorf("groups = %d, want 3", got)
	}
}

func TestComplex29IsPlaceable(t *testing.T) {
	t.Parallel()
	d := Complex29()
	res, err := place.AutoPlace(d, place.Options{})
	if err != nil {
		t.Fatalf("AutoPlace: %v", err)
	}
	if res.Placed != 29 {
		t.Errorf("placed = %d", res.Placed)
	}
	rep := place.Verify(d)
	if !rep.Green() {
		t.Fatalf("29-device layout not legal:\n%s", rep)
	}
	// The paper: computed "in seconds" — generous CI bound.
	if res.Elapsed.Seconds() > 30 {
		t.Errorf("placement took %v", res.Elapsed)
	}
	t.Logf("29 devices, 100 rules placed in %v", res.Elapsed)
}

func TestSyntheticDeterministic(t *testing.T) {
	t.Parallel()
	a := Synthetic(12, 20, 2, 0.1, 0.08)
	b := Synthetic(12, 20, 2, 0.1, 0.08)
	if len(a.Comps) != len(b.Comps) || a.RuleCount() != b.RuleCount() {
		t.Fatal("generator not deterministic in structure")
	}
	for i := range a.Rules.Rules {
		if a.Rules.Rules[i] != b.Rules.Rules[i] {
			t.Fatal("generator rules differ")
		}
	}
}

func TestSyntheticRuleCapping(t *testing.T) {
	t.Parallel()
	// Requesting more rules than magnetic pairs exist caps gracefully.
	d := Synthetic(6, 1000, 1, 0.1, 0.1)
	if d.RuleCount() == 0 || d.RuleCount() > 1000 {
		t.Errorf("rules = %d", d.RuleCount())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}
