package store

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes to the WAL scanner: whatever the
// corruption, the scan must terminate, never panic, never allocate a
// payload longer than the input, and end either cleanly (at a record
// boundary) or with one of the two typed errors callers repair on.
func FuzzWALDecode(f *testing.F) {
	// Seed corpus: empty, a clean log, truncations, bit flips, a length
	// field pointing past the end, and a giant declared length.
	clean, _ := frames(4)
	f.Add([]byte{})
	f.Add(clean)
	f.Add(clean[:len(clean)-3])
	f.Add(clean[:1])
	f.Add(clean[:frameHeader-1])
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
	huge := appendFrame(nil, RecEdit, bytes.Repeat([]byte{'x'}, 300))
	f.Add(huge[:20])
	bogus := append([]byte(nil), clean[:frameHeader]...)
	bogus[1], bogus[2], bogus[3], bogus[4] = 0xff, 0xff, 0xff, 0x7f
	f.Add(bogus)

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewScanner(data)
		records := 0
		for sc.Next() {
			_, payload := sc.Record()
			if len(payload) > len(data) {
				t.Fatalf("payload of %d bytes from %d bytes of input", len(payload), len(data))
			}
			records++
			if records > len(data) {
				t.Fatal("more records than input bytes; scanner is not advancing")
			}
		}
		if off := sc.Offset(); off < 0 || off > len(data) {
			t.Fatalf("final offset %d outside [0,%d]", off, len(data))
		}
		err := sc.Err()
		if err == nil {
			return // clean end at a boundary
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) {
			t.Fatalf("untyped scan error: %v", err)
		}
		if errors.Is(err, io.EOF) {
			t.Fatalf("io.EOF leaked as a scan error: %v", err)
		}
	})
}
