package store

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/session"
)

// TestConcurrentStoreAccess hammers one FileStore from many goroutines —
// per-session edit appends, job appends, compactions, stats reads, and
// full reloads — and is run under -race in CI. The check at the end is
// that a final reload still sees every session and a consistent job log.
func TestConcurrentStoreAccess(t *testing.T) {
	t.Parallel()
	fs, err := OpenFile(t.TempDir(), SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	const nSessions = 4
	snapshots := make(map[string][]byte, nSessions)
	for i := 0; i < nSessions; i++ {
		id := fmt.Sprintf("s%06d", i+1)
		s := session.New(id, testDesign())
		snap, seq, err := s.Checkpoint()
		s.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.CreateSession(id, seq, snap); err != nil {
			t.Fatal(err)
		}
		snapshots[id] = snap
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(300*time.Millisecond, func() { close(stop) })

	// Edit appenders: one per session (the store serializes per file).
	for i := 0; i < nSessions; i++ {
		id := fmt.Sprintf("s%06d", i+1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := uint64(1); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := fs.AppendEdit(id, session.JournalRecord{
					Op: session.JournalUndo, Seq: seq,
				}); err != nil {
					t.Errorf("append edit %s: %v", id, err)
					return
				}
			}
		}()
	}
	// Job appenders.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := fs.AppendJob(JobRecord{
					ID: fmt.Sprintf("j%06d-%08x", n, w), Kind: "predict",
					State: JobQueued, Created: time.Now(),
				}); err != nil {
					t.Errorf("append job: %v", err)
					return
				}
			}
		}(w)
	}
	// Compactor: rewrites session 1's log while its appender is running.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			if err := fs.CompactSession("s000001", 0, snapshots["s000001"]); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	// Stats readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = fs.Stats()
		}
	}()
	wg.Wait()

	logs, err := fs.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != nSessions {
		t.Fatalf("recovered %d sessions, want %d", len(logs), nSessions)
	}
	for _, log := range logs {
		if log.Repaired {
			t.Errorf("session %s repaired after clean concurrent writes", log.ID)
		}
	}
	jobs, err := fs.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("no jobs recovered after concurrent appends")
	}
	st := fs.Stats()
	if st.Appends == 0 || st.Compactions == 0 {
		t.Fatalf("stats not accumulated: %+v", st)
	}
}
