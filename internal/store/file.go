package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/session"
)

// SyncPolicy selects when FileStore calls fsync.
type SyncPolicy int

const (
	// SyncOff never fsyncs: an append is durable once write(2) returns,
	// which survives a process kill (the bytes are in the page cache) but
	// not an OS crash or power loss. This is the fast default for the
	// interactive edit path.
	SyncOff SyncPolicy = iota
	// SyncAlways fsyncs after every append: survives power loss at the
	// cost of a disk round trip per acknowledged edit.
	SyncAlways
)

// ParseSyncPolicy parses the -fsync flag vocabulary.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "off", "never":
		return SyncOff, nil
	case "always":
		return SyncAlways, nil
	default:
		return SyncOff, fmt.Errorf("store: unknown fsync policy %q (want off or always)", s)
	}
}

// FileStore persists the serving state in a data directory:
//
//	<dir>/jobs.wal          job state transitions, one framed record each
//	<dir>/sessions/<id>.wal snapshot record + journal records per session
//
// All appends are single write(2) calls on O_APPEND handles, so a crash
// tears at most the final record, and the repaired-on-open scan truncates
// exactly that damage away. Compaction writes a fresh log to a temp file
// and renames it over the old one — atomic on POSIX.
type FileStore struct {
	dir    string
	policy SyncPolicy

	jmu  sync.Mutex // jobs.wal handle
	jobs *os.File

	smu      sync.Mutex // session handle table
	sessions map[string]*sessionFile

	appends     atomic.Uint64
	syncs       atomic.Uint64
	compactions atomic.Uint64
	repairs     atomic.Uint64
}

// sessionFile is one open session WAL. Its mutex orders appends against
// compaction; the record count since the last snapshot drives the
// compaction trigger.
type sessionFile struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	count int // records since the head snapshot
}

// OpenFile opens (creating if needed) a data directory. Damaged WAL
// tails are repaired lazily by the Load calls; OpenFile itself only
// builds the directory skeleton and the jobs handle.
func OpenFile(dir string, policy SyncPolicy) (*FileStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, "sessions"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	jobs, err := os.OpenFile(filepath.Join(dir, "jobs.wal"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &FileStore{
		dir:      dir,
		policy:   policy,
		jobs:     jobs,
		sessions: map[string]*sessionFile{},
	}, nil
}

// Dir returns the data directory.
func (fs *FileStore) Dir() string { return fs.dir }

func (fs *FileStore) sessionPath(id string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\.") {
		return "", fmt.Errorf("store: unusable session id %q", id)
	}
	return filepath.Join(fs.dir, "sessions", id+".wal"), nil
}

// sessionHandle returns the open handle for a session, opening the file
// when it exists on disk but is not yet in the table (recovery path).
// When create is set the file must not exist yet.
func (fs *FileStore) sessionHandle(id string, create bool) (*sessionFile, error) {
	path, err := fs.sessionPath(id)
	if err != nil {
		return nil, err
	}
	fs.smu.Lock()
	defer fs.smu.Unlock()
	if sf, ok := fs.sessions[id]; ok {
		if create {
			return nil, fmt.Errorf("store: session %s already exists", id)
		}
		return sf, nil
	}
	flags := os.O_WRONLY | os.O_APPEND | os.O_CREATE
	if create {
		if _, err := os.Stat(path); err == nil {
			return nil, fmt.Errorf("store: session %s already exists", id)
		}
		flags |= os.O_EXCL
	} else if _, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("store: no session %s", id)
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sf := &sessionFile{f: f, path: path}
	fs.sessions[id] = sf
	return sf, nil
}

// appendSync writes one framed record with a single write call and
// applies the sync policy.
func (fs *FileStore) appendSync(f *os.File, frame []byte) error {
	if _, err := f.Write(frame); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	fs.appends.Add(1)
	if fs.policy == SyncAlways {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("store: fsync: %w", err)
		}
		fs.syncs.Add(1)
	}
	return nil
}

func (fs *FileStore) CreateSession(id string, baseSeq uint64, design []byte) error {
	sf, err := fs.sessionHandle(id, true)
	if err != nil {
		return err
	}
	frame, err := encodeSnapshot(nil, id, baseSeq, design)
	if err != nil {
		return err
	}
	sf.mu.Lock()
	defer sf.mu.Unlock()
	return fs.appendSync(sf.f, frame)
}

func (fs *FileStore) AppendEdit(id string, rec session.JournalRecord) (int, error) {
	sf, err := fs.sessionHandle(id, false)
	if err != nil {
		return 0, err
	}
	frame, err := encodeJournal(nil, rec)
	if err != nil {
		return 0, err
	}
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if err := fs.appendSync(sf.f, frame); err != nil {
		return 0, err
	}
	sf.count++
	return sf.count, nil
}

func (fs *FileStore) CompactSession(id string, baseSeq uint64, design []byte) error {
	sf, err := fs.sessionHandle(id, false)
	if err != nil {
		return err
	}
	sf.mu.Lock()
	defer sf.mu.Unlock()

	// Records appended after the snapshot was taken must survive: re-read
	// the current log and keep everything past baseSeq.
	data, err := os.ReadFile(sf.path)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	frame, err := encodeSnapshot(nil, id, baseSeq, design)
	if err != nil {
		return err
	}
	kept := 0
	sc := NewScanner(data)
	for sc.Next() {
		kind, payload := sc.Record()
		if kind != RecEdit {
			continue
		}
		rec, err := DecodeJournal(payload)
		if err != nil || rec.Seq <= baseSeq {
			continue
		}
		if frame, err = encodeJournal(frame, rec); err != nil {
			return err
		}
		kept++
	}
	tmp := sf.path + ".tmp"
	if err := os.WriteFile(tmp, frame, 0o644); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp, sf.path); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	// Reopen the append handle on the new inode.
	f, err := os.OpenFile(sf.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	old := sf.f
	sf.f, sf.count = f, kept
	_ = old.Close()
	fs.compactions.Add(1)
	if fs.policy == SyncAlways {
		if err := sf.f.Sync(); err != nil {
			return fmt.Errorf("store: fsync: %w", err)
		}
		fs.syncs.Add(1)
	}
	return nil
}

func (fs *FileStore) DeleteSession(id string) error {
	path, err := fs.sessionPath(id)
	if err != nil {
		return err
	}
	fs.smu.Lock()
	sf := fs.sessions[id]
	delete(fs.sessions, id)
	fs.smu.Unlock()
	if sf != nil {
		sf.mu.Lock()
		_ = sf.f.Close()
		sf.mu.Unlock()
	}
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// LoadSessions scans every session WAL, truncating damaged tails in
// place so subsequent appends extend the acknowledged prefix.
func (fs *FileStore) LoadSessions() ([]SessionLog, error) {
	dir := filepath.Join(fs.dir, "sessions")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []SessionLog
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".wal") {
			// Leftover .tmp from a compaction killed before its rename:
			// the original WAL is intact, drop the orphan.
			if strings.HasSuffix(name, ".tmp") {
				_ = os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		path := filepath.Join(dir, name)
		log, goodOffset, err := loadSessionLog(path)
		if err != nil {
			// No usable snapshot record: the creation was never
			// acknowledged durable. Remove the husk.
			_ = os.Remove(path)
			fs.repairs.Add(1)
			continue
		}
		if log.Repaired {
			if err := os.Truncate(path, int64(goodOffset)); err != nil {
				return nil, fmt.Errorf("store: repair %s: %w", name, err)
			}
			fs.repairs.Add(1)
		}
		// Prime the handle table with the recovered record count so the
		// compaction trigger keeps working across restarts.
		if sf, err := fs.sessionHandle(log.ID, false); err == nil {
			sf.mu.Lock()
			sf.count = len(log.Records)
			sf.mu.Unlock()
		}
		out = append(out, log)
	}
	return out, nil
}

// loadSessionLog decodes one session WAL file. It returns the log, the
// offset past the last good record, and an error only when the file has
// no usable head snapshot.
func loadSessionLog(path string) (SessionLog, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SessionLog{}, 0, err
	}
	var log SessionLog
	sc := NewScanner(data)
	if !sc.Next() {
		return SessionLog{}, 0, fmt.Errorf("store: %s: empty or damaged head: %w", path, sc.Err())
	}
	kind, payload := sc.Record()
	if kind != RecSnapshot {
		return SessionLog{}, 0, fmt.Errorf("store: %s: head record kind %d, want snapshot", path, kind)
	}
	id, baseSeq, design, err := DecodeSnapshot(payload)
	if err != nil {
		return SessionLog{}, 0, err
	}
	log.ID, log.BaseSeq, log.Design = id, baseSeq, design
	good := sc.Offset()
	for sc.Next() {
		kind, payload := sc.Record()
		if kind != RecEdit {
			break // foreign record kind: treat as damage
		}
		rec, err := DecodeJournal(payload)
		if err != nil {
			break
		}
		log.Records = append(log.Records, rec)
		good = sc.Offset()
	}
	if sc.Err() != nil || good != len(data) {
		log.Repaired = true
	}
	return log, good, nil
}

// LoadSession reads one session's WAL. Appends issued through an
// already-open handle are flushed by the kernel page cache before
// ReadFile sees the file, so the log returned here always contains
// every acknowledged edit.
//
// When the session is live on this replica (open handle — the takeover
// fetch against a false-down or draining owner), the read holds the
// session's append lock so it cannot tear an in-progress append, and it
// NEVER truncates: a "damaged tail" observed while a writer is live
// could be a write that completes right after the scan, and truncating
// it would delete an acknowledged record out from under the writer.
// Only a session with no live handle gets the truncate-repair that
// LoadSessions applies at startup.
func (fs *FileStore) LoadSession(id string) (SessionLog, error) {
	path, err := fs.sessionPath(id)
	if err != nil {
		return SessionLog{}, err
	}
	fs.smu.Lock()
	sf := fs.sessions[id]
	fs.smu.Unlock()
	if sf != nil {
		sf.mu.Lock()
		defer sf.mu.Unlock()
		log, _, err := loadSessionLog(path)
		return log, err
	}
	if _, err := os.Stat(path); err != nil {
		return SessionLog{}, fmt.Errorf("store: no session %s", id)
	}
	log, goodOffset, err := loadSessionLog(path)
	if err != nil {
		return SessionLog{}, err
	}
	if log.Repaired {
		if err := os.Truncate(path, int64(goodOffset)); err != nil {
			return SessionLog{}, fmt.Errorf("store: repair %s: %w", id, err)
		}
		fs.repairs.Add(1)
	}
	return log, nil
}

func (fs *FileStore) AppendJob(rec JobRecord) error {
	frame, err := encodeJob(nil, rec)
	if err != nil {
		return err
	}
	fs.jmu.Lock()
	defer fs.jmu.Unlock()
	return fs.appendSync(fs.jobs, frame)
}

func (fs *FileStore) LoadJobs() ([]JobRecord, error) {
	fs.jmu.Lock()
	defer fs.jmu.Unlock()
	path := filepath.Join(fs.dir, "jobs.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var recs []JobRecord
	good := 0
	sc := NewScanner(data)
	for sc.Next() {
		kind, payload := sc.Record()
		if kind != RecJob {
			break
		}
		rec, err := DecodeJob(payload)
		if err != nil {
			break
		}
		recs = append(recs, rec)
		good = sc.Offset()
	}
	if sc.Err() != nil || good != len(data) {
		if err := os.Truncate(path, int64(good)); err != nil {
			return nil, fmt.Errorf("store: repair jobs.wal: %w", err)
		}
		fs.repairs.Add(1)
	}
	return foldJobs(recs), nil
}

func (fs *FileStore) CompactJobs(recs []JobRecord) error {
	fs.jmu.Lock()
	defer fs.jmu.Unlock()
	var frame []byte
	var err error
	for _, r := range recs {
		if frame, err = encodeJob(frame, r); err != nil {
			return err
		}
	}
	path := filepath.Join(fs.dir, "jobs.wal")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, frame, 0o644); err != nil {
		return fmt.Errorf("store: compact jobs: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: compact jobs: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact jobs: %w", err)
	}
	old := fs.jobs
	fs.jobs = f
	_ = old.Close()
	fs.compactions.Add(1)
	return nil
}

func (fs *FileStore) Stats() Stats {
	return Stats{
		Appends:     fs.appends.Load(),
		Syncs:       fs.syncs.Load(),
		Compactions: fs.compactions.Load(),
		Repairs:     fs.repairs.Load(),
	}
}

func (fs *FileStore) Close() error {
	fs.jmu.Lock()
	err := fs.jobs.Close()
	fs.jmu.Unlock()
	fs.smu.Lock()
	defer fs.smu.Unlock()
	for id, sf := range fs.sessions {
		sf.mu.Lock()
		if cerr := sf.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		sf.mu.Unlock()
		delete(fs.sessions, id)
	}
	return err
}
