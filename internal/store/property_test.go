package store

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/session"
)

// TestCrashRecoveryProperty is the randomized end-to-end property: an
// arbitrary interleaving of session edits, undo/redo, and compactions
// across several sessions must always reload — from the files alone —
// to states byte-identical to the live in-memory sessions. Each trial
// uses a distinct seed so CI accumulates coverage over time without
// flaking: any failure prints the seed for replay.
func TestCrashRecoveryProperty(t *testing.T) {
	t.Parallel()
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runCrashRecoveryTrial(t, seed)
		})
	}
}

func runCrashRecoveryTrial(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	fs, err := OpenFile(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	const nSessions = 3
	live := make(map[string]*session.Session, nSessions)
	for i := 0; i < nSessions; i++ {
		id := fmt.Sprintf("s%06d", i+1)
		s := session.New(id, testDesign())
		snap, seq, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.CreateSession(id, seq, snap); err != nil {
			t.Fatal(err)
		}
		sid := id
		s.SetJournal(func(rec session.JournalRecord) error {
			_, err := fs.AppendEdit(sid, rec)
			return err
		})
		live[id] = s
		defer s.Close()
	}

	ids := make([]string, 0, nSessions)
	for id := range live {
		ids = append(ids, id)
	}
	ops := 120
	if testing.Short() {
		ops = 40
	}
	for i := 0; i < ops; i++ {
		id := ids[rng.Intn(len(ids))]
		s := live[id]
		switch r := rng.Intn(20); {
		case r == 0:
			// Random mid-stream compaction: the barrier that clears
			// undo/redo history and rewrites the log snapshot-only.
			snap, seq, err := s.Checkpoint()
			if err != nil {
				t.Fatalf("op %d: checkpoint: %v", i, err)
			}
			if err := fs.CompactSession(id, seq, snap); err != nil {
				t.Fatalf("op %d: compact: %v", i, err)
			}
		case r == 1 || r == 2:
			s.Undo() // may fail at history edges; journal only fires on success
		case r == 3 || r == 4:
			s.Redo()
		default:
			s.Apply(randomEdit(rng, s.DesignSnapshot()))
		}
	}

	// Reload from the directory alone and compare every session.
	logs, err := fs.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != nSessions {
		t.Fatalf("recovered %d sessions, want %d", len(logs), nSessions)
	}
	for _, log := range logs {
		if log.Repaired {
			t.Errorf("session %s reported repaired after clean writes", log.ID)
		}
		replayed, err := Replay(log)
		if err != nil {
			t.Fatalf("session %s: replay: %v", log.ID, err)
		}
		assertEqualSessions(t, replayed, live[log.ID], "session "+log.ID)

		// Undo/redo must also work identically after recovery: walk
		// undo all the way back on both and compare at each step.
		ref := live[log.ID]
		for {
			_, errA := replayed.Undo()
			_, errB := ref.Undo()
			if (errA == nil) != (errB == nil) {
				t.Fatalf("session %s: undo availability diverged (%v vs %v)", log.ID, errA, errB)
			}
			if errA != nil {
				break
			}
			assertEqualSessions(t, replayed, ref, "session "+log.ID+" after undo")
		}
		replayed.Close()
	}
}
