package store

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/session"
)

// JobState mirrors the serving layer's job lifecycle in the WAL. Only
// "queued" and the terminal states are ever persisted: "running" is not a
// durable fact (a crash while running means the job must run again), so a
// job whose last record is "queued" is requeued on recovery.
const (
	JobQueued    = "queued"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// JobRecord is one job state transition. A job appears in the log as a
// "queued" record carrying the request body, optionally followed by one
// terminal record carrying the outcome; LoadJobs folds the sequence into
// the job's last known durable state.
type JobRecord struct {
	ID      string    `json:"id"`
	Kind    string    `json:"kind"`
	State   string    `json:"state"`
	Req     []byte    `json:"req,omitempty"`    // queued records only
	Result  []byte    `json:"result,omitempty"` // done records only
	Error   string    `json:"error,omitempty"`  // failed/cancelled records
	Created time.Time `json:"created"`
	Done    time.Time `json:"done"`    // terminal transition time
	Expires time.Time `json:"expires"` // result TTL deadline, preserved on reload
}

// editWire is the durable form of a session.Edit. The fields are spelled
// out (rather than marshaling session.Edit directly) so the WAL format is
// owned here and survives refactors of the in-memory type. Go's float64
// JSON round-trip is exact, so replay is bit-identical.
type editWire struct {
	Op    string  `json:"op"`
	Ref   string  `json:"ref,omitempty"`
	RefB  string  `json:"ref_b,omitempty"`
	X     float64 `json:"x,omitempty"`
	Y     float64 `json:"y,omitempty"`
	Rot   float64 `json:"rot,omitempty"`
	Board int     `json:"board,omitempty"`
	PEMD  float64 `json:"pemd,omitempty"`
	Param string  `json:"param,omitempty"`
	Value float64 `json:"value,omitempty"`
}

// journalWire is the payload of a RecEdit record.
type journalWire struct {
	Op   string    `json:"op"` // apply | undo | redo
	Seq  uint64    `json:"seq"`
	Edit *editWire `json:"edit,omitempty"` // apply records only
}

// snapshotWire is the payload of a RecSnapshot record.
type snapshotWire struct {
	ID      string `json:"id"`
	BaseSeq uint64 `json:"base_seq"`
	Design  []byte `json:"design"` // ASCII layout format
}

func toEditWire(e session.Edit) *editWire {
	return &editWire{
		Op: e.Op, Ref: e.Ref, RefB: e.RefB,
		X: e.Center.X, Y: e.Center.Y, Rot: e.Rot,
		Board: e.Board, PEMD: e.PEMD, Param: e.Param, Value: e.Value,
	}
}

func (w *editWire) edit() session.Edit {
	return session.Edit{
		Op: w.Op, Ref: w.Ref, RefB: w.RefB,
		Center: geom.V2(w.X, w.Y), Rot: w.Rot,
		Board: w.Board, PEMD: w.PEMD, Param: w.Param, Value: w.Value,
	}
}

// encodeJournal frames a session journal record.
func encodeJournal(buf []byte, rec session.JournalRecord) ([]byte, error) {
	w := journalWire{Op: rec.Op, Seq: rec.Seq}
	if rec.Op == session.JournalApply {
		w.Edit = toEditWire(rec.Edit)
	}
	payload, err := json.Marshal(&w)
	if err != nil {
		return buf, err
	}
	return appendFrame(buf, RecEdit, payload), nil
}

// DecodeJournal decodes a RecEdit payload into a session journal record.
// Corrupt payloads yield errors, never panics.
func DecodeJournal(payload []byte) (session.JournalRecord, error) {
	var w journalWire
	if err := json.Unmarshal(payload, &w); err != nil {
		return session.JournalRecord{}, fmt.Errorf("store: journal record: %w", err)
	}
	switch w.Op {
	case session.JournalApply:
		if w.Edit == nil {
			return session.JournalRecord{}, fmt.Errorf("store: apply record without an edit")
		}
		return session.JournalRecord{Op: w.Op, Seq: w.Seq, Edit: w.Edit.edit()}, nil
	case session.JournalUndo, session.JournalRedo:
		return session.JournalRecord{Op: w.Op, Seq: w.Seq}, nil
	default:
		return session.JournalRecord{}, fmt.Errorf("store: unknown journal op %q", w.Op)
	}
}

// encodeSnapshot frames a session snapshot record.
func encodeSnapshot(buf []byte, id string, baseSeq uint64, design []byte) ([]byte, error) {
	payload, err := json.Marshal(&snapshotWire{ID: id, BaseSeq: baseSeq, Design: design})
	if err != nil {
		return buf, err
	}
	return appendFrame(buf, RecSnapshot, payload), nil
}

// DecodeSnapshot decodes a RecSnapshot payload.
func DecodeSnapshot(payload []byte) (id string, baseSeq uint64, design []byte, err error) {
	var w snapshotWire
	if err := json.Unmarshal(payload, &w); err != nil {
		return "", 0, nil, fmt.Errorf("store: snapshot record: %w", err)
	}
	if w.ID == "" {
		return "", 0, nil, fmt.Errorf("store: snapshot record without a session id")
	}
	return w.ID, w.BaseSeq, w.Design, nil
}

// encodeJob frames a job record.
func encodeJob(buf []byte, rec JobRecord) ([]byte, error) {
	payload, err := json.Marshal(&rec)
	if err != nil {
		return buf, err
	}
	return appendFrame(buf, RecJob, payload), nil
}

// DecodeJob decodes a RecJob payload.
func DecodeJob(payload []byte) (JobRecord, error) {
	var rec JobRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return JobRecord{}, fmt.Errorf("store: job record: %w", err)
	}
	if rec.ID == "" {
		return JobRecord{}, fmt.Errorf("store: job record without an id")
	}
	return rec, nil
}

// foldJobs reduces a record sequence to one record per job: the queued
// record contributes the request body and creation time, a terminal
// record overrides the state and carries the outcome. Order of first
// appearance is preserved so recovery requeues in submission order.
func foldJobs(recs []JobRecord) []JobRecord {
	byID := make(map[string]int, len(recs))
	var out []JobRecord
	for _, r := range recs {
		i, seen := byID[r.ID]
		if !seen {
			byID[r.ID] = len(out)
			out = append(out, r)
			continue
		}
		// Later records override state/outcome but keep the original
		// request and creation time (terminal records don't repeat them).
		prev := out[i]
		if r.Req == nil {
			r.Req = prev.Req
		}
		if r.Created.IsZero() {
			r.Created = prev.Created
		}
		out[i] = r
	}
	return out
}
