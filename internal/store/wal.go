// Package store is the durability layer under the serving stack: a
// write-ahead log for the session edit journal (whose entries have exact
// inverses, so replay reconstructs any session byte-for-byte), persisted
// job records and results with the serving layer's LRU+TTL semantics
// preserved across restarts, and snapshot/compaction so the logs stay
// bounded. Two implementations share one Store interface: Memory (tests,
// ephemeral servers) and FileStore (a data directory of append-only WAL
// files repaired on open).
//
// Record framing (wal.go) is deliberately dumb: one byte of record kind,
// a little-endian payload length, a CRC-32 of kind+payload, then the
// payload. A record whose frame runs past the end of the log is a torn
// tail (ErrTruncated); a record whose checksum does not match was
// corrupted in place (ErrChecksum). Recovery treats both as the end of
// the acknowledged prefix: everything before the damage replays,
// everything after it was never acknowledged durable.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record kinds. The framing layer treats kinds as opaque; the typed
// encode/decode in records.go assigns meaning.
const (
	// RecSnapshot opens a session WAL: the base sequence number and the
	// full ASCII design at that point. Compaction rewrites the log with a
	// fresh snapshot record at the head.
	RecSnapshot byte = 1
	// RecEdit is one acknowledged session journal entry (apply/undo/redo).
	RecEdit byte = 2
	// RecJob is one job state transition (queued or terminal).
	RecJob byte = 3
)

// Decode errors. Both mark the end of the valid prefix of a log; the
// distinction is diagnostic (a torn tail is expected after a crash, a
// checksum failure means bytes rotted or were overwritten).
var (
	ErrTruncated = errors.New("store: truncated WAL record")
	ErrChecksum  = errors.New("store: WAL record checksum mismatch")
)

// maxPayload bounds a single record. Designs and results are at most a
// few MB; a larger length field is corruption, not data.
const maxPayload = 32 << 20

// frameHeader is kind(1) + len(4) + crc(4).
const frameHeader = 9

// appendFrame appends the framed record to buf and returns the result.
// Framing in memory first lets the file layer issue one write() per
// record, so a crash tears at most the record being appended.
func appendFrame(buf []byte, kind byte, payload []byte) []byte {
	var hdr [frameHeader]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:1])
	crc.Write(payload)
	binary.LittleEndian.PutUint32(hdr[5:9], crc.Sum32())
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// decodeFrame decodes one record at the head of data. It returns the
// kind, the payload, and the total frame size consumed. io.EOF marks a
// clean end (empty input); ErrTruncated a frame running past the data;
// ErrChecksum a frame whose length field is absurd or whose CRC fails.
func decodeFrame(data []byte) (kind byte, payload []byte, n int, err error) {
	if len(data) == 0 {
		return 0, nil, 0, io.EOF
	}
	if len(data) < frameHeader {
		return 0, nil, 0, fmt.Errorf("%w: %d-byte partial header", ErrTruncated, len(data))
	}
	kind = data[0]
	plen := binary.LittleEndian.Uint32(data[1:5])
	if plen > maxPayload {
		return 0, nil, 0, fmt.Errorf("%w: implausible payload length %d", ErrChecksum, plen)
	}
	if uint64(len(data)) < frameHeader+uint64(plen) {
		return 0, nil, 0, fmt.Errorf("%w: payload needs %d bytes, %d remain",
			ErrTruncated, plen, len(data)-frameHeader)
	}
	payload = data[frameHeader : frameHeader+int(plen)]
	crc := crc32.NewIEEE()
	crc.Write(data[:1])
	crc.Write(payload)
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(data[5:9]); got != want {
		return 0, nil, 0, fmt.Errorf("%w: crc %08x, frame says %08x", ErrChecksum, got, want)
	}
	return kind, payload, frameHeader + int(plen), nil
}

// Scanner iterates the records of a WAL held in memory. After Next
// returns false, Err distinguishes a clean end (nil) from a damaged tail
// (ErrTruncated / ErrChecksum), and Offset reports the byte offset of the
// end of the last good record — the truncation point for repair and the
// kill points of the crash-sweep tests.
type Scanner struct {
	data    []byte
	off     int
	kind    byte
	payload []byte
	err     error
}

// NewScanner scans the raw bytes of a WAL.
func NewScanner(data []byte) *Scanner {
	return &Scanner{data: data}
}

// Next advances to the next record.
func (s *Scanner) Next() bool {
	if s.err != nil {
		return false
	}
	kind, payload, n, err := decodeFrame(s.data[s.off:])
	if err == io.EOF {
		return false
	}
	if err != nil {
		s.err = fmt.Errorf("record at offset %d: %w", s.off, err)
		return false
	}
	s.kind, s.payload, s.off = kind, payload, s.off+n
	return true
}

// Record returns the current record's kind and payload. The payload
// aliases the scanned buffer.
func (s *Scanner) Record() (byte, []byte) { return s.kind, s.payload }

// Offset returns the byte offset just past the last good record.
func (s *Scanner) Offset() int { return s.off }

// Err returns the decode error that stopped the scan, nil on a clean end.
func (s *Scanner) Err() error { return s.err }

// RecordOffsets returns the end offset of every valid record in data, in
// order. The crash sweep uses these as its kill points: truncating the
// log at offsets[i] must recover exactly the first i+1 records.
func RecordOffsets(data []byte) []int {
	var offs []int
	sc := NewScanner(data)
	for sc.Next() {
		offs = append(offs, sc.Offset())
	}
	return offs
}
