package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/drc"
	"repro/internal/faultfs"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/session"
	"repro/internal/workload"
)

// testDesign is a small synthetic board — big enough that edits have
// real DRC consequences, small enough that replaying it hundreds of
// times in the sweep stays fast.
func testDesign() *layout.Design {
	return workload.Synthetic(8, 10, 2, 0.1, 0.08)
}

// randomEdit mirrors the generator of the session tests: one
// plausible-looking edit that the session may still reject.
func randomEdit(rng *rand.Rand, d *layout.Design) session.Edit {
	ref := d.Comps[rng.Intn(len(d.Comps))].Ref
	switch rng.Intn(8) {
	case 0, 1, 2, 3:
		return session.Edit{
			Op: session.OpMove, Ref: ref,
			Center: geom.V2(0.005+rng.Float64()*0.09, 0.005+rng.Float64()*0.07),
			Rot:    float64(rng.Intn(4)) * geom.Rad(90),
		}
	case 4:
		return session.Edit{Op: session.OpRotate, Ref: ref, Rot: float64(rng.Intn(4)) * geom.Rad(90)}
	case 5:
		return session.Edit{Op: session.OpSwapBoard, Ref: ref, Board: 0}
	case 6:
		b := d.Comps[rng.Intn(len(d.Comps))].Ref
		return session.Edit{Op: session.OpAddRule, Ref: ref, RefB: b, PEMD: 0.005 + rng.Float64()*0.02}
	default:
		return session.Edit{Op: session.OpParam, Param: session.ParamClearance, Value: rng.Float64() * 2e-3}
	}
}

// journaledSession creates a durable session on fs and drives opCount
// random ops through it (applies with undo/redo mixed in), journaling
// every acknowledged op. It returns the live session and the count of
// acknowledged ops.
func journaledSession(t *testing.T, fs Store, id string, seed int64, opCount int) (*session.Session, int) {
	t.Helper()
	s := session.New(id, testDesign())
	snap, seq, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := fs.CreateSession(id, seq, snap); err != nil {
		t.Fatalf("create session: %v", err)
	}
	s.SetJournal(func(rec session.JournalRecord) error {
		_, err := fs.AppendEdit(id, rec)
		return err
	})
	rng := rand.New(rand.NewSource(seed))
	acked := 0
	for acked < opCount {
		switch r := rng.Intn(10); {
		case r == 0:
			if _, err := s.Undo(); err == nil {
				acked++
			}
		case r == 1:
			if _, err := s.Redo(); err == nil {
				acked++
			}
		default:
			if _, err := s.Apply(randomEdit(rng, s.DesignSnapshot())); err == nil {
				acked++
			}
		}
	}
	return s, acked
}

// assertEqualSessions compares a replayed session to the live reference:
// sequence number, design (deeply), and the full DRC report.
func assertEqualSessions(t *testing.T, got, want *session.Session, ctxt string) {
	t.Helper()
	if got.Seq() != want.Seq() {
		t.Fatalf("%s: seq %d, want %d", ctxt, got.Seq(), want.Seq())
	}
	gs, err1 := got.Snapshot()
	ws, err2 := want.Snapshot()
	if err1 != nil || err2 != nil {
		t.Fatalf("%s: snapshot errors: %v / %v", ctxt, err1, err2)
	}
	if !bytes.Equal(gs, ws) {
		t.Fatalf("%s: snapshots differ\nreplayed:\n%s\nreference:\n%s", ctxt, gs, ws)
	}
	// DeepEqual on the raw designs is too strict (nil vs empty slices
	// after the serialization round trip), and the incremental report's
	// Checks counter depends on edit history; the byte-identical
	// snapshot above plus an independent full-recheck agreement is the
	// durable invariant.
	gr, wr := drc.Check(got.DesignSnapshot()), drc.Check(want.DesignSnapshot())
	if gr.Green() != wr.Green() || len(gr.Violations) != len(wr.Violations) {
		t.Fatalf("%s: DRC disagrees: green %v/%v, %d vs %d violations",
			ctxt, gr.Green(), wr.Green(), len(gr.Violations), len(wr.Violations))
	}
	ir := got.Report()
	if ir.Green() != wr.Green() || len(ir.Violations) != len(wr.Violations) {
		t.Fatalf("%s: replayed incremental report disagrees with full recheck", ctxt)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fs, err := OpenFile(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	live, _ := journaledSession(t, fs, "s000001", 1, 40)
	defer live.Close()

	logs, err := fs.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 1 || logs[0].ID != "s000001" {
		t.Fatalf("loaded %d logs, want the one session", len(logs))
	}
	if logs[0].Repaired {
		t.Fatal("clean log reported as repaired")
	}
	replayed, err := Replay(logs[0])
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	defer replayed.Close()
	assertEqualSessions(t, replayed, live, "clean reload")

	if st := fs.Stats(); st.Appends == 0 {
		t.Fatal("no appends counted")
	}
}

// TestKillPointSweep is the acceptance sweep: for EVERY record boundary
// of a session WAL, the directory image a SIGKILL at that point leaves
// behind must recover to exactly the acknowledged prefix — and replay to
// a session deeply equal to the in-memory reference at that point.
func TestKillPointSweep(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fs, err := OpenFile(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	const id = "s000001"
	// Reference sessions: refs[i] is the state after i acknowledged ops.
	// Rebuilt by replaying the journal prefix through a fresh session —
	// the same machinery recovery uses, validated against the live one.
	live, acked := journaledSession(t, fs, id, 7, 25)
	defer live.Close()

	rel := filepath.Join("sessions", id+".wal")
	data, err := os.ReadFile(filepath.Join(dir, rel))
	if err != nil {
		t.Fatal(err)
	}
	offs := RecordOffsets(data)
	if len(offs) != acked+1 { // snapshot record + one per op
		t.Fatalf("%d records in WAL, want %d", len(offs), acked+1)
	}

	full, _, err := loadSessionLog(filepath.Join(dir, rel))
	if err != nil {
		t.Fatal(err)
	}

	for i, off := range offs {
		clone := t.TempDir()
		if err := faultfs.CloneTruncated(dir, clone, rel, int64(off)); err != nil {
			t.Fatal(err)
		}
		cfs, err := OpenFile(clone, SyncOff)
		if err != nil {
			t.Fatalf("kill point %d: reopen: %v", i, err)
		}
		logs, err := cfs.LoadSessions()
		if err != nil {
			t.Fatalf("kill point %d: load: %v", i, err)
		}
		if len(logs) != 1 {
			t.Fatalf("kill point %d: %d sessions recovered, want 1", i, len(logs))
		}
		got := logs[0]
		wantRecords := i // records past the snapshot
		if len(got.Records) != wantRecords {
			t.Fatalf("kill point %d: %d journal records, want %d", i, len(got.Records), wantRecords)
		}
		if got.Repaired {
			t.Fatalf("kill point %d: boundary cut reported repaired", i)
		}
		replayed, err := Replay(got)
		if err != nil {
			t.Fatalf("kill point %d: replay: %v", i, err)
		}
		// The reference at this point: replay the full log's record
		// prefix into a fresh session.
		want, err := Replay(SessionLog{
			ID: id, BaseSeq: full.BaseSeq, Design: full.Design,
			Records: full.Records[:wantRecords],
		})
		if err != nil {
			t.Fatalf("kill point %d: reference replay: %v", i, err)
		}
		assertEqualSessions(t, replayed, want, "kill point")
		replayed.Close()
		want.Close()
		cfs.Close()
	}

	// The final boundary must reproduce the live session itself.
	final, err := Replay(full)
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	assertEqualSessions(t, final, live, "full log")
}

// TestTornTailRepair cuts the WAL mid-record at every byte of the last
// frame: recovery must truncate back to the last boundary, mark the log
// repaired, and accept appends afterwards.
func TestTornTailRepair(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fs, err := OpenFile(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	const id = "s000001"
	live, acked := journaledSession(t, fs, id, 3, 10)
	live.Close()
	fs.Close()

	rel := filepath.Join("sessions", id+".wal")
	data, err := os.ReadFile(filepath.Join(dir, rel))
	if err != nil {
		t.Fatal(err)
	}
	offs := RecordOffsets(data)
	prevBoundary := offs[len(offs)-2]
	for cut := prevBoundary + 1; cut < len(data); cut++ {
		clone := t.TempDir()
		if err := faultfs.CloneTruncated(dir, clone, rel, int64(cut)); err != nil {
			t.Fatal(err)
		}
		cfs, err := OpenFile(clone, SyncOff)
		if err != nil {
			t.Fatal(err)
		}
		logs, err := cfs.LoadSessions()
		if err != nil {
			t.Fatalf("cut %d: load: %v", cut, err)
		}
		if len(logs) != 1 || !logs[0].Repaired {
			t.Fatalf("cut %d: torn tail not reported repaired", cut)
		}
		if len(logs[0].Records) != acked-1 {
			t.Fatalf("cut %d: %d records, want %d", cut, len(logs[0].Records), acked-1)
		}
		if cfs.Stats().Repairs == 0 {
			t.Fatalf("cut %d: repair not counted", cut)
		}
		// The file must be physically truncated so new appends are clean.
		fixed, err := os.ReadFile(filepath.Join(clone, rel))
		if err != nil {
			t.Fatal(err)
		}
		if len(fixed) != prevBoundary {
			t.Fatalf("cut %d: file is %d bytes after repair, want %d", cut, len(fixed), prevBoundary)
		}
		// Append after repair and reload: the log must stay clean.
		if _, err := cfs.AppendEdit(id, session.JournalRecord{
			Op: session.JournalUndo, Seq: uint64(acked),
		}); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		logs2, err := cfs.LoadSessions()
		if err != nil || len(logs2) != 1 || logs2[0].Repaired {
			t.Fatalf("cut %d: log dirty after post-repair append (err=%v)", cut, err)
		}
		cfs.Close()
	}
}

// TestBitRotRepair flips a bit inside an early record: recovery keeps
// only the records before the damage.
func TestBitRotRepair(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fs, err := OpenFile(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	const id = "s000001"
	live, _ := journaledSession(t, fs, id, 5, 12)
	live.Close()
	fs.Close()

	path := filepath.Join(dir, "sessions", id+".wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	offs := RecordOffsets(data)
	// Damage record 4 (offsets index 3 is its start boundary).
	if err := faultfs.Corrupt(path, int64(offs[3])+2); err != nil {
		t.Fatal(err)
	}
	cfs, err := OpenFile(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	defer cfs.Close()
	logs, err := cfs.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 1 || !logs[0].Repaired {
		t.Fatal("bit rot not reported as repair")
	}
	if len(logs[0].Records) != 3 {
		t.Fatalf("%d records survived, want 3 (before the damage)", len(logs[0].Records))
	}
	if _, err := Replay(logs[0]); err != nil {
		t.Fatalf("replay of the repaired prefix: %v", err)
	}
}

func TestCompactionPreservesReplay(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fs, err := OpenFile(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	const id = "s000001"
	live, _ := journaledSession(t, fs, id, 11, 30)
	defer live.Close()

	// Checkpoint drops undo/redo history (the compaction barrier) and
	// the store rewrites the log as snapshot-only.
	snap, seq, err := live.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.CompactSession(id, seq, snap); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "sessions", id+".wal"))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(RecordOffsets(data)); n != 1 {
		t.Fatalf("compacted log has %d records, want 1 snapshot", n)
	}

	// Edits journaled after compaction extend the new log; replay must
	// still match the live session exactly.
	rng := rand.New(rand.NewSource(99))
	applied := 0
	for applied < 10 {
		if _, err := live.Apply(randomEdit(rng, live.DesignSnapshot())); err == nil {
			applied++
		}
	}
	logs, err := fs.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(logs[0])
	if err != nil {
		t.Fatalf("replay after compaction: %v", err)
	}
	defer replayed.Close()
	assertEqualSessions(t, replayed, live, "post-compaction")
	if fs.Stats().Compactions == 0 {
		t.Fatal("compaction not counted")
	}
}

func TestCompactionKeepsRacedRecords(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fs, err := OpenFile(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	const id = "s000001"
	live, acked := journaledSession(t, fs, id, 13, 8)
	defer live.Close()

	// Compact against a snapshot taken 3 ops ago: the 3 newer records
	// must survive the rewrite.
	logs, err := fs.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	old, err := Replay(SessionLog{
		ID: id, BaseSeq: logs[0].BaseSeq, Design: logs[0].Design,
		Records: logs[0].Records[:acked-3],
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, seq, err := old.Checkpoint()
	old.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.CompactSession(id, seq, snap); err != nil {
		t.Fatal(err)
	}
	logs2, err := fs.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(logs2[0].Records) != 3 {
		t.Fatalf("%d records survived compaction, want the 3 raced ones", len(logs2[0].Records))
	}
	replayed, err := Replay(logs2[0])
	if err != nil {
		t.Fatalf("replay with raced records: %v", err)
	}
	defer replayed.Close()
	assertEqualSessions(t, replayed, live, "raced compaction")
}

func TestDeleteAndOrphanCleanup(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fs, err := OpenFile(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	live, _ := journaledSession(t, fs, "s000001", 17, 5)
	live.Close()
	if err := fs.DeleteSession("s000001"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "sessions", "s000001.wal")); !os.IsNotExist(err) {
		t.Fatal("deleted session's WAL still on disk")
	}

	// A .tmp orphan (compaction killed pre-rename) and a headless file
	// (creation torn before the snapshot record landed) must both be
	// swept by the next load.
	if err := os.WriteFile(filepath.Join(dir, "sessions", "s000002.wal.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "sessions", "s000003.wal"), []byte{RecSnapshot, 0xff}, 0o644); err != nil {
		t.Fatal(err)
	}
	logs, err := fs.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 0 {
		t.Fatalf("%d sessions recovered, want none", len(logs))
	}
	if _, err := os.Stat(filepath.Join(dir, "sessions", "s000002.wal.tmp")); !os.IsNotExist(err) {
		t.Fatal("tmp orphan survived the load")
	}
	if _, err := os.Stat(filepath.Join(dir, "sessions", "s000003.wal")); !os.IsNotExist(err) {
		t.Fatal("headless session file survived the load")
	}
}

func TestJobLogFoldAndRepair(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fs, err := OpenFile(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UTC().Truncate(time.Millisecond)
	recs := []JobRecord{
		{ID: "j000001-aa", Kind: "predict", State: JobQueued, Req: []byte(`{"a":1}`), Created: now},
		{ID: "j000002-bb", Kind: "place", State: JobQueued, Req: []byte(`{"b":2}`), Created: now},
		{ID: "j000001-aa", Kind: "predict", State: JobDone, Result: []byte(`{"ok":true}`),
			Done: now.Add(time.Second), Expires: now.Add(time.Minute)},
	}
	for _, r := range recs {
		if err := fs.AppendJob(r); err != nil {
			t.Fatal(err)
		}
	}
	folded, err := fs.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(folded) != 2 {
		t.Fatalf("folded to %d jobs, want 2", len(folded))
	}
	// Submission order preserved; terminal state wins; Req inherited.
	if folded[0].ID != "j000001-aa" || folded[0].State != JobDone {
		t.Fatalf("job 1 folded to %+v", folded[0])
	}
	if string(folded[0].Req) != `{"a":1}` || !folded[0].Created.Equal(now) {
		t.Fatal("terminal record did not inherit Req/Created from the queued record")
	}
	if folded[1].State != JobQueued {
		t.Fatalf("job 2 state %q, want queued", folded[1].State)
	}
	fs.Close()

	// Tear the tail mid-record: the last record is dropped, the rest
	// survive, and the file is repaired for clean appends.
	path := filepath.Join(dir, "jobs.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	offs := RecordOffsets(data)
	if err := os.Truncate(path, int64(offs[1]+3)); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFile(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	folded2, err := fs2.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(folded2) != 2 || folded2[0].State != JobQueued {
		t.Fatalf("after torn tail: %+v", folded2)
	}
	if fs2.Stats().Repairs != 1 {
		t.Fatalf("repairs=%d, want 1", fs2.Stats().Repairs)
	}

	// CompactJobs rewrites the log to exactly the given set.
	if err := fs2.CompactJobs([]JobRecord{folded2[1]}); err != nil {
		t.Fatal(err)
	}
	folded3, err := fs2.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(folded3) != 1 || folded3[0].ID != "j000002-bb" {
		t.Fatalf("after compaction: %+v", folded3)
	}
}

// TestSyncAlwaysCounts exercises the fsync path.
func TestSyncAlwaysCounts(t *testing.T) {
	t.Parallel()
	fs, err := OpenFile(t.TempDir(), SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if err := fs.AppendJob(JobRecord{ID: "j1", Kind: "predict", State: JobQueued}); err != nil {
		t.Fatal(err)
	}
	if st := fs.Stats(); st.Syncs != 1 {
		t.Fatalf("syncs=%d, want 1", st.Syncs)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"off", SyncOff, true},
		{"never", SyncOff, true},
		{"always", SyncAlways, true},
		{"sometimes", SyncOff, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
}

// TestLoadSessionLiveNeverTruncates: while a session is live on this
// replica (open append handle — a takeover fetch against a false-down
// or draining owner), LoadSession must serve the good prefix WITHOUT
// truncating the WAL: an apparently damaged tail could be an append
// completing right after the scan, and truncating it would delete an
// acknowledged record out from under the writer. Only after the handle
// is gone (restart recovery) does the truncate-repair run.
func TestLoadSessionLiveNeverTruncates(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFile(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	const id = "live01"
	s, acked := journaledSession(t, fs, id, 5, 6)
	defer s.Close()

	path := filepath.Join(dir, "sessions", id+".wal")
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	goodSize := st.Size()
	// Simulate a torn in-progress append: a partial frame at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := fs.LoadSession(id)
	if err != nil {
		t.Fatalf("live LoadSession: %v", err)
	}
	if len(log.Records) != acked {
		t.Fatalf("live LoadSession served %d records, want the %d acknowledged", len(log.Records), acked)
	}
	st, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != goodSize+3 {
		t.Fatalf("live LoadSession changed the WAL: size %d, want untouched %d", st.Size(), goodSize+3)
	}

	// No live handle (fresh store over the same dir): the torn tail is
	// repaired in place, and the same records survive.
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFile(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	log2, err := fs2.LoadSession(id)
	if err != nil {
		t.Fatalf("cold LoadSession: %v", err)
	}
	if len(log2.Records) != acked {
		t.Fatalf("cold LoadSession served %d records, want %d", len(log2.Records), acked)
	}
	st, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != goodSize {
		t.Fatalf("cold LoadSession left the torn tail: size %d, want repaired %d", st.Size(), goodSize)
	}
}
