package store

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/faultfs"
)

// frames builds a log of n small records with distinct payloads.
func frames(n int) ([]byte, [][]byte) {
	var buf []byte
	var payloads [][]byte
	for i := 0; i < n; i++ {
		p := bytes.Repeat([]byte{byte('a' + i%26)}, 5+i%17)
		payloads = append(payloads, p)
		buf = appendFrame(buf, RecEdit, p)
	}
	return buf, payloads
}

func TestFrameRoundTrip(t *testing.T) {
	t.Parallel()
	buf, payloads := frames(12)
	sc := NewScanner(buf)
	for i, want := range payloads {
		if !sc.Next() {
			t.Fatalf("record %d: Next=false, err=%v", i, sc.Err())
		}
		kind, got := sc.Record()
		if kind != RecEdit || !bytes.Equal(got, want) {
			t.Fatalf("record %d: kind=%d payload=%q, want %q", i, kind, got, want)
		}
	}
	if sc.Next() {
		t.Fatal("scanner produced a record past the end")
	}
	if sc.Err() != nil {
		t.Fatalf("clean log ended with error: %v", sc.Err())
	}
	if sc.Offset() != len(buf) {
		t.Fatalf("final offset %d, want %d", sc.Offset(), len(buf))
	}
}

func TestRecordOffsets(t *testing.T) {
	t.Parallel()
	buf, payloads := frames(7)
	offs := RecordOffsets(buf)
	if len(offs) != len(payloads) {
		t.Fatalf("got %d offsets, want %d", len(offs), len(payloads))
	}
	if offs[len(offs)-1] != len(buf) {
		t.Fatalf("last offset %d, want %d", offs[len(offs)-1], len(buf))
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] <= offs[i-1] {
			t.Fatalf("offsets not increasing: %v", offs)
		}
	}
}

// TestTruncationAtEveryByte is the exhaustive torn-tail check: cutting
// the log at ANY byte offset must yield exactly the records whose frames
// fit entirely before the cut, with a typed error (never a panic) when
// the cut lands inside a frame.
func TestTruncationAtEveryByte(t *testing.T) {
	t.Parallel()
	buf, _ := frames(9)
	offs := RecordOffsets(buf)
	boundary := map[int]bool{0: true}
	for _, o := range offs {
		boundary[o] = true
	}
	for cut := 0; cut <= len(buf); cut++ {
		whole := 0
		for _, o := range offs {
			if o <= cut {
				whole++
			}
		}
		sc := NewScanner(buf[:cut])
		n := 0
		for sc.Next() {
			n++
		}
		if n != whole {
			t.Fatalf("cut %d: decoded %d records, want %d", cut, n, whole)
		}
		if boundary[cut] {
			if sc.Err() != nil {
				t.Fatalf("cut %d on a boundary: unexpected error %v", cut, sc.Err())
			}
		} else {
			if !errors.Is(sc.Err(), ErrTruncated) && !errors.Is(sc.Err(), ErrChecksum) {
				t.Fatalf("cut %d mid-record: err=%v, want ErrTruncated or ErrChecksum", cut, sc.Err())
			}
		}
		if sc.Offset() > cut {
			t.Fatalf("cut %d: offset %d past the cut", cut, sc.Offset())
		}
	}
}

// TestBitFlipAtEveryByte flips each byte of a log in turn: the scan must
// stop with a typed error at or before the damaged record and never
// accept a corrupted payload as that record's content.
func TestBitFlipAtEveryByte(t *testing.T) {
	t.Parallel()
	buf, payloads := frames(5)
	offs := RecordOffsets(buf)
	for pos := 0; pos < len(buf); pos++ {
		mut := append([]byte(nil), buf...)
		mut[pos] ^= 0x40
		// The record containing the flipped byte.
		damaged := 0
		for damaged < len(offs) && offs[damaged] <= pos {
			damaged++
		}
		sc := NewScanner(mut)
		n := 0
		for sc.Next() {
			kind, payload := sc.Record()
			if n < damaged {
				if kind != RecEdit || !bytes.Equal(payload, payloads[n]) {
					t.Fatalf("flip at %d: record %d before the damage changed", pos, n)
				}
			}
			if n >= damaged && n < len(payloads) && bytes.Equal(payload, payloads[n]) && kind == RecEdit {
				// CRC-32 can in principle collide, but a single bit flip is
				// always detected; identical content here means the scanner
				// accepted the damaged record verbatim.
				t.Fatalf("flip at %d: damaged record %d accepted unchanged", pos, n)
			}
			n++
		}
		if n > damaged {
			t.Fatalf("flip at %d: decoded %d records, damage was in record %d", pos, n, damaged)
		}
		if sc.Err() == nil {
			t.Fatalf("flip at %d: scan ended clean", pos)
		}
		if !errors.Is(sc.Err(), ErrTruncated) && !errors.Is(sc.Err(), ErrChecksum) {
			t.Fatalf("flip at %d: untyped error %v", pos, sc.Err())
		}
	}
}

// TestTornWriteViaFaultFS drives a torn write through the fault-injecting
// writer: the writer claims success, the medium holds a prefix, and the
// scan of what was persisted yields exactly the fully-written records.
func TestTornWriteViaFaultFS(t *testing.T) {
	t.Parallel()
	buf, _ := frames(6)
	offs := RecordOffsets(buf)
	tearAt := offs[3] + 4 // mid-way through record 4's frame
	var medium bytes.Buffer
	f := faultfs.New(&medium)
	f.TearAfter(int64(tearAt))
	if n, err := f.Write(buf); n != len(buf) || err != nil {
		t.Fatalf("torn write reported n=%d err=%v, want full success", n, err)
	}
	if f.Written() != int64(tearAt) {
		t.Fatalf("medium holds %d bytes, want %d", f.Written(), tearAt)
	}
	sc := NewScanner(medium.Bytes())
	n := 0
	for sc.Next() {
		n++
	}
	if n != 4 {
		t.Fatalf("recovered %d records from the torn log, want 4", n)
	}
	if !errors.Is(sc.Err(), ErrTruncated) {
		t.Fatalf("torn tail error %v, want ErrTruncated", sc.Err())
	}
}
