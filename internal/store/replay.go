package store

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/session"
)

// Replay reconstructs a live session from its durable log: parse the
// base snapshot, then re-apply every acknowledged journal record through
// the normal session entry points — the journal has exact inverses, so
// the result is byte-for-byte the acknowledged state.
//
// Each record's stored sequence number is checked against the session's
// actual sequence after the step; a mismatch means the log and the replay
// disagree and recovery must not pretend otherwise.
func Replay(log SessionLog) (*session.Session, error) {
	d, err := layout.ReadString(string(log.Design))
	if err != nil {
		return nil, fmt.Errorf("store: replay %s: snapshot: %w", log.ID, err)
	}
	s := session.New(log.ID, d)
	s.RestoreSeq(log.BaseSeq)
	for i, rec := range log.Records {
		var err error
		switch rec.Op {
		case session.JournalApply:
			_, err = s.Apply(rec.Edit)
		case session.JournalUndo:
			_, err = s.Undo()
		case session.JournalRedo:
			_, err = s.Redo()
		default:
			err = fmt.Errorf("unknown journal op %q", rec.Op)
		}
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("store: replay %s: record %d (%s): %w", log.ID, i, rec.Op, err)
		}
		if got := s.Seq(); got != rec.Seq {
			s.Close()
			return nil, fmt.Errorf("store: replay %s: record %d: seq %d after replay, log says %d",
				log.ID, i, got, rec.Seq)
		}
	}
	return s, nil
}
