package store

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/session"
)

// Store is the pluggable persistence interface of the serving layer. A
// nil Store in the server config means no durability at all; Memory keeps
// the same bookkeeping in RAM (tests, reference semantics); FileStore
// writes a data directory of WAL files.
//
// Write-ahead contract: AppendEdit and AppendJob return only after the
// record is durable to the implementation's standard (for FileStore, a
// completed write(2); plus fsync under SyncAlways) — the serving layer
// acknowledges a client only after the append returns, so an
// acknowledged edit is never lost to a process kill.
type Store interface {
	// CreateSession opens a session log with its base snapshot. It fails
	// if the session already exists.
	CreateSession(id string, baseSeq uint64, design []byte) error
	// AppendEdit appends one acknowledged journal record and returns the
	// number of records appended since the last snapshot — the compaction
	// trigger input.
	AppendEdit(id string, rec session.JournalRecord) (int, error)
	// CompactSession atomically replaces a session's log with a fresh
	// snapshot at baseSeq plus any already-appended records with
	// Seq > baseSeq (edits can race the compaction; none may be dropped).
	CompactSession(id string, baseSeq uint64, design []byte) error
	// DeleteSession removes a session's log (explicit close or TTL
	// eviction — the session must not resurrect on restart).
	DeleteSession(id string) error
	// LoadSessions returns every recoverable session log, repairing
	// damaged tails (a torn or corrupt record ends the acknowledged
	// prefix; the damage is truncated away so the next append is clean).
	LoadSessions() ([]SessionLog, error)
	// LoadSession returns one session's log with the same repair
	// semantics as LoadSessions. It is the unit of transfer for
	// cross-replica session takeover: the owner serves its log, the
	// adopter replays it. Returns an error when the session is unknown.
	LoadSession(id string) (SessionLog, error)

	// AppendJob appends one job state transition.
	AppendJob(rec JobRecord) error
	// LoadJobs returns the folded job records (one per job, last durable
	// state wins), repairing a damaged tail like LoadSessions.
	LoadJobs() ([]JobRecord, error)
	// CompactJobs atomically replaces the job log with exactly recs —
	// recovery rewrites the log with what it decided to keep.
	CompactJobs(recs []JobRecord) error

	// Stats returns the store's monotonic counters.
	Stats() Stats
	// Close releases file handles. The store must not be used after.
	Close() error
}

// SessionLog is the durable state of one session: the base snapshot plus
// the acknowledged journal suffix. Replay rebuilds the live session.
type SessionLog struct {
	ID      string
	BaseSeq uint64
	Design  []byte // ASCII layout at BaseSeq
	Records []session.JournalRecord
	// Repaired reports that a damaged tail (torn write, checksum failure)
	// was truncated away during load.
	Repaired bool
}

// Stats are the store's monotonic counters, exported on /metrics.
type Stats struct {
	Appends     uint64 // WAL records appended (edits + jobs + snapshots)
	Syncs       uint64 // fsync calls issued
	Compactions uint64 // session/job log rewrites
	Repairs     uint64 // damaged tails truncated during load
}

// Memory is the in-RAM Store: full interface semantics, no durability.
// It is the reference implementation the file store is tested against,
// and the right choice for ephemeral servers that still want the
// requeue-on-drain bookkeeping.
type Memory struct {
	mu       sync.Mutex
	sessions map[string]*memSession
	jobs     []JobRecord
	stats    Stats
}

type memSession struct {
	baseSeq uint64
	design  []byte
	records []session.JournalRecord
}

// NewMemory builds an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{sessions: map[string]*memSession{}}
}

func (m *Memory) CreateSession(id string, baseSeq uint64, design []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sessions[id]; ok {
		return fmt.Errorf("store: session %s already exists", id)
	}
	m.sessions[id] = &memSession{baseSeq: baseSeq, design: append([]byte(nil), design...)}
	m.stats.Appends++
	return nil
}

func (m *Memory) AppendEdit(id string, rec session.JournalRecord) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return 0, fmt.Errorf("store: no session %s", id)
	}
	s.records = append(s.records, rec)
	m.stats.Appends++
	return len(s.records), nil
}

func (m *Memory) CompactSession(id string, baseSeq uint64, design []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return fmt.Errorf("store: no session %s", id)
	}
	var keep []session.JournalRecord
	for _, r := range s.records {
		if r.Seq > baseSeq {
			keep = append(keep, r)
		}
	}
	s.baseSeq, s.design, s.records = baseSeq, append([]byte(nil), design...), keep
	m.stats.Compactions++
	return nil
}

func (m *Memory) DeleteSession(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.sessions, id)
	return nil
}

func (m *Memory) LoadSessions() ([]SessionLog, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SessionLog, 0, len(m.sessions))
	for id, s := range m.sessions {
		out = append(out, SessionLog{
			ID:      id,
			BaseSeq: s.baseSeq,
			Design:  append([]byte(nil), s.design...),
			Records: append([]session.JournalRecord(nil), s.records...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

func (m *Memory) LoadSession(id string) (SessionLog, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return SessionLog{}, fmt.Errorf("store: no session %s", id)
	}
	return SessionLog{
		ID:      id,
		BaseSeq: s.baseSeq,
		Design:  append([]byte(nil), s.design...),
		Records: append([]session.JournalRecord(nil), s.records...),
	}, nil
}

func (m *Memory) AppendJob(rec JobRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs = append(m.jobs, rec)
	m.stats.Appends++
	return nil
}

func (m *Memory) LoadJobs() ([]JobRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return foldJobs(m.jobs), nil
}

func (m *Memory) CompactJobs(recs []JobRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs = append([]JobRecord(nil), recs...)
	m.stats.Compactions++
	return nil
}

func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

func (m *Memory) Close() error { return nil }
