package buck

import (
	"testing"

	"repro/internal/core"
)

// TestToleranceYield turns the paper's "statement on achievable
// performance with the given components" into numbers: the optimised
// layout keeps a solid pass yield under 10 % component and 20 % coupling
// tolerances, while the unfavourable layout fails every sample.
func TestToleranceYield(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("Monte-Carlo run")
	}
	unfav := Project()
	if err := Unfavorable(unfav); err != nil {
		t.Fatal(err)
	}
	if _, err := DeriveAllRules(unfav, 0.01, 3, 0.01); err != nil {
		t.Fatal(err)
	}

	opt := Project()
	opt.Design.Rules = unfav.Design.Rules
	if _, err := Optimize(opt); err != nil {
		t.Fatal(err)
	}

	mc := core.ToleranceOptions{N: 60, Seed: 2008, MaxFreq: 30e6}
	yUnfav, err := unfav.ToleranceYield(mc)
	if err != nil {
		t.Fatal(err)
	}
	yOpt, err := opt.ToleranceYield(mc)
	if err != nil {
		t.Fatal(err)
	}
	if yUnfav.Yield() > 0.05 {
		t.Errorf("unfavourable layout yield = %.0f%%, expected ≈ 0", yUnfav.Yield()*100)
	}
	if yOpt.Yield() < 0.7 {
		t.Errorf("optimised layout yield = %.0f%%, expected solid", yOpt.Yield()*100)
	}
	// Margins are sorted and the quantiles are ordered.
	if yOpt.Percentile(0.1) > yOpt.Percentile(0.9) {
		t.Error("percentiles out of order")
	}
	// Deterministic for a seed.
	y2, err := opt.ToleranceYield(mc)
	if err != nil {
		t.Fatal(err)
	}
	if y2.Pass != yOpt.Pass {
		t.Errorf("non-deterministic yield: %d vs %d", y2.Pass, yOpt.Pass)
	}
}
