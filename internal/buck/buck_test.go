package buck

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/emi"
)

func TestProjectIsConsistent(t *testing.T) {
	t.Parallel()
	p := Project()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Design.Comps) != 11 {
		t.Errorf("components = %d", len(p.Design.Comps))
	}
	if got := p.Design.GroupNames(); len(got) != 3 {
		t.Errorf("functional groups = %v, want 3 (paper)", got)
	}
	if len(p.AllPairs()) != 28 {
		t.Errorf("mapped pairs = %d", len(p.AllPairs()))
	}
}

func TestCircuitValues(t *testing.T) {
	t.Parallel()
	p := Project()
	// The filter choke inductance comes from its PEEC winding model and
	// must be in the tens of µH.
	lf1 := p.Circuit.Find("Llf1")
	if lf1 == nil || lf1.Value < 5e-6 || lf1.Value > 200e-6 {
		t.Errorf("Llf1 = %+v", lf1)
	}
	// Capacitor ESLs come from their loop models: nH range.
	lcin := p.Circuit.Find("Lcin1")
	if lcin == nil || lcin.Value < 1e-9 || lcin.Value > 100e-9 {
		t.Errorf("Lcin1 = %+v", lcin)
	}
	// The two switching sources share the period.
	iq := p.Circuit.Find("IQ1").Src.Pulse
	vd := p.Circuit.Find("VD1").Src.Pulse
	if iq.Period != vd.Period || iq.Period != 1/FSwitch {
		t.Errorf("source periods %v / %v", iq.Period, vd.Period)
	}
}

// TestPaperStory is the integration test of the whole reproduction: the
// unfavourable layout exceeds the CISPR 25 limits, the optimised layout
// meets them, and the difference is tens of dB from placement alone (same
// components, same topology, same board — the paper's Figures 1 and 2).
func TestPaperStory(t *testing.T) {
	t.Parallel()
	p := Project()

	// Unfavourable (baseline, EMI-blind) layout.
	if err := Unfavorable(p); err != nil {
		t.Fatalf("baseline placement: %v", err)
	}
	if rep := p.Verify(); !rep.Green() {
		t.Fatalf("baseline layout geometrically illegal:\n%s", rep)
	}
	sUnfav, err := p.Predict(core.PredictOptions{WithCouplings: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sUnfav.Violations()) == 0 {
		t.Error("unfavourable layout should exceed CISPR 25 limits (Figure 1)")
	}

	// Sensitivity → rules → optimised placement.
	pairs, err := DeriveAllRules(p, 0.01, 3, 0.01)
	if err != nil {
		t.Fatalf("rule derivation: %v", err)
	}
	if len(pairs) == 0 || p.Design.RuleCount() == 0 {
		t.Fatal("no relevant pairs / rules found")
	}
	// Pruning works: fewer field extractions than all 28 pairs.
	if len(pairs) >= len(p.AllPairs()) {
		t.Errorf("sensitivity did not prune: %d of %d", len(pairs), len(p.AllPairs()))
	}
	res, err := Optimize(p)
	if err != nil {
		t.Fatalf("optimised placement: %v", err)
	}
	// The paper: computation time for the buck placement below 1 second.
	if res.Elapsed.Seconds() > 5 {
		t.Errorf("placement took %v, paper reports sub-second", res.Elapsed)
	}
	rep := p.Verify()
	if !rep.Green() {
		t.Fatalf("optimised layout has violations (Figure 17 should be all green):\n%s", rep)
	}
	for _, pr := range rep.Pairs {
		if !pr.OK {
			t.Errorf("EMD pair %s/%s red after optimisation", pr.RefA, pr.RefB)
		}
	}

	sOpt, err := p.Predict(core.PredictOptions{WithCouplings: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(sOpt.Violations()); n != 0 {
		t.Errorf("optimised layout still violates at %d harmonics", n)
	}
	// Reduction up to ~20 dB (Figure 2).
	maxRed := 0.0
	for i := range sUnfav.DB {
		if d := sUnfav.DB[i] - sOpt.DB[i]; d > maxRed {
			maxRed = d
		}
	}
	if maxRed < 15 {
		t.Errorf("max emission reduction = %.1f dB, paper shows up to ~20 dB", maxRed)
	}
}

// TestPredictionCorrelation reproduces Figures 12–14: the prediction
// neglecting couplings does not correlate with the (virtual) measurement,
// the prediction including couplings does.
func TestPredictionCorrelation(t *testing.T) {
	t.Parallel()
	p := Project()
	if err := Unfavorable(p); err != nil {
		t.Fatal(err)
	}
	meas, err := p.VirtualMeasurement(emi.BandStop, 2, 2008)
	if err != nil {
		t.Fatal(err)
	}
	sNo, err := p.Predict(core.PredictOptions{WithCouplings: false})
	if err != nil {
		t.Fatal(err)
	}
	sYes, err := p.Predict(core.PredictOptions{WithCouplings: true})
	if err != nil {
		t.Fatal(err)
	}
	cmpNo := emi.Compare(meas, sNo)
	cmpYes := emi.Compare(meas, sYes)
	if cmpYes.MaxAbsDelta > 2.5 {
		t.Errorf("coupled prediction deviates %.1f dB from measurement", cmpYes.MaxAbsDelta)
	}
	if cmpNo.MaxAbsDelta < 10 {
		t.Errorf("uncoupled prediction deviates only %.1f dB — should be tens of dB off", cmpNo.MaxAbsDelta)
	}
	if cmpYes.Correlation < 0.95 {
		t.Errorf("coupled correlation = %.3f", cmpYes.Correlation)
	}
	if cmpNo.Correlation > cmpYes.Correlation {
		t.Errorf("uncoupled correlates better (%v) than coupled (%v)",
			cmpNo.Correlation, cmpYes.Correlation)
	}
}

func TestOptimizeRequiresRules(t *testing.T) {
	t.Parallel()
	p := Project()
	if _, err := Optimize(p); err == nil {
		t.Error("Optimize without rules should fail")
	}
}

func TestUnfavorableBreaksEMDRulesOnceKnown(t *testing.T) {
	t.Parallel()
	// Derive the rules first, then place EMI-blind: the resulting layout
	// must show red circles (Figure 15).
	p := Project()
	if _, err := DeriveAllRules(p, 0.01, 3, 0.01); err != nil {
		t.Fatal(err)
	}
	if err := Unfavorable(p); err != nil {
		t.Fatal(err)
	}
	rep := p.Verify()
	if len(rep.ByKind(drc.KindEMD)) == 0 {
		t.Errorf("EMI-blind layout should violate derived EMD rules:\n%s", rep)
	}
}

// TestCapacitiveCouplingHighFrequency covers the paper's remark that
// "capacitive coupling gains more influence at higher frequencies": the
// panel-method body capacitances barely move the spectrum below 10 MHz but
// raise the top of the CISPR band substantially.
func TestCapacitiveCouplingHighFrequency(t *testing.T) {
	t.Parallel()
	p := Project()
	if err := Unfavorable(p); err != nil {
		t.Fatal(err)
	}
	sInd, err := p.Predict(core.PredictOptions{WithCouplings: true})
	if err != nil {
		t.Fatal(err)
	}
	sCap, err := p.Predict(core.PredictOptions{WithCouplings: true, WithCapacitive: true})
	if err != nil {
		t.Fatal(err)
	}
	_, loInd := sInd.InBand(150e3, 5e6).Max()
	_, loCap := sCap.InBand(150e3, 5e6).Max()
	if math.Abs(loCap-loInd) > 1 {
		t.Errorf("capacitive coupling should be negligible at low f: %.1f vs %.1f", loCap, loInd)
	}
	_, hiInd := sInd.InBand(50e6, 108e6).Max()
	_, hiCap := sCap.InBand(50e6, 108e6).Max()
	if hiCap < hiInd+5 {
		t.Errorf("capacitive coupling should dominate at high f: %.1f vs %.1f", hiCap, hiInd)
	}
}

func TestBodyCapacitanceMagnitudes(t *testing.T) {
	t.Parallel()
	p := Project()
	if err := Unfavorable(p); err != nil {
		t.Fatal(err)
	}
	cs, err := p.ExtractBodyCapacitances(p.CapPairs())
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) == 0 {
		t.Fatal("no body capacitances extracted")
	}
	for pair, c := range cs {
		// Component bodies on one board couple in the fF–pF decade.
		if c < 1e-16 || c > 20e-12 {
			t.Errorf("pair %v: implausible body capacitance %v F", pair, c)
		}
	}
}

// TestTransientConfirmsFundamental runs the full buck EMI circuit in the
// time domain with DC-operating-point initialisation and checks the
// receiver reading at the switching fundamental against the harmonic
// predictor. (Higher harmonics need milliseconds of simulated periodic-
// steady-state convergence because of the input filter's ~1.6 ms ring; the
// machinery-level agreement over 8 harmonics is covered by
// core.TestTransientCrossValidatesPredictor on a damped circuit.)
func TestTransientConfirmsFundamental(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("multi-second transient simulation")
	}
	p := Project()
	if err := Unfavorable(p); err != nil {
		t.Fatal(err)
	}
	opt := core.PredictOptions{WithCouplings: false}
	sFreq, err := p.Predict(opt)
	if err != nil {
		t.Fatal(err)
	}
	sTime, err := p.PredictTransient(opt, 150, 2.5e-9, emi.Peak, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(sTime.DB[0] - sFreq.DB[0]); d > 2 {
		t.Errorf("fundamental: freq-domain %.1f vs time-domain %.1f dBµV (Δ %.1f)",
			sFreq.DB[0], sTime.DB[0], d)
	}
}

func TestLowerHelper(t *testing.T) {
	t.Parallel()
	if lower("CIN1") != "cin1" || lower("abc") != "abc" {
		t.Error("lower broken")
	}
}

func TestEmissionsAreFiniteAndPlausible(t *testing.T) {
	t.Parallel()
	p := Project()
	if err := Unfavorable(p); err != nil {
		t.Fatal(err)
	}
	s, err := p.Predict(core.PredictOptions{WithCouplings: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, db := range s.DB {
		if math.IsNaN(db) || math.IsInf(db, 0) {
			t.Fatalf("non-finite level at %v Hz", s.Freqs[i])
		}
	}
	_, peak := s.Max()
	if peak < 30 || peak > 130 {
		t.Errorf("peak %v dBµV outside plausible EMI range", peak)
	}
	// The spectrum spans the full CISPR 25 band.
	if s.Freqs[0] > emi.BandStart+100e3 || s.Freqs[len(s.Freqs)-1] < 100e6 {
		t.Errorf("band coverage %v – %v", s.Freqs[0], s.Freqs[len(s.Freqs)-1])
	}
}
