package buck

import (
	"math"
	"testing"

	"repro/internal/emi"
)

func predictCM(t *testing.T, yCapK float64, mutate func(find func(string) float64, set func(string, float64))) *emi.Spectrum {
	t.Helper()
	p, err := CMProject(yCapK)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(
			func(name string) float64 { return p.Circuit.Find(name).Value },
			func(name string, v float64) { p.Circuit.Find(name).Value = v },
		)
	}
	s, err := (&emi.Predictor{
		Circuit:     p.Circuit,
		Sources:     p.Sources,
		MeasureNode: p.MeasureNode,
	}).Spectrum()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHeatsinkCapacitancePlausible(t *testing.T) {
	t.Parallel()
	c := HeatsinkCapacitance()
	// D2PAK on a thermal pad: tens of pF.
	if c < 5e-12 || c > 100e-12 {
		t.Errorf("heatsink capacitance = %v F", c)
	}
}

func TestCMPathRequiresParasitic(t *testing.T) {
	t.Parallel()
	// Shrinking the heatsink capacitance to nothing must remove the
	// common-mode emissions entirely: the path IS the parasitic.
	sWith := predictCM(t, 0, nil)
	sWithout := predictCM(t, 0, func(_ func(string) float64, set func(string, float64)) {
		set("Cpar", 1e-18)
	})
	_, with := sWith.InBand(5e6, 108e6).Max()
	_, without := sWithout.InBand(5e6, 108e6).Max()
	if with < without+60 {
		t.Errorf("CM path not dominated by Cpar: %v vs %v dBµV", with, without)
	}
}

func TestCMChokeEssential(t *testing.T) {
	t.Parallel()
	// Collapsing the choke inductance must raise CM emissions massively.
	sChoke := predictCM(t, 0, nil)
	sNoChoke := predictCM(t, 0, func(_ func(string) float64, set func(string, float64)) {
		set("Lcma", 1e-9)
		set("Lcmb", 1e-9)
	})
	_, with := sChoke.InBand(150e3, 30e6).Max()
	_, without := sNoChoke.InBand(150e3, 30e6).Max()
	if without < with+20 {
		t.Errorf("CM choke should buy > 20 dB: %v vs %v dBµV", without, with)
	}
}

func TestYCapPlacementDegradesFilter(t *testing.T) {
	t.Parallel()
	// The Figure 8 effect in circuit terms: a Y-capacitor sitting in the
	// choke's stray field (coupling factor a few hundredths) degrades the
	// high-frequency CM filtering.
	sGood := predictCM(t, 0, nil)
	sBad := predictCM(t, 0.03, nil)
	_, good := sGood.InBand(5e6, 108e6).Max()
	_, bad := sBad.InBand(5e6, 108e6).Max()
	if bad < good+8 {
		t.Errorf("bad Y-cap position should cost > 8 dB: %v vs %v dBµV", bad, good)
	}
	// Below a few MHz the choke's bulk inductance dominates and the
	// placement barely matters.
	_, goodLF := sGood.InBand(150e3, 2e6).Max()
	_, badLF := sBad.InBand(150e3, 2e6).Max()
	if math.Abs(goodLF-badLF) > 1.5 {
		t.Errorf("LF should be placement-insensitive: %v vs %v dBµV", goodLF, badLF)
	}
}

func TestYCapPositionCouplingProfile(t *testing.T) {
	t.Parallel()
	// The position scan around the 2-winding choke feeds the circuit k:
	// decoupled positions exist (k ≈ 0) and unfavourable ones reach a
	// measurable fraction of a percent.
	min, max := math.Inf(1), 0.0
	for deg := 0; deg < 360; deg += 30 {
		k := YCapPositionCoupling(float64(deg) * math.Pi / 180)
		if k < min {
			min = k
		}
		if k > max {
			max = k
		}
	}
	if max <= 0 {
		t.Fatal("no coupling anywhere")
	}
	if min > 0.02*max {
		t.Errorf("no decoupled position found: min/max = %v", min/max)
	}
}

func TestCMProjectStructure(t *testing.T) {
	t.Parallel()
	p, err := CMProject(0)
	if err != nil {
		t.Fatal(err)
	}
	// Two LISNs present and intact.
	for _, prefix := range []string{"lisnp", "lisnn"} {
		if err := emi.ValidateLISN(p.Circuit, prefix); err != nil {
			t.Error(err)
		}
	}
	if p.MeasureNode != "lisnp_meas" {
		t.Errorf("measure node = %q", p.MeasureNode)
	}
	// The CM choke winding coupling is in place.
	k := p.Circuit.Find("Kcm")
	if k == nil || k.Coup != CMChokeK {
		t.Errorf("Kcm = %+v", k)
	}
}
