package buck

import (
	"math"

	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/electro"
	"repro/internal/emi"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/rules"
)

// Common-mode variant of the case study. CISPR 25 measures each supply
// line against the vehicle chassis through its own LISN; the dominant
// high-frequency mechanism is common-mode current pumped by the switch-
// node dv/dt through the transistor tab's parasitic capacitance to the
// heatsink/chassis, returning through both LISNs. The filter against it is
// the current-compensated (CM) choke plus Y-capacitors — the components of
// the paper's Figure 8, whose relative placement this model exposes as a
// coupling factor between the choke winding and the Y-capacitor ESL.

// CM circuit parameters.
const (
	CMChokeL     = 1e-3 // per-winding inductance of the CM choke (closed core)
	CMChokeK     = 0.98 // winding coupling of the current-compensated choke
	YCapacitance = 2.2e-9
)

// Heatsink mounting geometry: a D2PAK tab on a filled-silicone thermal pad.
const (
	tabW, tabL = 10e-3, 12e-3
	padThick   = 0.3e-3
	padEpsR    = 5.0
)

// HeatsinkCapacitance returns the parasitic capacitance between the
// switching transistor's tab and the grounded heatsink it is mounted on.
// The thin uniform pad gap is a parallel-plate problem (the electrostatic
// panel method needs panels finer than the gap there, see
// electro.MutualCapacitance); a 15 % allowance covers the edge fringe
// field.
func HeatsinkCapacitance() float64 {
	plate := electro.Eps0 * padEpsR * tabW * tabL / padThick
	return plate * 1.15
}

// CMProject assembles the common-mode analysis: two LISNs (supply and
// return line), CM choke, X- and Y-capacitors, and the switch-node dv/dt
// source driving the heatsink capacitance.
//
// yCapChokeK is the magnetic coupling factor between the CM choke winding
// and the Y-capacitor ESL — the quantity the paper's Figure 8 position
// scan produces. 0 models a Y-capacitor at a decoupled position of the
// two-winding choke; a few hundredths model an unfavourable position.
func CMProject(yCapChokeK float64) (*core.Project, error) {
	cpar := HeatsinkCapacitance()

	c := &netlist.Circuit{Title: "buck converter common-mode model"}
	c.AddV("Vbat", "batp", "batn", netlist.Source{DC: VIn})
	// One artificial network per line, both referenced to chassis (node 0).
	measP := emi.AddLISN(c, "lisnp", "batp", "vinp")
	emi.AddLISN(c, "lisnn", "batn", "vinn")

	// Current-compensated choke: two coupled windings.
	c.AddL("Lcma", "vinp", "vp2", CMChokeL)
	c.AddL("Lcmb", "vinn", "vn2", CMChokeL)
	c.AddK("Kcm", "Lcma", "Lcmb", CMChokeK)

	// X capacitor between the lines (differential) with parasitics.
	xc := components.NewX2Cap("X2-cm", 1.5e-6)
	c.AddC("Cx", "vp2", "x1", xc.C)
	c.AddR("Rx", "x1", "x2", xc.ESR)
	c.AddL("Lx", "x2", "vn2", xc.EffectiveESL())

	// Y capacitors line-to-chassis with their loop ESL.
	yc := components.NewYCap("Y1-cm", YCapacitance)
	c.AddC("Cy1", "vp2", "y1", yc.C)
	c.AddL("Ly1", "y1", "0", yc.EffectiveESL())
	c.AddC("Cy2", "vn2", "y2", yc.C)
	c.AddL("Ly2", "y2", "0", yc.EffectiveESL())

	// The converter's differential input load.
	c.AddR("Rdm", "vp2", "vn2", VIn*Duty/ILoad*2)

	// Switch-node dv/dt source (drain-source voltage against the return
	// rail) driving the heatsink capacitance to chassis.
	period := 1 / FSwitch
	c.AddV("Vds", "sw", "vn2", netlist.Source{Pulse: &netlist.Pulse{
		V1: 0, V2: VIn, Rise: RiseTime, Fall: FallTime,
		Width: Duty*period - RiseTime, Period: period,
	}})
	c.AddC("Cpar", "sw", "hs", cpar)
	c.AddL("Lhs", "hs", "0", 20e-9) // heatsink strap inductance

	// The placement-dependent stray coupling between the choke winding
	// and the Y-capacitor ESL (Figure 8's red/green positions).
	if yCapChokeK != 0 {
		c.AddK("Kyc", "Lcma", "Ly1", yCapChokeK)
	}

	// Minimal placement view: the CM filter corner of the board.
	cm2 := components.NewCMChoke2("CM2")
	d := &layout.Design{
		Name:      "buck CM filter",
		Boards:    1,
		Clearance: 1e-3,
		Areas: []layout.Area{
			{Name: "board", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, 0.06, 0.05))},
		},
		Rules: rules.NewSet(nil),
	}
	for ref, m := range map[string]components.Model{"LCM1": cm2, "CY1": yc, "CY2": yc, "CX1": xc} {
		w, l, h := m.Size()
		d.Comps = append(d.Comps, &layout.Component{
			Ref: ref, W: w, L: l, H: h, Axis: m.MagneticAxis(0), Group: "cm-filter",
		})
	}

	p := &core.Project{
		Design:  d,
		Circuit: c,
		Models: map[string]components.Model{
			"LCM1": cm2, "CY1": yc, "CY2": yc, "CX1": xc,
		},
		InductorOf: map[string]string{
			"CY1": "Ly1",
			"CY2": "Ly2",
			"CX1": "Lx",
		},
		Sources:     []string{"Vds"},
		MeasureNode: measP,
	}
	return p, nil
}

// YCapPositionCoupling evaluates the Figure 8 scenario for the circuit: it
// places a Y-capacitor at the given angle (radians) on a 35 mm orbit
// around the two-winding CM choke, with its axis pointing at the choke,
// and returns the effective coupling magnitude the placement produces.
func YCapPositionCoupling(angle float64) float64 {
	cm2 := components.NewCMChoke2("CM2")
	yc := components.NewYCap("Y1", YCapacitance)
	const dist = 0.035
	pos := geom.V2(dist*math.Cos(angle), dist*math.Sin(angle))
	victim := yc.Conductor(angle + math.Pi/2).Translate(pos.Lift(0))
	return cm2.EffectiveCouplingTo(victim, 0, 0)
}
