// Package buck provides the paper's evaluation object: a DC/DC buck
// converter for automotive applications, equipped with an input and output
// EMI filter and measured behind a CISPR 25 LISN. The package assembles
// the three synchronized views — electrical netlist with parasitics,
// placement problem, PEEC component models — into a core.Project, and
// reproduces the paper's two layouts: the unfavourable one (Figure 1) and
// the EMI-optimised one (Figure 2/16).
package buck

import (
	"fmt"

	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/emi"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/rules"
)

// Electrical operating point of the reference converter.
const (
	VIn      = 12.0  // battery voltage
	ILoad    = 3.0   // load current
	FSwitch  = 200e3 // switching frequency
	Duty     = 5.0 / 12.0
	RiseTime = 40e-9
	FallTime = 40e-9
)

// Project assembles the complete buck-converter design. Components are
// created unplaced; use Unfavorable or Optimize (or the placement tool) to
// lay them out.
func Project() *core.Project {
	models := buildModels()
	return &core.Project{
		Design:  buildDesign(models),
		Circuit: buildCircuit(models),
		Models:  models,
		InductorOf: map[string]string{
			"CIN1": "Lcin1",
			"CIN2": "Lcin2",
			"CB1":  "Lcb1",
			"LF1":  "Llf1",
			"L1":   "Lbuck",
			"CO1":  "Lco1",
			"LF2":  "Llf2",
			"CX1":  "Lcx1",
		},
		Sources:     []string{"IQ1", "VD1"},
		MeasureNode: "lisn_meas",
		HotNodeOf: map[string]string{
			// Body potentials for capacitive coupling: the switch-node
			// bodies (Q1 drain tab, D1 cathode tab, L1 first winding) are
			// the aggressors; the input-filter bodies the victims.
			"Q1":   "sw",
			"D1":   "sw",
			"L1":   "sw",
			"CIN1": "vin",
			"CIN2": "vdd",
			"CB1":  "vdd",
			"LF1":  "vin",
			"CO1":  "vout",
			"LF2":  "vout",
			"CX1":  "vo2",
		},
	}
}

// buildModels creates the PEEC component catalog of the board.
func buildModels() map[string]components.Model {
	return map[string]components.Model{
		// Input EMI filter: two X2 film capacitors around a choke.
		"CIN1": components.NewX2Cap("X2-2u2", 2.2e-6),
		"CIN2": components.NewX2Cap("X2-2u2", 2.2e-6),
		// Bulk tantalum at the switching cell (the paper's Figure 3 part).
		"CB1": components.NewSMDTantalum("TAN-100u", 100e-6),
		// Input filter choke and buck inductor: drum-core bobbins.
		"LF1": components.NewBobbinChoke("DR-22u", 13, 4e-3),
		"L1":  components.NewBobbinChoke("DR-47u", 14, 5e-3),
		// Output side.
		"CO1": components.NewSMDTantalum("TAN-47u", 47e-6),
		"LF2": components.NewBobbinChoke("DR-4u7", 8, 3e-3),
		"CX1": components.NewMLCC("MLCC-1u", 1e-6),
		// Mechanical-only parts.
		"Q1": &components.BodyModel{ModelName: "MOSFET-D2PAK", W: 10e-3, L: 15e-3, H: 4.5e-3},
		"D1": &components.BodyModel{ModelName: "SCHOTTKY-D2PAK", W: 10e-3, L: 15e-3, H: 4.5e-3},
		"U1": &components.BodyModel{ModelName: "CTRL-SO8", W: 5e-3, L: 6e-3, H: 1.8e-3},
	}
}

// buildDesign creates the placement problem: a 100×80 mm automotive board
// with a connector keepout, three functional groups and the nets of the
// power path.
func buildDesign(models map[string]components.Model) *layout.Design {
	d := &layout.Design{
		Name:      "automotive buck converter",
		Boards:    1,
		Clearance: 1e-3,
		Areas: []layout.Area{
			{Name: "board", Board: 0, Poly: geom.RectPolygon(geom.R(0, 0, 0.1, 0.08))},
		},
		Keepouts: []layout.Keepout{
			// Supply connector zone at the left edge.
			{Name: "connector", Board: 0, Box: geom.CuboidOf(geom.R(0, 0.03, 0.012, 0.05), 0, 0.02)},
		},
		Rules: rules.NewSet(nil),
	}
	group := map[string]string{
		"CIN1": "input-filter", "CIN2": "input-filter", "LF1": "input-filter", "CB1": "input-filter",
		"Q1": "power", "D1": "power", "L1": "power", "U1": "power",
		"CO1": "output-filter", "LF2": "output-filter", "CX1": "output-filter",
	}
	for _, ref := range []string{"CIN1", "CIN2", "CB1", "LF1", "L1", "CO1", "LF2", "CX1", "Q1", "D1", "U1"} {
		m := models[ref]
		w, l, h := m.Size()
		d.Comps = append(d.Comps, &layout.Component{
			Ref: ref, W: w, L: l, H: h,
			Axis:  m.MagneticAxis(0),
			Group: group[ref],
		})
	}
	d.Nets = []layout.Net{
		{Name: "vin", Refs: []string{"CIN1", "LF1"}},
		{Name: "vdd", Refs: []string{"LF1", "CIN2", "CB1", "Q1"}},
		{Name: "sw", Refs: []string{"Q1", "D1", "L1"}, MaxLength: 0.06},
		{Name: "vout", Refs: []string{"L1", "CO1", "LF2"}},
		{Name: "vo2", Refs: []string{"LF2", "CX1"}},
		{Name: "gate", Refs: []string{"U1", "Q1"}, MaxLength: 0.05},
	}
	return d
}

// buildCircuit creates the conducted-emission netlist: battery, CISPR 25
// LISN, input π filter with capacitor parasitics, the switching cell in the
// standard two-source substitution (current source in the transistor
// position, voltage source in the diode position), and the output filter.
// Capacitor ESLs come from the PEEC loop models, choke inductances from
// their winding models — the paper's coupled field/circuit modeling.
func buildCircuit(models map[string]components.Model) *netlist.Circuit {
	c := &netlist.Circuit{Title: "automotive buck converter EMI model"}
	c.AddV("Vbat", "bat", "0", netlist.Source{DC: VIn})
	emi.AddLISN(c, "lisn", "bat", "vin")

	addCap := func(ref, node string) {
		m := models[ref].(*components.Capacitor)
		mid1, mid2 := node+"_"+ref+"a", node+"_"+ref+"b"
		c.AddC("C"+ref, node, mid1, m.C)
		c.AddR("R"+ref, mid1, mid2, m.ESR)
		c.AddL("L"+lower(ref), mid2, "0", m.EffectiveESL())
	}

	// Input filter: CIN1 at the LISN side, LF1 series choke, CIN2 + bulk
	// CB1 at the switching cell.
	addCap("CIN1", "vin")
	lf1 := models["LF1"].(*components.BobbinChoke)
	c.AddL("Llf1", "vin", "vdd", lf1.Inductance())
	addCap("CIN2", "vdd")
	addCap("CB1", "vdd")

	// Switching cell, two-source substitution. The transistor current is
	// the chopped inductor current; the diode-position source reproduces
	// the switch-node voltage trapezoid.
	period := 1 / FSwitch
	c.AddI("IQ1", "vdd", "sw", netlist.Source{Pulse: &netlist.Pulse{
		V1: 0, V2: ILoad, Rise: RiseTime, Fall: FallTime,
		Width: Duty*period - RiseTime, Period: period,
	}})
	c.AddV("VD1", "sw", "0", netlist.Source{Pulse: &netlist.Pulse{
		V1: 0, V2: VIn, Rise: RiseTime, Fall: FallTime,
		Width: Duty*period - RiseTime, Period: period,
	}})
	// Parasitic inductance of the hot switching loop.
	c.AddL("Lloop", "sw", "swl", 30e-9)
	c.AddR("Rloop", "swl", "0", 0.1)

	// Output power path and output EMI filter.
	l1 := models["L1"].(*components.BobbinChoke)
	c.AddL("Lbuck", "sw", "vout", l1.Inductance())
	addCap("CO1", "vout")
	c.AddR("Rload", "vout", "0", VIn*Duty/ILoad)
	lf2 := models["LF2"].(*components.BobbinChoke)
	c.AddL("Llf2", "vout", "vo2", lf2.Inductance())
	addCap("CX1", "vo2")
	c.AddR("Rport", "vo2", "0", 50)
	return c
}

// lower maps a reference like "CIN1" to the inductor suffix used in the
// netlist ("Lcin1").
func lower(ref string) string {
	out := make([]byte, len(ref))
	for i := 0; i < len(ref); i++ {
		ch := ref[i]
		if ch >= 'A' && ch <= 'Z' {
			ch += 'a' - 'A'
		}
		out[i] = ch
	}
	return string(out)
}

// Unfavorable lays the board out with the wirelength-only baseline placer —
// the trial-and-error stand-in whose conducted noise the paper shows in
// Figure 1. Magnetic couplings are ignored, so filter capacitors end up
// close together with parallel axes.
func Unfavorable(p *core.Project) error {
	_, err := place.AutoPlace(p.Design, place.Options{IgnoreEMD: true})
	return err
}

// DeriveAllRules runs the rule derivation for the relevant pairs found by
// the sensitivity analysis; pairs whose influence is below thresholdDB are
// skipped, as the paper's flow prescribes. Returns the relevant pairs.
func DeriveAllRules(p *core.Project, probeK, thresholdDB, kMax float64) ([][2]string, error) {
	rank, err := p.RankCouplings(probeK, 30e6)
	if err != nil {
		return nil, err
	}
	relevant := rank.Relevant(thresholdDB)
	pairs := relevant.Pairs()
	if _, err := p.DeriveRules(pairs, kMax); err != nil {
		return nil, err
	}
	return pairs, nil
}

// Optimize re-places the board with the full automatic method honouring
// the derived minimum-distance rules — the paper's Figure 2/16 layout. The
// design must already carry rules (see DeriveAllRules).
func Optimize(p *core.Project) (*place.Result, error) {
	if p.Design.RuleCount() == 0 {
		return nil, fmt.Errorf("buck: no placement rules derived yet")
	}
	return place.AutoPlace(p.Design, place.Options{})
}
