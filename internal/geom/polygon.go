package geom

import "math"

// Polygon is a simple (non self-intersecting) polygon given by its vertices
// in order (either winding). It models the paper's "different arbitrary shaped
// placement areas".
type Polygon []Vec2

// RectPolygon returns the polygon of rectangle r.
func RectPolygon(r Rect) Polygon {
	c := r.Corners()
	return Polygon{c[0], c[1], c[2], c[3]}
}

// BBox returns the axis-aligned bounding box of p.
func (p Polygon) BBox() Rect {
	if len(p) == 0 {
		return Rect{}
	}
	out := Rect{p[0], p[0]}
	for _, v := range p[1:] {
		out.Min.X = math.Min(out.Min.X, v.X)
		out.Min.Y = math.Min(out.Min.Y, v.Y)
		out.Max.X = math.Max(out.Max.X, v.X)
		out.Max.Y = math.Max(out.Max.Y, v.Y)
	}
	return out
}

// Area returns the absolute area of p (shoelace formula).
func (p Polygon) Area() float64 {
	if len(p) < 3 {
		return 0
	}
	sum := 0.0
	for i, v := range p {
		w := p[(i+1)%len(p)]
		sum += v.Cross(w)
	}
	return math.Abs(sum) / 2
}

// Contains reports whether pt lies inside p or on its boundary, using the
// even-odd ray-casting rule with an explicit boundary test so that points on
// edges count as inside (placement areas are boundary-inclusive).
func (p Polygon) Contains(pt Vec2) bool {
	n := len(p)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		if onSegment(p[i], p[(i+1)%n], pt) {
			return true
		}
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := p[i], p[j]
		if (vi.Y > pt.Y) != (vj.Y > pt.Y) {
			x := vj.X + (pt.Y-vj.Y)*(vi.X-vj.X)/(vi.Y-vj.Y)
			if pt.X < x {
				inside = !inside
			}
		}
	}
	return inside
}

// ContainsRect reports whether rectangle r lies entirely inside p.
// It requires all four corners inside and no polygon edge crossing any
// rectangle edge, which is exact for simple polygons.
func (p Polygon) ContainsRect(r Rect) bool {
	for _, c := range r.Corners() {
		if !p.Contains(c) {
			return false
		}
	}
	cs := r.Corners()
	n := len(p)
	for i := 0; i < n; i++ {
		a, b := p[i], p[(i+1)%n]
		for j := 0; j < 4; j++ {
			c, d := cs[j], cs[(j+1)%4]
			if segmentsCrossStrictly(a, b, c, d) {
				return false
			}
		}
	}
	return true
}

// IntersectsRect reports whether p and r share any area or boundary.
func (p Polygon) IntersectsRect(r Rect) bool {
	if !p.BBox().Overlaps(r.Inflate(1e-15)) {
		return false
	}
	for _, c := range r.Corners() {
		if p.Contains(c) {
			return true
		}
	}
	for _, v := range p {
		if r.Contains(v) {
			return true
		}
	}
	cs := r.Corners()
	n := len(p)
	for i := 0; i < n; i++ {
		a, b := p[i], p[(i+1)%n]
		for j := 0; j < 4; j++ {
			if segmentsIntersect(a, b, cs[j], cs[(j+1)%4]) {
				return true
			}
		}
	}
	return false
}

// Centroid returns the area centroid of p (vertex mean for degenerate p).
func (p Polygon) Centroid() Vec2 {
	if len(p) < 3 {
		var s Vec2
		for _, v := range p {
			s = s.Add(v)
		}
		if len(p) == 0 {
			return Vec2{}
		}
		return s.Scale(1 / float64(len(p)))
	}
	var cx, cy, a float64
	for i, v := range p {
		w := p[(i+1)%len(p)]
		cr := v.Cross(w)
		cx += (v.X + w.X) * cr
		cy += (v.Y + w.Y) * cr
		a += cr
	}
	if a == 0 {
		return p.BBox().Center()
	}
	return Vec2{cx / (3 * a), cy / (3 * a)}
}

const segEps = 1e-12

func onSegment(a, b, p Vec2) bool {
	if math.Abs(b.Sub(a).Cross(p.Sub(a))) > segEps*math.Max(1, a.Dist(b)) {
		return false
	}
	return p.X >= math.Min(a.X, b.X)-segEps && p.X <= math.Max(a.X, b.X)+segEps &&
		p.Y >= math.Min(a.Y, b.Y)-segEps && p.Y <= math.Max(a.Y, b.Y)+segEps
}

func orient(a, b, c Vec2) int {
	v := b.Sub(a).Cross(c.Sub(a))
	switch {
	case v > segEps:
		return 1
	case v < -segEps:
		return -1
	default:
		return 0
	}
}

// segmentsIntersect reports whether segments ab and cd share any point.
func segmentsIntersect(a, b, c, d Vec2) bool {
	o1, o2 := orient(a, b, c), orient(a, b, d)
	o3, o4 := orient(c, d, a), orient(c, d, b)
	if o1 != o2 && o3 != o4 {
		return true
	}
	return (o1 == 0 && onSegment(a, b, c)) ||
		(o2 == 0 && onSegment(a, b, d)) ||
		(o3 == 0 && onSegment(c, d, a)) ||
		(o4 == 0 && onSegment(c, d, b))
}

// segmentsCrossStrictly reports whether ab and cd cross at a single interior
// point of both (touching endpoints or collinear overlap do not count).
func segmentsCrossStrictly(a, b, c, d Vec2) bool {
	o1, o2 := orient(a, b, c), orient(a, b, d)
	o3, o4 := orient(c, d, a), orient(c, d, b)
	return o1*o2 < 0 && o3*o4 < 0
}
